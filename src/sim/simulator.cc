#include "sim/simulator.h"

#include "common/result.h"
#include "common/strings.h"

namespace autoglobe::sim {

Result<EventId> Simulator::ScheduleAt(SimTime at, std::string label,
                                      Callback callback) {
  if (at < now_) {
    return Status::InvalidArgument(
        StrFormat("cannot schedule event \"%s\" in the past (%s < %s)",
                  label.c_str(), at.ToString().c_str(),
                  now_.ToString().c_str()));
  }
  if (!callback) {
    return Status::InvalidArgument("event callback must not be empty");
  }
  EventId id = next_id_++;
  live_.insert(id);
  queue_.push(Event{at, next_seq_++, id, std::move(label),
                    std::move(callback), Duration::Zero()});
  return id;
}

Result<EventId> Simulator::ScheduleAfter(Duration delay, std::string label,
                                         Callback callback) {
  if (delay < Duration::Zero()) {
    return Status::InvalidArgument("delay must be non-negative");
  }
  return ScheduleAt(now_ + delay, std::move(label), std::move(callback));
}

Result<EventId> Simulator::SchedulePeriodic(Duration period,
                                            std::string label,
                                            Callback callback) {
  if (period <= Duration::Zero()) {
    return Status::InvalidArgument("period must be positive");
  }
  if (!callback) {
    return Status::InvalidArgument("event callback must not be empty");
  }
  EventId id = next_id_++;
  live_.insert(id);
  queue_.push(Event{now_ + period, next_seq_++, id, std::move(label),
                    std::move(callback), period});
  return id;
}

Status Simulator::Cancel(EventId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound(StrFormat("no pending event %llu",
                                      static_cast<unsigned long long>(id)));
  }
  // Lazy cancellation: the queue entry is skipped when popped.
  live_.erase(it);
  cancelled_.insert(id);
  return Status::OK();
}

size_t Simulator::pending_events() const { return live_.size(); }

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    auto cancel_it = cancelled_.find(event.id);
    if (cancel_it != cancelled_.end()) {
      cancelled_.erase(cancel_it);
      continue;
    }
    now_ = event.at;
    ++dispatched_;
    if (event.period <= Duration::Zero()) live_.erase(event.id);
    if (trace_hook_) trace_hook_(now_, event.label);
    if (event.period > Duration::Zero()) {
      // Re-arm the series before invoking, so the callback may cancel
      // its own series by id.
      queue_.push(Event{event.at + event.period, next_seq_++, event.id,
                        event.label, event.callback, event.period});
    }
    event.callback();
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime end) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.at > end) break;
    if (cancelled_.count(top.id) > 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    Step();
  }
  if (now_ < end) now_ = end;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

}  // namespace autoglobe::sim
