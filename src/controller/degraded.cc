#include "controller/degraded.h"

namespace autoglobe::controller {

DegradedModeController::DegradedModeController(DegradedModeConfig config)
    : config_(config) {}

int DegradedModeController::ObserveTick(int silent_servers,
                                        double tick_wall_ms) {
  if (!config_.enabled) return 0;
  bool storm = config_.dropout_storm_threshold > 0 &&
               silent_servers >= config_.dropout_storm_threshold;
  bool overrun = config_.tick_deadline_ms > 0.0 &&
                 tick_wall_ms > config_.tick_deadline_ms;
  bool unhealthy = storm || overrun;
  if (degraded_) ++degraded_ticks_;
  if (unhealthy) {
    healthy_streak_ = 0;
    if (!degraded_) {
      degraded_ = true;
      ++entries_;
      ++degraded_ticks_;  // the entering tick counts as degraded
      return +1;
    }
    return 0;
  }
  if (!degraded_) return 0;
  if (++healthy_streak_ >= config_.exit_healthy_ticks) {
    degraded_ = false;
    healthy_streak_ = 0;
    return -1;
  }
  return 0;
}

void DegradedModeController::SaveState(ByteWriter* w) const {
  w->U8(degraded_ ? 1 : 0);
  w->I64(healthy_streak_);
  w->I64(entries_);
  w->I64(degraded_ticks_);
  w->I64(suppressed_triggers_);
}

Status DegradedModeController::RestoreState(ByteReader* r) {
  AG_ASSIGN_OR_RETURN(uint8_t degraded, r->U8());
  degraded_ = degraded != 0;
  AG_ASSIGN_OR_RETURN(int64_t streak, r->I64());
  healthy_streak_ = static_cast<int>(streak);
  AG_ASSIGN_OR_RETURN(entries_, r->I64());
  AG_ASSIGN_OR_RETURN(degraded_ticks_, r->I64());
  AG_ASSIGN_OR_RETURN(suppressed_triggers_, r->I64());
  return Status::OK();
}

}  // namespace autoglobe::controller
