// QoS extension bench (paper §7: "The actions will then be used to
// enforce Service Level Agreements"): an SLA demands a 97 % rolling
// served/requested ratio for the mission-critical FI service. With
// enforcement on, *entering* a violation escalates straight to the
// fuzzy controller (no watchTime — the harm is already confirmed).
// Compared against track-only runs across load levels.

#include <cstdio>

#include "ablation_util.h"
#include "common/strings.h"

using namespace autoglobe;
using namespace autoglobe::bench;

namespace {

struct SlaResult {
  double violation_minutes = 0.0;
  int64_t actions = 0;
};

SlaResult Run(double scale, bool enforce) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, scale);
  SlaSpec sla;
  sla.service = "FI";
  sla.min_satisfaction = 0.97;
  sla.window = Duration::Minutes(20);
  config.slas.push_back(sla);
  config.enforce_slas = enforce;
  auto runner = SimulationRunner::Create(landscape, config);
  AG_CHECK_OK(runner.status());
  AG_CHECK_OK((*runner)->Run());
  return SlaResult{(*runner)->metrics().sla_violation_minutes,
                   (*runner)->metrics().actions_executed};
}

}  // namespace

int main() {
  std::printf("# QoS/SLA enforcement: FI must keep a 97%% rolling "
              "served/requested ratio (FM, 80 h)\n");
  std::printf("%-8s %22s %22s\n", "users", "track-only (min/acts)",
              "enforced (min/acts)");
  for (double scale : {1.25, 1.35, 1.45}) {
    SlaResult tracked = Run(scale, false);
    SlaResult enforced = Run(scale, true);
    std::printf("%5.0f%%  %12.0f / %-6lld %13.0f / %-6lld\n",
                scale * 100, tracked.violation_minutes,
                static_cast<long long>(tracked.actions),
                enforced.violation_minutes,
                static_cast<long long>(enforced.actions));
  }
  std::printf("\n# (shape: within the controller's capacity (<=135%%) "
              "escalation cuts violation time\n#  markedly; beyond it "
              "the urgent actions mostly add churn — no action can "
              "conjure\n#  capacity that is not there)\n");
  return 0;
}
