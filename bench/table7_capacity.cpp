// Reproduces Table 7, the paper's headline result: "the maximum
// numbers of users that can be handled by the existing hardware in
// the different scenarios relative to the number of users stated in
// Table 4" — static 100 %, constrained mobility 115 %, full mobility
// 135 %. The sweep follows the paper's protocol: 80-hour simulation
// runs, increasing the number of users by 5 % until the system
// becomes overloaded (sustained > 80 % CPU).

#include <cstdio>

#include "autoglobe/capacity.h"
#include "common/logging.h"

using namespace autoglobe;

int main() {
  std::printf("# Table 7: maximum possible, relative number of users\n\n");

  CapacityOptions options;  // 80 h runs, +5 % steps, paper thresholds
  struct RowSpec {
    Scenario scenario;
    int paper_percent;
  };
  const RowSpec rows[] = {
      {Scenario::kStatic, 100},
      {Scenario::kConstrainedMobility, 115},
      {Scenario::kFullMobility, 135},
  };

  std::printf("%-22s %12s %12s\n", "Scenario", "Measured", "Paper");
  double results[3] = {0, 0, 0};
  int i = 0;
  for (const RowSpec& row : rows) {
    auto result = FindCapacity(row.scenario, options);
    AG_CHECK_OK(result.status());
    results[i++] = result->max_scale;
    std::printf("%-22s %11.0f%% %11d%%\n",
                std::string(ScenarioName(row.scenario)).c_str(),
                result->max_scale * 100.0, row.paper_percent);
  }

  std::printf("\n# Sweep details (per 5%% step):\n");
  for (const RowSpec& row : rows) {
    auto result = FindCapacity(row.scenario, options);
    AG_CHECK_OK(result.status());
    for (const CapacityStep& step : result->steps) {
      std::printf(
          "# %-22s %3.0f%%: %s (overload %.0f server-min, %.2f%% of "
          "samples, max streak %.0f min, %lld actions)\n",
          std::string(ScenarioName(row.scenario)).c_str(),
          step.scale * 100.0, step.passed ? "ok        " : "OVERLOADED",
          step.metrics.overload_server_minutes,
          step.metrics.overload_fraction * 100.0,
          step.metrics.max_overload_streak_minutes,
          static_cast<long long>(step.metrics.actions_executed));
    }
  }

  bool ordering = results[0] < results[1] && results[1] < results[2];
  std::printf("\n# Shape check: static < CM < FM ... %s\n",
              ordering ? "HOLDS" : "VIOLATED");
  return ordering ? 0 : 1;
}
