# Empty dependencies file for ag_monitor.
# This may be replaced when dependencies are built.
