// Microbenchmarks (google-benchmark) of the simulation substrate:
// event-queue throughput, demand-engine ticks over the full paper
// landscape, and whole simulated hours of each scenario — the numbers
// that justify running 80-hour capacity sweeps in seconds.

#include <benchmark/benchmark.h>

#include "autoglobe/capacity.h"
#include "common/logging.h"
#include "sim/simulator.h"
#include "workload/demand.h"

namespace {

using namespace autoglobe;

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    sim::Simulator simulator;
    uint64_t sink = 0;
    for (int64_t i = 0; i < batch; ++i) {
      AG_CHECK_OK(simulator
                      .ScheduleAt(SimTime::FromSeconds((i * 7919) % 100000),
                                  "e", [&sink] { ++sink; })
                      .status());
    }
    simulator.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleDispatch)->Arg(1000)->Arg(10000);

void BM_DemandEngineTick(benchmark::State& state) {
  infra::Cluster cluster;
  workload::DemandEngine engine(&cluster, Rng(1));
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  AG_CHECK_OK(landscape.Build(&cluster, &engine));
  int64_t minute = 0;
  for (auto _ : state) {
    engine.Tick(SimTime::Start() + Duration::Minutes(++minute));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandEngineTick);

void BM_SimulatedHour(benchmark::State& state) {
  Scenario scenario = static_cast<Scenario>(state.range(0));
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = MakeScenarioConfig(scenario, 1.15);
  config.duration = Duration::Hours(100000);  // run manually below
  auto runner = SimulationRunner::Create(landscape, config);
  AG_CHECK_OK(runner.status());
  int64_t hour = 0;
  for (auto _ : state) {
    ++hour;
    AG_CHECK_OK(
        (*runner)->RunUntil(SimTime::Start() + Duration::Hours(hour)));
  }
  state.SetLabel(std::string(ScenarioName(scenario)));
  state.SetItemsProcessed(state.iterations() * 60);  // ticks
}
BENCHMARK(BM_SimulatedHour)->DenseRange(0, 2);

}  // namespace

BENCHMARK_MAIN();
