# Empty compiler generated dependencies file for micro_fuzzy.
# This may be replaced when dependencies are built.
