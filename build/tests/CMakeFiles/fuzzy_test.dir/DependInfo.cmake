
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzzy/inference_test.cc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/inference_test.cc.o" "gcc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/inference_test.cc.o.d"
  "/root/repo/tests/fuzzy/linguistic_test.cc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/linguistic_test.cc.o" "gcc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/linguistic_test.cc.o.d"
  "/root/repo/tests/fuzzy/membership_test.cc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/membership_test.cc.o" "gcc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/membership_test.cc.o.d"
  "/root/repo/tests/fuzzy/paper_example_test.cc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/paper_example_test.cc.o.d"
  "/root/repo/tests/fuzzy/rule_parser_test.cc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/rule_parser_test.cc.o" "gcc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/rule_parser_test.cc.o.d"
  "/root/repo/tests/fuzzy/xml_loader_test.cc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/xml_loader_test.cc.o" "gcc" "tests/CMakeFiles/fuzzy_test.dir/fuzzy/xml_loader_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fuzzy/CMakeFiles/ag_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlcfg/CMakeFiles/ag_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ag_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
