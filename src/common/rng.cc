#include "common/rng.h"

#include <cmath>

namespace autoglobe {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full range
  return lo + static_cast<int64_t>(Next() % range);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    double v = Normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int64_t>(std::llround(v));
  }
  double limit = std::exp(-mean);
  double product = NextDouble();
  int64_t count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NormalSlow(double mean, double stddev) {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  double sin_theta;
  double cos_theta;
#ifdef __GLIBC__
  // glibc's sincos returns exactly the separate sin/cos values (they
  // share kernels), so this keeps every historical stream bit-stable
  // while paying for one argument reduction instead of two.
  sincos(theta, &sin_theta, &cos_theta);
#else
  sin_theta = std::sin(theta);
  cos_theta = std::cos(theta);
#endif
  cached_normal_ = r * sin_theta;
  have_cached_normal_ = true;
  return mean + stddev * r * cos_theta;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace autoglobe
