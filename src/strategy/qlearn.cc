#include "strategy/qlearn.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace autoglobe::strategy {

using controller::ControllerOutcome;
using monitor::Trigger;
using monitor::TriggerKind;

namespace {

/// Smoothing of the per-kind average-reward baseline (see KindTable).
constexpr double kBaselineBeta = 0.1;

constexpr TriggerKind kPolicyKinds[] = {
    TriggerKind::kServerOverloaded,
    TriggerKind::kServerIdle,
    TriggerKind::kServiceOverloaded,
    TriggerKind::kServiceIdle,
};

Result<TriggerKind> ParsePolicyKind(std::string_view name) {
  for (TriggerKind kind : kPolicyKinds) {
    if (monitor::TriggerKindName(kind) == name) return kind;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown trigger kind \"%.*s\" in weight table",
      static_cast<int>(name.size()), name.data()));
}

}  // namespace

FuzzyQLearningStrategy::FuzzyQLearningStrategy(QLearnConfig config,
                                               const StrategyEnv& env)
    : config_(config),
      env_(env),
      // Mix the run seed with the strategy seed so two learners in
      // one sweep (different run seeds) explore independently while
      // staying reproducible.
      rng_(env.seed * 0x9e3779b97f4a7c15ULL ^ config.seed),
      epsilon_(config.epsilon) {}

Result<std::unique_ptr<FuzzyQLearningStrategy>>
FuzzyQLearningStrategy::Create(const QLearnConfig& config,
                               const StrategyEnv& env) {
  if (env.controller == nullptr) {
    return Status::InvalidArgument("qlearn strategy needs a controller");
  }
  std::unique_ptr<FuzzyQLearningStrategy> strategy(
      new FuzzyQLearningStrategy(config, env));
  for (TriggerKind kind : kPolicyKinds) {
    auto weights = env.controller->ActionRuleWeights(kind);
    if (!weights.ok()) continue;  // no base installed for this kind
    KindTable table;
    table.kind = kind;
    table.weights = std::move(*weights);
    AG_ASSIGN_OR_RETURN(table.rule_texts,
                        env.controller->ActionRuleTexts(kind));
    table.q.assign(table.weights.size(), {0.0, 0.0, 0.0});
    table.last_arm.assign(table.weights.size(), 1);
    table.last_eligibility.assign(table.weights.size(), 0.0);
    strategy->tables_.push_back(std::move(table));
  }
  if (strategy->tables_.empty()) {
    return Status::FailedPrecondition(
        "controller has no action rule bases to adapt");
  }
  // Credit assignment reads activation degrees from the decision
  // audit trail; when the runner configured none, the learner
  // installs its own (small — only the latest record is read).
  if (env.controller->audit_log() == nullptr) {
    strategy->own_audit_ = std::make_unique<obs::AuditLog>(4);
    env.controller->set_audit_log(strategy->own_audit_.get());
  }
  return strategy;
}

FuzzyQLearningStrategy::KindTable* FuzzyQLearningStrategy::TableFor(
    TriggerKind kind) {
  for (KindTable& table : tables_) {
    if (table.kind == kind) return &table;
  }
  return nullptr;
}

std::vector<double> FuzzyQLearningStrategy::WeightsFor(
    TriggerKind kind) const {
  for (const KindTable& table : tables_) {
    if (table.kind == kind) return table.weights;
  }
  return {};
}

void FuzzyQLearningStrategy::CaptureEligibility(KindTable* table) {
  std::fill(table->last_eligibility.begin(),
            table->last_eligibility.end(), 0.0);
  const obs::AuditLog* log = own_audit_ != nullptr
                                 ? own_audit_.get()
                                 : env_.controller->audit_log();
  bool captured = false;
  if (log != nullptr && !log->records().empty()) {
    const obs::DecisionAudit& record = log->records().back();
    for (const obs::InferenceRecord& inference : record.action_inference) {
      // Only evaluations of the adapted (generic) base — a
      // service-specific base has its own rule layout.
      if (inference.rules.size() != table->weights.size()) continue;
      for (size_t r = 0; r < inference.rules.size(); ++r) {
        double activation =
            std::clamp(inference.rules[r].activation, 0.0, 1.0);
        table->last_eligibility[r] =
            std::max(table->last_eligibility[r], activation);
        captured = true;
      }
    }
  }
  if (!captured) {
    // Nothing usable recorded (e.g. every instance was protected):
    // uniform credit keeps the update defined without biasing arms.
    std::fill(table->last_eligibility.begin(),
              table->last_eligibility.end(), 1.0);
  }
}

Result<ControllerOutcome> FuzzyQLearningStrategy::HandleTrigger(
    const Trigger& trigger, bool urgent) {
  KindTable* table = TableFor(trigger.kind);
  if (table == nullptr) {
    // Not a kind we adapt (service-specific bases, or an exotic
    // trigger) — plain fuzzy control.
    return env_.controller->HandleTrigger(trigger, urgent);
  }

  // 1. Settle the previous decision of this kind against the penalty
  //    growth it presided over.
  double penalty_now = Penalty();
  if (table->pending) {
    double delta = penalty_now - table->penalty_before;
    double reward;
    if (table->settled == 0) {
      // The first delta only seeds the baseline; there is no "usual"
      // to compare against yet.
      reward = 0.0;
      table->avg_delta = delta;
    } else {
      reward = table->avg_delta - delta;
      table->avg_delta += kBaselineBeta * (delta - table->avg_delta);
    }
    ++table->settled;
    for (size_t r = 0; r < table->weights.size(); ++r) {
      double eligibility = table->last_eligibility[r];
      if (eligibility <= 0.0) continue;
      double& value = table->q[r][table->last_arm[r]];
      value += config_.learning_rate * eligibility * (reward - value);
    }
    ++reward_updates_;
    table->pending = false;
  }

  // 2. Epsilon-greedy arm per rule; greedy ties prefer "hold" so an
  //    untrained table reproduces the authored weights.
  for (size_t r = 0; r < table->weights.size(); ++r) {
    uint8_t arm = 1;
    if (epsilon_ > 0.0 && rng_.NextDouble() < epsilon_) {
      arm = static_cast<uint8_t>(rng_.UniformInt(0, 2));
    } else {
      const std::array<double, 3>& q = table->q[r];
      if (q[0] > q[1] && q[0] >= q[2]) {
        arm = 0;
      } else if (q[2] > q[1] && q[2] > q[0]) {
        arm = 2;
      }
    }
    table->last_arm[r] = arm;
    if (arm != 1) {
      double delta = arm == 2 ? config_.step : -config_.step;
      table->weights[r] =
          std::clamp(table->weights[r] + delta, config_.min_weight,
                     config_.max_weight);
      ++weight_updates_;
    }
  }
  epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
  AG_RETURN_IF_ERROR(env_.controller->SetActionWeightOverride(
      trigger.kind, table->weights));

  // 3. The fuzzy controller decides and acts under the new weights.
  Result<ControllerOutcome> outcome =
      env_.controller->HandleTrigger(trigger, urgent);
  if (!outcome.ok()) return outcome;

  CaptureEligibility(table);
  table->penalty_before = penalty_now;
  table->pending = true;
  return outcome;
}

Status FuzzyQLearningStrategy::SaveWeights(const std::string& path) const {
  xml::Document doc;
  xml::Element* root = doc.SetRoot("strategyWeights");
  root->SetAttribute("strategy", std::string(name()));
  root->SetAttribute("epsilon", StrFormat("%.17g", epsilon_));
  for (const KindTable& table : tables_) {
    xml::Element* base = root->AddChild("base");
    base->SetAttribute(
        "trigger", std::string(monitor::TriggerKindName(table.kind)));
    base->SetAttribute("avgDelta", StrFormat("%.17g", table.avg_delta));
    base->SetAttribute("settled", StrFormat("%lld",
                                            static_cast<long long>(
                                                table.settled)));
    for (size_t r = 0; r < table.weights.size(); ++r) {
      xml::Element* rule = base->AddChild("rule");
      rule->SetAttribute("index", StrFormat("%zu", r));
      rule->SetAttribute("weight",
                         StrFormat("%.17g", table.weights[r]));
      rule->SetAttribute("qDown", StrFormat("%.17g", table.q[r][0]));
      rule->SetAttribute("qHold", StrFormat("%.17g", table.q[r][1]));
      rule->SetAttribute("qUp", StrFormat("%.17g", table.q[r][2]));
      rule->SetAttribute("text", table.rule_texts[r]);
    }
  }
  return doc.SaveFile(path);
}

Status FuzzyQLearningStrategy::LoadWeights(const std::string& path) {
  AG_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::LoadFile(path));
  const xml::Element* root = doc.root();
  if (root == nullptr || root->name() != "strategyWeights") {
    return Status::InvalidArgument(
        "weight table file has no <strategyWeights> root");
  }
  AG_ASSIGN_OR_RETURN(double epsilon,
                      root->DoubleAttributeOr("epsilon", epsilon_));
  for (const xml::Element* base : root->FindChildren("base")) {
    AG_ASSIGN_OR_RETURN(std::string trigger,
                        base->StringAttribute("trigger"));
    AG_ASSIGN_OR_RETURN(TriggerKind kind, ParsePolicyKind(trigger));
    KindTable* table = TableFor(kind);
    if (table == nullptr) {
      return Status::FailedPrecondition(StrFormat(
          "weight table covers trigger %s, but the controller has no "
          "rule base for it",
          trigger.c_str()));
    }
    std::vector<const xml::Element*> rules = base->FindChildren("rule");
    if (rules.size() != table->weights.size()) {
      return Status::InvalidArgument(StrFormat(
          "weight table for %s has %zu rules, rule base has %zu",
          trigger.c_str(), rules.size(), table->weights.size()));
    }
    for (const xml::Element* rule : rules) {
      AG_ASSIGN_OR_RETURN(long long index, rule->IntAttribute("index"));
      if (index < 0 ||
          static_cast<size_t>(index) >= table->weights.size()) {
        return Status::InvalidArgument(
            StrFormat("rule index %lld out of range", index));
      }
      size_t r = static_cast<size_t>(index);
      AG_ASSIGN_OR_RETURN(table->weights[r],
                          rule->DoubleAttribute("weight"));
      AG_ASSIGN_OR_RETURN(table->q[r][0], rule->DoubleAttribute("qDown"));
      AG_ASSIGN_OR_RETURN(table->q[r][1], rule->DoubleAttribute("qHold"));
      AG_ASSIGN_OR_RETURN(table->q[r][2], rule->DoubleAttribute("qUp"));
    }
    AG_ASSIGN_OR_RETURN(table->avg_delta,
                        base->DoubleAttributeOr("avgDelta", 0.0));
    AG_ASSIGN_OR_RETURN(long long settled,
                        base->IntAttributeOr("settled", 0));
    table->settled = settled;
    // A loaded table discards any pending decision: its reward
    // belongs to the run that trained it.
    table->pending = false;
    AG_RETURN_IF_ERROR(env_.controller->SetActionWeightOverride(
        kind, table->weights));
  }
  epsilon_ = epsilon;
  return Status::OK();
}

void FuzzyQLearningStrategy::SaveState(ByteWriter* w) const {
  Rng::State rng = rng_.SaveState();
  for (uint64_t word : rng.words) w->U64(word);
  w->U8(rng.have_cached_normal ? 1 : 0);
  w->F64(rng.cached_normal);
  w->F64(epsilon_);
  w->I64(reward_updates_);
  w->I64(weight_updates_);
  w->U64(tables_.size());
  for (const KindTable& table : tables_) {
    w->U8(static_cast<uint8_t>(table.kind));
    w->U64(table.weights.size());
    for (double weight : table.weights) w->F64(weight);
    for (const std::array<double, 3>& row : table.q) {
      w->F64(row[0]);
      w->F64(row[1]);
      w->F64(row[2]);
    }
    w->U8(table.pending ? 1 : 0);
    w->F64(table.penalty_before);
    for (uint8_t arm : table.last_arm) w->U8(arm);
    for (double eligibility : table.last_eligibility) w->F64(eligibility);
    w->F64(table.avg_delta);
    w->I64(table.settled);
  }
}

Status FuzzyQLearningStrategy::RestoreState(ByteReader* r) {
  Rng::State rng;
  for (uint64_t& word : rng.words) {
    AG_ASSIGN_OR_RETURN(word, r->U64());
  }
  uint8_t have_cached = 0;
  AG_ASSIGN_OR_RETURN(have_cached, r->U8());
  rng.have_cached_normal = have_cached != 0;
  AG_ASSIGN_OR_RETURN(rng.cached_normal, r->F64());
  rng_.RestoreState(rng);
  AG_ASSIGN_OR_RETURN(epsilon_, r->F64());
  AG_ASSIGN_OR_RETURN(reward_updates_, r->I64());
  AG_ASSIGN_OR_RETURN(weight_updates_, r->I64());
  uint64_t table_count = 0;
  AG_ASSIGN_OR_RETURN(table_count, r->U64());
  if (table_count != tables_.size()) {
    return Status::ParseError(StrFormat(
        "snapshot has %llu learner tables, controller has %zu",
        static_cast<unsigned long long>(table_count), tables_.size()));
  }
  for (KindTable& table : tables_) {
    uint8_t kind = 0;
    AG_ASSIGN_OR_RETURN(kind, r->U8());
    if (kind != static_cast<uint8_t>(table.kind)) {
      return Status::ParseError(StrFormat(
          "snapshot learner table order mismatch (%u vs %u)",
          unsigned{kind}, static_cast<unsigned>(table.kind)));
    }
    uint64_t rules = 0;
    AG_ASSIGN_OR_RETURN(rules, r->U64());
    if (rules != table.weights.size()) {
      return Status::ParseError(StrFormat(
          "snapshot learner table for %.*s has %llu rules, rule base "
          "has %zu",
          static_cast<int>(monitor::TriggerKindName(table.kind).size()),
          monitor::TriggerKindName(table.kind).data(),
          static_cast<unsigned long long>(rules), table.weights.size()));
    }
    for (double& weight : table.weights) {
      AG_ASSIGN_OR_RETURN(weight, r->F64());
    }
    for (std::array<double, 3>& row : table.q) {
      AG_ASSIGN_OR_RETURN(row[0], r->F64());
      AG_ASSIGN_OR_RETURN(row[1], r->F64());
      AG_ASSIGN_OR_RETURN(row[2], r->F64());
    }
    uint8_t pending = 0;
    AG_ASSIGN_OR_RETURN(pending, r->U8());
    table.pending = pending != 0;
    AG_ASSIGN_OR_RETURN(table.penalty_before, r->F64());
    for (uint8_t& arm : table.last_arm) {
      AG_ASSIGN_OR_RETURN(arm, r->U8());
    }
    for (double& eligibility : table.last_eligibility) {
      AG_ASSIGN_OR_RETURN(eligibility, r->F64());
    }
    AG_ASSIGN_OR_RETURN(table.avg_delta, r->F64());
    AG_ASSIGN_OR_RETURN(table.settled, r->I64());
    AG_RETURN_IF_ERROR(env_.controller->SetActionWeightOverride(
        table.kind, table.weights));
  }
  return Status::OK();
}

}  // namespace autoglobe::strategy
