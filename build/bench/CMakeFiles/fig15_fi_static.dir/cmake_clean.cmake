file(REMOVE_RECURSE
  "CMakeFiles/fig15_fi_static.dir/fig15_fi_static.cpp.o"
  "CMakeFiles/fig15_fi_static.dir/fig15_fi_static.cpp.o.d"
  "fig15_fi_static"
  "fig15_fi_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_fi_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
