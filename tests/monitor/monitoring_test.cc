#include "monitor/monitoring.h"

#include <gtest/gtest.h>

namespace autoglobe::monitor {
namespace {

SimTime Min(int m) { return SimTime::Start() + Duration::Minutes(m); }

class MonitoringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MonitorConfig config;  // paper defaults: 0.70 / 10 min / 0.125 / 20 min
    lms_ = std::make_unique<LoadMonitoringSystem>(&archive_, config);
    ASSERT_TRUE(lms_->RegisterSubject(TriggerKind::kServerOverloaded,
                                      "Blade1", /*idle_divisor=*/1.0)
                    .ok());
    lms_->set_trigger_callback(
        [this](const Trigger& trigger) { triggers_.push_back(trigger); });
  }

  // Feeds one sample per minute starting at `start`.
  void Feed(int start_minute, std::initializer_list<double> loads) {
    int m = start_minute;
    for (double load : loads) {
      ASSERT_TRUE(lms_->Observe(Min(m++), "Blade1", load).ok());
    }
  }
  void FeedConstant(int start_minute, int count, double load) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(
          lms_->Observe(Min(start_minute + i), "Blade1", load).ok());
    }
  }

  LoadArchive archive_;
  std::unique_ptr<LoadMonitoringSystem> lms_;
  std::vector<Trigger> triggers_;
};

TEST_F(MonitoringTest, RegistrationValidation) {
  EXPECT_FALSE(
      lms_->RegisterSubject(TriggerKind::kServerIdle, "X", 1.0).ok());
  EXPECT_FALSE(lms_->RegisterSubject(TriggerKind::kServerOverloaded,
                                     "Blade1", 1.0)
                   .ok());  // duplicate
  EXPECT_FALSE(
      lms_->RegisterSubject(TriggerKind::kServerOverloaded, "Y", 0.0).ok());
  EXPECT_FALSE(lms_->Observe(Min(0), "unregistered", 0.5).ok());
}

TEST_F(MonitoringTest, SubjectIdObserveMatchesNameObserve) {
  auto id = lms_->SubjectIdOf("Blade1");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(lms_->SubjectIdOf("ghost").ok());
  EXPECT_FALSE(lms_->ObserveById(Min(0), SubjectId{99}, 0.5).ok());
  EXPECT_FALSE(lms_->ObserveById(Min(0), SubjectId{-1}, 0.5).ok());
  // The id-keyed hot path drives the same state machine: a sustained
  // overload fed purely through ObserveById confirms a trigger with
  // the subject's *name*.
  for (int m = 0; m <= 11; ++m) {
    ASSERT_TRUE(lms_->ObserveById(Min(m), *id, 0.9).ok());
  }
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].kind, TriggerKind::kServerOverloaded);
  EXPECT_EQ(triggers_[0].subject, "Blade1");
  // Samples land in the archive under the usual key.
  EXPECT_DOUBLE_EQ(*archive_.Latest("server/Blade1"), 0.9);
}

TEST_F(MonitoringTest, SteadyNormalLoadNeverTriggers) {
  FeedConstant(0, 120, 0.5);
  EXPECT_TRUE(triggers_.empty());
}

TEST_F(MonitoringTest, SustainedOverloadConfirmedAfterWatchTime) {
  FeedConstant(0, 5, 0.5);   // normal
  FeedConstant(5, 12, 0.85);  // above 0.70 threshold
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].kind, TriggerKind::kServerOverloaded);
  EXPECT_EQ(triggers_[0].subject, "Blade1");
  // Confirmed exactly after the 10-minute watch time.
  EXPECT_EQ(triggers_[0].at, Min(15));
  // "set to the arithmetic means of the load values during the
  //  service specific watchTime" (§4.1).
  EXPECT_NEAR(triggers_[0].average_load, 0.85, 1e-12);
}

TEST_F(MonitoringTest, ShortPeakIsRiddenOut) {
  // "In real systems short load peaks are quite common. Immediate
  //  reaction on these peaks could lead to an unsettled and instable
  //  system" (§2). A 3-minute burst must not trigger.
  FeedConstant(0, 5, 0.5);
  FeedConstant(5, 3, 0.95);  // arms the watch
  FeedConstant(8, 20, 0.4);  // burst over; average sinks below 0.70
  EXPECT_TRUE(triggers_.empty());
}

TEST_F(MonitoringTest, AverageDecidesNotTheArmingSample) {
  // Mixed loads during the watch: average 0.72 > 0.70 -> confirmed.
  FeedConstant(0, 2, 0.5);
  Feed(2, {0.9, 0.72, 0.70, 0.74, 0.71, 0.73, 0.70, 0.71, 0.75, 0.74,
           0.72});
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_GT(triggers_[0].average_load, 0.70);
}

TEST_F(MonitoringTest, RetriggersWhileOverloadPersists) {
  FeedConstant(0, 40, 0.9);
  // Watch confirms roughly every watchTime + 1 re-arm minute.
  EXPECT_GE(triggers_.size(), 2u);
  EXPECT_LE(triggers_.size(), 4u);
}

TEST_F(MonitoringTest, IdleDetectionUsesScaledThresholdAndLongerWatch) {
  ASSERT_TRUE(lms_->RegisterSubject(TriggerKind::kServerOverloaded,
                                    "Big", /*idle_divisor=*/9.0)
                  .ok());
  // "The threshold value for an idle situation ... is 12.5% divided
  //  by the performance index": 12.5 % / 9 = 1.39 %.
  for (int m = 0; m < 25; ++m) {
    ASSERT_TRUE(lms_->Observe(Min(m), "Big", 0.05).ok());  // 5 % > 1.39 %
  }
  EXPECT_TRUE(triggers_.empty());
  for (int m = 25; m < 47; ++m) {
    ASSERT_TRUE(lms_->Observe(Min(m), "Big", 0.005).ok());
  }
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].kind, TriggerKind::kServerIdle);
  EXPECT_EQ(triggers_[0].subject, "Big");
  // Idle watch time is 20 minutes (paper §5.1).
  EXPECT_EQ(triggers_[0].at, Min(25 + 20));
}

TEST_F(MonitoringTest, ServiceSubjectsRaiseServiceTriggers) {
  ASSERT_TRUE(lms_->RegisterSubject(TriggerKind::kServiceOverloaded, "FI",
                                    1.0)
                  .ok());
  for (int m = 0; m < 12; ++m) {
    ASSERT_TRUE(lms_->Observe(Min(m), "FI", 0.9).ok());
  }
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].kind, TriggerKind::kServiceOverloaded);
  // The overload watch armed at minute 11 must first resolve (no
  // confirmation), then the idle watch arms at minute 22 and confirms
  // 20 minutes later.
  for (int m = 12; m < 45; ++m) {
    ASSERT_TRUE(lms_->Observe(Min(m), "FI", 0.01).ok());
  }
  ASSERT_EQ(triggers_.size(), 2u);
  EXPECT_EQ(triggers_[1].kind, TriggerKind::kServiceIdle);
  EXPECT_EQ(triggers_[1].at, Min(42));
}

TEST_F(MonitoringTest, SamplesLandInTheArchive) {
  FeedConstant(0, 5, 0.5);
  std::string key =
      LoadMonitoringSystem::ArchiveKey(TriggerKind::kServerOverloaded,
                                       "Blade1");
  EXPECT_EQ(key, "server/Blade1");
  EXPECT_DOUBLE_EQ(*archive_.Latest(key), 0.5);
}

TEST_F(MonitoringTest, TriggerKindNames) {
  EXPECT_EQ(TriggerKindName(TriggerKind::kServerOverloaded),
            "serverOverloaded");
  EXPECT_EQ(TriggerKindName(TriggerKind::kServerIdle), "serverIdle");
  EXPECT_EQ(TriggerKindName(TriggerKind::kServiceOverloaded),
            "serviceOverloaded");
  EXPECT_EQ(TriggerKindName(TriggerKind::kServiceIdle), "serviceIdle");
}

TEST_F(MonitoringTest, CountsFiredTriggers) {
  EXPECT_EQ(lms_->triggers_fired(), 0);
  FeedConstant(0, 15, 0.9);
  EXPECT_EQ(lms_->triggers_fired(),
            static_cast<int64_t>(triggers_.size()));
  EXPECT_GE(lms_->triggers_fired(), 1);
}

TEST_F(MonitoringTest, DirtyTrackingSkipsConstantInBandLoads) {
  FeedConstant(0, 30, 0.5);
  // First sample evaluates (no carried value yet); the other 29 are
  // bitwise-equal, in-band, uniformly spaced — all skipped.
  EXPECT_EQ(lms_->evaluations(), 1);
  EXPECT_EQ(lms_->skips(), 29);
}

TEST_F(MonitoringTest, MaterializeReplaysTheExactRun) {
  FeedConstant(1, 10, 0.5);
  auto subject = lms_->SubjectIdOf("Blade1");
  ASSERT_TRUE(subject.ok());
  ASSERT_TRUE(lms_->MaterializeSubject(*subject).ok());
  // RawBetween is from-exclusive, like Average's (now - window, now].
  auto raw = archive_.RawBetween("server/Blade1", Min(0), Min(10));
  ASSERT_EQ(raw.size(), 10u);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw[i].at, Min(static_cast<int>(i) + 1)) << i;
    EXPECT_DOUBLE_EQ(raw[i].value, 0.5) << i;
  }
  // Idempotent: nothing pending after a materialize.
  ASSERT_TRUE(lms_->MaterializeAll().ok());
  EXPECT_EQ(archive_.RawBetween("server/Blade1", Min(0), Min(10)).size(),
            10u);
}

TEST_F(MonitoringTest, DifferingValueMaterializesBeforeAppending) {
  FeedConstant(1, 5, 0.5);
  Feed(6, {0.6});  // breaks the run: replay 0.5s, then append 0.6
  auto raw = archive_.RawBetween("server/Blade1", Min(0), Min(6));
  ASSERT_EQ(raw.size(), 6u);
  EXPECT_DOUBLE_EQ(raw[4].value, 0.5);
  EXPECT_DOUBLE_EQ(raw[5].value, 0.6);
  EXPECT_EQ(lms_->evaluations(), 2);
  EXPECT_EQ(lms_->skips(), 4);
}

TEST_F(MonitoringTest, OutOfBandLoadsAreNeverSkipped) {
  // A constant load above the overload threshold must re-evaluate
  // every tick — skipping would stall the armed watch.
  FeedConstant(0, 15, 0.9);
  EXPECT_EQ(lms_->skips(), 0);
  EXPECT_EQ(lms_->evaluations(), 15);
  EXPECT_GE(triggers_.size(), 1u);
}

TEST_F(MonitoringTest, EpsilonSkipsNearbyValuesButArmingStaysExact) {
  LoadArchive archive;
  MonitorConfig config;
  config.load_epsilon = 0.01;
  LoadMonitoringSystem lms(&archive, config);
  ASSERT_TRUE(
      lms.RegisterSubject(TriggerKind::kServerOverloaded, "s", 1.0).ok());
  ASSERT_TRUE(lms.Observe(Min(1), "s", 0.5).ok());
  ASSERT_TRUE(lms.Observe(Min(2), "s", 0.509).ok());  // within epsilon
  ASSERT_TRUE(lms.Observe(Min(3), "s", 0.492).ok());  // still within
  ASSERT_TRUE(lms.Observe(Min(4), "s", 0.52).ok());   // breaks the run
  EXPECT_EQ(lms.skips(), 2);
  EXPECT_EQ(lms.evaluations(), 2);
  auto raw = archive.RawBetween("server/s", Min(0), Min(4));
  ASSERT_EQ(raw.size(), 4u);
  // Skipped ticks carry the last evaluated value (the documented
  // epsilon approximation); evaluated ticks store the exact load.
  EXPECT_DOUBLE_EQ(raw[1].value, 0.5);
  EXPECT_DOUBLE_EQ(raw[2].value, 0.5);
  EXPECT_DOUBLE_EQ(raw[3].value, 0.52);
  // An out-of-band value is evaluated even when inside epsilon of the
  // carried value: 0.699 -> 0.701 crosses the threshold.
  ASSERT_TRUE(lms.Observe(Min(5), "s", 0.699).ok());
  ASSERT_TRUE(lms.Observe(Min(6), "s", 0.701).ok());
  EXPECT_EQ(lms.evaluations(), 4);
}

TEST_F(MonitoringTest, DirtyTrackingOffEvaluatesEveryObserve) {
  LoadArchive archive;
  MonitorConfig config;
  config.dirty_tracking = false;
  LoadMonitoringSystem lms(&archive, config);
  ASSERT_TRUE(
      lms.RegisterSubject(TriggerKind::kServerOverloaded, "s", 1.0).ok());
  for (int m = 1; m <= 20; ++m) {
    ASSERT_TRUE(lms.Observe(Min(m), "s", 0.5).ok());
  }
  EXPECT_EQ(lms.skips(), 0);
  EXPECT_EQ(lms.evaluations(), 20);
  EXPECT_EQ(archive.RawBetween("server/s", Min(0), Min(20)).size(), 20u);
}

TEST_F(MonitoringTest, NonUniformCadenceBreaksTheRun) {
  FeedConstant(1, 5, 0.5);  // minutes 1..5, interval 1
  ASSERT_TRUE(lms_->Observe(Min(8), "Blade1", 0.5).ok());  // gap
  // The 3-minute gap cannot extend a 1-minute-interval run; the
  // sample evaluates so the archive timeline stays exact.
  EXPECT_EQ(lms_->evaluations(), 2);
  auto raw = archive_.RawBetween("server/Blade1", Min(0), Min(8));
  ASSERT_EQ(raw.size(), 6u);
  EXPECT_EQ(raw[5].at, Min(8));
}

// Property sweep: a constant load strictly between the idle and
// overload thresholds never triggers, for any duration.
class QuietBandProperty : public ::testing::TestWithParam<double> {};

TEST_P(QuietBandProperty, NoTriggerInsideTheBand) {
  LoadArchive archive;
  LoadMonitoringSystem lms(&archive, MonitorConfig{});
  ASSERT_TRUE(
      lms.RegisterSubject(TriggerKind::kServerOverloaded, "s", 1.0).ok());
  int fired = 0;
  lms.set_trigger_callback([&fired](const Trigger&) { ++fired; });
  for (int m = 0; m < 200; ++m) {
    ASSERT_TRUE(lms.Observe(Min(m), "s", GetParam()).ok());
  }
  EXPECT_EQ(fired, 0) << "load " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Band, QuietBandProperty,
                         ::testing::Values(0.13, 0.2, 0.35, 0.5, 0.65,
                                           0.699));

// --- Heartbeat failure detection --------------------------------------

class HeartbeatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lms_ = std::make_unique<LoadMonitoringSystem>(&archive_,
                                                  MonitorConfig{});
    lms_->set_trigger_callback(
        [this](const Trigger& trigger) { triggers_.push_back(trigger); });
  }

  LoadArchive archive_;
  std::unique_ptr<LoadMonitoringSystem> lms_;
  std::vector<Trigger> triggers_;
};

TEST_F(HeartbeatTest, WatchValidation) {
  // Only failure kinds make heartbeat watches.
  EXPECT_FALSE(lms_->WatchHeartbeat(TriggerKind::kServerOverloaded,
                                    "s/Blade1", "Blade1", Min(0))
                   .ok());
  ASSERT_TRUE(lms_->WatchHeartbeat(TriggerKind::kServerFailed, "s/Blade1",
                                   "Blade1", Min(0))
                  .ok());
  // Duplicate active key rejected.
  EXPECT_FALSE(lms_->WatchHeartbeat(TriggerKind::kServerFailed,
                                    "s/Blade1", "Blade1", Min(0))
                   .ok());
  EXPECT_FALSE(lms_->RecordHeartbeat("s/ghost", Min(0)).ok());
  EXPECT_FALSE(lms_->UnwatchHeartbeat("s/ghost").ok());
  EXPECT_EQ(lms_->active_heartbeat_watches(), 1u);
}

TEST_F(HeartbeatTest, FiresAfterMissedBeatsAndCarriesTheSubject) {
  // Defaults: 1-minute interval, 3 missed beats.
  ASSERT_TRUE(lms_->WatchHeartbeat(TriggerKind::kInstanceFailed, "i/7",
                                   "CRM@Blade1", Min(0), /*instance=*/7)
                  .ok());
  ASSERT_TRUE(lms_->RecordHeartbeat("i/7", Min(1)).ok());
  lms_->CheckHeartbeats(Min(3));  // silent 2 min: below the deadline
  EXPECT_TRUE(triggers_.empty());
  lms_->CheckHeartbeats(Min(4));  // silent 3 min: declared failed
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].kind, TriggerKind::kInstanceFailed);
  EXPECT_EQ(triggers_[0].subject, "CRM@Blade1");
  EXPECT_EQ(triggers_[0].instance, 7u);
  EXPECT_EQ(triggers_[0].at, Min(4));
}

TEST_F(HeartbeatTest, ReportsOnceUntilAFreshBeatArrives) {
  ASSERT_TRUE(lms_->WatchHeartbeat(TriggerKind::kServerFailed, "s/Blade1",
                                   "Blade1", Min(0))
                  .ok());
  lms_->CheckHeartbeats(Min(10));
  lms_->CheckHeartbeats(Min(20));
  EXPECT_EQ(triggers_.size(), 1u);  // no refire while still silent
  // A fresh heartbeat rearms the watch; a later silence fires again.
  ASSERT_TRUE(lms_->RecordHeartbeat("s/Blade1", Min(21)).ok());
  lms_->CheckHeartbeats(Min(22));
  EXPECT_EQ(triggers_.size(), 1u);
  lms_->CheckHeartbeats(Min(30));
  EXPECT_EQ(triggers_.size(), 2u);
}

TEST_F(HeartbeatTest, UnwatchTombstonesAndRewatchReactivates) {
  ASSERT_TRUE(lms_->WatchHeartbeat(TriggerKind::kInstanceFailed, "i/7",
                                   "CRM@Blade1", Min(0), 7)
                  .ok());
  ASSERT_TRUE(lms_->UnwatchHeartbeat("i/7").ok());
  EXPECT_EQ(lms_->active_heartbeat_watches(), 0u);
  lms_->CheckHeartbeats(Min(60));
  EXPECT_TRUE(triggers_.empty());  // tombstoned: never fires
  EXPECT_FALSE(lms_->RecordHeartbeat("i/7", Min(60)).ok());

  // Re-watching the key reactivates the slot with fresh state — alive
  // as of the re-watch time, new subject attribution.
  ASSERT_TRUE(lms_->WatchHeartbeat(TriggerKind::kInstanceFailed, "i/7",
                                   "CRM@Blade2", Min(60), 7)
                  .ok());
  EXPECT_EQ(lms_->active_heartbeat_watches(), 1u);
  lms_->CheckHeartbeats(Min(62));
  EXPECT_TRUE(triggers_.empty());
  lms_->CheckHeartbeats(Min(63));
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].subject, "CRM@Blade2");
}

TEST_F(HeartbeatTest, DenseIdPathMatchesTheKeyedPath) {
  ASSERT_TRUE(lms_->WatchHeartbeat(TriggerKind::kServerFailed, "s/Blade1",
                                   "Blade1", Min(0))
                  .ok());
  EXPECT_FALSE(lms_->HeartbeatIdOf("s/ghost").ok());
  auto id = lms_->HeartbeatIdOf("s/Blade1");
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(lms_->RecordHeartbeatById(*id + 100, Min(1)).ok());
  // Beats recorded through the dense id keep the watch quiet exactly
  // like RecordHeartbeat by key.
  for (int m = 1; m < 30; ++m) {
    ASSERT_TRUE(lms_->RecordHeartbeatById(*id, Min(m)).ok());
    lms_->CheckHeartbeats(Min(m));
  }
  EXPECT_TRUE(triggers_.empty());
  lms_->CheckHeartbeats(Min(33));  // 3 silent minutes: fires
  ASSERT_EQ(triggers_.size(), 1u);
  EXPECT_EQ(triggers_[0].subject, "Blade1");
  // A tombstoned slot rejects dense-id beats too.
  ASSERT_TRUE(lms_->UnwatchHeartbeat("s/Blade1").ok());
  EXPECT_FALSE(lms_->RecordHeartbeatById(*id, Min(40)).ok());
}

}  // namespace
}  // namespace autoglobe::monitor
