#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace autoglobe {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      pieces.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> pieces;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) pieces.push_back(s.substr(start, i - start));
  }
  return pieces;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<double> ParseDouble(std::string_view s) {
  std::string trimmed(StripWhitespace(s));
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not a number");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE) {
    return Status::ParseError(StrFormat("not a number: \"%s\"",
                                        trimmed.c_str()));
  }
  return value;
}

Result<long long> ParseInt(std::string_view s) {
  std::string trimmed(StripWhitespace(s));
  if (trimmed.empty()) {
    return Status::ParseError("empty string is not an integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE) {
    return Status::ParseError(StrFormat("not an integer: \"%s\"",
                                        trimmed.c_str()));
  }
  return value;
}

Result<bool> ParseBool(std::string_view s) {
  std::string_view trimmed = StripWhitespace(s);
  if (EqualsIgnoreCase(trimmed, "true") || trimmed == "1" ||
      EqualsIgnoreCase(trimmed, "yes") || EqualsIgnoreCase(trimmed, "on")) {
    return true;
  }
  if (EqualsIgnoreCase(trimmed, "false") || trimmed == "0" ||
      EqualsIgnoreCase(trimmed, "no") || EqualsIgnoreCase(trimmed, "off")) {
    return false;
  }
  return Status::ParseError(
      StrFormat("not a boolean: \"%.*s\"",
                static_cast<int>(trimmed.size()), trimmed.data()));
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace autoglobe
