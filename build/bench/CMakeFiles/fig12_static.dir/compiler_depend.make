# Empty compiler generated dependencies file for fig12_static.
# This may be replaced when dependencies are built.
