#ifndef AUTOGLOBE_MONITOR_MONITORING_H_
#define AUTOGLOBE_MONITOR_MONITORING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "monitor/load_archive.h"
#include "obs/trace.h"

namespace autoglobe::monitor {

/// What kind of entity raised an exceptional situation (paper §4.1
/// distinguishes four triggers with dedicated rule bases).
enum class TriggerKind {
  kServerOverloaded,
  kServerIdle,
  kServiceOverloaded,
  kServiceIdle,
  /// Heartbeat failure detection (the self-healing extension): an
  /// instance or a whole server stopped reporting for the configured
  /// number of intervals. These triggers bypass fuzzy action
  /// selection and go straight to recovery.
  kInstanceFailed,
  kServerFailed,
};

std::string_view TriggerKindName(TriggerKind kind);

/// A confirmed exceptional situation handed to the fuzzy controller.
struct Trigger {
  TriggerKind kind;
  std::string subject;  // server or service name
  SimTime at;
  /// Arithmetic mean of the load during the watch time — the value
  /// the controller's load variables are initialized with (§4.1).
  double average_load = 0.0;
  /// For kInstanceFailed: the id of the silent instance.
  uint64_t instance = 0;
};

/// Tunables of the detection pipeline (paper §2 / §5.1).
struct MonitorConfig {
  /// "we set the threshold value for a CPU overload to 70%".
  double overload_threshold = 0.70;
  /// "the controller monitors the load values ... for 10 minutes".
  Duration overload_watch_time = Duration::Minutes(10);
  /// "The threshold value for an idle situation ... is 12.5% divided
  /// by the performance index of the server." The divisor is supplied
  /// per subject at registration.
  double idle_threshold_base = 0.125;
  /// "An idle situation is recognized after a watchTime of 20 min."
  Duration idle_watch_time = Duration::Minutes(20);
  /// Expected spacing of heartbeats (normally the sampling tick).
  Duration heartbeat_interval = Duration::Minutes(1);
  /// Consecutive missed heartbeats before a subject is declared
  /// failed — a single dropped report must not trigger recovery.
  int heartbeat_miss_threshold = 3;
  /// Dirty-subject tracking: a quiescent subject — phase kNormal, no
  /// forecast signal, load within `load_epsilon` of its last archived
  /// value, in-band (neither above the overload nor below the idle
  /// threshold), ticks uniformly spaced — is not re-evaluated. The
  /// run of skipped samples is held as (value, start, interval,
  /// count) and replayed into the archive verbatim before anything
  /// reads it, so the archive stays bit-identical at epsilon 0.
  bool dirty_tracking = true;
  /// 0 (default) = only bitwise-equal loads may be skipped: every
  /// observable value is exact. > 0 = loads within epsilon of the
  /// carried value are also skipped; archived values then approximate
  /// the true loads by at most epsilon, but trigger *arming* stays
  /// exact because the in-band test always uses the actual load.
  double load_epsilon = 0.0;
};

/// Dense id of a registered monitoring subject: its registration
/// rank. Stable for the system's lifetime.
using SubjectId = int32_t;

/// The load monitoring system of Figure 2: short peaks are common in
/// real systems, so a threshold crossing only *arms* an observation
/// window; the fuzzy controller is triggered when the average load
/// over the watch time confirms a real overload (or idle) situation.
///
/// One instance supervises any number of subjects (servers and
/// services); per-subject state machines are independent. Subjects
/// live in a dense array: callers on the per-tick hot path resolve a
/// SubjectId once (SubjectIdOf) and feed ObserveById — no string
/// lookup, and the archive series handle is cached per subject.
class LoadMonitoringSystem {
 public:
  using TriggerCallback = std::function<void(const Trigger&)>;

  LoadMonitoringSystem(LoadArchive* archive, MonitorConfig config);

  /// Registers a subject. `idle_divisor` divides the idle threshold
  /// base (the server's performance index; 1.0 for services).
  /// `watch_override` replaces the global overload watchTime for this
  /// subject (§4.1 speaks of "the service specific watchTime" — a
  /// jittery service can be observed longer than a steady one).
  Status RegisterSubject(TriggerKind overload_kind, std::string name,
                         double idle_divisor = 1.0,
                         std::optional<Duration> watch_override =
                             std::nullopt);

  /// Dense id of a registered subject; NotFound if unknown.
  Result<SubjectId> SubjectIdOf(std::string_view name) const;

  /// The effective overload watchTime of a registered subject.
  Result<Duration> WatchTime(std::string_view name) const;

  /// Feeds one measurement; appends to the archive and advances the
  /// detection state machine. Fires the callback on confirmation.
  /// `detection_load` optionally drives the threshold logic with a
  /// different signal than the archived measurement — the proactive
  /// extension passes max(measured, forecast) so imminent overloads
  /// arm the watch early while the archive keeps the true loads.
  Status Observe(SimTime now, std::string_view name, double load,
                 std::optional<double> detection_load = std::nullopt);
  /// Hot-path twin keyed by SubjectId (no string lookup).
  Status ObserveById(SimTime now, SubjectId subject, double load,
                     std::optional<double> detection_load = std::nullopt);

  /// Replays a subject's carried-forward (skipped) samples into the
  /// archive. Anything that reads the subject's series directly —
  /// console views, forecasts, the controller's load variables — must
  /// materialize first; ObserveById does it itself before any full
  /// evaluation. No-op for clean subjects.
  Status MaterializeSubject(SubjectId subject);
  /// Materializes every subject (e.g. before saving the archive).
  Status MaterializeAll();

  /// Rewinds every subject's detection state machine and heartbeat
  /// watch to its just-registered state and zeroes the trigger /
  /// evaluation counters. Registrations, archive handles, and watch
  /// slots are kept, so a rerun observes allocation-free. Pair with
  /// LoadArchive::ClearSamples — the archive itself is not touched.
  void ResetObservations();

  /// Full evaluations performed (arming checks + archive appends).
  int64_t evaluations() const { return evaluations_; }
  /// Observations compressed away by dirty tracking.
  int64_t skips() const { return skips_; }

  // --- Heartbeat failure detection ------------------------------------

  /// Starts watching a heartbeat source. `failed_kind` must be
  /// kInstanceFailed or kServerFailed; `key` is the unique watch key
  /// ("s/<server>" or "i/<id>"), `subject` the human-readable trigger
  /// subject (server name or "service@server"), `instance` the
  /// instance id for instance watches. The subject counts as alive at
  /// `now`. Re-watching a tombstoned key reactivates it in place, so
  /// iteration order — and with it trigger order — depends only on
  /// first-registration order, never on churn.
  Status WatchHeartbeat(TriggerKind failed_kind, std::string key,
                        std::string subject, SimTime now,
                        uint64_t instance = 0);
  /// Stops watching (tombstones the slot; the key may be re-watched).
  Status UnwatchHeartbeat(std::string_view key);
  /// Feeds one heartbeat; clears a previous failure report so a
  /// recovered subject can fail again later.
  Status RecordHeartbeat(std::string_view key, SimTime now);
  /// Dense slot of a watched heartbeat key; NotFound if never
  /// watched. Slots are stable for the system's lifetime, so hot
  /// feeders resolve once and use RecordHeartbeatById per tick.
  Result<size_t> HeartbeatIdOf(std::string_view key) const;
  /// Hot-path twin of RecordHeartbeat (no string lookup).
  Status RecordHeartbeatById(size_t id, SimTime now);
  /// Fires a failure trigger (via the trigger callback) for every
  /// active watch silent for heartbeat_interval * miss_threshold or
  /// longer. Each failure is reported once until a fresh heartbeat
  /// arrives. Iterates watches in first-registration order.
  void CheckHeartbeats(SimTime now);
  /// Active (non-tombstoned) heartbeat watches.
  size_t active_heartbeat_watches() const;

  void set_trigger_callback(TriggerCallback callback) {
    callback_ = std::move(callback);
  }

  /// Structured tracing sink (nullptr clears): every confirmed
  /// trigger is recorded as a kTriggerConfirmed event before the
  /// callback runs.
  void set_trace_buffer(obs::TraceBuffer* trace) { trace_ = trace; }

  const MonitorConfig& config() const { return config_; }

  /// Archive key used for a subject ("server/x" or "service/x").
  static std::string ArchiveKey(TriggerKind overload_kind,
                                std::string_view name);

  /// Number of confirmed triggers fired so far.
  int64_t triggers_fired() const { return triggers_fired_; }

  // --- Checkpoint/restore ----------------------------------------------
  /// Serializes the dynamic per-subject detection state (phase, watch
  /// window, carry-forward run), the complete heartbeat table
  /// (including tombstoned slots, so restored slot ids keep the
  /// first-registration iteration order), and the counters. Static
  /// registration data (thresholds, watch times) is rebuilt from the
  /// configuration and only validated here.
  void SaveState(ByteWriter* w) const;
  /// Restores onto an identically-registered system: every snapshot
  /// subject must already be registered (same landscape). Heartbeat
  /// slots are rebuilt wholesale — callers caching HeartbeatIdOf
  /// results must re-resolve them afterwards.
  Status RestoreState(ByteReader* r);

 private:
  enum class Phase { kNormal, kWatchingOverload, kWatchingIdle };

  struct SubjectState {
    TriggerKind overload_kind;  // kServerOverloaded or kServiceOverloaded
    std::string name;           // subject name (trigger subject)
    std::string key;            // archive key
    /// Archive series, resolved on first observation (lazily, so the
    /// archive's key set still reflects only subjects that actually
    /// reported data).
    LoadArchive::Handle series;
    double idle_threshold = 0.125;
    Duration overload_watch = Duration::Zero();  // effective watchTime
    Phase phase = Phase::kNormal;
    SimTime watch_started;
    /// Carry-forward compression (dirty tracking): `last_value` /
    /// `last_at` describe the newest sample (appended or skipped); a
    /// run of skipped samples is `pending_count` copies of
    /// `last_value` at `pending_first + i * pending_interval`.
    /// `last_value` cannot change while a run is open — a differing
    /// load forces a full evaluation, which materializes first.
    double last_value = 0.0;
    SimTime last_at;
    bool has_last = false;
    SimTime pending_first;
    Duration pending_interval = Duration::Zero();
    int64_t pending_count = 0;
  };

  /// One heartbeat source. Slots are never erased, only deactivated
  /// (`active = false`), so CheckHeartbeats iterates a stable order.
  struct HeartbeatState {
    TriggerKind failed_kind;  // kInstanceFailed or kServerFailed
    std::string key;
    std::string subject;
    uint64_t instance = 0;
    SimTime last_seen;
    bool active = true;
    bool reported = false;
  };

  LoadArchive* archive_;
  MonitorConfig config_;
  /// Traces and fires a confirmed trigger.
  void Confirm(Trigger trigger);

  /// Dense subject storage + name resolution done once per caller.
  std::vector<SubjectState> subjects_;
  std::map<std::string, SubjectId, std::less<>> subject_ids_;
  std::vector<HeartbeatState> heartbeats_;
  std::map<std::string, size_t, std::less<>> heartbeat_ids_;
  TriggerCallback callback_;
  obs::TraceBuffer* trace_ = nullptr;
  int64_t triggers_fired_ = 0;
  int64_t evaluations_ = 0;
  int64_t skips_ = 0;
};

}  // namespace autoglobe::monitor

#endif  // AUTOGLOBE_MONITOR_MONITORING_H_
