# Empty compiler generated dependencies file for ag_fuzzy.
# This may be replaced when dependencies are built.
