#ifndef AUTOGLOBE_SIM_SIMULATOR_H_
#define AUTOGLOBE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "obs/trace.h"

namespace autoglobe::sim {

/// Identifier of a scheduled event; usable for cancellation.
using EventId = uint64_t;

/// Serializable re-arm descriptor of a pending event. Callbacks are
/// closures and cannot be persisted; a subsystem whose events must
/// survive a checkpoint attaches a descriptor at schedule time and
/// supplies a factory that rebuilds the callback from it at restore
/// time (Simulator::RestoreState). `kind` selects the factory branch;
/// the remaining fields carry the closure's captures. Both string
/// fields must view storage that outlives the event — string literals
/// or strings interned through EventLabel — so copying an event stays
/// allocation-free on the re-arm path.
struct EventDesc {
  std::string_view kind;  ///< factory dispatch key; empty = transient
  std::string_view str;   ///< captured name (server/service), if any
  uint64_t a = 0;         ///< captured id/token, if any
  uint64_t b = 0;         ///< second captured id, if any
  int64_t x = 0;          ///< small captured enum/int, if any
  Duration dur = Duration::Zero();  ///< captured duration, if any
};

/// Cheap event label. The overwhelmingly common case — a string
/// literal like "tick" — is stored as a borrowed pointer: no heap
/// allocation per event, copies are trivial. Dynamic labels (e.g. the
/// executor's per-instance labels) are interned once per distinct
/// string in a process-wide table and then behave like literals.
class EventLabel {
 public:
  /// Borrowing constructor: `literal` must have static storage
  /// duration (a string literal). Zero cost.
  EventLabel(const char* literal) : label_(literal) {}  // NOLINT
  /// Interning constructors for dynamically built labels.
  EventLabel(const std::string& dynamic);  // NOLINT
  EventLabel(std::string_view dynamic);    // NOLINT

  std::string_view view() const { return label_; }

 private:
  std::string_view label_;
};

/// Single-threaded discrete-event simulation kernel. Events fire in
/// timestamp order; events with equal timestamps fire in scheduling
/// (FIFO) order, which makes runs fully deterministic.
///
/// Thread model: one Simulator is confined to one thread; parallelism
/// lives *across* simulators (see common/thread_pool.h), never inside
/// one. The label intern table is the only shared state and is
/// internally synchronized.
///
/// The paper's simulation environment runs "in 40-fold acceleration";
/// a discrete-event kernel is the limit case of that idea — simulated
/// time advances only when something happens.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `at` (>= now). Events in
  /// the past are rejected. The descriptor overloads make the event
  /// snapshot-safe (see EventDesc); descriptor-less events cannot be
  /// pending when SaveState runs.
  Result<EventId> ScheduleAt(SimTime at, EventLabel label,
                             Callback callback);
  Result<EventId> ScheduleAt(SimTime at, EventLabel label, EventDesc desc,
                             Callback callback);
  /// Schedules `callback` after `delay` (>= 0).
  Result<EventId> ScheduleAfter(Duration delay, EventLabel label,
                                Callback callback);
  Result<EventId> ScheduleAfter(Duration delay, EventLabel label,
                                EventDesc desc, Callback callback);

  /// Schedules `callback` every `period`, first firing at
  /// `now + period`. Returns a handle that cancels the whole series.
  Result<EventId> SchedulePeriodic(Duration period, EventLabel label,
                                   Callback callback);
  Result<EventId> SchedulePeriodic(Duration period, EventLabel label,
                                   EventDesc desc, Callback callback);

  /// Cancels a pending event (or periodic series). NotFound when the
  /// event already fired or never existed.
  Status Cancel(EventId id);

  /// Number of events still pending.
  size_t pending_events() const { return live_count_; }

  /// Pre-sizes the event heap and the per-id liveness array for a run
  /// expected to allocate about `expected_events` event ids. Purely a
  /// capacity hint: large runs (hyperscale landscapes schedule one id
  /// per executor action) avoid re-growing the liveness array
  /// mid-run, keeping steady-state ticks allocation-free.
  void ReserveEvents(size_t expected_events);

  /// Rewinds the kernel to a just-constructed state: empty queue,
  /// clock at Start, ids and sequence numbers restarting from the
  /// beginning — so a rerun schedules the exact same event ids and
  /// fires in the exact same order as a fresh simulator. The heap and
  /// liveness storage keep their capacity (a rerun re-schedules
  /// allocation-free) and the trace sink is kept.
  void Reset();

  /// Dispatches a single event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains or `end` is reached; the clock is
  /// left at min(end, last event time). Events at exactly `end` fire.
  void RunUntil(SimTime end);

  /// Runs until the queue drains completely.
  void RunAll();

  /// Installs a structured trace sink (nullptr clears): every
  /// dispatched event is recorded as a kEventDispatch trace event
  /// carrying the label and event id. The buffer must outlive the
  /// simulator; with no buffer installed the dispatch path pays one
  /// predictable branch.
  void set_trace_buffer(obs::TraceBuffer* buffer) { trace_ = buffer; }

  /// Total number of events dispatched so far.
  uint64_t dispatched_events() const { return dispatched_; }

  // --- Checkpoint/restore ----------------------------------------------
  /// Rebuilds an event callback from its descriptor at restore time.
  using CallbackFactory = std::function<Result<Callback>(const EventDesc&)>;

  /// Serializes the clock, the id/sequence counters, the per-id
  /// liveness array and every pending event's (at, seq, id, label,
  /// period, descriptor) into `w`. Lazily-cancelled queue entries are
  /// dropped (their liveness byte already says kCancelled). Errors if
  /// a pending event carries no descriptor — its callback could not
  /// be rebuilt, so the snapshot would be unable to resume.
  Status SaveState(ByteWriter* w) const;

  /// Restores a SaveState image: the pending-event heap is rebuilt
  /// with identical (at, seq, id) triples, so the restored run
  /// dispatches events in exactly the original order. `factory` maps
  /// each descriptor back to a callback; its errors propagate.
  Status RestoreState(ByteReader* r, const CallbackFactory& factory);

 private:
  // Liveness is a flat per-id byte array instead of hash sets: ids are
  // dense (monotonically allocated from 1), so state lookup is one
  // indexed load on the dispatch path. One byte per event ever
  // scheduled is the trade — an 80-hour paper run allocates a few
  // hundred kB, far cheaper than two hash probes per event.
  enum class EventState : uint8_t { kDone = 0, kLive, kCancelled };

  struct Event {
    SimTime at;
    uint64_t seq;  // tie-breaker for determinism
    EventId id;
    EventLabel label;
    /// One-shot payload; moved out at dispatch (never copied).
    Callback once;
    /// Periodic payload, shared by every occurrence: re-arming copies
    /// a refcount, not the std::function.
    std::shared_ptr<Callback> series;
    // Period of a periodic series; zero for one-shot events.
    Duration period = Duration::Zero();
    /// Snapshot descriptor; trivially copyable (interned views).
    EventDesc desc;
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap
      return a.seq > b.seq;
    }
  };

  EventId AllocateId();
  EventState& StateOf(EventId id) { return state_[id]; }
  void Push(Event event);
  Event PopTop();

  // Binary min-heap managed with std::push_heap/pop_heap so events
  // are *moved* in and out — a priority_queue would copy the label
  // and std::function on every top()/re-heapify.
  std::vector<Event> heap_;
  std::vector<EventState> state_;  // indexed by EventId
  size_t live_count_ = 0;
  SimTime now_ = SimTime::Start();
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t dispatched_ = 0;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace autoglobe::sim

#endif  // AUTOGLOBE_SIM_SIMULATOR_H_
