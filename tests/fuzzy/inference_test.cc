#include "fuzzy/inference.h"

#include <gtest/gtest.h>

#include <cmath>

#include "fuzzy/rule_parser.h"

namespace autoglobe::fuzzy {
namespace {

RuleBase MakeLoadRuleBase() {
  RuleBase rb("test");
  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::StandardLoad("cpuLoad")).ok());
  EXPECT_TRUE(
      rb.AddVariable(LinguisticVariable::StandardLoad("memLoad")).ok());
  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::RampOutput("scaleOut")).ok());
  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::RampOutput("scaleIn")).ok());
  return rb;
}

TEST(RuleBaseTest, AddRulesFromTextValidates) {
  RuleBase rb = MakeLoadRuleBase();
  EXPECT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS high THEN scaleOut IS applicable\n"
                    "IF cpuLoad IS low AND memLoad IS low "
                    "THEN scaleIn IS applicable\n")
                  .ok());
  EXPECT_EQ(rb.size(), 2u);
  auto outputs = rb.OutputVariables();
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0], "scaleOut");
  EXPECT_EQ(outputs[1], "scaleIn");
}

TEST(RuleBaseTest, UnknownVariableRejected) {
  RuleBase rb = MakeLoadRuleBase();
  Status s = rb.AddRulesFromText(
      "IF gpuLoad IS high THEN scaleOut IS applicable");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(RuleBaseTest, UnknownTermRejected) {
  RuleBase rb = MakeLoadRuleBase();
  EXPECT_FALSE(rb.AddRulesFromText(
                     "IF cpuLoad IS enormous THEN scaleOut IS applicable")
                   .ok());
  EXPECT_FALSE(rb.AddRulesFromText(
                     "IF cpuLoad IS high THEN scaleOut IS mandatory")
                   .ok());
  EXPECT_FALSE(rb.AddRulesFromText(
                     "IF cpuLoad IS high THEN explode IS applicable")
                   .ok());
}

TEST(RuleBaseTest, DuplicateVariableRejected) {
  RuleBase rb = MakeLoadRuleBase();
  EXPECT_FALSE(
      rb.AddVariable(LinguisticVariable::StandardLoad("cpuLoad")).ok());
}

TEST(InferenceTest, SingleRuleTruthBecomesCrispValue) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(
      rb.AddRulesFromText("IF cpuLoad IS high THEN scaleOut IS applicable")
          .ok());
  InferenceEngine engine;
  // mu_high(0.9) = 0.8 on the standard variable; the ramp output under
  // leftmost-max returns exactly the clip height.
  auto value = engine.InferValue(rb, {{"cpuLoad", 0.9}}, "scaleOut");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_NEAR(*value, 0.8, 1e-9);
}

TEST(InferenceTest, MissingInputIsError) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(
      rb.AddRulesFromText("IF cpuLoad IS high THEN scaleOut IS applicable")
          .ok());
  InferenceEngine engine;
  auto result = engine.Infer(rb, {{"memLoad", 0.5}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(InferenceTest, AndUsesMinOrUsesMax) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS high AND memLoad IS high "
                    "THEN scaleOut IS applicable\n"
                    "IF cpuLoad IS high OR memLoad IS high "
                    "THEN scaleIn IS applicable\n")
                  .ok());
  InferenceEngine engine;
  // mu_high(0.9) = 0.8, mu_high(0.6) = 0.2.
  Inputs inputs = {{"cpuLoad", 0.9}, {"memLoad", 0.6}};
  EXPECT_NEAR(*engine.InferValue(rb, inputs, "scaleOut"), 0.2, 1e-9);
  EXPECT_NEAR(*engine.InferValue(rb, inputs, "scaleIn"), 0.8, 1e-9);
}

TEST(InferenceTest, HedgesConcentrateAndDilate) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS VERY high THEN scaleOut IS applicable\n"
                    "IF cpuLoad IS SOMEWHAT high THEN scaleIn IS "
                    "applicable\n")
                  .ok());
  InferenceEngine engine;
  // mu_high(0.9) = 0.8: VERY squares it (0.64), SOMEWHAT takes the
  // square root (~0.894).
  EXPECT_NEAR(*engine.InferValue(rb, {{"cpuLoad", 0.9}}, "scaleOut"),
              0.64, 1e-9);
  EXPECT_NEAR(*engine.InferValue(rb, {{"cpuLoad", 0.9}}, "scaleIn"),
              std::sqrt(0.8), 1e-9);
}

TEST(InferenceTest, NegationUsesComplement) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS NOT high THEN scaleIn IS applicable")
                  .ok());
  InferenceEngine engine;
  EXPECT_NEAR(*engine.InferValue(rb, {{"cpuLoad", 0.9}}, "scaleIn"), 0.2,
              1e-9);
}

TEST(InferenceTest, MultipleRulesAggregateWithUnion) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS high THEN scaleOut IS applicable\n"
                    "IF memLoad IS high THEN scaleOut IS applicable\n")
                  .ok());
  InferenceEngine engine;
  // Union of two clipped ramps: height = max of clips = 0.8.
  auto value = engine.InferValue(
      rb, {{"cpuLoad", 0.9}, {"memLoad", 0.6}}, "scaleOut");
  ASSERT_TRUE(value.ok());
  EXPECT_NEAR(*value, 0.8, 1e-9);
}

TEST(InferenceTest, RuleWeightScalesTruth) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS high THEN scaleOut IS applicable WITH 0.5")
                  .ok());
  InferenceEngine engine;
  EXPECT_NEAR(*engine.InferValue(rb, {{"cpuLoad", 0.9}}, "scaleOut"),
              0.8 * 0.5, 1e-9);
}

TEST(InferenceTest, NoFiringRuleDefuzzifiesToDomainMin) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(
      rb.AddRulesFromText("IF cpuLoad IS high THEN scaleOut IS applicable")
          .ok());
  InferenceEngine engine;
  auto outputs = engine.Infer(rb, {{"cpuLoad", 0.1}});
  ASSERT_TRUE(outputs.ok());
  const InferenceOutput& out = outputs->at("scaleOut");
  EXPECT_DOUBLE_EQ(out.crisp, 0.0);
  EXPECT_DOUBLE_EQ(out.set.Height(), 0.0);
}

TEST(InferenceTest, UnknownOutputVariableRequested) {
  RuleBase rb = MakeLoadRuleBase();
  ASSERT_TRUE(
      rb.AddRulesFromText("IF cpuLoad IS high THEN scaleOut IS applicable")
          .ok());
  InferenceEngine engine;
  EXPECT_FALSE(engine.InferValue(rb, {{"cpuLoad", 0.9}}, "scaleIn").ok());
}

TEST(AggregatedSetTest, EvalIsMaxOfClippedParts) {
  AggregatedSet set(0.0, 1.0);
  set.AddClipped(MembershipFunction::RampUp(0.0, 1.0).value(), 0.6);
  set.AddClipped(MembershipFunction::RampDown(0.0, 1.0).value(), 0.3);
  EXPECT_NEAR(set.Eval(0.0), 0.3, 1e-12);   // down ramp clipped at 0.3
  EXPECT_NEAR(set.Eval(0.5), 0.5, 1e-12);   // up ramp at 0.5
  EXPECT_NEAR(set.Eval(0.9), 0.6, 1e-12);   // up ramp clipped at 0.6
  EXPECT_NEAR(set.Height(), 0.6, 1e-12);
}

TEST(AggregatedSetTest, ZeroClipContributesNothing) {
  AggregatedSet set(0.0, 1.0);
  set.AddClipped(MembershipFunction::RampUp(0.0, 1.0).value(), 0.0);
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.Defuzzify(Defuzzifier::kLeftmostMax), 0.0);
}

TEST(AggregatedSetTest, DefuzzifierComparison) {
  // A single symmetric triangle clipped at 1: centroid and mean-of-max
  // both sit at the apex, leftmost-max too.
  AggregatedSet set(0.0, 1.0);
  set.AddClipped(MembershipFunction::Triangle(0.2, 0.5, 0.8).value(), 1.0);
  EXPECT_NEAR(set.Defuzzify(Defuzzifier::kLeftmostMax), 0.5, 1e-9);
  EXPECT_NEAR(set.Defuzzify(Defuzzifier::kMeanOfMax), 0.5, 1e-3);
  EXPECT_NEAR(set.Defuzzify(Defuzzifier::kCentroid), 0.5, 1e-3);
}

TEST(AggregatedSetTest, LeftmostMaxPicksLeftmostPlateauPoint) {
  // Clipping a triangle at 0.5 creates a plateau from x=0.35 to 0.65;
  // the paper's method takes the leftmost point of that plateau.
  AggregatedSet set(0.0, 1.0);
  set.AddClipped(MembershipFunction::Triangle(0.2, 0.5, 0.8).value(), 0.5);
  EXPECT_NEAR(set.Defuzzify(Defuzzifier::kLeftmostMax), 0.35, 1e-9);
  EXPECT_NEAR(set.Defuzzify(Defuzzifier::kMeanOfMax), 0.5, 1e-3);
}

TEST(AggregatedSetTest, SampleProducesCurve) {
  AggregatedSet set(0.0, 1.0);
  set.AddClipped(MembershipFunction::RampUp(0.0, 1.0).value(), 0.6);
  std::vector<double> samples = set.Sample(10);
  ASSERT_EQ(samples.size(), 11u);
  EXPECT_NEAR(samples[0], 0.0, 1e-12);
  EXPECT_NEAR(samples[5], 0.5, 1e-12);
  EXPECT_NEAR(samples[10], 0.6, 1e-12);
}

TEST(AggregatedSetTest, NonPositiveSampleCountDegeneratesToSingleSample) {
  AggregatedSet set(0.25, 1.0);
  set.AddClipped(MembershipFunction::RampDown(0.0, 1.0).value(), 0.6);
  for (int n : {0, -5}) {
    std::vector<double> samples = set.Sample(n);
    ASSERT_EQ(samples.size(), 1u);
    EXPECT_DOUBLE_EQ(samples[0], set.Eval(0.25));
  }
}

// Property: for an identity-ramp output, leftmost-max defuzzification
// equals the maximum rule truth for any combination of clip levels.
class RampDefuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(RampDefuzzProperty, CrispEqualsMaxClip) {
  double clip_a = (GetParam() % 10) / 10.0;
  double clip_b = (GetParam() / 10) / 10.0;
  AggregatedSet set(0.0, 1.0);
  auto ramp = MembershipFunction::RampUp(0.0, 1.0).value();
  set.AddClipped(ramp, clip_a);
  set.AddClipped(ramp, clip_b);
  double expected = std::max(clip_a, clip_b);
  EXPECT_NEAR(set.Defuzzify(Defuzzifier::kLeftmostMax), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ClipGrid, RampDefuzzProperty,
                         ::testing::Range(0, 100, 7));

}  // namespace
}  // namespace autoglobe::fuzzy
