#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace autoglobe::obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kEventDispatch:
      return "event_dispatch";
    case TraceEventKind::kTriggerConfirmed:
      return "trigger_confirmed";
    case TraceEventKind::kActionExecuted:
      return "action_executed";
    case TraceEventKind::kActionFailed:
      return "action_failed";
    case TraceEventKind::kInstanceLifecycle:
      return "instance_lifecycle";
    case TraceEventKind::kDecision:
      return "decision";
    case TraceEventKind::kAlert:
      return "alert";
    case TraceEventKind::kSlaViolation:
      return "sla_violation";
    case TraceEventKind::kFault:
      return "fault";
    case TraceEventKind::kMarker:
      return "marker";
  }
  return "?";
}

std::string_view TraceEventCategory(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kEventDispatch:
      return "sim";
    case TraceEventKind::kTriggerConfirmed:
      return "monitor";
    case TraceEventKind::kActionExecuted:
    case TraceEventKind::kActionFailed:
    case TraceEventKind::kInstanceLifecycle:
      return "executor";
    case TraceEventKind::kDecision:
    case TraceEventKind::kAlert:
      return "controller";
    case TraceEventKind::kSlaViolation:
      return "sla";
    case TraceEventKind::kFault:
      return "faults";
    case TraceEventKind::kMarker:
      return "app";
  }
  return "?";
}

TraceBuffer::TraceBuffer(size_t capacity) {
  slots_.resize(std::max<size_t>(capacity, 1));
}

void TraceBuffer::Record(SimTime at, TraceEventKind kind,
                         std::string_view name, std::string detail,
                         int64_t value) {
  TraceEvent& slot = slots_[next_];
  slot.at = at;
  slot.kind = kind;
  slot.name = name;
  slot.detail = std::move(detail);
  slot.value = value;
  next_ = (next_ + 1) % slots_.size();
  ++total_;
}

size_t TraceBuffer::size() const {
  return total_ < slots_.size() ? static_cast<size_t>(total_)
                                : slots_.size();
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::vector<TraceEvent> events;
  size_t held = size();
  events.reserve(held);
  size_t oldest = total_ < slots_.size() ? 0 : next_;
  for (size_t i = 0; i < held; ++i) {
    events.push_back(slots_[(oldest + i) % slots_.size()]);
  }
  return events;
}

void TraceBuffer::Clear() {
  for (TraceEvent& slot : slots_) slot = TraceEvent{};
  next_ = 0;
  total_ = 0;
}

std::string JsonEscape(std::string_view raw) {
  std::string escaped;
  escaped.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          escaped += StrFormat("\\u%04x", c);
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

namespace {

class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : path_(path), file_(std::fopen(path.c_str(), "w")) {}
  ~FileWriter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool ok() const { return file_ != nullptr; }
  std::FILE* get() { return file_; }

  Status Close() {
    if (file_ == nullptr) {
      return Status::Internal(
          StrFormat("cannot open \"%s\" for writing", path_.c_str()));
    }
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) {
      return Status::Internal(
          StrFormat("error writing \"%s\"", path_.c_str()));
    }
    return Status::OK();
  }

 private:
  std::string path_;
  std::FILE* file_;
};

}  // namespace

Status ExportJsonl(const TraceBuffer& buffer, const std::string& path) {
  FileWriter writer(path);
  if (!writer.ok()) return writer.Close();
  for (const TraceEvent& event : buffer.Events()) {
    std::fprintf(
        writer.get(),
        "{\"t\": %lld, \"kind\": \"%.*s\", \"name\": \"%s\", "
        "\"detail\": \"%s\", \"value\": %lld}\n",
        static_cast<long long>(event.at.seconds()),
        static_cast<int>(TraceEventKindName(event.kind).size()),
        TraceEventKindName(event.kind).data(),
        JsonEscape(event.name).c_str(), JsonEscape(event.detail).c_str(),
        static_cast<long long>(event.value));
  }
  return writer.Close();
}

Status ExportChromeTrace(const TraceBuffer& buffer,
                         const std::string& path) {
  FileWriter writer(path);
  if (!writer.ok()) return writer.Close();
  // One process for the simulation; one thread (track) per category
  // so kernel dispatches do not drown controller decisions. Instant
  // events with thread scope render as searchable slivers in
  // Perfetto; dispatch density is still visible as track texture.
  std::fprintf(writer.get(),
               "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  std::fprintf(writer.get(),
               "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
               "\"args\": {\"name\": \"autoglobe simulation\"}}");
  // The "faults" track appears only when the run recorded fault
  // events, so exports of fault-free runs stay byte-identical to the
  // pre-fault-subsystem format.
  std::vector<TraceEvent> events = buffer.Events();
  bool has_faults = false;
  for (const TraceEvent& event : events) {
    if (TraceEventCategory(event.kind) == "faults") {
      has_faults = true;
      break;
    }
  }
  std::vector<std::string_view> categories = {"sim", "monitor", "executor",
                                              "controller", "sla"};
  if (has_faults) categories.push_back("faults");
  categories.push_back("app");
  for (size_t i = 0; i < categories.size(); ++i) {
    std::fprintf(writer.get(),
                 ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %zu, \"args\": {\"name\": \"%.*s\"}}",
                 i + 1, static_cast<int>(categories[i].size()),
                 categories[i].data());
  }
  auto track_of = [&categories](TraceEventKind kind) -> size_t {
    std::string_view category = TraceEventCategory(kind);
    for (size_t i = 0; i < categories.size(); ++i) {
      if (categories[i] == category) return i + 1;
    }
    return categories.size();
  };
  for (const TraceEvent& event : events) {
    // Simulated seconds -> trace microseconds: one simulated minute
    // reads as 60 ms on the timeline, keeping 80-hour runs scrubable.
    long long ts = static_cast<long long>(event.at.seconds()) * 1000;
    std::fprintf(
        writer.get(),
        ",\n{\"name\": \"%s\", \"cat\": \"%.*s\", \"ph\": \"i\", "
        "\"s\": \"t\", \"ts\": %lld, \"pid\": 1, \"tid\": %zu, "
        "\"args\": {\"detail\": \"%s\", \"value\": %lld, \"sim_time\": "
        "\"%s\"}}",
        JsonEscape(event.name).c_str(),
        static_cast<int>(TraceEventCategory(event.kind).size()),
        TraceEventCategory(event.kind).data(), ts, track_of(event.kind),
        JsonEscape(event.detail).c_str(),
        static_cast<long long>(event.value),
        event.at.ToString().c_str());
  }
  std::fprintf(writer.get(), "\n]}\n");
  return writer.Close();
}

}  // namespace autoglobe::obs
