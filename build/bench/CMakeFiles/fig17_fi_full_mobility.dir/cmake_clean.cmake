file(REMOVE_RECURSE
  "CMakeFiles/fig17_fi_full_mobility.dir/fig17_fi_full_mobility.cpp.o"
  "CMakeFiles/fig17_fi_full_mobility.dir/fig17_fi_full_mobility.cpp.o.d"
  "fig17_fi_full_mobility"
  "fig17_fi_full_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_fi_full_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
