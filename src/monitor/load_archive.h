#ifndef AUTOGLOBE_MONITOR_LOAD_ARCHIVE_H_
#define AUTOGLOBE_MONITOR_LOAD_ARCHIVE_H_

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"

namespace autoglobe::monitor {

/// One archived measurement.
struct LoadSample {
  SimTime at;
  double value = 0.0;
};

/// The load archive of the controller framework (paper §2): "stores a
/// persistent aggregated view of historic load data. This data is
/// used to calculate the average load of services during their
/// watchTime and to initialize all resource variables of the fuzzy
/// controller."
///
/// Raw samples are kept for a bounded retention window; beyond it
/// they are folded into fixed-width aggregate buckets (mean values),
/// which is what the load-forecasting extension consumes.
///
/// All name-based entry points take `std::string_view` and resolve it
/// with heterogeneous lookup — no temporary std::string per call. Hot
/// callers (the monitoring system feeds every subject once per tick)
/// should resolve the key once via Acquire() and use the returned
/// Handle: a handle call skips the string comparison entirely.
class LoadArchive {
 public:
  explicit LoadArchive(Duration raw_retention = Duration::Hours(48),
                       Duration aggregate_bucket = Duration::Minutes(15));

 private:
  struct Series {
    std::string key;  // for error messages
    std::deque<LoadSample> raw;
    // Completed aggregate buckets: bucket start time + mean.
    std::vector<LoadSample> aggregated;
    // Accumulator of the bucket currently being filled.
    int64_t open_bucket = -1;  // bucket index, -1 = none
    double open_sum = 0.0;
    int64_t open_count = 0;
  };

 public:
  /// Stable reference to one subject's series, resolved once. Valid
  /// for the archive's lifetime (map nodes never move).
  class Handle {
   public:
    Handle() = default;
    explicit operator bool() const { return series_ != nullptr; }

   private:
    friend class LoadArchive;
    explicit Handle(Series* series) : series_(series) {}
    Series* series_ = nullptr;
  };

  /// Resolves (creating if needed) the series for a subject key.
  Handle Acquire(std::string_view key);

  /// Appends a measurement for a subject key, e.g. "server/Blade3".
  /// Samples must arrive in non-decreasing time order per key.
  Status Append(std::string_view key, SimTime at, double value);
  Status Append(Handle handle, SimTime at, double value);

  /// Most recent value; NotFound when the key has no samples.
  Result<double> Latest(std::string_view key) const;
  Result<double> Latest(Handle handle) const;

  /// Mean of raw samples in (now - window, now]. NotFound when no
  /// samples fall into the window.
  Result<double> Average(std::string_view key, Duration window,
                         SimTime now) const;
  Result<double> Average(Handle handle, Duration window, SimTime now) const;

  /// Raw samples with `from < at <= to`, oldest first.
  std::vector<LoadSample> RawBetween(std::string_view key, SimTime from,
                                     SimTime to) const;

  /// Aggregated history (bucket means, oldest first) — includes
  /// buckets already evicted from the raw window.
  std::vector<LoadSample> Aggregated(std::string_view key) const;

  /// All known subject keys.
  std::vector<std::string> Keys() const;

  /// Serializes the aggregated view ("persistent aggregated view of
  /// historic load data") to / from a simple text format.
  Status Save(const std::string& path) const;
  static Result<LoadArchive> Load(const std::string& path);

  Duration raw_retention() const { return raw_retention_; }
  Duration aggregate_bucket() const { return aggregate_bucket_; }

 private:
  void FoldIntoAggregate(Series* series, const LoadSample& sample);
  const Series* FindSeries(std::string_view key) const;
  std::vector<LoadSample> AggregatedOf(const Series& series) const;

  Duration raw_retention_;
  Duration aggregate_bucket_;
  std::map<std::string, Series, std::less<>> series_;
};

}  // namespace autoglobe::monitor

#endif  // AUTOGLOBE_MONITOR_LOAD_ARCHIVE_H_
