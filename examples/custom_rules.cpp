// Authoring controller knowledge: this example writes a rule base in
// the textual rule language, loads another one (plus service
// constraints) from the declarative XML language, installs both into
// the controller, and compares decisions against the shipped default
// rules — the workflow of the paper's administrators ("an
// administrator can add service-specific rule bases for mission
// critical services", §4.1).

#include <cstdio>

#include "autoglobe/capacity.h"
#include "autoglobe/runner.h"
#include "controller/rule_bases.h"
#include "fuzzy/xml_loader.h"

using namespace autoglobe;

namespace {

// An eager rule base for a mission-critical service: scale out at the
// first sign of pressure (the SOMEWHAT hedge dilates the membership,
// so the rule already fires at moderate loads) instead of waiting for
// a full-blown overload.
constexpr const char* kMissionCriticalRules = R"(
  # eager capacity: act while the load is merely warming up
  IF serviceLoad IS SOMEWHAT high THEN scaleOut IS applicable
  IF instanceLoad IS high AND cpuLoad IS high
     THEN scaleOut IS applicable WITH 0.9
)";

// The same knowledge expressed in the XML description language, with
// the membership functions spelled out.
constexpr const char* kXmlRuleBase = R"(
<ruleBase name="criticalIdle">
  <variable name="serviceLoad" min="0" max="1">
    <term name="low"    shape="trapezoid" points="0,0,0.2,0.4"/>
    <term name="medium" shape="trapezoid" points="0.2,0.4,0.5,0.7"/>
    <term name="high"   shape="trapezoid" points="0.5,1,1,1"/>
  </variable>
  <variable name="instancesOfService" min="0" max="16">
    <term name="few"  shape="trapezoid" points="0,0,1,3"/>
    <term name="many" shape="trapezoid" points="5,7,16,16"/>
  </variable>
  <output name="scaleIn"/>
  <rules>
    # even when idle, shrink only from a comfortable surplus
    IF serviceLoad IS low AND instancesOfService IS many
       THEN scaleIn IS applicable WITH 0.6
  </rules>
</ruleBase>
)";

}  // namespace

int main() {
  Landscape landscape = MakePaperLandscape(Scenario::kConstrainedMobility);
  RunnerConfig config = MakeScenarioConfig(Scenario::kConstrainedMobility, 1.2);
  config.duration = Duration::Hours(48);

  // --- Baseline: the shipped ~40-rule default knowledge. -------------
  auto baseline = SimulationRunner::Create(landscape, config);
  if (!baseline.ok()) return 1;
  if (!(*baseline)->Run().ok()) return 1;

  // --- Custom: FI is declared mission-critical. ----------------------
  // Besides the rule overrides below, mission-critical services get a
  // shorter service-specific watchTime (§4.1): FI overloads are
  // confirmed after 3 minutes instead of 10.
  Landscape custom_landscape = landscape;
  for (auto& service : custom_landscape.services) {
    if (service.name == "FI") service.watch_time_minutes = 3;
  }
  auto custom = SimulationRunner::Create(custom_landscape, config);
  if (!custom.ok()) return 1;

  fuzzy::RuleBase critical =
      controller::MakeActionSelectionVariables("criticalOverload");
  if (Status s = critical.AddRulesFromText(kMissionCriticalRules);
      !s.ok()) {
    std::fprintf(stderr, "rule text rejected: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu mission-critical rules:\n", critical.size());
  for (const fuzzy::Rule& rule : critical.rules()) {
    std::printf("  %s\n", rule.ToString().c_str());
  }
  if (!(*custom)
           ->controller()
           .SetServiceActionRuleBase(
               "FI", monitor::TriggerKind::kServiceOverloaded,
               std::move(critical))
           .ok()) {
    return 1;
  }

  auto doc = xml::Document::Parse(kXmlRuleBase);
  if (!doc.ok()) {
    std::fprintf(stderr, "xml rejected: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  auto idle_rb = fuzzy::LoadRuleBase(*doc->root());
  if (!idle_rb.ok()) {
    std::fprintf(stderr, "rule base rejected: %s\n",
                 idle_rb.status().ToString().c_str());
    return 1;
  }
  std::printf("\nloaded \"%s\" from XML with %zu rule(s) and %zu "
              "variables\n",
              idle_rb->name().c_str(), idle_rb->size(),
              idle_rb->variables().size());
  if (!(*custom)
           ->controller()
           .SetServiceActionRuleBase("FI",
                                     monitor::TriggerKind::kServiceIdle,
                                     std::move(*idle_rb))
           .ok()) {
    return 1;
  }
  if (!(*custom)->Run().ok()) return 1;

  // --- Compare what the two controllers did to FI. -------------------
  auto fi_actions = [](const SimulationRunner& runner) {
    std::map<std::string, int> counts;
    for (const infra::ActionRecord& record : runner.executor().log()) {
      if (record.action.service == "FI" && record.status.ok()) {
        ++counts[std::string(infra::ActionTypeName(record.action.type))];
      }
    }
    return counts;
  };
  std::printf("\nactions on FI over 48 h at +20%% users (CM):\n");
  std::printf("%-18s %9s %9s\n", "action", "default", "custom");
  auto default_counts = fi_actions(**baseline);
  auto custom_counts = fi_actions(**custom);
  std::set<std::string> keys;
  for (const auto& [k, v] : default_counts) keys.insert(k);
  for (const auto& [k, v] : custom_counts) keys.insert(k);
  for (const std::string& key : keys) {
    std::printf("%-18s %9d %9d\n", key.c_str(), default_counts[key],
                custom_counts[key]);
  }
  auto first_fi_action = [](const SimulationRunner& runner) {
    for (const infra::ActionRecord& record : runner.executor().log()) {
      if (record.action.service == "FI" && record.status.ok()) {
        return record.at.ToString();
      }
    }
    return std::string("(never)");
  };
  std::printf("\nfirst FI action:  default %s, custom %s\n",
              first_fi_action(**baseline).c_str(),
              first_fi_action(**custom).c_str());
  std::printf(
      "overload server-minutes: default %.0f, custom %.0f\n",
      (*baseline)->metrics().overload_server_minutes,
      (*custom)->metrics().overload_server_minutes);
  return 0;
}
