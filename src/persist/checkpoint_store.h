#ifndef AUTOGLOBE_PERSIST_CHECKPOINT_STORE_H_
#define AUTOGLOBE_PERSIST_CHECKPOINT_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "persist/snapshot.h"

namespace autoglobe::persist {

/// A directory of rotating snapshot generations:
///
///   <dir>/checkpoint-000001.agsnap
///   <dir>/checkpoint-000002.agsnap
///   ...
///
/// Write() appends a new generation (atomic write, then prunes the
/// oldest beyond `keep`); LoadLatest() walks generations newest-first
/// and returns the first one that decodes and validates — a torn or
/// bit-flipped newest generation falls back to the previous one, with
/// every rejection reason reported.
class CheckpointStore {
 public:
  /// Creates the directory if missing. `keep` >= 1 generations are
  /// retained.
  static Result<CheckpointStore> Open(std::string dir, int keep = 3);

  /// Writes the next generation and prunes old ones. Returns the path
  /// written.
  Result<std::string> Write(
      uint64_t fingerprint,
      const std::vector<std::pair<std::string, std::string>>& sections);

  /// Loaded snapshot plus where it came from and what was skipped.
  struct Loaded {
    SnapshotData data;
    std::string path;
    /// One human-readable line per newer generation that failed
    /// validation (empty when the newest loaded cleanly).
    std::vector<std::string> skipped;
  };

  /// Newest valid generation; NotFound when the directory holds no
  /// loadable snapshot (the message lists every candidate's failure).
  Result<Loaded> LoadLatest(uint64_t expected_fingerprint = 0) const;

  /// Generation file names present (sorted ascending).
  Result<std::vector<std::string>> ListGenerations() const;

  const std::string& dir() const { return dir_; }

 private:
  CheckpointStore(std::string dir, int keep)
      : dir_(std::move(dir)), keep_(keep) {}

  std::string dir_;
  int keep_;
};

}  // namespace autoglobe::persist

#endif  // AUTOGLOBE_PERSIST_CHECKPOINT_STORE_H_
