file(REMOVE_RECURSE
  "CMakeFiles/fuzzy_test.dir/fuzzy/inference_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/inference_test.cc.o.d"
  "CMakeFiles/fuzzy_test.dir/fuzzy/linguistic_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/linguistic_test.cc.o.d"
  "CMakeFiles/fuzzy_test.dir/fuzzy/membership_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/membership_test.cc.o.d"
  "CMakeFiles/fuzzy_test.dir/fuzzy/paper_example_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/paper_example_test.cc.o.d"
  "CMakeFiles/fuzzy_test.dir/fuzzy/rule_parser_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/rule_parser_test.cc.o.d"
  "CMakeFiles/fuzzy_test.dir/fuzzy/xml_loader_test.cc.o"
  "CMakeFiles/fuzzy_test.dir/fuzzy/xml_loader_test.cc.o.d"
  "fuzzy_test"
  "fuzzy_test.pdb"
  "fuzzy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzzy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
