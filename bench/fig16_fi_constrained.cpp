// Reproduces Figure 16: FI load curves plus controller actions in the
// constrained mobility scenario. Expected behaviour: the controller
// starts additional FI instances when the morning ramp overloads the
// initial hosts; because users are sticky, "the load of Blade3 and
// Blade5 only decreases slowly"; idle instances are stopped again.

#include "scenario_figures.h"

int main() {
  return autoglobe::bench::RunFiFigure(
      "Figure 16", autoglobe::Scenario::kConstrainedMobility);
}
