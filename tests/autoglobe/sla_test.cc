#include "autoglobe/sla.h"

#include <gtest/gtest.h>

#include "autoglobe/capacity.h"

namespace autoglobe {
namespace {

SimTime Min(int m) { return SimTime::Start() + Duration::Minutes(m); }

SlaSpec MakeSla(const std::string& service, double min_satisfaction = 0.9,
                int window_minutes = 10) {
  SlaSpec spec;
  spec.service = service;
  spec.min_satisfaction = min_satisfaction;
  spec.window = Duration::Minutes(window_minutes);
  return spec;
}

TEST(SlaSpecTest, Validation) {
  EXPECT_TRUE(MakeSla("FI").Validate().ok());
  EXPECT_FALSE(MakeSla("").Validate().ok());
  EXPECT_FALSE(MakeSla("FI", 0.0).Validate().ok());
  EXPECT_FALSE(MakeSla("FI", 1.5).Validate().ok());
  EXPECT_FALSE(MakeSla("FI", 0.9, 0).Validate().ok());
}

TEST(SlaTrackerTest, AddAndCover) {
  SlaTracker tracker;
  ASSERT_TRUE(tracker.AddSla(MakeSla("FI")).ok());
  EXPECT_TRUE(tracker.Covers("FI"));
  EXPECT_FALSE(tracker.Covers("LES"));
  EXPECT_FALSE(tracker.AddSla(MakeSla("FI")).ok());  // duplicate
  EXPECT_FALSE(tracker.Observe(Min(0), "LES", 1.0).ok());
  EXPECT_FALSE(tracker.StatusOf("LES").ok());
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(SlaTrackerTest, RollingAverageDetectsViolation) {
  SlaTracker tracker;
  ASSERT_TRUE(tracker.AddSla(MakeSla("FI", 0.9, 10)).ok());
  // Ten perfect minutes: no violation.
  for (int m = 0; m < 10; ++m) {
    auto entered = tracker.Observe(Min(m), "FI", 1.0);
    ASSERT_TRUE(entered.ok());
    EXPECT_FALSE(*entered);
  }
  // Quality collapses; the rolling average crosses 0.9 after a few
  // bad samples, and `entered` fires exactly once.
  int entered_count = 0;
  for (int m = 10; m < 20; ++m) {
    auto entered = tracker.Observe(Min(m), "FI", 0.5);
    ASSERT_TRUE(entered.ok());
    if (*entered) ++entered_count;
  }
  EXPECT_EQ(entered_count, 1);
  auto status = tracker.StatusOf("FI");
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE((*status)->in_violation);
  EXPECT_GT((*status)->violation_minutes, 0.0);
  EXPECT_EQ((*status)->violation_episodes, 1);
  EXPECT_LT((*status)->current_satisfaction, 0.9);
}

TEST(SlaTrackerTest, RecoversWhenQualityReturns) {
  SlaTracker tracker;
  ASSERT_TRUE(tracker.AddSla(MakeSla("FI", 0.9, 5)).ok());
  for (int m = 0; m < 10; ++m) {
    ASSERT_TRUE(tracker.Observe(Min(m), "FI", 0.2).ok());
  }
  ASSERT_TRUE((*tracker.StatusOf("FI"))->in_violation);
  for (int m = 10; m < 20; ++m) {
    ASSERT_TRUE(tracker.Observe(Min(m), "FI", 1.0).ok());
  }
  auto status = tracker.StatusOf("FI");
  EXPECT_FALSE((*status)->in_violation);
  // A second dip counts as a second episode.
  for (int m = 20; m < 30; ++m) {
    ASSERT_TRUE(tracker.Observe(Min(m), "FI", 0.2).ok());
  }
  EXPECT_EQ((*tracker.StatusOf("FI"))->violation_episodes, 2);
}

TEST(SlaTrackerTest, ReportAndTotals) {
  SlaTracker tracker;
  ASSERT_TRUE(tracker.AddSla(MakeSla("FI")).ok());
  ASSERT_TRUE(tracker.AddSla(MakeSla("LES")).ok());
  for (int m = 0; m < 20; ++m) {
    ASSERT_TRUE(tracker.Observe(Min(m), "FI", 0.1).ok());
    ASSERT_TRUE(tracker.Observe(Min(m), "LES", 1.0).ok());
  }
  auto report = tracker.Report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_GT(tracker.TotalViolationMinutes(), 0.0);
  EXPECT_DOUBLE_EQ((*tracker.StatusOf("LES"))->violation_minutes, 0.0);
}

TEST(SlaRunnerTest, UnknownSlaServiceRejectedAtSetup) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
  config.slas.push_back(MakeSla("NOPE"));
  EXPECT_FALSE(SimulationRunner::Create(landscape, config).ok());
}

TEST(SlaRunnerTest, HealthyRunHasNoViolations) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
  config.duration = Duration::Hours(24);
  config.slas.push_back(MakeSla("FI", 0.9, 30));
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());
  EXPECT_DOUBLE_EQ((*runner)->metrics().sla_violation_minutes, 0.0);
  EXPECT_FALSE((*runner)->slas().StatusOf("FI").value()->in_violation);
}

TEST(SlaRunnerTest, EnforcementEscalatesAndShortensViolations) {
  // Load the landscape to 125 % — within the controller's capacity,
  // where SLA escalation (urgent triggers without watchTime) can act
  // on quality dips the 70 %/10-min pipeline would ride out.
  auto run = [](bool enforce) {
    Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
    RunnerConfig config =
        MakeScenarioConfig(Scenario::kFullMobility, 1.25);
    config.slas.push_back(MakeSla("FI", 0.97, 20));
    config.enforce_slas = enforce;
    auto runner = SimulationRunner::Create(landscape, config);
    EXPECT_TRUE(runner.ok());
    EXPECT_TRUE((*runner)->Run().ok());
    return (*runner)->metrics().sla_violation_minutes;
  };
  double tracked_only = run(false);
  double enforced = run(true);
  EXPECT_GT(tracked_only, 0.0);  // dips happen at this load
  EXPECT_LT(enforced, tracked_only);
}

}  // namespace
}  // namespace autoglobe
