// Reproduces Table 7, the paper's headline result: "the maximum
// numbers of users that can be handled by the existing hardware in
// the different scenarios relative to the number of users stated in
// Table 4" — static 100 %, constrained mobility 115 %, full mobility
// 135 %. The sweep follows the paper's protocol: 80-hour simulation
// runs, increasing the number of users by 5 % until the system
// becomes overloaded (sustained > 80 % CPU).
//
// The sweeps of all three scenarios fan out over one worker pool
// (FindCapacityAll); results are bit-identical to the sequential
// sweep at any thread count. Usage: table7_capacity [parallelism]
// (default 0 = one worker per hardware thread; pass 1 to measure the
// sequential baseline).

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "autoglobe/capacity.h"
#include "bench_report.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

using namespace autoglobe;

int main(int argc, char** argv) {
  CapacityOptions options;  // 80 h runs, +5 % steps, paper thresholds
  options.parallelism = argc > 1 ? std::atoi(argv[1]) : 0;
  size_t workers =
      options.parallelism == 0
          ? ThreadPool::DefaultThreadCount()
          : static_cast<size_t>(std::max(1, options.parallelism));

  std::printf("# Table 7: maximum possible, relative number of users\n");
  std::printf("# sweep parallelism: %zu worker(s)\n\n", workers);

  bench::WallTimer timer;
  auto all = FindCapacityAll(options);
  AG_CHECK_OK(all.status());
  double wall_seconds = timer.Seconds();

  struct RowSpec {
    Scenario scenario;
    int paper_percent;
  };
  const RowSpec rows[] = {
      {Scenario::kStatic, 100},
      {Scenario::kConstrainedMobility, 115},
      {Scenario::kFullMobility, 135},
  };

  // One sweep per scenario, computed exactly once: the summary table
  // and the per-step details below reuse the same results.
  std::printf("%-22s %12s %12s\n", "Scenario", "Measured", "Paper");
  size_t steps_total = 0;
  for (size_t i = 0; i < 3; ++i) {
    const CapacityResult& result = (*all)[i];
    steps_total += result.steps.size();
    std::printf("%-22s %11.0f%% %11d%%\n",
                std::string(ScenarioName(rows[i].scenario)).c_str(),
                result.max_scale * 100.0, rows[i].paper_percent);
  }

  std::printf("\n# Sweep details (per 5%% step):\n");
  for (size_t i = 0; i < 3; ++i) {
    for (const CapacityStep& step : (*all)[i].steps) {
      std::printf(
          "# %-22s %3.0f%%: %s (overload %.0f server-min, %.2f%% of "
          "samples, max streak %.0f min, %lld actions)\n",
          std::string(ScenarioName(rows[i].scenario)).c_str(),
          step.scale * 100.0, step.passed ? "ok        " : "OVERLOADED",
          step.metrics.overload_server_minutes,
          step.metrics.overload_fraction * 100.0,
          step.metrics.max_overload_streak_minutes,
          static_cast<long long>(step.metrics.actions_executed));
    }
  }

  std::printf("\n# wall-clock: %.2f s for %zu sweep steps (%.2f steps/s)\n",
              wall_seconds, steps_total,
              wall_seconds > 0 ? steps_total / wall_seconds : 0.0);

  // Registry-backed metrics: each sweep step ran with its own
  // MetricsRegistry (one per worker-thread simulation); merge the
  // snapshots into one aggregate view of the whole sweep.
  std::vector<obs::MetricsSnapshot> snapshots;
  snapshots.reserve(steps_total);
  for (size_t i = 0; i < 3; ++i) {
    for (const CapacityStep& step : (*all)[i].steps) {
      snapshots.push_back(step.observed);
    }
  }
  obs::MetricsSnapshot merged = obs::MetricsSnapshot::Merge(snapshots);
  if (merged.WriteJson("BENCH_capacity_metrics.json").ok()) {
    std::printf("# wrote BENCH_capacity_metrics.json (%zu step "
                "registries merged)\n",
                snapshots.size());
  }

  bench::BenchRecord record;
  record.name = "table7_capacity/sweep_all_scenarios";
  record.wall_seconds = wall_seconds;
  record.items_per_second =
      wall_seconds > 0 ? steps_total / wall_seconds : 0.0;
  record.extra = {{"parallelism", static_cast<double>(workers)},
                  {"steps", static_cast<double>(steps_total)},
                  {"static_max_scale", (*all)[0].max_scale},
                  {"cm_max_scale", (*all)[1].max_scale},
                  {"fm_max_scale", (*all)[2].max_scale}};
  for (const auto& [name, value] : merged.counters) {
    record.extra["total_" + name] = static_cast<double>(value);
  }
  bench::WriteBenchJson("BENCH_capacity.json", {record});

  bool ordering = (*all)[0].max_scale < (*all)[1].max_scale &&
                  (*all)[1].max_scale < (*all)[2].max_scale;
  std::printf("\n# Shape check: static < CM < FM ... %s\n",
              ordering ? "HOLDS" : "VIOLATED");
  return ordering ? 0 : 1;
}
