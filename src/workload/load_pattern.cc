#include "workload/load_pattern.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace autoglobe::workload {

namespace {

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

/// Smooth 0 -> 1 transition between a and b (hours).
double SmoothStep(double h, double a, double b) {
  if (h <= a) return 0.0;
  if (h >= b) return 1.0;
  double t = (h - a) / (b - a);
  return t * t * (3.0 - 2.0 * t);
}

double Gaussian(double h, double center, double sigma) {
  double d = (h - center) / sigma;
  return std::exp(-0.5 * d * d);
}

}  // namespace

LoadPattern LoadPattern::Flat(double level) {
  level = Clamp01(level);
  return LoadPattern(StrFormat("flat:%g", level),
                     [level](SimTime) { return level; });
}

LoadPattern LoadPattern::Interactive(const InteractiveParams& params) {
  InteractiveParams p = params;
  // Parameterized name so the XML round-trip keeps the per-service
  // morning-peak stagger (the only knob the landscapes vary).
  InteractiveParams defaults;
  std::string name =
      p.morning_peak_h == defaults.morning_peak_h
          ? "interactive"
          : StrFormat("interactive:%g", p.morning_peak_h);
  return LoadPattern(std::move(name), [p](SimTime t) {
    double h = t.DayFraction() * 24.0;
    double envelope = SmoothStep(h, p.ramp_up_start_h, p.ramp_up_end_h) *
                      (1.0 - SmoothStep(h, p.ramp_down_start_h,
                                        p.ramp_down_end_h));
    double peaks =
        p.peak_amplitude * (Gaussian(h, p.morning_peak_h, p.peak_sigma_h) +
                            Gaussian(h, p.midday_peak_h, p.peak_sigma_h) +
                            Gaussian(h, p.evening_peak_h, p.peak_sigma_h));
    double dip = p.lunch_dip * Gaussian(h, p.lunch_dip_h, p.peak_sigma_h);
    return Clamp01(p.night_level + envelope * (p.plateau + peaks - dip));
  });
}

LoadPattern LoadPattern::NightBatch(const NightBatchParams& params) {
  NightBatchParams p = params;
  return LoadPattern("nightBatch", [p](SimTime t) {
    double h = t.DayFraction() * 24.0;
    // The batch window wraps midnight: ramp up 22->23, full until
    // 05:00, ramp down 05->06.
    double batch;
    if (h >= p.batch_start_h) {
      batch = SmoothStep(h, p.batch_start_h, p.batch_full_h);
    } else if (h <= p.batch_end_h) {
      batch = 1.0 - SmoothStep(h, p.batch_wind_down_h, p.batch_end_h);
    } else {
      batch = 0.0;
    }
    return Clamp01(p.day_level +
                   (p.night_level - p.day_level) * batch);
  });
}

Result<LoadPattern> LoadPattern::FromHourlyPoints(
    std::vector<double> points) {
  if (points.size() != 24) {
    return Status::InvalidArgument(StrFormat(
        "hourly pattern needs exactly 24 points, got %zu", points.size()));
  }
  for (double value : points) {
    if (value < 0.0 || value > 1.0) {
      return Status::InvalidArgument(
          "hourly pattern points must be in [0, 1]");
    }
  }
  // Self-describing name so hourly patterns survive the XML
  // round-trip (FromName parses "hourly:" back into the points).
  std::string name = "hourly:";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) name += ',';
    name += StrFormat("%g", points[i]);
  }
  return LoadPattern(std::move(name),
                     [points = std::move(points)](SimTime t) {
    double h = t.DayFraction() * 24.0;
    int lo = static_cast<int>(h) % 24;
    int hi = (lo + 1) % 24;
    double frac = h - std::floor(h);
    return points[static_cast<size_t>(lo)] * (1.0 - frac) +
           points[static_cast<size_t>(hi)] * frac;
  });
}

Result<LoadPattern> LoadPattern::FromName(std::string_view name) {
  if (EqualsIgnoreCase(name, "interactive")) return Interactive();
  if (StartsWith(name, "interactive:")) {
    AG_ASSIGN_OR_RETURN(double morning_peak,
                        ParseDouble(name.substr(12)));
    if (morning_peak < 0 || morning_peak >= 24) {
      return Status::InvalidArgument(
          "interactive morning peak must be a valid hour");
    }
    InteractiveParams params;
    params.morning_peak_h = morning_peak;
    return Interactive(params);
  }
  if (EqualsIgnoreCase(name, "nightBatch") ||
      EqualsIgnoreCase(name, "night-batch")) {
    return NightBatch();
  }
  if (StartsWith(name, "hourly:")) {
    std::vector<double> points;
    points.reserve(24);
    std::string_view rest = name.substr(7);
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view token = rest.substr(0, comma);
      AG_ASSIGN_OR_RETURN(double value, ParseDouble(token));
      points.push_back(value);
      if (comma == std::string_view::npos) break;
      rest = rest.substr(comma + 1);
    }
    return FromHourlyPoints(std::move(points));
  }
  if (StartsWith(name, "flat:")) {
    AG_ASSIGN_OR_RETURN(double level, ParseDouble(name.substr(5)));
    if (level < 0.0 || level > 1.0) {
      return Status::InvalidArgument("flat level must be in [0, 1]");
    }
    return Flat(level);
  }
  return Status::ParseError(StrFormat("unknown load pattern \"%.*s\"",
                                      static_cast<int>(name.size()),
                                      name.data()));
}

}  // namespace autoglobe::workload
