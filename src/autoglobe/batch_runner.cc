#include "autoglobe/batch_runner.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe {

BatchRunner::BatchRunner(RunnerConfig config, std::vector<BatchLane> lanes)
    : config_(std::move(config)), lanes_(std::move(lanes)) {}

Status BatchRunner::CheckEligibility(const RunnerConfig& config) {
  if (config.tick <= Duration::Zero()) {
    return Status::InvalidArgument("tick must be positive");
  }
  if (config.controller_enabled) {
    return Status::InvalidArgument(
        "batched runs require controller_enabled=false: controller "
        "actions mutate the shared topology per lane");
  }
  if (config.strategy.kind != strategy::StrategyKind::kStaticFuzzy) {
    return Status::InvalidArgument(
        "batched runs only support the static strategy; adaptive "
        "strategies keep per-run learned state");
  }
  if (config.fault_plan.has_value()) {
    return Status::InvalidArgument(
        "batched runs cannot take a fault plan; batch availability "
        "scenarios at the rep level instead");
  }
  if (config.instance_failures_per_hour > 0) {
    return Status::InvalidArgument(
        "batched runs cannot inject legacy instance failures");
  }
  if (!config.slas.empty()) {
    return Status::InvalidArgument("batched runs do not track SLAs");
  }
  if (config.use_forecast) {
    return Status::InvalidArgument(
        "batched runs do not replicate the forecast detection signal");
  }
  if (!config.reservations.empty()) {
    return Status::InvalidArgument(
        "reservations only matter to the controller; drop them for "
        "batched runs");
  }
  if (config.observability.enable_tracing ||
      config.observability.enable_audit) {
    return Status::InvalidArgument(
        "batched runs have no trace/audit pipeline");
  }
  if (config.monitor.load_epsilon != 0.0) {
    return Status::InvalidArgument(
        "batched runs replicate the archive only at load_epsilon 0");
  }
  if (config.archive_retention < config.monitor.overload_watch_time ||
      config.archive_retention < config.monitor.idle_watch_time) {
    return Status::InvalidArgument(
        "archive retention shorter than a watch window would clip the "
        "watch-time mean; the batch replica assumes full windows");
  }
  return Status::OK();
}

Result<std::unique_ptr<BatchRunner>> BatchRunner::Create(
    const Landscape& landscape, RunnerConfig config,
    std::vector<BatchLane> lanes) {
  AG_RETURN_IF_ERROR(CheckEligibility(config));
  if (lanes.empty()) {
    return Status::InvalidArgument("a batch needs at least one lane");
  }
  std::unique_ptr<BatchRunner> runner(
      new BatchRunner(std::move(config), std::move(lanes)));
  AG_RETURN_IF_ERROR(runner->Init(landscape));
  return runner;
}

Status BatchRunner::Init(const Landscape& landscape) {
  const size_t L = lanes_.size();
  engine_ = std::make_unique<workload::BatchDemandEngine>(&cluster_, L);
  AG_RETURN_IF_ERROR(landscape.Build(&cluster_, engine_.get()));
  engine_->set_distribution(config_.distribution);
  engine_->set_fluctuation_per_minute(config_.fluctuation_per_minute);
  engine_->set_overload_threshold(config_.overload_threshold);

  tick_sec_ = config_.tick.seconds();
  idle_watch_sec_ = config_.monitor.idle_watch_time.seconds();

  // Subjects in dense-id layout: sorted server names first, then
  // sorted service names — the same ranks SimulationRunner's per-tick
  // loops use, so ObserveReplica reads the engine views by position.
  struct Registration {
    std::string name;
    double idle_divisor = 1.0;
    Duration overload_watch = Duration::Zero();
  };
  std::vector<Registration> servers;
  for (const infra::ServerSpec* server : cluster_.Servers()) {
    servers.push_back({server->name, server->performance_index,
                       config_.monitor.overload_watch_time});
  }
  std::sort(servers.begin(), servers.end(),
            [](const Registration& a, const Registration& b) {
              return a.name < b.name;
            });
  std::vector<Registration> services;
  for (const infra::ServiceSpec* service : cluster_.Services()) {
    Duration watch = config_.monitor.overload_watch_time;
    if (service->watch_time_minutes > 0) {
      watch = Duration::Minutes(service->watch_time_minutes);
    }
    services.push_back({service->name, 1.0, watch});
  }
  std::sort(services.begin(), services.end(),
            [](const Registration& a, const Registration& b) {
              return a.name < b.name;
            });

  num_servers_ = servers.size();
  window_ticks_ = static_cast<size_t>(
      std::max<int64_t>(1, config_.overload_smoothing.seconds() / tick_sec_));
  window_.assign(num_servers_ * window_ticks_ * L, 0.0);
  window_sum_.assign(num_servers_ * L, 0.0);
  window_head_.assign(num_servers_, 0);
  window_count_.assign(num_servers_, 0);
  streak_minutes_.assign(num_servers_ * L, 0.0);

  subjects_.clear();
  subjects_.reserve(servers.size() + services.size());
  auto add_subject = [&](const Registration& reg, bool is_server,
                         infra::DenseId dense_id) -> Status {
    if (config_.archive_retention < reg.overload_watch) {
      return Status::InvalidArgument(StrFormat(
          "archive retention shorter than the watchTime of \"%s\"",
          reg.name.c_str()));
    }
    Subject subject;
    subject.is_server = is_server;
    subject.dense_id = dense_id;
    subject.idle_threshold =
        config_.monitor.idle_threshold_base / reg.idle_divisor;
    subject.overload_watch_sec = reg.overload_watch.seconds();
    subject.cap = static_cast<size_t>(
                      std::max(subject.overload_watch_sec, idle_watch_sec_) /
                      tick_sec_) +
                  2;
    subject.hist.assign(subject.cap * L, 0.0);
    subject.phase.assign(L, 0);
    subject.watch_started.assign(L, 0);
    subjects_.push_back(std::move(subject));
    return Status::OK();
  };
  for (size_t p = 0; p < servers.size(); ++p) {
    AG_RETURN_IF_ERROR(add_subject(servers[p], /*is_server=*/true,
                                   static_cast<infra::DenseId>(p)));
  }
  for (size_t q = 0; q < services.size(); ++q) {
    AG_RETURN_IF_ERROR(add_subject(services[q], /*is_server=*/false,
                                   static_cast<infra::DenseId>(q)));
  }

  load_sum_.assign(L, 0.0);
  load_samples_ = 0;
  overload_minutes_.assign(L, 0.0);
  max_streak_.assign(L, 0.0);
  triggers_.assign(L, 0);
  metrics_.assign(L, RunMetrics{});
  service_loads_.assign(L, 0.0);
  ResetRunState();
  return Status::OK();
}

void BatchRunner::ResetRunState() {
  const size_t L = lanes_.size();
  for (size_t lane = 0; lane < L; ++lane) {
    engine_->SetLaneSeed(lane, lanes_[lane].seed);
    engine_->SetLaneUserScale(lane, lanes_[lane].user_scale);
  }
  std::fill(window_.begin(), window_.end(), 0.0);
  std::fill(window_sum_.begin(), window_sum_.end(), 0.0);
  std::fill(window_head_.begin(), window_head_.end(), 0);
  std::fill(window_count_.begin(), window_count_.end(), 0);
  std::fill(streak_minutes_.begin(), streak_minutes_.end(), 0.0);
  for (Subject& subject : subjects_) {
    std::fill(subject.hist.begin(), subject.hist.end(), 0.0);
    std::fill(subject.phase.begin(), subject.phase.end(), 0);
    std::fill(subject.watch_started.begin(), subject.watch_started.end(),
              int64_t{0});
    subject.watching = 0;
    subject.homogeneous = true;
  }
  std::fill(load_sum_.begin(), load_sum_.end(), 0.0);
  load_samples_ = 0;
  std::fill(overload_minutes_.begin(), overload_minutes_.end(), 0.0);
  std::fill(max_streak_.begin(), max_streak_.end(), 0.0);
  std::fill(triggers_.begin(), triggers_.end(), int64_t{0});
  std::fill(metrics_.begin(), metrics_.end(), RunMetrics{});
}

Status BatchRunner::Rerun(std::vector<BatchLane> lanes) {
  if (lanes.size() != lanes_.size()) {
    return Status::InvalidArgument(
        "a rerun must keep the batch width (the engine's lane count is "
        "fixed)");
  }
  lanes_ = std::move(lanes);
  engine_->ResetLanes();
  ResetRunState();
  return Status::OK();
}

Status BatchRunner::Run() {
  const int64_t end_sec = config_.duration.seconds();
  const int64_t warmup_sec = config_.metrics_warmup.seconds();
  // The kernel orders same-time events by schedule sequence: the
  // periodic tick holds seq 0 for its first fire and fresh (≥ 2) seqs
  // for re-arms, the warmup reset holds seq 1. So a warmup landing on
  // the first tick runs after it; landing on any later tick, before it.
  bool warmup_pending = warmup_sec > 0 && warmup_sec <= end_sec;
  const int64_t k_max = end_sec / tick_sec_;
  for (int64_t k = 1; k <= k_max; ++k) {
    const int64_t t_sec = k * tick_sec_;
    if (warmup_pending &&
        (warmup_sec < t_sec || (warmup_sec == t_sec && k >= 2))) {
      ApplyWarmupReset();
      warmup_pending = false;
    }
    TickOnce(k);
    if (warmup_pending && warmup_sec == t_sec) {
      ApplyWarmupReset();
      warmup_pending = false;
    }
  }
  // A warmup between the last tick and the end of the run still fires.
  if (warmup_pending) ApplyWarmupReset();
  Fold();
  return Status::OK();
}

void BatchRunner::TickOnce(int64_t k) {
  const size_t L = lanes_.size();
  const SimTime now = SimTime::FromSeconds(k * tick_sec_);
  engine_->Tick(now, config_.tick);

  const double tick_minutes = config_.tick.seconds() / 60.0;
  const double overload_threshold = config_.overload_threshold;
  for (size_t p = 0; p < num_servers_; ++p) {
    const size_t head = window_head_[p];
    const size_t count = window_count_[p];
    const bool full = count == window_ticks_;
    const size_t write_slot = full ? head : (head + count) % window_ticks_;
    const double inv_count = static_cast<double>(full ? count : count + 1);
    double* sums = &window_sum_[p * L];
    double* ring = &window_[p * (window_ticks_ * L) + write_slot * L];
    double* streaks = &streak_minutes_[p * L];
    Subject& subject = subjects_[p];
    const double* cpu_row =
        engine_->ServerCpuRow(static_cast<infra::DenseId>(p));
    // The per-tick archive sample is the whole lane row at once.
    std::copy_n(cpu_row, L,
                subject.hist.data() +
                    static_cast<size_t>((k - 1) % subject.cap) * L);
    // Straight-line math first (vectorizes), the branchy watch state
    // machine in its own pass.
    if (full) {
      for (size_t lane = 0; lane < L; ++lane) {
        const double cpu = cpu_row[lane];
        load_sum_[lane] += cpu;
        // Add-then-evict, exactly like SimulationRunner's ring.
        sums[lane] += cpu;
        sums[lane] -= ring[lane];
        ring[lane] = cpu;
      }
    } else {
      for (size_t lane = 0; lane < L; ++lane) {
        const double cpu = cpu_row[lane];
        load_sum_[lane] += cpu;
        sums[lane] += cpu;
        ring[lane] = cpu;
      }
    }
    for (size_t lane = 0; lane < L; ++lane) {
      const double smoothed = sums[lane] / inv_count;
      if (smoothed > overload_threshold) {
        overload_minutes_[lane] += tick_minutes;
        streaks[lane] += tick_minutes;
        max_streak_[lane] = std::max(max_streak_[lane], streaks[lane]);
      } else {
        streaks[lane] = 0.0;
      }
    }
    ObserveRowReplica(subject, cpu_row, k);
    if (full) {
      window_head_[p] = (head + 1) % window_ticks_;
    } else {
      window_count_[p] = count + 1;
    }
  }
  load_samples_ += static_cast<int64_t>(num_servers_);
  const size_t num_services = subjects_.size() - num_servers_;
  for (size_t q = 0; q < num_services; ++q) {
    Subject& subject = subjects_[num_servers_ + q];
    engine_->ServiceLoadAll(static_cast<infra::DenseId>(q),
                            service_loads_.data());
    std::copy_n(service_loads_.data(), L,
                subject.hist.data() +
                    static_cast<size_t>((k - 1) % subject.cap) * L);
    ObserveRowReplica(subject, service_loads_.data(), k);
  }
}

void BatchRunner::ObserveRowReplica(Subject& subject, const double* loads,
                                    int64_t k) {
  enum : uint8_t { kNormal = 0, kWatchingOverload = 1, kWatchingIdle = 2 };
  const size_t L = lanes_.size();
  const double overload = config_.monitor.overload_threshold;
  const double idle = subject.idle_threshold;
  const int64_t now_sec = k * tick_sec_;
  if (subject.homogeneous && subject.watching == 0) {
    // Every lane is in the Normal phase, where the only possible
    // action is arming a watch on an out-of-band load — one branchless
    // scan usually proves the whole row is a no-op.
    size_t over = 0;
    size_t under = 0;
    for (size_t lane = 0; lane < L; ++lane) {
      over += loads[lane] > overload;
      under += loads[lane] < idle;
    }
    if (over == 0 && under == 0) return;
    // Lanes usually cross a threshold together (e.g. the whole batch
    // going idle overnight): arm the full row at once and stay
    // homogeneous, so the watch countdown costs one check per tick.
    if (over == L || (over == 0 && under == L)) {
      std::fill(subject.phase.begin(), subject.phase.end(),
                over == L ? kWatchingOverload : kWatchingIdle);
      std::fill(subject.watch_started.begin(),
                subject.watch_started.end(), now_sec);
      subject.watching = L;
      return;
    }
    subject.homogeneous = false;
  } else if (subject.homogeneous) {
    // Whole row is in the same watch with the same start.
    const bool watching_overload = subject.phase[0] == kWatchingOverload;
    const int64_t watch_sec =
        watching_overload ? subject.overload_watch_sec : idle_watch_sec_;
    if (now_sec - subject.watch_started[0] < watch_sec) return;
    std::fill(subject.phase.begin(), subject.phase.end(), kNormal);
    subject.watching = 0;
    // Watch-time mean, all lanes at once: the newest-first tick walk
    // is the outer loop, so each lane still sums the exact scalar
    // sequence while the adds vectorize across the row.
    const int64_t cap = static_cast<int64_t>(subject.cap);
    int64_t j_min = (now_sec - watch_sec) / tick_sec_ + 1;
    if (j_min < 1) j_min = 1;
    // service_loads_ doubles as scratch here; `loads` may alias it but
    // is not read on the expiry path (the verdict uses hist only).
    double* sum = service_loads_.data();
    std::fill_n(sum, L, 0.0);
    for (int64_t j = k; j >= j_min; --j) {
      const double* hist_row =
          subject.hist.data() + static_cast<size_t>((j - 1) % cap) * L;
      for (size_t lane = 0; lane < L; ++lane) sum[lane] += hist_row[lane];
    }
    const double count = static_cast<double>(k - j_min + 1);
    for (size_t lane = 0; lane < L; ++lane) {
      const double average = sum[lane] / count;
      const bool fired = watching_overload ? average > overload
                                           : average < idle;
      if (fired) ++triggers_[lane];
    }
    return;
  }
  for (size_t lane = 0; lane < L; ++lane) {
    ObserveReplica(subject, lane, loads[lane], k);
  }
  // Divergent rows re-converge once every lane is back in Normal.
  if (subject.watching == 0) subject.homogeneous = true;
}

void BatchRunner::ObserveReplica(Subject& subject, size_t lane, double load,
                                 int64_t k) {
  enum : uint8_t { kNormal = 0, kWatchingOverload = 1, kWatchingIdle = 2 };
  const size_t L = lanes_.size();
  const int64_t cap = static_cast<int64_t>(subject.cap);
  // The caller already recorded this tick's sample into subject.hist.
  const int64_t now_sec = k * tick_sec_;
  uint8_t& phase = subject.phase[lane];
  if (phase == kNormal) {
    // A threshold crossing only *arms* the watch; the trigger decision
    // waits for the watch-time mean (monitoring.cc, Phase::kNormal).
    if (load > config_.monitor.overload_threshold) {
      phase = kWatchingOverload;
      subject.watch_started[lane] = now_sec;
      ++subject.watching;
    } else if (load < subject.idle_threshold) {
      phase = kWatchingIdle;
      subject.watch_started[lane] = now_sec;
      ++subject.watching;
    }
    return;
  }
  const bool overload = phase == kWatchingOverload;
  const int64_t watch_sec =
      overload ? subject.overload_watch_sec : idle_watch_sec_;
  if (now_sec - subject.watch_started[lane] < watch_sec) return;
  phase = kNormal;
  --subject.watching;
  // LoadArchive::Average over (now - watch, now]: the samples sit on
  // the uniform tick grid j * tick, j = 1..k, and the archive sums
  // them newest-first — replicate both the member set and the order so
  // the mean is bit-identical.
  int64_t j_min = (now_sec - watch_sec) / tick_sec_ + 1;
  if (j_min < 1) j_min = 1;
  double sum = 0.0;
  for (int64_t j = k; j >= j_min; --j) {
    sum += subject.hist[static_cast<size_t>((j - 1) % cap) * L + lane];
  }
  const double average = sum / static_cast<double>(k - j_min + 1);
  const bool fired = overload
                         ? average > config_.monitor.overload_threshold
                         : average < subject.idle_threshold;
  if (fired) ++triggers_[lane];
}

void BatchRunner::ApplyWarmupReset() {
  // Body of the "metrics-warmup-end" event (runner.cc ArmSchedule):
  // quality counters restart, trigger counts do not.
  const size_t L = lanes_.size();
  for (size_t lane = 0; lane < L; ++lane) {
    engine_->ResetQualityMetrics(lane);
  }
  std::fill(overload_minutes_.begin(), overload_minutes_.end(), 0.0);
  std::fill(max_streak_.begin(), max_streak_.end(), 0.0);
  std::fill(streak_minutes_.begin(), streak_minutes_.end(), 0.0);
  std::fill(load_sum_.begin(), load_sum_.end(), 0.0);
  load_samples_ = 0;
}

void BatchRunner::Fold() {
  // Mirror of SimulationRunner::RunUntil's metric fold, with
  // simulator_.now() == Start + duration.
  const double total_minutes =
      static_cast<double>(config_.duration.seconds() -
                          config_.metrics_warmup.seconds()) /
      60.0;
  const double denom = static_cast<double>(num_servers_) * total_minutes;
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    RunMetrics& m = metrics_[lane];
    m.overload_server_minutes = overload_minutes_[lane];
    m.max_overload_streak_minutes = max_streak_[lane];
    m.triggers = triggers_[lane];
    m.lost_work_wu = engine_->TotalLostWork(lane);
    m.sla_violation_minutes = 0.0;
    m.average_cpu_load =
        load_samples_ > 0
            ? load_sum_[lane] / static_cast<double>(load_samples_)
            : 0.0;
    m.overload_fraction =
        denom > 0 ? m.overload_server_minutes / denom : 0.0;
  }
}

}  // namespace autoglobe
