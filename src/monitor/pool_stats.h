#ifndef AUTOGLOBE_MONITOR_POOL_STATS_H_
#define AUTOGLOBE_MONITOR_POOL_STATS_H_

#include <cstddef>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "infra/ids.h"

namespace autoglobe::monitor {

/// Hierarchical load aggregates over the landscape's server pools
/// (ServerSpec::category groups, as laid out by LandscapeIndex).
/// The runner feeds every server's smoothed load once per tick;
/// per-pool count / sum / max are maintained incrementally, so
/// reading a pool summary is O(1) and a full pool ranking is
/// O(pools), not O(fleet). The controller's pool prescreen ranks
/// pools first and only scans servers inside the chosen pool.
///
/// The max is kept lazily: a decrease on the server currently holding
/// a pool's max merely marks the pool dirty, and the O(pool-size)
/// rescan is deferred until someone asks for that pool's max. The
/// incremental sum accumulates floating-point drift relative to a
/// fresh summation; these aggregates are a ranking heuristic, never
/// an input to trigger decisions or golden outputs.
class PoolLoadStats {
 public:
  PoolLoadStats() = default;

  /// (Re)binds to a landscape layout; all loads reset to zero. Call
  /// after every topology epoch change.
  void Reset(const infra::LandscapeIndex* index);

  /// Feeds one server's current smoothed load.
  void Update(infra::DenseId server, double load);

  size_t num_pools() const { return count_.size(); }
  /// Servers of the pool that have reported at least once.
  int64_t PoolCount(int32_t pool) const {
    return count_[static_cast<size_t>(pool)];
  }
  double PoolSum(int32_t pool) const {
    return sum_[static_cast<size_t>(pool)];
  }
  /// Mean load over reporting servers (0 when none reported).
  double PoolMean(int32_t pool) const;
  /// Max load in the pool (0 when none reported). May rescan the
  /// pool's servers if the previous max holder decreased.
  double PoolMax(int32_t pool) const;

  /// Last load fed for a server (0 before the first Update).
  double ServerLoad(infra::DenseId server) const {
    return server_load_[static_cast<size_t>(server)];
  }

  // --- Checkpoint/restore ----------------------------------------------
  /// Serializes loads, seen flags, and the incremental aggregates —
  /// the incremental sum carries floating-point drift relative to a
  /// fresh summation, so rebuilding from loads alone would not be
  /// bit-identical to the uninterrupted run.
  void SaveState(ByteWriter* w) const;
  /// Restores onto a stats object already Reset() against the same
  /// landscape layout (sizes are validated).
  Status RestoreState(ByteReader* r);

 private:
  const infra::LandscapeIndex* index_ = nullptr;
  std::vector<double> server_load_;
  std::vector<char> server_seen_;
  std::vector<int64_t> count_;
  std::vector<double> sum_;
  // Lazy max: value + holder, holder kNoDenseId when a rescan is due.
  mutable std::vector<double> max_;
  mutable std::vector<infra::DenseId> max_server_;
};

}  // namespace autoglobe::monitor

#endif  // AUTOGLOBE_MONITOR_POOL_STATS_H_
