#ifndef AUTOGLOBE_STRATEGY_QLEARN_H_
#define AUTOGLOBE_STRATEGY_QLEARN_H_

#include <array>
#include <vector>

#include "common/rng.h"
#include "obs/audit.h"
#include "strategy/strategy.h"

namespace autoglobe::strategy {

/// (c): fuzzy Q-learning in the style of Arabnejad et al. — the rule
/// bases stay the paper's, but each rule's consequent weight becomes
/// a learned parameter. Per trigger kind the learner keeps, for every
/// compiled rule, a weight and a 3-arm action-value row (nudge the
/// weight down / hold / nudge up). Each decision:
///
///   1. Settle the previous decision of this kind: the reward is the
///      negated growth of the runner's cumulative penalty signal
///      (SLA-violation minutes + overload minutes + action cost)
///      since that decision; every rule is credited in proportion to
///      its activation degree at decision time (read back from the
///      compiled kernel's Scratch via the decision audit trail).
///   2. Pick an arm per rule, epsilon-greedy, apply the perturbation,
///      and install the weight vector as the controller's
///      consequent-weight override.
///   3. Delegate to the fuzzy controller (verification, server
///      selection, and the Figure 6 fallback flow are unchanged).
///
/// Exploration runs off one Rng seeded from (run seed, config seed),
/// so a run is bit-identical at any harness parallelism. SaveWeights
/// persists weights, Q-rows, and epsilon as XML (%.17g — the
/// round-trip is exact).
class FuzzyQLearningStrategy : public ControllerStrategy {
 public:
  static Result<std::unique_ptr<FuzzyQLearningStrategy>> Create(
      const QLearnConfig& config, const StrategyEnv& env);

  StrategyKind kind() const override {
    return StrategyKind::kFuzzyQLearning;
  }

  Result<controller::ControllerOutcome> HandleTrigger(
      const monitor::Trigger& trigger, bool urgent) override;

  int64_t reward_updates() const override { return reward_updates_; }
  int64_t weight_updates() const override { return weight_updates_; }

  Status SaveWeights(const std::string& path) const override;
  Status LoadWeights(const std::string& path) override;

  /// Unlike SaveWeights (portable learned state), this captures the
  /// exact mid-run picture: exploration RNG, pending decisions and
  /// their eligibility traces, reward baselines, and counters.
  void SaveState(ByteWriter* w) const override;
  Status RestoreState(ByteReader* r) override;

  double epsilon() const { return epsilon_; }
  /// Current weight vector for one trigger kind (compiled rule
  /// order), or empty when the kind has no learned table.
  std::vector<double> WeightsFor(monitor::TriggerKind kind) const;

 private:
  FuzzyQLearningStrategy(QLearnConfig config, const StrategyEnv& env);

  /// Per-rule learned state of one trigger kind's generic rule base.
  struct KindTable {
    monitor::TriggerKind kind;
    std::vector<std::string> rule_texts;  // compiled rule order
    std::vector<double> weights;
    /// Action values per rule: arm 0 = weight down, 1 = hold, 2 = up.
    std::vector<std::array<double, 3>> q;
    /// Pending decision awaiting its reward.
    bool pending = false;
    double penalty_before = 0.0;
    std::vector<uint8_t> last_arm;
    std::vector<double> last_eligibility;
    /// Average-reward baseline: exponential mean of the penalty growth
    /// between consecutive decisions of this kind. The penalty signal
    /// only ever accumulates, so a raw -delta reward punishes every
    /// arm — including "hold" — and greedy selection drifts towards
    /// untried arms. Rewarding (baseline - delta) instead makes
    /// business-as-usual reward zero: only doing worse than usual is
    /// punished, only doing better is reinforced.
    double avg_delta = 0.0;
    int64_t settled = 0;
  };

  KindTable* TableFor(monitor::TriggerKind kind);
  double Penalty() const {
    return env_.penalty ? env_.penalty() : 0.0;
  }
  /// Reads the per-rule activation degrees of the decision just made
  /// from the audit trail into `table->last_eligibility` (max over
  /// the decision's inference records; uniform 1.0 fallback when the
  /// audit recorded nothing usable).
  void CaptureEligibility(KindTable* table);

  QLearnConfig config_;
  StrategyEnv env_;
  Rng rng_;
  double epsilon_;
  std::vector<KindTable> tables_;
  /// Installed on the controller when the runner configured no audit
  /// log — the learner needs the activation degrees either way.
  std::unique_ptr<obs::AuditLog> own_audit_;
  int64_t reward_updates_ = 0;
  int64_t weight_updates_ = 0;
};

}  // namespace autoglobe::strategy

#endif  // AUTOGLOBE_STRATEGY_QLEARN_H_
