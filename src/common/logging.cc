#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/status.h"

namespace autoglobe {

namespace {

// Thread-safety: the parallel capacity sweeps log from worker
// threads. The level filter is a relaxed atomic (a data race on a
// plain int would be UB even if benign in practice); the sink is
// swapped and invoked under a mutex so a sink installed by one thread
// is never torn or destroyed mid-call by another. The lock is only
// taken for messages that pass the level filter.
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;
Logging::Sink g_sink;  // empty => stderr default; guarded by g_sink_mutex

void DefaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%.*s] %s\n",
               static_cast<int>(LogLevelName(level).size()),
               LogLevelName(level).data(), message.c_str());
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void Logging::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
LogLevel Logging::min_level() {
  return static_cast<LogLevel>(
      g_min_level.load(std::memory_order_relaxed));
}

void Logging::SetSink(Sink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Logging::Emit(LogLevel level, const std::string& message) {
  if (level < min_level() && level != LogLevel::kFatal) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  if (level == LogLevel::kFatal) {
    stream_ << file << ":" << line << ": ";
  }
}

LogMessage::~LogMessage() {
  Logging::Emit(level_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(nullptr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace autoglobe
