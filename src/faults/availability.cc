#include "faults/availability.h"

#include <algorithm>

#include "common/strings.h"

namespace autoglobe::faults {

AvailabilityTracker::AvailabilityTracker(AvailabilityConfig config)
    : config_(config) {}

void AvailabilityTracker::OnFaultInjected(FaultKind kind, SimTime at) {
  (void)at;
  injected_by_kind_[static_cast<size_t>(kind)] += 1;
}

void AvailabilityTracker::OnInstanceDown(uint64_t token,
                                         std::string service,
                                         SimTime at) {
  // Re-failing an open episode (e.g. a restarted instance crashing
  // again before recovery finished) keeps the original down time: the
  // user-visible outage started at the first crash. A token whose
  // previous episode already closed starts a fresh one.
  if (open_.count(token) > 0) return;
  Episode episode;
  episode.service = std::move(service);
  episode.down_at = at;
  open_[token] = std::move(episode);
}

void AvailabilityTracker::OnFailureDetected(uint64_t token, SimTime at) {
  auto it = open_.find(token);
  if (it == open_.end() || it->second.detected) return;
  it->second.detected = true;
  it->second.detected_at = at;
}

void AvailabilityTracker::OnRecovered(uint64_t token, SimTime at) {
  auto it = open_.find(token);
  if (it == open_.end()) return;
  it->second.recovered = true;
  it->second.closed_at = at;
  closed_.push_back(std::move(it->second));
  open_.erase(it);
}

void AvailabilityTracker::OnAbandoned(uint64_t token, SimTime at) {
  auto it = open_.find(token);
  if (it == open_.end()) return;
  it->second.abandoned = true;
  it->second.closed_at = at;
  closed_.push_back(std::move(it->second));
  open_.erase(it);
}

bool AvailabilityTracker::IsOpen(uint64_t token) const {
  return open_.count(token) > 0;
}

AvailabilityReport AvailabilityTracker::Report(SimTime end) const {
  AvailabilityReport report;
  report.instance_crashes = injected_by_kind_[static_cast<size_t>(
      FaultKind::kInstanceCrash)];
  report.server_failures = injected_by_kind_[static_cast<size_t>(
      FaultKind::kServerFailure)];
  report.action_failure_windows = injected_by_kind_[static_cast<size_t>(
      FaultKind::kActionFailure)];
  report.monitor_dropouts = injected_by_kind_[static_cast<size_t>(
      FaultKind::kMonitorDropout)];
  report.faults_injected = report.instance_crashes +
                           report.server_failures +
                           report.action_failure_windows +
                           report.monitor_dropouts;

  double mttd_sum = 0.0;
  double mttr_sum = 0.0;
  int64_t within_objective = 0;
  auto fold = [&](const Episode& episode) {
    ++report.episodes;
    if (episode.detected) {
      ++report.detected;
      mttd_sum += (episode.detected_at - episode.down_at).seconds() / 60.0;
    }
    SimTime closed = end;
    if (episode.recovered || episode.abandoned) {
      closed = episode.closed_at;
    }
    double outage_minutes = (closed - episode.down_at).seconds() / 60.0;
    if (episode.recovered) {
      ++report.recovered;
      mttr_sum += outage_minutes;
      report.mttr_minutes_max =
          std::max(report.mttr_minutes_max, outage_minutes);
      if (closed - episode.down_at <= config_.recovery_objective) {
        ++within_objective;
      }
    } else if (episode.abandoned) {
      ++report.abandoned;
      // An abandoned instance stays lost; its capacity is gone until
      // the end of the run.
      outage_minutes = (end - episode.down_at).seconds() / 60.0;
    } else {
      ++report.open;
    }
    report.unavailability_instance_minutes += outage_minutes;
  };
  for (const Episode& episode : closed_) fold(episode);
  for (const auto& [token, episode] : open_) fold(episode);
  if (report.detected > 0) {
    report.mttd_minutes_mean =
        mttd_sum / static_cast<double>(report.detected);
  }
  if (report.recovered > 0) {
    report.mttr_minutes_mean =
        mttr_sum / static_cast<double>(report.recovered);
  }
  if (report.episodes > 0) {
    report.objective_satisfaction =
        static_cast<double>(within_objective) /
        static_cast<double>(report.episodes);
  }
  return report;
}

void AvailabilityTracker::SaveState(ByteWriter* w) const {
  auto write_episode = [w](const Episode& episode) {
    w->Str(episode.service);
    w->I64(episode.down_at.seconds());
    w->I64(episode.detected_at.seconds());
    w->I64(episode.closed_at.seconds());
    w->U8(episode.detected ? 1 : 0);
    w->U8(episode.recovered ? 1 : 0);
    w->U8(episode.abandoned ? 1 : 0);
  };
  w->U64(open_.size());
  for (const auto& [token, episode] : open_) {
    w->U64(token);
    write_episode(episode);
  }
  w->U64(closed_.size());
  for (const Episode& episode : closed_) write_episode(episode);
  for (int64_t count : injected_by_kind_) w->I64(count);
}

Status AvailabilityTracker::RestoreState(ByteReader* r) {
  auto read_episode = [r](Episode* episode) -> Status {
    AG_ASSIGN_OR_RETURN(episode->service, r->Str());
    int64_t seconds = 0;
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    episode->down_at = SimTime::FromSeconds(seconds);
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    episode->detected_at = SimTime::FromSeconds(seconds);
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    episode->closed_at = SimTime::FromSeconds(seconds);
    uint8_t flag = 0;
    AG_ASSIGN_OR_RETURN(flag, r->U8());
    episode->detected = flag != 0;
    AG_ASSIGN_OR_RETURN(flag, r->U8());
    episode->recovered = flag != 0;
    AG_ASSIGN_OR_RETURN(flag, r->U8());
    episode->abandoned = flag != 0;
    return Status::OK();
  };
  uint64_t open_count = 0;
  AG_ASSIGN_OR_RETURN(open_count, r->U64());
  open_.clear();
  for (uint64_t i = 0; i < open_count; ++i) {
    uint64_t token = 0;
    AG_ASSIGN_OR_RETURN(token, r->U64());
    Episode episode;
    AG_RETURN_IF_ERROR(read_episode(&episode));
    open_.emplace(token, std::move(episode));
  }
  uint64_t closed_count = 0;
  AG_ASSIGN_OR_RETURN(closed_count, r->U64());
  closed_.clear();
  closed_.reserve(closed_count);
  for (uint64_t i = 0; i < closed_count; ++i) {
    Episode episode;
    AG_RETURN_IF_ERROR(read_episode(&episode));
    closed_.push_back(std::move(episode));
  }
  for (int64_t& count : injected_by_kind_) {
    AG_ASSIGN_OR_RETURN(count, r->I64());
  }
  return Status::OK();
}

std::string RenderAvailabilityReport(const AvailabilityReport& report) {
  std::string out;
  out += StrFormat(
      "faults injected: %lld (instance crashes %lld, server failures "
      "%lld, action-failure windows %lld, monitor dropouts %lld)\n",
      static_cast<long long>(report.faults_injected),
      static_cast<long long>(report.instance_crashes),
      static_cast<long long>(report.server_failures),
      static_cast<long long>(report.action_failure_windows),
      static_cast<long long>(report.monitor_dropouts));
  out += StrFormat(
      "episodes: %lld (detected %lld, recovered %lld, abandoned %lld, "
      "open %lld)\n",
      static_cast<long long>(report.episodes),
      static_cast<long long>(report.detected),
      static_cast<long long>(report.recovered),
      static_cast<long long>(report.abandoned),
      static_cast<long long>(report.open));
  out += StrFormat("MTTD: %.2f min mean\n", report.mttd_minutes_mean);
  out += StrFormat("MTTR: %.2f min mean, %.2f min max\n",
                   report.mttr_minutes_mean, report.mttr_minutes_max);
  out += StrFormat("unavailability: %.1f instance-minutes\n",
                   report.unavailability_instance_minutes);
  out += StrFormat("recovery objective satisfaction: %.1f%%\n",
                   report.objective_satisfaction * 100.0);
  return out;
}

}  // namespace autoglobe::faults
