#ifndef AUTOGLOBE_INFRA_CLUSTER_H_
#define AUTOGLOBE_INFRA_CLUSTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "infra/action.h"
#include "infra/ids.h"
#include "infra/specs.h"

namespace autoglobe::infra {

/// Lifecycle state of a service instance. Starting instances already
/// occupy memory but serve no users yet (the paper's start delay);
/// failed instances hold their slot until the controller remedies the
/// failure (e.g. by restart, §2 "failure situations ... are remedied
/// for example with a restart").
enum class InstanceState {
  kStarting,
  kRunning,
  kFailed,
};

std::string_view InstanceStateName(InstanceState state);

/// A running (or starting/failed) instance of a service on a server.
struct ServiceInstance {
  InstanceId id = 0;
  std::string service;
  std::string server;
  InstanceState state = InstanceState::kStarting;
  SimTime placed_at;
  /// Virtualization per paper §2: every instance owns a service IP
  /// bound to the NIC of its current host; moving rebinds it.
  std::string virtual_ip;

  std::string Name() const { return service + "@" + server; }
};

/// The pooled, virtualized hardware landscape: servers, service
/// definitions, the instance allocation, per-service priorities, and
/// the protection-mode bookkeeping of §4.
///
/// The cluster enforces the declarative constraints (Tables 5/6) on
/// every placement: memory capacity, minimum performance index,
/// exclusiveness, and instance-count bounds. At most one instance of
/// a given service runs per server (matching the paper's landscape).
class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Topology -------------------------------------------------------
  Status AddServer(ServerSpec spec);
  Status AddService(ServiceSpec spec);

  Result<const ServerSpec*> FindServer(std::string_view name) const;
  Result<const ServiceSpec*> FindService(std::string_view name) const;
  std::vector<const ServerSpec*> Servers() const;
  std::vector<const ServiceSpec*> Services() const;

  // --- Server health --------------------------------------------------

  /// Marks a server failed (`up = false`) or repaired. A down server
  /// accepts no placements (CanPlace / MoveInstance reject it) until
  /// it is marked up again. Like instance-state flips, health changes
  /// do NOT bump the topology epoch — the dense index carries no
  /// health facts; consumers must ask IsServerUp.
  Status SetServerUp(std::string_view server, bool up);
  /// True unless the server was explicitly marked down. Unknown names
  /// report true (health is a property of registered servers; lookups
  /// validate names separately).
  bool IsServerUp(std::string_view server) const;
  /// Names of servers currently marked down, sorted.
  std::vector<std::string> DownServers() const;

  // --- Placement ------------------------------------------------------

  /// Checks every constraint for placing a new instance of `service`
  /// on `server` (memory, performance index, exclusiveness, max
  /// instances, one-instance-per-server). `exclude_instance` names an
  /// instance to disregard — used when relocating it, so the mover
  /// does not count against its own service's limits.
  Status CanPlace(std::string_view service, std::string_view server,
                  InstanceId exclude_instance = 0) const;

  /// Places a new instance; `initial` is kStarting for delayed starts.
  Result<InstanceId> PlaceInstance(std::string_view service,
                                   std::string_view server, SimTime now,
                                   InstanceState initial =
                                       InstanceState::kRunning);

  /// Removes an instance. With `enforce_min`, refuses to drop the
  /// service below its minInstances constraint.
  Status RemoveInstance(InstanceId id, bool enforce_min = true);

  /// Moves an instance to `target_server` (validating constraints and
  /// rebinding the virtual IP). The instance keeps its id.
  Status MoveInstance(InstanceId id, std::string_view target_server,
                      SimTime now);

  Status SetInstanceState(InstanceId id, InstanceState state);

  Result<const ServiceInstance*> FindInstance(InstanceId id) const;

  /// Instances currently hosted by `server` (any state).
  std::vector<const ServiceInstance*> InstancesOn(
      std::string_view server) const;
  /// Instances of `service` (any state).
  std::vector<const ServiceInstance*> InstancesOf(
      std::string_view service) const;
  /// Number of starting-or-running instances of `service`,
  /// disregarding `exclude_instance` when non-zero.
  int ActiveInstanceCount(std::string_view service,
                          InstanceId exclude_instance = 0) const;
  /// Number of running instances of `service`.
  int RunningInstanceCount(std::string_view service) const;
  /// Memory claimed on `server` by its instances, in GB.
  double UsedMemoryGb(std::string_view server) const;

  size_t total_instances() const { return instances_.size(); }

  // --- Dense-id data plane --------------------------------------------

  /// The interned landscape view: dense server/service/instance ids,
  /// cached per-server and per-service instance spans, flat arrays of
  /// the per-tick facts. Rebuilt lazily when the topology epoch moved;
  /// between topology changes every call is a cheap cache hit, so hot
  /// loops can call this per tick. Spans and dense ids obtained from
  /// the returned index stay valid until the next topology change.
  const LandscapeIndex& Index() const;

  /// Monotone counter, bumped by every topology mutation (server /
  /// service added, instance placed / removed / moved). Instance state
  /// flips and priority adjustments do NOT bump it — index consumers
  /// see those through live pointers and write-through updates.
  uint64_t topology_epoch() const { return topology_epoch_; }

  // --- Priorities -----------------------------------------------------

  /// Relative CPU weight of a service (default 1.0); the proportional-
  /// share CPU model of the workload engine consumes this. Clamped to
  /// [0.25, 4].
  double ServicePriority(std::string_view service) const;
  Status AdjustServicePriority(std::string_view service, double factor);

  // --- Protection mode (§4) --------------------------------------------

  /// After a rearrangement, involved entities are excluded from
  /// further actions for a protection period to prevent oscillation.
  void ProtectServer(std::string_view server, SimTime until);
  void ProtectService(std::string_view service, SimTime until);
  bool IsServerProtected(std::string_view server, SimTime now) const;
  bool IsServiceProtected(std::string_view service, SimTime now) const;

  // --- Checkpoint/restore ---------------------------------------------
  /// Serializes the mutable run state: instance allocation, server
  /// health, priorities, protection windows, the id counters and the
  /// topology epoch. The static topology (server/service specs) is
  /// NOT included — a restore rebuilds it from the same landscape
  /// configuration; the snapshot's landscape fingerprint guards
  /// against restoring onto a different one.
  void SaveState(ByteWriter* w) const;
  /// Restores a SaveState image over a cluster that already holds the
  /// same topology. The placement books are rebuilt and the dense
  /// index is invalidated (rebuilt lazily on next access).
  Status RestoreState(ByteReader* r);

 private:
  friend class LandscapeIndex;

  Result<ServiceInstance*> FindMutableInstance(InstanceId id);
  std::string NextVirtualIp(std::string_view service);
  void BumpTopology() { ++topology_epoch_; }

  /// Incremental placement books: the instance ids hosted on each
  /// server / belonging to each service, kept in ascending id order —
  /// the exact iteration order of the global instance map restricted
  /// to that entity. CanPlace, the instance counts, and UsedMemoryGb
  /// walk these short lists instead of scanning every instance in the
  /// cluster, which turns an O(total-instances) check (an O(N^2)
  /// landscape build at 10k servers) into O(instances-per-entity).
  const std::vector<InstanceId>* IdsOn(std::string_view server) const;
  const std::vector<InstanceId>* IdsOf(std::string_view service) const;
  void BookInstance(const ServiceInstance& instance);
  void UnbookInstance(const ServiceInstance& instance);

  std::map<std::string, ServerSpec, std::less<>> servers_;
  std::map<std::string, ServiceSpec, std::less<>> services_;
  std::map<std::string, std::vector<InstanceId>, std::less<>>
      server_instances_;
  std::map<std::string, std::vector<InstanceId>, std::less<>>
      service_instances_;
  /// Servers currently failed (absent = up).
  std::map<std::string, bool, std::less<>> server_down_;
  std::map<InstanceId, ServiceInstance> instances_;
  std::map<std::string, double, std::less<>> priorities_;
  std::map<std::string, SimTime, std::less<>> server_protection_;
  std::map<std::string, SimTime, std::less<>> service_protection_;
  InstanceId next_instance_id_ = 1;
  int next_ip_suffix_ = 1;

  uint64_t topology_epoch_ = 1;
  /// Lazily rebuilt dense view (mutable: rebuilding on first access
  /// after a topology change does not alter observable state).
  mutable LandscapeIndex index_;
  mutable uint64_t index_epoch_ = 0;
};

/// Full-cluster consistency check, used by the chaos/property tests
/// and available to tools: every starting-or-running instance sits on
/// an up server, per-server memory accounting stays within capacity,
/// at most one instance of a service per server, exclusiveness holds
/// both ways, and no service exceeds maxInstances. With
/// `enforce_min`, services below minInstances are also reported
/// (recovery can transiently violate the minimum while a replacement
/// boots, so steady-state callers opt in).
Status VerifyClusterInvariants(const Cluster& cluster,
                               bool enforce_min = false);

}  // namespace autoglobe::infra

#endif  // AUTOGLOBE_INFRA_CLUSTER_H_
