#include "forecast/forecaster.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe::forecast {

LoadForecaster::LoadForecaster(const monitor::LoadArchive* archive,
                               ForecastConfig config)
    : archive_(archive), config_(config) {
  AG_CHECK(archive_ != nullptr);
}

Result<double> LoadForecaster::HistoricValue(const std::string& key,
                                             SimTime at) const {
  // The aggregated series is bucketed; accept the bucket containing
  // `at` or its immediate neighbours.
  std::vector<monitor::LoadSample> aggregated = archive_->Aggregated(key);
  if (aggregated.empty()) {
    return Status::NotFound(StrFormat("no history for \"%s\"", key.c_str()));
  }
  int64_t bucket_s = archive_->aggregate_bucket().seconds();
  const monitor::LoadSample* best = nullptr;
  int64_t best_distance = 0;
  for (const monitor::LoadSample& sample : aggregated) {
    int64_t distance = std::abs(sample.at.seconds() - at.seconds());
    if (best == nullptr || distance < best_distance) {
      best = &sample;
      best_distance = distance;
    }
  }
  if (best == nullptr || best_distance > bucket_s) {
    return Status::NotFound(StrFormat(
        "no archived bucket near %s for \"%s\"", at.ToString().c_str(),
        key.c_str()));
  }
  return best->value;
}

Result<double> LoadForecaster::Forecast(const std::string& key,
                                        SimTime now) const {
  return ForecastAt(key, now, config_.horizon);
}

Result<double> LoadForecaster::ForecastAt(const std::string& key,
                                          SimTime now,
                                          Duration horizon) const {
  AG_ASSIGN_OR_RETURN(double latest, archive_->Latest(key));
  SimTime target = now + horizon;

  double weighted_sum = 0.0;
  double weight_total = 0.0;
  double weight = 1.0;
  for (int day = 1; day <= config_.history_days; ++day) {
    SimTime past = target - Duration::Days(day);
    if (past < SimTime::Start()) break;
    auto value = HistoricValue(key, past);
    if (value.ok()) {
      weighted_sum += weight * *value;
      weight_total += weight;
    }
    weight *= config_.day_decay;
  }
  if (weight_total <= 0.0) {
    // No daily history yet (first simulated day): fall back to the
    // current measurement.
    return latest;
  }
  double pattern = weighted_sum / weight_total;
  return config_.pattern_weight * pattern +
         (1.0 - config_.pattern_weight) * latest;
}

}  // namespace autoglobe::forecast
