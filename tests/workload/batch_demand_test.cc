#include "workload/batch_demand.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "autoglobe/landscape.h"
#include "workload/demand.h"

namespace autoglobe::workload {
namespace {

using infra::Cluster;
using infra::InstanceId;
using infra::InstanceRef;
using infra::InstanceState;
using infra::ServerSpec;
using infra::ServiceSpec;

ServerSpec MakeServer(const std::string& name, double pi) {
  ServerSpec spec;
  spec.name = name;
  spec.performance_index = pi;
  spec.memory_gb = 32;
  return spec;
}

ServiceSpec MakeService(const std::string& name) {
  ServiceSpec spec;
  spec.name = name;
  spec.memory_footprint_gb = 1;
  spec.min_instances = 0;
  spec.max_instances = 16;
  return spec;
}

// A small three-tier landscape with every demand feature the engine
// models: interactive noise, a shared-queue batch tier, and CI/DB
// propagation.
struct SmallWorld {
  Cluster cluster;

  void Populate() {
    ASSERT_TRUE(cluster.AddServer(MakeServer("s1", 1)).ok());
    ASSERT_TRUE(cluster.AddServer(MakeServer("s2", 2)).ok());
    ASSERT_TRUE(cluster.AddServer(MakeServer("s3", 1)).ok());
    ASSERT_TRUE(cluster.AddService(MakeService("app")).ok());
    ASSERT_TRUE(cluster.AddService(MakeService("ci")).ok());
    ASSERT_TRUE(cluster.AddService(MakeService("db")).ok());
  }

  // Same placement sequence => same InstanceIds on every SmallWorld.
  std::vector<InstanceId> PlaceInitial() {
    std::vector<InstanceId> ids;
    for (auto [service, server] :
         {std::pair{"app", "s1"}, {"app", "s2"}, {"ci", "s2"},
          {"db", "s3"}}) {
      auto id = cluster.PlaceInstance(service, server, SimTime::Start());
      EXPECT_TRUE(id.ok()) << id.status();
      ids.push_back(id.value_or(0));
    }
    return ids;
  }

  static void Register(DemandModelSink* sink) {
    ServiceDemandSpec app;
    app.service = "app";
    app.pattern = LoadPattern::Flat(0.8);
    app.base_users = 400;
    app.request_cost = 1.0;
    app.noise_stddev = 0.05;
    ASSERT_TRUE(sink->AddService(app).ok());

    ServiceDemandSpec ci;
    ci.service = "ci";
    ci.pattern = LoadPattern::Flat(1.0);
    ci.noise_stddev = 0.0;
    ASSERT_TRUE(sink->AddService(ci).ok());

    ServiceDemandSpec db;
    db.service = "db";
    db.pattern = LoadPattern::Flat(1.0);
    db.batch = true;
    db.batch_load_wu = 0.6;
    db.noise_stddev = 0.03;
    db.shared_queue = true;
    db.backlog_cap_wu = 20.0;
    ASSERT_TRUE(sink->AddService(db).ok());

    SubsystemSpec subsystem;
    subsystem.name = "ERP";
    subsystem.app_services = {"app"};
    subsystem.central_instance = "ci";
    subsystem.database = "db";
    ASSERT_TRUE(sink->AddSubsystem(subsystem).ok());
  }
};

struct LaneSetup {
  uint64_t seed;
  double scale;
};

// Every view of lane `lane` must be bit-identical to the scalar
// engine's. EXPECT_EQ on doubles is an exact bit comparison here —
// that is the contract, not a tolerance.
void ExpectLaneMatchesScalar(const BatchDemandEngine& batch, size_t lane,
                             const DemandEngine& scalar,
                             const Cluster& cluster) {
  const infra::LandscapeIndex& index = cluster.Index();
  for (size_t s = 0; s < index.num_servers(); ++s) {
    infra::DenseId sid = static_cast<infra::DenseId>(s);
    EXPECT_EQ(batch.ServerCpuLoad(lane, sid), scalar.ServerCpuLoadById(sid))
        << "cpu of server " << index.ServerName(sid) << " lane " << lane;
    EXPECT_EQ(batch.ServerMemLoad(lane, sid), scalar.ServerMemLoadById(sid))
        << "mem of server " << index.ServerName(sid) << " lane " << lane;
  }
  for (const InstanceRef& ref : index.Instances()) {
    EXPECT_EQ(batch.InstanceUsers(lane, ref.id),
              scalar.InstanceUsers(ref.id))
        << "users of instance " << ref.id << " lane " << lane;
    EXPECT_EQ(batch.InstanceLoad(lane, ref.id), scalar.InstanceLoad(ref.id))
        << "load of instance " << ref.id << " lane " << lane;
  }
  for (size_t v = 0; v < index.num_services(); ++v) {
    infra::DenseId sid = static_cast<infra::DenseId>(v);
    EXPECT_EQ(batch.ServiceLoad(lane, sid), scalar.ServiceLoadById(sid))
        << "service load of " << index.ServiceName(sid) << " lane " << lane;
    EXPECT_EQ(batch.ServiceSatisfaction(lane, sid),
              scalar.ServiceSatisfactionById(sid))
        << "satisfaction of " << index.ServiceName(sid) << " lane " << lane;
  }
  EXPECT_EQ(batch.TotalBacklog(lane), scalar.TotalBacklog())
      << "backlog lane " << lane;
  EXPECT_EQ(batch.TotalLostWork(lane), scalar.TotalLostWork())
      << "lost work lane " << lane;
  EXPECT_EQ(batch.OverloadMinutes(lane), scalar.OverloadMinutes())
      << "overload minutes lane " << lane;
}

// --- Paper landscape, both distribution modes, three seeds -------------

class PaperParityTest : public ::testing::TestWithParam<UserDistribution> {};

TEST_P(PaperParityTest, LanesMatchScalarPerSeedAndScale) {
  const std::vector<LaneSetup> lanes = {
      {42, 1.00}, {7, 1.05}, {2026, 1.40}};

  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  Cluster cluster;
  ASSERT_TRUE(landscape.Build(&cluster, nullptr).ok());

  BatchDemandEngine batch(&cluster, lanes.size());
  ASSERT_TRUE(landscape.Build(nullptr, &batch).ok());
  batch.set_distribution(GetParam());
  std::vector<std::unique_ptr<DemandEngine>> scalars;
  for (size_t k = 0; k < lanes.size(); ++k) {
    batch.SetLaneSeed(k, lanes[k].seed);
    batch.SetLaneUserScale(k, lanes[k].scale);
    auto scalar =
        std::make_unique<DemandEngine>(&cluster, Rng(lanes[k].seed));
    ASSERT_TRUE(landscape.Build(nullptr, scalar.get()).ok());
    scalar->set_user_scale(lanes[k].scale);
    scalar->set_distribution(GetParam());
    scalars.push_back(std::move(scalar));
  }

  for (int t = 1; t <= 240; ++t) {
    SimTime now = SimTime::Start() + Duration::Minutes(t);
    batch.Tick(now);
    for (auto& scalar : scalars) scalar->Tick(now);
    if (t % 60 == 0 || t == 1) {
      for (size_t k = 0; k < lanes.size(); ++k) {
        ExpectLaneMatchesScalar(batch, k, *scalars[k], cluster);
      }
    }
  }
  for (size_t k = 0; k < lanes.size(); ++k) {
    ExpectLaneMatchesScalar(batch, k, *scalars[k], cluster);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, PaperParityTest,
                         ::testing::Values(
                             UserDistribution::kStickySessions,
                             UserDistribution::kDynamicRedistribution),
                         [](const auto& info) {
                           return info.param ==
                                          UserDistribution::kStickySessions
                                      ? "Sticky"
                                      : "Dynamic";
                         });

// --- Mid-run topology changes (shared across lanes) --------------------

TEST(BatchDemandTest, MidRunTopologyChangesStayInLockstep) {
  SmallWorld world;
  world.Populate();
  std::vector<InstanceId> ids = world.PlaceInitial();

  const std::vector<LaneSetup> lanes = {{42, 1.0}, {7, 1.3}};
  BatchDemandEngine batch(&world.cluster, lanes.size());
  SmallWorld::Register(&batch);
  std::vector<std::unique_ptr<DemandEngine>> scalars;
  for (size_t k = 0; k < lanes.size(); ++k) {
    batch.SetLaneSeed(k, lanes[k].seed);
    batch.SetLaneUserScale(k, lanes[k].scale);
    auto scalar =
        std::make_unique<DemandEngine>(&world.cluster, Rng(lanes[k].seed));
    SmallWorld::Register(scalar.get());
    scalar->set_user_scale(lanes[k].scale);
    scalars.push_back(std::move(scalar));
  }

  auto tick_all = [&](int from, int to) {
    for (int t = from; t <= to; ++t) {
      SimTime now = SimTime::Start() + Duration::Minutes(t);
      batch.Tick(now);
      for (auto& scalar : scalars) scalar->Tick(now);
    }
    for (size_t k = 0; k < lanes.size(); ++k) {
      ExpectLaneMatchesScalar(batch, k, *scalars[k], world.cluster);
    }
  };

  tick_all(1, 30);

  // Start a new app instance (kStarting: base load only)...
  auto started = world.cluster.PlaceInstance(
      "app", "s3", SimTime::Start() + Duration::Minutes(30),
      InstanceState::kStarting);
  ASSERT_TRUE(started.ok());
  tick_all(31, 40);

  // ...promote it to running...
  ASSERT_TRUE(world.cluster
                  .SetInstanceState(started.value_or(0),
                                    InstanceState::kRunning)
                  .ok());
  tick_all(41, 60);

  // ...and remove one of the original instances.
  ASSERT_TRUE(world.cluster.RemoveInstance(ids[0]).ok());
  tick_all(61, 90);
}

// --- Per-lane fault masking --------------------------------------------

TEST(BatchDemandTest, LaneFaultMaskDivergesOnlyThatLane) {
  // World A hosts the batch engine and the healthy scalar twin; world
  // B is an identical landscape whose instance actually fails, as the
  // scalar twin of the masked lane. Identical placement sequences give
  // identical InstanceIds.
  SmallWorld world_a;
  world_a.Populate();
  std::vector<InstanceId> ids_a = world_a.PlaceInitial();
  SmallWorld world_b;
  world_b.Populate();
  std::vector<InstanceId> ids_b = world_b.PlaceInitial();
  ASSERT_EQ(ids_a, ids_b);

  BatchDemandEngine batch(&world_a.cluster, 2);
  SmallWorld::Register(&batch);
  batch.SetLaneSeed(0, 42);
  batch.SetLaneSeed(1, 42);

  DemandEngine healthy(&world_a.cluster, Rng(42));
  SmallWorld::Register(&healthy);
  DemandEngine faulty(&world_b.cluster, Rng(42));
  SmallWorld::Register(&faulty);

  auto tick_all = [&](int from, int to) {
    for (int t = from; t <= to; ++t) {
      SimTime now = SimTime::Start() + Duration::Minutes(t);
      batch.Tick(now);
      healthy.Tick(now);
      faulty.Tick(now);
    }
  };

  tick_all(1, 30);
  ExpectLaneMatchesScalar(batch, 0, healthy, world_a.cluster);
  ExpectLaneMatchesScalar(batch, 1, faulty, world_b.cluster);

  // Fail the first app instance in lane 1 only; world B mirrors it.
  ASSERT_TRUE(
      batch.SetLaneInstanceState(1, ids_a[0], InstanceState::kFailed)
          .ok());
  ASSERT_TRUE(world_b.cluster
                  .SetInstanceState(ids_b[0], InstanceState::kFailed)
                  .ok());
  tick_all(31, 60);
  ExpectLaneMatchesScalar(batch, 0, healthy, world_a.cluster);
  ExpectLaneMatchesScalar(batch, 1, faulty, world_b.cluster);
  // Lane 1 genuinely diverged from lane 0.
  EXPECT_NE(batch.InstanceUsers(1, ids_a[0]),
            batch.InstanceUsers(0, ids_a[0]));

  // Recover.
  ASSERT_TRUE(batch.ClearLaneInstanceState(1, ids_a[0]).ok());
  ASSERT_TRUE(world_b.cluster
                  .SetInstanceState(ids_b[0], InstanceState::kRunning)
                  .ok());
  tick_all(61, 90);
  ExpectLaneMatchesScalar(batch, 0, healthy, world_a.cluster);
  ExpectLaneMatchesScalar(batch, 1, faulty, world_b.cluster);
}

// --- Batch size never changes a lane's output --------------------------

TEST(BatchDemandTest, BatchSizeInvariance) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  Cluster cluster;
  ASSERT_TRUE(landscape.Build(&cluster, nullptr).ok());

  auto run = [&](size_t lanes_count) {
    auto batch = std::make_unique<BatchDemandEngine>(&cluster, lanes_count);
    EXPECT_TRUE(landscape.Build(nullptr, batch.get()).ok());
    for (size_t k = 0; k < lanes_count; ++k) {
      batch->SetLaneSeed(k, 42 + k * 17);
      batch->SetLaneUserScale(k, 1.0 + 0.05 * static_cast<double>(k % 9));
    }
    for (int t = 1; t <= 120; ++t) {
      batch->Tick(SimTime::Start() + Duration::Minutes(t));
    }
    return batch;
  };

  auto b1 = run(1);
  auto b8 = run(8);
  auto b64 = run(64);

  const infra::LandscapeIndex& index = cluster.Index();
  auto expect_lane_equal = [&](const BatchDemandEngine& a, size_t la,
                               const BatchDemandEngine& b, size_t lb) {
    for (size_t s = 0; s < index.num_servers(); ++s) {
      infra::DenseId sid = static_cast<infra::DenseId>(s);
      EXPECT_EQ(a.ServerCpuLoad(la, sid), b.ServerCpuLoad(lb, sid));
    }
    for (const InstanceRef& ref : index.Instances()) {
      EXPECT_EQ(a.InstanceUsers(la, ref.id), b.InstanceUsers(lb, ref.id));
      EXPECT_EQ(a.InstanceLoad(la, ref.id), b.InstanceLoad(lb, ref.id));
    }
    EXPECT_EQ(a.TotalBacklog(la), b.TotalBacklog(lb));
    EXPECT_EQ(a.TotalLostWork(la), b.TotalLostWork(lb));
    EXPECT_EQ(a.OverloadMinutes(la), b.OverloadMinutes(lb));
  };

  expect_lane_equal(*b1, 0, *b64, 0);
  for (size_t k = 0; k < 8; ++k) expect_lane_equal(*b8, k, *b64, k);
}

// --- ResetLanes re-arms the engine bit-identically ---------------------

TEST(BatchDemandTest, ResetLanesReproducesFreshRun) {
  SmallWorld world;
  world.Populate();
  world.PlaceInitial();

  BatchDemandEngine batch(&world.cluster, 2);
  SmallWorld::Register(&batch);

  auto arm = [&]() {
    batch.SetLaneSeed(0, 42);
    batch.SetLaneSeed(1, 7);
    batch.SetLaneUserScale(0, 1.0);
    batch.SetLaneUserScale(1, 1.2);
  };
  auto run = [&]() {
    for (int t = 1; t <= 90; ++t) {
      batch.Tick(SimTime::Start() + Duration::Minutes(t));
    }
  };

  arm();
  run();
  std::vector<double> first;
  const infra::LandscapeIndex& index = world.cluster.Index();
  for (size_t lane = 0; lane < 2; ++lane) {
    for (const InstanceRef& ref : index.Instances()) {
      first.push_back(batch.InstanceUsers(lane, ref.id));
      first.push_back(batch.InstanceLoad(lane, ref.id));
    }
    first.push_back(batch.TotalBacklog(lane));
    first.push_back(batch.TotalLostWork(lane));
    first.push_back(batch.OverloadMinutes(lane));
  }

  batch.ResetLanes();
  arm();
  run();
  size_t i = 0;
  for (size_t lane = 0; lane < 2; ++lane) {
    for (const InstanceRef& ref : index.Instances()) {
      EXPECT_EQ(first[i++], batch.InstanceUsers(lane, ref.id));
      EXPECT_EQ(first[i++], batch.InstanceLoad(lane, ref.id));
    }
    EXPECT_EQ(first[i++], batch.TotalBacklog(lane));
    EXPECT_EQ(first[i++], batch.TotalLostWork(lane));
    EXPECT_EQ(first[i++], batch.OverloadMinutes(lane));
  }
}

// --- Philox draw discipline: scalar <-> batched bit-parity -------------

// 64 batched philox lanes against 64 scalar philox engines, both
// distribution modes. This is the tentpole contract: in philox mode
// every noise draw is a pure function of (seed, draw index), so the
// batched engine — including its AVX2 4-lane block kernels — must
// reproduce each scalar run bit for bit.
class PhiloxParityTest : public ::testing::TestWithParam<UserDistribution> {
};

TEST_P(PhiloxParityTest, SixtyFourLanesMatchScalarRuns) {
  constexpr size_t kLanes = 64;
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  Cluster cluster;
  ASSERT_TRUE(landscape.Build(&cluster, nullptr).ok());

  BatchDemandEngine batch(&cluster, kLanes);
  ASSERT_TRUE(landscape.Build(nullptr, &batch).ok());
  batch.set_rng_kind(RngKind::kPhilox);
  batch.set_distribution(GetParam());
  std::vector<std::unique_ptr<DemandEngine>> scalars;
  for (size_t k = 0; k < kLanes; ++k) {
    uint64_t seed = 1000 + k * 977;
    double scale = 1.0 + 0.05 * static_cast<double>(k % 5);
    batch.SetLaneSeed(k, seed);
    batch.SetLaneUserScale(k, scale);
    auto scalar = std::make_unique<DemandEngine>(&cluster, Rng(seed));
    ASSERT_TRUE(landscape.Build(nullptr, scalar.get()).ok());
    scalar->SeedRng(seed, RngKind::kPhilox);
    scalar->set_user_scale(scale);
    scalar->set_distribution(GetParam());
    scalars.push_back(std::move(scalar));
  }

  for (int t = 1; t <= 180; ++t) {
    SimTime now = SimTime::Start() + Duration::Minutes(t);
    batch.Tick(now);
    for (auto& scalar : scalars) scalar->Tick(now);
    if (t == 1 || t == 90) {
      for (size_t k = 0; k < kLanes; k += 13) {
        ExpectLaneMatchesScalar(batch, k, *scalars[k], cluster);
      }
    }
  }
  for (size_t k = 0; k < kLanes; ++k) {
    ExpectLaneMatchesScalar(batch, k, *scalars[k], cluster);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, PhiloxParityTest,
                         ::testing::Values(
                             UserDistribution::kStickySessions,
                             UserDistribution::kDynamicRedistribution),
                         [](const auto& info) {
                           return info.param ==
                                          UserDistribution::kStickySessions
                                      ? "Sticky"
                                      : "Dynamic";
                         });

// Philox batch-size invariance: the same 64 (seed, scale) streams give
// the same bits whether stepped as 64x1, 8x8, or 1x64 lanes. The
// legacy discipline has this property because lanes never share
// state; philox additionally exercises the mixed even/odd counter
// paths of the SIMD kernels at every lane width.
TEST(BatchDemandTest, PhiloxBatchSizeInvariance) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  Cluster cluster;
  ASSERT_TRUE(landscape.Build(&cluster, nullptr).ok());

  auto run = [&](size_t lanes_count) {
    auto batch = std::make_unique<BatchDemandEngine>(&cluster, lanes_count);
    EXPECT_TRUE(landscape.Build(nullptr, batch.get()).ok());
    batch->set_rng_kind(RngKind::kPhilox);
    for (size_t k = 0; k < lanes_count; ++k) {
      batch->SetLaneSeed(k, 42 + k * 17);
      batch->SetLaneUserScale(k, 1.0 + 0.05 * static_cast<double>(k % 9));
    }
    for (int t = 1; t <= 120; ++t) {
      batch->Tick(SimTime::Start() + Duration::Minutes(t));
    }
    return batch;
  };

  auto b1 = run(1);
  auto b8 = run(8);
  auto b64 = run(64);

  const infra::LandscapeIndex& index = cluster.Index();
  auto expect_lane_equal = [&](const BatchDemandEngine& a, size_t la,
                               const BatchDemandEngine& b, size_t lb) {
    for (size_t s = 0; s < index.num_servers(); ++s) {
      infra::DenseId sid = static_cast<infra::DenseId>(s);
      EXPECT_EQ(a.ServerCpuLoad(la, sid), b.ServerCpuLoad(lb, sid));
    }
    for (const InstanceRef& ref : index.Instances()) {
      EXPECT_EQ(a.InstanceUsers(la, ref.id), b.InstanceUsers(lb, ref.id));
      EXPECT_EQ(a.InstanceLoad(la, ref.id), b.InstanceLoad(lb, ref.id));
    }
    EXPECT_EQ(a.TotalBacklog(la), b.TotalBacklog(lb));
    EXPECT_EQ(a.TotalLostWork(la), b.TotalLostWork(lb));
    EXPECT_EQ(a.OverloadMinutes(la), b.OverloadMinutes(lb));
  };

  expect_lane_equal(*b1, 0, *b64, 0);
  for (size_t k = 0; k < 8; ++k) expect_lane_equal(*b8, k, *b64, k);
}

// Per-lane fault masks zero some lanes' fresh demand, so those lanes
// must skip their philox draws exactly like a scalar engine whose
// instance failed — counters may not shear across lanes.
TEST(BatchDemandTest, PhiloxLaneFaultMaskDivergesOnlyThatLane) {
  SmallWorld world_batch;
  world_batch.Populate();
  std::vector<InstanceId> ids = world_batch.PlaceInitial();
  SmallWorld world_a;
  world_a.Populate();
  world_a.PlaceInitial();
  SmallWorld world_b;
  world_b.Populate();
  world_b.PlaceInitial();

  BatchDemandEngine batch(&world_batch.cluster, 2);
  SmallWorld::Register(&batch);
  batch.set_rng_kind(RngKind::kPhilox);
  batch.SetLaneSeed(0, 5);
  batch.SetLaneSeed(1, 5);

  DemandEngine healthy(&world_a.cluster, Rng(5));
  SmallWorld::Register(&healthy);
  healthy.SeedRng(5, RngKind::kPhilox);
  DemandEngine faulty(&world_b.cluster, Rng(5));
  SmallWorld::Register(&faulty);
  faulty.SeedRng(5, RngKind::kPhilox);

  for (int t = 1; t <= 30; ++t) {
    SimTime now = SimTime::Start() + Duration::Minutes(t);
    batch.Tick(now);
    healthy.Tick(now);
    faulty.Tick(now);
  }

  // Fail the first app instance in lane 1 only (mirrored by a real
  // state change in faulty's own cluster).
  ASSERT_TRUE(batch
                  .SetLaneInstanceState(1, ids[0],
                                        InstanceState::kFailed)
                  .ok());
  ASSERT_TRUE(
      world_b.cluster.SetInstanceState(ids[0], InstanceState::kFailed)
          .ok());

  for (int t = 31; t <= 60; ++t) {
    SimTime now = SimTime::Start() + Duration::Minutes(t);
    batch.Tick(now);
    healthy.Tick(now);
    faulty.Tick(now);
  }
  ExpectLaneMatchesScalar(batch, 0, healthy, world_a.cluster);
  ExpectLaneMatchesScalar(batch, 1, faulty, world_b.cluster);

  // Recover and reconverge the masked lane.
  ASSERT_TRUE(batch.ClearLaneInstanceState(1, ids[0]).ok());
  ASSERT_TRUE(
      world_b.cluster.SetInstanceState(ids[0], InstanceState::kRunning)
          .ok());
  for (int t = 61; t <= 90; ++t) {
    SimTime now = SimTime::Start() + Duration::Minutes(t);
    batch.Tick(now);
    healthy.Tick(now);
    faulty.Tick(now);
  }
  ExpectLaneMatchesScalar(batch, 0, healthy, world_a.cluster);
  ExpectLaneMatchesScalar(batch, 1, faulty, world_b.cluster);
}

}  // namespace
}  // namespace autoglobe::workload
