#ifndef AUTOGLOBE_BENCH_BENCHMARK_JSON_H_
#define AUTOGLOBE_BENCH_BENCHMARK_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_report.h"

namespace autoglobe::bench {

/// Console reporting plus capture into BenchRecord rows: every run's
/// counters land in `extra`, so google-benchmark binaries leave a
/// BENCH_*.json perf trajectory behind without duplicating this glue.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      BenchRecord record;
      record.name = run.benchmark_name();
      record.wall_seconds =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations)
              : 0.0;
      record.extra["iterations"] = static_cast<double>(run.iterations);
      for (const auto& [name, counter] : run.counters) {
        if (name == "items_per_second") {
          record.items_per_second = static_cast<double>(counter);
        } else {
          record.extra[name] = static_cast<double>(counter);
        }
      }
      records_.push_back(std::move(record));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<BenchRecord>& records() const { return records_; }

 private:
  std::vector<BenchRecord> records_;
};

/// Drop-in main() body for microbenchmark binaries: runs the
/// registered benchmarks and writes the captured records to `path`.
inline int RunBenchmarksAndWriteJson(int argc, char** argv,
                                     const std::string& path) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  WriteBenchJson(path, reporter.records());
  return 0;
}

}  // namespace autoglobe::bench

#endif  // AUTOGLOBE_BENCH_BENCHMARK_JSON_H_
