#include "designer/designer.h"

#include <gtest/gtest.h>

#include "autoglobe/capacity.h"
#include "infra/cluster.h"

namespace autoglobe::designer {
namespace {

TEST(PredictHourlyDemandTest, InteractiveAndTiersPropagate) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto demand = PredictHourlyDemand(landscape);
  // Every declared service has a profile of 48 half-hour slots.
  EXPECT_EQ(demand.size(), landscape.demand.size());
  ASSERT_EQ(demand.at("LES").size(), 48u);
  // LES peaks during office hours (slot 19 = 09:30-10:00), BW at night.
  double les_day = demand.at("LES")[19];
  double les_night = demand.at("LES")[6];
  EXPECT_GT(les_day, 3.0);
  EXPECT_LT(les_night, 0.5);
  double bw_night = demand.at("BW")[4];
  double bw_day = demand.at("BW")[24];
  EXPECT_GT(bw_night, bw_day * 3);
  // DB-ERP inherits the ERP subsystem's day shape, scaled by 0.46.
  double erp_apps_day = demand.at("FI")[19] + demand.at("LES")[19] +
                        demand.at("PP")[19] + demand.at("HR")[19];
  EXPECT_NEAR(demand.at("DB-ERP")[19], 0.46 * erp_apps_day + 0.1, 0.2);
  // DB-BW inherits BW's night shape.
  EXPECT_GT(demand.at("DB-BW")[4], demand.at("DB-BW")[24] * 3);
}

TEST(DesignerTest, RejectsBadOptions) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  DesignOptions options;
  options.target_peak_load = 0.0;
  EXPECT_FALSE(DesignAllocation(landscape, options).ok());
  options.target_peak_load = 1.5;
  EXPECT_FALSE(DesignAllocation(landscape, options).ok());
}

TEST(DesignerTest, DesignsAFeasibleAllocationForThePaperLandscape) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto report = DesignAllocation(landscape);
  ASSERT_TRUE(report.ok()) << report.status();
  // The designed allocation materializes under the real constraints.
  infra::Cluster cluster;
  ASSERT_TRUE(report->landscape.Build(&cluster, nullptr).ok());
  // Every service meets its minimum instance count.
  for (const auto& service : landscape.services) {
    EXPECT_GE(cluster.ActiveInstanceCount(service.name),
              std::max(1, service.min_instances))
        << service.name;
    EXPECT_LE(cluster.ActiveInstanceCount(service.name),
              service.max_instances)
        << service.name;
  }
  // Predicted loads stay at/below the paper's dimensioning band.
  EXPECT_LE(report->designed_peak_load, 0.80);
  EXPECT_EQ(report->hourly_loads.size(), 48u);
}

TEST(DesignerTest, MatchesOrBeatsThePaperHandAllocation) {
  // The hand-tuned Figure 11 allocation is already dimensioned to
  // 60-80 % peaks; the designer must not be worse at its job.
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto report = DesignAllocation(landscape);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->input_peak_load, 0.0);
  EXPECT_LE(report->designed_peak_load, report->input_peak_load + 1e-9);
}

TEST(DesignerTest, RespectsExclusivenessAndMinPerformance) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto report = DesignAllocation(landscape);
  ASSERT_TRUE(report.ok());
  std::string db_erp_host;
  std::map<std::string, int> tenants;
  for (const auto& [service, server] :
       report->landscape.initial_allocation) {
    ++tenants[server];
    if (service == "DB-ERP") db_erp_host = server;
    if (service == "DB-ERP" || service == "DB-CRM" || service == "DB-BW") {
      // min. perf. index 5 -> only the BL40p servers qualify.
      EXPECT_EQ(server.rfind("DBServer", 0), 0u) << service << "@" << server;
    }
  }
  // Exclusive DB-ERP shares its host with nobody.
  ASSERT_FALSE(db_erp_host.empty());
  EXPECT_EQ(tenants[db_erp_host], 1);
}

TEST(DesignerTest, DeterministicGivenSeed) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto a = DesignAllocation(landscape);
  auto b = DesignAllocation(landscape);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->landscape.initial_allocation,
            b->landscape.initial_allocation);
}

TEST(DesignerTest, GrowsUnderProvisionedServices) {
  // Strip the allocation down to nothing and let the designer size it.
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  landscape.initial_allocation.clear();
  auto report = DesignAllocation(landscape);
  ASSERT_TRUE(report.ok()) << report.status();
  std::map<std::string, int> instances;
  double les_pi = 0;
  for (const auto& [service, server] :
       report->landscape.initial_allocation) {
    ++instances[service];
    if (service == "LES") {
      for (const auto& spec : landscape.servers) {
        if (spec.name == server) les_pi += spec.performance_index;
      }
    }
  }
  // LES peaks at ~4.6 wu; at the 0.62 target it needs >= 7 PI of
  // aggregate capacity (the designer may reach it with two big hosts).
  EXPECT_GE(les_pi, 7.0);
  EXPECT_GE(instances["LES"], landscape.services[1].min_instances);
  EXPECT_EQ(report->input_peak_load, 0.0);  // no baseline given
}

TEST(DesignerTest, DesignedAllocationRunsCleanAtBaseLoad) {
  // End-to-end: a static (uncontrolled) run on the designed
  // allocation stays within the overload criteria at 100 % users.
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto report = DesignAllocation(landscape);
  ASSERT_TRUE(report.ok());
  RunnerConfig config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.duration = Duration::Hours(48);
  config.metrics_warmup = Duration::Hours(12);
  auto runner = SimulationRunner::Create(report->landscape, config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());
  EXPECT_TRUE(Passes((*runner)->metrics(), AcceptanceCriteria{}))
      << "overload " << (*runner)->metrics().overload_server_minutes
      << " min, streak "
      << (*runner)->metrics().max_overload_streak_minutes;
}

}  // namespace
}  // namespace autoglobe::designer
