file(REMOVE_RECURSE
  "CMakeFiles/sap_landscape.dir/sap_landscape.cpp.o"
  "CMakeFiles/sap_landscape.dir/sap_landscape.cpp.o.d"
  "sap_landscape"
  "sap_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sap_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
