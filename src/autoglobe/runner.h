#ifndef AUTOGLOBE_AUTOGLOBE_RUNNER_H_
#define AUTOGLOBE_AUTOGLOBE_RUNNER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "autoglobe/landscape.h"
#include "autoglobe/sla.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/rng_kind.h"
#include "controller/controller.h"
#include "controller/degraded.h"
#include "faults/availability.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "faults/recovery.h"
#include "forecast/forecaster.h"
#include "infra/cluster.h"
#include "infra/executor.h"
#include "monitor/load_archive.h"
#include "monitor/monitoring.h"
#include "monitor/pool_stats.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "strategy/strategy.h"
#include "workload/demand.h"

namespace autoglobe {

/// All knobs of one simulation run. Defaults follow paper §5.1: 1-min
/// sampling, 80 simulated hours, 70 % overload threshold with a
/// 10-min watchTime, idle threshold 12.5 %/PI with a 20-min
/// watchTime, 30-min protection.
struct RunnerConfig {
  Duration tick = Duration::Minutes(1);
  Duration duration = Duration::Hours(80);
  double user_scale = 1.0;
  uint64_t seed = 42;
  /// Which draw discipline produces workload noise. kXoshiro is the
  /// legacy sequential stream (all pinned goldens); kPhilox is the
  /// counter-based stream whose draws are a pure function of
  /// (seed, draw index) — order-independent, O(1) skip-ahead, and
  /// bit-identical between scalar, batched, and SIMD evaluation
  /// (DESIGN.md §16).
  RngKind rng_kind = RngKind::kXoshiro;

  monitor::MonitorConfig monitor;
  infra::ExecutorConfig executor;
  controller::ControllerConfig controller;

  /// Load-archive shape. Retention bounds each subject's raw-sample
  /// ring (retention / tick samples); hyperscale sweeps shrink it so
  /// ten thousand subjects fit a sane memory budget. The runner
  /// pre-sizes every series from these at Init, so steady-state
  /// archive appends never touch the heap.
  Duration archive_retention = Duration::Hours(48);
  Duration archive_bucket = Duration::Minutes(15);

  /// False disables the whole control loop (the static scenario).
  bool controller_enabled = true;
  /// Sticky sessions (static/CM) vs dynamic redistribution (FM).
  workload::UserDistribution distribution =
      workload::UserDistribution::kStickySessions;
  /// Fraction of users per minute re-logging to the least-loaded
  /// instance (sticky-session scenarios).
  double fluctuation_per_minute = 0.01;

  /// Feed the controller forecasted loads instead of watch-time means
  /// (the proactive extension, ablation A5).
  bool use_forecast = false;
  forecast::ForecastConfig forecast;

  /// Evaluation threshold for the "overloaded" verdict (the paper
  /// calls a server overloaded at "more than 80 %" CPU "for a long
  /// time", §5.2). Judged on a smoothed (trailing-window mean) load
  /// so single noisy samples do not count.
  double overload_threshold = 0.8;
  /// Smoothing window for the overload verdict.
  Duration overload_smoothing = Duration::Minutes(15);

  /// Mean instance crashes per instance-hour (failure injection; 0
  /// disables). This is the legacy Bernoulli-per-tick model with
  /// immediate remediation; the richer crash model below supersedes
  /// it for availability studies but both may run together.
  double instance_failures_per_hour = 0.0;

  /// Fault-injection & self-healing (the availability scenario). With
  /// a plan set, the FaultInjector arms it at Init, heartbeat-based
  /// failure detection is enabled in the monitor, and the
  /// RecoveryManager heals detected failures (restart with backoff,
  /// relocation, evacuation). Unset = all of it off, and the run is
  /// byte-identical to a build without the fault subsystem.
  std::optional<faults::FaultPlan> fault_plan;
  faults::RecoveryConfig recovery;
  faults::AvailabilityConfig availability;

  /// Quality metrics collected before this offset are discarded — the
  /// paper attributes the "remaining short overload peaks at the
  /// beginning" to watchTime cold start; verdicts judge steady state.
  Duration metrics_warmup = Duration::Zero();

  /// Service-level agreements to monitor (QoS extension, §7).
  std::vector<SlaSpec> slas;
  /// Explicit resource reservations for registered tasks (§7): the
  /// host-selection process treats reserved capacity as spoken-for.
  std::vector<controller::Reservation> reservations;
  /// With enforcement on, *entering* an SLA violation immediately
  /// escalates to the controller (synthetic overload trigger — the
  /// breach is confirmed harm, no watchTime needed); off = track only.
  bool enforce_slas = true;

  /// Structured tracing and the controller decision audit trail (both
  /// off by default; the metrics registry is always on — its disabled
  /// cost is a handful of relaxed atomic adds per tick).
  obs::ObservabilityConfig observability;

  /// Degraded-mode watchdog (off by default): when monitor-dropout
  /// storms blind detection or ticks overrun their wall-clock
  /// deadline, the controller drops to an urgent-only posture — SLA
  /// escalations and failure recovery still run, speculative
  /// rebalancing is frozen until a hysteresis window of healthy ticks.
  controller::DegradedModeConfig degraded;

  /// Which decide-per-trigger policy drives the control loop. The
  /// default (static fuzzy) is the paper's controller, bit-identical
  /// to the pre-strategy engine; see src/strategy for the
  /// proportional baseline and the fuzzy Q-learner.
  strategy::StrategyConfig strategy;
  /// Window for the oscillation metric: a scale/priority reversal or
  /// a move back to the previous host within this window counts as
  /// one oscillation (the instability §4's protection mode exists to
  /// prevent).
  Duration oscillation_window = Duration::Minutes(60);
};

/// Aggregate quality metrics of a run.
struct RunMetrics {
  /// Server-minutes with CPU load above the overload threshold.
  double overload_server_minutes = 0.0;
  /// Longest uninterrupted overload streak of any single server.
  double max_overload_streak_minutes = 0.0;
  /// Share of (server x minute) samples above the threshold.
  double overload_fraction = 0.0;
  /// Work dropped because instance backlogs overflowed (wu).
  double lost_work_wu = 0.0;
  /// Mean CPU load over all servers and ticks.
  double average_cpu_load = 0.0;
  int64_t triggers = 0;
  int64_t actions_executed = 0;
  int64_t actions_failed = 0;
  int64_t alerts = 0;
  int64_t failures_injected = 0;
  int64_t failures_remedied = 0;
  /// Cumulative minutes any SLA spent in violation (QoS extension).
  double sla_violation_minutes = 0.0;
  /// Action reversals within the oscillation window: scale-out after
  /// scale-in (or vice versa), a priority raise after a cut (or vice
  /// versa), or a move back to the previous host — per service.
  int64_t oscillations = 0;
  /// Learner telemetry (0 unless the fuzzy Q-learning strategy ran).
  int64_t strategy_reward_updates = 0;
  int64_t strategy_weight_updates = 0;
};

/// Wires the full AutoGlobe stack — cluster, demand engine, load
/// monitors/archive, fuzzy controller, action executor — around the
/// simulation kernel and runs a scenario (the architecture of
/// Figure 2 driving the controlled infrastructure of Figure 4).
class SimulationRunner {
 public:
  /// Called every tick after loads are updated; drives figure benches.
  using SampleHook =
      std::function<void(SimTime, const workload::DemandEngine&,
                         const infra::Cluster&)>;

  static Result<std::unique_ptr<SimulationRunner>> Create(
      const Landscape& landscape, RunnerConfig config);

  ~SimulationRunner();  // out-of-line: View is an incomplete type here

  /// Runs the configured duration to completion.
  Status Run();
  /// Runs until the given simulated time (incremental; may be called
  /// repeatedly).
  Status RunUntil(SimTime end);

  /// Re-arms the runner for another run with a new seed / user scale
  /// without reconstructing anything — the event heap, archive rings,
  /// monitor subjects, and demand-engine data plane all keep their
  /// storage, so repetition sweeps (capacity steps, seed batteries)
  /// skip the whole Create cost per rep. After the reset, a run is
  /// bit-identical to a freshly created runner with the same config.
  ///
  /// Only valid while the topology still matches Init (no executor
  /// actions, no structural changes) and without a fault plan (the
  /// plan arms simulator events at Init); FailedPrecondition
  /// otherwise. The always-on metrics registry keeps accumulating
  /// across reruns — snapshot-diff it per rep if per-run counters are
  /// needed.
  Status ResetForRerun(uint64_t seed, double user_scale);

  void set_sample_hook(SampleHook hook) { sample_hook_ = std::move(hook); }

  const RunMetrics& metrics() const { return metrics_; }
  const RunnerConfig& config() const { return config_; }

  infra::Cluster& cluster() { return cluster_; }
  const infra::Cluster& cluster() const { return cluster_; }
  workload::DemandEngine& demand() { return *demand_; }
  const workload::DemandEngine& demand() const { return *demand_; }
  monitor::LoadArchive& archive() { return archive_; }
  const monitor::LoadArchive& archive() const { return archive_; }
  monitor::LoadMonitoringSystem& monitoring() { return *monitoring_; }
  const monitor::LoadMonitoringSystem& monitoring() const {
    return *monitoring_;
  }
  /// Per-pool load aggregates, fed every tick (drives the
  /// controller's optional pool prescreen).
  const monitor::PoolLoadStats& pool_stats() const { return pool_stats_; }
  infra::ActionExecutor& executor() { return *executor_; }
  const infra::ActionExecutor& executor() const { return *executor_; }
  controller::Controller& controller() { return *controller_; }
  /// The strategy driving the control loop (always constructed; the
  /// default wraps the fuzzy controller unchanged).
  strategy::ControllerStrategy& strategy() { return *strategy_; }
  const strategy::ControllerStrategy& strategy() const {
    return *strategy_;
  }
  sim::Simulator& simulator() { return simulator_; }
  const sim::Simulator& simulator() const { return simulator_; }

  /// Messages emitted by the controller (action log + alerts), for
  /// the console's message view.
  const std::vector<std::string>& messages() const { return messages_; }

  /// SLA report (empty when no SLAs are configured).
  const SlaTracker& slas() const { return slas_; }

  /// Always-on metrics registry (counters mirroring RunMetrics plus a
  /// server CPU-load histogram); snapshot it for BENCH_* sidecars or
  /// merge snapshots across the FindCapacityAll worker pool.
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }
  /// Trace buffer / audit log, or nullptr when the corresponding
  /// ObservabilityConfig switch is off.
  obs::TraceBuffer* trace_buffer() { return trace_.get(); }
  const obs::TraceBuffer* trace_buffer() const { return trace_.get(); }
  obs::AuditLog* audit_log() { return audit_.get(); }
  const obs::AuditLog* audit_log() const { return audit_.get(); }

  /// Fault subsystem handles, or nullptr when no fault plan is set.
  faults::FaultInjector* fault_injector() { return fault_injector_.get(); }
  faults::RecoveryManager* recovery_manager() { return recovery_.get(); }
  const faults::AvailabilityTracker* availability_tracker() const {
    return availability_.get();
  }
  /// Availability scorecard as of the current simulated time (empty
  /// report when the fault subsystem is off).
  faults::AvailabilityReport availability_report() const;

  /// Degraded-mode watchdog (inert unless RunnerConfig::degraded is
  /// enabled).
  const controller::DegradedModeController& degraded_mode() const {
    return degraded_;
  }

  // --- Checkpoint/restore (src/autoglobe/runner_persist.cc) -----------
  //
  // The runner's complete live state as named, independently
  // checksummable sections. A runner restored from the sections of a
  // checkpoint at tick T and run to the end is bit-identical to an
  // uninterrupted run — including RNG draws, pending simulator events,
  // learner state, and fault/recovery bookkeeping. The section payloads
  // are raw bytes; framing, checksums, and rotation live in src/persist.

  /// Appends every state section as (name, payload) pairs. Fails
  /// (FailedPrecondition) if a pending simulator event carries no
  /// re-arm descriptor — every schedule site in this codebase attaches
  /// one, so this only fires for foreign callbacks.
  Status SaveStateSections(
      std::vector<std::pair<std::string, std::string>>* sections) const;
  /// Restores from sections produced by SaveStateSections on a runner
  /// Create()d from the *same* landscape and config. Everything Init
  /// set up is overwritten; pending events are re-armed from their
  /// descriptors.
  Status RestoreStateSections(
      const std::vector<std::pair<std::string, std::string>>& sections);
  /// Fingerprint of the identity-defining configuration (landscape
  /// names, seed, rng plane, strategy kind, fault-plan presence) — a
  /// snapshot taken under one fingerprint refuses to restore under
  /// another.
  uint64_t StateFingerprint() const;

 private:
  explicit SimulationRunner(RunnerConfig config);

  Status Init(const Landscape& landscape);
  /// Schedules the periodic tick and the warmup-end reset. Shared by
  /// Init and ResetForRerun so both arm the exact same event ids and
  /// sequence numbers — the dispatch order of a rerun is identical to
  /// a fresh runner's.
  Status ArmSchedule();
  void OnTick();
  /// Warmup-end reset (one-shot event): discards quality metrics
  /// accumulated during the controller's cold start.
  void OnWarmupEnd();
  /// Rebuilds pending-event callbacks from their re-arm descriptors
  /// during RestoreStateSections.
  Result<sim::Simulator::Callback> RebuildCallback(
      const sim::EventDesc& desc);
  /// `key` is the subject's archive key, prebuilt at Init.
  std::optional<double> DetectionLoad(const std::string& key,
                                      double live) const;
  void OnTrigger(const monitor::Trigger& trigger);
  /// Oscillation detection on every successfully executed action (see
  /// RunnerConfig::oscillation_window).
  void TrackOscillation(const infra::ActionRecord& record);
  /// Folds strategy telemetry (reward/weight-update counts) into
  /// RunMetrics and the registry counters; idempotent per delta.
  void FoldStrategyTelemetry();
  void InjectFailures();
  /// Heartbeat-watch reconciliation against the topology epoch: new
  /// instances get a watch, removed instances are unwatched, so the
  /// monitor never holds a live reference to a dead subject.
  void ReconcileInstanceWatches(SimTime now);
  /// Records this tick's heartbeats (honoring server health and
  /// monitor-dropout windows) and runs failure detection.
  void FeedHeartbeats(SimTime now);

  /// LoadView implementation: watch-time means from the archive (or
  /// forecasts when configured), live instance loads from the engine.
  class View;

  RunnerConfig config_;
  sim::Simulator simulator_;
  infra::Cluster cluster_;
  monitor::LoadArchive archive_;
  std::unique_ptr<workload::DemandEngine> demand_;
  std::unique_ptr<monitor::LoadMonitoringSystem> monitoring_;
  std::unique_ptr<infra::ActionExecutor> executor_;
  std::unique_ptr<View> view_;
  std::unique_ptr<forecast::LoadForecaster> forecaster_;
  std::unique_ptr<controller::Controller> controller_;
  std::unique_ptr<strategy::ControllerStrategy> strategy_;
  Rng failure_rng_;
  /// Fault subsystem (all nullptr when config_.fault_plan is unset).
  std::unique_ptr<faults::AvailabilityTracker> availability_;
  std::unique_ptr<faults::FaultInjector> fault_injector_;
  std::unique_ptr<faults::RecoveryManager> recovery_;
  /// Instance heartbeat watches currently held (id -> monitor key +
  /// dense heartbeat slot), valid for topology epoch watched_epoch_.
  struct WatchedInstance {
    std::string key;
    size_t hb_id = 0;
  };
  std::map<infra::InstanceId, WatchedInstance> watched_instances_;
  uint64_t watched_epoch_ = 0;
  /// Server heartbeat keys ("s/<name>") and their dense heartbeat
  /// slots, parallel to server_names_. The per-tick feed runs purely
  /// on the slots.
  std::vector<std::string> server_hb_keys_;
  std::vector<size_t> server_hb_ids_;
  controller::ReservationBook reservations_;
  monitor::PoolLoadStats pool_stats_;
  /// Urgent-only posture watchdog (inert when not enabled).
  controller::DegradedModeController degraded_;
  SlaTracker slas_;
  SampleHook sample_hook_;
  RunMetrics metrics_;
  std::vector<std::string> messages_;

  /// Observability: the registry lives here (one per runner, so the
  /// parallel capacity sweeps each own one and merge snapshots);
  /// trace/audit are heap-allocated only when enabled.
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::TraceBuffer> trace_;
  std::unique_ptr<obs::AuditLog> audit_;
  obs::Counter triggers_counter_;
  obs::Counter actions_executed_counter_;
  obs::Counter actions_failed_counter_;
  obs::Counter alerts_counter_;
  obs::Counter failures_injected_counter_;
  obs::Counter failures_remedied_counter_;
  obs::Counter sla_violations_counter_;
  obs::Counter executor_actions_failed_counter_;
  obs::Counter executor_retries_counter_;
  obs::Counter recoveries_counter_;
  obs::Counter recovery_abandoned_counter_;
  obs::Counter oscillations_counter_;
  obs::Counter strategy_reward_updates_counter_;
  obs::Counter strategy_weight_updates_counter_;
  obs::Counter degraded_entries_counter_;
  obs::Counter degraded_ticks_counter_;
  obs::Counter degraded_suppressed_counter_;
  obs::Histogram server_cpu_load_;
  /// Telemetry already folded into the counters above (RunUntil may
  /// be called repeatedly).
  int64_t folded_reward_updates_ = 0;
  int64_t folded_weight_updates_ = 0;
  /// Oscillation detection state: per service, the last executed
  /// scale direction, priority direction, and move (source -> target)
  /// with their times.
  struct ActionHistory {
    infra::ActionType last_scale = infra::ActionType::kMove;  // none
    SimTime last_scale_at;
    infra::ActionType last_priority = infra::ActionType::kMove;
    SimTime last_priority_at;
    std::string last_move_source;
    std::string last_move_target;
    SimTime last_move_at;
  };
  std::map<std::string, ActionHistory> action_history_;

  /// Per-server hot-path state for the smoothed overload verdict:
  /// overload streak plus a trailing-window ring buffer of load
  /// samples. Stored densely, indexed by the stable server index
  /// resolved once at Init — the per-tick loop does no string-keyed
  /// map lookups.
  struct ServerStat {
    double streak_minutes = 0.0;
    double window_sum = 0.0;
    std::vector<double> window;  // ring buffer of window_ticks_ samples
    size_t head = 0;             // index of the oldest sample
    size_t count = 0;            // samples currently in the window
  };
  /// Sorted server/service name snapshots taken at Init. Their ranks
  /// are exactly the cluster index's dense ids (both enumerate names
  /// in sorted order over a set that is fixed after Init), so the
  /// per-tick loop pairs `server_names_[i]` with the engine's
  /// `...ById(i)` views — no string-keyed lookups, and no references
  /// into index storage that a mid-loop topology change could move.
  std::vector<std::string> server_names_;   // sorted
  std::vector<std::string> service_names_;  // sorted
  std::vector<ServerStat> server_stats_;    // parallel to server_names_
  /// Monitoring subject ids and archive keys, resolved once at Init
  /// (parallel to server_names_ / service_names_): the per-tick
  /// Observe and forecast lookups do no string formatting or lookups.
  std::vector<monitor::SubjectId> server_subjects_;
  std::vector<monitor::SubjectId> service_subjects_;
  std::vector<std::string> server_keys_;
  std::vector<std::string> service_keys_;
  size_t window_ticks_ = 1;
  double load_sum_ = 0.0;
  int64_t load_samples_ = 0;
  bool initialized_ = false;
  /// Topology epoch recorded at Init; ResetForRerun refuses when the
  /// cluster has structurally changed since.
  uint64_t init_epoch_ = 0;
};

}  // namespace autoglobe

#endif  // AUTOGLOBE_AUTOGLOBE_RUNNER_H_
