file(REMOVE_RECURSE
  "CMakeFiles/sla_enforcement.dir/sla_enforcement.cpp.o"
  "CMakeFiles/sla_enforcement.dir/sla_enforcement.cpp.o.d"
  "sla_enforcement"
  "sla_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
