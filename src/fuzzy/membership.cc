#include "fuzzy/membership.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace autoglobe::fuzzy {

namespace {

Status BadBreakpoints(const char* shape) {
  return Status::InvalidArgument(
      StrFormat("%s breakpoints must be non-decreasing and finite", shape));
}

bool Ordered(double a, double b) { return a <= b && std::isfinite(a) && std::isfinite(b); }

/// Linear interpolation of the rising edge from (a,0) to (b,1).
double RisingEdge(double x, double a, double b) {
  if (x <= a) return 0.0;
  if (x >= b) return 1.0;
  return (x - a) / (b - a);
}

}  // namespace

Result<MembershipFunction> MembershipFunction::Trapezoid(double a, double b,
                                                         double c, double d) {
  if (!Ordered(a, b) || !Ordered(b, c) || !Ordered(c, d)) {
    return BadBreakpoints("trapezoid");
  }
  return MembershipFunction(Shape::kTrapezoid, {a, b, c, d});
}

Result<MembershipFunction> MembershipFunction::Triangle(double a, double b,
                                                        double c) {
  if (!Ordered(a, b) || !Ordered(b, c)) return BadBreakpoints("triangle");
  return MembershipFunction(Shape::kTriangle, {a, b, c, 0});
}

Result<MembershipFunction> MembershipFunction::RampUp(double a, double b) {
  if (!Ordered(a, b)) return BadBreakpoints("ramp-up");
  return MembershipFunction(Shape::kRampUp, {a, b, 0, 0});
}

Result<MembershipFunction> MembershipFunction::RampDown(double a, double b) {
  if (!Ordered(a, b)) return BadBreakpoints("ramp-down");
  return MembershipFunction(Shape::kRampDown, {a, b, 0, 0});
}

MembershipFunction MembershipFunction::Constant(double value) {
  value = std::clamp(value, 0.0, 1.0);
  return MembershipFunction(Shape::kConstant, {value, 0, 0, 0});
}

MembershipFunction MembershipFunction::Singleton(double a) {
  return MembershipFunction(Shape::kSingleton, {a, 0, 0, 0});
}

double MembershipFunction::Eval(double x) const {
  const auto& p = params_;
  switch (shape_) {
    case Shape::kTrapezoid: {
      if (x <= p[0] || x >= p[3]) {
        // Degenerate vertical edges: a==b means the edge is a step.
        if (x == p[0] && p[0] == p[1]) return 1.0;
        if (x == p[3] && p[2] == p[3]) return 1.0;
        return 0.0;
      }
      if (x < p[1]) return RisingEdge(x, p[0], p[1]);
      if (x <= p[2]) return 1.0;
      return 1.0 - RisingEdge(x, p[2], p[3]);
    }
    case Shape::kTriangle: {
      if (x <= p[0] || x >= p[2]) {
        if (x == p[0] && p[0] == p[1]) return 1.0;
        if (x == p[2] && p[1] == p[2]) return 1.0;
        return 0.0;
      }
      if (x <= p[1]) return RisingEdge(x, p[0], p[1]);
      return 1.0 - RisingEdge(x, p[1], p[2]);
    }
    case Shape::kRampUp:
      return RisingEdge(x, p[0], p[1]);
    case Shape::kRampDown:
      return 1.0 - RisingEdge(x, p[0], p[1]);
    case Shape::kConstant:
      return p[0];
    case Shape::kSingleton:
      return x == p[0] ? 1.0 : 0.0;
  }
  return 0.0;
}

double MembershipFunction::MaxValue() const {
  return shape_ == Shape::kConstant ? params_[0] : 1.0;
}

double MembershipFunction::LeftmostAtLevel(double level, double lo) const {
  const auto& p = params_;
  switch (shape_) {
    case Shape::kTrapezoid:
    case Shape::kTriangle:
    case Shape::kRampUp:
      // Rising edge from (p[0],0) to (p[1],1): mu(x) == level at
      // p[0] + level * (p[1]-p[0]).
      if (p[0] == p[1]) return p[0];
      return p[0] + level * (p[1] - p[0]);
    case Shape::kRampDown:
      // The plateau extends left indefinitely, so within the domain
      // the leftmost point at any reachable level is the domain edge.
      return lo;
    case Shape::kConstant:
      return lo;
    case Shape::kSingleton:
      return p[0];
  }
  return lo;
}

void MembershipFunction::AppendLevelBreakpoints(
    double clip, double lo, double hi, std::vector<double>* out) const {
  const auto& p = params_;
  auto push = [&](double x) {
    if (x >= lo && x <= hi) out->push_back(x);
  };
  clip = std::clamp(clip, 0.0, 1.0);
  switch (shape_) {
    case Shape::kTrapezoid:
      push(p[0]);
      push(p[1]);
      push(p[2]);
      push(p[3]);
      if (p[0] < p[1]) push(p[0] + clip * (p[1] - p[0]));
      if (p[2] < p[3]) push(p[3] - clip * (p[3] - p[2]));
      return;
    case Shape::kTriangle:
      push(p[0]);
      push(p[1]);
      push(p[2]);
      if (p[0] < p[1]) push(p[0] + clip * (p[1] - p[0]));
      if (p[1] < p[2]) push(p[2] - clip * (p[2] - p[1]));
      return;
    case Shape::kRampUp:
      push(p[0]);
      push(p[1]);
      if (p[0] < p[1]) push(p[0] + clip * (p[1] - p[0]));
      return;
    case Shape::kRampDown:
      push(p[0]);
      push(p[1]);
      if (p[0] < p[1]) push(p[0] + (1.0 - clip) * (p[1] - p[0]));
      return;
    case Shape::kConstant:
      return;
    case Shape::kSingleton:
      push(p[0]);
      return;
  }
}

std::string MembershipFunction::ToString() const {
  const auto& p = params_;
  switch (shape_) {
    case Shape::kTrapezoid:
      return StrFormat("trapezoid(%g,%g,%g,%g)", p[0], p[1], p[2], p[3]);
    case Shape::kTriangle:
      return StrFormat("triangle(%g,%g,%g)", p[0], p[1], p[2]);
    case Shape::kRampUp:
      return StrFormat("ramp-up(%g,%g)", p[0], p[1]);
    case Shape::kRampDown:
      return StrFormat("ramp-down(%g,%g)", p[0], p[1]);
    case Shape::kConstant:
      return StrFormat("constant(%g)", p[0]);
    case Shape::kSingleton:
      return StrFormat("singleton(%g)", p[0]);
  }
  return "?";
}

}  // namespace autoglobe::fuzzy
