#ifndef AUTOGLOBE_INFRA_EXECUTOR_H_
#define AUTOGLOBE_INFRA_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "infra/cluster.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace autoglobe::infra {

/// Latency and protection parameters of action execution.
struct ExecutorConfig {
  /// Boot time of a new instance: it occupies memory immediately but
  /// serves users only after this delay.
  Duration start_delay = Duration::Minutes(2);
  /// Downtime of an instance while being moved between hosts.
  Duration move_downtime = Duration::Minutes(1);
  /// Protection period applied to involved services and servers after
  /// a successful action (paper §5.1 uses 30 minutes).
  Duration protection_time = Duration::Minutes(30);
  /// Multiplicative step of the priority actions.
  double priority_step = 1.25;
  /// Additional attempts after a *transient* (Unavailable) injected
  /// failure — the fault subsystem's "action times out / host briefly
  /// unreachable" model. Deterministic failures (constraint or
  /// validation errors) are never retried: they would fail again.
  int max_retries = 0;
};

/// One entry of the executor's action log (the paper's controller
/// logs actions before executing them, §4.3).
struct ActionRecord {
  SimTime at;
  Action action;
  Status status;
};

/// Executes controller actions against the cluster, modelling
/// realistic latencies through the simulation kernel, applying
/// protection mode, and logging every attempt. A failure injector
/// lets tests exercise the fallback paths of Figure 6.
class ActionExecutor {
 public:
  /// Returns non-OK to make the action fail artificially.
  using FailureInjector = std::function<Status(const Action&)>;
  /// Observes every executed (or failed) action.
  using Listener = std::function<void(const ActionRecord&)>;

  ActionExecutor(Cluster* cluster, sim::Simulator* simulator,
                 ExecutorConfig config = {});

  /// Validates the action against the service's declared capabilities
  /// and the cluster constraints, then performs it. On success the
  /// involved service and server(s) enter protection mode.
  Status Execute(const Action& action);

  /// Restarts a failed instance in place (self-healing path: "Failure
  /// situations like a program crash are remedied ... with a restart").
  /// Consults the failure injector (as a synthetic start on the same
  /// host) and refuses when the host is down, so injected transient
  /// faults cover the recovery path too.
  Status RestartInstance(InstanceId id);

  /// Places a new instance with the usual boot delay, bypassing the
  /// service's declared action capabilities. Used for the initial
  /// allocation and for failure remediation (replacing a crashed
  /// instance is not a controller-policy scale-out). Returns the new
  /// instance's id so recovery can track its boot.
  Result<InstanceId> LaunchInstance(std::string_view service,
                                    std::string_view target_server);

  void set_failure_injector(FailureInjector injector) {
    failure_injector_ = std::move(injector);
  }
  /// Structured tracing sink (nullptr clears): successful actions are
  /// recorded as kActionExecuted, rejected ones as kActionFailed, and
  /// instance starting->running transitions as kInstanceLifecycle.
  void set_trace_buffer(obs::TraceBuffer* trace) { trace_ = trace; }
  /// Decision audit sink (nullptr clears): injector rejections and
  /// retry attempts are recorded as executor events.
  void set_audit_log(obs::AuditLog* audit) { audit_ = audit; }
  /// Counters for failed actions and retry attempts (the handles are
  /// inert by default, so wiring is optional).
  void set_metrics(obs::Counter actions_failed, obs::Counter retries) {
    actions_failed_counter_ = actions_failed;
    retries_counter_ = retries;
  }
  void AddListener(Listener listener) {
    listeners_.push_back(std::move(listener));
  }

  const std::vector<ActionRecord>& log() const { return log_; }
  const ExecutorConfig& config() const { return config_; }

  // --- Checkpoint/restore ----------------------------------------------
  /// Serializes the action log (the executor's only cross-tick state;
  /// pending starting->running flips live in the simulator's event
  /// heap and are restored there).
  void SaveState(ByteWriter* w) const;
  Status RestoreState(ByteReader* r);

  /// Rebuilds the starting->running flip callback for instance `id` —
  /// the body of the event ScheduleRunning arms. Used by the snapshot
  /// restore path to re-create pending boot completions.
  sim::Simulator::Callback MakeRunningCallback(InstanceId id) const;

 private:
  Status ExecuteValidated(const Action& action);
  Result<InstanceId> StartInstanceOn(std::string_view service,
                                     std::string_view target_server);
  /// Runs the failure injector for `action`; on rejection records the
  /// executor event. `attempt` numbers the try (0 = first).
  Status Inject(const Action& action, int attempt);
  void ScheduleRunning(InstanceId id, Duration delay);
  void Protect(const Action& action);
  Status Record(const Action& action, Status status);

  Cluster* cluster_;
  sim::Simulator* simulator_;
  ExecutorConfig config_;
  FailureInjector failure_injector_;
  std::vector<Listener> listeners_;
  std::vector<ActionRecord> log_;
  obs::TraceBuffer* trace_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
  obs::Counter actions_failed_counter_;
  obs::Counter retries_counter_;
};

}  // namespace autoglobe::infra

#endif  // AUTOGLOBE_INFRA_EXECUTOR_H_
