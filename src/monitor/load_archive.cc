#include "monitor/load_archive.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace autoglobe::monitor {

LoadArchive::LoadArchive(Duration raw_retention, Duration aggregate_bucket)
    : raw_retention_(raw_retention), aggregate_bucket_(aggregate_bucket) {}

Status LoadArchive::Append(const std::string& key, SimTime at,
                           double value) {
  Series& series = series_[key];
  if (!series.raw.empty() && at < series.raw.back().at) {
    return Status::InvalidArgument(StrFormat(
        "out-of-order sample for \"%s\": %s < %s", key.c_str(),
        at.ToString().c_str(), series.raw.back().at.ToString().c_str()));
  }
  LoadSample sample{at, value};
  series.raw.push_back(sample);
  FoldIntoAggregate(&series, sample);
  // Evict raw samples beyond the retention window.
  SimTime horizon = at - raw_retention_;
  while (!series.raw.empty() && series.raw.front().at < horizon) {
    series.raw.pop_front();
  }
  return Status::OK();
}

void LoadArchive::FoldIntoAggregate(Series* series,
                                    const LoadSample& sample) {
  int64_t bucket = sample.at.seconds() / aggregate_bucket_.seconds();
  if (series->open_bucket >= 0 && bucket != series->open_bucket) {
    // Close the previous bucket.
    series->aggregated.push_back(LoadSample{
        SimTime::FromSeconds(series->open_bucket *
                             aggregate_bucket_.seconds()),
        series->open_sum / static_cast<double>(series->open_count)});
    series->open_sum = 0.0;
    series->open_count = 0;
  }
  series->open_bucket = bucket;
  series->open_sum += sample.value;
  ++series->open_count;
}

Result<double> LoadArchive::Latest(const std::string& key) const {
  auto it = series_.find(key);
  if (it == series_.end() || it->second.raw.empty()) {
    return Status::NotFound(
        StrFormat("no samples for \"%s\"", key.c_str()));
  }
  return it->second.raw.back().value;
}

Result<double> LoadArchive::Average(const std::string& key, Duration window,
                                    SimTime now) const {
  auto it = series_.find(key);
  if (it == series_.end()) {
    return Status::NotFound(
        StrFormat("no samples for \"%s\"", key.c_str()));
  }
  SimTime from = now - window;
  double sum = 0.0;
  int64_t count = 0;
  for (auto sample = it->second.raw.rbegin();
       sample != it->second.raw.rend(); ++sample) {
    if (sample->at > now) continue;
    if (sample->at <= from) break;
    sum += sample->value;
    ++count;
  }
  if (count == 0) {
    return Status::NotFound(StrFormat(
        "no samples for \"%s\" in the last %s", key.c_str(),
        window.ToString().c_str()));
  }
  return sum / static_cast<double>(count);
}

std::vector<LoadSample> LoadArchive::RawBetween(const std::string& key,
                                                SimTime from,
                                                SimTime to) const {
  std::vector<LoadSample> out;
  auto it = series_.find(key);
  if (it == series_.end()) return out;
  for (const LoadSample& sample : it->second.raw) {
    if (sample.at > from && sample.at <= to) out.push_back(sample);
  }
  return out;
}

std::vector<LoadSample> LoadArchive::Aggregated(const std::string& key) const {
  auto it = series_.find(key);
  if (it == series_.end()) return {};
  std::vector<LoadSample> out = it->second.aggregated;
  if (it->second.open_count > 0) {
    out.push_back(LoadSample{
        SimTime::FromSeconds(it->second.open_bucket *
                             aggregate_bucket_.seconds()),
        it->second.open_sum / static_cast<double>(it->second.open_count)});
  }
  return out;
}

std::vector<std::string> LoadArchive::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(series_.size());
  for (const auto& [key, series] : series_) keys.push_back(key);
  return keys;
}

Status LoadArchive::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError(StrFormat("cannot write \"%s\"", path.c_str()));
  }
  out << "# autoglobe-load-archive v1\n";
  out << "retention " << raw_retention_.seconds() << " bucket "
      << aggregate_bucket_.seconds() << "\n";
  for (const auto& [key, series] : series_) {
    for (const LoadSample& sample : Aggregated(key)) {
      out << key << " " << sample.at.seconds() << " " << sample.value
          << "\n";
    }
  }
  return Status::OK();
}

Result<LoadArchive> LoadArchive::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot read \"%s\"", path.c_str()));
  }
  std::string header;
  std::getline(in, header);
  if (header != "# autoglobe-load-archive v1") {
    return Status::ParseError(StrFormat(
        "\"%s\" is not a load archive (bad header)", path.c_str()));
  }
  std::string keyword;
  int64_t retention_s = 0;
  int64_t bucket_s = 0;
  std::string bucket_kw;
  if (!(in >> keyword >> retention_s >> bucket_kw >> bucket_s) ||
      keyword != "retention" || bucket_kw != "bucket" || retention_s <= 0 ||
      bucket_s <= 0) {
    return Status::ParseError("bad load archive parameter line");
  }
  LoadArchive archive(Duration::Seconds(retention_s),
                      Duration::Seconds(bucket_s));
  std::string key;
  int64_t at = 0;
  double value = 0.0;
  while (in >> key >> at >> value) {
    AG_RETURN_IF_ERROR(
        archive.Append(key, SimTime::FromSeconds(at), value));
  }
  return archive;
}

}  // namespace autoglobe::monitor
