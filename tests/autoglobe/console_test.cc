#include "autoglobe/console.h"

#include "autoglobe/capacity.h"

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

class ConsoleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
    RunnerConfig config =
        MakeScenarioConfig(Scenario::kFullMobility, 1.25);
    config.duration = Duration::Hours(12);
    auto runner = SimulationRunner::Create(landscape, config);
    ASSERT_TRUE(runner.ok()) << runner.status();
    runner_ = std::move(*runner);
    ASSERT_TRUE(runner_->Run().ok());
    console_ = std::make_unique<Console>(runner_.get());
  }

  std::unique_ptr<SimulationRunner> runner_;
  std::unique_ptr<Console> console_;
};

TEST_F(ConsoleTest, ServerViewListsAllServersGroupedByCategory) {
  std::string view = console_->RenderServerView();
  for (int i = 1; i <= 16; ++i) {
    EXPECT_NE(view.find("Blade" + std::to_string(i)), std::string::npos);
  }
  EXPECT_NE(view.find("DBServer3"), std::string::npos);
  // Grouping: BX300 block appears before the BL40p block.
  EXPECT_LT(view.find("FSC-BX300"), view.find("HP-ProliantBL40p"));
  EXPECT_NE(view.find("CPU%"), std::string::npos);
}

TEST_F(ConsoleTest, ServiceViewShowsInstancesUsersAndHosts) {
  std::string view = console_->RenderServiceView();
  for (const char* service :
       {"FI", "LES", "PP", "HR", "CRM", "BW", "CI-ERP", "DB-ERP"}) {
    EXPECT_NE(view.find(service), std::string::npos) << service;
  }
  EXPECT_NE(view.find("applicationServer"), std::string::npos);
  EXPECT_NE(view.find("database"), std::string::npos);
}

TEST_F(ConsoleTest, MessageViewShowsRecentMessagesOnly) {
  ASSERT_GT(runner_->messages().size(), 5u);
  std::string view = console_->RenderMessageView(/*limit=*/3);
  // Exactly the 3 most recent messages plus the header line.
  int lines = 0;
  for (char c : view) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(view.find(runner_->messages().back()), std::string::npos);
}

TEST_F(ConsoleTest, NoSlaViewWithoutSlas) {
  EXPECT_TRUE(console_->RenderSlaView().empty());
  EXPECT_EQ(console_->Render().find("SLA View"), std::string::npos);
}

TEST_F(ConsoleTest, FullRenderContainsAllThreeViews) {
  std::string view = console_->Render();
  EXPECT_NE(view.find("=== Server View"), std::string::npos);
  EXPECT_NE(view.find("=== Service View"), std::string::npos);
  EXPECT_NE(view.find("=== Message View"), std::string::npos);
}

TEST(ConsoleSlaTest, SlaViewAppearsWhenConfigured) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
  config.duration = Duration::Hours(2);
  SlaSpec sla;
  sla.service = "FI";
  sla.min_satisfaction = 0.95;
  config.slas.push_back(sla);
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok());
  ASSERT_TRUE((*runner)->Run().ok());
  Console console(runner->get());
  std::string view = console.RenderSlaView();
  EXPECT_NE(view.find("=== SLA View"), std::string::npos);
  EXPECT_NE(view.find("FI"), std::string::npos);
  EXPECT_NE(console.Render().find("SLA View"), std::string::npos);
}

TEST(ConsoleEmptyTest, HandlesQuietRunner) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  RunnerConfig config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.duration = Duration::Hours(1);
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok());
  Console console(runner->get());
  EXPECT_NE(console.RenderMessageView().find("(no messages)"),
            std::string::npos);
}

}  // namespace
}  // namespace autoglobe
