// Bit-for-bit parity test for the dense-id demand-engine data plane:
// replays a short paper-landscape run (both user-distribution modes,
// with an instance started, promoted, and removed mid-run) and checks
// every per-tick ServerCpuLoad / ServiceLoad / ServiceSatisfaction
// value against traces captured from the string-keyed reference
// implementation. Any change to iteration order, accumulation order,
// or RNG draw order in the engine shows up here as a flipped bit.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autoglobe/landscape.h"
#include "common/rng.h"
#include "infra/cluster.h"
#include "workload/demand.h"

namespace autoglobe {
namespace {

#include "demand_golden_data.inc"

constexpr int kTicks = 48;
constexpr size_t kServers = 19;
constexpr size_t kServices = 12;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

void RunAgainstGolden(workload::UserDistribution mode,
                      const uint64_t (&golden)[kTicks][43]) {
  infra::Cluster cluster;
  workload::DemandEngine engine(&cluster, Rng(1234));
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  ASSERT_TRUE(landscape.Build(&cluster, &engine).ok());
  engine.set_user_scale(1.1);
  engine.set_distribution(mode);

  std::vector<std::string> servers;
  for (const infra::ServerSpec* s : cluster.Servers())
    servers.push_back(s->name);
  std::vector<std::string> services;
  for (const infra::ServiceSpec* s : cluster.Services())
    services.push_back(s->name);
  ASSERT_EQ(servers.size(), kServers);
  ASSERT_EQ(services.size(), kServices);

  infra::InstanceId extra = 0;
  for (int minute = 1; minute <= kTicks; ++minute) {
    // Mid-run topology changes exercise the data-plane resync: a CRM
    // instance starts (kStarting) at minute 12, is promoted to
    // kRunning at minute 20, and removed at minute 36.
    if (minute == 12) {
      auto id = cluster.PlaceInstance(
          "CRM", "Blade9", SimTime::Start() + Duration::Minutes(12),
          infra::InstanceState::kStarting);
      ASSERT_TRUE(id.ok());
      extra = *id;
    } else if (minute == 20) {
      ASSERT_TRUE(
          cluster.SetInstanceState(extra, infra::InstanceState::kRunning)
              .ok());
    } else if (minute == 36) {
      ASSERT_TRUE(
          cluster.RemoveInstance(extra, /*enforce_min=*/false).ok());
    }
    engine.Tick(SimTime::Start() + Duration::Minutes(minute));

    const uint64_t* row = golden[minute - 1];
    for (size_t s = 0; s < servers.size(); ++s) {
      EXPECT_EQ(Bits(engine.ServerCpuLoad(servers[s])), row[s])
          << "minute " << minute << " server " << servers[s];
    }
    const uint64_t* svc_row = row + kServers;
    for (size_t s = 0; s < services.size(); ++s) {
      EXPECT_EQ(Bits(engine.ServiceLoad(services[s])), svc_row[2 * s])
          << "minute " << minute << " service load " << services[s];
      EXPECT_EQ(Bits(engine.ServiceSatisfaction(services[s])),
                svc_row[2 * s + 1])
          << "minute " << minute << " satisfaction " << services[s];
    }
  }
}

TEST(DemandGoldenTest, StickySessionsTraceIsBitIdentical) {
  RunAgainstGolden(workload::UserDistribution::kStickySessions,
                   kGoldenSticky);
}

TEST(DemandGoldenTest, DynamicRedistributionTraceIsBitIdentical) {
  RunAgainstGolden(workload::UserDistribution::kDynamicRedistribution,
                   kGoldenDynamic);
}

}  // namespace
}  // namespace autoglobe
