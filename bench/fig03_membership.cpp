// Reproduces Figure 3: the linguistic variable cpuLoad with its three
// trapezoid membership functions (low / medium / high), sampled over
// the crisp range [0, 1]. The paper's reference readings —
// mu_medium(0.6) = 0.5 and mu_high(0.6) = 0.2 — are checked and
// printed explicitly.

#include <cstdio>

#include "fuzzy/linguistic.h"

using autoglobe::fuzzy::LinguisticVariable;
using autoglobe::fuzzy::TermGrade;

int main() {
  std::printf("# Figure 3: linguistic variable cpuLoad\n");
  LinguisticVariable cpu_load = LinguisticVariable::StandardLoad("cpuLoad");

  std::printf("cpuLoad");
  for (const auto& term : cpu_load.terms()) {
    std::printf(",mu_%s", term.name.c_str());
  }
  std::printf("\n");
  for (int i = 0; i <= 50; ++i) {
    double x = i / 50.0;
    std::printf("%.2f", x);
    for (const TermGrade& grade : cpu_load.Fuzzify(x)) {
      std::printf(",%.3f", grade.grade);
    }
    std::printf("\n");
  }

  std::printf("\n# Paper reference points (Figure 3 / Section 3):\n");
  std::printf("# mu_medium(0.6) = %.2f (paper: 0.50)\n",
              *cpu_load.Grade("medium", 0.6));
  std::printf("# mu_high(0.6)   = %.2f (paper: 0.20)\n",
              *cpu_load.Grade("high", 0.6));
  std::printf("# mu_low(0.9)    = %.2f (paper: 0.00)\n",
              *cpu_load.Grade("low", 0.9));
  std::printf("# mu_medium(0.9) = %.2f (paper: 0.00)\n",
              *cpu_load.Grade("medium", 0.9));
  std::printf("# mu_high(0.9)   = %.2f (paper: 0.80)\n",
              *cpu_load.Grade("high", 0.9));
  return 0;
}
