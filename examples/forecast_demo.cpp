// The load-forecasting extension (paper §7): train the pattern-based
// forecaster on the archive a simulation run produces, check its
// accuracy against the actual next-hour loads, and persist/reload the
// aggregated archive — the "persistent aggregated view of historic
// load data" of §2.

#include <cstdio>

#include "autoglobe/capacity.h"
#include "forecast/forecaster.h"

using namespace autoglobe;

int main() {
  // --- 1. Produce three days of history on the paper landscape. ------
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  RunnerConfig config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.duration = Duration::Hours(72);
  auto runner = SimulationRunner::Create(landscape, config);
  if (!runner.ok() || !(*runner)->Run().ok()) return 1;

  // --- 2. Forecast day 3 one hour ahead for a busy LES host. ---------
  forecast::ForecastConfig fc;
  fc.horizon = Duration::Hours(1);
  forecast::LoadForecaster forecaster(&(*runner)->archive(), fc);
  const std::string key = "server/Blade1";

  std::printf("one-hour-ahead forecasts for %s on day 2:\n", key.c_str());
  std::printf("%-8s %10s %10s %10s\n", "time", "current", "forecast",
              "actual+1h");
  double err_forecast = 0;
  double err_naive = 0;
  int n = 0;
  for (int hour = 6; hour <= 18; hour += 2) {
    SimTime now = SimTime::Start() + Duration::Days(2) + Duration::Hours(hour);
    auto current = (*runner)->archive().Average(key, Duration::Minutes(10),
                                                now);
    auto predicted = forecaster.Forecast(key, now);
    auto actual = (*runner)->archive().Average(
        key, Duration::Minutes(10), now + fc.horizon);
    if (!current.ok() || !predicted.ok() || !actual.ok()) continue;
    std::printf("%-8s %9.1f%% %9.1f%% %9.1f%%\n",
                now.ClockString().c_str(), *current * 100,
                *predicted * 100, *actual * 100);
    err_forecast += std::abs(*predicted - *actual);
    err_naive += std::abs(*current - *actual);
    ++n;
  }
  if (n > 0) {
    std::printf(
        "\nmean absolute error: forecast %.1f%%, last-value baseline "
        "%.1f%%  (%s)\n",
        err_forecast / n * 100, err_naive / n * 100,
        err_forecast < err_naive ? "forecast wins" : "baseline wins");
  }

  // --- 3. Persist the aggregated archive and reload it. ---------------
  const std::string path = "/tmp/autoglobe_archive.txt";
  if (Status s = (*runner)->archive().Save(path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto reloaded = monitor::LoadArchive::Load(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  std::printf("\narchive round-trip via %s: %zu subjects preserved\n",
              path.c_str(), reloaded->Keys().size());

  // --- 4. The payoff: proactive control at high load. ------------------
  std::printf("\nreactive vs proactive FM run at +40%% users (48 h):\n");
  for (bool use_forecast : {false, true}) {
    Landscape fm_landscape = MakePaperLandscape(Scenario::kFullMobility);
    RunnerConfig fm = MakeScenarioConfig(Scenario::kFullMobility, 1.40);
    fm.duration = Duration::Hours(48);
    fm.use_forecast = use_forecast;
    auto fm_runner = SimulationRunner::Create(fm_landscape, fm);
    if (!fm_runner.ok() || !(*fm_runner)->Run().ok()) return 1;
    std::printf("  %-9s overload %5.0f server-min, %4lld actions\n",
                use_forecast ? "proactive" : "reactive",
                (*fm_runner)->metrics().overload_server_minutes,
                static_cast<long long>(
                    (*fm_runner)->metrics().actions_executed));
  }
  return 0;
}
