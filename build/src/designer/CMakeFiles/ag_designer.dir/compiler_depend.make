# Empty compiler generated dependencies file for ag_designer.
# This may be replaced when dependencies are built.
