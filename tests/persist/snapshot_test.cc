// Corruption battery for the snapshot container and the checkpoint
// store: truncated, bit-flipped, wrong-version, and wrong-landscape
// images are all rejected with a descriptive Status, and the store
// falls back to the previous generation when the newest is damaged.

#include <gtest/gtest.h>

#include <cstdio>

#include "autoglobe/capacity.h"
#include "autoglobe/landscape.h"
#include "common/fileio.h"
#include "persist/checkpoint_store.h"
#include "persist/runner_checkpoint.h"
#include "persist/snapshot.h"

namespace autoglobe {
namespace {

using persist::CheckpointStore;
using persist::DecodeSnapshot;
using persist::EncodeSnapshot;
using persist::SnapshotData;

// Fresh per-test scratch directory: wiped on entry so reruns in the
// same temp root never see a previous run's generations.
std::string TempDir(const char* name) {
  std::string dir = ::testing::TempDir() + "ag_persist_" + name;
  auto entries = ListDirectory(dir);
  if (entries.ok()) {
    for (const std::string& entry : *entries) {
      EXPECT_TRUE(RemoveFileIfExists(dir + "/" + entry).ok());
    }
  }
  return dir;
}

using Sections = std::vector<std::pair<std::string, std::string>>;

Sections SampleSections() {
  return {{"alpha", "first section payload"},
          {"beta", std::string("\x00\x01\x02 binary \xff", 12)},
          {"gamma", ""}};
}

TEST(SnapshotTest, RoundTrips) {
  Sections sections = SampleSections();
  std::string image = EncodeSnapshot(0xfeedf00d, sections);
  auto decoded = DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->fingerprint, 0xfeedf00dull);
  EXPECT_EQ(decoded->sections, sections);
}

TEST(SnapshotTest, RejectsTruncation) {
  std::string image = EncodeSnapshot(1, SampleSections());
  // Every proper prefix must be rejected — a torn write never parses.
  for (size_t cut : {image.size() - 1, image.size() / 2, size_t{5}}) {
    auto decoded = DecodeSnapshot(std::string_view(image).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

TEST(SnapshotTest, RejectsEveryBitFlip) {
  Sections sections = {{"alpha", "payload-a"}, {"beta", "payload-b"}};
  std::string image = EncodeSnapshot(2, sections);
  // Flip one bit per byte position; a single-bit error anywhere in
  // the file must surface as a checksum or parse failure.
  for (size_t i = 0; i < image.size(); ++i) {
    std::string corrupt = image;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x10);
    auto decoded = DecodeSnapshot(corrupt);
    EXPECT_FALSE(decoded.ok()) << "bit flip at byte " << i << " parsed";
  }
}

TEST(SnapshotTest, RejectsWrongVersion) {
  std::string image = EncodeSnapshot(3, SampleSections());
  // The version u32 sits right after the 8-byte magic. Bump it and
  // re-seal the trailer so only the version check can fire.
  std::string corrupt = image;
  corrupt[8] = static_cast<char>(corrupt[8] + 1);
  std::string body = corrupt.substr(0, corrupt.size() - 8);
  uint64_t checksum = Fnv1a64(body);
  for (int i = 0; i < 8; ++i) {
    corrupt[body.size() + static_cast<size_t>(i)] =
        static_cast<char>((checksum >> (8 * i)) & 0xff);
  }
  auto decoded = DecodeSnapshot(corrupt);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("version"), std::string::npos)
      << decoded.status();
}

TEST(SnapshotTest, FileRoundTripAndFingerprintCheck) {
  std::string dir = TempDir("file");
  ASSERT_TRUE(MakeDirectories(dir).ok());
  std::string path = dir + "/one.agsnap";
  ASSERT_TRUE(
      persist::WriteSnapshotFile(path, 0xabc, SampleSections()).ok());
  auto ok = persist::ReadSnapshotFile(path, 0xabc);
  ASSERT_TRUE(ok.ok()) << ok.status();
  auto mismatched = persist::ReadSnapshotFile(path, 0xdef);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_NE(mismatched.status().ToString().find("fingerprint"),
            std::string::npos)
      << mismatched.status();
}

TEST(SnapshotTest, WrongLandscapeRefusesToRestore) {
  // A snapshot of the full-mobility run must not restore into a
  // static-scenario runner: the fingerprints differ (strategy aside,
  // the landscapes share names — the config axes still diverge).
  Landscape full = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig full_config =
      MakeScenarioConfig(Scenario::kFullMobility, 1.0, 42);
  full_config.duration = Duration::Hours(1);
  auto runner = SimulationRunner::Create(full, full_config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->RunUntil(SimTime::Start() + Duration::Minutes(30))
                  .ok());
  Sections sections;
  ASSERT_TRUE((*runner)->SaveStateSections(&sections).ok());
  SnapshotData snapshot;
  snapshot.fingerprint = (*runner)->StateFingerprint();
  snapshot.sections = sections;

  Landscape other = MakePaperLandscape(Scenario::kStatic);
  RunnerConfig other_config =
      MakeScenarioConfig(Scenario::kStatic, 1.0, 43);
  other_config.duration = Duration::Hours(1);
  auto restored = persist::RestoreRunner(other, other_config, snapshot);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("fingerprint"),
            std::string::npos)
      << restored.status();
}

TEST(CheckpointStoreTest, RotationKeepsNewestGenerations) {
  std::string dir = TempDir("rotate");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok()) << store.status();
  for (uint64_t i = 1; i <= 5; ++i) {
    Sections sections = {{"n", std::string(1, static_cast<char>('0' + i))}};
    ASSERT_TRUE(store->Write(7, sections).ok());
  }
  auto generations = store->ListGenerations();
  ASSERT_TRUE(generations.ok());
  ASSERT_EQ(generations->size(), 3u);
  EXPECT_EQ((*generations)[0], "checkpoint-000003.agsnap");
  EXPECT_EQ((*generations)[2], "checkpoint-000005.agsnap");
  auto loaded = store->LoadLatest(7);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->data.sections[0].second, "5");
  EXPECT_TRUE(loaded->skipped.empty());
}

TEST(CheckpointStoreTest, CorruptNewestFallsBackToPrevious) {
  std::string dir = TempDir("fallback");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->Write(7, {{"n", "good"}}).ok());
  auto second = store->Write(7, {{"n", "newest"}});
  ASSERT_TRUE(second.ok());
  // Damage the newest generation: truncate it mid-file.
  auto bytes = ReadFileToString(*second);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      AtomicWriteFile(*second, bytes->substr(0, bytes->size() / 2)).ok());

  auto loaded = store->LoadLatest(7);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->data.sections[0].second, "good");
  ASSERT_EQ(loaded->skipped.size(), 1u);
  EXPECT_NE(loaded->skipped[0].find("checkpoint-000002"),
            std::string::npos);
}

TEST(CheckpointStoreTest, AllCorruptReportsEveryCandidate) {
  std::string dir = TempDir("hopeless");
  auto store = CheckpointStore::Open(dir, 3);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->Write(7, {{"n", "one"}}).ok());
  ASSERT_TRUE(store->Write(7, {{"n", "two"}}).ok());
  auto generations = store->ListGenerations();
  ASSERT_TRUE(generations.ok());
  for (const std::string& name : *generations) {
    ASSERT_TRUE(AtomicWriteFile(dir + "/" + name, "garbage").ok());
  }
  auto loaded = store->LoadLatest(7);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checkpoint-000001"),
            std::string::npos)
      << loaded.status();
  EXPECT_NE(loaded.status().ToString().find("checkpoint-000002"),
            std::string::npos)
      << loaded.status();
}

}  // namespace
}  // namespace autoglobe
