file(REMOVE_RECURSE
  "CMakeFiles/autoglobe_test.dir/autoglobe/capacity_test.cc.o"
  "CMakeFiles/autoglobe_test.dir/autoglobe/capacity_test.cc.o.d"
  "CMakeFiles/autoglobe_test.dir/autoglobe/console_test.cc.o"
  "CMakeFiles/autoglobe_test.dir/autoglobe/console_test.cc.o.d"
  "CMakeFiles/autoglobe_test.dir/autoglobe/landscape_test.cc.o"
  "CMakeFiles/autoglobe_test.dir/autoglobe/landscape_test.cc.o.d"
  "CMakeFiles/autoglobe_test.dir/autoglobe/runner_test.cc.o"
  "CMakeFiles/autoglobe_test.dir/autoglobe/runner_test.cc.o.d"
  "CMakeFiles/autoglobe_test.dir/autoglobe/sla_test.cc.o"
  "CMakeFiles/autoglobe_test.dir/autoglobe/sla_test.cc.o.d"
  "autoglobe_test"
  "autoglobe_test.pdb"
  "autoglobe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoglobe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
