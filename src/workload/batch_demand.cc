#include "workload/batch_demand.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe::workload {

using infra::InstanceId;
using infra::InstanceRef;
using infra::InstanceState;
using infra::LandscapeIndex;

BatchDemandEngine::BatchDemandEngine(infra::Cluster* cluster, size_t lanes)
    : cluster_(cluster), lanes_(lanes), kernels_(&GetLaneKernels()) {
  AG_CHECK(cluster_ != nullptr);
  AG_CHECK(lanes_ >= 1 && lanes_ <= 1024);
  rng_.reserve(lanes_);
  philox_.Resize(lanes_);
  for (size_t lane = 0; lane < lanes_; ++lane) {
    rng_.emplace_back(static_cast<uint64_t>(lane));
    philox_.SeedLane(lane, static_cast<uint64_t>(lane));
  }
  user_scale_.assign(lanes_, 1.0);
  lost_work_wu_.assign(lanes_, 0.0);
  overload_minutes_.assign(lanes_, 0.0);
}

int32_t BatchDemandEngine::SpecSlotOf(std::string_view service) const {
  auto it = std::lower_bound(
      specs_.begin(), specs_.end(), service,
      [](const ServiceDemandSpec& spec, std::string_view name) {
        return spec.service < name;
      });
  if (it == specs_.end() || it->service != service) return -1;
  return static_cast<int32_t>(it - specs_.begin());
}

Status BatchDemandEngine::AddService(ServiceDemandSpec spec) {
  AG_RETURN_IF_ERROR(cluster_->FindService(spec.service).status());
  if (SpecSlotOf(spec.service) >= 0) {
    return Status::AlreadyExists(StrFormat(
        "demand spec for \"%s\" already registered", spec.service.c_str()));
  }
  if (spec.base_users < 0 || spec.request_cost < 0 ||
      spec.base_load_wu < 0 || spec.batch_load_wu < 0 ||
      spec.noise_stddev < 0) {
    return Status::InvalidArgument(StrFormat(
        "demand spec for \"%s\" has negative parameters",
        spec.service.c_str()));
  }
  auto it = std::lower_bound(
      specs_.begin(), specs_.end(), spec.service,
      [](const ServiceDemandSpec& existing, const std::string& name) {
        return existing.service < name;
      });
  size_t slot = static_cast<size_t>(it - specs_.begin());
  specs_.insert(it, std::move(spec));
  queue_wu_.insert(queue_wu_.begin() +
                       static_cast<ptrdiff_t>(slot * lanes_),
                   lanes_, 0.0);
  plane_dirty_ = true;
  return Status::OK();
}

Status BatchDemandEngine::AddSubsystem(SubsystemSpec spec) {
  for (const std::string& app : spec.app_services) {
    if (SpecSlotOf(app) < 0) {
      return Status::NotFound(StrFormat(
          "subsystem \"%s\": unknown app service \"%s\"",
          spec.name.c_str(), app.c_str()));
    }
  }
  if (!spec.central_instance.empty() &&
      SpecSlotOf(spec.central_instance) < 0) {
    return Status::NotFound(StrFormat(
        "subsystem \"%s\": unknown central instance \"%s\"",
        spec.name.c_str(), spec.central_instance.c_str()));
  }
  if (!spec.database.empty() && SpecSlotOf(spec.database) < 0) {
    return Status::NotFound(StrFormat(
        "subsystem \"%s\": unknown database \"%s\"", spec.name.c_str(),
        spec.database.c_str()));
  }
  subsystems_.push_back(std::move(spec));
  plane_dirty_ = true;
  return Status::OK();
}

void BatchDemandEngine::SetLaneSeed(size_t lane, uint64_t seed) {
  AG_CHECK(lane < lanes_);
  rng_[lane] = Rng(seed);
  philox_.SeedLane(lane, seed);
}

void BatchDemandEngine::SetLaneUserScale(size_t lane, double scale) {
  AG_CHECK(lane < lanes_);
  user_scale_[lane] = scale;
}

Status BatchDemandEngine::SetLaneInstanceState(size_t lane, InstanceId id,
                                               InstanceState state) {
  if (lane >= lanes_) return Status::InvalidArgument("bad lane");
  EnsureDataPlane();
  size_t i = static_cast<size_t>(id);
  if (i >= tracked_.size() || !tracked_[i]) {
    return Status::NotFound(StrFormat(
        "no instance %llu", static_cast<unsigned long long>(id)));
  }
  uint8_t& slot = override_[i * lanes_ + lane];
  if (slot == kNoOverride) ++override_count_;
  slot = static_cast<uint8_t>(state);
  return Status::OK();
}

Status BatchDemandEngine::ClearLaneInstanceState(size_t lane,
                                                 InstanceId id) {
  if (lane >= lanes_) return Status::InvalidArgument("bad lane");
  size_t i = static_cast<size_t>(id);
  if (i >= tracked_.size()) {
    return Status::NotFound(StrFormat(
        "no instance %llu", static_cast<unsigned long long>(id)));
  }
  uint8_t& slot = override_[i * lanes_ + lane];
  if (slot != kNoOverride) --override_count_;
  slot = kNoOverride;
  return Status::OK();
}

void BatchDemandEngine::ResetLanes() {
  std::fill(users_.begin(), users_.end(), 0.0);
  std::fill(backlog_wu_.begin(), backlog_wu_.end(), 0.0);
  std::fill(demand_wu_.begin(), demand_wu_.end(), 0.0);
  std::fill(served_wu_.begin(), served_wu_.end(), 0.0);
  std::fill(inst_load_.begin(), inst_load_.end(), 0.0);
  std::fill(server_cpu_.begin(), server_cpu_.end(), 0.0);
  std::fill(server_mem_.begin(), server_mem_.end(), 0.0);
  std::fill(queue_wu_.begin(), queue_wu_.end(), 0.0);
  std::fill(override_.begin(), override_.end(), kNoOverride);
  override_count_ = 0;
  std::fill(lost_work_wu_.begin(), lost_work_wu_.end(), 0.0);
  std::fill(overload_minutes_.begin(), overload_minutes_.end(), 0.0);
}

const LandscapeIndex& BatchDemandEngine::EnsureDataPlane() {
  const LandscapeIndex& index = cluster_->Index();
  if (!plane_dirty_ && plane_epoch_ == cluster_->topology_epoch()) {
    return index;
  }

  spec_service_id_.assign(specs_.size(), infra::kNoDenseId);
  spec_of_service_.assign(index.num_services(), -1);
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    infra::DenseId sid = index.ServiceIdOf(specs_[slot].service);
    spec_service_id_[slot] = sid;
    if (sid >= 0) {
      spec_of_service_[static_cast<size_t>(sid)] =
          static_cast<int32_t>(slot);
    }
  }

  edges_.clear();
  edges_.reserve(subsystems_.size());
  for (const SubsystemSpec& subsystem : subsystems_) {
    SubsystemEdges edge;
    edge.app_specs.reserve(subsystem.app_services.size());
    for (const std::string& app : subsystem.app_services) {
      edge.app_specs.push_back(SpecSlotOf(app));
    }
    if (!subsystem.central_instance.empty()) {
      edge.ci_spec = SpecSlotOf(subsystem.central_instance);
    }
    if (!subsystem.database.empty()) {
      edge.db_spec = SpecSlotOf(subsystem.database);
    }
    edge.ci_factor = subsystem.ci_factor;
    edge.db_factor = subsystem.db_factor;
    edges_.push_back(std::move(edge));
  }

  // Per-instance SoA state, lane-strided by raw InstanceId. Growth
  // keeps existing values; ids are never reused.
  size_t bound = static_cast<size_t>(index.instance_id_bound());
  if (tracked_.size() < bound) {
    users_.resize(bound * lanes_, 0.0);
    backlog_wu_.resize(bound * lanes_, 0.0);
    demand_wu_.resize(bound * lanes_, 0.0);
    served_wu_.resize(bound * lanes_, 0.0);
    inst_load_.resize(bound * lanes_, 0.0);
    state_.resize(bound * lanes_, 0);
    override_.resize(bound * lanes_, kNoOverride);
    tracked_.resize(bound, 0);
  }
  // Untrack removed instances: zero every lane's state for the id,
  // mirroring the scalar engine's reconciliation semantics.
  std::vector<uint8_t> live(tracked_.size(), 0);
  for (const InstanceRef& ref : index.Instances()) {
    live[static_cast<size_t>(ref.id)] = 1;
  }
  for (size_t id = 0; id < tracked_.size(); ++id) {
    if (tracked_[id] && !live[id]) {
      size_t row = id * lanes_;
      for (size_t lane = 0; lane < lanes_; ++lane) {
        users_[row + lane] = 0.0;
        backlog_wu_[row + lane] = 0.0;
        demand_wu_[row + lane] = 0.0;
        served_wu_[row + lane] = 0.0;
        inst_load_[row + lane] = 0.0;
        if (override_[row + lane] != kNoOverride) --override_count_;
        override_[row + lane] = kNoOverride;
      }
    }
    tracked_[id] = live[id];
  }

  // Per-server lane-strided loads; carry last-tick values over to the
  // (possibly shifted) dense layout by name.
  {
    std::vector<std::string> names;
    names.reserve(index.num_servers());
    for (size_t s = 0; s < index.num_servers(); ++s) {
      names.push_back(index.ServerName(static_cast<infra::DenseId>(s)));
    }
    std::vector<double> cpu(names.size() * lanes_, 0.0);
    std::vector<double> mem(names.size() * lanes_, 0.0);
    for (size_t s = 0; s < names.size(); ++s) {
      auto it = std::lower_bound(server_names_.begin(),
                                 server_names_.end(), names[s]);
      if (it != server_names_.end() && *it == names[s]) {
        size_t old_slot =
            static_cast<size_t>(it - server_names_.begin());
        for (size_t lane = 0; lane < lanes_; ++lane) {
          cpu[s * lanes_ + lane] = server_cpu_[old_slot * lanes_ + lane];
          mem[s * lanes_ + lane] = server_mem_[old_slot * lanes_ + lane];
        }
      }
    }
    server_names_ = std::move(names);
    server_cpu_ = std::move(cpu);
    server_mem_ = std::move(mem);
    num_servers_ = server_names_.size();
  }

  scratch_.app_work.assign(specs_.size() * lanes_, 0.0);
  scratch_.shared_unserved.assign(specs_.size() * lanes_, 0.0);
  scratch_.serve.assign(tracked_.size() * lanes_, 0.0);
  scratch_.usable_cap.assign(lanes_, 0.0);
  scratch_.weight_total.assign(lanes_, 0.0);
  scratch_.current_total.assign(lanes_, 0.0);
  scratch_.total_demand.assign(lanes_, 0.0);
  scratch_.any_usable.assign(lanes_, 0);
  scratch_.best_score.assign(lanes_, 0.0);
  scratch_.best_id.assign(lanes_, 0);
  scratch_.moved.assign(lanes_, 0.0);
  scratch_.amount.assign(lanes_, 0.0);
  scratch_.mode.assign(lanes_, 0);
  scratch_.unsatisfied.reserve(index.max_instances_per_server());
  scratch_.still_unsatisfied.reserve(index.max_instances_per_server());

  plane_epoch_ = cluster_->topology_epoch();
  plane_dirty_ = false;
  return index;
}

void BatchDemandEngine::GatherStates(const LandscapeIndex& index) {
  if (override_count_ == 0) {
    // No lane diverges: broadcast the shared cluster state per row.
    for (const InstanceRef& ref : index.Instances()) {
      std::fill_n(state_.data() + static_cast<size_t>(ref.id) * lanes_,
                  lanes_, static_cast<uint8_t>(ref.instance->state));
    }
    return;
  }
  for (const InstanceRef& ref : index.Instances()) {
    size_t row = static_cast<size_t>(ref.id) * lanes_;
    uint8_t base = static_cast<uint8_t>(ref.instance->state);
    for (size_t lane = 0; lane < lanes_; ++lane) {
      uint8_t over = override_[row + lane];
      state_[row + lane] = over == kNoOverride ? base : over;
    }
  }
}

InstanceId BatchDemandEngine::LeastLoadedInstance(
    const LandscapeIndex& index,
    std::span<const InstanceRef> instances, size_t lane) const {
  InstanceId best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const InstanceRef& ref : instances) {
    if (state_[static_cast<size_t>(ref.id) * lanes_ + lane] !=
        static_cast<uint8_t>(InstanceState::kRunning)) {
      continue;
    }
    double host_load = ServerCpuLoad(lane, ref.server);
    double users = users_[static_cast<size_t>(ref.id) * lanes_ + lane];
    double capacity = index.ServerPerformance(ref.server);
    double score = host_load + 0.001 * users / (capacity *
                                                kUsersPerPerformanceUnit);
    if (score < best_score) {
      best_score = score;
      best = ref.id;
    }
  }
  return best;
}

void BatchDemandEngine::SyncUsersSpecLane(const LandscapeIndex& index,
                                          size_t slot, size_t lane) {
  const uint8_t kFailed = static_cast<uint8_t>(InstanceState::kFailed);
  const ServiceDemandSpec& spec = specs_[slot];
  std::span<const InstanceRef> instances =
      index.InstancesOfService(spec_service_id_[slot]);
  double target_total = spec.base_users * user_scale_[lane];

  double current_total = 0.0;
  for (const InstanceRef& ref : instances) {
    size_t i = static_cast<size_t>(ref.id) * lanes_ + lane;
    if (state_[i] == kFailed && users_[i] > 0) {
      InstanceId refuge = LeastLoadedInstance(index, instances, lane);
      if (refuge != 0 && refuge != ref.id) {
        users_[static_cast<size_t>(refuge) * lanes_ + lane] += users_[i];
        users_[i] = 0.0;
      }
    }
    current_total += users_[i];
  }
  double diff = target_total - current_total;
  if (diff > 1e-9) {
    double weight_total = 0.0;
    for (const InstanceRef& ref : instances) {
      if (state_[static_cast<size_t>(ref.id) * lanes_ + lane] ==
          kFailed) {
        continue;
      }
      weight_total += index.ServerPerformance(ref.server);
    }
    if (weight_total > 0) {
      for (const InstanceRef& ref : instances) {
        size_t i = static_cast<size_t>(ref.id) * lanes_ + lane;
        if (state_[i] == kFailed) continue;
        users_[i] +=
            diff * index.ServerPerformance(ref.server) / weight_total;
      }
    } else {
      users_[static_cast<size_t>(instances.front().id) * lanes_ +
             lane] += diff;
    }
  } else if (diff < -1e-9 && current_total > 0) {
    double keep = target_total / current_total;
    for (const InstanceRef& ref : instances) {
      users_[static_cast<size_t>(ref.id) * lanes_ + lane] *= keep;
    }
  }
}

void BatchDemandEngine::SyncUsersAll(const LandscapeIndex& index) {
  const size_t L = lanes_;
  const uint8_t kFailed = static_cast<uint8_t>(InstanceState::kFailed);
  // Sync modes per lane: nothing to do, top up, or scale down.
  enum : uint8_t { kNone = 0, kAdd = 1, kScale = 2, kSlow = 3 };
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    const ServiceDemandSpec& spec = specs_[slot];
    infra::DenseId sid = spec_service_id_[slot];
    if (sid < 0) continue;
    std::span<const InstanceRef> instances = index.InstancesOfService(sid);
    if (instances.empty()) continue;
    if (spec.base_users <= 0) continue;

    // No override anywhere => every lane sees the shared cluster state
    // => one state byte stands for a whole row.
    const bool uniform = override_count_ == 0;

    if (distribution_ == UserDistribution::kDynamicRedistribution) {
      uint8_t* usable = scratch_.any_usable.data();
      double* wt = scratch_.weight_total.data();
      if (uniform) {
        bool any = false;
        double weight_total = 0.0;
        for (const InstanceRef& ref : instances) {
          if (state_[static_cast<size_t>(ref.id) * L] != kFailed) {
            any = true;
            weight_total += index.ServerPerformance(ref.server);
          }
        }
        if (!any || weight_total <= 0) continue;
        for (const InstanceRef& ref : instances) {
          std::fill_n(users_.data() + static_cast<size_t>(ref.id) * L, L,
                      0.0);
        }
        for (const InstanceRef& ref : instances) {
          size_t row = static_cast<size_t>(ref.id) * L;
          if (state_[row] == kFailed) continue;
          double perf = index.ServerPerformance(ref.server);
          for (size_t lane = 0; lane < L; ++lane) {
            users_[row + lane] =
                spec.base_users * user_scale_[lane] * perf / weight_total;
          }
        }
        continue;
      }
      std::fill_n(usable, L, uint8_t{0});
      std::fill_n(wt, L, 0.0);
      for (const InstanceRef& ref : instances) {
        size_t row = static_cast<size_t>(ref.id) * L;
        double perf = index.ServerPerformance(ref.server);
        for (size_t lane = 0; lane < L; ++lane) {
          if (state_[row + lane] != kFailed) {
            usable[lane] = 1;
            wt[lane] += perf;
          }
        }
      }
      // Lanes without a usable instance keep their stale attachment —
      // exactly the scalar `continue`.
      for (size_t lane = 0; lane < L; ++lane) {
        if (wt[lane] <= 0) usable[lane] = 0;
      }
      for (const InstanceRef& ref : instances) {
        size_t row = static_cast<size_t>(ref.id) * L;
        for (size_t lane = 0; lane < L; ++lane) {
          if (usable[lane]) users_[row + lane] = 0.0;
        }
      }
      for (const InstanceRef& ref : instances) {
        size_t row = static_cast<size_t>(ref.id) * L;
        double perf = index.ServerPerformance(ref.server);
        for (size_t lane = 0; lane < L; ++lane) {
          if (usable[lane] && state_[row + lane] != kFailed) {
            users_[row + lane] =
                spec.base_users * user_scale_[lane] * perf / wt[lane];
          }
        }
      }
      continue;
    }

    // Sticky sessions. Detection pass (read-only): per-lane attached
    // total, and a slow flag for the order-sensitive path — a failed
    // instance still holding users, whose refuge hand-off interleaves
    // with the total.
    double* current = scratch_.current_total.data();
    uint8_t* mode = scratch_.mode.data();
    std::fill_n(current, L, 0.0);
    std::fill_n(mode, L, kNone);
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      if (uniform && state_[row] != kFailed) {
        kernels_->add_row(current, users_.data() + row, L);
        continue;
      }
      for (size_t lane = 0; lane < L; ++lane) {
        if (state_[row + lane] == kFailed && users_[row + lane] > 0) {
          mode[lane] = kSlow;
        }
        current[lane] += users_[row + lane];
      }
    }

    double* amount = scratch_.amount.data();
    double* wt = scratch_.weight_total.data();
    bool any_add = false;
    bool any_apply = false;
    for (size_t lane = 0; lane < L; ++lane) {
      if (mode[lane] == kSlow) {
        SyncUsersSpecLane(index, slot, lane);
        mode[lane] = kNone;
        continue;
      }
      double target_total = spec.base_users * user_scale_[lane];
      double diff = target_total - current[lane];
      if (diff > 1e-9) {
        mode[lane] = kAdd;
        amount[lane] = diff;
        any_add = true;
        any_apply = true;
      } else if (diff < -1e-9 && current[lane] > 0) {
        mode[lane] = kScale;
        amount[lane] = target_total / current[lane];
        any_apply = true;
      }
    }
    // Steady state: every lane already holds its target attachment.
    if (!any_apply) continue;
    if (any_add) {
      // No lane on the fast path has a failed instance with users; a
      // failed-but-empty instance still changes the weight sum, so the
      // per-lane weights stay state-masked.
      if (uniform) {
        double weight_total = 0.0;
        for (const InstanceRef& ref : instances) {
          if (state_[static_cast<size_t>(ref.id) * L] != kFailed) {
            weight_total += index.ServerPerformance(ref.server);
          }
        }
        std::fill_n(wt, L, weight_total);
      } else {
        std::fill_n(wt, L, 0.0);
        for (const InstanceRef& ref : instances) {
          size_t row = static_cast<size_t>(ref.id) * L;
          double perf = index.ServerPerformance(ref.server);
          for (size_t lane = 0; lane < L; ++lane) {
            if (state_[row + lane] != kFailed) wt[lane] += perf;
          }
        }
      }
    }
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      double perf = index.ServerPerformance(ref.server);
      const bool row_failed = uniform && state_[row] == kFailed;
      for (size_t lane = 0; lane < L; ++lane) {
        if (mode[lane] == kAdd) {
          if (wt[lane] > 0) {
            if (!row_failed && state_[row + lane] != kFailed) {
              users_[row + lane] += amount[lane] * perf / wt[lane];
            }
          } else if (ref.id == instances.front().id) {
            users_[row + lane] += amount[lane];
          }
        } else if (mode[lane] == kScale) {
          users_[row + lane] *= amount[lane];
        }
      }
    }
  }
}

void BatchDemandEngine::ApplyFluctuationAll(const LandscapeIndex& index,
                                            double dt_minutes) {
  const size_t L = lanes_;
  const uint8_t kRunning = static_cast<uint8_t>(InstanceState::kRunning);
  double fraction = std::min(1.0, fluctuation_per_minute_ * dt_minutes);
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    const ServiceDemandSpec& spec = specs_[slot];
    if (spec.base_users <= 0) continue;
    infra::DenseId sid = spec_service_id_[slot];
    if (sid < 0) continue;
    std::span<const InstanceRef> instances = index.InstancesOfService(sid);
    if (instances.size() < 2) continue;
    // Per-lane refuge: LeastLoadedInstance restructured lane-inner —
    // same instance order and strict-less comparison per lane.
    double* best_score = scratch_.best_score.data();
    uint64_t* best_id = scratch_.best_id.data();
    std::fill_n(best_score, L, std::numeric_limits<double>::infinity());
    std::fill_n(best_id, L, uint64_t{0});
    const bool uniform = override_count_ == 0;
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      double denom = index.ServerPerformance(ref.server) *
                     kUsersPerPerformanceUnit;
      const double* cpu_row =
          server_cpu_.data() + static_cast<size_t>(ref.server) * L;
      if (uniform) {
        // All lanes share the cluster state: one check for the row.
        if (state_[row] != kRunning) continue;
        kernels_->least_loaded_row(best_score, best_id, cpu_row,
                                   users_.data() + row, denom,
                                   static_cast<uint64_t>(ref.id), L);
        continue;
      }
      for (size_t lane = 0; lane < L; ++lane) {
        if (state_[row + lane] != kRunning) continue;
        double score =
            cpu_row[lane] + 0.001 * users_[row + lane] / denom;
        if (score < best_score[lane]) {
          best_score[lane] = score;
          best_id[lane] = static_cast<uint64_t>(ref.id);
        }
      }
    }
    double* moved = scratch_.moved.data();
    std::fill_n(moved, L, 0.0);
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      kernels_->fluct_move_row(users_.data() + row, moved, best_id,
                               static_cast<uint64_t>(ref.id), fraction,
                               L);
    }
    for (size_t lane = 0; lane < L; ++lane) {
      if (best_id[lane] != 0) {
        users_[static_cast<size_t>(best_id[lane]) * L + lane] +=
            moved[lane];
      }
    }
  }
}

void BatchDemandEngine::Tick(SimTime now, Duration dt) {
  const size_t L = lanes_;
  const uint8_t kRunning = static_cast<uint8_t>(InstanceState::kRunning);
  const uint8_t kFailed = static_cast<uint8_t>(InstanceState::kFailed);
  double dt_minutes = std::max(1e-9, dt.seconds() / 60.0);
  const LandscapeIndex& index = EnsureDataPlane();
  GatherStates(index);
  // User attachment and fluctuation run lane-inner like everything
  // else; each lane still sees the scalar engine's exact arithmetic
  // and iteration order, and the one order-sensitive path (failed
  // instances holding users) drops to a per-lane scalar fallback.
  SyncUsersAll(index);
  if (distribution_ == UserDistribution::kStickySessions &&
      fluctuation_per_minute_ > 0) {
    ApplyFluctuationAll(index, dt_minutes);
  }

  // --- Fresh demand per instance (wu per minute) -----------------------
  // Lane-innermost from here on: the loop structure (spec spans,
  // activity, spec lookups) is computed once per entity and amortized
  // over the whole batch. With no per-lane state overrides anywhere
  // (`uniform`), every state check collapses to one byte per row and
  // the inner loops become straight-line arithmetic.
  const bool uniform = override_count_ == 0;
  std::fill(scratch_.app_work.begin(), scratch_.app_work.end(), 0.0);
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    const ServiceDemandSpec& spec = specs_[slot];
    infra::DenseId sid = spec_service_id_[slot];
    if (sid < 0) continue;
    std::span<const InstanceRef> instances = index.InstancesOfService(sid);
    if (instances.empty()) continue;
    double activity = spec.pattern.Activity(now);
    double* usable = scratch_.usable_cap.data();
    if (uniform) {
      double total = 0.0;
      for (const InstanceRef& ref : instances) {
        if (state_[static_cast<size_t>(ref.id) * L] != kFailed) {
          total += index.ServerPerformance(ref.server);
        }
      }
      std::fill_n(usable, L, total);
    } else {
      std::fill_n(usable, L, 0.0);
      for (const InstanceRef& ref : instances) {
        size_t row = static_cast<size_t>(ref.id) * L;
        double perf = index.ServerPerformance(ref.server);
        for (size_t lane = 0; lane < L; ++lane) {
          if (state_[row + lane] != kFailed) usable[lane] += perf;
        }
      }
    }
    double* service_work = scratch_.app_work.data() + slot * L;
    // Spec-level branches (batch vs interactive, noisy or not) are
    // hoisted out of the lane loop: non-noisy specs become straight
    // vector arithmetic, and only noisy specs pay the per-lane RNG
    // call (whose draw sites must match the scalar engine exactly).
    const bool noisy = spec.noise_stddev > 0;
    const double* queue_row = queue_wu_.data() + slot * L;
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      double perf = index.ServerPerformance(ref.server);
      // One state byte per row when uniform; per-lane otherwise.
      const bool row_ok = !uniform || state_[row] != kFailed;
      double* fresh_all = scratch_.moved.data();
      if (spec.batch) {
        if (uniform) {
          if (row_ok) {
            kernels_->fresh_batch_row(fresh_all, usable,
                                      user_scale_.data(),
                                      spec.batch_load_wu * activity, perf,
                                      L);
          } else {
            std::fill_n(fresh_all, L, 0.0);
          }
        } else {
          for (size_t lane = 0; lane < L; ++lane) {
            bool ok = state_[row + lane] != kFailed;
            fresh_all[lane] =
                usable[lane] > 0 && ok
                    ? spec.batch_load_wu * activity * user_scale_[lane] *
                          perf / usable[lane]
                    : 0.0;
          }
        }
      } else if (spec.base_users > 0) {
        kernels_->fresh_users_row(fresh_all, users_.data() + row,
                                  activity, spec.request_cost,
                                  kUsersPerPerformanceUnit, L);
      } else {
        std::fill_n(fresh_all, L, 0.0);
      }
      if (noisy) {
        if (rng_kind_ == RngKind::kPhilox) {
          // Lanes with fresh == 0 draw nothing, exactly like the
          // conditional scalar draw site — counters never shear.
          kernels_->philox_noise_row(MakePhiloxLaneView(philox_),
                                     fresh_all, spec.noise_stddev, L);
        } else {
          for (size_t lane = 0; lane < L; ++lane) {
            if (fresh_all[lane] > 0) {
              fresh_all[lane] *= std::max(
                  0.0, rng_[lane].Normal(1.0, spec.noise_stddev));
            }
          }
        }
      }
      if (spec.shared_queue) {
        if (uniform && row_ok) {
          kernels_->demand_shared_row(
              demand_wu_.data() + row, service_work, fresh_all,
              backlog_wu_.data() + row, queue_row, usable,
              spec.base_load_wu, perf, L);
        } else if (uniform) {
          // Row failed in every lane: the shared queue never feeds it.
          kernels_->demand_plain_row(demand_wu_.data() + row,
                                     service_work, fresh_all,
                                     backlog_wu_.data() + row,
                                     spec.base_load_wu, L);
        } else {
          for (size_t lane = 0; lane < L; ++lane) {
            bool ok = state_[row + lane] != kFailed;
            double queued = backlog_wu_[row + lane];
            if (usable[lane] > 0 && ok && queue_row[lane] > 0) {
              queued = queue_row[lane] * perf / usable[lane];
            }
            demand_wu_[row + lane] =
                spec.base_load_wu + fresh_all[lane] + queued;
            service_work[lane] += fresh_all[lane];
          }
        }
      } else {
        kernels_->demand_plain_row(demand_wu_.data() + row, service_work,
                                   fresh_all, backlog_wu_.data() + row,
                                   spec.base_load_wu, L);
      }
    }
  }

  // --- Propagate through central instances and databases ----------------
  for (const SubsystemEdges& edge : edges_) {
    double* work = scratch_.weight_total.data();  // per-lane tier work
    std::fill_n(work, L, 0.0);
    for (int32_t app_slot : edge.app_specs) {
      if (app_slot < 0) continue;
      const double* app = scratch_.app_work.data() +
                          static_cast<size_t>(app_slot) * L;
      kernels_->add_row(work, app, L);
    }
    auto distribute = [&](int32_t spec_slot, double factor) {
      if (spec_slot < 0) return;
      infra::DenseId sid =
          spec_service_id_[static_cast<size_t>(spec_slot)];
      if (sid < 0) {
        for (size_t lane = 0; lane < L; ++lane) {
          double w = factor * work[lane];
          if (w > 0) lost_work_wu_[lane] += w * dt_minutes;
        }
        return;
      }
      std::span<const InstanceRef> instances =
          index.InstancesOfService(sid);
      double* usable = scratch_.usable_cap.data();
      if (uniform) {
        double total = 0.0;
        for (const InstanceRef& ref : instances) {
          if (state_[static_cast<size_t>(ref.id) * L] != kFailed) {
            total += index.ServerPerformance(ref.server);
          }
        }
        std::fill_n(usable, L, total);
      } else {
        std::fill_n(usable, L, 0.0);
        for (const InstanceRef& ref : instances) {
          size_t row = static_cast<size_t>(ref.id) * L;
          double perf = index.ServerPerformance(ref.server);
          for (size_t lane = 0; lane < L; ++lane) {
            if (state_[row + lane] != kFailed) usable[lane] += perf;
          }
        }
      }
      for (size_t lane = 0; lane < L; ++lane) {
        double w = factor * work[lane];
        if (w > 0 && usable[lane] <= 0) {
          lost_work_wu_[lane] += w * dt_minutes;
        }
      }
      for (const InstanceRef& ref : instances) {
        size_t row = static_cast<size_t>(ref.id) * L;
        double perf = index.ServerPerformance(ref.server);
        if (uniform && state_[row] == kFailed) continue;
        if (uniform) {
          kernels_->distribute_row(demand_wu_.data() + row, work, usable,
                                   factor, perf, L);
          continue;
        }
        for (size_t lane = 0; lane < L; ++lane) {
          double w = factor * work[lane];
          if (w > 0 && usable[lane] > 0 &&
              state_[row + lane] != kFailed) {
            demand_wu_[row + lane] += w * perf / usable[lane];
          }
        }
      }
    };
    distribute(edge.ci_spec, edge.ci_factor);
    distribute(edge.db_spec, edge.db_factor);
  }

  // --- Proportional-share CPU model per server --------------------------
  std::fill(scratch_.shared_unserved.begin(),
            scratch_.shared_unserved.end(), 0.0);
  for (size_t s = 0; s < index.num_servers(); ++s) {
    infra::DenseId server_id = static_cast<infra::DenseId>(s);
    std::span<const InstanceRef> instances =
        index.InstancesOnServer(server_id);
    double capacity = index.ServerPerformance(server_id);
    double* total_demand = scratch_.total_demand.data();
    std::fill_n(total_demand, L, 0.0);
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      if (uniform) {
        std::fill_n(scratch_.serve.data() + row, L, 0.0);
        if (state_[row] == kRunning) {
          kernels_->add_row(total_demand, demand_wu_.data() + row, L);
        }
        continue;
      }
      for (size_t lane = 0; lane < L; ++lane) {
        scratch_.serve[row + lane] = 0.0;
        if (state_[row + lane] == kRunning) {
          total_demand[lane] += demand_wu_[row + lane];
        }
      }
    }

    double mem = std::min(1.0, index.ServerUsedMemoryGb(server_id) /
                                   index.ServerMemoryGb(server_id));
    if (capacity > 0) {
      kernels_->cpu_mem_row(server_cpu_.data() + s * L,
                            server_mem_.data() + s * L, total_demand,
                            capacity, mem, L);
    } else {
      for (size_t lane = 0; lane < L; ++lane) {
        server_cpu_[s * L + lane] = 1.0;
        server_mem_[s * L + lane] = mem;
      }
    }

    // Fits: serve everything (lane-masked). Overloaded lanes keep
    // serve at 0 here and water-fill below.
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      if (uniform && state_[row] != kRunning) continue;
      if (uniform) {
        kernels_->serve_fit_row(scratch_.serve.data() + row, total_demand,
                                demand_wu_.data() + row, capacity, L);
        continue;
      }
      for (size_t lane = 0; lane < L; ++lane) {
        if (total_demand[lane] <= capacity &&
            state_[row + lane] == kRunning) {
          scratch_.serve[row + lane] = demand_wu_[row + lane];
        }
      }
    }
    for (size_t lane = 0; lane < L; ++lane) {
      if (total_demand[lane] <= capacity) continue;
      // Priority-weighted water-filling, 3 rounds — the scalar
      // algorithm verbatim on this lane's strided state.
      double remaining = capacity;
      scratch_.unsatisfied.clear();
      for (size_t pos = 0; pos < instances.size(); ++pos) {
        size_t i = static_cast<size_t>(instances[pos].id) * L + lane;
        if (state_[i] == kRunning) {
          scratch_.unsatisfied.push_back(static_cast<uint32_t>(pos));
        }
      }
      for (int round = 0; round < 3 && remaining > 1e-12 &&
                          !scratch_.unsatisfied.empty();
           ++round) {
        double total_weight = 0.0;
        for (uint32_t pos : scratch_.unsatisfied) {
          const InstanceRef& ref = instances[pos];
          total_weight +=
              index.ServicePriority(ref.service) *
              std::max(1e-9,
                       demand_wu_[static_cast<size_t>(ref.id) * L + lane]);
        }
        if (total_weight <= 0) break;
        scratch_.still_unsatisfied.clear();
        double granted_total = 0.0;
        for (uint32_t pos : scratch_.unsatisfied) {
          const InstanceRef& ref = instances[pos];
          size_t i = static_cast<size_t>(ref.id) * L + lane;
          double weight = index.ServicePriority(ref.service) *
                          std::max(1e-9, demand_wu_[i]);
          double grant = remaining * weight / total_weight;
          double need = demand_wu_[i] - scratch_.serve[i];
          double take = std::min(grant, need);
          scratch_.serve[i] += take;
          granted_total += take;
          if (scratch_.serve[i] + 1e-12 < demand_wu_[i]) {
            scratch_.still_unsatisfied.push_back(pos);
          }
        }
        remaining -= granted_total;
        scratch_.unsatisfied.swap(scratch_.still_unsatisfied);
      }
    }

    // Update per-instance load and backlog.
    for (const InstanceRef& ref : instances) {
      size_t row = static_cast<size_t>(ref.id) * L;
      int32_t slot =
          ref.service >= 0
              ? spec_of_service_[static_cast<size_t>(ref.service)]
              : -1;
      double base_load = slot >= 0 ? specs_[slot].base_load_wu : 0.0;
      bool shared = slot >= 0 && specs_[slot].shared_queue;
      double cap = slot >= 0 ? specs_[slot].backlog_cap_wu : 2.0;
      double* shared_sink =
          shared ? scratch_.shared_unserved.data() +
                       static_cast<size_t>(slot) * L
                 : nullptr;
      // Spec-level facts (shared queue, base load) hold for the whole
      // row, so the lane loops below stay branch-light.
      const bool has_spec = slot >= 0;
      if (shared) {
        if (capacity > 0) {
          kernels_->shared_backlog_row(
              inst_load_.data() + row, served_wu_.data() + row,
              backlog_wu_.data() + row, shared_sink,
              demand_wu_.data() + row, scratch_.serve.data() + row,
              capacity, base_load, dt_minutes, L);
          continue;
        }
        for (size_t lane = 0; lane < L; ++lane) {
          size_t i = row + lane;
          inst_load_[i] = 1.0;
          double got = scratch_.serve[i];
          served_wu_[i] = got;
          double unserved = std::max(0.0, demand_wu_[i] - got);
          unserved = std::max(0.0, unserved - base_load);
          backlog_wu_[i] = 0.0;
          shared_sink[lane] += unserved * dt_minutes;
        }
        continue;
      }
      if (capacity > 0) {
        // base_load is 0 for spec-less instances; the kernel's
        // unconditional base-load clamp is exact there (see
        // lane_kernels.h).
        kernels_->backlog_row(inst_load_.data() + row,
                              served_wu_.data() + row,
                              backlog_wu_.data() + row,
                              lost_work_wu_.data(),
                              demand_wu_.data() + row,
                              scratch_.serve.data() + row, capacity,
                              has_spec ? base_load : 0.0, cap,
                              dt_minutes, L);
        continue;
      }
      for (size_t lane = 0; lane < L; ++lane) {
        size_t i = row + lane;
        inst_load_[i] = 1.0;
        double got = scratch_.serve[i];
        served_wu_[i] = got;
        double unserved = std::max(0.0, demand_wu_[i] - got);
        if (has_spec) {
          unserved = std::max(0.0, unserved - base_load);
        }
        double new_backlog = unserved * dt_minutes;
        if (new_backlog > cap) {
          lost_work_wu_[lane] += new_backlog - cap;
          new_backlog = cap;
        }
        backlog_wu_[i] = new_backlog;
      }
    }

    kernels_->overload_row(overload_minutes_.data(),
                           server_cpu_.data() + s * L,
                           overload_threshold_, dt_minutes, L);
  }

  // Commit shared queues (cap per service; overflow is lost work).
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    double cap = specs_[slot].backlog_cap_wu;
    const double* collected =
        scratch_.shared_unserved.data() + slot * L;
    double* queue = queue_wu_.data() + slot * L;
    kernels_->queue_commit_row(queue, lost_work_wu_.data(), collected,
                               cap, L);
  }
}

double BatchDemandEngine::ServiceLoad(size_t lane,
                                      infra::DenseId service) const {
  const LandscapeIndex& index = cluster_->Index();
  if (service < 0 ||
      static_cast<size_t>(service) >= index.num_services()) {
    return 0.0;
  }
  std::span<const InstanceRef> instances =
      index.InstancesOfService(service);
  if (instances.empty()) return 0.0;
  double total = 0.0;
  int count = 0;
  for (const InstanceRef& ref : instances) {
    size_t id = static_cast<size_t>(ref.id);
    if (id >= tracked_.size() || !tracked_[id]) continue;
    total += inst_load_[id * lanes_ + lane];
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

void BatchDemandEngine::ServiceLoadAll(infra::DenseId service,
                                       double* out) const {
  const size_t L = lanes_;
  std::fill_n(out, L, 0.0);
  const LandscapeIndex& index = cluster_->Index();
  if (service < 0 ||
      static_cast<size_t>(service) >= index.num_services()) {
    return;
  }
  std::span<const InstanceRef> instances =
      index.InstancesOfService(service);
  size_t count = 0;
  for (const InstanceRef& ref : instances) {
    size_t id = static_cast<size_t>(ref.id);
    if (id >= tracked_.size() || !tracked_[id]) continue;
    kernels_->add_row(out, inst_load_.data() + id * L, L);
    ++count;
  }
  if (count == 0) {
    std::fill_n(out, L, 0.0);
    return;
  }
  double inv_count = static_cast<double>(count);
  for (size_t lane = 0; lane < L; ++lane) out[lane] /= inv_count;
}

double BatchDemandEngine::ServiceSatisfaction(
    size_t lane, infra::DenseId service) const {
  const LandscapeIndex& index = cluster_->Index();
  if (service < 0 ||
      static_cast<size_t>(service) >= index.num_services()) {
    return 1.0;
  }
  double requested = 0.0;
  double served = 0.0;
  for (const InstanceRef& ref : index.InstancesOfService(service)) {
    size_t id = static_cast<size_t>(ref.id);
    if (id >= tracked_.size() || !tracked_[id]) continue;
    size_t i = id * lanes_ + lane;
    requested += demand_wu_[i];
    served += std::min(served_wu_[i], demand_wu_[i]);
  }
  if (requested <= 1e-12) return 1.0;
  return std::clamp(served / requested, 0.0, 1.0);
}

double BatchDemandEngine::TotalBacklog(size_t lane) const {
  double total = 0.0;
  for (size_t id = 0; id < tracked_.size(); ++id) {
    if (tracked_[id]) total += backlog_wu_[id * lanes_ + lane];
  }
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    total += queue_wu_[slot * lanes_ + lane];
  }
  return total;
}

}  // namespace autoglobe::workload
