#ifndef AUTOGLOBE_FUZZY_RULE_H_
#define AUTOGLOBE_FUZZY_RULE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzy/linguistic.h"

namespace autoglobe::fuzzy {

/// Crisp measurements keyed by input-variable name.
using Inputs = std::map<std::string, double, std::less<>>;

/// Antecedent expression tree of a fuzzy rule. Conjunction is
/// evaluated with min, disjunction with max, and negation with
/// 1 - x (standard Zadeh operators, per paper §3).
class Expr {
 public:
  enum class Kind { kAtom, kAnd, kOr, kNot };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;

  /// Degree of truth of the expression under the given crisp inputs.
  /// Errors when a referenced variable or term is undefined or the
  /// measurement is missing.
  virtual Result<double> Evaluate(
      const std::map<std::string, LinguisticVariable, std::less<>>& variables,
      const Inputs& inputs) const = 0;

  /// Parenthesized textual form, e.g.
  /// "(cpuLoad IS high AND performanceIndex IS low)".
  virtual std::string ToString() const = 0;

  /// Collects all variable names referenced by the expression.
  virtual void CollectVariables(std::vector<std::string>* out) const = 0;
};

/// Linguistic hedges modify a term's membership grade (Zadeh):
/// VERY squares it (concentration), SOMEWHAT takes the square root
/// (dilation). `cpuLoad IS VERY high` is stricter than plain `high`.
enum class Hedge {
  kNone,
  kVery,
  kSomewhat,
};

std::string_view HedgeName(Hedge hedge);

/// Applies a hedge to a membership grade.
double ApplyHedge(Hedge hedge, double grade);

/// Leaf: `variable IS [NOT] [VERY|SOMEWHAT] term`.
class AtomExpr final : public Expr {
 public:
  AtomExpr(std::string variable, std::string term, bool negated = false,
           Hedge hedge = Hedge::kNone)
      : variable_(std::move(variable)),
        term_(std::move(term)),
        negated_(negated),
        hedge_(hedge) {}

  Kind kind() const override { return Kind::kAtom; }
  const std::string& variable() const { return variable_; }
  const std::string& term() const { return term_; }
  bool negated() const { return negated_; }
  Hedge hedge() const { return hedge_; }

  Result<double> Evaluate(
      const std::map<std::string, LinguisticVariable, std::less<>>& variables,
      const Inputs& inputs) const override;
  std::string ToString() const override;
  void CollectVariables(std::vector<std::string>* out) const override;

 private:
  std::string variable_;
  std::string term_;
  bool negated_;
  Hedge hedge_;
};

/// Inner node: AND (min) / OR (max) over two or more children.
class NaryExpr final : public Expr {
 public:
  NaryExpr(Kind kind, std::vector<std::unique_ptr<Expr>> children)
      : kind_(kind), children_(std::move(children)) {}

  Kind kind() const override { return kind_; }
  const std::vector<std::unique_ptr<Expr>>& children() const {
    return children_;
  }

  Result<double> Evaluate(
      const std::map<std::string, LinguisticVariable, std::less<>>& variables,
      const Inputs& inputs) const override;
  std::string ToString() const override;
  void CollectVariables(std::vector<std::string>* out) const override;

 private:
  Kind kind_;
  std::vector<std::unique_ptr<Expr>> children_;
};

/// Negation: 1 - child.
class NotExpr final : public Expr {
 public:
  explicit NotExpr(std::unique_ptr<Expr> child) : child_(std::move(child)) {}

  Kind kind() const override { return Kind::kNot; }
  const Expr& child() const { return *child_; }

  Result<double> Evaluate(
      const std::map<std::string, LinguisticVariable, std::less<>>& variables,
      const Inputs& inputs) const override;
  std::string ToString() const override;
  void CollectVariables(std::vector<std::string>* out) const override;

 private:
  std::unique_ptr<Expr> child_;
};

/// Consequent: `outputVariable IS term`, e.g. `scaleUp IS applicable`.
struct Consequent {
  std::string variable;
  std::string term;
};

/// A complete fuzzy rule: IF <antecedent> THEN <consequent>
/// [WITH <weight>]. The optional weight scales the antecedent truth
/// before clipping (1.0 by default), letting administrators damp
/// individual rules without rewriting them.
class Rule {
 public:
  Rule(std::unique_ptr<Expr> antecedent, Consequent consequent,
       double weight = 1.0)
      : antecedent_(std::move(antecedent)),
        consequent_(std::move(consequent)),
        weight_(weight) {}

  const Expr& antecedent() const { return *antecedent_; }
  const Consequent& consequent() const { return consequent_; }
  double weight() const { return weight_; }

  /// Degree of truth of the antecedent (already weight-scaled).
  Result<double> EvaluateAntecedent(
      const std::map<std::string, LinguisticVariable, std::less<>>& variables,
      const Inputs& inputs) const;

  std::string ToString() const;

 private:
  std::unique_ptr<Expr> antecedent_;
  Consequent consequent_;
  double weight_;
};

}  // namespace autoglobe::fuzzy

#endif  // AUTOGLOBE_FUZZY_RULE_H_
