// Golden guard for the strategy subsystem: with the default
// strategy (static fuzzy) every existing run must stay byte-identical
// to the pre-strategy engine — same trigger/action counts, same
// message stream, same metrics to the last bit. The fingerprints
// below were captured from the engine immediately before the strategy
// subsystem landed; if one changes, the strategy layer leaked into
// the default path.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "autoglobe/capacity.h"
#include "autoglobe/runner.h"

namespace autoglobe {
namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FingerprintMessages(const SimulationRunner& runner) {
  uint64_t hash = kFnvBasis;
  for (const std::string& message : runner.messages()) {
    for (char c : message) {
      hash ^= static_cast<unsigned char>(c);
      hash *= kFnvPrime;
    }
  }
  return hash;
}

struct Golden {
  Scenario scenario;
  double scale;
  int64_t triggers;
  int64_t actions;
  int64_t failed;
  int64_t alerts;
  double overload_minutes;
  double max_streak;
  double average_load;
  double lost_work;
  size_t messages;
  uint64_t hash;
};

class StrategyGoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(StrategyGoldenTest, DefaultStrategyIsBitIdenticalToSeedEngine) {
  const Golden& golden = GetParam();
  Landscape landscape = MakePaperLandscape(golden.scenario);
  RunnerConfig config =
      MakeScenarioConfig(golden.scenario, golden.scale, /*seed=*/42);
  config.duration = Duration::Hours(12);
  ASSERT_EQ(config.strategy.kind, strategy::StrategyKind::kStaticFuzzy)
      << "static fuzzy must stay the default strategy";
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());

  const RunMetrics& m = (*runner)->metrics();
  EXPECT_EQ(m.triggers, golden.triggers);
  EXPECT_EQ(m.actions_executed, golden.actions);
  EXPECT_EQ(m.actions_failed, golden.failed);
  EXPECT_EQ(m.alerts, golden.alerts);
  EXPECT_EQ(m.overload_server_minutes, golden.overload_minutes);
  EXPECT_EQ(m.max_overload_streak_minutes, golden.max_streak);
  EXPECT_EQ(m.average_cpu_load, golden.average_load);
  EXPECT_EQ(m.lost_work_wu, golden.lost_work);
  EXPECT_EQ((*runner)->messages().size(), golden.messages);
  EXPECT_EQ(FingerprintMessages(**runner), golden.hash);
}

INSTANTIATE_TEST_SUITE_P(
    PaperScenarios, StrategyGoldenTest,
    ::testing::Values(
        Golden{Scenario::kConstrainedMobility, 1.25, 792, 9, 0, 132,
               484.0, 313.0, 0.22726212453045386, 0.0, 141,
               7031032071606073426ULL},
        Golden{Scenario::kFullMobility, 1.2, 656, 12, 0, 23, 82.0, 30.0,
               0.22717535025022603, 1.2831625681436485, 35,
               7546936579777058040ULL},
        Golden{Scenario::kStatic, 1.3, 1143, 0, 0, 0, 3290.0, 325.0,
               0.30721287897615907, 0.0, 0, 1469598103934665603ULL}),
    [](const ::testing::TestParamInfo<Golden>& info) {
      return std::string(ScenarioName(info.param.scenario)) == "static"
                 ? "static"
             : info.param.scenario == Scenario::kConstrainedMobility
                 ? "cm"
                 : "fm";
    });

}  // namespace
}  // namespace autoglobe
