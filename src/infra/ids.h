#ifndef AUTOGLOBE_INFRA_IDS_H_
#define AUTOGLOBE_INFRA_IDS_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "infra/action.h"

namespace autoglobe::infra {

struct ServerSpec;
struct ServiceSpec;
struct ServiceInstance;
class Cluster;

/// Dense id of a server or service: its rank in sorted-name order
/// over the cluster's current topology. Dense ids are stable between
/// topology changes (AddServer/AddService/Place/Remove/Move), which
/// in practice means they are fixed for a whole simulation run — the
/// landscape's server and service sets are set up once.
using DenseId = int32_t;
inline constexpr DenseId kNoDenseId = -1;

/// One live instance as seen by the dense data plane. The pointer
/// targets the cluster's map node (stable across unrelated inserts
/// and erases), so `instance->state` is always the live state — state
/// flips do not invalidate an index.
struct InstanceRef {
  const ServiceInstance* instance = nullptr;
  InstanceId id = 0;
  DenseId service = kNoDenseId;
  DenseId server = kNoDenseId;
};

/// The interned landscape: every server, service, and instance
/// resolved to dense integer ids, with the per-server / per-service
/// instance lists precomputed as contiguous spans (CSR layout) and
/// the per-tick facts (performance index, memory, priorities, used
/// memory) gathered into flat arrays.
///
/// Rebuilt by Cluster::Index() whenever the topology epoch moved;
/// between topology changes every accessor is an array read. All
/// instance lists preserve InstanceId order — the same iteration
/// order as the cluster's ordered instance map — and server/service
/// ids enumerate names in sorted order, so code that walks the index
/// visits entities exactly as the string-keyed API would.
class LandscapeIndex {
 public:
  LandscapeIndex() = default;

  size_t num_servers() const { return server_names_.size(); }
  size_t num_services() const { return service_names_.size(); }
  size_t num_instances() const { return instances_.size(); }

  /// Exclusive upper bound of live InstanceIds (0 when empty); size
  /// per-instance state arrays with this to index them by raw id.
  InstanceId instance_id_bound() const { return instance_id_bound_; }

  /// kNoDenseId when the name is unknown.
  DenseId ServerIdOf(std::string_view name) const;
  DenseId ServiceIdOf(std::string_view name) const;

  const std::string& ServerName(DenseId id) const {
    return server_names_[static_cast<size_t>(id)];
  }
  const std::string& ServiceName(DenseId id) const {
    return service_names_[static_cast<size_t>(id)];
  }
  const ServerSpec& Server(DenseId id) const {
    return *servers_[static_cast<size_t>(id)];
  }
  const ServiceSpec& Service(DenseId id) const {
    return *services_[static_cast<size_t>(id)];
  }

  double ServerPerformance(DenseId id) const {
    return performance_[static_cast<size_t>(id)];
  }
  double ServerMemoryGb(DenseId id) const {
    return memory_gb_[static_cast<size_t>(id)];
  }
  /// Memory claimed by the instances hosted on the server, in GB.
  /// Placement-dependent, so it is part of the cached topology view.
  double ServerUsedMemoryGb(DenseId id) const {
    return used_memory_gb_[static_cast<size_t>(id)];
  }
  /// Live CPU weight of the service — kept in sync by the cluster on
  /// AdjustServicePriority without a rebuild.
  double ServicePriority(DenseId id) const {
    return priorities_[static_cast<size_t>(id)];
  }

  /// All live instances, InstanceId ascending.
  std::span<const InstanceRef> Instances() const { return instances_; }
  /// Instances hosted on / belonging to an entity (any state),
  /// InstanceId ascending. Valid until the next topology change.
  std::span<const InstanceRef> InstancesOnServer(DenseId id) const {
    size_t i = static_cast<size_t>(id);
    return std::span<const InstanceRef>(by_server_)
        .subspan(static_cast<size_t>(server_offsets_[i]),
                 static_cast<size_t>(server_offsets_[i + 1] -
                                     server_offsets_[i]));
  }
  std::span<const InstanceRef> InstancesOfService(DenseId id) const {
    size_t i = static_cast<size_t>(id);
    return std::span<const InstanceRef>(by_service_)
        .subspan(static_cast<size_t>(service_offsets_[i]),
                 static_cast<size_t>(service_offsets_[i + 1] -
                                     service_offsets_[i]));
  }

  /// The largest instance count any single server currently hosts —
  /// the capacity bound scratch buffers for per-server loops need.
  size_t max_instances_per_server() const {
    return max_instances_per_server_;
  }

  // --- Pool (server-category) layout ----------------------------------
  // Servers grouped by ServerSpec::category, pools enumerated in
  // sorted category-name order. The hierarchical-aggregation layer
  // (monitor::PoolLoadStats, the controller's pool prescreen) ranks
  // these pools first and only then scans the servers inside the
  // chosen pool — O(pools + pool-size) instead of O(fleet).
  size_t num_pools() const { return pool_names_.size(); }
  const std::string& PoolName(int32_t pool) const {
    return pool_names_[static_cast<size_t>(pool)];
  }
  /// Pool of a server (always valid for a live DenseId).
  int32_t PoolOfServer(DenseId server) const {
    return pool_of_server_[static_cast<size_t>(server)];
  }
  /// Servers of a pool, in sorted-name (dense-id) order.
  std::span<const DenseId> ServersInPool(int32_t pool) const {
    size_t i = static_cast<size_t>(pool);
    return std::span<const DenseId>(pool_servers_)
        .subspan(static_cast<size_t>(pool_offsets_[i]),
                 static_cast<size_t>(pool_offsets_[i + 1] -
                                     pool_offsets_[i]));
  }

 private:
  friend class Cluster;

  /// Re-interns the whole landscape from the cluster's maps.
  void Rebuild(const Cluster& cluster);
  void SetPriority(DenseId id, double priority) {
    priorities_[static_cast<size_t>(id)] = priority;
  }

  std::vector<std::string> server_names_;   // sorted
  std::vector<std::string> service_names_;  // sorted
  std::vector<const ServerSpec*> servers_;
  std::vector<const ServiceSpec*> services_;
  std::vector<double> performance_;
  std::vector<double> memory_gb_;
  std::vector<double> used_memory_gb_;
  std::vector<double> priorities_;
  std::vector<InstanceRef> instances_;
  // CSR: bucket lists are contiguous slices of one flat array.
  std::vector<InstanceRef> by_server_;
  std::vector<int32_t> server_offsets_;
  std::vector<InstanceRef> by_service_;
  std::vector<int32_t> service_offsets_;
  InstanceId instance_id_bound_ = 0;
  size_t max_instances_per_server_ = 0;
  // Pool layout: categories sorted by name, servers bucketed CSR-style.
  std::vector<std::string> pool_names_;  // sorted
  std::vector<int32_t> pool_of_server_;  // per server dense id
  std::vector<DenseId> pool_servers_;
  std::vector<int32_t> pool_offsets_;
};

}  // namespace autoglobe::infra

#endif  // AUTOGLOBE_INFRA_IDS_H_
