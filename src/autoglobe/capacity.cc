#include "autoglobe/capacity.h"

namespace autoglobe {

RunnerConfig MakeScenarioConfig(Scenario scenario, double user_scale,
                                uint64_t seed) {
  RunnerConfig config;
  config.user_scale = user_scale;
  config.seed = seed;
  switch (scenario) {
    case Scenario::kStatic:
      config.controller_enabled = false;
      config.distribution = workload::UserDistribution::kStickySessions;
      break;
    case Scenario::kConstrainedMobility:
      config.controller_enabled = true;
      // "After a scale-out, the system does not dynamically
      // redistribute the users" (§5.1) — only fluctuation rebalances.
      config.distribution = workload::UserDistribution::kStickySessions;
      break;
    case Scenario::kFullMobility:
      config.controller_enabled = true;
      // "if a new instance of a service is started, the users are
      // equally redistributed across all instances" (§5.1).
      config.distribution =
          workload::UserDistribution::kDynamicRedistribution;
      break;
  }
  return config;
}

bool Passes(const RunMetrics& metrics, const AcceptanceCriteria& criteria) {
  return metrics.max_overload_streak_minutes <=
             criteria.max_overload_streak_minutes &&
         metrics.overload_fraction <= criteria.max_overload_fraction;
}

Result<CapacityResult> FindCapacity(Scenario scenario,
                                    const CapacityOptions& options) {
  CapacityResult result;
  result.scenario = scenario;
  for (double scale = options.start_scale;
       scale <= options.max_scale + 1e-9; scale += options.step) {
    Landscape landscape = MakePaperLandscape(scenario);
    RunnerConfig config =
        MakeScenarioConfig(scenario, scale, options.seed);
    config.duration = options.run_duration;
    config.metrics_warmup = options.warmup;
    AG_ASSIGN_OR_RETURN(std::unique_ptr<SimulationRunner> runner,
                        SimulationRunner::Create(landscape, config));
    AG_RETURN_IF_ERROR(runner->Run());
    CapacityStep step;
    step.scale = scale;
    step.metrics = runner->metrics();
    step.passed = Passes(step.metrics, options.criteria);
    result.steps.push_back(step);
    if (!step.passed) break;  // "until the system becomes overloaded"
    result.max_scale = scale;
  }
  return result;
}

}  // namespace autoglobe
