#ifndef AUTOGLOBE_FAULTS_RECOVERY_H_
#define AUTOGLOBE_FAULTS_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "controller/controller.h"
#include "faults/availability.h"
#include "infra/cluster.h"
#include "infra/executor.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace autoglobe::faults {

/// Policy of the self-healing pipeline.
struct RecoveryConfig {
  /// Delay before the second restart attempt; doubles per attempt.
  Duration initial_backoff = Duration::Minutes(1);
  Duration max_backoff = Duration::Minutes(16);
  /// Restart attempts (including the first, immediate one) before
  /// escalating to relocation on another host.
  int max_restart_attempts = 3;
  /// Placement failures on one host before it is blacklisted from
  /// server selection.
  int blacklist_threshold = 2;
  Duration blacklist_duration = Duration::Hours(1);
};

/// Counters of everything the recovery pipeline did.
struct RecoveryStats {
  int64_t restarts_attempted = 0;
  int64_t restarts_succeeded = 0;
  int64_t relocations = 0;
  int64_t evacuations = 0;
  int64_t recovered = 0;
  int64_t abandoned = 0;
  int64_t blacklist_entries = 0;
};

/// Self-healing engine (the autonomic "remedy failure situations"
/// loop of §2, grown into a full pipeline): restart in place with
/// capped exponential backoff, escalation to relocation via the
/// server-selection fuzzy controller, evacuation of dead servers, and
/// blacklisting of hosts whose placements repeatedly fail. All delays
/// run through the simulation kernel, so recovery is as deterministic
/// as the rest of the run.
class RecoveryManager {
 public:
  using AlertCallback =
      std::function<void(SimTime, const std::string& reason)>;

  RecoveryManager(infra::Cluster* cluster, sim::Simulator* simulator,
                  infra::ActionExecutor* executor,
                  controller::Controller* controller,
                  RecoveryConfig config = {});

  /// Entry point for a confirmed instanceFailed trigger.
  void OnInstanceFailed(infra::InstanceId id, SimTime now);
  /// Entry point for a confirmed serverFailed trigger: evacuates
  /// every hosted instance to ranked replacement hosts. Also handles
  /// the false-positive case (monitor dropout on a healthy server) —
  /// evacuation never needs the source host's cooperation.
  void OnServerFailed(const std::string& server, SimTime now);

  /// Host filter for controller server selection: rejects blacklisted
  /// hosts. Install with controller->set_host_filter(...).
  Status FilterHost(const std::string& server) const;

  void set_trace_buffer(obs::TraceBuffer* trace) { trace_ = trace; }
  void set_audit_log(obs::AuditLog* audit) { audit_ = audit; }
  void set_availability_tracker(AvailabilityTracker* tracker) {
    tracker_ = tracker;
  }
  void set_alert_callback(AlertCallback alert) {
    alert_ = std::move(alert);
  }
  /// Optional counters (inert handles by default): episodes recovered
  /// and abandoned.
  void set_metrics(obs::Counter recovered, obs::Counter abandoned) {
    recovered_counter_ = recovered;
    abandoned_counter_ = abandoned;
  }

  const RecoveryStats& stats() const { return stats_; }
  const RecoveryConfig& config() const { return config_; }
  /// Hosts currently blacklisted (sorted), for reports and tests.
  std::vector<std::string> BlacklistedHosts(SimTime now) const;

  // --- Checkpoint/restore ----------------------------------------------
  /// Serializes open episodes, host placement-failure records, and the
  /// stats. Pending backoff timers and boot watchdogs live in the
  /// simulator's heap and are rebuilt there via the callback builders.
  void SaveState(ByteWriter* w) const;
  Status RestoreState(ByteReader* r);

  /// Rebuilds the callback of a scheduled "recovery-backoff" event
  /// (desc kind "recovery.backoff", a = token, b = instance id).
  sim::Simulator::Callback MakeBackoffCallback(uint64_t token,
                                               infra::InstanceId id);
  /// Rebuilds the callback of a scheduled "recovery-watchdog" event
  /// (desc kind "recovery.watchdog", a = token, b = instance id).
  sim::Simulator::Callback MakeWatchdogCallback(uint64_t token,
                                                infra::InstanceId id);

 private:
  /// Per-episode recovery state, keyed by the token (the originally
  /// failed instance's id).
  struct Episode {
    std::string service;
    int restart_attempts = 0;
    Duration backoff;
  };
  struct HostRecord {
    int failures = 0;
    SimTime blacklisted_until;
  };

  void AttemptRestart(uint64_t token, infra::InstanceId id, SimTime now);
  /// Schedules a boot watchdog at the moment `id` should be running;
  /// closes the episode or continues recovery.
  void WatchBoot(uint64_t token, infra::InstanceId id);
  void Relocate(uint64_t token, infra::InstanceId id, SimTime now);
  void Abandon(uint64_t token, SimTime now, const std::string& reason);
  void Recovered(uint64_t token, infra::InstanceId id, SimTime now);
  void NotePlacementFailure(const std::string& server, SimTime now);
  void Trace(SimTime at, std::string_view name, std::string detail,
             int64_t value = 0);

  infra::Cluster* cluster_;
  sim::Simulator* simulator_;
  infra::ActionExecutor* executor_;
  controller::Controller* controller_;
  RecoveryConfig config_;
  RecoveryStats stats_;

  std::map<uint64_t, Episode> episodes_;
  std::map<std::string, HostRecord, std::less<>> hosts_;

  obs::TraceBuffer* trace_ = nullptr;
  obs::AuditLog* audit_ = nullptr;
  AvailabilityTracker* tracker_ = nullptr;
  AlertCallback alert_;
  obs::Counter recovered_counter_;
  obs::Counter abandoned_counter_;
};

}  // namespace autoglobe::faults

#endif  // AUTOGLOBE_FAULTS_RECOVERY_H_
