#include "persist/snapshot.h"

#include <cstring>

#include "common/bytes.h"
#include "common/fileio.h"
#include "common/strings.h"

namespace autoglobe::persist {

std::string EncodeSnapshot(
    uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::string>>& sections) {
  ByteWriter w;
  w.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.U32(kSnapshotVersion);
  w.U64(fingerprint);
  w.U32(static_cast<uint32_t>(sections.size()));
  for (const auto& [name, payload] : sections) {
    w.Str(name);
    w.U64(payload.size());
    w.U64(Fnv1a64(payload));
  }
  for (const auto& [name, payload] : sections) {
    w.Raw(payload.data(), payload.size());
  }
  std::string bytes = w.Take();
  ByteWriter trailer;
  trailer.U64(Fnv1a64(bytes));
  bytes += trailer.Take();
  return bytes;
}

Result<SnapshotData> DecodeSnapshot(std::string_view bytes) {
  // Trailer first: it covers everything, so a truncated file fails
  // here with one clear message instead of a puzzling partial parse.
  if (bytes.size() < sizeof(kSnapshotMagic) + sizeof(uint64_t)) {
    return Status::ParseError(StrFormat(
        "snapshot too small (%zu byte(s)) to be a container",
        bytes.size()));
  }
  ByteReader trailer(bytes.substr(bytes.size() - sizeof(uint64_t)));
  AG_ASSIGN_OR_RETURN(uint64_t stored_total, trailer.U64());
  std::string_view body = bytes.substr(0, bytes.size() - sizeof(uint64_t));
  uint64_t actual_total = Fnv1a64(body);
  if (stored_total != actual_total) {
    return Status::ParseError(StrFormat(
        "snapshot trailer checksum mismatch (stored %016llx, actual "
        "%016llx): file is truncated or corrupt",
        static_cast<unsigned long long>(stored_total),
        static_cast<unsigned long long>(actual_total)));
  }

  ByteReader r(body);
  char magic[sizeof(kSnapshotMagic)];
  AG_RETURN_IF_ERROR(r.Raw(magic, sizeof(magic)));
  if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::ParseError("not a snapshot: bad magic");
  }
  AG_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kSnapshotVersion) {
    return Status::ParseError(StrFormat(
        "unsupported snapshot version %u (this build reads version %u)",
        version, kSnapshotVersion));
  }
  SnapshotData data;
  AG_ASSIGN_OR_RETURN(data.fingerprint, r.U64());
  AG_ASSIGN_OR_RETURN(uint32_t section_count, r.U32());
  struct TableEntry {
    std::string name;
    uint64_t size = 0;
    uint64_t checksum = 0;
  };
  std::vector<TableEntry> table;
  table.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    TableEntry entry;
    AG_ASSIGN_OR_RETURN(entry.name, r.Str());
    AG_ASSIGN_OR_RETURN(entry.size, r.U64());
    AG_ASSIGN_OR_RETURN(entry.checksum, r.U64());
    table.push_back(std::move(entry));
  }
  for (TableEntry& entry : table) {
    if (entry.size > r.remaining()) {
      return Status::ParseError(StrFormat(
          "section \"%s\" claims %llu byte(s) but only %zu remain",
          entry.name.c_str(),
          static_cast<unsigned long long>(entry.size), r.remaining()));
    }
    std::string payload(entry.size, '\0');
    AG_RETURN_IF_ERROR(r.Raw(payload.data(), payload.size()));
    uint64_t actual = Fnv1a64(payload);
    if (actual != entry.checksum) {
      return Status::ParseError(StrFormat(
          "section \"%s\" checksum mismatch (stored %016llx, actual "
          "%016llx)",
          entry.name.c_str(),
          static_cast<unsigned long long>(entry.checksum),
          static_cast<unsigned long long>(actual)));
    }
    data.sections.emplace_back(std::move(entry.name), std::move(payload));
  }
  AG_RETURN_IF_ERROR(r.ExpectEnd());
  return data;
}

Status WriteSnapshotFile(
    const std::string& path, uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::string>>& sections) {
  return AtomicWriteFile(path, EncodeSnapshot(fingerprint, sections));
}

Result<SnapshotData> ReadSnapshotFile(const std::string& path,
                                      uint64_t expected_fingerprint) {
  AG_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  AG_ASSIGN_OR_RETURN(SnapshotData data, DecodeSnapshot(bytes));
  if (expected_fingerprint != 0 &&
      data.fingerprint != expected_fingerprint) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot \"%s\" was taken under fingerprint %016llx but this "
        "run's is %016llx — different landscape, seed, rng plane, "
        "strategy, or fault-plan presence",
        path.c_str(), static_cast<unsigned long long>(data.fingerprint),
        static_cast<unsigned long long>(expected_fingerprint)));
  }
  return data;
}

}  // namespace autoglobe::persist
