# Empty compiler generated dependencies file for ablation_watchtime.
# This may be replaced when dependencies are built.
