#ifndef AUTOGLOBE_OBS_OBSERVABILITY_H_
#define AUTOGLOBE_OBS_OBSERVABILITY_H_

#include <cstddef>

#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace autoglobe::obs {

/// Opt-in switches for the per-run observability surfaces. The
/// metrics registry is always on (registration-time cost only, atomic
/// updates on the hot path); tracing and decision auditing allocate
/// real memory and are off by default so capacity sweeps running
/// hundreds of 80-hour simulations pay nothing.
struct ObservabilityConfig {
  /// Capture typed trace events into a bounded ring buffer.
  bool enable_tracing = false;
  /// Ring capacity; at the default tick rate one 80-hour run emits
  /// ~5k kernel events per simulated day, so 1<<16 retains days of
  /// history.
  size_t trace_capacity = 1 << 16;
  /// Record a DecisionAudit for every controller trigger.
  bool enable_audit = false;
  /// Decisions retained before the oldest are evicted.
  size_t audit_capacity = 256;
};

}  // namespace autoglobe::obs

#endif  // AUTOGLOBE_OBS_OBSERVABILITY_H_
