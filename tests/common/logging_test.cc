#include "common/logging.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logging::SetMinLevel(LogLevel::kDebug);
    Logging::SetSink([this](LogLevel level, const std::string& message) {
      captured_.push_back({level, message});
    });
  }
  void TearDown() override {
    Logging::SetSink(nullptr);
    Logging::SetMinLevel(LogLevel::kInfo);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, EmitsToSink) {
  AG_LOG(Info) << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, MinLevelFilters) {
  Logging::SetMinLevel(LogLevel::kWarning);
  AG_LOG(Debug) << "dropped";
  AG_LOG(Info) << "dropped too";
  AG_LOG(Warning) << "kept";
  AG_LOG(Error) << "kept too";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "kept");
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_EQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_EQ(LogLevelName(LogLevel::kFatal), "FATAL");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ AG_CHECK(1 == 2); }, "Check failed");
}

// Loggers, level changes and sink swaps race freely here — the
// parallel capacity-sweep workers do the same. The assertions are
// loose (no message may be torn or lost once the final sink is in
// place); the real check is that TSan stays quiet.
TEST(LoggingConcurrencyTest, ConcurrentLoggingAndReconfiguration) {
  std::atomic<uint64_t> delivered{0};
  Logging::SetMinLevel(LogLevel::kDebug);
  Logging::SetSink([&delivered](LogLevel, const std::string& message) {
    // A torn message would not round-trip its own length.
    ASSERT_EQ(message, std::string(message.size(), 'x'));
    delivered.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kLoggers = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kLoggers; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        AG_LOG(Info) << std::string(static_cast<size_t>(t) + 1, 'x');
      }
    });
  }
  std::thread reconfigurer([] {
    for (int i = 0; i < 200; ++i) {
      Logging::SetMinLevel(i % 2 == 0 ? LogLevel::kDebug
                                      : LogLevel::kInfo);
      EXPECT_GE(Logging::min_level(), LogLevel::kDebug);
    }
  });
  for (std::thread& thread : threads) thread.join();
  reconfigurer.join();

  // Info passes both levels the reconfigurer toggles between, so
  // every message must have reached the sink.
  EXPECT_EQ(delivered.load(),
            static_cast<uint64_t>(kLoggers) * kPerThread);
  Logging::SetSink(nullptr);
  Logging::SetMinLevel(LogLevel::kInfo);
}

}  // namespace
}  // namespace autoglobe
