#include "autoglobe/landscape_gen.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "infra/cluster.h"
#include "workload/demand.h"
#include "xmlcfg/xml.h"

namespace autoglobe {
namespace {

using infra::Cluster;

std::string ToXmlString(const Landscape& landscape) {
  xml::Document doc;
  landscape.ToXml(doc.SetRoot("landscape"));
  return doc.ToString();
}

TEST(LandscapeGenTest, SameSeedIsByteIdentical) {
  LandscapeGenSpec spec = MakeScaleSpec(100, /*seed=*/7);
  auto a = GenerateLandscape(spec);
  auto b = GenerateLandscape(spec);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(ToXmlString(*a), ToXmlString(*b));
}

TEST(LandscapeGenTest, DifferentSeedDiffers) {
  auto a = GenerateLandscape(MakeScaleSpec(100, /*seed=*/7));
  auto b = GenerateLandscape(MakeScaleSpec(100, /*seed=*/8));
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  // Jitter draws differ, so the demand sections cannot match.
  EXPECT_NE(ToXmlString(*a), ToXmlString(*b));
}

TEST(LandscapeGenTest, GeneratedLandscapePassesClusterInvariants) {
  for (int size : {19, 100, 1000}) {
    auto landscape = GenerateLandscape(MakeScaleSpec(size));
    ASSERT_TRUE(landscape.ok()) << landscape.status();
    Cluster cluster;
    ASSERT_TRUE(landscape->Build(&cluster, nullptr).ok()) << size;
    EXPECT_TRUE(
        infra::VerifyClusterInvariants(cluster, /*enforce_min=*/true).ok())
        << size;
    EXPECT_EQ(cluster.Index().num_servers(),
              static_cast<size_t>(size));
  }
}

TEST(LandscapeGenTest, ScaleSpecCoversEveryServer) {
  // The max-deficit assignment must leave no server empty; an empty
  // server sits below the idle threshold and spams serverIdle
  // triggers, ruining steady-state benchmarks.
  for (int size : {19, 100, 250, 1000}) {
    auto landscape = GenerateLandscape(MakeScaleSpec(size));
    ASSERT_TRUE(landscape.ok()) << landscape.status();
    std::set<std::string> hosts;
    for (const auto& [service, server] : landscape->initial_allocation) {
      hosts.insert(server);
    }
    EXPECT_EQ(hosts.size(), landscape->servers.size()) << size;
  }
}

TEST(LandscapeGenTest, PoolsBecomeIndexPools) {
  auto landscape = GenerateLandscape(MakeScaleSpec(100));
  ASSERT_TRUE(landscape.ok()) << landscape.status();
  Cluster cluster;
  ASSERT_TRUE(landscape->Build(&cluster, nullptr).ok());
  const infra::LandscapeIndex& index = cluster.Index();
  ASSERT_EQ(index.num_pools(), 3u);
  size_t pooled = 0;
  for (int32_t pool = 0; pool < 3; ++pool) {
    pooled += index.ServersInPool(pool).size();
  }
  EXPECT_EQ(pooled, 100u);
}

TEST(LandscapeGenTest, InstancesLandOnDistinctServersOfOnePool) {
  auto landscape = GenerateLandscape(MakeScaleSpec(100));
  ASSERT_TRUE(landscape.ok()) << landscape.status();
  std::map<std::string, std::set<std::string>> servers_of;
  for (const auto& [service, server] : landscape->initial_allocation) {
    EXPECT_TRUE(servers_of[service].insert(server).second)
        << service << " placed twice on " << server;
  }
  for (const auto& [service, servers] : servers_of) {
    EXPECT_EQ(servers.size(), 2u) << service;
    std::set<std::string> categories;
    for (const auto& name : servers) {
      categories.insert(name.substr(0, name.rfind('-')));
    }
    EXPECT_EQ(categories.size(), 1u)
        << service << " spans pools";
  }
}

TEST(LandscapeGenTest, XmlRoundTripRebuilds) {
  auto landscape = GenerateLandscape(MakeScaleSpec(50));
  ASSERT_TRUE(landscape.ok()) << landscape.status();
  auto doc = xml::Document::Parse(ToXmlString(*landscape));
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto reparsed = Landscape::FromXml(*doc->root());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(ToXmlString(*reparsed), ToXmlString(*landscape));
  // The hourly day profile survives with its points intact.
  SimTime probe = SimTime::Start() + Duration::Minutes(90);
  EXPECT_DOUBLE_EQ(reparsed->demand[0].pattern.Activity(probe),
                   landscape->demand[0].pattern.Activity(probe));
}

TEST(LandscapeGenTest, RejectsBadSpecs) {
  LandscapeGenSpec spec;
  EXPECT_FALSE(GenerateLandscape(spec).ok());  // no pools

  spec.pools.push_back(PoolGenSpec{"pool-a", 4});
  spec.num_services = 0;
  EXPECT_FALSE(GenerateLandscape(spec).ok());  // no services

  spec.num_services = 2;
  spec.instances_per_service = 8;  // more than the pool has servers
  EXPECT_FALSE(GenerateLandscape(spec).ok());

  spec.instances_per_service = 2;
  spec.target_load = 0.9;  // above the overload threshold
  EXPECT_FALSE(GenerateLandscape(spec).ok());
}

}  // namespace
}  // namespace autoglobe
