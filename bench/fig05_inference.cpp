// Reproduces Figure 5 and the worked example of Section 3: the
// max-min inference result for the output variable scaleUp given the
// paper's sample rules and measurements (CPU load l = 0.9, a
// performance index fuzzifying to low 0 / medium 0.6 / high 0.3).
// Expected crisp results: scale-up applicable to 0.6, scale-out to
// 0.3 — "the controller will favor the scale-up action".

#include <cstdio>

#include "common/logging.h"
#include "fuzzy/inference.h"

using namespace autoglobe::fuzzy;

int main() {
  RuleBase rb("paper-section3");
  AG_CHECK_OK(rb.AddVariable(LinguisticVariable::StandardLoad("cpuLoad")));
  LinguisticVariable perf("performanceIndex", 0.0, 10.0);
  AG_CHECK_OK(perf.AddTerm(
      "low", MembershipFunction::Trapezoid(0, 0, 2, 4).value()));
  AG_CHECK_OK(
      perf.AddTerm("medium", MembershipFunction::Triangle(3, 5, 7).value()));
  AG_CHECK_OK(
      perf.AddTerm("high", MembershipFunction::RampUp(5.2, 7.2).value()));
  AG_CHECK_OK(rb.AddVariable(std::move(perf)));
  AG_CHECK_OK(rb.AddVariable(LinguisticVariable::RampOutput("scaleUp")));
  AG_CHECK_OK(rb.AddVariable(LinguisticVariable::RampOutput("scaleOut")));
  AG_CHECK_OK(rb.AddRulesFromText(
      "IF cpuLoad IS high AND (performanceIndex IS low OR "
      "performanceIndex IS medium) THEN scaleUp IS applicable\n"
      "IF cpuLoad IS high AND performanceIndex IS high "
      "THEN scaleOut IS applicable\n"));

  Inputs inputs = {{"cpuLoad", 0.9}, {"performanceIndex", 5.8}};
  InferenceEngine engine(Defuzzifier::kLeftmostMax);
  auto outputs = engine.Infer(rb, inputs);
  AG_CHECK_OK(outputs.status());

  std::printf("# Figure 5: max-min inference result for scaleUp\n");
  std::printf("# inputs: cpuLoad=0.9 -> mu_high=0.8; performanceIndex -> "
              "(low 0, medium 0.6, high 0.3)\n");
  std::printf("applicability,mu_clipped\n");
  const AggregatedSet& set = outputs->at("scaleUp").set;
  std::vector<double> samples = set.Sample(50);
  for (size_t i = 0; i < samples.size(); ++i) {
    std::printf("%.2f,%.3f\n", static_cast<double>(i) / 50.0, samples[i]);
  }

  std::printf("\n# Defuzzified crisp action applicabilities:\n");
  std::printf("# scaleUp  = %.2f (paper: 0.60)\n",
              outputs->at("scaleUp").crisp);
  std::printf("# scaleOut = %.2f (paper: 0.30)\n",
              outputs->at("scaleOut").crisp);
  std::printf("# favored action: %s (paper: scale-up)\n",
              outputs->at("scaleUp").crisp > outputs->at("scaleOut").crisp
                  ? "scaleUp"
                  : "scaleOut");
  return 0;
}
