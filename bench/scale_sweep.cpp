// Hyperscale sweep: generated landscapes from 19 to 10,000 servers
// run through the full closed loop (demand ticks, monitoring feeds,
// dirty-subject trigger evaluation, pool-prescreened controller) with
// a *fixed* number of active services — the regime where per-tick
// cost must track activity, not fleet size. Emits BENCH_scale.json
// with sim-minutes/sec, steady-state allocations per tick (gated at
// zero in CI), trigger evaluations vs skips per tick (the
// sublinearity evidence), per-tick wall latency, and an RSS estimate.
//
//   ./scale_sweep [--max-servers N]   (default sweeps 19/100/1k/10k)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "autoglobe/landscape_gen.h"
#include "autoglobe/runner.h"
#include "bench_report.h"
#include "common/logging.h"

// Counts every global allocation in this binary so the steady-state
// window can assert "zero heap allocations per tick" as a measured
// counter instead of a claim (same pattern as micro_sim).
static std::atomic<uint64_t> g_heap_allocs{0};

// The replaced operator new allocates with malloc, so releasing with
// free is the matched pair here; GCC cannot see that and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace autoglobe;

// Parses a VmRSS/VmHWM line ("VmRSS:   123456 kB") into megabytes.
double ProcStatusMb(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof line, file) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      mb = std::atof(line + field_len + 1) / 1024.0;
      break;
    }
  }
  std::fclose(file);
  return mb;
}

bench::BenchRecord SweepOne(int num_servers) {
  LandscapeGenSpec spec = MakeScaleSpec(num_servers);
  auto landscape = GenerateLandscape(spec);
  AG_CHECK_OK(landscape.status());

  RunnerConfig config;
  config.tick = Duration::Minutes(1);
  config.duration = Duration::Hours(4);
  config.seed = 42;
  // Zero fluctuation + zero demand noise keep inactive services
  // bitwise-constant, so only the fixed active set dirties per tick.
  config.fluctuation_per_minute = 0.0;
  // One-hour retention bounds each subject's raw ring: ten thousand
  // servers of archive fit a laptop instead of needing the default
  // 48 h history nobody reads in a sweep.
  config.archive_retention = Duration::Hours(1);
  config.archive_bucket = Duration::Minutes(15);
  config.controller.pool_prescreen = true;

  auto runner = SimulationRunner::Create(*landscape, config);
  AG_CHECK_OK(runner.status());

  // Warm up past the retention horizon so ring eviction (the true
  // steady state) is active before measurement starts.
  const Duration warmup = Duration::Minutes(70);
  AG_CHECK_OK((*runner)->RunUntil(SimTime::Start() + warmup));

  const int64_t ticks = 120;
  const monitor::LoadMonitoringSystem& mon = (*runner)->monitoring();
  int64_t evals0 = mon.evaluations();
  int64_t skips0 = mon.skips();
  uint64_t allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
  bench::WallTimer timer;
  AG_CHECK_OK((*runner)->RunUntil(SimTime::Start() + warmup +
                                  Duration::Minutes(ticks)));
  double seconds = timer.Seconds();
  uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs0;

  const double n_ticks = static_cast<double>(ticks);
  bench::BenchRecord record;
  record.name = "scale_sweep/" + std::to_string(num_servers);
  record.wall_seconds = seconds;
  record.items_per_second = n_ticks / seconds;  // sim-minutes per second
  record.extra["servers"] = static_cast<double>(num_servers);
  record.extra["services"] = static_cast<double>(spec.num_services);
  record.extra["active_services"] =
      static_cast<double>(spec.active_services);
  record.extra["ticks"] = n_ticks;
  record.extra["allocs_per_tick"] = static_cast<double>(allocs) / n_ticks;
  record.extra["evals_per_tick"] =
      static_cast<double>(mon.evaluations() - evals0) / n_ticks;
  record.extra["skips_per_tick"] =
      static_cast<double>(mon.skips() - skips0) / n_ticks;
  record.extra["tick_micros"] = seconds / n_ticks * 1e6;
  record.extra["triggers"] =
      static_cast<double>((*runner)->metrics().triggers);
  record.extra["vm_rss_mb"] = ProcStatusMb("VmRSS:");
  record.extra["vm_hwm_mb"] = ProcStatusMb("VmHWM:");
  std::printf(
      "%-18s %8.1f sim-min/s  tick %8.1f us  evals/tick %7.1f  "
      "skips/tick %8.1f  allocs/tick %6.2f  rss %7.1f MB\n",
      record.name.c_str(), record.items_per_second,
      record.extra["tick_micros"], record.extra["evals_per_tick"],
      record.extra["skips_per_tick"], record.extra["allocs_per_tick"],
      record.extra["vm_rss_mb"]);
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  int max_servers = 10000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-servers") == 0 && i + 1 < argc) {
      max_servers = std::atoi(argv[++i]);
    }
  }
  std::vector<bench::BenchRecord> records;
  for (int size : {19, 100, 1000, 10000}) {
    if (size > max_servers) break;
    records.push_back(SweepOne(size));
  }
  bench::WriteBenchJson("BENCH_scale.json", records);
  return 0;
}
