#include "autoglobe/capacity.h"

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

TEST(ScenarioConfigTest, MapsScenariosToControllerAndDistribution) {
  RunnerConfig s = MakeScenarioConfig(Scenario::kStatic, 1.0);
  EXPECT_FALSE(s.controller_enabled);
  EXPECT_EQ(s.distribution, workload::UserDistribution::kStickySessions);

  RunnerConfig cm = MakeScenarioConfig(Scenario::kConstrainedMobility, 1.1);
  EXPECT_TRUE(cm.controller_enabled);
  EXPECT_EQ(cm.distribution, workload::UserDistribution::kStickySessions);
  EXPECT_DOUBLE_EQ(cm.user_scale, 1.1);

  RunnerConfig fm = MakeScenarioConfig(Scenario::kFullMobility, 1.35);
  EXPECT_TRUE(fm.controller_enabled);
  EXPECT_EQ(fm.distribution,
            workload::UserDistribution::kDynamicRedistribution);
}

TEST(ScenarioConfigTest, PaperParameterDefaults) {
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
  // §5.1: 70 % overload threshold, 10-min watchTime, 30-min
  // protection, idle 12.5 %/PI after 20 min.
  EXPECT_DOUBLE_EQ(config.monitor.overload_threshold, 0.70);
  EXPECT_EQ(config.monitor.overload_watch_time, Duration::Minutes(10));
  EXPECT_DOUBLE_EQ(config.monitor.idle_threshold_base, 0.125);
  EXPECT_EQ(config.monitor.idle_watch_time, Duration::Minutes(20));
  EXPECT_EQ(config.executor.protection_time, Duration::Minutes(30));
  EXPECT_EQ(config.duration, Duration::Hours(80));
}

TEST(CapacityTest, PassesAppliesBothCriteria) {
  AcceptanceCriteria criteria;
  criteria.max_overload_streak_minutes = 30;
  criteria.max_overload_fraction = 0.01;
  RunMetrics good;
  good.max_overload_streak_minutes = 10;
  good.overload_fraction = 0.005;
  EXPECT_TRUE(Passes(good, criteria));
  RunMetrics long_streak = good;
  long_streak.max_overload_streak_minutes = 31;
  EXPECT_FALSE(Passes(long_streak, criteria));
  RunMetrics chronic = good;
  chronic.overload_fraction = 0.02;
  EXPECT_FALSE(Passes(chronic, criteria));
}

TEST(CapacityTest, SweepStopsAtFirstFailure) {
  CapacityOptions options;
  options.start_scale = 1.0;
  options.step = 0.2;
  options.max_scale = 2.0;
  options.run_duration = Duration::Hours(30);
  options.warmup = Duration::Hours(6);
  auto result = FindCapacity(Scenario::kStatic, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Steps end with exactly one failing entry (or run to max_scale).
  ASSERT_FALSE(result->steps.empty());
  for (size_t i = 0; i + 1 < result->steps.size(); ++i) {
    EXPECT_TRUE(result->steps[i].passed);
  }
  if (!result->steps.back().passed) {
    EXPECT_NEAR(result->max_scale,
                result->steps.back().scale - options.step, 1e-9);
  }
}

// Bit-identical equality of every RunMetrics field — EXPECT_EQ on
// doubles is exact, which is the point: parallel sweeps must not
// perturb results at all.
void ExpectSameMetrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.overload_server_minutes, b.overload_server_minutes);
  EXPECT_EQ(a.max_overload_streak_minutes, b.max_overload_streak_minutes);
  EXPECT_EQ(a.overload_fraction, b.overload_fraction);
  EXPECT_EQ(a.lost_work_wu, b.lost_work_wu);
  EXPECT_EQ(a.average_cpu_load, b.average_cpu_load);
  EXPECT_EQ(a.triggers, b.triggers);
  EXPECT_EQ(a.actions_executed, b.actions_executed);
  EXPECT_EQ(a.actions_failed, b.actions_failed);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.failures_remedied, b.failures_remedied);
  EXPECT_EQ(a.sla_violation_minutes, b.sla_violation_minutes);
}

void ExpectSameResult(const CapacityResult& a, const CapacityResult& b) {
  EXPECT_EQ(a.scenario, b.scenario);
  EXPECT_EQ(a.max_scale, b.max_scale);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].scale, b.steps[i].scale);
    EXPECT_EQ(a.steps[i].passed, b.steps[i].passed);
    ExpectSameMetrics(a.steps[i].metrics, b.steps[i].metrics);
  }
}

CapacityOptions ShortSweepOptions() {
  CapacityOptions options;
  options.start_scale = 1.0;
  options.step = 0.25;
  options.max_scale = 1.5;
  options.run_duration = Duration::Hours(8);
  options.warmup = Duration::Hours(2);
  // Non-zero stride so per-step seed derivation is exercised too.
  options.seed_stride = 7;
  return options;
}

TEST(CapacityTest, SweepScalesCoverStartToMaxInclusive) {
  CapacityOptions options;
  options.start_scale = 1.0;
  options.step = 0.05;
  options.max_scale = 1.2;
  std::vector<double> scales = SweepScales(options);
  ASSERT_EQ(scales.size(), 5u);
  EXPECT_NEAR(scales.front(), 1.0, 1e-12);
  EXPECT_NEAR(scales.back(), 1.2, 1e-9);
}

TEST(CapacityTest, SweepScalesDoNotDriftOverLongSweeps) {
  // Regression: the old `scale += step` accumulation drifted after
  // ~100 additions of an inexact step, occasionally dropping (or
  // duplicating) the final scale. The multiply form keeps every scale
  // exact-as-computed from the index.
  CapacityOptions options;
  options.start_scale = 1.0;
  options.step = 0.01;
  options.max_scale = 2.0;
  std::vector<double> scales = SweepScales(options);
  ASSERT_EQ(scales.size(), 101u);
  EXPECT_DOUBLE_EQ(scales.front(), 1.0);
  EXPECT_DOUBLE_EQ(scales.back(), 2.0);
  for (size_t i = 0; i < scales.size(); ++i) {
    EXPECT_DOUBLE_EQ(scales[i], 1.0 + static_cast<double>(i) * 0.01)
        << "index " << i;
  }
}

TEST(CapacityTest, StepSeedIsAPureFunctionOfIndex) {
  CapacityOptions options;
  options.seed = 42;
  EXPECT_EQ(StepSeed(options, 0), 42u);
  EXPECT_EQ(StepSeed(options, 3), 42u);  // stride 0: common random numbers
  options.seed_stride = 1000;
  EXPECT_EQ(StepSeed(options, 0), 42u);
  EXPECT_EQ(StepSeed(options, 3), 3042u);
}

// The determinism contract of the tentpole: a parallel sweep must be
// bit-identical to the sequential one at any thread count.
TEST(CapacityTest, ParallelSweepMatchesSequentialBitIdentically) {
  CapacityOptions sequential_options = ShortSweepOptions();
  sequential_options.parallelism = 1;
  auto sequential =
      FindCapacity(Scenario::kConstrainedMobility, sequential_options);
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  for (int parallelism : {2, 4}) {
    CapacityOptions parallel_options = ShortSweepOptions();
    parallel_options.parallelism = parallelism;
    auto parallel =
        FindCapacity(Scenario::kConstrainedMobility, parallel_options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectSameResult(*sequential, *parallel);
  }
}

// The batched static sweep rides BatchRunner lanes; its steps and
// verdict must be bit-identical to the scalar sweep at any lane
// width (including widths that leave a padded tail chunk).
TEST(CapacityTest, BatchedStaticSweepMatchesScalarBitIdentically) {
  CapacityOptions scalar_options = ShortSweepOptions();
  auto scalar = FindCapacity(Scenario::kStatic, scalar_options);
  ASSERT_TRUE(scalar.ok()) << scalar.status();

  for (size_t lanes : {2u, 3u, 64u}) {
    CapacityOptions batched_options = ShortSweepOptions();
    batched_options.batch_lanes = lanes;
    auto batched = FindCapacity(Scenario::kStatic, batched_options);
    ASSERT_TRUE(batched.ok()) << batched.status();
    SCOPED_TRACE(::testing::Message() << "batch_lanes " << lanes);
    ExpectSameResult(*scalar, *batched);
  }

  // Controller-enabled scenarios are not batch-eligible; the option
  // must fall through to the scalar path, not fail.
  CapacityOptions cm_options = ShortSweepOptions();
  cm_options.batch_lanes = 64;
  auto cm = FindCapacity(Scenario::kConstrainedMobility, cm_options);
  ASSERT_TRUE(cm.ok()) << cm.status();
  cm_options.batch_lanes = 0;
  auto cm_scalar = FindCapacity(Scenario::kConstrainedMobility, cm_options);
  ASSERT_TRUE(cm_scalar.ok()) << cm_scalar.status();
  ExpectSameResult(*cm_scalar, *cm);
}

TEST(CapacityTest, FindCapacityAllBatchedMatchesScalar) {
  CapacityOptions options = ShortSweepOptions();
  options.run_duration = Duration::Hours(6);
  options.parallelism = 4;
  auto scalar = FindCapacityAll(options);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  options.batch_lanes = 8;
  auto batched = FindCapacityAll(options);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    SCOPED_TRACE(::testing::Message() << "scenario " << i);
    ExpectSameResult((*scalar)[i], (*batched)[i]);
  }
}

TEST(CapacityTest, FindCapacityAllMatchesPerScenarioSweeps) {
  CapacityOptions options = ShortSweepOptions();
  options.run_duration = Duration::Hours(6);
  options.parallelism = 4;
  auto all = FindCapacityAll(options);
  ASSERT_TRUE(all.ok()) << all.status();
  ASSERT_EQ(all->size(), 3u);

  const Scenario scenarios[] = {Scenario::kStatic,
                                Scenario::kConstrainedMobility,
                                Scenario::kFullMobility};
  options.parallelism = 1;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*all)[i].scenario, scenarios[i]);
    auto single = FindCapacity(scenarios[i], options);
    ASSERT_TRUE(single.ok()) << single.status();
    ExpectSameResult(*single, (*all)[i]);
  }
}

// The headline reproduction (Table 7): the static landscape handles
// exactly the dimensioned users, constrained mobility adds roughly
// 15 %, full mobility roughly 35 %. Shortened runs (48 h) keep the
// test fast; the bench reproduces the full 80 h protocol.
TEST(CapacityTest, Table7OrderingHolds) {
  CapacityOptions options;
  options.run_duration = Duration::Hours(48);
  auto static_result = FindCapacity(Scenario::kStatic, options);
  auto cm_result = FindCapacity(Scenario::kConstrainedMobility, options);
  auto fm_result = FindCapacity(Scenario::kFullMobility, options);
  ASSERT_TRUE(static_result.ok()) << static_result.status();
  ASSERT_TRUE(cm_result.ok()) << cm_result.status();
  ASSERT_TRUE(fm_result.ok()) << fm_result.status();

  // Row 1: the static landscape is sized for exactly 100 %.
  EXPECT_NEAR(static_result->max_scale, 1.00, 1e-9);
  // Shape: static < CM < FM, with meaningful margins.
  EXPECT_GE(cm_result->max_scale, static_result->max_scale + 0.10 - 1e-9);
  EXPECT_GE(fm_result->max_scale, cm_result->max_scale + 0.10 - 1e-9);
  // Bands around the paper's 115 % / 135 %.
  EXPECT_GE(cm_result->max_scale, 1.10 - 1e-9);
  EXPECT_LE(cm_result->max_scale, 1.25 + 1e-9);
  EXPECT_GE(fm_result->max_scale, 1.30 - 1e-9);
  EXPECT_LE(fm_result->max_scale, 1.45 + 1e-9);
}

}  // namespace
}  // namespace autoglobe
