#include "common/thread_pool.h"

#include <algorithm>

namespace autoglobe {

ThreadPool::ThreadPool(size_t threads) {
  size_t count = std::max<size_t>(1, threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain remaining tasks even when stopping, so tasks submitted
      // before destruction always run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace autoglobe
