#include "common/fileio.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>

#include "common/strings.h"

namespace autoglobe {

namespace {

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::IoError(
      StrFormat("%s %s: %s", op, path.c_str(), strerror(errno)));
}

/// fsync on a directory fd makes the rename itself durable. Some
/// filesystems refuse to fsync a directory; that is not a torn-file
/// risk, so those errors are ignored.
void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  std::string dir = ParentDir(path);
  std::string tmp =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("open", tmp);

  const char* cursor = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    ssize_t wrote = ::write(fd, cursor, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    cursor += wrote;
    left -= static_cast<size_t>(wrote);
  }
  if (::fsync(fd) != 0) {
    Status status = ErrnoStatus("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    Status status = ErrnoStatus("close", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = ErrnoStatus("rename", path);
    ::unlink(tmp.c_str());
    return status;
  }
  SyncDir(dir);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  std::string out;
  char buffer[1 << 16];
  for (;;) {
    ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoStatus("read", path);
      ::close(fd);
      return status;
    }
    if (got == 0) break;
    out.append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  return out;
}

Status MakeDirectories(const std::string& path) {
  if (path.empty()) return Status::OK();
  std::string partial;
  size_t start = 0;
  if (path[0] == '/') partial = "/";
  while (start < path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) {
      partial.append(path, start, slash - start);
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return ErrnoStatus("mkdir", partial);
      }
      partial.push_back('/');
    }
    start = slash + 1;
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return ErrnoStatus("opendir", path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoStatus("unlink", path);
  }
  return Status::OK();
}

}  // namespace autoglobe
