#include "strategy/strategy.h"

#include "common/strings.h"
#include "strategy/proportional.h"
#include "strategy/qlearn.h"

namespace autoglobe::strategy {

std::string_view StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kStaticFuzzy:
      return "static-fuzzy";
    case StrategyKind::kProportionalThreshold:
      return "proportional-threshold";
    case StrategyKind::kFuzzyQLearning:
      return "fuzzy-qlearning";
  }
  return "unknown";
}

Result<StrategyKind> ParseStrategyKind(std::string_view name) {
  if (name == "static-fuzzy" || name == "static") {
    return StrategyKind::kStaticFuzzy;
  }
  if (name == "proportional-threshold" || name == "proportional") {
    return StrategyKind::kProportionalThreshold;
  }
  if (name == "fuzzy-qlearning" || name == "qlearn") {
    return StrategyKind::kFuzzyQLearning;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown strategy \"%.*s\" (want static-fuzzy, "
      "proportional-threshold, or fuzzy-qlearning)",
      static_cast<int>(name.size()), name.data()));
}

Result<StrategyConfig> StrategyConfigFromXml(const xml::Element& root) {
  if (root.name() != "strategy") {
    return Status::InvalidArgument(StrFormat(
        "expected <strategy>, got <%s>", root.name().c_str()));
  }
  StrategyConfig config;
  AG_ASSIGN_OR_RETURN(
      config.kind,
      ParseStrategyKind(root.AttributeOr("kind", "static-fuzzy")));
  config.load_weights_path =
      std::string(root.AttributeOr("loadWeights", ""));
  config.save_weights_path =
      std::string(root.AttributeOr("saveWeights", ""));
  if (const xml::Element* p = root.FindChild("proportional")) {
    AG_ASSIGN_OR_RETURN(
        config.proportional.target_load,
        p->DoubleAttributeOr("targetLoad", config.proportional.target_load));
    AG_ASSIGN_OR_RETURN(
        config.proportional.high_water,
        p->DoubleAttributeOr("highWater", config.proportional.high_water));
    AG_ASSIGN_OR_RETURN(
        config.proportional.low_water,
        p->DoubleAttributeOr("lowWater", config.proportional.low_water));
    AG_ASSIGN_OR_RETURN(long long step,
                        p->IntAttributeOr("maxStep",
                                          config.proportional.max_step));
    config.proportional.max_step = static_cast<int>(step);
  }
  if (const xml::Element* q = root.FindChild("qlearn")) {
    AG_ASSIGN_OR_RETURN(
        config.qlearn.learning_rate,
        q->DoubleAttributeOr("learningRate", config.qlearn.learning_rate));
    AG_ASSIGN_OR_RETURN(
        config.qlearn.epsilon,
        q->DoubleAttributeOr("epsilon", config.qlearn.epsilon));
    AG_ASSIGN_OR_RETURN(
        config.qlearn.epsilon_decay,
        q->DoubleAttributeOr("epsilonDecay", config.qlearn.epsilon_decay));
    AG_ASSIGN_OR_RETURN(
        config.qlearn.epsilon_min,
        q->DoubleAttributeOr("epsilonMin", config.qlearn.epsilon_min));
    AG_ASSIGN_OR_RETURN(config.qlearn.step,
                        q->DoubleAttributeOr("step", config.qlearn.step));
    AG_ASSIGN_OR_RETURN(
        config.qlearn.min_weight,
        q->DoubleAttributeOr("minWeight", config.qlearn.min_weight));
    AG_ASSIGN_OR_RETURN(
        config.qlearn.max_weight,
        q->DoubleAttributeOr("maxWeight", config.qlearn.max_weight));
    AG_ASSIGN_OR_RETURN(
        long long seed,
        q->IntAttributeOr("seed",
                          static_cast<long long>(config.qlearn.seed)));
    config.qlearn.seed = static_cast<uint64_t>(seed);
  }
  return config;
}

void StrategyConfigToXml(const StrategyConfig& config, xml::Element* out) {
  out->SetAttribute("kind", std::string(StrategyKindName(config.kind)));
  if (!config.load_weights_path.empty()) {
    out->SetAttribute("loadWeights", config.load_weights_path);
  }
  if (!config.save_weights_path.empty()) {
    out->SetAttribute("saveWeights", config.save_weights_path);
  }
  xml::Element* p = out->AddChild("proportional");
  p->SetAttribute("targetLoad",
                  StrFormat("%.17g", config.proportional.target_load));
  p->SetAttribute("highWater",
                  StrFormat("%.17g", config.proportional.high_water));
  p->SetAttribute("lowWater",
                  StrFormat("%.17g", config.proportional.low_water));
  p->SetAttribute("maxStep",
                  StrFormat("%d", config.proportional.max_step));
  xml::Element* q = out->AddChild("qlearn");
  q->SetAttribute("learningRate",
                  StrFormat("%.17g", config.qlearn.learning_rate));
  q->SetAttribute("epsilon", StrFormat("%.17g", config.qlearn.epsilon));
  q->SetAttribute("epsilonDecay",
                  StrFormat("%.17g", config.qlearn.epsilon_decay));
  q->SetAttribute("epsilonMin",
                  StrFormat("%.17g", config.qlearn.epsilon_min));
  q->SetAttribute("step", StrFormat("%.17g", config.qlearn.step));
  q->SetAttribute("minWeight",
                  StrFormat("%.17g", config.qlearn.min_weight));
  q->SetAttribute("maxWeight",
                  StrFormat("%.17g", config.qlearn.max_weight));
  q->SetAttribute("seed",
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                config.qlearn.seed)));
}

Status ControllerStrategy::SaveWeights(const std::string& path) const {
  (void)path;
  return Status::FailedPrecondition(StrFormat(
      "strategy %.*s has no learned weights",
      static_cast<int>(name().size()), name().data()));
}

Status ControllerStrategy::LoadWeights(const std::string& path) {
  (void)path;
  return Status::FailedPrecondition(StrFormat(
      "strategy %.*s has no learned weights",
      static_cast<int>(name().size()), name().data()));
}

namespace {

/// (a): the paper's controller, untouched. The wrapper adds one
/// virtual call — every rule base, verification step and audit path
/// is the existing Controller's, so runs selecting this strategy stay
/// bit-identical to the pre-strategy engine.
class StaticFuzzyStrategy : public ControllerStrategy {
 public:
  explicit StaticFuzzyStrategy(controller::Controller* controller)
      : controller_(controller) {}

  StrategyKind kind() const override { return StrategyKind::kStaticFuzzy; }

  Result<controller::ControllerOutcome> HandleTrigger(
      const monitor::Trigger& trigger, bool urgent) override {
    return controller_->HandleTrigger(trigger, urgent);
  }

 private:
  controller::Controller* controller_;
};

}  // namespace

Result<std::unique_ptr<ControllerStrategy>> MakeStrategy(
    const StrategyConfig& config, const StrategyEnv& env) {
  if (env.controller == nullptr) {
    return Status::InvalidArgument("strategy env needs a controller");
  }
  env.controller->set_strategy_label(
      std::string(StrategyKindName(config.kind)));
  std::unique_ptr<ControllerStrategy> strategy;
  switch (config.kind) {
    case StrategyKind::kStaticFuzzy:
      strategy = std::make_unique<StaticFuzzyStrategy>(env.controller);
      break;
    case StrategyKind::kProportionalThreshold: {
      if (env.cluster == nullptr || env.executor == nullptr ||
          env.view == nullptr) {
        return Status::InvalidArgument(
            "proportional strategy needs cluster, executor, and view");
      }
      strategy = std::make_unique<ProportionalThresholdStrategy>(
          config.proportional, env);
      break;
    }
    case StrategyKind::kFuzzyQLearning: {
      AG_ASSIGN_OR_RETURN(
          auto learner, FuzzyQLearningStrategy::Create(config.qlearn, env));
      strategy = std::move(learner);
      break;
    }
  }
  if (!config.load_weights_path.empty()) {
    AG_RETURN_IF_ERROR(strategy->LoadWeights(config.load_weights_path));
  }
  return strategy;
}

}  // namespace autoglobe::strategy
