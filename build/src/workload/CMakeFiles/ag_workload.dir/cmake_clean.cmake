file(REMOVE_RECURSE
  "CMakeFiles/ag_workload.dir/demand.cc.o"
  "CMakeFiles/ag_workload.dir/demand.cc.o.d"
  "CMakeFiles/ag_workload.dir/load_pattern.cc.o"
  "CMakeFiles/ag_workload.dir/load_pattern.cc.o.d"
  "libag_workload.a"
  "libag_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
