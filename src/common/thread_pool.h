#ifndef AUTOGLOBE_COMMON_THREAD_POOL_H_
#define AUTOGLOBE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace autoglobe {

/// Single-use countdown latch: Wait() returns once CountDown() has
/// been called `count` times. (std::latch equivalent, kept local so
/// the pool has no dependency surface beyond <thread>.)
class Latch {
 public:
  explicit Latch(size_t count) : remaining_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t remaining_;
};

/// Fixed-size worker pool for running independent simulation runs
/// concurrently. The pool itself imposes no ordering; deterministic
/// result ordering comes from ParallelMap/ParallelFor writing each
/// result into its index slot, so callers see results in submission
/// order regardless of which worker finished first.
///
/// Tasks must not throw (the codebase is Status-based and built
/// without exception plumbing in the workers).
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t threads);
  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may
  /// report 0 on exotic platforms).
  static size_t DefaultThreadCount();

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(0) .. fn(n-1) on the pool and blocks until all are done.
  /// Indices are dispatched in order, so with thread_count() == 1 the
  /// execution order is exactly sequential.
  template <typename Fn>
  void ParallelFor(size_t n, Fn&& fn) {
    if (n == 0) return;
    Latch latch(n);
    for (size_t i = 0; i < n; ++i) {
      Submit([&fn, &latch, i] {
        fn(i);
        latch.CountDown();
      });
    }
    latch.Wait();
  }

  /// ParallelFor that collects fn(i) into slot i of the returned
  /// vector — deterministic ordering independent of thread count.
  /// The result type must be default-constructible (wrap in
  /// std::optional otherwise).
  template <typename Fn>
  auto ParallelMap(size_t n, Fn&& fn)
      -> std::vector<decltype(fn(size_t{0}))> {
    std::vector<decltype(fn(size_t{0}))> results(n);
    ParallelFor(n, [&results, &fn](size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable idle_cv_;   // Wait(): everything finished
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // popped but not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace autoglobe

#endif  // AUTOGLOBE_COMMON_THREAD_POOL_H_
