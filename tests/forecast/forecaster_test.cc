#include "forecast/forecaster.h"

#include <cmath>

#include <gtest/gtest.h>

namespace autoglobe::forecast {
namespace {

using monitor::LoadArchive;

/// Synthetic daily load: low at night, a single midday bump.
double DailyLoad(SimTime t) {
  double h = t.DayFraction() * 24.0;
  double d = (h - 12.0) / 3.0;
  return 0.1 + 0.7 * std::exp(-0.5 * d * d);
}

/// Fills the archive with `days` days of the daily pattern at 5-min
/// resolution.
void FillArchive(LoadArchive* archive, const std::string& key, int days) {
  for (int64_t s = 0; s <= days * 86400; s += 300) {
    SimTime t = SimTime::FromSeconds(s);
    ASSERT_TRUE(archive->Append(key, t, DailyLoad(t)).ok());
  }
}

TEST(ForecasterTest, NoHistoryAtAllIsAnError) {
  LoadArchive archive;
  LoadForecaster forecaster(&archive);
  EXPECT_FALSE(forecaster.Forecast("server/x", SimTime::Start()).ok());
}

TEST(ForecasterTest, FirstDayFallsBackToLatestMeasurement) {
  LoadArchive archive;
  ASSERT_TRUE(archive.Append("k", SimTime::FromSeconds(600), 0.42).ok());
  LoadForecaster forecaster(&archive);
  auto forecast = forecaster.Forecast("k", SimTime::FromSeconds(600));
  ASSERT_TRUE(forecast.ok());
  EXPECT_DOUBLE_EQ(*forecast, 0.42);
}

TEST(ForecasterTest, PredictsTheDailyPatternAhead) {
  LoadArchive archive;
  FillArchive(&archive, "k", 5);
  // Continue appending through day 5 until 10:00 so "latest" matches
  // the forecasting instant.
  SimTime now = SimTime::Start() + Duration::Days(5) + Duration::Hours(10);
  for (int64_t s = 5 * 86400 + 300; s <= now.seconds(); s += 300) {
    SimTime t = SimTime::FromSeconds(s);
    ASSERT_TRUE(archive.Append("k", t, DailyLoad(t)).ok());
  }
  ForecastConfig config;
  config.horizon = Duration::Hours(2);
  LoadForecaster forecaster(&archive, config);
  // At 10:00 on day 5, the 2-hour-ahead forecast must anticipate the
  // midday bump even though the current load is still moderate.
  auto forecast = forecaster.Forecast("k", now);
  ASSERT_TRUE(forecast.ok()) << forecast.status();
  double actual_at_noon = DailyLoad(now + Duration::Hours(2));
  double current = DailyLoad(now);
  EXPECT_GT(*forecast, current + 0.05);  // sees the rise coming
  EXPECT_NEAR(*forecast, config.pattern_weight * actual_at_noon +
                             (1 - config.pattern_weight) * current,
              0.08);
}

TEST(ForecasterTest, ForecastBeatsNaiveLastValueOnPeriodicLoad) {
  LoadArchive archive;
  FillArchive(&archive, "k", 5);
  ForecastConfig config;
  config.horizon = Duration::Hours(1);
  LoadForecaster forecaster(&archive, config);
  double forecast_err = 0;
  double naive_err = 0;
  int samples = 0;
  // Walk through day 5, appending measurements as simulated time
  // passes and forecasting one hour ahead at every step.
  for (int minute = 5; minute < 24 * 60; minute += 30) {
    SimTime now =
        SimTime::Start() + Duration::Days(5) + Duration::Minutes(minute);
    for (int64_t s = archive.RawBetween("k", now - Duration::Hours(1),
                                        now)
                         .empty()
                     ? now.seconds() - 3600
                     : now.seconds();
         s <= now.seconds(); s += 300) {
      SimTime t = SimTime::FromSeconds(s);
      if (t <= now) {
        (void)archive.Append("k", t, DailyLoad(t));
      }
    }
    auto forecast = forecaster.Forecast("k", now);
    if (!forecast.ok()) continue;
    double truth = DailyLoad(now + config.horizon);
    forecast_err += std::abs(*forecast - truth);
    naive_err += std::abs(DailyLoad(now) - truth);
    ++samples;
  }
  ASSERT_GT(samples, 20);
  EXPECT_LT(forecast_err, naive_err);
}

TEST(ForecasterTest, ExplicitHorizonOverridesConfig) {
  LoadArchive archive;
  FillArchive(&archive, "k", 3);
  LoadForecaster forecaster(&archive);
  SimTime now = SimTime::Start() + Duration::Days(3) + Duration::Hours(8);
  auto near = forecaster.ForecastAt("k", now, Duration::Minutes(15));
  auto far = forecaster.ForecastAt("k", now, Duration::Hours(4));
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  // 8:00 + 4h = noon bump; the far horizon sees a higher load.
  EXPECT_GT(*far, *near);
}

TEST(ForecasterTest, RecentDaysWeighMore) {
  LoadArchive archive;
  // Day 0: constant 0.2. Day 1: constant 0.8. Forecasting on day 2,
  // yesterday (0.8) must dominate the pattern component.
  for (int64_t s = 0; s < 86400; s += 300) {
    ASSERT_TRUE(archive.Append("k", SimTime::FromSeconds(s), 0.2).ok());
  }
  for (int64_t s = 86400; s < 2 * 86400; s += 300) {
    ASSERT_TRUE(archive.Append("k", SimTime::FromSeconds(s), 0.8).ok());
  }
  ASSERT_TRUE(
      archive.Append("k", SimTime::FromSeconds(2 * 86400), 0.8).ok());
  ForecastConfig config;
  config.pattern_weight = 1.0;  // isolate the pattern component
  LoadForecaster forecaster(&archive, config);
  auto forecast =
      forecaster.Forecast("k", SimTime::FromSeconds(2 * 86400));
  ASSERT_TRUE(forecast.ok());
  // Weighted mean of 0.8 (weight 1) and 0.2 (weight 0.7): ~0.55.
  EXPECT_GT(*forecast, 0.5);
  EXPECT_LT(*forecast, 0.8);
}

}  // namespace
}  // namespace autoglobe::forecast
