#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool joins after the queue is empty
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  pool.ParallelFor(visits.size(),
                   [&visits](size_t i) { ++visits[i]; });
  for (const std::atomic<int>& count : visits) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForWithZeroItemsReturnsImmediately) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  auto results = pool.ParallelMap(
      100, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(results.size(), 100u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPoolTest, ParallelMapOrderIndependentOfThreadCount) {
  auto work = [](size_t i) { return std::to_string(i * 31); };
  ThreadPool sequential(1);
  ThreadPool parallel(8);
  EXPECT_EQ(sequential.ParallelMap(64, work), parallel.ParallelMap(64, work));
}

TEST(ThreadPoolTest, PoolIsReusableAcrossParallelForCalls) {
  ThreadPool pool(3);
  long total = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<int> values(50, 0);
    pool.ParallelFor(values.size(), [&values](size_t i) {
      values[i] = static_cast<int>(i) + 1;
    });
    total += std::accumulate(values.begin(), values.end(), 0L);
  }
  EXPECT_EQ(total, 5L * (50 * 51 / 2));
}

TEST(ThreadPoolTest, WorkersRunConcurrently) {
  // All four tasks block until all four have started: this only
  // terminates if four workers really run at the same time (threads
  // block, so this holds even on a single-core host).
  constexpr size_t kWorkers = 4;
  ThreadPool pool(kWorkers);
  Latch all_started(kWorkers);
  pool.ParallelFor(kWorkers, [&all_started](size_t) {
    all_started.CountDown();
    all_started.Wait();
  });
}

}  // namespace
}  // namespace autoglobe
