#include "persist/runner_checkpoint.h"

#include <utility>
#include <vector>

namespace autoglobe::persist {

Result<std::string> CheckpointRunner(const SimulationRunner& runner,
                                     CheckpointStore* store) {
  std::vector<std::pair<std::string, std::string>> sections;
  AG_RETURN_IF_ERROR(runner.SaveStateSections(&sections));
  return store->Write(runner.StateFingerprint(), sections);
}

Status SaveRunnerSnapshot(const SimulationRunner& runner,
                          const std::string& path) {
  std::vector<std::pair<std::string, std::string>> sections;
  AG_RETURN_IF_ERROR(runner.SaveStateSections(&sections));
  return WriteSnapshotFile(path, runner.StateFingerprint(), sections);
}

Result<std::unique_ptr<SimulationRunner>> RestoreRunner(
    const Landscape& landscape, RunnerConfig config,
    const SnapshotData& snapshot) {
  AG_ASSIGN_OR_RETURN(std::unique_ptr<SimulationRunner> runner,
                      SimulationRunner::Create(landscape, std::move(config)));
  if (snapshot.fingerprint != runner->StateFingerprint()) {
    return Status::FailedPrecondition(
        "snapshot fingerprint does not match this landscape/config "
        "(different landscape, seed, rng plane, strategy, or fault-plan "
        "presence)");
  }
  AG_RETURN_IF_ERROR(runner->RestoreStateSections(snapshot.sections));
  return runner;
}

Result<std::unique_ptr<SimulationRunner>> RunWithCrashes(
    const Landscape& landscape, RunnerConfig config,
    const CrashPlan& plan) {
  AG_RETURN_IF_ERROR(plan.Validate());
  AG_ASSIGN_OR_RETURN(std::unique_ptr<SimulationRunner> runner,
                      SimulationRunner::Create(landscape, config));
  SimTime end = SimTime::Start() + config.duration;
  for (SimTime crash : plan.crash_at) {
    if (crash >= end) break;
    if (crash <= runner->simulator().now()) continue;
    AG_RETURN_IF_ERROR(runner->RunUntil(crash));
    // The kill: serialize through the full container codec (checksums
    // included), drop the live runner, rebuild, restore.
    std::vector<std::pair<std::string, std::string>> sections;
    AG_RETURN_IF_ERROR(runner->SaveStateSections(&sections));
    std::string image =
        EncodeSnapshot(runner->StateFingerprint(), sections);
    runner.reset();
    AG_ASSIGN_OR_RETURN(SnapshotData snapshot, DecodeSnapshot(image));
    AG_ASSIGN_OR_RETURN(runner,
                        RestoreRunner(landscape, config, snapshot));
  }
  AG_RETURN_IF_ERROR(runner->RunUntil(end));
  return runner;
}

}  // namespace autoglobe::persist
