#ifndef AUTOGLOBE_FUZZY_INFERENCE_H_
#define AUTOGLOBE_FUZZY_INFERENCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzy/linguistic.h"
#include "fuzzy/rule.h"

namespace autoglobe::fuzzy {

/// How the aggregated output fuzzy set is reduced to a crisp value.
/// The paper uses the leftmost maximum (§3); the alternatives are
/// provided for the ablation study A4.
enum class Defuzzifier {
  kLeftmostMax,
  kMeanOfMax,
  kCentroid,
};

std::string_view DefuzzifierName(Defuzzifier d);

/// The fuzzy union of clipped consequent sets for one output
/// variable: mu(x) = max_i min(mu_term_i(x), clip_i). This is the
/// max–min inference result of Figure 5.
class AggregatedSet {
 public:
  struct Part {
    MembershipFunction membership;
    double clip = 0.0;
  };

  AggregatedSet(double lo, double hi) : lo_(lo), hi_(hi) {}

  void AddClipped(const MembershipFunction& membership, double clip);

  bool empty() const { return parts_.empty(); }
  const std::vector<Part>& parts() const { return parts_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Membership grade of the union at x.
  double Eval(double x) const;

  /// Height of the set (max grade over the domain).
  double Height() const;

  /// Crisp value per the chosen defuzzifier. An empty or all-zero set
  /// defuzzifies to `lo` (nothing is applicable).
  double Defuzzify(Defuzzifier method) const;

  /// Samples the union at `n`+1 equidistant points (plot support).
  /// A non-positive `n` degenerates to the single sample at `lo`.
  std::vector<double> Sample(int n) const;

 private:
  double lo_;
  double hi_;
  std::vector<Part> parts_;
};

/// Reusable temporaries of the analytic defuzzifier, so the compiled
/// hot path stays allocation-free once the buffers have grown to
/// their steady-state capacity.
struct DefuzzScratch {
  std::vector<double> breaks;
  std::vector<double> crossings;
  std::vector<double> points;
};

/// Exact segment-wise defuzzification of the clipped union
/// mu(x) = max_i min(mu_i(x), clip_i) over [lo, hi]. All membership
/// functions are piecewise linear, so the union is piecewise linear
/// between the parts' breakpoints, their clip crossings, and the
/// pairwise intersections of their segments; centroid and mean-of-max
/// integrate those segments analytically instead of sampling
/// (kCentroid of a zero-area set — isolated singleton spikes only —
/// falls back to `lo`, like an empty set). Used by both
/// AggregatedSet::Defuzzify and CompiledRuleBase::Evaluate, which
/// therefore agree bit-for-bit.
double DefuzzifyUnion(const AggregatedSet::Part* parts, size_t count,
                      double lo, double hi, Defuzzifier method,
                      DefuzzScratch* scratch);

/// Result of one inference run: a crisp value and the aggregated set
/// per output variable.
struct InferenceOutput {
  double crisp = 0.0;
  AggregatedSet set{0.0, 1.0};
};

/// A named rule base plus the linguistic variables it speaks about —
/// the controller knowledge container (paper: "a rule base comprises
/// dozens of rules").
class RuleBase {
 public:
  explicit RuleBase(std::string name = "") : name_(std::move(name)) {}

  RuleBase(RuleBase&&) = default;
  RuleBase& operator=(RuleBase&&) = default;

  const std::string& name() const { return name_; }

  /// Registers a variable usable in antecedents and consequents.
  Status AddVariable(LinguisticVariable variable);
  bool HasVariable(std::string_view name) const;
  const std::map<std::string, LinguisticVariable, std::less<>>& variables()
      const {
    return variables_;
  }

  /// Adds a rule. Fails when the rule references unknown variables or
  /// terms (static validation, so controller startup catches typos).
  Status AddRule(Rule rule);
  /// Parses and adds all rules in `text`.
  Status AddRulesFromText(std::string_view text);

  const std::vector<Rule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Names of output variables any rule writes to.
  std::vector<std::string> OutputVariables() const;

 private:
  std::string name_;
  std::map<std::string, LinguisticVariable, std::less<>> variables_;
  std::vector<Rule> rules_;
};

/// The fuzzy controller engine of Figure 4: fuzzification of crisp
/// measurements, max–min rule evaluation, union aggregation per
/// output variable, and defuzzification.
class InferenceEngine {
 public:
  explicit InferenceEngine(Defuzzifier defuzzifier = Defuzzifier::kLeftmostMax)
      : defuzzifier_(defuzzifier) {}

  Defuzzifier defuzzifier() const { return defuzzifier_; }
  void set_defuzzifier(Defuzzifier d) { defuzzifier_ = d; }

  /// Runs the full cycle over `rule_base` with the crisp `inputs`.
  /// Returns one InferenceOutput per output variable (variables no
  /// rule fires for still appear, with crisp == domain minimum).
  Result<std::map<std::string, InferenceOutput, std::less<>>> Infer(
      const RuleBase& rule_base, const Inputs& inputs) const;

  /// Convenience: crisp value of a single output variable.
  Result<double> InferValue(const RuleBase& rule_base, const Inputs& inputs,
                            std::string_view output_variable) const;

 private:
  Defuzzifier defuzzifier_;
};

}  // namespace autoglobe::fuzzy

#endif  // AUTOGLOBE_FUZZY_INFERENCE_H_
