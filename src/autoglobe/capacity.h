#ifndef AUTOGLOBE_AUTOGLOBE_CAPACITY_H_
#define AUTOGLOBE_AUTOGLOBE_CAPACITY_H_

#include <vector>

#include "autoglobe/runner.h"

namespace autoglobe {

/// Builds the RunnerConfig matching a paper scenario: the static
/// scenario disables the controller; CM/FM differ in user
/// distribution (§5.1). The landscape itself must be built with the
/// same scenario so the constraint sets (Tables 5/6) line up.
RunnerConfig MakeScenarioConfig(Scenario scenario, double user_scale,
                                uint64_t seed = 42);

/// When does a run count as "the system became overloaded"? The paper
/// calls a server overloaded when it has "a CPU load of more than 80%
/// for a long time" (§5.2); a run fails when any single overload
/// streak is too long or too much aggregate time is spent overloaded.
struct AcceptanceCriteria {
  double max_overload_streak_minutes = 48.0;
  double max_overload_fraction = 0.010;
};

/// Verdict for one user-scale step of the sweep.
struct CapacityStep {
  double scale = 1.0;
  RunMetrics metrics;
  /// The step's runner registry at completion; Merge these across a
  /// sweep (each worker-thread run owns its own registry) for an
  /// aggregate view.
  obs::MetricsSnapshot observed;
  bool passed = false;
};

/// Result of the capacity search for one scenario (one cell of
/// Table 7).
struct CapacityResult {
  Scenario scenario = Scenario::kStatic;
  /// Highest user scale the landscape sustains (1.0 = Table 4 users).
  double max_scale = 0.0;
  std::vector<CapacityStep> steps;
};

/// Options of the sweep: "We run different simulation series and
/// always increase the number of users by 5% until the system becomes
/// overloaded" (§5.1).
struct CapacityOptions {
  double start_scale = 1.0;
  double step = 0.05;
  double max_scale = 1.8;
  Duration run_duration = Duration::Hours(80);
  /// Excluded from the verdict (cold-start transients, see
  /// RunnerConfig::metrics_warmup).
  Duration warmup = Duration::Hours(24);
  uint64_t seed = 42;
  /// Per-step seed derivation: step i runs with seed
  /// `seed + seed_stride * i`. The default 0 gives every step the
  /// same noise streams (common random numbers — the classic
  /// variance-reduction choice for sweeps, and the paper protocol);
  /// a non-zero stride decorrelates the steps. Either way the seed of
  /// a step depends only on its index, never on execution order, so
  /// sweep results are bit-identical at any parallelism.
  uint64_t seed_stride = 0;
  /// Draw discipline for every step (see RunnerConfig::rng_kind).
  /// kPhilox makes each step's noise a pure function of (seed, draw
  /// index) and unlocks the SIMD draw kernels on the batched path.
  RngKind rng_kind = RngKind::kXoshiro;
  /// Worker threads for the sweep. 1 = sequential (steps stop at the
  /// first failure); N > 1 runs steps speculatively on N workers and
  /// truncates afterwards — same result, less wall-clock. 0 = one
  /// worker per hardware thread.
  int parallelism = 1;
  /// Batched sweep execution: when > 1 and the scenario's config is
  /// static-eligible (BatchRunner::CheckEligibility — in practice the
  /// static scenario, whose controller is off), up to `batch_lanes`
  /// sweep steps run in lockstep inside one BatchRunner instead of one
  /// SimulationRunner each, re-armed in place between chunks. Step
  /// metrics and the sweep verdict are bit-identical to the scalar
  /// sweep; only the per-step `observed` registry snapshot stays empty
  /// (the batch path has no metrics registry). 0 or 1 = off.
  size_t batch_lanes = 0;
  AcceptanceCriteria criteria;
};

/// Evaluates a finished run against the criteria.
bool Passes(const RunMetrics& metrics, const AcceptanceCriteria& criteria);

/// The user scales a sweep visits, in order (start, start+step, ...,
/// up to max_scale inclusive).
std::vector<double> SweepScales(const CapacityOptions& options);

/// Seed of sweep step `index` (see CapacityOptions::seed_stride).
uint64_t StepSeed(const CapacityOptions& options, size_t index);

/// Runs the +5 % sweep for one scenario of the paper landscape and
/// reports the maximum sustainable user scale (the Table 7 numbers).
/// With options.parallelism != 1 the steps run concurrently; each
/// SimulationRunner stays single-threaded and results are
/// bit-identical to the sequential sweep.
Result<CapacityResult> FindCapacity(Scenario scenario,
                                    const CapacityOptions& options = {});

/// Fans out the sweeps of all three paper scenarios (the whole of
/// Table 7) over one worker pool: every (scenario, step) pair is an
/// independent task, so the pool stays busy even while one scenario
/// waits for its slowest step. Results are ordered static, CM, FM and
/// bit-identical to three sequential FindCapacity calls.
Result<std::vector<CapacityResult>> FindCapacityAll(
    const CapacityOptions& options = {});

}  // namespace autoglobe

#endif  // AUTOGLOBE_AUTOGLOBE_CAPACITY_H_
