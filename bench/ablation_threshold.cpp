// Ablation A3 — the overload trigger threshold (paper §5.1 sets 70 %
// "to prevent the system from reacting too late", with the overload
// *verdict* at 80 %). A low threshold acts early but on weak
// evidence; a threshold at/above the verdict line reacts only once
// the damage is already measurable.

#include "ablation_util.h"
#include "common/strings.h"

using namespace autoglobe;
using namespace autoglobe::bench;

int main() {
  std::printf("# Ablation A3: overload trigger threshold sweep "
              "(FM scenario, users +25%%)\n");
  PrintMetricsHeader("threshold");
  for (double threshold : {0.50, 0.60, 0.70, 0.80, 0.90}) {
    RunMetrics metrics = RunWithConfig(
        Scenario::kFullMobility, 1.25, [threshold](RunnerConfig* config) {
          config->monitor.overload_threshold = threshold;
        });
    PrintMetricsRow(StrFormat("%.0f%%%s", threshold * 100.0,
                              threshold == 0.70 ? " *" : "")
                        .c_str(),
                    metrics);
  }
  std::printf("# (* = paper value; expected: high thresholds react too "
              "late -> long overload streaks)\n");
  return 0;
}
