// Ablation A2 — the protection time (paper §4): after a rearrangement
// the involved services and servers are excluded from further actions
// "to prevent the system from oscillation, e.g., moving services back
// and forth". No protection lets the controller thrash; an overlong
// protection freezes reaction capacity. The paper uses 30 minutes.

#include "ablation_util.h"
#include "common/strings.h"

using namespace autoglobe;
using namespace autoglobe::bench;

int main() {
  std::printf("# Ablation A2: protection-time sweep "
              "(FM scenario, users +25%%)\n");
  PrintMetricsHeader("protection");
  for (int minutes : {0, 5, 15, 30, 60, 120}) {
    RunMetrics metrics = RunWithConfig(
        Scenario::kFullMobility, 1.25, [minutes](RunnerConfig* config) {
          config->executor.protection_time = Duration::Minutes(minutes);
        });
    PrintMetricsRow(StrFormat("%d min%s", minutes,
                              minutes == 30 ? " *" : "")
                        .c_str(),
                    metrics);
  }
  std::printf("# (* = paper value. The shipped rule bases are already "
              "conservative, so disabling\n#  protection mostly shows up "
              "as extra churn; an overlong protection visibly delays\n"
              "#  reactions to the daily ramps.)\n");
  return 0;
}
