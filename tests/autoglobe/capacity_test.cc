#include "autoglobe/capacity.h"

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

TEST(ScenarioConfigTest, MapsScenariosToControllerAndDistribution) {
  RunnerConfig s = MakeScenarioConfig(Scenario::kStatic, 1.0);
  EXPECT_FALSE(s.controller_enabled);
  EXPECT_EQ(s.distribution, workload::UserDistribution::kStickySessions);

  RunnerConfig cm = MakeScenarioConfig(Scenario::kConstrainedMobility, 1.1);
  EXPECT_TRUE(cm.controller_enabled);
  EXPECT_EQ(cm.distribution, workload::UserDistribution::kStickySessions);
  EXPECT_DOUBLE_EQ(cm.user_scale, 1.1);

  RunnerConfig fm = MakeScenarioConfig(Scenario::kFullMobility, 1.35);
  EXPECT_TRUE(fm.controller_enabled);
  EXPECT_EQ(fm.distribution,
            workload::UserDistribution::kDynamicRedistribution);
}

TEST(ScenarioConfigTest, PaperParameterDefaults) {
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
  // §5.1: 70 % overload threshold, 10-min watchTime, 30-min
  // protection, idle 12.5 %/PI after 20 min.
  EXPECT_DOUBLE_EQ(config.monitor.overload_threshold, 0.70);
  EXPECT_EQ(config.monitor.overload_watch_time, Duration::Minutes(10));
  EXPECT_DOUBLE_EQ(config.monitor.idle_threshold_base, 0.125);
  EXPECT_EQ(config.monitor.idle_watch_time, Duration::Minutes(20));
  EXPECT_EQ(config.executor.protection_time, Duration::Minutes(30));
  EXPECT_EQ(config.duration, Duration::Hours(80));
}

TEST(CapacityTest, PassesAppliesBothCriteria) {
  AcceptanceCriteria criteria;
  criteria.max_overload_streak_minutes = 30;
  criteria.max_overload_fraction = 0.01;
  RunMetrics good;
  good.max_overload_streak_minutes = 10;
  good.overload_fraction = 0.005;
  EXPECT_TRUE(Passes(good, criteria));
  RunMetrics long_streak = good;
  long_streak.max_overload_streak_minutes = 31;
  EXPECT_FALSE(Passes(long_streak, criteria));
  RunMetrics chronic = good;
  chronic.overload_fraction = 0.02;
  EXPECT_FALSE(Passes(chronic, criteria));
}

TEST(CapacityTest, SweepStopsAtFirstFailure) {
  CapacityOptions options;
  options.start_scale = 1.0;
  options.step = 0.2;
  options.max_scale = 2.0;
  options.run_duration = Duration::Hours(30);
  options.warmup = Duration::Hours(6);
  auto result = FindCapacity(Scenario::kStatic, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // Steps end with exactly one failing entry (or run to max_scale).
  ASSERT_FALSE(result->steps.empty());
  for (size_t i = 0; i + 1 < result->steps.size(); ++i) {
    EXPECT_TRUE(result->steps[i].passed);
  }
  if (!result->steps.back().passed) {
    EXPECT_NEAR(result->max_scale,
                result->steps.back().scale - options.step, 1e-9);
  }
}

// The headline reproduction (Table 7): the static landscape handles
// exactly the dimensioned users, constrained mobility adds roughly
// 15 %, full mobility roughly 35 %. Shortened runs (48 h) keep the
// test fast; the bench reproduces the full 80 h protocol.
TEST(CapacityTest, Table7OrderingHolds) {
  CapacityOptions options;
  options.run_duration = Duration::Hours(48);
  auto static_result = FindCapacity(Scenario::kStatic, options);
  auto cm_result = FindCapacity(Scenario::kConstrainedMobility, options);
  auto fm_result = FindCapacity(Scenario::kFullMobility, options);
  ASSERT_TRUE(static_result.ok()) << static_result.status();
  ASSERT_TRUE(cm_result.ok()) << cm_result.status();
  ASSERT_TRUE(fm_result.ok()) << fm_result.status();

  // Row 1: the static landscape is sized for exactly 100 %.
  EXPECT_NEAR(static_result->max_scale, 1.00, 1e-9);
  // Shape: static < CM < FM, with meaningful margins.
  EXPECT_GE(cm_result->max_scale, static_result->max_scale + 0.10 - 1e-9);
  EXPECT_GE(fm_result->max_scale, cm_result->max_scale + 0.10 - 1e-9);
  // Bands around the paper's 115 % / 135 %.
  EXPECT_GE(cm_result->max_scale, 1.10 - 1e-9);
  EXPECT_LE(cm_result->max_scale, 1.25 + 1e-9);
  EXPECT_GE(fm_result->max_scale, 1.30 - 1e-9);
  EXPECT_LE(fm_result->max_scale, 1.45 + 1e-9);
}

}  // namespace
}  // namespace autoglobe
