#include "autoglobe/landscape.h"

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

using infra::ActionType;
using infra::Cluster;
using infra::ServiceRole;

TEST(ScenarioTest, NamesAndParsing) {
  EXPECT_EQ(ScenarioName(Scenario::kStatic), "static");
  EXPECT_EQ(ScenarioName(Scenario::kConstrainedMobility),
            "constrained-mobility");
  EXPECT_EQ(ScenarioName(Scenario::kFullMobility), "full-mobility");
  EXPECT_EQ(*ParseScenario("static"), Scenario::kStatic);
  EXPECT_EQ(*ParseScenario("cm"), Scenario::kConstrainedMobility);
  EXPECT_EQ(*ParseScenario("FM"), Scenario::kFullMobility);
  EXPECT_FALSE(ParseScenario("chaos").ok());
}

TEST(LandscapeTest, HardwareMatchesFigure11) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  ASSERT_EQ(landscape.servers.size(), 19u);
  int bx300 = 0;
  int bx600 = 0;
  int bl40p = 0;
  for (const auto& server : landscape.servers) {
    if (server.category == "FSC-BX300") {
      ++bx300;
      EXPECT_DOUBLE_EQ(server.performance_index, 1);
      EXPECT_EQ(server.num_cpus, 1);
      EXPECT_DOUBLE_EQ(server.memory_gb, 2);
    } else if (server.category == "FSC-BX600") {
      ++bx600;
      EXPECT_DOUBLE_EQ(server.performance_index, 2);
      EXPECT_EQ(server.num_cpus, 2);
      EXPECT_DOUBLE_EQ(server.memory_gb, 4);
    } else {
      ++bl40p;
      EXPECT_DOUBLE_EQ(server.performance_index, 9);
      EXPECT_EQ(server.num_cpus, 4);
      EXPECT_DOUBLE_EQ(server.memory_gb, 12);
    }
  }
  // "8 FSC-BX300 blades ... 8 FSC-BX600 blades ... 3 HP-Proliant
  //  BL40p servers" (§5.1).
  EXPECT_EQ(bx300, 8);
  EXPECT_EQ(bx600, 8);
  EXPECT_EQ(bl40p, 3);
}

TEST(LandscapeTest, UsersAndInstancesMatchTable4) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  std::map<std::string, double> users;
  for (const auto& spec : landscape.demand) {
    users[spec.service] = spec.base_users;
  }
  EXPECT_DOUBLE_EQ(users["FI"], 600);
  EXPECT_DOUBLE_EQ(users["LES"], 900);
  EXPECT_DOUBLE_EQ(users["PP"], 450);
  EXPECT_DOUBLE_EQ(users["HR"], 300);
  EXPECT_DOUBLE_EQ(users["CRM"], 300);

  std::map<std::string, int> instances;
  for (const auto& [service, server] : landscape.initial_allocation) {
    ++instances[service];
  }
  EXPECT_EQ(instances["FI"], 3);
  EXPECT_EQ(instances["LES"], 4);
  EXPECT_EQ(instances["PP"], 2);
  EXPECT_EQ(instances["HR"], 1);
  EXPECT_EQ(instances["CRM"], 1);
  EXPECT_EQ(instances["BW"], 2);
  // Every subsystem has its CI and DB placed.
  EXPECT_EQ(instances["CI-ERP"], 1);
  EXPECT_EQ(instances["DB-ERP"], 1);
  EXPECT_EQ(landscape.initial_allocation.size(), 19u);
}

TEST(LandscapeTest, ConstraintsMatchTable5ForCm) {
  Landscape landscape = MakePaperLandscape(Scenario::kConstrainedMobility);
  std::map<std::string, const infra::ServiceSpec*> by_name;
  for (const auto& spec : landscape.services) by_name[spec.name] = &spec;

  // "database ERP: exclusive, min. perf. index 5" with no actions.
  EXPECT_TRUE(by_name["DB-ERP"]->exclusive);
  EXPECT_DOUBLE_EQ(by_name["DB-ERP"]->min_performance_index, 5);
  EXPECT_TRUE(by_name["DB-ERP"]->allowed_actions.empty());
  // "database BW, CRM: min. perf. index 5" static in CM.
  EXPECT_FALSE(by_name["DB-BW"]->exclusive);
  EXPECT_DOUBLE_EQ(by_name["DB-BW"]->min_performance_index, 5);
  EXPECT_TRUE(by_name["DB-BW"]->allowed_actions.empty());
  // "central instances: —".
  EXPECT_TRUE(by_name["CI-ERP"]->allowed_actions.empty());
  // "application server: min. 2 FI instances, min. 2 LES instances,
  //  scale-in, scale-out".
  EXPECT_EQ(by_name["FI"]->min_instances, 2);
  EXPECT_EQ(by_name["LES"]->min_instances, 2);
  std::set<ActionType> cm_actions = {ActionType::kScaleIn,
                                     ActionType::kScaleOut};
  EXPECT_EQ(by_name["FI"]->allowed_actions, cm_actions);
  EXPECT_EQ(by_name["CRM"]->allowed_actions, cm_actions);
}

TEST(LandscapeTest, ConstraintsMatchTable6ForFm) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  std::map<std::string, const infra::ServiceSpec*> by_name;
  for (const auto& spec : landscape.services) by_name[spec.name] = &spec;

  // "database BW ... scale-in, scale-out" — distributable.
  std::set<ActionType> bw_db = {ActionType::kScaleIn,
                                ActionType::kScaleOut};
  EXPECT_EQ(by_name["DB-BW"]->allowed_actions, bw_db);
  EXPECT_GT(by_name["DB-BW"]->max_instances, 1);
  // "central instances: scale-up, scale-down, move".
  std::set<ActionType> ci = {ActionType::kScaleUp, ActionType::kScaleDown,
                             ActionType::kMove};
  EXPECT_EQ(by_name["CI-ERP"]->allowed_actions, ci);
  // "application server: scale-up, scale-down, scale-in, scale-out,
  //  move".
  std::set<ActionType> app = {ActionType::kScaleIn, ActionType::kScaleOut,
                              ActionType::kScaleUp, ActionType::kScaleDown,
                              ActionType::kMove};
  EXPECT_EQ(by_name["LES"]->allowed_actions, app);
  // DB-ERP stays pinned even in FM.
  EXPECT_TRUE(by_name["DB-ERP"]->allowed_actions.empty());
}

TEST(LandscapeTest, StaticScenarioAllowsNothing) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  for (const auto& spec : landscape.services) {
    EXPECT_TRUE(spec.allowed_actions.empty()) << spec.name;
  }
}

TEST(LandscapeTest, ThreeSubsystemsWired) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  ASSERT_EQ(landscape.subsystems.size(), 3u);
  const auto& erp = landscape.subsystems[0];
  EXPECT_EQ(erp.name, "ERP");
  EXPECT_EQ(erp.app_services.size(), 4u);
  EXPECT_EQ(erp.central_instance, "CI-ERP");
  EXPECT_EQ(erp.database, "DB-ERP");
  EXPECT_EQ(landscape.subsystems[1].name, "CRM");
  EXPECT_EQ(landscape.subsystems[2].name, "BW");
  // BW batch jobs are database-heavy (§5.2).
  EXPECT_GT(landscape.subsystems[2].db_factor,
            landscape.subsystems[0].db_factor);
}

TEST(LandscapeTest, BuildsIntoClusterAndEngine) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  Cluster cluster;
  workload::DemandEngine engine(&cluster, Rng(1));
  ASSERT_TRUE(landscape.Build(&cluster, &engine).ok());
  EXPECT_EQ(cluster.Servers().size(), 19u);
  EXPECT_EQ(cluster.Services().size(), 12u);
  EXPECT_EQ(cluster.total_instances(), 19u);
  // The initial allocation of Figure 11, spot-checked.
  ASSERT_EQ(cluster.InstancesOn("Blade3").size(), 1u);
  EXPECT_EQ(cluster.InstancesOn("Blade3")[0]->service, "FI");
  EXPECT_EQ(cluster.InstancesOn("DBServer1")[0]->service, "DB-ERP");
  EXPECT_EQ(cluster.InstancesOn("Blade6")[0]->service, "CI-ERP");
}

TEST(LandscapeTest, XmlRoundTrip) {
  Landscape landscape = MakePaperLandscape(Scenario::kConstrainedMobility);
  xml::Document doc;
  landscape.ToXml(doc.SetRoot("landscape"));
  auto reparsed_doc = xml::Document::Parse(doc.ToString());
  ASSERT_TRUE(reparsed_doc.ok()) << reparsed_doc.status();
  auto reparsed = Landscape::FromXml(*reparsed_doc->root());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->servers.size(), landscape.servers.size());
  EXPECT_EQ(reparsed->services.size(), landscape.services.size());
  EXPECT_EQ(reparsed->demand.size(), landscape.demand.size());
  EXPECT_EQ(reparsed->subsystems.size(), landscape.subsystems.size());
  EXPECT_EQ(reparsed->initial_allocation, landscape.initial_allocation);
  // The demand model survives behaviorally, including the per-service
  // morning-peak stagger carried in the pattern name.
  for (size_t i = 0; i < landscape.demand.size(); ++i) {
    EXPECT_EQ(reparsed->demand[i].pattern.name(),
              landscape.demand[i].pattern.name())
        << landscape.demand[i].service;
    SimTime probe = SimTime::Start() + Duration::Hours(9) +
                    Duration::Minutes(20);
    EXPECT_DOUBLE_EQ(reparsed->demand[i].pattern.Activity(probe),
                     landscape.demand[i].pattern.Activity(probe))
        << landscape.demand[i].service;
  }
  // The rebuilt landscape still materializes.
  Cluster cluster;
  ASSERT_TRUE(reparsed->Build(&cluster, nullptr).ok());
  EXPECT_EQ(cluster.total_instances(), 19u);
}

TEST(LandscapeTest, FromXmlRejectsMissingSections) {
  auto doc = xml::Document::Parse("<landscape><servers/></landscape>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(Landscape::FromXml(*doc->root()).ok());
}

TEST(LandscapeTest, RngDisciplineRoundTripsThroughXml) {
  // Default (xoshiro) serializes without an rng attribute so legacy
  // exports stay byte-identical, and parses back as xoshiro.
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  EXPECT_EQ(landscape.rng_kind, RngKind::kXoshiro);
  xml::Document doc;
  landscape.ToXml(doc.SetRoot("landscape"));
  EXPECT_EQ(doc.ToString().find("rng"), std::string::npos);
  auto reparsed = Landscape::FromXml(*doc.root());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->rng_kind, RngKind::kXoshiro);

  // Philox round-trips through the workload element's rng attribute.
  landscape.rng_kind = RngKind::kPhilox;
  xml::Document philox_doc;
  landscape.ToXml(philox_doc.SetRoot("landscape"));
  EXPECT_NE(philox_doc.ToString().find("rng=\"philox\""),
            std::string::npos);
  auto philox_parsed = xml::Document::Parse(philox_doc.ToString());
  ASSERT_TRUE(philox_parsed.ok()) << philox_parsed.status();
  auto philox = Landscape::FromXml(*philox_parsed->root());
  ASSERT_TRUE(philox.ok()) << philox.status();
  EXPECT_EQ(philox->rng_kind, RngKind::kPhilox);
}

TEST(LandscapeTest, FromXmlRejectsUnknownRngDiscipline) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  xml::Document doc;
  landscape.ToXml(doc.SetRoot("landscape"));
  std::string xml = doc.ToString();
  size_t pos = xml.find("<workload>");
  ASSERT_NE(pos, std::string::npos);
  xml.replace(pos, 10, "<workload rng=\"mersenne\">");
  auto parsed = xml::Document::Parse(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto result = Landscape::FromXml(*parsed->root());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("mersenne"), std::string::npos);
}

}  // namespace
}  // namespace autoglobe
