#include "faults/plan.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace autoglobe::faults {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kInstanceCrash:
      return "instanceCrash";
    case FaultKind::kServerFailure:
      return "serverFailure";
    case FaultKind::kActionFailure:
      return "actionFailure";
    case FaultKind::kMonitorDropout:
      return "monitorDropout";
  }
  return "?";
}

Result<FaultKind> ParseFaultKind(std::string_view name) {
  for (FaultKind kind :
       {FaultKind::kInstanceCrash, FaultKind::kServerFailure,
        FaultKind::kActionFailure, FaultKind::kMonitorDropout}) {
    if (name == FaultKindName(kind)) return kind;
  }
  return Status::InvalidArgument(StrFormat("unknown fault kind \"%.*s\"",
                                           static_cast<int>(name.size()),
                                           name.data()));
}

Status FaultPlan::Validate() const {
  SimTime previous = SimTime::Start();
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.at < SimTime::Start()) {
      return Status::InvalidArgument(
          StrFormat("fault %zu: negative time", i));
    }
    if (i > 0 && event.at < previous) {
      return Status::InvalidArgument(StrFormat(
          "fault %zu at %s precedes its predecessor (call SortByTime)",
          i, event.at.ToString().c_str()));
    }
    previous = event.at;
    if (event.duration < Duration::Zero()) {
      return Status::InvalidArgument(
          StrFormat("fault %zu: negative duration", i));
    }
    switch (event.kind) {
      case FaultKind::kServerFailure:
      case FaultKind::kMonitorDropout:
        if (event.subject.empty()) {
          return Status::InvalidArgument(StrFormat(
              "fault %zu (%s): subject server required", i,
              std::string(FaultKindName(event.kind)).c_str()));
        }
        break;
      case FaultKind::kActionFailure:
        if (event.duration <= Duration::Zero()) {
          return Status::InvalidArgument(StrFormat(
              "fault %zu (actionFailure): positive duration required",
              i));
        }
        break;
      case FaultKind::kInstanceCrash:
        break;  // subject (service) is optional: empty = any instance
    }
    if (event.kind == FaultKind::kMonitorDropout &&
        event.duration <= Duration::Zero()) {
      return Status::InvalidArgument(StrFormat(
          "fault %zu (monitorDropout): positive duration required", i));
    }
  }
  return Status::OK();
}

void FaultPlan::SortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

Result<FaultPlan> FaultPlan::FromXml(const xml::Element& root) {
  if (root.name() != "faultPlan") {
    return Status::InvalidArgument(StrFormat(
        "expected <faultPlan>, got <%s>", root.name().c_str()));
  }
  FaultPlan plan;
  for (const xml::Element* child : root.FindChildren("fault")) {
    FaultEvent event;
    AG_ASSIGN_OR_RETURN(long long at, child->IntAttribute("atSeconds"));
    event.at = SimTime::FromSeconds(at);
    AG_ASSIGN_OR_RETURN(std::string kind_name,
                        child->StringAttribute("kind"));
    AG_ASSIGN_OR_RETURN(event.kind, ParseFaultKind(kind_name));
    event.subject = std::string(child->AttributeOr("subject", ""));
    AG_ASSIGN_OR_RETURN(long long duration,
                        child->IntAttributeOr("durationSeconds", 0));
    event.duration = Duration::Seconds(duration);
    plan.events.push_back(std::move(event));
  }
  plan.SortByTime();
  AG_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Result<FaultPlan> FaultPlan::Parse(std::string_view text) {
  AG_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(text));
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("empty fault plan document");
  }
  return FromXml(*doc.root());
}

Result<FaultPlan> FaultPlan::LoadFile(const std::string& path) {
  AG_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::LoadFile(path));
  if (doc.root() == nullptr) {
    return Status::InvalidArgument(
        StrFormat("\"%s\": empty fault plan document", path.c_str()));
  }
  return FromXml(*doc.root());
}

std::string FaultPlan::ToXml() const {
  xml::Document doc;
  xml::Element* root = doc.SetRoot("faultPlan");
  for (const FaultEvent& event : events) {
    xml::Element* child = root->AddChild("fault");
    child->SetAttribute("atSeconds",
                        StrFormat("%lld", static_cast<long long>(
                                              event.at.seconds())));
    child->SetAttribute("kind", std::string(FaultKindName(event.kind)));
    if (!event.subject.empty()) {
      child->SetAttribute("subject", event.subject);
    }
    if (event.duration > Duration::Zero()) {
      child->SetAttribute(
          "durationSeconds",
          StrFormat("%lld",
                    static_cast<long long>(event.duration.seconds())));
    }
  }
  return doc.ToString();
}

namespace {

/// Draws Poisson-process arrival times over [0, horizon) and appends
/// one event per arrival. `rate_per_hour` uses simulated hours.
template <typename MakeEvent>
void DrawArrivals(double rate_per_hour, Duration horizon, Rng* rng,
                  MakeEvent make_event) {
  if (rate_per_hour <= 0.0) return;
  double mean_gap_seconds = 3600.0 / rate_per_hour;
  double t = rng->Exponential(mean_gap_seconds);
  while (t < static_cast<double>(horizon.seconds())) {
    make_event(SimTime::FromSeconds(static_cast<int64_t>(t)));
    t += rng->Exponential(mean_gap_seconds);
  }
}

}  // namespace

FaultPlan FaultPlan::Generate(const RandomFaultSpec& spec,
                              Duration horizon, uint64_t seed,
                              const std::vector<std::string>& servers,
                              const std::vector<std::string>& services) {
  FaultPlan plan;
  // One independent stream per fault class, forked in a fixed order,
  // so changing one rate never perturbs the other classes' schedules.
  Rng root(seed ^ 0xfa017ab1e5eed000ULL);
  Rng crash_rng = root.Fork();
  Rng server_rng = root.Fork();
  Rng action_rng = root.Fork();
  Rng dropout_rng = root.Fork();

  DrawArrivals(spec.instance_crashes_per_hour, horizon, &crash_rng,
               [&](SimTime at) {
                 FaultEvent event;
                 event.at = at;
                 event.kind = FaultKind::kInstanceCrash;
                 if (!services.empty()) {
                   event.subject = services[static_cast<size_t>(
                       crash_rng.UniformInt(0,
                                            static_cast<int64_t>(
                                                services.size()) -
                                                1))];
                 }
                 plan.events.push_back(std::move(event));
               });
  DrawArrivals(spec.server_failures_per_day / 24.0, horizon, &server_rng,
               [&](SimTime at) {
                 if (servers.empty()) return;
                 FaultEvent event;
                 event.at = at;
                 event.kind = FaultKind::kServerFailure;
                 event.subject = servers[static_cast<size_t>(
                     server_rng.UniformInt(
                         0, static_cast<int64_t>(servers.size()) - 1))];
                 event.duration = spec.server_recovery;
                 plan.events.push_back(std::move(event));
               });
  DrawArrivals(spec.action_failure_windows_per_day / 24.0, horizon,
               &action_rng, [&](SimTime at) {
                 FaultEvent event;
                 event.at = at;
                 event.kind = FaultKind::kActionFailure;
                 event.duration = spec.action_failure_duration;
                 plan.events.push_back(std::move(event));
               });
  DrawArrivals(spec.monitor_dropouts_per_day / 24.0, horizon,
               &dropout_rng, [&](SimTime at) {
                 if (servers.empty()) return;
                 FaultEvent event;
                 event.at = at;
                 event.kind = FaultKind::kMonitorDropout;
                 event.subject = servers[static_cast<size_t>(
                     dropout_rng.UniformInt(
                         0, static_cast<int64_t>(servers.size()) - 1))];
                 event.duration = spec.monitor_dropout_duration;
                 plan.events.push_back(std::move(event));
               });
  plan.SortByTime();
  return plan;
}

}  // namespace autoglobe::faults
