#ifndef AUTOGLOBE_AUTOGLOBE_AVAILABILITY_H_
#define AUTOGLOBE_AUTOGLOBE_AVAILABILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "autoglobe/capacity.h"
#include "autoglobe/runner.h"
#include "faults/availability.h"
#include "faults/plan.h"

namespace autoglobe {

/// Options of the availability scenario: the capacity harness's
/// fault-enabled sibling. One paper scenario runs `repetitions` times
/// under a fault schedule (an explicit plan, or one generated from
/// `fault_spec` per repetition seed) and the availability scorecards
/// are aggregated.
struct AvailabilityOptions {
  Scenario scenario = Scenario::kFullMobility;
  double user_scale = 1.0;
  Duration duration = Duration::Hours(24);
  uint64_t seed = 42;
  /// Repetition i runs with seed `seed + i`; its fault schedule is
  /// generated from that seed too, so repetitions see different but
  /// reproducible fault sequences.
  int repetitions = 1;
  /// Worker threads (0 = one per hardware thread). Results are
  /// ordered by repetition index — bit-identical at any parallelism.
  int parallelism = 1;
  /// Repetitions per pool task: consecutive reps are grouped so one
  /// worker runs a whole batch of them back to back (amortizing pool
  /// dispatch and keeping each worker's caches warm on the fault
  /// stack). Fault runs cannot fuse into BatchRunner lanes — the
  /// injector mutates the topology per rep — so rep-grouping is the
  /// batching granule here. Grouping never changes any result bit;
  /// values < 1 behave like 1.
  int reps_per_task = 1;

  /// Explicit schedule; set => used verbatim for every repetition.
  std::optional<faults::FaultPlan> plan;
  /// Otherwise a plan is generated from these rates per repetition.
  faults::RandomFaultSpec fault_spec;

  faults::RecoveryConfig recovery;
  faults::AvailabilityConfig availability;
};

/// Outcome of one fault-injected repetition.
struct AvailabilityRun {
  uint64_t seed = 0;
  faults::AvailabilityReport report;
  faults::RecoveryStats recovery;
  faults::InjectorStats injector;
  RunMetrics metrics;
  /// VerifyClusterInvariants at the end of the run (the chaos suite's
  /// bottom line: whatever was injected, the landscape is consistent).
  bool invariants_ok = false;
  std::string invariants_error;
};

/// The whole scenario: per-repetition runs plus the pooled scorecard.
struct AvailabilityResult {
  Scenario scenario = Scenario::kFullMobility;
  std::vector<AvailabilityRun> runs;
  /// Counts summed, means pooled (weighted by episode counts) across
  /// repetitions.
  faults::AvailabilityReport aggregate;
};

/// Pools per-run reports: counts add up; MTTD/MTTR means weight by
/// detected/recovered episode counts; objective satisfaction weights
/// by episodes.
faults::AvailabilityReport AggregateReports(
    const std::vector<AvailabilityRun>& runs);

/// Builds the RunnerConfig of one repetition (scenario config + fault
/// plan + recovery policy), exposed for tests and the CLI.
Result<RunnerConfig> MakeAvailabilityConfig(
    const AvailabilityOptions& options, uint64_t seed);

/// Runs the availability scenario. Each repetition is an independent
/// single-threaded simulation; parallelism fans repetitions out over
/// a worker pool without changing any result bit.
Result<AvailabilityResult> RunAvailabilityScenario(
    const AvailabilityOptions& options);

/// Renders the result as a console block (per-run rows + aggregate).
std::string RenderAvailabilityResult(const AvailabilityResult& result);

}  // namespace autoglobe

#endif  // AUTOGLOBE_AUTOGLOBE_AVAILABILITY_H_
