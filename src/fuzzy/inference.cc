#include "fuzzy/inference.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "fuzzy/rule_parser.h"

namespace autoglobe::fuzzy {

std::string_view DefuzzifierName(Defuzzifier d) {
  switch (d) {
    case Defuzzifier::kLeftmostMax:
      return "leftmost-max";
    case Defuzzifier::kMeanOfMax:
      return "mean-of-max";
    case Defuzzifier::kCentroid:
      return "centroid";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// AggregatedSet
// ---------------------------------------------------------------------------

void AggregatedSet::AddClipped(const MembershipFunction& membership,
                               double clip) {
  clip = std::clamp(clip, 0.0, 1.0);
  if (clip <= 0.0) return;  // clipped to nothing; contributes no mass
  parts_.push_back(Part{membership, clip});
}

double AggregatedSet::Eval(double x) const {
  double grade = 0.0;
  for (const Part& part : parts_) {
    grade = std::max(grade, std::min(part.membership.Eval(x), part.clip));
  }
  return grade;
}

double AggregatedSet::Height() const {
  double height = 0.0;
  for (const Part& part : parts_) {
    height = std::max(height, std::min(part.membership.MaxValue(), part.clip));
  }
  return height;
}

double AggregatedSet::Defuzzify(Defuzzifier method) const {
  // The scratch keeps its capacity across calls; thread_local keeps
  // concurrent simulations (the PR 1 thread pool) independent.
  static thread_local DefuzzScratch scratch;
  return DefuzzifyUnion(parts_.data(), parts_.size(), lo_, hi_, method,
                        &scratch);
}

std::vector<double> AggregatedSet::Sample(int n) const {
  if (n <= 0) return {Eval(lo_)};
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    samples.push_back(Eval(lo_ + (hi_ - lo_) * i / n));
  }
  return samples;
}

// ---------------------------------------------------------------------------
// Analytic defuzzification
// ---------------------------------------------------------------------------

namespace {

using Part = AggregatedSet::Part;

double ClippedEval(const Part& part, double x) {
  return std::min(part.membership.Eval(x), part.clip);
}

double UnionEval(const Part* parts, size_t count, double x) {
  double grade = 0.0;
  for (size_t i = 0; i < count; ++i) {
    grade = std::max(grade, ClippedEval(parts[i], x));
  }
  return grade;
}

void SortUnique(std::vector<double>* xs) {
  std::sort(xs->begin(), xs->end());
  xs->erase(std::unique(xs->begin(), xs->end()), xs->end());
}

}  // namespace

double DefuzzifyUnion(const Part* parts, size_t count, double lo, double hi,
                      Defuzzifier method, DefuzzScratch* scratch) {
  double height = 0.0;
  for (size_t i = 0; i < count; ++i) {
    height = std::max(height,
                      std::min(parts[i].membership.MaxValue(), parts[i].clip));
  }
  if (count == 0 || height <= 0.0) return lo;

  if (method == Defuzzifier::kLeftmostMax) {
    // Leftmost x where the union attains its height: the minimum
    // over contributing parts of the part's leftmost point at the
    // height level (paper §3: "the leftmost of all values at which
    // the maximum truth value occurs").
    double leftmost = hi;
    for (size_t i = 0; i < count; ++i) {
      const Part& part = parts[i];
      double part_height = std::min(part.membership.MaxValue(), part.clip);
      if (part_height + 1e-12 < height) continue;
      double x = part.membership.LeftmostAtLevel(height, lo);
      leftmost = std::min(leftmost, std::clamp(x, lo, hi));
    }
    return leftmost;
  }

  // Segment-wise sweep: between two consecutive breakpoints every
  // clipped part is linear, and once the pairwise intersections are
  // added the union itself is linear on each segment.
  std::vector<double>& breaks = scratch->breaks;
  breaks.clear();
  breaks.push_back(lo);
  breaks.push_back(hi);
  for (size_t i = 0; i < count; ++i) {
    parts[i].membership.AppendLevelBreakpoints(parts[i].clip, lo, hi,
                                               &breaks);
  }
  SortUnique(&breaks);

  std::vector<double>& crossings = scratch->crossings;
  crossings.clear();
  if (count >= 2) {
    for (size_t s = 0; s + 1 < breaks.size(); ++s) {
      double x0 = breaks[s];
      double x1 = breaks[s + 1];
      double w = x1 - x0;
      if (w <= 1e-15) continue;
      // Each part is linear on (x0, x1); probing at the third points
      // recovers the line without touching the endpoint values, which
      // may be jump discontinuities (singletons, degenerate edges).
      double q1 = x0 + w / 3.0;
      double q2 = x0 + 2.0 * w / 3.0;
      for (size_t i = 0; i < count; ++i) {
        for (size_t j = i + 1; j < count; ++j) {
          double d1 = ClippedEval(parts[i], q1) - ClippedEval(parts[j], q1);
          double d2 = ClippedEval(parts[i], q2) - ClippedEval(parts[j], q2);
          double slope = (d2 - d1) / (q2 - q1);
          if (slope == 0.0) continue;
          double x = q1 - d1 / slope;
          if (x > x0 + 1e-15 && x < x1 - 1e-15) crossings.push_back(x);
        }
      }
    }
    breaks.insert(breaks.end(), crossings.begin(), crossings.end());
    SortUnique(&breaks);
  }

  if (method == Defuzzifier::kCentroid) {
    // Exact area and first moment of the piecewise-linear union:
    // for a linear segment from (x0, y0) to (x1, y1),
    //   integral mu dx      = (y0 + y1) / 2 * w
    //   integral x * mu dx  = w / 6 * (x0 (2 y0 + y1) + x1 (y0 + 2 y1)).
    double area = 0.0;
    double moment = 0.0;
    for (size_t s = 0; s + 1 < breaks.size(); ++s) {
      double x0 = breaks[s];
      double x1 = breaks[s + 1];
      double w = x1 - x0;
      if (w <= 1e-15) continue;
      double q1 = x0 + w / 3.0;
      double q2 = x0 + 2.0 * w / 3.0;
      double v1 = UnionEval(parts, count, q1);
      double v2 = UnionEval(parts, count, q2);
      double slope = (v2 - v1) / (q2 - q1);
      double y0 = v1 + slope * (x0 - q1);
      double y1 = v1 + slope * (x1 - q1);
      area += 0.5 * (y0 + y1) * w;
      moment += w / 6.0 * (x0 * (2.0 * y0 + y1) + x1 * (y0 + 2.0 * y1));
    }
    return area > 0.0 ? moment / area : lo;
  }

  // Mean of max: average over the region where the union attains its
  // height. Plateaus contribute interval mass; if the height is only
  // reached at isolated points (peaks, singleton spikes — always
  // breakpoints of the sweep), their mean is used instead.
  constexpr double kTol = 1e-9;
  double plateau_len = 0.0;
  double plateau_moment = 0.0;
  for (size_t s = 0; s + 1 < breaks.size(); ++s) {
    double x0 = breaks[s];
    double x1 = breaks[s + 1];
    double w = x1 - x0;
    if (w <= 1e-15) continue;
    double q1 = x0 + w / 3.0;
    double q2 = x0 + 2.0 * w / 3.0;
    double v1 = UnionEval(parts, count, q1);
    double v2 = UnionEval(parts, count, q2);
    double slope = (v2 - v1) / (q2 - q1);
    double y0 = v1 + slope * (x0 - q1);
    double y1 = v1 + slope * (x1 - q1);
    if (y0 >= height - kTol && y1 >= height - kTol) {
      plateau_len += w;
      plateau_moment += 0.5 * (x0 + x1) * w;
    }
  }
  if (plateau_len > 0.0) return plateau_moment / plateau_len;
  std::vector<double>& points = scratch->points;
  points.clear();
  for (double x : breaks) {
    if (UnionEval(parts, count, x) >= height - kTol) points.push_back(x);
  }
  if (points.empty()) return lo;
  double sum = 0.0;
  for (double x : points) sum += x;
  return sum / static_cast<double>(points.size());
}

// ---------------------------------------------------------------------------
// RuleBase
// ---------------------------------------------------------------------------

Status RuleBase::AddVariable(LinguisticVariable variable) {
  if (HasVariable(variable.name())) {
    return Status::AlreadyExists(StrFormat(
        "rule base \"%s\" already defines variable \"%s\"", name_.c_str(),
        variable.name().c_str()));
  }
  std::string key = variable.name();
  variables_.emplace(std::move(key), std::move(variable));
  return Status::OK();
}

bool RuleBase::HasVariable(std::string_view name) const {
  return variables_.find(name) != variables_.end();
}

namespace {

Status ValidateExpr(const Expr& expr,
                    const std::map<std::string, LinguisticVariable,
                                   std::less<>>& variables) {
  switch (expr.kind()) {
    case Expr::Kind::kAtom: {
      const auto& atom = static_cast<const AtomExpr&>(expr);
      auto it = variables.find(atom.variable());
      if (it == variables.end()) {
        return Status::NotFound(StrFormat(
            "rule references undefined variable \"%s\"",
            atom.variable().c_str()));
      }
      if (!it->second.HasTerm(atom.term())) {
        return Status::NotFound(StrFormat(
            "variable \"%s\" has no term \"%s\"", atom.variable().c_str(),
            atom.term().c_str()));
      }
      return Status::OK();
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      const auto& nary = static_cast<const NaryExpr&>(expr);
      for (const auto& child : nary.children()) {
        AG_RETURN_IF_ERROR(ValidateExpr(*child, variables));
      }
      return Status::OK();
    }
    case Expr::Kind::kNot: {
      const auto& negation = static_cast<const NotExpr&>(expr);
      return ValidateExpr(negation.child(), variables);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Status RuleBase::AddRule(Rule rule) {
  AG_RETURN_IF_ERROR(ValidateExpr(rule.antecedent(), variables_));
  const Consequent& consequent = rule.consequent();
  auto it = variables_.find(consequent.variable);
  if (it == variables_.end()) {
    return Status::NotFound(StrFormat(
        "rule consequent references undefined variable \"%s\"",
        consequent.variable.c_str()));
  }
  if (!it->second.HasTerm(consequent.term)) {
    return Status::NotFound(StrFormat(
        "output variable \"%s\" has no term \"%s\"",
        consequent.variable.c_str(), consequent.term.c_str()));
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status RuleBase::AddRulesFromText(std::string_view text) {
  AG_ASSIGN_OR_RETURN(std::vector<Rule> parsed, ParseRules(text));
  for (Rule& rule : parsed) {
    AG_RETURN_IF_ERROR(AddRule(std::move(rule)));
  }
  return Status::OK();
}

std::vector<std::string> RuleBase::OutputVariables() const {
  // First-seen order, deduplicated via a transparent set so the scan
  // stays O(n log n) instead of O(n^2) over the rule count.
  std::vector<std::string> names;
  std::set<std::string_view, std::less<>> seen;
  for (const Rule& rule : rules_) {
    const std::string& name = rule.consequent().variable;
    if (seen.insert(name).second) names.push_back(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// InferenceEngine
// ---------------------------------------------------------------------------

Result<std::map<std::string, InferenceOutput, std::less<>>>
InferenceEngine::Infer(const RuleBase& rule_base,
                       const Inputs& inputs) const {
  std::map<std::string, InferenceOutput, std::less<>> outputs;
  // One aggregated set per output variable written by any rule.
  for (const Rule& rule : rule_base.rules()) {
    const Consequent& consequent = rule.consequent();
    auto var_it = rule_base.variables().find(consequent.variable);
    AG_CHECK(var_it != rule_base.variables().end());
    const LinguisticVariable& out_var = var_it->second;
    auto [entry, inserted] = outputs.try_emplace(
        consequent.variable,
        InferenceOutput{out_var.min_value(),
                        AggregatedSet(out_var.min_value(),
                                      out_var.max_value())});
    AG_ASSIGN_OR_RETURN(
        double truth,
        rule.EvaluateAntecedent(rule_base.variables(), inputs));
    AG_ASSIGN_OR_RETURN(const MembershipFunction* mf,
                        out_var.FindTerm(consequent.term));
    entry->second.set.AddClipped(*mf, truth);
  }
  for (auto& [name, output] : outputs) {
    output.crisp = output.set.Defuzzify(defuzzifier_);
  }
  return outputs;
}

Result<double> InferenceEngine::InferValue(
    const RuleBase& rule_base, const Inputs& inputs,
    std::string_view output_variable) const {
  AG_ASSIGN_OR_RETURN(auto outputs, Infer(rule_base, inputs));
  // Transparent comparator: look up the string_view directly instead
  // of materializing a temporary std::string.
  auto it = outputs.find(output_variable);
  if (it == outputs.end()) {
    return Status::NotFound(
        StrFormat("no rule writes output variable \"%.*s\"",
                  static_cast<int>(output_variable.size()),
                  output_variable.data()));
  }
  return it->second.crisp;
}

}  // namespace autoglobe::fuzzy
