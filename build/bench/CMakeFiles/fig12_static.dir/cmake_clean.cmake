file(REMOVE_RECURSE
  "CMakeFiles/fig12_static.dir/fig12_static.cpp.o"
  "CMakeFiles/fig12_static.dir/fig12_static.cpp.o.d"
  "fig12_static"
  "fig12_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
