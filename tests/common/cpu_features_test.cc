#include "common/cpu_features.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

// Saves and restores AUTOGLOBE_FORCE_SCALAR around each test so the
// suite does not leak state into other tests in the binary.
class CpuFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prev = std::getenv("AUTOGLOBE_FORCE_SCALAR");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    unsetenv("AUTOGLOBE_FORCE_SCALAR");
  }

  void TearDown() override {
    if (had_prev_) {
      setenv("AUTOGLOBE_FORCE_SCALAR", prev_.c_str(), 1);
    } else {
      unsetenv("AUTOGLOBE_FORCE_SCALAR");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST_F(CpuFeaturesTest, ForceScalarEnvOverridesDetection) {
  setenv("AUTOGLOBE_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(DetectSimdLevel(), SimdLevel::kScalar);
}

TEST_F(CpuFeaturesTest, ForceScalarZeroMeansNoOverride) {
  setenv("AUTOGLOBE_FORCE_SCALAR", "0", 1);
  SimdLevel forced_off = DetectSimdLevel();
  unsetenv("AUTOGLOBE_FORCE_SCALAR");
  EXPECT_EQ(forced_off, DetectSimdLevel());
}

TEST_F(CpuFeaturesTest, ForceScalarEmptyMeansNoOverride) {
  setenv("AUTOGLOBE_FORCE_SCALAR", "", 1);
  SimdLevel empty = DetectSimdLevel();
  unsetenv("AUTOGLOBE_FORCE_SCALAR");
  EXPECT_EQ(empty, DetectSimdLevel());
}

TEST_F(CpuFeaturesTest, DetectionIsStable) {
  EXPECT_EQ(DetectSimdLevel(), DetectSimdLevel());
}

TEST_F(CpuFeaturesTest, ActiveLevelIsCachedAndValid) {
  SimdLevel level = ActiveSimdLevel();
  EXPECT_TRUE(level == SimdLevel::kScalar || level == SimdLevel::kAvx2);
  // Cached: repeated calls agree even if the env changes afterwards.
  setenv("AUTOGLOBE_FORCE_SCALAR", "1", 1);
  EXPECT_EQ(ActiveSimdLevel(), level);
}

TEST_F(CpuFeaturesTest, LevelNames) {
  EXPECT_EQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

}  // namespace
}  // namespace autoglobe
