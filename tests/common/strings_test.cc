#include "common/strings.h"

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("hello %s %d", "world", 42), "hello world 42");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("\t\nabc"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("x,", ',').size(), 2u);
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto pieces = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
  EXPECT_EQ(ToUpper("AbC-12"), "ABC-12");
  EXPECT_TRUE(EqualsIgnoreCase("ScaleOut", "scaleout"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("blade16", "blade"));
  EXPECT_FALSE(StartsWith("bla", "blade"));
  EXPECT_TRUE(EndsWith("server.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringsTest, ParseDouble) {
  EXPECT_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringsTest, ParseInt) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12ab").ok());
}

TEST(StringsTest, ParseBool) {
  EXPECT_TRUE(*ParseBool("true"));
  EXPECT_TRUE(*ParseBool("Yes"));
  EXPECT_TRUE(*ParseBool("1"));
  EXPECT_FALSE(*ParseBool("false"));
  EXPECT_FALSE(*ParseBool("off"));
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

}  // namespace
}  // namespace autoglobe
