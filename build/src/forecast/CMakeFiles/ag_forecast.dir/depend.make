# Empty dependencies file for ag_forecast.
# This may be replaced when dependencies are built.
