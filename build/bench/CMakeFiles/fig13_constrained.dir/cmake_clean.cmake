file(REMOVE_RECURSE
  "CMakeFiles/fig13_constrained.dir/fig13_constrained.cpp.o"
  "CMakeFiles/fig13_constrained.dir/fig13_constrained.cpp.o.d"
  "fig13_constrained"
  "fig13_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
