// Reproduces Figure 13: CPU load of all servers in the constrained
// mobility scenario at +15 % users. Expected shape: "the overload
// situations are on average shorter than in the static scenario, but
// due to the restrictions of the static user distribution, the
// overload situations cannot be prevented completely".

#include "scenario_figures.h"

int main() {
  return autoglobe::bench::RunServerLoadFigure(
      "Figure 13", autoglobe::Scenario::kConstrainedMobility);
}
