#ifndef AUTOGLOBE_AUTOGLOBE_CONSOLE_H_
#define AUTOGLOBE_AUTOGLOBE_CONSOLE_H_

#include <string>

#include "autoglobe/runner.h"

namespace autoglobe {

/// Text rendition of the administrator controller console (paper
/// Figure 8). The GUI's three views map to three renderers: the
/// server view (controlled servers grouped by category with load and
/// tenancy), the service view (instances, users, priorities), and the
/// message view (action log and alerts).
class Console {
 public:
  explicit Console(const SimulationRunner* runner);

  /// Server table: name, category, PI, CPU/mem load, instance list,
  /// protection flag.
  std::string RenderServerView() const;

  /// Service table: name, role, instances with states and hosts,
  /// users, average load, priority, protection flag.
  std::string RenderServiceView() const;

  /// The most recent `limit` administrative messages.
  std::string RenderMessageView(size_t limit = 20) const;

  /// SLA table: service, target, rolling satisfaction, violation
  /// totals. Empty string when no SLAs are configured.
  std::string RenderSlaView() const;

  /// All views concatenated (a full console refresh).
  std::string Render() const;

 private:
  const SimulationRunner* runner_;
};

}  // namespace autoglobe

#endif  // AUTOGLOBE_AUTOGLOBE_CONSOLE_H_
