#include "monitor/monitoring.h"

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe::monitor {

std::string_view TriggerKindName(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kServerOverloaded:
      return "serverOverloaded";
    case TriggerKind::kServerIdle:
      return "serverIdle";
    case TriggerKind::kServiceOverloaded:
      return "serviceOverloaded";
    case TriggerKind::kServiceIdle:
      return "serviceIdle";
    case TriggerKind::kInstanceFailed:
      return "instanceFailed";
    case TriggerKind::kServerFailed:
      return "serverFailed";
  }
  return "?";
}

LoadMonitoringSystem::LoadMonitoringSystem(LoadArchive* archive,
                                           MonitorConfig config)
    : archive_(archive), config_(config) {
  AG_CHECK(archive_ != nullptr);
}

std::string LoadMonitoringSystem::ArchiveKey(TriggerKind overload_kind,
                                             std::string_view name) {
  bool is_server = overload_kind == TriggerKind::kServerOverloaded ||
                   overload_kind == TriggerKind::kServerIdle;
  return StrFormat("%s/%.*s", is_server ? "server" : "service",
                   static_cast<int>(name.size()), name.data());
}

Status LoadMonitoringSystem::RegisterSubject(
    TriggerKind overload_kind, std::string name, double idle_divisor,
    std::optional<Duration> watch_override) {
  if (overload_kind != TriggerKind::kServerOverloaded &&
      overload_kind != TriggerKind::kServiceOverloaded) {
    return Status::InvalidArgument(
        "register subjects with their overload kind");
  }
  if (idle_divisor <= 0) {
    return Status::InvalidArgument("idle divisor must be positive");
  }
  if (subject_ids_.count(name) > 0) {
    return Status::AlreadyExists(
        StrFormat("subject \"%s\" already registered", name.c_str()));
  }
  if (watch_override.has_value() && *watch_override <= Duration::Zero()) {
    return Status::InvalidArgument("watchTime override must be positive");
  }
  SubjectState state;
  state.overload_kind = overload_kind;
  state.name = name;
  state.key = ArchiveKey(overload_kind, name);
  state.idle_threshold = config_.idle_threshold_base / idle_divisor;
  state.overload_watch =
      watch_override.value_or(config_.overload_watch_time);
  SubjectId id = static_cast<SubjectId>(subjects_.size());
  subjects_.push_back(std::move(state));
  subject_ids_.emplace(std::move(name), id);
  return Status::OK();
}

Result<SubjectId> LoadMonitoringSystem::SubjectIdOf(
    std::string_view name) const {
  auto it = subject_ids_.find(name);
  if (it == subject_ids_.end()) {
    return Status::NotFound(StrFormat("unregistered subject \"%.*s\"",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return it->second;
}

Result<Duration> LoadMonitoringSystem::WatchTime(
    std::string_view name) const {
  AG_ASSIGN_OR_RETURN(SubjectId id, SubjectIdOf(name));
  return subjects_[static_cast<size_t>(id)].overload_watch;
}

Status LoadMonitoringSystem::Observe(SimTime now, std::string_view name,
                                     double load,
                                     std::optional<double> detection_load) {
  AG_ASSIGN_OR_RETURN(SubjectId id, SubjectIdOf(name));
  return ObserveById(now, id, load, detection_load);
}

Status LoadMonitoringSystem::ObserveById(
    SimTime now, SubjectId subject, double load,
    std::optional<double> detection_load) {
  if (subject < 0 || static_cast<size_t>(subject) >= subjects_.size()) {
    return Status::NotFound(
        StrFormat("unregistered subject id %d", subject));
  }
  SubjectState& state = subjects_[static_cast<size_t>(subject)];
  // Quiescent fast path: the sample is indistinguishable (within
  // epsilon) from the carried value, cannot arm a watch (in-band),
  // and extends the uniform cadence — record it as one more pending
  // copy and skip evaluation. The in-band test uses the *actual*
  // load, so arming decisions are exact even with epsilon > 0.
  if (config_.dirty_tracking && state.phase == Phase::kNormal &&
      !detection_load.has_value() && state.has_last &&
      (config_.load_epsilon == 0.0
           ? load == state.last_value
           : load - state.last_value <= config_.load_epsilon &&
                 state.last_value - load <= config_.load_epsilon) &&
      !(load > config_.overload_threshold) &&
      !(load < state.idle_threshold) &&
      (state.pending_count == 0 ||
       now - state.last_at == state.pending_interval)) {
    if (state.pending_count == 0) {
      state.pending_first = now;
      state.pending_interval = now - state.last_at;
    }
    ++state.pending_count;
    state.last_at = now;
    ++skips_;
    return Status::OK();
  }
  AG_RETURN_IF_ERROR(MaterializeSubject(subject));
  ++evaluations_;
  if (!state.series) state.series = archive_->Acquire(state.key);
  AG_RETURN_IF_ERROR(archive_->Append(state.series, now, load));
  state.last_value = load;
  state.last_at = now;
  state.has_last = true;
  if (detection_load.has_value()) load = *detection_load;

  switch (state.phase) {
    case Phase::kNormal:
      // A threshold crossing arms the observation window; reaction is
      // deferred so that "immediate reaction on these peaks" cannot
      // destabilize the system (§2).
      if (load > config_.overload_threshold) {
        state.phase = Phase::kWatchingOverload;
        state.watch_started = now;
      } else if (load < state.idle_threshold) {
        state.phase = Phase::kWatchingIdle;
        state.watch_started = now;
      }
      return Status::OK();
    case Phase::kWatchingOverload: {
      Duration watch = state.overload_watch;
      if (now - state.watch_started < watch) return Status::OK();
      state.phase = Phase::kNormal;
      AG_ASSIGN_OR_RETURN(double average,
                          archive_->Average(state.series, watch, now));
      if (average > config_.overload_threshold) {
        Confirm(Trigger{state.overload_kind, state.name, now, average});
      }
      return Status::OK();
    }
    case Phase::kWatchingIdle: {
      Duration watch = config_.idle_watch_time;
      if (now - state.watch_started < watch) return Status::OK();
      state.phase = Phase::kNormal;
      AG_ASSIGN_OR_RETURN(double average,
                          archive_->Average(state.series, watch, now));
      if (average < state.idle_threshold) {
        TriggerKind idle_kind =
            state.overload_kind == TriggerKind::kServerOverloaded
                ? TriggerKind::kServerIdle
                : TriggerKind::kServiceIdle;
        Confirm(Trigger{idle_kind, state.name, now, average});
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad monitoring phase");
}

Status LoadMonitoringSystem::MaterializeSubject(SubjectId subject) {
  if (subject < 0 || static_cast<size_t>(subject) >= subjects_.size()) {
    return Status::NotFound(
        StrFormat("unregistered subject id %d", subject));
  }
  SubjectState& state = subjects_[static_cast<size_t>(subject)];
  if (state.pending_count == 0) return Status::OK();
  // Replay the exact Append calls the skipped ticks would have made —
  // same values, same times, same order — so retention eviction and
  // aggregate folding land in a bit-identical archive state. (Note a
  // single bulk insert of count * value would NOT be equivalent: FP
  // summation inside the aggregate buckets is order-sensitive.)
  if (!state.series) state.series = archive_->Acquire(state.key);
  int64_t count = state.pending_count;
  state.pending_count = 0;
  for (int64_t i = 0; i < count; ++i) {
    AG_RETURN_IF_ERROR(archive_->Append(
        state.series, state.pending_first + state.pending_interval * i,
        state.last_value));
  }
  return Status::OK();
}

Status LoadMonitoringSystem::MaterializeAll() {
  for (size_t i = 0; i < subjects_.size(); ++i) {
    AG_RETURN_IF_ERROR(MaterializeSubject(static_cast<SubjectId>(i)));
  }
  return Status::OK();
}

void LoadMonitoringSystem::ResetObservations() {
  for (SubjectState& subject : subjects_) {
    subject.phase = Phase::kNormal;
    subject.watch_started = SimTime::Start();
    subject.last_value = 0.0;
    subject.last_at = SimTime::Start();
    subject.has_last = false;
    subject.pending_first = SimTime::Start();
    subject.pending_interval = Duration::Zero();
    subject.pending_count = 0;
  }
  for (HeartbeatState& heartbeat : heartbeats_) {
    heartbeat.last_seen = SimTime::Start();
    heartbeat.reported = false;
  }
  triggers_fired_ = 0;
  evaluations_ = 0;
  skips_ = 0;
}

Status LoadMonitoringSystem::WatchHeartbeat(TriggerKind failed_kind,
                                            std::string key,
                                            std::string subject,
                                            SimTime now,
                                            uint64_t instance) {
  if (failed_kind != TriggerKind::kInstanceFailed &&
      failed_kind != TriggerKind::kServerFailed) {
    return Status::InvalidArgument(
        "watch heartbeats with a failure trigger kind");
  }
  auto it = heartbeat_ids_.find(key);
  if (it != heartbeat_ids_.end()) {
    HeartbeatState& state = heartbeats_[it->second];
    if (state.active) {
      return Status::AlreadyExists(
          StrFormat("heartbeat \"%s\" already watched", key.c_str()));
    }
    state.failed_kind = failed_kind;
    state.subject = std::move(subject);
    state.instance = instance;
    state.last_seen = now;
    state.active = true;
    state.reported = false;
    return Status::OK();
  }
  HeartbeatState state;
  state.failed_kind = failed_kind;
  state.key = key;
  state.subject = std::move(subject);
  state.instance = instance;
  state.last_seen = now;
  heartbeat_ids_.emplace(std::move(key), heartbeats_.size());
  heartbeats_.push_back(std::move(state));
  return Status::OK();
}

Status LoadMonitoringSystem::UnwatchHeartbeat(std::string_view key) {
  auto it = heartbeat_ids_.find(key);
  if (it == heartbeat_ids_.end() || !heartbeats_[it->second].active) {
    return Status::NotFound(StrFormat("heartbeat \"%.*s\" not watched",
                                      static_cast<int>(key.size()),
                                      key.data()));
  }
  heartbeats_[it->second].active = false;
  return Status::OK();
}

Status LoadMonitoringSystem::RecordHeartbeat(std::string_view key,
                                             SimTime now) {
  auto it = heartbeat_ids_.find(key);
  if (it == heartbeat_ids_.end() || !heartbeats_[it->second].active) {
    return Status::NotFound(StrFormat("heartbeat \"%.*s\" not watched",
                                      static_cast<int>(key.size()),
                                      key.data()));
  }
  HeartbeatState& state = heartbeats_[it->second];
  state.last_seen = now;
  state.reported = false;
  return Status::OK();
}

Result<size_t> LoadMonitoringSystem::HeartbeatIdOf(
    std::string_view key) const {
  auto it = heartbeat_ids_.find(key);
  if (it == heartbeat_ids_.end()) {
    return Status::NotFound(StrFormat("heartbeat \"%.*s\" not watched",
                                      static_cast<int>(key.size()),
                                      key.data()));
  }
  return it->second;
}

Status LoadMonitoringSystem::RecordHeartbeatById(size_t id, SimTime now) {
  if (id >= heartbeats_.size() || !heartbeats_[id].active) {
    return Status::NotFound(
        StrFormat("heartbeat slot %zu not watched", id));
  }
  HeartbeatState& state = heartbeats_[id];
  state.last_seen = now;
  state.reported = false;
  return Status::OK();
}

void LoadMonitoringSystem::CheckHeartbeats(SimTime now) {
  Duration deadline = config_.heartbeat_interval *
                      static_cast<int64_t>(config_.heartbeat_miss_threshold);
  for (HeartbeatState& state : heartbeats_) {
    if (!state.active || state.reported) continue;
    if (now - state.last_seen < deadline) continue;
    state.reported = true;
    Trigger trigger{state.failed_kind, state.subject, now, 0.0,
                    state.instance};
    Confirm(std::move(trigger));
  }
}

size_t LoadMonitoringSystem::active_heartbeat_watches() const {
  size_t count = 0;
  for (const HeartbeatState& state : heartbeats_) {
    if (state.active) ++count;
  }
  return count;
}

void LoadMonitoringSystem::SaveState(ByteWriter* w) const {
  w->U64(subjects_.size());
  for (const SubjectState& subject : subjects_) {
    w->Str(subject.name);
    w->U8(static_cast<uint8_t>(subject.phase));
    w->I64(subject.watch_started.seconds());
    w->F64(subject.last_value);
    w->I64(subject.last_at.seconds());
    w->U8(subject.has_last ? 1 : 0);
    w->I64(subject.pending_first.seconds());
    w->I64(subject.pending_interval.seconds());
    w->I64(subject.pending_count);
  }
  w->U64(heartbeats_.size());
  for (const HeartbeatState& state : heartbeats_) {
    w->U8(static_cast<uint8_t>(state.failed_kind));
    w->Str(state.key);
    w->Str(state.subject);
    w->U64(state.instance);
    w->I64(state.last_seen.seconds());
    w->U8(state.active ? 1 : 0);
    w->U8(state.reported ? 1 : 0);
  }
  w->I64(triggers_fired_);
  w->I64(evaluations_);
  w->I64(skips_);
}

Status LoadMonitoringSystem::RestoreState(ByteReader* r) {
  uint64_t subject_count = 0;
  AG_ASSIGN_OR_RETURN(subject_count, r->U64());
  if (subject_count != subjects_.size()) {
    return Status::ParseError(StrFormat(
        "snapshot has %llu monitoring subjects, landscape has %zu",
        static_cast<unsigned long long>(subject_count), subjects_.size()));
  }
  for (uint64_t i = 0; i < subject_count; ++i) {
    std::string name;
    AG_ASSIGN_OR_RETURN(name, r->Str());
    auto it = subject_ids_.find(name);
    if (it == subject_ids_.end()) {
      return Status::ParseError(StrFormat(
          "snapshot subject \"%s\" is not registered", name.c_str()));
    }
    SubjectState& subject = subjects_[static_cast<size_t>(it->second)];
    uint8_t phase = 0;
    AG_ASSIGN_OR_RETURN(phase, r->U8());
    if (phase > static_cast<uint8_t>(Phase::kWatchingIdle)) {
      return Status::ParseError(
          StrFormat("bad monitoring phase %u", unsigned{phase}));
    }
    subject.phase = static_cast<Phase>(phase);
    int64_t seconds = 0;
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    subject.watch_started = SimTime::FromSeconds(seconds);
    AG_ASSIGN_OR_RETURN(subject.last_value, r->F64());
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    subject.last_at = SimTime::FromSeconds(seconds);
    uint8_t has_last = 0;
    AG_ASSIGN_OR_RETURN(has_last, r->U8());
    subject.has_last = has_last != 0;
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    subject.pending_first = SimTime::FromSeconds(seconds);
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    subject.pending_interval = Duration::Seconds(seconds);
    AG_ASSIGN_OR_RETURN(subject.pending_count, r->I64());
  }
  uint64_t heartbeat_count = 0;
  AG_ASSIGN_OR_RETURN(heartbeat_count, r->U64());
  std::vector<HeartbeatState> heartbeats;
  std::map<std::string, size_t, std::less<>> heartbeat_ids;
  heartbeats.reserve(heartbeat_count);
  for (uint64_t i = 0; i < heartbeat_count; ++i) {
    HeartbeatState state;
    uint8_t kind = 0;
    AG_ASSIGN_OR_RETURN(kind, r->U8());
    if (kind != static_cast<uint8_t>(TriggerKind::kInstanceFailed) &&
        kind != static_cast<uint8_t>(TriggerKind::kServerFailed)) {
      return Status::ParseError(
          StrFormat("bad heartbeat trigger kind %u", unsigned{kind}));
    }
    state.failed_kind = static_cast<TriggerKind>(kind);
    AG_ASSIGN_OR_RETURN(state.key, r->Str());
    AG_ASSIGN_OR_RETURN(state.subject, r->Str());
    AG_ASSIGN_OR_RETURN(state.instance, r->U64());
    int64_t seconds = 0;
    AG_ASSIGN_OR_RETURN(seconds, r->I64());
    state.last_seen = SimTime::FromSeconds(seconds);
    uint8_t flag = 0;
    AG_ASSIGN_OR_RETURN(flag, r->U8());
    state.active = flag != 0;
    AG_ASSIGN_OR_RETURN(flag, r->U8());
    state.reported = flag != 0;
    if (!heartbeat_ids.emplace(state.key, heartbeats.size()).second) {
      return Status::ParseError(StrFormat(
          "duplicate heartbeat key \"%s\"", state.key.c_str()));
    }
    heartbeats.push_back(std::move(state));
  }
  heartbeats_ = std::move(heartbeats);
  heartbeat_ids_ = std::move(heartbeat_ids);
  AG_ASSIGN_OR_RETURN(triggers_fired_, r->I64());
  AG_ASSIGN_OR_RETURN(evaluations_, r->I64());
  AG_ASSIGN_OR_RETURN(skips_, r->I64());
  return Status::OK();
}

void LoadMonitoringSystem::Confirm(Trigger trigger) {
  ++triggers_fired_;
  if (trace_ != nullptr) {
    trace_->Record(trigger.at, obs::TraceEventKind::kTriggerConfirmed,
                   TriggerKindName(trigger.kind),
                   StrFormat("%s avg=%.4f", trigger.subject.c_str(),
                             trigger.average_load));
  }
  if (callback_) callback_(std::move(trigger));
}

}  // namespace autoglobe::monitor
