# Empty compiler generated dependencies file for fig17_fi_full_mobility.
# This may be replaced when dependencies are built.
