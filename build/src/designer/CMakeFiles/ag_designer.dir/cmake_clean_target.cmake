file(REMOVE_RECURSE
  "libag_designer.a"
)
