file(REMOVE_RECURSE
  "CMakeFiles/ag_xml.dir/xml.cc.o"
  "CMakeFiles/ag_xml.dir/xml.cc.o.d"
  "libag_xml.a"
  "libag_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
