#include "common/fastmath.h"

#include <cmath>
#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace autoglobe {
namespace {

// Distance in ulps between a double result and a long-double reference,
// measured in units of the double's own spacing around the reference.
double UlpError(double got, long double ref) {
  if (static_cast<long double>(got) == ref) return 0.0;
  double ref_d = static_cast<double>(ref);
  double spacing = std::nextafter(std::fabs(ref_d),
                                  std::numeric_limits<double>::infinity()) -
                   std::fabs(ref_d);
  if (spacing <= 0.0) spacing = std::numeric_limits<double>::denorm_min();
  return std::fabs(static_cast<double>(static_cast<long double>(got) - ref)) /
         spacing;
}

TEST(FastLogTest, MatchesLongDoubleReferenceOnUnitInterval) {
  Rng rng(101);
  double worst = 0.0;
  for (int i = 0; i < 200000; ++i) {
    double x = rng.NextDouble();
    if (x <= 0.0) continue;
    double got = FastLog(x);
    long double ref = logl(static_cast<long double>(x));
    double err = UlpError(got, ref);
    worst = std::max(worst, err);
    ASSERT_LE(err, 2.0) << "x = " << x;
  }
  EXPECT_LE(worst, 2.0);
}

TEST(FastLogTest, EdgeProbes) {
  // Smallest uniform Box-Muller can feed it, exact halves, and values
  // straddling the sqrt(2)/2 normalization split.
  const double probes[] = {0x1.0p-53, 0.5,
                           0x1.6a09e667f3bccp-1,  // just below sqrt(2)/2
                           0x1.6a09e667f3bcdp-1,  // nearest sqrt(2)/2
                           0x1.fffffffffffffp-1,  // largest < 1
                           1.0, 0.25, 0.75};
  for (double x : probes) {
    double got = FastLog(x);
    long double ref = logl(static_cast<long double>(x));
    EXPECT_LE(UlpError(got, ref), 2.0) << "x = " << x;
  }
  EXPECT_EQ(FastLog(1.0), 0.0);
}

TEST(FastSinCosTest, MatchesLongDoubleReferenceOnTwoPi) {
  constexpr double kTwoPi = 6.28318530717958647692528676655900577;
  Rng rng(202);
  double worst_sin = 0.0;
  double worst_cos = 0.0;
  for (int i = 0; i < 200000; ++i) {
    double theta = rng.NextDouble() * kTwoPi;
    double s, c;
    FastSinCos(theta, &s, &c);
    long double rs = sinl(static_cast<long double>(theta));
    long double rc = cosl(static_cast<long double>(theta));
    double es = UlpError(s, rs);
    double ec = UlpError(c, rc);
    worst_sin = std::max(worst_sin, es);
    worst_cos = std::max(worst_cos, ec);
    ASSERT_LE(es, 2.0) << "theta = " << theta;
    ASSERT_LE(ec, 2.0) << "theta = " << theta;
  }
  EXPECT_LE(worst_sin, 2.0);
  EXPECT_LE(worst_cos, 2.0);
}

TEST(FastSinCosTest, EdgeProbes) {
  // Quadrant boundaries are the hard cases: near pi/2 the cosine is
  // ~2^-54, so any reduction error is magnified enormously in ulps.
  const double probes[] = {
      0.0,
      0x1.921fb54442d18p+0,  // nearest double to pi/2
      0x1.921fb54442d19p+0,
      0x1.921fb54442d18p+1,  // nearest double to pi
      0x1.2d97c7f3321d2p+2,  // nearest double to 3*pi/2
      0x1.921fb54442d17p+2,  // just below 2*pi
      1e-9, 0.785398163397448279,  // ~pi/4 (reduction split)
      0.785398163397448390,
  };
  for (double theta : probes) {
    double s, c;
    FastSinCos(theta, &s, &c);
    EXPECT_LE(UlpError(s, sinl(static_cast<long double>(theta))), 2.0)
        << "theta = " << theta;
    EXPECT_LE(UlpError(c, cosl(static_cast<long double>(theta))), 2.0)
        << "theta = " << theta;
  }
  double s0, c0;
  FastSinCos(0.0, &s0, &c0);
  EXPECT_EQ(s0, 0.0);
  EXPECT_EQ(c0, 1.0);
}

TEST(FastSinCosTest, PythagoreanIdentityHolds) {
  constexpr double kTwoPi = 6.28318530717958647692528676655900577;
  Rng rng(303);
  for (int i = 0; i < 10000; ++i) {
    double theta = rng.NextDouble() * kTwoPi;
    double s, c;
    FastSinCos(theta, &s, &c);
    EXPECT_NEAR(s * s + c * c, 1.0, 1e-15);
  }
}

}  // namespace
}  // namespace autoglobe
