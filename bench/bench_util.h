#ifndef AUTOGLOBE_BENCH_BENCH_UTIL_H_
#define AUTOGLOBE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "autoglobe/capacity.h"
#include "autoglobe/runner.h"
#include "bench_report.h"
#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe::bench {

// WallTimer, BenchRecord and WriteBenchJson moved to bench_report.h
// (the schema shared with the google-benchmark reporter); this header
// keeps the simulation-level scenario helpers.

/// One sampled row of a scenario run: time plus per-server CPU loads.
struct LoadRow {
  SimTime at;
  std::map<std::string, double> server_cpu;
  double average = 0.0;
};

struct ScenarioRunResult {
  std::vector<LoadRow> rows;
  RunMetrics metrics;
  std::vector<std::string> messages;
  /// service -> (time, per-instance "SERVICE on SERVER" loads).
  std::vector<std::map<std::string, double>> service_instance_rows;
};

/// Runs a paper scenario for the standard 80 hours at `user_scale`,
/// sampling all server loads every `sample_every` and, when
/// `trace_service` is non-empty, the per-instance loads of that
/// service (for the Figure 15-17 reproductions).
inline ScenarioRunResult RunScenario(Scenario scenario, double user_scale,
                                     Duration sample_every,
                                     const std::string& trace_service = "",
                                     uint64_t seed = 42) {
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = MakeScenarioConfig(scenario, user_scale, seed);
  auto runner = SimulationRunner::Create(landscape, config);
  AG_CHECK_OK(runner.status());

  ScenarioRunResult result;
  int64_t sample_s = sample_every.seconds();
  (*runner)->set_sample_hook([&](SimTime now,
                                 const workload::DemandEngine& demand,
                                 const infra::Cluster& cluster) {
    if (now.seconds() % sample_s != 0) return;
    LoadRow row;
    row.at = now;
    double total = 0.0;
    const infra::LandscapeIndex& index = cluster.Index();
    for (size_t s = 0; s < index.num_servers(); ++s) {
      infra::DenseId id = static_cast<infra::DenseId>(s);
      double cpu = demand.ServerCpuLoadById(id);
      row.server_cpu[index.ServerName(id)] = cpu;
      total += cpu;
    }
    row.average = row.server_cpu.empty()
                      ? 0.0
                      : total / static_cast<double>(row.server_cpu.size());
    result.rows.push_back(std::move(row));
    if (!trace_service.empty()) {
      std::map<std::string, double> instances;
      for (const infra::ServiceInstance* instance :
           cluster.InstancesOf(trace_service)) {
        instances[instance->service + " on " + instance->server] =
            demand.InstanceLoad(instance->id);
      }
      result.service_instance_rows.push_back(std::move(instances));
    }
  });
  AG_CHECK_OK((*runner)->Run());
  result.metrics = (*runner)->metrics();
  result.messages = (*runner)->messages();
  return result;
}

/// Prints the per-server load series as a CSV-ish table (time in
/// simulated d/hh:mm, loads in percent) followed by a summary — the
/// data behind Figures 12-14.
inline void PrintServerSeries(const ScenarioRunResult& result) {
  if (result.rows.empty()) return;
  std::printf("time");
  for (const auto& [server, load] : result.rows.front().server_cpu) {
    std::printf(",%s", server.c_str());
  }
  std::printf(",Average\n");
  for (const LoadRow& row : result.rows) {
    std::printf("%s", row.at.ToString().c_str());
    for (const auto& [server, load] : row.server_cpu) {
      std::printf(",%.0f", load * 100.0);
    }
    std::printf(",%.1f\n", row.average * 100.0);
  }
}

inline void PrintRunSummary(const char* label,
                            const ScenarioRunResult& result) {
  const RunMetrics& m = result.metrics;
  std::printf(
      "# %s: avg load %.1f%%, overload %.0f server-min "
      "(%.2f%% of samples, max streak %.0f min), lost work %.1f wu, "
      "%lld triggers, %lld actions, %lld alerts\n",
      label, m.average_cpu_load * 100.0, m.overload_server_minutes,
      m.overload_fraction * 100.0, m.max_overload_streak_minutes,
      m.lost_work_wu, static_cast<long long>(m.triggers),
      static_cast<long long>(m.actions_executed),
      static_cast<long long>(m.alerts));
}

}  // namespace autoglobe::bench

#endif  // AUTOGLOBE_BENCH_BENCH_UTIL_H_
