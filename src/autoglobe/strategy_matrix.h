#ifndef AUTOGLOBE_AUTOGLOBE_STRATEGY_MATRIX_H_
#define AUTOGLOBE_AUTOGLOBE_STRATEGY_MATRIX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "autoglobe/capacity.h"
#include "autoglobe/runner.h"
#include "faults/plan.h"
#include "strategy/strategy.h"

namespace autoglobe {

/// The head-to-head controller harness: every
/// (strategy x scenario x fault-plan x seed) combination runs as an
/// independent cell, so "does the learner beat the paper's static
/// rule base" becomes one table instead of an anecdote.
struct StrategyMatrixOptions {
  /// Contestants; default all three.
  std::vector<strategy::StrategyKind> strategies = {
      strategy::StrategyKind::kStaticFuzzy,
      strategy::StrategyKind::kProportionalThreshold,
      strategy::StrategyKind::kFuzzyQLearning,
  };
  /// Paper scenarios; in the static scenario the control loop is off,
  /// so all strategies are inert there — it is the common no-control
  /// baseline row.
  std::vector<Scenario> scenarios = {
      Scenario::kStatic,
      Scenario::kConstrainedMobility,
      Scenario::kFullMobility,
  };
  /// Replication seeds (>= 3 for the headline table).
  std::vector<uint64_t> seeds = {42, 43, 44};
  /// Draw discipline for every cell (see RunnerConfig::rng_kind).
  RngKind rng_kind = RngKind::kXoshiro;
  double user_scale = 1.25;
  Duration run_duration = Duration::Hours(24);
  Duration warmup = Duration::Hours(4);
  /// When set, every (strategy, scenario, seed) additionally runs a
  /// faulted variant with this plan injected, and those cells report
  /// MTTD/MTTR from the self-healing pipeline.
  std::optional<faults::FaultPlan> fault_plan;
  /// Per-service SLA attached to every controller-enabled cell; the
  /// violation minutes/episodes are the harness's headline metric and
  /// the learner's reward signal.
  double sla_min_satisfaction = 0.97;
  Duration sla_window = Duration::Minutes(30);
  /// Worker threads for the cell fan-out (0 = hardware threads). Cell
  /// seeds derive from the cell spec alone, so results are
  /// bit-identical at any parallelism.
  int parallelism = 0;
  /// Lockstep lanes for the batch-eligible cells (the static-scenario
  /// static-strategy unfaulted column: controller off, no SLAs, no
  /// faults). 0 or 1 = run those scalar too.
  size_t batch_lanes = 8;
  strategy::ProportionalConfig proportional;
  strategy::QLearnConfig qlearn;
};

/// One finished cell.
struct StrategyMatrixCell {
  strategy::StrategyKind strategy = strategy::StrategyKind::kStaticFuzzy;
  Scenario scenario = Scenario::kStatic;
  bool faulted = false;
  uint64_t seed = 42;
  /// True when the cell ran on the lockstep batch path.
  bool batched = false;
  RunMetrics metrics;
  int64_t sla_violation_episodes = 0;
  /// Fault-cell availability numbers (0 when the cell has no plan).
  double mttr_minutes_mean = 0.0;
  double mttd_minutes_mean = 0.0;
  double availability = 1.0;
};

/// Seed-mean aggregate of one (strategy, scenario, faulted) group —
/// one row of the rendered table.
struct StrategyMatrixRow {
  strategy::StrategyKind strategy = strategy::StrategyKind::kStaticFuzzy;
  Scenario scenario = Scenario::kStatic;
  bool faulted = false;
  int seeds = 0;
  double sla_violation_minutes = 0.0;
  double sla_violation_episodes = 0.0;
  double overload_server_minutes = 0.0;
  double max_overload_streak_minutes = 0.0;
  double oscillations = 0.0;
  double actions_executed = 0.0;
  double average_cpu_load = 0.0;
  double lost_work_wu = 0.0;
  double mttr_minutes_mean = 0.0;
  double availability = 1.0;
};

struct StrategyMatrixResult {
  StrategyMatrixOptions options;
  std::vector<StrategyMatrixCell> cells;
  /// One row per (strategy, scenario, faulted) group, in the
  /// deterministic cell order (strategy-major, then scenario, then
  /// faulted).
  std::vector<StrategyMatrixRow> rows;
};

/// The cell's full RunnerConfig (strategy block, SLAs, fault plan);
/// exposed so tests can assert batch eligibility per cell.
RunnerConfig MakeStrategyCellConfig(const StrategyMatrixOptions& options,
                                    strategy::StrategyKind kind,
                                    Scenario scenario, bool faulted,
                                    uint64_t seed);

/// Runs the whole matrix, fanning cells over a worker pool and
/// folding batch-eligible cells into lockstep lanes. Deterministic:
/// the result is bit-identical at any parallelism / lane count.
Result<StrategyMatrixResult> RunStrategyMatrix(
    const StrategyMatrixOptions& options);

/// Human-readable table of the seed-mean rows.
std::string RenderStrategyMatrix(const StrategyMatrixResult& result);

}  // namespace autoglobe

#endif  // AUTOGLOBE_AUTOGLOBE_STRATEGY_MATRIX_H_
