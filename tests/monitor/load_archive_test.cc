#include "monitor/load_archive.h"

#include <fstream>

#include <gtest/gtest.h>

namespace autoglobe::monitor {
namespace {

SimTime Min(int m) { return SimTime::Start() + Duration::Minutes(m); }

TEST(LoadArchiveTest, AppendAndLatest) {
  LoadArchive archive;
  EXPECT_FALSE(archive.Latest("server/x").ok());
  ASSERT_TRUE(archive.Append("server/x", Min(1), 0.5).ok());
  ASSERT_TRUE(archive.Append("server/x", Min(2), 0.7).ok());
  EXPECT_DOUBLE_EQ(*archive.Latest("server/x"), 0.7);
}

TEST(LoadArchiveTest, RejectsOutOfOrderSamples) {
  LoadArchive archive;
  ASSERT_TRUE(archive.Append("k", Min(5), 0.5).ok());
  EXPECT_FALSE(archive.Append("k", Min(4), 0.5).ok());
  // Equal timestamps are tolerated.
  EXPECT_TRUE(archive.Append("k", Min(5), 0.6).ok());
}

TEST(LoadArchiveTest, AverageOverWindow) {
  LoadArchive archive;
  for (int m = 1; m <= 20; ++m) {
    ASSERT_TRUE(archive.Append("k", Min(m), m <= 10 ? 0.2 : 0.8).ok());
  }
  // Last 10 minutes: all 0.8 (the watchTime average of §2).
  EXPECT_NEAR(*archive.Average("k", Duration::Minutes(10), Min(20)), 0.8,
              1e-12);
  // Last 20 minutes: half/half.
  EXPECT_NEAR(*archive.Average("k", Duration::Minutes(20), Min(20)), 0.5,
              1e-12);
  // Empty window errors.
  EXPECT_FALSE(
      archive.Average("k", Duration::Minutes(5), Min(100)).ok());
  EXPECT_FALSE(archive.Average("ghost", Duration::Minutes(5), Min(5)).ok());
}

TEST(LoadArchiveTest, HandleBypassesKeyLookup) {
  LoadArchive archive;
  LoadArchive::Handle handle = archive.Acquire("server/x");
  ASSERT_TRUE(handle);
  // Acquire is idempotent: the same key resolves to the same series.
  ASSERT_TRUE(archive.Append(handle, Min(1), 0.4).ok());
  ASSERT_TRUE(archive.Append(archive.Acquire("server/x"), Min(2), 0.6).ok());
  EXPECT_DOUBLE_EQ(*archive.Latest(handle), 0.6);
  EXPECT_DOUBLE_EQ(*archive.Latest("server/x"), 0.6);
  EXPECT_NEAR(*archive.Average(handle, Duration::Minutes(10), Min(2)), 0.5,
              1e-12);
  // Handle and name lookups agree bit-for-bit.
  EXPECT_EQ(*archive.Average(handle, Duration::Minutes(10), Min(2)),
            *archive.Average("server/x", Duration::Minutes(10), Min(2)));
  // Error paths keep reporting the series key.
  LoadArchive::Handle empty = archive.Acquire("server/empty");
  auto missing = archive.Latest(empty);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("server/empty"),
            std::string::npos);
}

TEST(LoadArchiveTest, RawBetweenIsHalfOpen) {
  LoadArchive archive;
  for (int m = 1; m <= 5; ++m) {
    ASSERT_TRUE(archive.Append("k", Min(m), m).ok());
  }
  auto samples = archive.RawBetween("k", Min(1), Min(4));
  ASSERT_EQ(samples.size(), 3u);  // (1, 4]: minutes 2, 3, 4
  EXPECT_DOUBLE_EQ(samples.front().value, 2);
  EXPECT_DOUBLE_EQ(samples.back().value, 4);
  EXPECT_TRUE(archive.RawBetween("ghost", Min(0), Min(10)).empty());
}

TEST(LoadArchiveTest, RawRetentionEvicts) {
  LoadArchive archive(Duration::Hours(1), Duration::Minutes(15));
  ASSERT_TRUE(archive.Append("k", Min(0), 1.0).ok());
  ASSERT_TRUE(archive.Append("k", Min(90), 2.0).ok());
  // The 0-minute sample fell out of the 1-hour raw window.
  EXPECT_TRUE(archive.RawBetween("k", Min(0) - Duration::Minutes(1), Min(30))
                  .empty());
  EXPECT_DOUBLE_EQ(*archive.Latest("k"), 2.0);
}

TEST(LoadArchiveTest, AggregationFoldsBuckets) {
  LoadArchive archive(Duration::Hours(48), Duration::Minutes(15));
  // Two full buckets of constant values plus one open bucket.
  for (int m = 0; m < 15; ++m) {
    ASSERT_TRUE(archive.Append("k", Min(m), 0.2).ok());
  }
  for (int m = 15; m < 30; ++m) {
    ASSERT_TRUE(archive.Append("k", Min(m), 0.6).ok());
  }
  ASSERT_TRUE(archive.Append("k", Min(30), 1.0).ok());
  auto aggregated = archive.Aggregated("k");
  ASSERT_EQ(aggregated.size(), 3u);
  EXPECT_NEAR(aggregated[0].value, 0.2, 1e-12);
  EXPECT_EQ(aggregated[0].at, Min(0));
  EXPECT_NEAR(aggregated[1].value, 0.6, 1e-12);
  EXPECT_EQ(aggregated[1].at, Min(15));
  EXPECT_NEAR(aggregated[2].value, 1.0, 1e-12);
}

TEST(LoadArchiveTest, AggregatesSurviveRawEviction) {
  // "The load archive stores a persistent aggregated view of historic
  //  load data" — aggregates outlive the raw retention window.
  LoadArchive archive(Duration::Hours(1), Duration::Minutes(15));
  for (int m = 0; m <= 48 * 60; m += 5) {
    ASSERT_TRUE(archive.Append("k", Min(m), 0.5).ok());
  }
  auto aggregated = archive.Aggregated("k");
  EXPECT_GT(aggregated.size(), 150u);  // ~4 buckets/hour * 48 h
  EXPECT_EQ(aggregated.front().at, Min(0));
}

TEST(LoadArchiveTest, KeysLists) {
  LoadArchive archive;
  ASSERT_TRUE(archive.Append("server/a", Min(1), 1).ok());
  ASSERT_TRUE(archive.Append("service/b", Min(1), 1).ok());
  auto keys = archive.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "server/a");
  EXPECT_EQ(keys[1], "service/b");
}

TEST(LoadArchiveTest, SaveAndLoadRoundTrip) {
  LoadArchive archive(Duration::Hours(48), Duration::Minutes(15));
  for (int m = 0; m < 60; ++m) {
    ASSERT_TRUE(archive.Append("server/x", Min(m), 0.25).ok());
    ASSERT_TRUE(archive.Append("service/y", Min(m), 0.75).ok());
  }
  std::string path = testing::TempDir() + "/ag_archive_test.txt";
  ASSERT_TRUE(archive.Save(path).ok());
  auto loaded = LoadArchive::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Keys().size(), 2u);
  auto aggregated = loaded->Aggregated("server/x");
  ASSERT_FALSE(aggregated.empty());
  EXPECT_NEAR(aggregated[0].value, 0.25, 1e-9);
  EXPECT_FALSE(LoadArchive::Load("/nonexistent/nope").ok());
}

TEST(LoadArchiveTest, LoadRejectsGarbage) {
  std::string path = testing::TempDir() + "/ag_archive_garbage.txt";
  {
    std::ofstream out(path);
    out << "not an archive\n";
  }
  EXPECT_FALSE(LoadArchive::Load(path).ok());
}

}  // namespace
}  // namespace autoglobe::monitor
