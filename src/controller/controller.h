#ifndef AUTOGLOBE_CONTROLLER_CONTROLLER_H_
#define AUTOGLOBE_CONTROLLER_CONTROLLER_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzy/compiled.h"
#include "fuzzy/inference.h"
#include "infra/cluster.h"
#include "controller/reservations.h"
#include "infra/executor.h"
#include "monitor/monitoring.h"
#include "monitor/pool_stats.h"
#include "obs/audit.h"

namespace autoglobe::controller {

/// Read-only view of the load situation, decoupling the controller
/// from the workload engine. Server- and service-level values should
/// be the arithmetic means over the subject's watchTime (paper §4.1:
/// "All variables of the fuzzy controller regarding CPU or memory
/// load are set to the arithmetic means of the load values during the
/// service specific watchTime"); instance values may be current
/// measurements.
class LoadView {
 public:
  virtual ~LoadView() = default;
  virtual double ServerCpuLoad(std::string_view server) const = 0;
  virtual double ServerMemLoad(std::string_view server) const = 0;
  virtual double InstanceLoad(infra::InstanceId id) const = 0;
  virtual double ServiceLoad(std::string_view service) const = 0;
};

/// Controller operating mode (§4.3).
enum class ControllerMode {
  /// Actions are logged and then executed.
  kAutomatic,
  /// The human administrator is asked to confirm each action.
  kSemiAutomatic,
};

/// Tunables of the decision process.
struct ControllerConfig {
  /// "Actions whose applicability value is lower than an
  /// administrator-controlled minimum threshold are discarded."
  double min_applicability = 0.30;
  /// Hosts scoring below this are not considered.
  double min_host_score = 0.15;
  fuzzy::Defuzzifier defuzzifier = fuzzy::Defuzzifier::kLeftmostMax;
  ControllerMode mode = ControllerMode::kAutomatic;
  /// Hierarchical server selection (needs set_pool_stats): rank the
  /// landscape's server pools by mean load first and evaluate hosts
  /// pool by pool, lightest pool first, stopping at the first pool
  /// that yields a candidate — O(pools + pool-size) instead of
  /// O(fleet) per trigger. Falls back to scanning every pool when
  /// none yields a host. Off by default: the exhaustive scan ranks
  /// *all* feasible hosts, which the paper-landscape goldens pin.
  bool pool_prescreen = false;
};

/// An action together with its defuzzified applicability (0..1).
struct ScoredAction {
  infra::Action action;
  double applicability = 0.0;
};

/// A candidate target host with its suitability score.
struct ScoredServer {
  std::string server;
  double score = 0.0;
};

/// Result of handling one trigger.
struct ControllerOutcome {
  /// The executed action, if any.
  std::optional<infra::Action> executed;
  /// All candidate actions that were considered (ranked).
  std::vector<ScoredAction> considered;
  /// True when no action/host combination worked and the
  /// administrator was alerted.
  bool alerted = false;
  /// True when the subject was in protection mode and nothing ran.
  bool skipped_protected = false;
};

/// The AutoGlobe fuzzy controller module (§4): an action-selection
/// fuzzy controller reacting to exceptional situations, and a
/// server-selection fuzzy controller choosing target hosts; wired
/// together with constraint verification and the fallback loop of
/// Figure 6 (next host, next action, alert administrator).
class Controller {
 public:
  /// Returns true to approve an action (semi-automatic mode).
  using ApprovalCallback = std::function<bool(const infra::Action&)>;
  /// Invoked when the controller needs human interaction.
  using AlertCallback = std::function<void(const monitor::Trigger&,
                                           const std::string& reason)>;

  /// Builds a controller with the default rule bases installed.
  static Result<Controller> Create(infra::Cluster* cluster,
                                   infra::ActionExecutor* executor,
                                   const LoadView* view,
                                   ControllerConfig config = {});

  Controller(Controller&&) = default;
  Controller& operator=(Controller&&) = default;

  // --- Rule-base management (§4.1: "an administrator can add
  // service-specific rule bases for mission critical services") ------
  Status SetActionRuleBase(monitor::TriggerKind kind, fuzzy::RuleBase rb);
  Status SetServiceActionRuleBase(std::string service,
                                  monitor::TriggerKind kind,
                                  fuzzy::RuleBase rb);
  Status SetServerRuleBase(infra::ActionType action, fuzzy::RuleBase rb);

  // --- Consequent-weight overrides (adaptive strategies) ----------------
  /// Replaces the authored consequent weights of the *generic* action
  /// base for `kind` with `weights` (one per compiled rule, compiled
  /// rule order — see ActionRuleWeights for the layout). The compiled
  /// base itself stays untouched; the override rides along each
  /// Evaluate call, so clearing it restores bit-identical static
  /// behaviour. Service-specific bases are never overridden (their
  /// rule layout differs). Errors on a size mismatch.
  Status SetActionWeightOverride(monitor::TriggerKind kind,
                                 std::vector<double> weights);
  /// Drops every installed override (back to authored weights).
  void ClearActionWeightOverrides() { action_weight_overrides_.clear(); }
  /// The active override for `kind`, or nullptr when none installed.
  const std::vector<double>* ActionWeightOverride(
      monitor::TriggerKind kind) const;

  /// Number of compiled rules in the generic action base for `kind`.
  Result<size_t> ActionRuleCount(monitor::TriggerKind kind) const;
  /// Authored consequent weights of that base, compiled rule order —
  /// the identity starting point for a learner's weight table.
  Result<std::vector<double>> ActionRuleWeights(
      monitor::TriggerKind kind) const;
  /// Rendered rule text per compiled rule of that base (parallel to
  /// ActionRuleWeights), for explain output and saved weight tables.
  Result<std::vector<std::string>> ActionRuleTexts(
      monitor::TriggerKind kind) const;

  // --- Main entry point -------------------------------------------------
  /// Runs the complete Figure 6 flow for a confirmed trigger. With
  /// `urgent`, the subject's own protection window is overridden —
  /// used by the QoS extension when an SLA breach is already
  /// confirmed harm (target servers stay protected either way).
  Result<ControllerOutcome> HandleTrigger(const monitor::Trigger& trigger,
                                          bool urgent = false);

  /// Self-healing (§2): restarts a failed instance; if the restart
  /// fails, falls back to starting a replacement on another host.
  Status RemedyFailure(infra::InstanceId id, SimTime now);

  // --- Introspection (drives the controller console) --------------------
  /// Ranks actions for a trigger without executing anything.
  Result<std::vector<ScoredAction>> RankActions(
      const monitor::Trigger& trigger) const;
  /// Ranks candidate hosts for an action (excluding unsuitable and
  /// protected servers).
  Result<std::vector<ScoredServer>> RankServers(
      const infra::Action& action, SimTime now) const;
  /// Audited overload: fills `audit` with evaluations, rejections and
  /// the final ranking — lets recovery relocations leave the same
  /// trail as policy decisions.
  Result<std::vector<ScoredServer>> RankServers(
      const infra::Action& action, SimTime now,
      obs::HostSelectionAudit* audit) const;

  /// Extra veto over candidate hosts during server selection: return
  /// non-OK (the message becomes the audit rejection reason) to
  /// exclude a server. The recovery manager installs its blacklist of
  /// hosts with repeated placement failures here.
  using HostFilter = std::function<Status(const std::string& server)>;
  void set_host_filter(HostFilter filter) {
    host_filter_ = std::move(filter);
  }

  /// Installs a reservation book (§7 future work): during server
  /// selection, reserved CPU inflates a host's load picture and
  /// reserved memory shrinks its placement headroom, for reservations
  /// active now or starting within `lookahead`.
  void set_reservations(const ReservationBook* reservations,
                        Duration lookahead = Duration::Hours(1)) {
    reservations_ = reservations;
    reservation_lookahead_ = lookahead;
  }

  /// Installs the per-pool load aggregates driving the pool
  /// prescreen (nullptr clears; the prescreen also needs
  /// ControllerConfig::pool_prescreen). The stats must be fed from
  /// the same landscape the controller ranks over.
  void set_pool_stats(const monitor::PoolLoadStats* stats) {
    pool_stats_ = stats;
  }

  /// Installs a decision audit trail (nullptr clears): every
  /// HandleTrigger run records the fuzzified inputs, per-rule
  /// activation degrees from the compiled inference kernel, ranked
  /// actions/hosts, constraint rejections, and the final verdict.
  /// With no log installed the decision path pays only null checks.
  void set_audit_log(obs::AuditLog* log) { audit_ = log; }
  const obs::AuditLog* audit_log() const { return audit_; }

  /// Name of the strategy driving this controller, stamped into every
  /// decision audit record (empty = no stamp, the pre-strategy
  /// rendering).
  void set_strategy_label(std::string label) {
    strategy_label_ = std::move(label);
  }
  const std::string& strategy_label() const { return strategy_label_; }

  void set_config(const ControllerConfig& config) { config_ = config; }
  const ControllerConfig& config() const { return config_; }
  void set_approval_callback(ApprovalCallback cb) {
    approval_ = std::move(cb);
  }
  void set_alert_callback(AlertCallback cb) { alert_ = std::move(cb); }

  /// Total rule count across the four installed action bases.
  size_t TotalActionRules() const;

 private:
  Controller(infra::Cluster* cluster, infra::ActionExecutor* executor,
             const LoadView* view, ControllerConfig config);

  /// A rule base compiled for the hot path, together with its cached
  /// input layout resolution (which controller measurement feeds each
  /// slot), the output slots in deterministic name order, and the
  /// reusable evaluation buffers. The buffers are mutable scratch:
  /// RankActions/RankServers stay logically const but a single
  /// Controller must not run inference concurrently from two threads
  /// (the PR 1 parallel sweeps use one controller per simulation).
  struct CompiledBase {
    fuzzy::CompiledRuleBase compiled;
    /// Per input slot: a Measurement id (see controller.cc).
    std::vector<uint8_t> sources;
    /// Output slots sorted by variable name, mirroring the iteration
    /// order of the interpreted engine's output map.
    std::vector<int> ordered_outputs;
    /// Rendered rule text per *compiled* rule (the audit trail pairs
    /// these with Scratch::truth activation degrees).
    std::vector<std::string> rule_texts;
    mutable std::vector<double> slots;
    mutable fuzzy::CompiledRuleBase::Scratch scratch;
  };

  /// Transparent ordering for (service, trigger-kind) keys so hot
  /// lookups can probe with a string_view without allocating.
  struct ServiceKindLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    }
  };

  /// Compiles `rb` and resolves its input layout against the
  /// controller measurement catalogue.
  static Result<CompiledBase> CompileBase(const fuzzy::RuleBase& rb);

  /// THE single place that (re)builds a compiled base's cached
  /// evaluation state — input slot buffer and Scratch sizing. Every
  /// compile and recompile funnels through here so a swapped rule
  /// base can never run against stale buffer sizes.
  static void ResetEvalBuffers(CompiledBase* base);

  /// Drops cached per-kind derived state (the weight override) that a
  /// freshly installed rule base invalidates — its compiled rule
  /// count/order may differ from what the override was sized for.
  void InvalidateActionDerivedState(monitor::TriggerKind kind) {
    action_weight_overrides_.erase(kind);
  }

  /// Fills the compiled layout's input slots for (instance, host) —
  /// the Table 1 measurements — computing only what the rules read.
  Status FillActionSlots(const infra::ServiceInstance& instance,
                         const CompiledBase& base) const;
  /// Same for a candidate host (Table 3); reserved CPU (if a
  /// reservation book is installed) inflates cpuLoad, except for
  /// reservations benefitting `requesting_service`.
  Status FillServerSlots(const infra::ServerSpec& server, SimTime now,
                         std::string_view requesting_service,
                         const CompiledBase& base) const;

  /// Evaluates the action rule base for one instance and appends
  /// constraint-respecting scored actions. With `audit` set, the
  /// evaluation's inputs, rule activations and outputs are recorded.
  Status CollectActionsForInstance(monitor::TriggerKind kind,
                                   const infra::ServiceInstance& instance,
                                   std::vector<ScoredAction>* out,
                                   obs::DecisionAudit* audit) const;

  /// Audit-aware bodies of the public RankActions/RankServers (which
  /// pass a null audit sink).
  Result<std::vector<ScoredAction>> RankActionsImpl(
      const monitor::Trigger& trigger, obs::DecisionAudit* audit) const;
  Result<std::vector<ScoredServer>> RankServersImpl(
      const infra::Action& action, SimTime now,
      obs::HostSelectionAudit* audit) const;

  /// Copies the just-evaluated state of `base` (inputs, per-rule
  /// activation degrees, crisp outputs) into an InferenceRecord.
  /// `weight_override` (nullable) is the per-rule weight vector the
  /// evaluation actually used, recorded alongside each activation.
  static obs::InferenceRecord MakeInferenceRecord(
      const CompiledBase& base, std::string subject,
      const double* weight_override = nullptr);

  /// Re-verifies an action just before execution (§4.1: the selected
  /// action "is verified once more"). `urgent` waives the protection
  /// check for the triggering subject itself.
  Status VerifyAction(const infra::Action& action, SimTime now,
                      bool urgent) const;

  const CompiledBase* CompiledActionBaseFor(std::string_view service,
                                            monitor::TriggerKind kind) const;

  infra::Cluster* cluster_;
  infra::ActionExecutor* executor_;
  const LoadView* view_;
  ControllerConfig config_;
  // The interpreted rule bases stay installed as the reference
  // implementation (and for introspection); every inference call goes
  // through the compiled twins below, kept in sync by Set*RuleBase.
  std::map<monitor::TriggerKind, fuzzy::RuleBase> action_bases_;
  std::map<std::pair<std::string, monitor::TriggerKind>, fuzzy::RuleBase,
           ServiceKindLess>
      service_action_bases_;
  std::map<infra::ActionType, fuzzy::RuleBase> server_bases_;
  std::map<monitor::TriggerKind, CompiledBase> compiled_action_bases_;
  std::map<std::pair<std::string, monitor::TriggerKind>, CompiledBase,
           ServiceKindLess>
      compiled_service_action_bases_;
  std::map<infra::ActionType, CompiledBase> compiled_server_bases_;
  /// Per-kind consequent-weight override, sized for the generic
  /// compiled action base of that kind; invalidated whenever the base
  /// is recompiled.
  std::map<monitor::TriggerKind, std::vector<double>>
      action_weight_overrides_;
  ApprovalCallback approval_;
  AlertCallback alert_;
  HostFilter host_filter_;
  obs::AuditLog* audit_ = nullptr;
  std::string strategy_label_;
  const monitor::PoolLoadStats* pool_stats_ = nullptr;
  const ReservationBook* reservations_ = nullptr;
  Duration reservation_lookahead_ = Duration::Hours(1);
};

}  // namespace autoglobe::controller

#endif  // AUTOGLOBE_CONTROLLER_CONTROLLER_H_
