#include "sim/simulator.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "common/result.h"
#include "common/strings.h"

namespace autoglobe::sim {

namespace {

struct LabelHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct LabelEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

/// Process-wide label intern table. Elements of an unordered_set are
/// node-stable, so views into them stay valid forever; the table is
/// leaked deliberately (labels may be traced during static teardown).
std::string_view InternLabel(std::string_view label) {
  static std::mutex mutex;
  static auto* table = new std::unordered_set<std::string, LabelHash, LabelEq>();
  std::lock_guard<std::mutex> lock(mutex);
  auto it = table->find(label);
  if (it == table->end()) it = table->emplace(label).first;
  return *it;
}

}  // namespace

EventLabel::EventLabel(const std::string& dynamic)
    : label_(InternLabel(dynamic)) {}
EventLabel::EventLabel(std::string_view dynamic)
    : label_(InternLabel(dynamic)) {}

void Simulator::ReserveEvents(size_t expected_events) {
  state_.reserve(state_.size() + expected_events + 1);
  // The heap holds only *pending* events, far fewer than the ids ever
  // allocated; a modest slice of the hint removes early regrowth.
  heap_.reserve(std::max<size_t>(heap_.capacity(), 64));
}

EventId Simulator::AllocateId() {
  EventId id = next_id_++;
  if (state_.size() <= id) state_.resize(id + 1, EventState::kDone);
  return id;
}

void Simulator::Push(Event event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

Simulator::Event Simulator::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

Result<EventId> Simulator::ScheduleAt(SimTime at, EventLabel label,
                                      Callback callback) {
  return ScheduleAt(at, label, EventDesc{}, std::move(callback));
}

Result<EventId> Simulator::ScheduleAt(SimTime at, EventLabel label,
                                      EventDesc desc, Callback callback) {
  if (at < now_) {
    return Status::InvalidArgument(
        StrFormat("cannot schedule event \"%.*s\" in the past (%s < %s)",
                  static_cast<int>(label.view().size()), label.view().data(),
                  at.ToString().c_str(), now_.ToString().c_str()));
  }
  if (!callback) {
    return Status::InvalidArgument("event callback must not be empty");
  }
  EventId id = AllocateId();
  StateOf(id) = EventState::kLive;
  ++live_count_;
  Push(Event{at, next_seq_++, id, label, std::move(callback), nullptr,
             Duration::Zero(), desc});
  return id;
}

Result<EventId> Simulator::ScheduleAfter(Duration delay, EventLabel label,
                                         Callback callback) {
  return ScheduleAfter(delay, label, EventDesc{}, std::move(callback));
}

Result<EventId> Simulator::ScheduleAfter(Duration delay, EventLabel label,
                                         EventDesc desc, Callback callback) {
  if (delay < Duration::Zero()) {
    return Status::InvalidArgument("delay must be non-negative");
  }
  return ScheduleAt(now_ + delay, label, desc, std::move(callback));
}

Result<EventId> Simulator::SchedulePeriodic(Duration period,
                                            EventLabel label,
                                            Callback callback) {
  return SchedulePeriodic(period, label, EventDesc{}, std::move(callback));
}

Result<EventId> Simulator::SchedulePeriodic(Duration period,
                                            EventLabel label,
                                            EventDesc desc,
                                            Callback callback) {
  if (period <= Duration::Zero()) {
    return Status::InvalidArgument("period must be positive");
  }
  if (!callback) {
    return Status::InvalidArgument("event callback must not be empty");
  }
  EventId id = AllocateId();
  StateOf(id) = EventState::kLive;
  ++live_count_;
  Push(Event{now_ + period, next_seq_++, id, label, nullptr,
             std::make_shared<Callback>(std::move(callback)), period, desc});
  return id;
}

Status Simulator::Cancel(EventId id) {
  if (id >= state_.size() || StateOf(id) != EventState::kLive) {
    return Status::NotFound(StrFormat("no pending event %llu",
                                      static_cast<unsigned long long>(id)));
  }
  // Lazy cancellation: the queue entry is skipped (and never
  // re-armed, for periodic series) when popped.
  StateOf(id) = EventState::kCancelled;
  --live_count_;
  return Status::OK();
}

void Simulator::Reset() {
  heap_.clear();
  std::fill(state_.begin(), state_.end(), EventState::kDone);
  live_count_ = 0;
  now_ = SimTime::Start();
  next_seq_ = 0;
  next_id_ = 1;
  dispatched_ = 0;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event event = PopTop();
    if (StateOf(event.id) == EventState::kCancelled) {
      StateOf(event.id) = EventState::kDone;
      continue;
    }
    now_ = event.at;
    ++dispatched_;
    if (event.period <= Duration::Zero()) {
      StateOf(event.id) = EventState::kDone;
      --live_count_;
      if (trace_ != nullptr) {
        trace_->Record(now_, obs::TraceEventKind::kEventDispatch,
                       event.label.view(), {},
                       static_cast<int64_t>(event.id));
      }
      event.once();
    } else {
      if (trace_ != nullptr) {
        trace_->Record(now_, obs::TraceEventKind::kEventDispatch,
                       event.label.view(), {},
                       static_cast<int64_t>(event.id));
      }
      // Re-arm the series before invoking, so the callback may cancel
      // its own series by id. The callback is shared, not copied.
      Push(Event{event.at + event.period, next_seq_++, event.id,
                 event.label, nullptr, event.series, event.period,
                 event.desc});
      (*event.series)();
    }
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime end) {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (StateOf(top.id) == EventState::kCancelled) {
      StateOf(top.id) = EventState::kDone;
      PopTop();
      continue;
    }
    if (top.at > end) break;
    Step();
  }
  if (now_ < end) now_ = end;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

Status Simulator::SaveState(ByteWriter* w) const {
  w->I64(now_.seconds());
  w->U64(next_seq_);
  w->U64(next_id_);
  w->U64(dispatched_);
  w->U64(live_count_);
  w->U64(state_.size());
  w->Raw(state_.data(), state_.size());
  // Pending events. Lazily-cancelled entries are dropped: their
  // liveness byte is kCancelled, so the restored kernel treats them
  // exactly like entries it skipped itself.
  uint64_t pending = 0;
  for (const Event& event : heap_) {
    if (state_[event.id] == EventState::kLive) ++pending;
  }
  w->U64(pending);
  for (const Event& event : heap_) {
    if (state_[event.id] != EventState::kLive) continue;
    if (event.desc.kind.empty()) {
      return Status::FailedPrecondition(StrFormat(
          "pending event \"%.*s\" (id %llu) has no re-arm descriptor; "
          "its callback cannot survive a checkpoint",
          static_cast<int>(event.label.view().size()),
          event.label.view().data(),
          static_cast<unsigned long long>(event.id)));
    }
    w->I64(event.at.seconds());
    w->U64(event.seq);
    w->U64(event.id);
    w->Str(event.label.view());
    w->I64(event.period.seconds());
    w->Str(event.desc.kind);
    w->Str(event.desc.str);
    w->U64(event.desc.a);
    w->U64(event.desc.b);
    w->I64(event.desc.x);
    w->I64(event.desc.dur.seconds());
  }
  return Status::OK();
}

Status Simulator::RestoreState(ByteReader* r,
                               const CallbackFactory& factory) {
  AG_ASSIGN_OR_RETURN(int64_t now_s, r->I64());
  AG_ASSIGN_OR_RETURN(next_seq_, r->U64());
  AG_ASSIGN_OR_RETURN(next_id_, r->U64());
  AG_ASSIGN_OR_RETURN(dispatched_, r->U64());
  AG_ASSIGN_OR_RETURN(uint64_t live_count, r->U64());
  AG_ASSIGN_OR_RETURN(uint64_t state_size, r->U64());
  now_ = SimTime::FromSeconds(now_s);
  state_.assign(state_size, EventState::kDone);
  AG_RETURN_IF_ERROR(r->Raw(state_.data(), state_size));
  heap_.clear();
  AG_ASSIGN_OR_RETURN(uint64_t pending, r->U64());
  if (pending != live_count) {
    return Status::ParseError(StrFormat(
        "snapshot lists %llu pending event(s) but a live count of %llu",
        static_cast<unsigned long long>(pending),
        static_cast<unsigned long long>(live_count)));
  }
  for (uint64_t i = 0; i < pending; ++i) {
    AG_ASSIGN_OR_RETURN(int64_t at_s, r->I64());
    AG_ASSIGN_OR_RETURN(uint64_t seq, r->U64());
    AG_ASSIGN_OR_RETURN(EventId id, r->U64());
    AG_ASSIGN_OR_RETURN(std::string label, r->Str());
    AG_ASSIGN_OR_RETURN(int64_t period_s, r->I64());
    AG_ASSIGN_OR_RETURN(std::string kind, r->Str());
    AG_ASSIGN_OR_RETURN(std::string str, r->Str());
    EventDesc desc;
    AG_ASSIGN_OR_RETURN(desc.a, r->U64());
    AG_ASSIGN_OR_RETURN(desc.b, r->U64());
    AG_ASSIGN_OR_RETURN(desc.x, r->I64());
    AG_ASSIGN_OR_RETURN(int64_t dur_s, r->I64());
    desc.kind = EventLabel(kind).view();  // interned: views stay valid
    desc.str = str.empty() ? std::string_view() : EventLabel(str).view();
    desc.dur = Duration::Seconds(dur_s);
    Duration period = Duration::Seconds(period_s);
    if (id >= state_.size() || state_[id] != EventState::kLive) {
      return Status::ParseError(StrFormat(
          "pending event id %llu is not marked live in the snapshot",
          static_cast<unsigned long long>(id)));
    }
    AG_ASSIGN_OR_RETURN(Callback callback, factory(desc));
    if (!callback) {
      return Status::Internal(StrFormat(
          "callback factory returned an empty callback for kind \"%s\"",
          std::string(desc.kind).c_str()));
    }
    if (period > Duration::Zero()) {
      Push(Event{SimTime::FromSeconds(at_s), seq, id, EventLabel(label),
                 nullptr, std::make_shared<Callback>(std::move(callback)),
                 period, desc});
    } else {
      Push(Event{SimTime::FromSeconds(at_s), seq, id, EventLabel(label),
                 std::move(callback), nullptr, Duration::Zero(), desc});
    }
  }
  live_count_ = live_count;
  return Status::OK();
}

}  // namespace autoglobe::sim
