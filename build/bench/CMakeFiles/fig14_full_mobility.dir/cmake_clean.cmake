file(REMOVE_RECURSE
  "CMakeFiles/fig14_full_mobility.dir/fig14_full_mobility.cpp.o"
  "CMakeFiles/fig14_full_mobility.dir/fig14_full_mobility.cpp.o.d"
  "fig14_full_mobility"
  "fig14_full_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_full_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
