#ifndef AUTOGLOBE_PERSIST_SNAPSHOT_H_
#define AUTOGLOBE_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace autoglobe::persist {

/// The snapshot container format (.agsnap):
///
///   magic "AGSNAP01" (8 bytes)
///   format version  u32
///   state fingerprint u64   (SimulationRunner::StateFingerprint)
///   section count   u32
///   per section:    name (u32-prefixed), payload size u64, FNV-1a u64
///   payloads, concatenated in table order
///   trailer: FNV-1a u64 over every preceding byte
///
/// Every payload carries its own checksum, so a bit flip names the
/// section it corrupted; the trailer checksum catches a truncated
/// final payload (its section checksum would never be reached).
/// Writes go through AtomicWriteFile — a crash mid-checkpoint leaves
/// the previous generation intact, never a torn file.

inline constexpr char kSnapshotMagic[8] = {'A', 'G', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;

/// A decoded snapshot: the fingerprint it was taken under plus the
/// named section payloads, in file order.
struct SnapshotData {
  uint64_t fingerprint = 0;
  std::vector<std::pair<std::string, std::string>> sections;
};

/// Encodes the container to bytes (no I/O).
std::string EncodeSnapshot(
    uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::string>>& sections);

/// Decodes and fully validates a container image: magic, version,
/// section table bounds, every per-section checksum, and the trailer.
/// Errors are descriptive (which check failed, which section).
Result<SnapshotData> DecodeSnapshot(std::string_view bytes);

/// Encode + AtomicWriteFile.
Status WriteSnapshotFile(
    const std::string& path, uint64_t fingerprint,
    const std::vector<std::pair<std::string, std::string>>& sections);

/// Read + DecodeSnapshot. When `expected_fingerprint` is nonzero, a
/// snapshot taken under a different fingerprint (other landscape,
/// seed, rng plane, strategy, or fault-plan presence) is rejected
/// with FailedPrecondition.
Result<SnapshotData> ReadSnapshotFile(const std::string& path,
                                      uint64_t expected_fingerprint = 0);

}  // namespace autoglobe::persist

#endif  // AUTOGLOBE_PERSIST_SNAPSHOT_H_
