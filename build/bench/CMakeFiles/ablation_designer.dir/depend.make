# Empty dependencies file for ablation_designer.
# This may be replaced when dependencies are built.
