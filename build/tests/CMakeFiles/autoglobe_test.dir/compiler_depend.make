# Empty compiler generated dependencies file for autoglobe_test.
# This may be replaced when dependencies are built.
