#ifndef AUTOGLOBE_BENCH_SCENARIO_FIGURES_H_
#define AUTOGLOBE_BENCH_SCENARIO_FIGURES_H_

// Shared driver for the Figure 12-14 reproductions: 80 simulated
// hours of the paper landscape at +15 % users (the setting of §5.2:
// "simulation results with the number of users increased by 15 %"),
// printing the CPU load of all 19 servers plus the thick average
// line.

#include "bench_util.h"

namespace autoglobe::bench {

inline int RunServerLoadFigure(const char* figure, Scenario scenario) {
  std::printf("# %s: CPU load of all servers (%s scenario, users +15%%)\n",
              figure, std::string(ScenarioName(scenario)).c_str());
  ScenarioRunResult result =
      RunScenario(scenario, 1.15, Duration::Minutes(60));
  PrintServerSeries(result);
  PrintRunSummary(figure, result);
  return 0;
}

/// Shared driver for the Figure 15-17 reproductions: the FI
/// application servers' load curves plus the controller action log.
inline int RunFiFigure(const char* figure, Scenario scenario) {
  std::printf("# %s: CPU load of the FI instances (%s scenario, "
              "users +15%%)\n",
              figure, std::string(ScenarioName(scenario)).c_str());
  ScenarioRunResult result =
      RunScenario(scenario, 1.15, Duration::Minutes(30), "FI");

  // Collect the union of instance labels over the run (instances come
  // and go as the controller acts).
  std::map<std::string, int> labels;
  for (const auto& row : result.service_instance_rows) {
    for (const auto& [label, load] : row) labels.emplace(label, 0);
  }
  std::printf("time");
  for (const auto& [label, unused] : labels) {
    std::printf(",%s", label.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < result.rows.size(); ++i) {
    std::printf("%s", result.rows[i].at.ToString().c_str());
    const auto& instances = result.service_instance_rows[i];
    for (const auto& [label, unused] : labels) {
      auto it = instances.find(label);
      if (it == instances.end()) {
        std::printf(",");
      } else {
        std::printf(",%.0f", it->second * 100.0);
      }
    }
    std::printf("\n");
  }

  std::printf("\n# Controller actions involving FI:\n");
  int shown = 0;
  for (const std::string& message : result.messages) {
    if (message.find("EXEC") == std::string::npos) continue;
    if (message.find("FI") == std::string::npos) continue;
    std::printf("# %s\n", message.c_str());
    ++shown;
  }
  if (shown == 0) std::printf("# (none — services are static)\n");
  PrintRunSummary(figure, result);
  return 0;
}

}  // namespace autoglobe::bench

#endif  // AUTOGLOBE_BENCH_SCENARIO_FIGURES_H_
