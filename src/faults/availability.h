#ifndef AUTOGLOBE_FAULTS_AVAILABILITY_H_
#define AUTOGLOBE_FAULTS_AVAILABILITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "faults/plan.h"

namespace autoglobe::faults {

/// Knobs of the availability accounting.
struct AvailabilityConfig {
  /// Recovery-time objective: an episode closed within this span of
  /// its injection counts as objective-satisfied (the availability
  /// analogue of the paper's QoS goals, §7).
  Duration recovery_objective = Duration::Minutes(15);
};

/// The availability scorecard of one fault-injected run.
struct AvailabilityReport {
  // Injection counts by class.
  int64_t faults_injected = 0;
  int64_t instance_crashes = 0;
  int64_t server_failures = 0;
  int64_t action_failure_windows = 0;
  int64_t monitor_dropouts = 0;

  // Episode accounting (one episode per instance that went down).
  int64_t episodes = 0;
  int64_t detected = 0;
  int64_t recovered = 0;
  int64_t abandoned = 0;  // recovery gave up (alerted administrator)
  int64_t open = 0;       // still down at the end of the run

  /// Mean time from injection to heartbeat detection, minutes.
  double mttd_minutes_mean = 0.0;
  /// Mean / max time from injection to serving again, minutes
  /// (recovered episodes only).
  double mttr_minutes_mean = 0.0;
  double mttr_minutes_max = 0.0;
  /// Instance-minutes of lost capacity: for every episode, injection
  /// until recovery (or the end of the run).
  double unavailability_instance_minutes = 0.0;
  /// Fraction of episodes recovered within the recovery objective.
  double objective_satisfaction = 1.0;
};

/// Renders the report as a human-readable block for stdout / logs.
std::string RenderAvailabilityReport(const AvailabilityReport& report);

/// Collects fault + recovery milestones during a run and folds them
/// into an AvailabilityReport. Episodes are keyed by a token — the id
/// of the originally failed instance — carried through the whole
/// recovery chain, so MTTR measures injection-to-service, not just
/// the final restart step.
class AvailabilityTracker {
 public:
  explicit AvailabilityTracker(AvailabilityConfig config = {});

  void OnFaultInjected(FaultKind kind, SimTime at);
  /// Opens an episode: instance `token` of `service` stopped serving.
  void OnInstanceDown(uint64_t token, std::string service, SimTime at);
  /// The monitor confirmed the failure (first detection only).
  void OnFailureDetected(uint64_t token, SimTime at);
  /// The episode's instance (restarted or replaced) serves again.
  void OnRecovered(uint64_t token, SimTime at);
  /// Recovery gave up on this episode (administrator alerted).
  void OnAbandoned(uint64_t token, SimTime at);

  /// True while an episode for `token` is open.
  bool IsOpen(uint64_t token) const;

  AvailabilityReport Report(SimTime end) const;

  const AvailabilityConfig& config() const { return config_; }

  // --- Checkpoint/restore ----------------------------------------------
  /// Serializes open and closed episodes plus the per-kind injection
  /// counters (the complete tracker state).
  void SaveState(ByteWriter* w) const;
  Status RestoreState(ByteReader* r);

 private:
  struct Episode {
    std::string service;
    SimTime down_at;
    SimTime detected_at;
    SimTime closed_at;
    bool detected = false;
    bool recovered = false;
    bool abandoned = false;
  };

  AvailabilityConfig config_;
  /// Open episodes keyed by token; std::map for deterministic report
  /// iteration. Closing moves an episode to `closed_`, so a token that
  /// fails again later opens a fresh episode instead of overwriting
  /// the finished one.
  std::map<uint64_t, Episode> open_;
  /// Closed episodes in closing order (deterministic per run).
  std::vector<Episode> closed_;
  int64_t injected_by_kind_[4] = {0, 0, 0, 0};
};

}  // namespace autoglobe::faults

#endif  // AUTOGLOBE_FAULTS_AVAILABILITY_H_
