#include "fuzzy/xml_loader.h"

#include <gtest/gtest.h>

#include "fuzzy/inference.h"
#include "xmlcfg/xml.h"

namespace autoglobe::fuzzy {
namespace {

constexpr const char* kRuleBaseXml = R"(
<ruleBase name="serviceOverloaded">
  <variable name="cpuLoad" min="0" max="1">
    <term name="low"    shape="trapezoid" points="0,0,0.2,0.4"/>
    <term name="medium" shape="trapezoid" points="0.2,0.4,0.5,0.7"/>
    <term name="high"   shape="trapezoid" points="0.5,1,1,1"/>
  </variable>
  <variable name="performanceIndex" min="0" max="10">
    <term name="low"    shape="trapezoid" points="0,0,2,4"/>
    <term name="medium" shape="triangle"  points="3,5,7"/>
    <term name="high"   shape="ramp-up"   points="5.2,7.2"/>
  </variable>
  <output name="scaleUp"/>
  <output name="scaleOut"/>
  <rules>
    IF cpuLoad IS high AND (performanceIndex IS low OR
       performanceIndex IS medium) THEN scaleUp IS applicable
    IF cpuLoad IS high AND performanceIndex IS high
       THEN scaleOut IS applicable
  </rules>
</ruleBase>
)";

TEST(XmlLoaderTest, LoadsFullRuleBase) {
  auto doc = xml::Document::Parse(kRuleBaseXml);
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto rb = LoadRuleBase(*doc->root());
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_EQ(rb->name(), "serviceOverloaded");
  EXPECT_EQ(rb->size(), 2u);
  EXPECT_EQ(rb->variables().size(), 4u);

  // The loaded base behaves exactly like the paper example.
  InferenceEngine engine;
  Inputs inputs = {{"cpuLoad", 0.9}, {"performanceIndex", 5.8}};
  EXPECT_NEAR(*engine.InferValue(*rb, inputs, "scaleUp"), 0.6, 1e-9);
  EXPECT_NEAR(*engine.InferValue(*rb, inputs, "scaleOut"), 0.3, 1e-9);
}

TEST(XmlLoaderTest, VariableShapes) {
  auto doc = xml::Document::Parse(R"(
    <variable name="v" min="0" max="1">
      <term name="a" shape="triangle"  points="0,0.5,1"/>
      <term name="b" shape="ramp-down" points="0.3,0.9"/>
      <term name="c" shape="singleton" points="0.5"/>
      <term name="d" shape="constant"  points="0.25"/>
    </variable>)");
  ASSERT_TRUE(doc.ok());
  auto var = LoadVariable(*doc->root());
  ASSERT_TRUE(var.ok()) << var.status();
  EXPECT_EQ(var->terms().size(), 4u);
  EXPECT_DOUBLE_EQ(*var->Grade("a", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(*var->Grade("b", 0.3), 1.0);
  EXPECT_DOUBLE_EQ(*var->Grade("c", 0.5), 1.0);
  EXPECT_DOUBLE_EQ(*var->Grade("d", 0.1), 0.25);
}

TEST(XmlLoaderTest, RejectsBadInput) {
  struct Case {
    const char* xml;
  } cases[] = {
      // Missing name.
      {"<variable min=\"0\" max=\"1\"><term name=\"a\" shape=\"constant\" "
       "points=\"1\"/></variable>"},
      // min >= max.
      {"<variable name=\"v\" min=\"1\" max=\"1\"><term name=\"a\" "
       "shape=\"constant\" points=\"1\"/></variable>"},
      // No terms.
      {"<variable name=\"v\" min=\"0\" max=\"1\"/>"},
      // Unknown shape.
      {"<variable name=\"v\"><term name=\"a\" shape=\"sigmoid\" "
       "points=\"1\"/></variable>"},
      // Wrong point count.
      {"<variable name=\"v\"><term name=\"a\" shape=\"triangle\" "
       "points=\"1,2\"/></variable>"},
      // Malformed point.
      {"<variable name=\"v\"><term name=\"a\" shape=\"constant\" "
       "points=\"abc\"/></variable>"},
  };
  for (const Case& c : cases) {
    auto doc = xml::Document::Parse(c.xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    EXPECT_FALSE(LoadVariable(*doc->root()).ok()) << c.xml;
  }
}

TEST(XmlLoaderTest, RuleBaseRequiresName) {
  auto doc = xml::Document::Parse("<ruleBase/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(LoadRuleBase(*doc->root()).ok());
}

TEST(XmlLoaderTest, BadRuleTextSurfacesParseError) {
  auto doc = xml::Document::Parse(
      "<ruleBase name=\"x\"><output name=\"o\"/>"
      "<rules>THIS IS NOT A RULE</rules></ruleBase>");
  ASSERT_TRUE(doc.ok());
  auto rb = LoadRuleBase(*doc->root());
  EXPECT_FALSE(rb.ok());
}

TEST(XmlLoaderTest, SaveRoundTrips) {
  auto doc = xml::Document::Parse(kRuleBaseXml);
  ASSERT_TRUE(doc.ok());
  auto rb = LoadRuleBase(*doc->root());
  ASSERT_TRUE(rb.ok()) << rb.status();

  xml::Document out;
  SaveRuleBase(*rb, out.SetRoot("ruleBase"));
  auto reparsed = xml::Document::Parse(out.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  auto rb2 = LoadRuleBase(*reparsed->root());
  ASSERT_TRUE(rb2.ok()) << rb2.status();
  EXPECT_EQ(rb2->name(), rb->name());
  EXPECT_EQ(rb2->size(), rb->size());
  EXPECT_EQ(rb2->variables().size(), rb->variables().size());

  // Behavioural equality on the paper's example inputs.
  InferenceEngine engine;
  Inputs inputs = {{"cpuLoad", 0.9}, {"performanceIndex", 5.8}};
  EXPECT_NEAR(*engine.InferValue(*rb2, inputs, "scaleUp"),
              *engine.InferValue(*rb, inputs, "scaleUp"), 1e-12);
}

}  // namespace
}  // namespace autoglobe::fuzzy
