// End-to-end reproduction of the worked fuzzy-controller example in
// paper §3 (Figures 3 and 5): a host with CPU load l = 0.9 and a
// performance index fuzzifying to (low 0, medium 0.6, high 0.3) must
// yield scale-up applicability 0.6 and scale-out applicability 0.3,
// so the controller favors scale-up.

#include <gtest/gtest.h>

#include "fuzzy/inference.h"
#include "fuzzy/rule_parser.h"

namespace autoglobe::fuzzy {
namespace {

RuleBase MakePaperRuleBase() {
  RuleBase rb("paper-example");

  // cpuLoad exactly as Figure 3.
  EXPECT_TRUE(
      rb.AddVariable(LinguisticVariable::StandardLoad("cpuLoad")).ok());

  // performanceIndex shaped so that i = 5.8 fuzzifies to the grades
  // assumed in the paper's example: low 0, medium 0.6, high 0.3.
  LinguisticVariable perf("performanceIndex", 0.0, 10.0);
  EXPECT_TRUE(perf.AddTerm(
      "low", MembershipFunction::Trapezoid(0, 0, 2, 4).value()).ok());
  EXPECT_TRUE(perf.AddTerm(
      "medium", MembershipFunction::Triangle(3, 5, 7).value()).ok());
  EXPECT_TRUE(perf.AddTerm(
      "high", MembershipFunction::RampUp(5.2, 7.2).value()).ok());
  EXPECT_TRUE(rb.AddVariable(std::move(perf)).ok());

  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::RampOutput("scaleUp")).ok());
  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::RampOutput("scaleOut")).ok());

  // The two sample rules of §3, verbatim.
  EXPECT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS high AND (performanceIndex IS low OR "
                    "performanceIndex IS medium) "
                    "THEN scaleUp IS applicable\n"
                    "IF cpuLoad IS high AND performanceIndex IS high "
                    "THEN scaleOut IS applicable\n")
                  .ok());
  return rb;
}

constexpr double kCpuLoad = 0.9;
constexpr double kPerfIndex = 5.8;

TEST(PaperExampleTest, FuzzificationMatchesSection3) {
  RuleBase rb = MakePaperRuleBase();
  const LinguisticVariable& cpu = rb.variables().at("cpuLoad");
  EXPECT_DOUBLE_EQ(*cpu.Grade("low", kCpuLoad), 0.0);
  EXPECT_DOUBLE_EQ(*cpu.Grade("medium", kCpuLoad), 0.0);
  EXPECT_NEAR(*cpu.Grade("high", kCpuLoad), 0.8, 1e-12);

  const LinguisticVariable& perf = rb.variables().at("performanceIndex");
  EXPECT_DOUBLE_EQ(*perf.Grade("low", kPerfIndex), 0.0);
  EXPECT_NEAR(*perf.Grade("medium", kPerfIndex), 0.6, 1e-12);
  EXPECT_NEAR(*perf.Grade("high", kPerfIndex), 0.3, 1e-12);
}

TEST(PaperExampleTest, AntecedentTruthValues) {
  RuleBase rb = MakePaperRuleBase();
  Inputs inputs = {{"cpuLoad", kCpuLoad}, {"performanceIndex", kPerfIndex}};
  // Rule 1: min(0.8, max(0, 0.6)) = 0.6.
  auto truth1 = rb.rules()[0].EvaluateAntecedent(rb.variables(), inputs);
  ASSERT_TRUE(truth1.ok());
  EXPECT_NEAR(*truth1, 0.6, 1e-12);
  // Rule 2: min(0.8, 0.3) = 0.3.
  auto truth2 = rb.rules()[1].EvaluateAntecedent(rb.variables(), inputs);
  ASSERT_TRUE(truth2.ok());
  EXPECT_NEAR(*truth2, 0.3, 1e-12);
}

TEST(PaperExampleTest, DefuzzifiedActionsMatchFigure5) {
  RuleBase rb = MakePaperRuleBase();
  InferenceEngine engine(Defuzzifier::kLeftmostMax);
  Inputs inputs = {{"cpuLoad", kCpuLoad}, {"performanceIndex", kPerfIndex}};
  auto outputs = engine.Infer(rb, inputs);
  ASSERT_TRUE(outputs.ok()) << outputs.status();

  // "the crisp value for the action scale-up is 0.6, i.e., the action
  //  is applicable to a degree of 0.6 ... the action scale-out is
  //  applicable to a degree of 0.3."
  EXPECT_NEAR(outputs->at("scaleUp").crisp, 0.6, 1e-9);
  EXPECT_NEAR(outputs->at("scaleOut").crisp, 0.3, 1e-9);

  // "Therefore, the controller will favor the scale-up action."
  EXPECT_GT(outputs->at("scaleUp").crisp, outputs->at("scaleOut").crisp);
}

TEST(PaperExampleTest, ClippedSetMatchesFigure5Shape) {
  RuleBase rb = MakePaperRuleBase();
  InferenceEngine engine;
  Inputs inputs = {{"cpuLoad", kCpuLoad}, {"performanceIndex", kPerfIndex}};
  auto outputs = engine.Infer(rb, inputs);
  ASSERT_TRUE(outputs.ok());

  const AggregatedSet& scale_up = outputs->at("scaleUp").set;
  // The identity ramp clipped at 0.6: linear up to x=0.6, flat after.
  EXPECT_NEAR(scale_up.Eval(0.3), 0.3, 1e-12);
  EXPECT_NEAR(scale_up.Eval(0.6), 0.6, 1e-12);
  EXPECT_NEAR(scale_up.Eval(0.9), 0.6, 1e-12);
  EXPECT_NEAR(scale_up.Height(), 0.6, 1e-12);
}

}  // namespace
}  // namespace autoglobe::fuzzy
