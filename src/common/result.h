#ifndef AUTOGLOBE_COMMON_RESULT_H_
#define AUTOGLOBE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace autoglobe {

/// Result<T> holds either a value of type T or a non-OK Status,
/// mirroring absl::StatusOr / arrow::Result. Accessing the value of an
/// errored Result aborts (the library is built without exceptions).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (like StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status. Constructing from an
  /// OK status is a programming error and degrades to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on errored Result");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on errored Result");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on errored Result");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace autoglobe

/// Assigns the value of a Result expression to `lhs`, or propagates
/// its error Status from the current function.
#define AG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define AG_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define AG_ASSIGN_OR_RETURN_NAME(a, b) AG_ASSIGN_OR_RETURN_CONCAT(a, b)
#define AG_ASSIGN_OR_RETURN(lhs, expr) \
  AG_ASSIGN_OR_RETURN_IMPL(            \
      AG_ASSIGN_OR_RETURN_NAME(ag_result__, __LINE__), lhs, expr)

#endif  // AUTOGLOBE_COMMON_RESULT_H_
