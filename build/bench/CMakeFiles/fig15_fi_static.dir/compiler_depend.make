# Empty compiler generated dependencies file for fig15_fi_static.
# This may be replaced when dependencies are built.
