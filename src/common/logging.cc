#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace autoglobe {

namespace {

LogLevel g_min_level = LogLevel::kInfo;
Logging::Sink g_sink;  // empty => stderr default

void DefaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%.*s] %s\n",
               static_cast<int>(LogLevelName(level).size()),
               LogLevelName(level).data(), message.c_str());
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void Logging::SetMinLevel(LogLevel level) { g_min_level = level; }
LogLevel Logging::min_level() { return g_min_level; }

void Logging::SetSink(Sink sink) { g_sink = std::move(sink); }

void Logging::Emit(LogLevel level, const std::string& message) {
  if (level < g_min_level && level != LogLevel::kFatal) return;
  if (g_sink) {
    g_sink(level, message);
  } else {
    DefaultSink(level, message);
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  if (level == LogLevel::kFatal) {
    stream_ << file << ":" << line << ": ";
  }
}

LogMessage::~LogMessage() {
  Logging::Emit(level_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(nullptr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace autoglobe
