#include "monitor/pool_stats.h"

#include "common/strings.h"

namespace autoglobe::monitor {

void PoolLoadStats::Reset(const infra::LandscapeIndex* index) {
  index_ = index;
  size_t servers = index == nullptr ? 0 : index->num_servers();
  size_t pools = index == nullptr ? 0 : index->num_pools();
  server_load_.assign(servers, 0.0);
  server_seen_.assign(servers, 0);
  count_.assign(pools, 0);
  sum_.assign(pools, 0.0);
  max_.assign(pools, 0.0);
  max_server_.assign(pools, infra::kNoDenseId);
}

void PoolLoadStats::Update(infra::DenseId server, double load) {
  size_t s = static_cast<size_t>(server);
  size_t pool = static_cast<size_t>(index_->PoolOfServer(server));
  double previous = server_load_[s];
  if (server_seen_[s] == 0) {
    server_seen_[s] = 1;
    ++count_[pool];
    sum_[pool] += load;
  } else {
    sum_[pool] += load - previous;
  }
  server_load_[s] = load;
  if (max_server_[pool] == server && load < max_[pool]) {
    // The max holder dropped — defer the rescan until PoolMax.
    max_server_[pool] = infra::kNoDenseId;
  } else if (load >= max_[pool]) {
    // Dominates the recorded max (even a stale one), so this server
    // is the holder whether or not the pool was marked dirty.
    max_[pool] = load;
    max_server_[pool] = server;
  }
}

double PoolLoadStats::PoolMean(int32_t pool) const {
  size_t p = static_cast<size_t>(pool);
  if (count_[p] == 0) return 0.0;
  return sum_[p] / static_cast<double>(count_[p]);
}

double PoolLoadStats::PoolMax(int32_t pool) const {
  size_t p = static_cast<size_t>(pool);
  if (max_server_[p] == infra::kNoDenseId && count_[p] > 0) {
    double best = 0.0;
    infra::DenseId holder = infra::kNoDenseId;
    for (infra::DenseId server : index_->ServersInPool(pool)) {
      size_t s = static_cast<size_t>(server);
      if (server_seen_[s] == 0) continue;
      if (holder == infra::kNoDenseId || server_load_[s] > best) {
        best = server_load_[s];
        holder = server;
      }
    }
    max_[p] = holder == infra::kNoDenseId ? 0.0 : best;
    max_server_[p] = holder;
  }
  return count_[p] == 0 ? 0.0 : max_[p];
}

void PoolLoadStats::SaveState(ByteWriter* w) const {
  w->U64(server_load_.size());
  for (double load : server_load_) w->F64(load);
  for (char seen : server_seen_) w->U8(static_cast<uint8_t>(seen));
  w->U64(count_.size());
  for (int64_t count : count_) w->I64(count);
  for (double sum : sum_) w->F64(sum);
  for (double max : max_) w->F64(max);
  for (infra::DenseId server : max_server_) w->I64(server);
}

Status PoolLoadStats::RestoreState(ByteReader* r) {
  uint64_t servers = 0;
  AG_ASSIGN_OR_RETURN(servers, r->U64());
  if (servers != server_load_.size()) {
    return Status::ParseError(StrFormat(
        "snapshot pool stats cover %llu servers, layout has %zu",
        static_cast<unsigned long long>(servers), server_load_.size()));
  }
  for (double& load : server_load_) {
    AG_ASSIGN_OR_RETURN(load, r->F64());
  }
  for (char& seen : server_seen_) {
    uint8_t flag = 0;
    AG_ASSIGN_OR_RETURN(flag, r->U8());
    seen = static_cast<char>(flag);
  }
  uint64_t pools = 0;
  AG_ASSIGN_OR_RETURN(pools, r->U64());
  if (pools != count_.size()) {
    return Status::ParseError(StrFormat(
        "snapshot pool stats cover %llu pools, layout has %zu",
        static_cast<unsigned long long>(pools), count_.size()));
  }
  for (int64_t& count : count_) {
    AG_ASSIGN_OR_RETURN(count, r->I64());
  }
  for (double& sum : sum_) {
    AG_ASSIGN_OR_RETURN(sum, r->F64());
  }
  for (double& max : max_) {
    AG_ASSIGN_OR_RETURN(max, r->F64());
  }
  for (infra::DenseId& server : max_server_) {
    int64_t value = 0;
    AG_ASSIGN_OR_RETURN(value, r->I64());
    server = static_cast<infra::DenseId>(value);
  }
  return Status::OK();
}

}  // namespace autoglobe::monitor
