file(REMOVE_RECURSE
  "libag_fuzzy.a"
)
