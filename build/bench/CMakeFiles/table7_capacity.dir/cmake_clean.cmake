file(REMOVE_RECURSE
  "CMakeFiles/table7_capacity.dir/table7_capacity.cpp.o"
  "CMakeFiles/table7_capacity.dir/table7_capacity.cpp.o.d"
  "table7_capacity"
  "table7_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
