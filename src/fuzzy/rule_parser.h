#ifndef AUTOGLOBE_FUZZY_RULE_PARSER_H_
#define AUTOGLOBE_FUZZY_RULE_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "fuzzy/rule.h"

namespace autoglobe::fuzzy {

/// Parses the textual rule language the paper's administrators use to
/// express controller knowledge (§3):
///
///   IF cpuLoad IS high AND (performanceIndex IS low OR
///      performanceIndex IS medium) THEN scaleUp IS applicable
///
/// Grammar (keywords case-insensitive, one rule per statement,
/// statements separated by semicolons or simply by the next IF;
/// '#' and '//' start line comments):
///
///   rule  := IF expr THEN ident IS ident [WITH number]
///   expr  := and { OR and }
///   and   := unary { AND unary }
///   unary := NOT unary | '(' expr ')' | atom
///   atom  := ident IS [NOT] ident
Result<Rule> ParseRule(std::string_view text);

/// Parses a whole rule-base source (possibly many rules).
Result<std::vector<Rule>> ParseRules(std::string_view text);

}  // namespace autoglobe::fuzzy

#endif  // AUTOGLOBE_FUZZY_RULE_PARSER_H_
