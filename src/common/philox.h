#ifndef AUTOGLOBE_COMMON_PHILOX_H_
#define AUTOGLOBE_COMMON_PHILOX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace autoglobe {

namespace philox_detail {

// Philox4x32 round constants (Salmon et al., "Parallel random
// numbers: as easy as 1, 2, 3", SC'11; identical to Random123).
inline constexpr uint32_t kMul0 = 0xD2511F53u;
inline constexpr uint32_t kMul1 = 0xCD9E8D57u;
inline constexpr uint32_t kWeyl0 = 0x9E3779B9u;
inline constexpr uint32_t kWeyl1 = 0xBB67AE85u;

struct Block {
  uint32_t x[4];
};

/// One Philox4x32-10 block: counter (c0..c3 little-endian words) and
/// 64-bit key -> 128 output bits. The workhorse of every draw.
inline Block Philox4x32_10(uint32_t c0, uint32_t c1, uint32_t c2,
                           uint32_t c3, uint32_t key0, uint32_t key1) {
  for (int round = 0;; ++round) {
    uint64_t p0 = static_cast<uint64_t>(kMul0) * c0;
    uint64_t p1 = static_cast<uint64_t>(kMul1) * c2;
    uint32_t hi0 = static_cast<uint32_t>(p0 >> 32);
    uint32_t lo0 = static_cast<uint32_t>(p0);
    uint32_t hi1 = static_cast<uint32_t>(p1 >> 32);
    uint32_t lo1 = static_cast<uint32_t>(p1);
    uint32_t n0 = hi1 ^ c1 ^ key0;
    uint32_t n2 = hi0 ^ c3 ^ key1;
    c0 = n0;
    c1 = lo1;
    c2 = n2;
    c3 = lo0;
    if (round == 9) break;
    key0 += kWeyl0;
    key1 += kWeyl1;
  }
  return Block{{c0, c1, c2, c3}};
}

/// The two 64-bit halves of a block, in draw-event order.
inline uint64_t Half0(const Block& b) {
  return (static_cast<uint64_t>(b.x[0]) << 32) | b.x[1];
}
inline uint64_t Half1(const Block& b) {
  return (static_cast<uint64_t>(b.x[2]) << 32) | b.x[3];
}

/// Derives the 64-bit Philox key from a user seed (one SplitMix64
/// step, same mixer the xoshiro seeder uses).
uint64_t KeyFromSeed(uint64_t seed);

/// Both normals of draw-event block `block` for key (key0, key1):
/// Box–Muller over the block's two uniform halves, radial log and
/// sincos through the pinned fastmath kernels. Even events return
/// *rcos, odd events *rsin.
void BlockNormals(uint64_t block, uint32_t key0, uint32_t key1,
                  double* rsin, double* rcos);

}  // namespace philox_detail

/// Counter-based generator: every draw is a pure function of
/// (seed, draw index). Draw event n consumes half of Philox block
/// n/2 — a Uniform64 eats one half, a NormalUnit pair eats a whole
/// block (even event returns r*cos and caches r*sin for the odd
/// sibling). Because identity never depends on evaluation order,
/// SkipAhead(k) is a counter bump, and scalar, batched, and SIMD
/// evaluations of the same stream produce the same bits
/// (DESIGN.md §16).
class PhiloxRng {
 public:
  explicit PhiloxRng(uint64_t seed = 0) { Reseed(seed); }

  /// Re-keys the stream and rewinds the draw counter to zero.
  void Reseed(uint64_t seed);

  /// Uniform 64 bits: half a block per call.
  uint64_t Uniform64();

  /// Uniform double in [0, 1), same mantissa mapping as Rng.
  double NextDouble() {
    return static_cast<double>(Uniform64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal variate (mean 0, stddev 1) via Box–Muller over
  /// one block; consumes one draw event.
  double NormalUnit();

  /// Uniform integer in [lo, hi] via Lemire rejection sampling —
  /// unbiased for every range, unlike the legacy modulo reduction.
  /// May consume more than one event (rejection), so fixed-stride
  /// skip-ahead only applies to Uniform64/NormalUnit streams.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Advances the stream by `events` draw events in O(1).
  void SkipAhead(uint64_t events) {
    counter_ += events;
    cache_valid_ = false;
  }

  uint64_t counter() const { return counter_; }

  /// Full stream state for checkpoint/restore. The key words are
  /// included (not just the counter) so a restored stream never
  /// depends on re-deriving the key from a seed.
  struct State {
    uint32_t key0;
    uint32_t key1;
    uint64_t counter;
    uint64_t cache_block;
    double cache;
    bool cache_valid;
  };
  State SaveState() const {
    return State{key0_, key1_, counter_, cache_block_, cache_,
                 cache_valid_};
  }
  void RestoreState(const State& s) {
    key0_ = s.key0;
    key1_ = s.key1;
    counter_ = s.counter;
    cache_block_ = s.cache_block;
    cache_ = s.cache;
    cache_valid_ = s.cache_valid;
  }

 private:
  uint32_t key0_ = 0;
  uint32_t key1_ = 0;
  uint64_t counter_ = 0;
  // One cached r*sin per block so sequential NormalUnit pairs cost
  // one block; keyed by block index so SkipAhead can never serve a
  // stale half.
  uint64_t cache_block_ = 0;
  double cache_ = 0.0;
  bool cache_valid_ = false;
};

/// Struct-of-arrays philox streams for the batched engine: lane i's
/// stream is bit-identical to a PhiloxRng seeded with lane i's seed.
/// All arrays are indexed [lane]; the SIMD row kernels read and
/// advance four lanes at a time.
struct PhiloxLanes {
  std::vector<uint32_t> key0;
  std::vector<uint32_t> key1;
  std::vector<uint64_t> ctr;
  std::vector<uint64_t> cache_block;
  std::vector<double> cache;
  std::vector<uint8_t> cache_valid;

  std::size_t size() const { return ctr.size(); }
  void Resize(std::size_t lanes);
  void SeedLane(std::size_t lane, uint64_t seed);
};

/// Fills out[draw * lanes.size() + lane] with the next `draws`
/// uniform doubles of every lane's stream (one draw event each),
/// advancing all counters. Dispatches to the active SIMD kernel.
void FillUniform(PhiloxLanes& lanes, std::size_t draws, double* out);

/// Same layout for standard normals (one draw event each).
void FillNormal(PhiloxLanes& lanes, std::size_t draws, double* out);

}  // namespace autoglobe

#endif  // AUTOGLOBE_COMMON_PHILOX_H_
