file(REMOVE_RECURSE
  "CMakeFiles/ag_monitor.dir/load_archive.cc.o"
  "CMakeFiles/ag_monitor.dir/load_archive.cc.o.d"
  "CMakeFiles/ag_monitor.dir/monitoring.cc.o"
  "CMakeFiles/ag_monitor.dir/monitoring.cc.o.d"
  "libag_monitor.a"
  "libag_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
