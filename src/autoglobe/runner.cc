#include "autoglobe/runner.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe {

using monitor::LoadMonitoringSystem;
using monitor::Trigger;
using monitor::TriggerKind;

/// LoadView backed by the archive (watch-time means per §4.1) and the
/// live demand engine; optionally replaces server/service loads with
/// forecasts for the proactive-controller ablation.
class SimulationRunner::View : public controller::LoadView {
 public:
  View(SimulationRunner* runner) : runner_(runner) {}

  double ServerCpuLoad(std::string_view server) const override {
    return SubjectLoad(TriggerKind::kServerOverloaded, server,
                       runner_->demand_->ServerCpuLoad(server));
  }
  double ServerMemLoad(std::string_view server) const override {
    // Memory load changes stepwise with placements; the live value is
    // the honest signal.
    return runner_->demand_->ServerMemLoad(server);
  }
  double InstanceLoad(infra::InstanceId id) const override {
    return runner_->demand_->InstanceLoad(id);
  }
  double ServiceLoad(std::string_view service) const override {
    return SubjectLoad(TriggerKind::kServiceOverloaded, service,
                       runner_->demand_->ServiceLoad(service));
  }

 private:
  double SubjectLoad(TriggerKind kind, std::string_view name,
                     double live) const {
    std::string key = LoadMonitoringSystem::ArchiveKey(kind, name);
    SimTime now = runner_->simulator_.now();
    // Dirty tracking may hold a quiescent subject's recent samples
    // compressed outside the archive — replay them before reading, so
    // the watch-time mean is computed over the complete series.
    auto subject = runner_->monitoring_->SubjectIdOf(name);
    if (subject.ok()) {
      AG_CHECK_OK(runner_->monitoring_->MaterializeSubject(*subject));
    }
    auto mean = runner_->archive_.Average(
        key, runner_->config_.monitor.overload_watch_time, now);
    double current = mean.ok() ? *mean : live;
    if (runner_->config_.use_forecast && runner_->forecaster_ != nullptr) {
      // Proactive mode reacts to *imminent* overloads: the controller
      // sees whichever is worse, the trailing mean or the prediction —
      // forecasting must never hide a live overload.
      auto forecast = runner_->forecaster_->Forecast(key, now);
      if (forecast.ok()) return std::max(current, *forecast);
    }
    return current;
  }

  SimulationRunner* runner_;
};

SimulationRunner::SimulationRunner(RunnerConfig config)
    : config_(config),
      archive_(config.archive_retention, config.archive_bucket),
      failure_rng_(config.seed ^ 0xfa11fa11u),
      degraded_(config.degraded) {}

SimulationRunner::~SimulationRunner() = default;

Result<std::unique_ptr<SimulationRunner>> SimulationRunner::Create(
    const Landscape& landscape, RunnerConfig config) {
  std::unique_ptr<SimulationRunner> runner(new SimulationRunner(config));
  AG_RETURN_IF_ERROR(runner->Init(landscape));
  return runner;
}

Status SimulationRunner::Init(const Landscape& landscape) {
  // Observability first: the registry is always on (inert-handle cost
  // only), tracing/audit are created on demand and handed to every
  // component below as it is built.
  triggers_counter_ = registry_.AddCounter("triggers_fired");
  actions_executed_counter_ = registry_.AddCounter("actions_executed");
  actions_failed_counter_ = registry_.AddCounter("actions_failed");
  alerts_counter_ = registry_.AddCounter("alerts");
  failures_injected_counter_ = registry_.AddCounter("failures_injected");
  failures_remedied_counter_ = registry_.AddCounter("failures_remedied");
  sla_violations_counter_ = registry_.AddCounter("sla_violations_entered");
  executor_actions_failed_counter_ =
      registry_.AddCounter("executor_actions_failed_total");
  executor_retries_counter_ = registry_.AddCounter("executor_retries_total");
  recoveries_counter_ = registry_.AddCounter("recoveries_total");
  recovery_abandoned_counter_ =
      registry_.AddCounter("recovery_abandoned_total");
  oscillations_counter_ = registry_.AddCounter("oscillations");
  strategy_reward_updates_counter_ =
      registry_.AddCounter("strategy_reward_updates");
  strategy_weight_updates_counter_ =
      registry_.AddCounter("strategy_weight_updates");
  degraded_entries_counter_ = registry_.AddCounter("degraded_mode_entries");
  degraded_ticks_counter_ = registry_.AddCounter("degraded_mode_ticks");
  degraded_suppressed_counter_ =
      registry_.AddCounter("degraded_mode_suppressed_triggers");
  server_cpu_load_ = registry_.AddHistogram(
      "server_cpu_load",
      {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  if (config_.observability.enable_tracing) {
    trace_ = std::make_unique<obs::TraceBuffer>(
        config_.observability.trace_capacity);
    simulator_.set_trace_buffer(trace_.get());
  }
  if (config_.observability.enable_audit) {
    audit_ = std::make_unique<obs::AuditLog>(
        config_.observability.audit_capacity);
  }

  demand_ = std::make_unique<workload::DemandEngine>(&cluster_,
                                                     Rng(config_.seed));
  demand_->SeedRng(config_.seed, config_.rng_kind);
  AG_RETURN_IF_ERROR(landscape.Build(&cluster_, demand_.get()));
  demand_->set_user_scale(config_.user_scale);
  demand_->set_distribution(config_.distribution);
  demand_->set_fluctuation_per_minute(config_.fluctuation_per_minute);
  demand_->set_overload_threshold(config_.overload_threshold);

  // Pre-size every archive series for the full retention window and
  // the whole run's aggregate buckets: steady-state appends never
  // grow a ring. (A few KB per subject at the default 1-min tick.)
  if (config_.tick > Duration::Zero()) {
    archive_.set_capacity_hints(
        static_cast<size_t>(archive_.raw_retention().seconds() /
                            config_.tick.seconds()) +
            2,
        static_cast<size_t>(config_.duration.seconds() /
                            archive_.aggregate_bucket().seconds()) +
            2);
  }
  // The proactive ablation reads forecasts (hence the archive) before
  // every observation — carry-forward compression would serve it
  // stale series, so it runs with the exhaustive evaluation path.
  if (config_.use_forecast) config_.monitor.dirty_tracking = false;

  monitoring_ = std::make_unique<LoadMonitoringSystem>(&archive_,
                                                       config_.monitor);
  for (const infra::ServerSpec* server : cluster_.Servers()) {
    AG_RETURN_IF_ERROR(monitoring_->RegisterSubject(
        TriggerKind::kServerOverloaded, server->name,
        server->performance_index));
    server_names_.push_back(server->name);
  }
  // Dense per-server stats, index order = sorted name order (the
  // cluster index's dense server ids).
  std::sort(server_names_.begin(), server_names_.end());
  window_ticks_ = static_cast<size_t>(std::max<int64_t>(
      1, config_.overload_smoothing.seconds() / config_.tick.seconds()));
  server_stats_.resize(server_names_.size());
  for (ServerStat& stat : server_stats_) {
    stat.window.assign(window_ticks_, 0.0);
  }
  for (const infra::ServiceSpec* service : cluster_.Services()) {
    std::optional<Duration> watch_override;
    if (service->watch_time_minutes > 0) {
      watch_override = Duration::Minutes(service->watch_time_minutes);
    }
    AG_RETURN_IF_ERROR(monitoring_->RegisterSubject(
        TriggerKind::kServiceOverloaded, service->name, 1.0,
        watch_override));
    service_names_.push_back(service->name);
  }
  // Services() is already name-sorted; the sort keeps the invariant
  // (dense service ids == rank in sorted order) explicit.
  std::sort(service_names_.begin(), service_names_.end());
  // Resolve monitoring subject ids and archive keys once; the
  // per-tick loops below run purely on dense indices.
  for (const std::string& server : server_names_) {
    AG_ASSIGN_OR_RETURN(monitor::SubjectId id,
                        monitoring_->SubjectIdOf(server));
    server_subjects_.push_back(id);
    server_keys_.push_back(LoadMonitoringSystem::ArchiveKey(
        TriggerKind::kServerOverloaded, server));
  }
  for (const std::string& service : service_names_) {
    AG_ASSIGN_OR_RETURN(monitor::SubjectId id,
                        monitoring_->SubjectIdOf(service));
    service_subjects_.push_back(id);
    service_keys_.push_back(LoadMonitoringSystem::ArchiveKey(
        TriggerKind::kServiceOverloaded, service));
  }
  monitoring_->set_trigger_callback(
      [this](const Trigger& trigger) { OnTrigger(trigger); });
  monitoring_->set_trace_buffer(trace_.get());

  executor_ = std::make_unique<infra::ActionExecutor>(&cluster_,
                                                      &simulator_,
                                                      config_.executor);
  executor_->set_trace_buffer(trace_.get());
  executor_->set_audit_log(audit_.get());
  executor_->set_metrics(executor_actions_failed_counter_,
                         executor_retries_counter_);
  executor_->AddListener([this](const infra::ActionRecord& record) {
    if (record.status.ok()) {
      ++metrics_.actions_executed;
      actions_executed_counter_.Increment();
      TrackOscillation(record);
      messages_.push_back(StrFormat("%s  EXEC %s",
                                    record.at.ToString().c_str(),
                                    record.action.ToString().c_str()));
    } else {
      ++metrics_.actions_failed;
      actions_failed_counter_.Increment();
    }
  });

  view_ = std::make_unique<View>(this);
  forecaster_ = std::make_unique<forecast::LoadForecaster>(
      &archive_, config_.forecast);
  AG_ASSIGN_OR_RETURN(
      controller::Controller controller,
      controller::Controller::Create(&cluster_, executor_.get(),
                                     view_.get(), config_.controller));
  controller_ =
      std::make_unique<controller::Controller>(std::move(controller));
  controller_->set_audit_log(audit_.get());
  // Hierarchical per-pool aggregates: fed every tick from the
  // smoothed server loads; the controller consults them when its
  // pool prescreen is enabled. The pool layout is fixed after Init
  // (the server set never changes mid-run), so one Reset suffices.
  pool_stats_.Reset(&cluster_.Index());
  controller_->set_pool_stats(&pool_stats_);
  controller_->set_alert_callback(
      [this](const Trigger& trigger, const std::string& reason) {
        ++metrics_.alerts;
        alerts_counter_.Increment();
        if (trace_ != nullptr) {
          trace_->Record(trigger.at, obs::TraceEventKind::kAlert,
                         "administrator-alert",
                         StrFormat("%s(%s): %s",
                                   std::string(monitor::TriggerKindName(
                                                   trigger.kind))
                                       .c_str(),
                                   trigger.subject.c_str(),
                                   reason.c_str()));
        }
        messages_.push_back(StrFormat(
            "%s  ALERT %s(%s): %s", trigger.at.ToString().c_str(),
            std::string(monitor::TriggerKindName(trigger.kind)).c_str(),
            trigger.subject.c_str(), reason.c_str()));
      });

  // The decide-per-trigger strategy. Always constructed — the default
  // static-fuzzy one is a pass-through wrapper around controller_, so
  // default runs stay bit-identical to the pre-strategy engine. The
  // penalty closure is the learner's reward signal: cumulative
  // SLA-violation minutes plus overload minutes plus a small per-
  // action cost (discourages thrash; reversals also show up in the
  // oscillation metric).
  strategy::StrategyEnv strategy_env;
  strategy_env.controller = controller_.get();
  strategy_env.cluster = &cluster_;
  strategy_env.executor = executor_.get();
  strategy_env.view = view_.get();
  strategy_env.seed = config_.seed;
  strategy_env.penalty = [this] {
    return slas_.TotalViolationMinutes() + metrics_.overload_server_minutes +
           0.1 * static_cast<double>(metrics_.actions_executed +
                                     metrics_.actions_failed);
  };
  AG_ASSIGN_OR_RETURN(strategy_,
                      strategy::MakeStrategy(config_.strategy,
                                             strategy_env));

  for (const SlaSpec& sla : config_.slas) {
    AG_RETURN_IF_ERROR(cluster_.FindService(sla.service).status());
    AG_RETURN_IF_ERROR(slas_.AddSla(sla));
  }
  if (!config_.reservations.empty()) {
    for (const controller::Reservation& reservation :
         config_.reservations) {
      AG_RETURN_IF_ERROR(
          cluster_.FindServer(reservation.server).status());
      AG_RETURN_IF_ERROR(reservations_.Add(reservation).status());
    }
    controller_->set_reservations(&reservations_);
  }

  if (config_.fault_plan.has_value()) {
    // Fault subsystem: injector (breaks things), heartbeat detection
    // (notices), recovery manager (heals), availability tracker
    // (keeps score). All of it event-driven, so fault runs stay
    // bit-identical at any parallelism.
    availability_ =
        std::make_unique<faults::AvailabilityTracker>(config_.availability);
    fault_injector_ = std::make_unique<faults::FaultInjector>(
        &cluster_, &simulator_, config_.seed);
    fault_injector_->set_trace_buffer(trace_.get());
    fault_injector_->set_availability_tracker(availability_.get());
    AG_RETURN_IF_ERROR(fault_injector_->Arm(*config_.fault_plan));
    executor_->set_failure_injector([this](const infra::Action& action) {
      return fault_injector_->CheckAction(action);
    });

    recovery_ = std::make_unique<faults::RecoveryManager>(
        &cluster_, &simulator_, executor_.get(), controller_.get(),
        config_.recovery);
    recovery_->set_trace_buffer(trace_.get());
    recovery_->set_audit_log(audit_.get());
    recovery_->set_availability_tracker(availability_.get());
    recovery_->set_metrics(recoveries_counter_,
                           recovery_abandoned_counter_);
    recovery_->set_alert_callback(
        [this](SimTime at, const std::string& reason) {
          ++metrics_.alerts;
          alerts_counter_.Increment();
          messages_.push_back(StrFormat("%s  ALERT recovery: %s",
                                        at.ToString().c_str(),
                                        reason.c_str()));
        });
    controller_->set_host_filter([this](const std::string& server) {
      return recovery_->FilterHost(server);
    });

    // Heartbeat watches: servers first (stable registration order =
    // sorted names), then the initial instances via the same
    // reconciliation that keeps watches epoch-synced during the run.
    server_hb_keys_.reserve(server_names_.size());
    server_hb_ids_.reserve(server_names_.size());
    for (const std::string& server : server_names_) {
      server_hb_keys_.push_back("s/" + server);
      AG_RETURN_IF_ERROR(monitoring_->WatchHeartbeat(
          TriggerKind::kServerFailed, server_hb_keys_.back(), server,
          SimTime::Start()));
      AG_ASSIGN_OR_RETURN(size_t hb_id,
                          monitoring_->HeartbeatIdOf(server_hb_keys_.back()));
      server_hb_ids_.push_back(hb_id);
    }
    ReconcileInstanceWatches(SimTime::Start());
  }

  AG_RETURN_IF_ERROR(ArmSchedule());
  initialized_ = true;
  init_epoch_ = cluster_.topology_epoch();
  return Status::OK();
}

Status SimulationRunner::ArmSchedule() {
  // The periodic tick re-arms in place; pre-sizing the event heap
  // keeps occasional action/fault scheduling from regrowing it.
  simulator_.ReserveEvents(64);
  sim::EventDesc tick_desc;
  tick_desc.kind = "runner.tick";
  AG_RETURN_IF_ERROR(simulator_
                         .SchedulePeriodic(config_.tick, "tick", tick_desc,
                                           [this] { OnTick(); })
                         .status());
  if (config_.metrics_warmup > Duration::Zero()) {
    sim::EventDesc warmup_desc;
    warmup_desc.kind = "runner.warmup_end";
    AG_RETURN_IF_ERROR(
        simulator_
            .ScheduleAfter(config_.metrics_warmup, "metrics-warmup-end",
                           warmup_desc, [this] { OnWarmupEnd(); })
            .status());
  }
  return Status::OK();
}

void SimulationRunner::OnWarmupEnd() {
  demand_->ResetQualityMetrics();
  metrics_.overload_server_minutes = 0.0;
  metrics_.max_overload_streak_minutes = 0.0;
  for (ServerStat& stat : server_stats_) {
    stat.streak_minutes = 0.0;
  }
  load_sum_ = 0.0;
  load_samples_ = 0;
}

Status SimulationRunner::ResetForRerun(uint64_t seed, double user_scale) {
  if (!initialized_) {
    return Status::FailedPrecondition("runner not initialized");
  }
  if (config_.fault_plan.has_value()) {
    return Status::FailedPrecondition(
        "fault-plan runs cannot be re-armed: the plan schedules "
        "simulator events at Init");
  }
  if (config_.strategy.kind != strategy::StrategyKind::kStaticFuzzy) {
    return Status::FailedPrecondition(
        "adaptive strategies carry learned state across runs; create a "
        "fresh runner instead of re-arming");
  }
  if (cluster_.topology_epoch() != init_epoch_) {
    return Status::FailedPrecondition(
        "topology changed since Init; a rerun requires the initial "
        "allocation");
  }
  if (metrics_.actions_executed > 0 || metrics_.actions_failed > 0) {
    return Status::FailedPrecondition(
        "the executor ran actions; create a fresh runner instead");
  }

  config_.seed = seed;
  config_.user_scale = user_scale;

  simulator_.Reset();
  demand_->ResetRunState(seed, config_.rng_kind);
  demand_->set_user_scale(user_scale);
  failure_rng_ = Rng(seed ^ 0xfa11fa11u);
  archive_.ClearSamples();
  monitoring_->ResetObservations();
  pool_stats_.Reset(&cluster_.Index());
  for (ServerStat& stat : server_stats_) {
    stat.streak_minutes = 0.0;
    stat.window_sum = 0.0;
    std::fill(stat.window.begin(), stat.window.end(), 0.0);
    stat.head = 0;
    stat.count = 0;
  }
  load_sum_ = 0.0;
  load_samples_ = 0;
  degraded_ = controller::DegradedModeController(config_.degraded);
  metrics_ = RunMetrics{};
  messages_.clear();
  action_history_.clear();
  folded_reward_updates_ = 0;
  folded_weight_updates_ = 0;
  slas_ = SlaTracker();
  for (const SlaSpec& sla : config_.slas) {
    AG_RETURN_IF_ERROR(slas_.AddSla(sla));
  }
  return ArmSchedule();
}

void SimulationRunner::OnTick() {
  SimTime now = simulator_.now();
  // Wall-clock tick deadline (degraded mode): sampled only when the
  // deadline is configured — it reads the host's real clock, so runs
  // with it enabled are not deterministic.
  std::chrono::steady_clock::time_point tick_started{};
  if (config_.degraded.enabled && config_.degraded.tick_deadline_ms > 0.0) {
    tick_started = std::chrono::steady_clock::now();
  }
  if (config_.instance_failures_per_hour > 0) InjectFailures();

  demand_->Tick(now, config_.tick);

  // Metrics and monitoring feeds. The overload verdict uses a
  // smoothed load so that a single noisy sample does not count as an
  // "overloaded" minute (the paper's criterion is sustained load).
  double tick_minutes = config_.tick.seconds() / 60.0;
  // The dense server ids enumerate sorted names — the exact layout of
  // server_names_/server_stats_ resolved at Init. Names come from the
  // runner's own snapshot (not the landscape index) because a trigger
  // fired inside Observe can mutate topology and rebuild the index
  // mid-loop; the server/service *sets* are fixed after Init, so the
  // dense ids themselves stay stable.
  for (size_t position = 0; position < server_names_.size(); ++position) {
    infra::DenseId server_id = static_cast<infra::DenseId>(position);
    double cpu = demand_->ServerCpuLoadById(server_id);
    ServerStat& stat = server_stats_[position];
    load_sum_ += cpu;
    ++load_samples_;
    server_cpu_load_.Observe(cpu);
    // Trailing window as a ring buffer; the add-then-evict order of
    // operations matches the previous deque implementation so the
    // floating-point results are bit-identical.
    stat.window_sum += cpu;
    if (stat.count == window_ticks_) {
      stat.window_sum -= stat.window[stat.head];
      stat.window[stat.head] = cpu;
      stat.head = (stat.head + 1) % window_ticks_;
    } else {
      stat.window[(stat.head + stat.count) % window_ticks_] = cpu;
      ++stat.count;
    }
    double smoothed =
        stat.window_sum / static_cast<double>(stat.count);
    pool_stats_.Update(server_id, smoothed);
    if (smoothed > config_.overload_threshold) {
      metrics_.overload_server_minutes += tick_minutes;
      stat.streak_minutes += tick_minutes;
      metrics_.max_overload_streak_minutes = std::max(
          metrics_.max_overload_streak_minutes, stat.streak_minutes);
    } else {
      stat.streak_minutes = 0.0;
    }
    AG_CHECK_OK(monitoring_->ObserveById(
        now, server_subjects_[position], cpu,
        DetectionLoad(server_keys_[position], cpu)));
  }
  for (size_t position = 0; position < service_names_.size(); ++position) {
    infra::DenseId service_id = static_cast<infra::DenseId>(position);
    double service_load = demand_->ServiceLoadById(service_id);
    AG_CHECK_OK(monitoring_->ObserveById(
        now, service_subjects_[position], service_load,
        DetectionLoad(service_keys_[position], service_load)));
  }

  // Heartbeats + failure detection (fault subsystem only). Fed after
  // the load observes so detections fire on a fully updated picture.
  if (fault_injector_ != nullptr) FeedHeartbeats(now);

  // Degraded-mode watchdog: when the control plane itself is unwell —
  // a monitor-dropout storm blinds detection, or this tick overran its
  // wall-clock deadline — flip to the urgent-only posture before any
  // more decisions are made. SLA escalations (below) and failure
  // recovery stay live either way.
  if (config_.degraded.enabled) {
    int silent_servers = 0;
    if (fault_injector_ != nullptr) {
      for (const std::string& server : server_names_) {
        if (cluster_.IsServerUp(server) &&
            !fault_injector_->IsReporting(server, now)) {
          ++silent_servers;
        }
      }
    }
    double tick_wall_ms = 0.0;
    if (config_.degraded.tick_deadline_ms > 0.0) {
      tick_wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - tick_started)
                         .count();
    }
    bool was_degraded = degraded_.degraded();
    int change = degraded_.ObserveTick(silent_servers, tick_wall_ms);
    if (was_degraded || change > 0) degraded_ticks_counter_.Increment();
    if (change != 0) {
      const char* verb = change > 0 ? "ENTER" : "EXIT";
      if (change > 0) degraded_entries_counter_.Increment();
      messages_.push_back(StrFormat(
          "%s  %s degraded mode (%d silent server(s), tick %.1f ms)",
          now.ToString().c_str(), verb, silent_servers, tick_wall_ms));
      if (audit_ != nullptr) {
        obs::DecisionAudit record;
        record.at = now;
        record.trigger_kind = "degraded-mode";
        record.subject = "control-plane";
        record.strategy = "watchdog";
        record.verdict = StrFormat(
            "%s degraded mode: %d silent server(s), tick %.1f ms "
            "(storm threshold %d, deadline %.1f ms)",
            change > 0 ? "entered" : "exited", silent_servers,
            tick_wall_ms, config_.degraded.dropout_storm_threshold,
            config_.degraded.tick_deadline_ms);
        audit_->Add(std::move(record));
      }
    }
  }

  // SLA monitoring and enforcement (QoS extension, §7).
  for (const SlaSpec& sla : config_.slas) {
    auto entered = slas_.Observe(
        now, sla.service, demand_->ServiceSatisfaction(sla.service),
        config_.tick);
    if (!entered.ok() || !*entered) continue;
    double satisfaction =
        (*slas_.StatusOf(sla.service))->current_satisfaction;
    sla_violations_counter_.Increment();
    if (trace_ != nullptr) {
      trace_->Record(now, obs::TraceEventKind::kSlaViolation, sla.service,
                     StrFormat("satisfaction %.1f%% < %.1f%%",
                               satisfaction * 100.0,
                               sla.min_satisfaction * 100.0));
    }
    messages_.push_back(StrFormat("%s  SLA-VIOLATION %s (%.1f%% < %.1f%%)",
                                  now.ToString().c_str(),
                                  sla.service.c_str(),
                                  satisfaction * 100.0,
                                  sla.min_satisfaction * 100.0));
    if (config_.enforce_slas && config_.controller_enabled) {
      // The breach is confirmed harm; escalate without a watchTime and
      // override the subject's own protection window.
      Trigger trigger{TriggerKind::kServiceOverloaded, sla.service, now,
                      demand_->ServiceLoad(sla.service)};
      ++metrics_.triggers;
      triggers_counter_.Increment();
      auto outcome = strategy_->HandleTrigger(trigger, /*urgent=*/true);
      if (!outcome.ok()) {
        messages_.push_back(StrFormat(
            "%s  ERROR handling SLA escalation: %s",
            now.ToString().c_str(),
            outcome.status().ToString().c_str()));
      }
    }
  }

  if (sample_hook_) sample_hook_(now, *demand_, cluster_);
}

std::optional<double> SimulationRunner::DetectionLoad(
    const std::string& key, double live) const {
  if (!config_.use_forecast || forecaster_ == nullptr) return std::nullopt;
  auto forecast = forecaster_->Forecast(key, simulator_.now());
  if (!forecast.ok()) return std::nullopt;
  // Imminent overloads arm the watch early; live overloads always do.
  return std::max(live, *forecast);
}

void SimulationRunner::OnTrigger(const Trigger& trigger) {
  ++metrics_.triggers;
  triggers_counter_.Increment();
  if (trigger.kind == TriggerKind::kInstanceFailed ||
      trigger.kind == TriggerKind::kServerFailed) {
    // Failure triggers bypass the fuzzy action selection: recovery is
    // procedural (restart, relocate, evacuate), not a policy
    // trade-off. The self-healing path works even with the load
    // controller disabled — availability is not negotiable.
    if (recovery_ == nullptr) return;
    messages_.push_back(StrFormat(
        "%s  DETECT %s(%s)", trigger.at.ToString().c_str(),
        std::string(monitor::TriggerKindName(trigger.kind)).c_str(),
        trigger.subject.c_str()));
    if (trigger.kind == TriggerKind::kInstanceFailed) {
      recovery_->OnInstanceFailed(trigger.instance, trigger.at);
    } else {
      recovery_->OnServerFailed(trigger.subject, trigger.at);
    }
    return;
  }
  if (!config_.controller_enabled) return;
  // Urgent-only posture: speculative rebalancing (overload/idle load
  // triggers) is frozen while degraded. Failure triggers never reach
  // this point, and SLA escalations call the strategy with urgent=true
  // directly — both stay live.
  if (degraded_.ShouldSuppress(/*urgent=*/false)) {
    degraded_.NoteSuppressed();
    degraded_suppressed_counter_.Increment();
    messages_.push_back(StrFormat(
        "%s  SUPPRESS %s(%s): degraded mode, urgent-only posture",
        trigger.at.ToString().c_str(),
        std::string(monitor::TriggerKindName(trigger.kind)).c_str(),
        trigger.subject.c_str()));
    return;
  }
  auto outcome = strategy_->HandleTrigger(trigger, /*urgent=*/false);
  if (!outcome.ok()) {
    messages_.push_back(StrFormat("%s  ERROR handling trigger: %s",
                                  trigger.at.ToString().c_str(),
                                  outcome.status().ToString().c_str()));
    return;
  }
  if (trace_ != nullptr) {
    std::string detail;
    if (outcome->executed.has_value()) {
      detail = StrFormat("executed %s",
                         outcome->executed->ToString().c_str());
    } else if (outcome->skipped_protected) {
      detail = "skipped (subject protected)";
    } else if (outcome->alerted) {
      detail = "alerted";
    } else {
      detail = "no action";
    }
    trace_->Record(trigger.at, obs::TraceEventKind::kDecision,
                   "controller-decision",
                   StrFormat("%s(%s): %s",
                             std::string(monitor::TriggerKindName(
                                             trigger.kind))
                                 .c_str(),
                             trigger.subject.c_str(), detail.c_str()));
  }
}

void SimulationRunner::InjectFailures() {
  double p_per_tick = config_.instance_failures_per_hour *
                      (config_.tick.seconds() / 3600.0);
  std::vector<infra::InstanceId> crashed;
  for (const infra::ServerSpec* server : cluster_.Servers()) {
    for (const infra::ServiceInstance* instance :
         cluster_.InstancesOn(server->name)) {
      if (instance->state != infra::InstanceState::kRunning) continue;
      if (failure_rng_.Bernoulli(p_per_tick)) {
        crashed.push_back(instance->id);
      }
    }
  }
  for (infra::InstanceId id : crashed) {
    AG_CHECK_OK(cluster_.SetInstanceState(id, infra::InstanceState::kFailed));
    ++metrics_.failures_injected;
    failures_injected_counter_.Increment();
    if (trace_ != nullptr) {
      trace_->Record(simulator_.now(),
                     obs::TraceEventKind::kInstanceLifecycle,
                     "instance-failed", {}, static_cast<int64_t>(id));
    }
    messages_.push_back(StrFormat(
        "%s  FAIL instance %llu", simulator_.now().ToString().c_str(),
        static_cast<unsigned long long>(id)));
    if (config_.controller_enabled) {
      // Self-healing: "Failure situations like a program crash are
      // remedied for example with a restart" (§2).
      if (controller_->RemedyFailure(id, simulator_.now()).ok()) {
        ++metrics_.failures_remedied;
        failures_remedied_counter_.Increment();
      }
    }
  }
}

void SimulationRunner::ReconcileInstanceWatches(SimTime now) {
  if (watched_epoch_ == cluster_.topology_epoch()) return;
  watched_epoch_ = cluster_.topology_epoch();
  // Current instance set, in deterministic (sorted service, ascending
  // id) order.
  std::map<infra::InstanceId, const infra::ServiceInstance*> current;
  for (const std::string& service : service_names_) {
    for (const infra::ServiceInstance* instance :
         cluster_.InstancesOf(service)) {
      current[instance->id] = instance;
    }
  }
  // Drop watches whose instance is gone (removed / relocated away) —
  // the monitor must never raise a trigger for a dead subject.
  for (auto it = watched_instances_.begin();
       it != watched_instances_.end();) {
    if (current.find(it->first) == current.end()) {
      AG_CHECK_OK(monitoring_->UnwatchHeartbeat(it->second.key));
      it = watched_instances_.erase(it);
    } else {
      ++it;
    }
  }
  // Watch newly placed instances, caching the dense heartbeat slot
  // for the per-tick feed.
  for (const auto& [id, instance] : current) {
    if (watched_instances_.find(id) != watched_instances_.end()) continue;
    std::string key =
        StrFormat("i/%llu", static_cast<unsigned long long>(id));
    AG_CHECK_OK(monitoring_->WatchHeartbeat(TriggerKind::kInstanceFailed,
                                            key, instance->service, now,
                                            id));
    auto hb_id = monitoring_->HeartbeatIdOf(key);
    AG_CHECK_OK(hb_id.status());
    watched_instances_[id] = WatchedInstance{std::move(key), *hb_id};
  }
}

void SimulationRunner::FeedHeartbeats(SimTime now) {
  ReconcileInstanceWatches(now);
  // Server heartbeats: a down server is silent; a server in a
  // monitor-dropout window is healthy but silent (the false-positive
  // path detection must survive).
  for (size_t position = 0; position < server_names_.size(); ++position) {
    const std::string& server = server_names_[position];
    if (cluster_.IsServerUp(server) &&
        fault_injector_->IsReporting(server, now)) {
      AG_CHECK_OK(
          monitoring_->RecordHeartbeatById(server_hb_ids_[position], now));
    }
  }
  // Instance heartbeats: an instance reports while its process lives
  // (starting or running) and its host's monitoring path is up.
  for (const auto& [id, watch] : watched_instances_) {
    auto instance = cluster_.FindInstance(id);
    if (!instance.ok()) continue;  // removed this very tick
    if ((*instance)->state == infra::InstanceState::kFailed) continue;
    const std::string& server = (*instance)->server;
    if (cluster_.IsServerUp(server) &&
        fault_injector_->IsReporting(server, now)) {
      AG_CHECK_OK(monitoring_->RecordHeartbeatById(watch.hb_id, now));
    }
  }
  monitoring_->CheckHeartbeats(now);
}

faults::AvailabilityReport SimulationRunner::availability_report() const {
  if (availability_ == nullptr) return faults::AvailabilityReport{};
  return availability_->Report(simulator_.now());
}

Status SimulationRunner::Run() {
  return RunUntil(SimTime::Start() + config_.duration);
}

Status SimulationRunner::RunUntil(SimTime end) {
  if (!initialized_) {
    return Status::FailedPrecondition("runner not initialized");
  }
  simulator_.RunUntil(end);
  // Flush carry-forward runs so everything downstream of the run —
  // console views, archive Save, figure benches — sees the complete
  // series.
  AG_RETURN_IF_ERROR(monitoring_->MaterializeAll());
  // Fold engine-level metrics.
  metrics_.lost_work_wu = demand_->TotalLostWork();
  metrics_.sla_violation_minutes = slas_.TotalViolationMinutes();
  metrics_.average_cpu_load =
      load_samples_ > 0 ? load_sum_ / static_cast<double>(load_samples_)
                        : 0.0;
  int64_t server_count =
      static_cast<int64_t>(cluster_.Index().num_servers());
  double total_minutes =
      static_cast<double>(
          (simulator_.now() - (SimTime::Start() + config_.metrics_warmup))
              .seconds()) /
      60.0;
  double denom = static_cast<double>(server_count) * total_minutes;
  metrics_.overload_fraction =
      denom > 0 ? metrics_.overload_server_minutes / denom : 0.0;
  FoldStrategyTelemetry();
  return Status::OK();
}

void SimulationRunner::TrackOscillation(const infra::ActionRecord& record) {
  using infra::ActionType;
  const infra::Action& action = record.action;
  ActionHistory& history = action_history_[action.service];
  auto within_window = [&](SimTime then) {
    return record.at - then <= config_.oscillation_window;
  };
  auto bump = [&] {
    ++metrics_.oscillations;
    oscillations_counter_.Increment();
  };
  switch (action.type) {
    case ActionType::kScaleOut:
    case ActionType::kScaleIn: {
      ActionType opposite = action.type == ActionType::kScaleOut
                                ? ActionType::kScaleIn
                                : ActionType::kScaleOut;
      if (history.last_scale == opposite &&
          within_window(history.last_scale_at)) {
        bump();
      }
      history.last_scale = action.type;
      history.last_scale_at = record.at;
      break;
    }
    case ActionType::kIncreasePriority:
    case ActionType::kReducePriority: {
      ActionType opposite = action.type == ActionType::kIncreasePriority
                                ? ActionType::kReducePriority
                                : ActionType::kIncreasePriority;
      if (history.last_priority == opposite &&
          within_window(history.last_priority_at)) {
        bump();
      }
      history.last_priority = action.type;
      history.last_priority_at = record.at;
      break;
    }
    case ActionType::kMove: {
      // A move that returns an instance of this service to the host a
      // previous move took it from is a ping-pong.
      if (!history.last_move_source.empty() &&
          action.target_server == history.last_move_source &&
          action.source_server == history.last_move_target &&
          within_window(history.last_move_at)) {
        bump();
      }
      history.last_move_source = action.source_server;
      history.last_move_target = action.target_server;
      history.last_move_at = record.at;
      break;
    }
    default:
      break;
  }
}

void SimulationRunner::FoldStrategyTelemetry() {
  if (strategy_ == nullptr) return;
  int64_t reward = strategy_->reward_updates();
  int64_t weight = strategy_->weight_updates();
  int64_t reward_delta = reward - folded_reward_updates_;
  int64_t weight_delta = weight - folded_weight_updates_;
  if (reward_delta > 0) {
    strategy_reward_updates_counter_.Increment(
        static_cast<uint64_t>(reward_delta));
  }
  if (weight_delta > 0) {
    strategy_weight_updates_counter_.Increment(
        static_cast<uint64_t>(weight_delta));
  }
  folded_reward_updates_ = reward;
  folded_weight_updates_ = weight;
  metrics_.strategy_reward_updates = reward;
  metrics_.strategy_weight_updates = weight;
}

}  // namespace autoglobe
