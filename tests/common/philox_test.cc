#include "common/philox.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/lane_kernels.h"
#include "common/rng.h"

namespace autoglobe {
namespace {

// --- Known-answer tests (Random123 kat_vectors, philox4x32 10) -------

TEST(PhiloxBlockTest, KnownAnswerZero) {
  philox_detail::Block b =
      philox_detail::Philox4x32_10(0, 0, 0, 0, 0, 0);
  EXPECT_EQ(b.x[0], 0x6627e8d5u);
  EXPECT_EQ(b.x[1], 0xe169c58du);
  EXPECT_EQ(b.x[2], 0xbc57ac4cu);
  EXPECT_EQ(b.x[3], 0x9b00dbd8u);
}

TEST(PhiloxBlockTest, KnownAnswerAllOnes) {
  philox_detail::Block b = philox_detail::Philox4x32_10(
      0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu,
      0xffffffffu);
  EXPECT_EQ(b.x[0], 0x408f276du);
  EXPECT_EQ(b.x[1], 0x41c83b0eu);
  EXPECT_EQ(b.x[2], 0xa20bc7c6u);
  EXPECT_EQ(b.x[3], 0x6d5451fdu);
}

TEST(PhiloxBlockTest, KnownAnswerPiDigits) {
  philox_detail::Block b = philox_detail::Philox4x32_10(
      0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u, 0xa4093822u,
      0x299f31d0u);
  EXPECT_EQ(b.x[0], 0xd16cfe09u);
  EXPECT_EQ(b.x[1], 0x94fdccebu);
  EXPECT_EQ(b.x[2], 0x5001e420u);
  EXPECT_EQ(b.x[3], 0x24126ea1u);
}

// --- Stream discipline -----------------------------------------------

TEST(PhiloxRngTest, ReseedReproducesStream) {
  PhiloxRng a(42);
  std::vector<uint64_t> first;
  for (int i = 0; i < 32; ++i) first.push_back(a.Uniform64());
  a.Reseed(42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.Uniform64(), first[i]);
}

TEST(PhiloxRngTest, SeedsDecorrelate) {
  PhiloxRng a(1);
  PhiloxRng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Uniform64() == b.Uniform64();
  EXPECT_EQ(same, 0);
}

TEST(PhiloxRngTest, NextDoubleInUnitInterval) {
  PhiloxRng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PhiloxRngTest, SkipAheadEqualsSequentialUniforms) {
  PhiloxRng seq(123);
  std::vector<uint64_t> draws;
  for (int i = 0; i < 100; ++i) draws.push_back(seq.Uniform64());
  for (uint64_t skip : {1u, 2u, 3u, 17u, 64u, 99u}) {
    PhiloxRng jumped(123);
    jumped.SkipAhead(skip);
    EXPECT_EQ(jumped.counter(), skip);
    for (uint64_t i = skip; i < 100; ++i) {
      EXPECT_EQ(jumped.Uniform64(), draws[i]) << "skip=" << skip;
    }
  }
}

TEST(PhiloxRngTest, SkipAheadEqualsSequentialNormals) {
  PhiloxRng seq(99);
  std::vector<double> draws;
  for (int i = 0; i < 100; ++i) draws.push_back(seq.NormalUnit());
  for (uint64_t skip : {1u, 2u, 5u, 50u, 97u}) {
    PhiloxRng jumped(99);
    jumped.SkipAhead(skip);
    for (uint64_t i = skip; i < 100; ++i) {
      // Bit equality, not tolerance: the draw is a pure function of
      // (seed, index) whether it was reached by stepping or jumping.
      EXPECT_EQ(jumped.NormalUnit(), draws[i]) << "skip=" << skip;
    }
  }
}

TEST(PhiloxRngTest, MixedDrawsAreOrderIndexed) {
  // A uniform wedged between two normals consumes exactly one event;
  // the normal after it is the one a pure normal stream would have
  // produced at that index (odd sibling of the same block).
  PhiloxRng pure(5);
  double n0 = pure.NormalUnit();
  double n1 = pure.NormalUnit();
  double n2 = pure.NormalUnit();

  PhiloxRng mixed(5);
  EXPECT_EQ(mixed.NormalUnit(), n0);
  mixed.Uniform64();  // consumes event 1
  EXPECT_EQ(mixed.NormalUnit(), n2);

  PhiloxRng jumped(5);
  jumped.SkipAhead(1);
  EXPECT_EQ(jumped.NormalUnit(), n1);
}

TEST(PhiloxRngTest, NormalsHaveUnitMoments) {
  PhiloxRng rng(2026);
  const int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double z = rng.NormalUnit();
    sum += z;
    sum_sq += z * z;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

// --- UniformInt (Lemire rejection) -----------------------------------

TEST(PhiloxRngTest, UniformIntCoversInclusiveRange) {
  PhiloxRng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    saw_lo |= v == -3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PhiloxRngTest, UniformIntDegenerateRange) {
  PhiloxRng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

/// Chi-square goodness of fit over the fault-victim-style range. With
/// 19 buckets (df = 18) the 99.9th percentile is 42.31; Lemire
/// rejection is exactly uniform, so failures indicate a broken
/// reduction, not statistical bad luck at this seed.
TEST(PhiloxRngTest, UniformIntChiSquare) {
  PhiloxRng rng(31337);
  constexpr int kBuckets = 19;
  constexpr int kDraws = 190000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int count : counts) {
    double d = count - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 42.31) << "philox UniformInt distribution skewed";
}

// --- SoA lanes & kernel-tier parity ----------------------------------

TEST(PhiloxLanesTest, FillUniformMatchesScalarStreams) {
  for (size_t lanes : {1u, 4u, 5u, 8u, 64u}) {
    PhiloxLanes soa;
    soa.Resize(lanes);
    std::vector<PhiloxRng> scalar;
    for (size_t i = 0; i < lanes; ++i) {
      soa.SeedLane(i, 1000 + 17 * i);
      scalar.emplace_back(1000 + 17 * i);
    }
    const size_t kDraws = 33;
    std::vector<double> out(kDraws * lanes);
    FillUniform(soa, kDraws, out.data());
    for (size_t d = 0; d < kDraws; ++d) {
      for (size_t i = 0; i < lanes; ++i) {
        EXPECT_EQ(out[d * lanes + i], scalar[i].NextDouble())
            << "lanes=" << lanes << " draw=" << d << " lane=" << i;
      }
    }
  }
}

TEST(PhiloxLanesTest, FillNormalMatchesScalarStreams) {
  for (size_t lanes : {1u, 4u, 5u, 8u, 64u}) {
    PhiloxLanes soa;
    soa.Resize(lanes);
    std::vector<PhiloxRng> scalar;
    for (size_t i = 0; i < lanes; ++i) {
      soa.SeedLane(i, 2000 + 31 * i);
      scalar.emplace_back(2000 + 31 * i);
    }
    const size_t kDraws = 33;  // odd: ends mid-block
    std::vector<double> out(kDraws * lanes);
    FillNormal(soa, kDraws, out.data());
    for (size_t d = 0; d < kDraws; ++d) {
      for (size_t i = 0; i < lanes; ++i) {
        EXPECT_EQ(out[d * lanes + i], scalar[i].NormalUnit())
            << "lanes=" << lanes << " draw=" << d << " lane=" << i;
      }
    }
  }
}

class KernelTierParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = GetLaneKernelsAvx2();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "AVX2 tier unavailable on this host/build";
    }
  }
  const LaneKernels* avx2_ = nullptr;
};

TEST_F(KernelTierParityTest, NormalEventRowsBitIdentical) {
  const size_t kLanes = 64;
  PhiloxLanes a;
  PhiloxLanes b;
  a.Resize(kLanes);
  b.Resize(kLanes);
  for (size_t i = 0; i < kLanes; ++i) {
    a.SeedLane(i, 7 * i + 1);
    b.SeedLane(i, 7 * i + 1);
  }
  // Desynchronize counters so even, odd, and mixed groups all occur.
  for (size_t i = 0; i < kLanes; i += 3) {
    a.ctr[i] = i;
    b.ctr[i] = i;
  }
  std::vector<double> out_a(kLanes);
  std::vector<double> out_b(kLanes);
  for (int step = 0; step < 9; ++step) {
    GetLaneKernelsScalar().philox_normal_event_row(MakePhiloxLaneView(a),
                                                   out_a.data(), kLanes);
    avx2_->philox_normal_event_row(MakePhiloxLaneView(b), out_b.data(),
                                   kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(out_a[i], out_b[i]) << "step=" << step << " lane=" << i;
      EXPECT_EQ(a.ctr[i], b.ctr[i]);
    }
  }
}

TEST_F(KernelTierParityTest, UniformEventRowsBitIdentical) {
  const size_t kLanes = 13;  // forces a remainder group
  PhiloxLanes a;
  PhiloxLanes b;
  a.Resize(kLanes);
  b.Resize(kLanes);
  for (size_t i = 0; i < kLanes; ++i) {
    a.SeedLane(i, 100 + i);
    b.SeedLane(i, 100 + i);
  }
  a.ctr[5] = 1;
  b.ctr[5] = 1;
  std::vector<double> out_a(kLanes);
  std::vector<double> out_b(kLanes);
  for (int step = 0; step < 7; ++step) {
    GetLaneKernelsScalar().philox_uniform_event_row(
        MakePhiloxLaneView(a), out_a.data(), kLanes);
    avx2_->philox_uniform_event_row(MakePhiloxLaneView(b), out_b.data(),
                                    kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(out_a[i], out_b[i]) << "step=" << step << " lane=" << i;
    }
  }
}

TEST_F(KernelTierParityTest, NoiseRowsBitIdenticalWithInactiveLanes) {
  const size_t kLanes = 64;
  PhiloxLanes a;
  PhiloxLanes b;
  a.Resize(kLanes);
  b.Resize(kLanes);
  for (size_t i = 0; i < kLanes; ++i) {
    a.SeedLane(i, 55 + 3 * i);
    b.SeedLane(i, 55 + 3 * i);
  }
  Rng pattern(4242);
  std::vector<double> fresh_a(kLanes);
  std::vector<double> fresh_b(kLanes);
  for (int step = 0; step < 12; ++step) {
    for (size_t i = 0; i < kLanes; ++i) {
      // Mostly-active rows with occasional zeros: exercises the
      // full-vector paths and the conditional-draw fallback.
      fresh_a[i] = pattern.Bernoulli(0.9) ? 1.0 + pattern.NextDouble()
                                          : 0.0;
      fresh_b[i] = fresh_a[i];
    }
    GetLaneKernelsScalar().philox_noise_row(MakePhiloxLaneView(a),
                                            fresh_a.data(), 0.05, kLanes);
    avx2_->philox_noise_row(MakePhiloxLaneView(b), fresh_b.data(), 0.05,
                            kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(fresh_a[i], fresh_b[i]) << "step=" << step << " lane=" << i;
      EXPECT_EQ(a.ctr[i], b.ctr[i]) << "step=" << step << " lane=" << i;
    }
  }
}

TEST_F(KernelTierParityTest, NoiseRowMatchesScalarPhiloxRng) {
  // The noise kernel against the scalar engine's draw-site expression.
  const size_t kLanes = 8;
  PhiloxLanes soa;
  soa.Resize(kLanes);
  std::vector<PhiloxRng> scalar;
  for (size_t i = 0; i < kLanes; ++i) {
    soa.SeedLane(i, 900 + i);
    scalar.emplace_back(900 + i);
  }
  const double kStddev = 0.02;
  std::vector<double> fresh(kLanes);
  for (int step = 0; step < 40; ++step) {
    for (size_t i = 0; i < kLanes; ++i) {
      fresh[i] = (step + i) % 11 == 0 ? 0.0 : 0.5 + 0.01 * step + i;
    }
    std::vector<double> expected = fresh;
    for (size_t i = 0; i < kLanes; ++i) {
      if (expected[i] > 0) {
        expected[i] *=
            std::max(0.0, 1.0 + kStddev * scalar[i].NormalUnit());
      }
    }
    GetLaneKernels().philox_noise_row(MakePhiloxLaneView(soa),
                                      fresh.data(), kStddev, kLanes);
    for (size_t i = 0; i < kLanes; ++i) {
      EXPECT_EQ(fresh[i], expected[i]) << "step=" << step << " lane=" << i;
    }
  }
}

}  // namespace
}  // namespace autoglobe
