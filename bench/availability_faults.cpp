// Availability scenario (robustness extension of the paper's
// self-healing claim, §2): run the FM landscape under the full crash
// model — instance crashes, whole-server failures with repair,
// transient action-failure windows, monitor dropouts — with heartbeat
// failure detection and the recovery pipeline enabled, and score the
// result as MTTD / MTTR / unavailability / recovery-objective
// satisfaction.
//
// Emits BENCH_faults.json. Every per-seed and aggregate number in it
// is a simulation result (wall_seconds deliberately 0), so those
// records are bit-identical across machines and parallelism levels;
// the one perf record (availability/fm/perf) carries the wall-clock
// throughput and the steady-state allocation audit for this suite.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "autoglobe/availability.h"
#include "bench_report.h"
#include "common/logging.h"
#include "common/strings.h"

// Global allocation counter, same pattern as micro_sim/batch_engine:
// lets the perf record report allocations per simulated tick across
// the whole fault suite (fault runs rebuild topology, so unlike the
// batched static path this is small-but-nonzero by design).
static std::atomic<uint64_t> g_heap_allocs{0};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

using namespace autoglobe;
using namespace autoglobe::bench;

int main() {
  std::printf("# Availability under fault injection: FM scenario at "
              "100%% users, 24 h, 4 seeds\n");

  AvailabilityOptions options;
  options.scenario = Scenario::kFullMobility;
  options.user_scale = 1.0;
  options.duration = Duration::Hours(24);
  options.seed = 42;
  options.repetitions = 4;
  options.parallelism = 0;  // one worker per hardware thread
  options.reps_per_task = 2;  // batch consecutive reps per worker
  options.fault_spec.instance_crashes_per_hour = 0.5;
  options.fault_spec.server_failures_per_day = 1.0;
  options.fault_spec.server_recovery = Duration::Hours(2);
  options.fault_spec.action_failure_windows_per_day = 2.0;
  options.fault_spec.action_failure_duration = Duration::Minutes(5);
  options.fault_spec.monitor_dropouts_per_day = 1.0;
  options.fault_spec.monitor_dropout_duration = Duration::Minutes(5);

  const uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  WallTimer timer;
  auto result = RunAvailabilityScenario(options);
  double wall_seconds = timer.Seconds();
  const uint64_t suite_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  AG_CHECK_OK(result.status());
  std::printf("%s", RenderAvailabilityResult(*result).c_str());

  const double total_ticks =
      static_cast<double>(options.repetitions) *
      static_cast<double>(options.duration.seconds() / 60);
  const double seeds_per_sec =
      static_cast<double>(options.repetitions) / wall_seconds;
  std::printf("# wall-clock: %.2f s for %d reps (%.2f seeds/s, "
              "%.1f allocs/tick)\n",
              wall_seconds, options.repetitions, seeds_per_sec,
              static_cast<double>(suite_allocs) / total_ticks);

  std::vector<BenchRecord> records;
  for (const AvailabilityRun& run : result->runs) {
    AG_CHECK(run.invariants_ok);
    BenchRecord record;
    record.name = StrFormat("availability/fm/seed%llu",
                            static_cast<unsigned long long>(run.seed));
    record.extra["faults_injected"] =
        static_cast<double>(run.report.faults_injected);
    record.extra["episodes"] = static_cast<double>(run.report.episodes);
    record.extra["detected"] = static_cast<double>(run.report.detected);
    record.extra["recovered"] =
        static_cast<double>(run.report.recovered);
    record.extra["abandoned"] =
        static_cast<double>(run.report.abandoned);
    record.extra["mttd_minutes_mean"] = run.report.mttd_minutes_mean;
    record.extra["mttr_minutes_mean"] = run.report.mttr_minutes_mean;
    record.extra["mttr_minutes_max"] = run.report.mttr_minutes_max;
    record.extra["unavailability_instance_minutes"] =
        run.report.unavailability_instance_minutes;
    record.extra["objective_satisfaction"] =
        run.report.objective_satisfaction;
    record.extra["restarts_attempted"] =
        static_cast<double>(run.recovery.restarts_attempted);
    record.extra["relocations"] =
        static_cast<double>(run.recovery.relocations);
    record.extra["evacuations"] =
        static_cast<double>(run.recovery.evacuations);
    records.push_back(std::move(record));
  }
  const faults::AvailabilityReport& aggregate = result->aggregate;
  BenchRecord total;
  total.name = "availability/fm/aggregate";
  total.extra["faults_injected"] =
      static_cast<double>(aggregate.faults_injected);
  total.extra["episodes"] = static_cast<double>(aggregate.episodes);
  total.extra["recovered"] = static_cast<double>(aggregate.recovered);
  total.extra["abandoned"] = static_cast<double>(aggregate.abandoned);
  total.extra["mttd_minutes_mean"] = aggregate.mttd_minutes_mean;
  total.extra["mttr_minutes_mean"] = aggregate.mttr_minutes_mean;
  total.extra["unavailability_instance_minutes"] =
      aggregate.unavailability_instance_minutes;
  total.extra["objective_satisfaction"] =
      aggregate.objective_satisfaction;
  records.push_back(std::move(total));

  BenchRecord perf;
  perf.name = "availability/fm/perf";
  perf.wall_seconds = wall_seconds;
  perf.items_per_second = seeds_per_sec;
  perf.extra["seeds_per_sec"] = seeds_per_sec;
  perf.extra["reps"] = static_cast<double>(options.repetitions);
  perf.extra["reps_per_task"] =
      static_cast<double>(options.reps_per_task);
  perf.extra["allocs_per_tick"] =
      static_cast<double>(suite_allocs) / total_ticks;
  records.push_back(std::move(perf));

  WriteBenchJson("BENCH_faults.json", records);
  return 0;
}
