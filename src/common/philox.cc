#include "common/philox.h"

#include <cmath>

#include "common/fastmath.h"
#include "common/lane_kernels.h"

namespace autoglobe {
namespace philox_detail {

uint64_t KeyFromSeed(uint64_t seed) {
  // One SplitMix64 step (same mixer Rng's seeder uses) so nearby
  // seeds land on unrelated keys.
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void BlockNormals(uint64_t block, uint32_t key0, uint32_t key1,
                  double* rsin, double* rcos) {
  constexpr double kTwoPi = 6.28318530717958647692528676655900577;
  Block b = Philox4x32_10(static_cast<uint32_t>(block),
                          static_cast<uint32_t>(block >> 32), 0, 0,
                          key0, key1);
  double u1 = static_cast<double>(Half0(b) >> 11) * 0x1.0p-53;
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double u2 = static_cast<double>(Half1(b) >> 11) * 0x1.0p-53;
  double r = std::sqrt(-2.0 * FastLog(u1));
  double theta = kTwoPi * u2;
  double s;
  double c;
  FastSinCos(theta, &s, &c);
  *rsin = r * s;
  *rcos = r * c;
}

}  // namespace philox_detail

void PhiloxRng::Reseed(uint64_t seed) {
  uint64_t key = philox_detail::KeyFromSeed(seed);
  key0_ = static_cast<uint32_t>(key);
  key1_ = static_cast<uint32_t>(key >> 32);
  counter_ = 0;
  cache_valid_ = false;
}

uint64_t PhiloxRng::Uniform64() {
  uint64_t n = counter_++;
  uint64_t block = n >> 1;
  philox_detail::Block b = philox_detail::Philox4x32_10(
      static_cast<uint32_t>(block), static_cast<uint32_t>(block >> 32),
      0, 0, key0_, key1_);
  return (n & 1) ? philox_detail::Half1(b) : philox_detail::Half0(b);
}

double PhiloxRng::NormalUnit() {
  uint64_t n = counter_++;
  uint64_t block = n >> 1;
  if (n & 1) {
    if (cache_valid_ && cache_block_ == block) {
      cache_valid_ = false;
      return cache_;
    }
    double rsin;
    double rcos;
    philox_detail::BlockNormals(block, key0_, key1_, &rsin, &rcos);
    return rsin;
  }
  double rsin;
  double rcos;
  philox_detail::BlockNormals(block, key0_, key1_, &rsin, &rcos);
  cache_ = rsin;
  cache_block_ = block;
  cache_valid_ = true;
  return rcos;
}

int64_t PhiloxRng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (range == 0) return static_cast<int64_t>(Uniform64());
  // Lemire's nearly-divisionless method: accept unless the draw lands
  // in the short first window, in which case reject-and-redraw makes
  // every value exactly equally likely.
  uint64_t x = Uniform64();
  __extension__ typedef unsigned __int128 u128;
  u128 m = static_cast<u128>(x) * range;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < range) {
    uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = Uniform64();
      m = static_cast<u128>(x) * range;
      low = static_cast<uint64_t>(m);
    }
  }
  return lo + static_cast<int64_t>(static_cast<uint64_t>(m >> 64));
}

void PhiloxLanes::Resize(std::size_t lanes) {
  key0.assign(lanes, 0);
  key1.assign(lanes, 0);
  ctr.assign(lanes, 0);
  cache_block.assign(lanes, 0);
  cache.assign(lanes, 0.0);
  cache_valid.assign(lanes, 0);
}

void PhiloxLanes::SeedLane(std::size_t lane, uint64_t seed) {
  uint64_t key = philox_detail::KeyFromSeed(seed);
  key0[lane] = static_cast<uint32_t>(key);
  key1[lane] = static_cast<uint32_t>(key >> 32);
  ctr[lane] = 0;
  cache_block[lane] = 0;
  cache[lane] = 0.0;
  cache_valid[lane] = 0;
}

void FillUniform(PhiloxLanes& lanes, std::size_t draws, double* out) {
  const LaneKernels& kernels = GetLaneKernels();
  const std::size_t n = lanes.size();
  for (std::size_t d = 0; d < draws; ++d) {
    kernels.philox_uniform_event_row(MakePhiloxLaneView(lanes),
                                     out + d * n, n);
  }
}

void FillNormal(PhiloxLanes& lanes, std::size_t draws, double* out) {
  const LaneKernels& kernels = GetLaneKernels();
  const std::size_t n = lanes.size();
  for (std::size_t d = 0; d < draws; ++d) {
    kernels.philox_normal_event_row(MakePhiloxLaneView(lanes),
                                    out + d * n, n);
  }
}

}  // namespace autoglobe
