#include "workload/demand.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe::workload {

using infra::InstanceId;
using infra::InstanceRef;
using infra::LandscapeIndex;

DemandEngine::DemandEngine(infra::Cluster* cluster, Rng rng)
    : cluster_(cluster), rng_(rng) {
  AG_CHECK(cluster_ != nullptr);
}

int32_t DemandEngine::SpecSlotOf(std::string_view service) const {
  auto it = std::lower_bound(
      specs_.begin(), specs_.end(), service,
      [](const ServiceDemandSpec& spec, std::string_view name) {
        return spec.service < name;
      });
  if (it == specs_.end() || it->service != service) return -1;
  return static_cast<int32_t>(it - specs_.begin());
}

int32_t DemandEngine::ServerSlotOf(std::string_view server) const {
  auto it = std::lower_bound(server_names_.begin(), server_names_.end(),
                             server);
  if (it == server_names_.end() || *it != server) return -1;
  return static_cast<int32_t>(it - server_names_.begin());
}

Status DemandEngine::AddService(ServiceDemandSpec spec) {
  AG_RETURN_IF_ERROR(cluster_->FindService(spec.service).status());
  if (SpecSlotOf(spec.service) >= 0) {
    return Status::AlreadyExists(StrFormat(
        "demand spec for \"%s\" already registered", spec.service.c_str()));
  }
  if (spec.base_users < 0 || spec.request_cost < 0 ||
      spec.base_load_wu < 0 || spec.batch_load_wu < 0 ||
      spec.noise_stddev < 0) {
    return Status::InvalidArgument(StrFormat(
        "demand spec for \"%s\" has negative parameters",
        spec.service.c_str()));
  }
  // Keep specs sorted by service name: a slot is the service's rank,
  // and iterating slots reproduces the old name-keyed map order.
  auto it = std::lower_bound(
      specs_.begin(), specs_.end(), spec.service,
      [](const ServiceDemandSpec& existing, const std::string& name) {
        return existing.service < name;
      });
  size_t slot = static_cast<size_t>(it - specs_.begin());
  specs_.insert(it, std::move(spec));
  queue_wu_.insert(queue_wu_.begin() + static_cast<ptrdiff_t>(slot), 0.0);
  plane_dirty_ = true;
  return Status::OK();
}

Status DemandEngine::AddSubsystem(SubsystemSpec spec) {
  for (const std::string& app : spec.app_services) {
    if (SpecSlotOf(app) < 0) {
      return Status::NotFound(StrFormat(
          "subsystem \"%s\": unknown app service \"%s\"",
          spec.name.c_str(), app.c_str()));
    }
  }
  if (!spec.central_instance.empty() &&
      SpecSlotOf(spec.central_instance) < 0) {
    return Status::NotFound(StrFormat(
        "subsystem \"%s\": unknown central instance \"%s\"",
        spec.name.c_str(), spec.central_instance.c_str()));
  }
  if (!spec.database.empty() && SpecSlotOf(spec.database) < 0) {
    return Status::NotFound(StrFormat(
        "subsystem \"%s\": unknown database \"%s\"", spec.name.c_str(),
        spec.database.c_str()));
  }
  subsystems_.push_back(std::move(spec));
  plane_dirty_ = true;
  return Status::OK();
}

void DemandEngine::SeedRng(uint64_t seed, RngKind kind) {
  rng_ = Rng(seed);
  philox_.Reseed(seed);
  rng_kind_ = kind;
}

void DemandEngine::ResetRunState(uint64_t seed, RngKind kind) {
  ResetRunState(Rng(seed));
  philox_.Reseed(seed);
  rng_kind_ = kind;
}

void DemandEngine::ResetRunState(Rng rng) {
  rng_ = rng;
  std::fill(users_.begin(), users_.end(), 0.0);
  std::fill(backlog_wu_.begin(), backlog_wu_.end(), 0.0);
  std::fill(demand_wu_.begin(), demand_wu_.end(), 0.0);
  std::fill(served_wu_.begin(), served_wu_.end(), 0.0);
  std::fill(inst_load_.begin(), inst_load_.end(), 0.0);
  std::fill(server_cpu_.begin(), server_cpu_.end(), 0.0);
  std::fill(server_mem_.begin(), server_mem_.end(), 0.0);
  std::fill(queue_wu_.begin(), queue_wu_.end(), 0.0);
  lost_work_wu_ = 0.0;
  overload_minutes_ = 0.0;
}

const LandscapeIndex& DemandEngine::EnsureDataPlane() {
  const LandscapeIndex& index = cluster_->Index();
  if (!plane_dirty_ && plane_epoch_ == cluster_->topology_epoch()) {
    return index;
  }

  // Spec slot <-> cluster service id views.
  spec_service_id_.assign(specs_.size(), infra::kNoDenseId);
  spec_of_service_.assign(index.num_services(), -1);
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    infra::DenseId sid = index.ServiceIdOf(specs_[slot].service);
    spec_service_id_[slot] = sid;
    if (sid >= 0) {
      spec_of_service_[static_cast<size_t>(sid)] =
          static_cast<int32_t>(slot);
    }
  }

  // Lower subsystem propagation to flat spec-slot edges.
  edges_.clear();
  edges_.reserve(subsystems_.size());
  for (const SubsystemSpec& subsystem : subsystems_) {
    SubsystemEdges edge;
    edge.app_specs.reserve(subsystem.app_services.size());
    for (const std::string& app : subsystem.app_services) {
      edge.app_specs.push_back(SpecSlotOf(app));
    }
    if (!subsystem.central_instance.empty()) {
      edge.ci_spec = SpecSlotOf(subsystem.central_instance);
    }
    if (!subsystem.database.empty()) {
      edge.db_spec = SpecSlotOf(subsystem.database);
    }
    edge.ci_factor = subsystem.ci_factor;
    edge.db_factor = subsystem.db_factor;
    edges_.push_back(std::move(edge));
  }

  // Per-instance SoA state, indexed by raw InstanceId. Growth keeps
  // the existing values; ids are never reused, so no remap is needed.
  size_t bound = static_cast<size_t>(index.instance_id_bound());
  if (users_.size() < bound) {
    users_.resize(bound, 0.0);
    backlog_wu_.resize(bound, 0.0);
    demand_wu_.resize(bound, 0.0);
    served_wu_.resize(bound, 0.0);
    inst_load_.resize(bound, 0.0);
    tracked_.resize(bound, 0);
  }
  // Untrack removed instances, zeroing their state — their users are
  // gone, and the per-service target reconciliation in SyncUsers
  // re-adds them elsewhere (the old engine erased the map entries).
  std::vector<uint8_t> live(users_.size(), 0);
  for (const InstanceRef& ref : index.Instances()) {
    live[static_cast<size_t>(ref.id)] = 1;
  }
  for (size_t id = 0; id < users_.size(); ++id) {
    if (tracked_[id] && !live[id]) {
      users_[id] = 0.0;
      backlog_wu_[id] = 0.0;
      demand_wu_[id] = 0.0;
      served_wu_[id] = 0.0;
      inst_load_[id] = 0.0;
    }
    tracked_[id] = live[id];
  }

  // Per-server load arrays: carry last-tick values over to the
  // (possibly shifted) dense layout by name.
  {
    std::vector<std::string> names;
    names.reserve(index.num_servers());
    for (size_t s = 0; s < index.num_servers(); ++s) {
      names.push_back(index.ServerName(static_cast<infra::DenseId>(s)));
    }
    std::vector<double> cpu(names.size(), 0.0);
    std::vector<double> mem(names.size(), 0.0);
    for (size_t s = 0; s < names.size(); ++s) {
      int32_t old_slot = ServerSlotOf(names[s]);
      if (old_slot >= 0) {
        cpu[s] = server_cpu_[static_cast<size_t>(old_slot)];
        mem[s] = server_mem_[static_cast<size_t>(old_slot)];
      }
    }
    server_names_ = std::move(names);
    server_cpu_ = std::move(cpu);
    server_mem_ = std::move(mem);
  }

  // Pre-size every per-tick temporary so Tick stays off the heap.
  scratch_.app_work.assign(specs_.size(), 0.0);
  scratch_.shared_unserved.assign(specs_.size(), 0.0);
  scratch_.serve.assign(users_.size(), 0.0);
  scratch_.unsatisfied.reserve(index.max_instances_per_server());
  scratch_.still_unsatisfied.reserve(index.max_instances_per_server());

  plane_epoch_ = cluster_->topology_epoch();
  plane_dirty_ = false;
  return index;
}

InstanceId DemandEngine::LeastLoadedInstance(
    const LandscapeIndex& index,
    std::span<const InstanceRef> instances) const {
  InstanceId best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const InstanceRef& ref : instances) {
    if (ref.instance->state != infra::InstanceState::kRunning) continue;
    // Score by the host's CPU load from the previous tick; break ties
    // toward emptier instances relative to host capacity.
    double host_load = ServerCpuLoadById(ref.server);
    double users = users_[static_cast<size_t>(ref.id)];
    double capacity = index.ServerPerformance(ref.server);
    double score = host_load + 0.001 * users / (capacity *
                                                kUsersPerPerformanceUnit);
    if (score < best_score) {
      best_score = score;
      best = ref.id;
    }
  }
  return best;
}

void DemandEngine::SyncUsers(const LandscapeIndex& index) {
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    const ServiceDemandSpec& spec = specs_[slot];
    infra::DenseId sid = spec_service_id_[slot];
    if (sid < 0) continue;
    std::span<const InstanceRef> instances = index.InstancesOfService(sid);
    if (instances.empty()) continue;
    if (spec.base_users <= 0) continue;  // batch / derived services

    double target_total = spec.base_users * user_scale_;

    if (distribution_ == UserDistribution::kDynamicRedistribution) {
      // FM: users are redistributed across all serving instances
      // whenever anything changes. The paper says "equally"; we weigh
      // the shares by host capacity so that equal *load* results on
      // the heterogeneous blades (an equal head-count split would
      // systematically overload the PI-1 hosts).
      bool any_usable = false;
      double weight_total = 0.0;
      for (const InstanceRef& ref : instances) {
        if (ref.instance->state != infra::InstanceState::kFailed) {
          any_usable = true;
          weight_total += index.ServerPerformance(ref.server);
        }
      }
      if (!any_usable || weight_total <= 0) continue;
      for (const InstanceRef& ref : instances) {
        users_[static_cast<size_t>(ref.id)] = 0.0;
      }
      for (const InstanceRef& ref : instances) {
        if (ref.instance->state == infra::InstanceState::kFailed) continue;
        users_[static_cast<size_t>(ref.id)] =
            target_total * index.ServerPerformance(ref.server) /
            weight_total;
      }
      continue;
    }

    // Sticky sessions: users stay where they are. Users of failed
    // instances re-login at the least-loaded instance. Scale changes
    // and users lost with removed instances reconcile against the
    // target total: shortfalls log in at the least-loaded instance,
    // excess logs off proportionally.
    double current_total = 0.0;
    for (const InstanceRef& ref : instances) {
      size_t id = static_cast<size_t>(ref.id);
      if (ref.instance->state == infra::InstanceState::kFailed &&
          users_[id] > 0) {
        InstanceId refuge = LeastLoadedInstance(index, instances);
        if (refuge != 0 && refuge != ref.id) {
          users_[static_cast<size_t>(refuge)] += users_[id];
          users_[id] = 0.0;
        }
      }
      current_total += users_[id];
    }
    double diff = target_total - current_total;
    if (diff > 1e-9) {
      // Fresh logins spread across the least-loaded instances; in the
      // aggregate that matches a capacity-proportional arrival split.
      double weight_total = 0.0;
      for (const InstanceRef& ref : instances) {
        if (ref.instance->state == infra::InstanceState::kFailed) continue;
        weight_total += index.ServerPerformance(ref.server);
      }
      if (weight_total > 0) {
        for (const InstanceRef& ref : instances) {
          if (ref.instance->state == infra::InstanceState::kFailed) {
            continue;
          }
          users_[static_cast<size_t>(ref.id)] +=
              diff * index.ServerPerformance(ref.server) / weight_total;
        }
      } else {
        users_[static_cast<size_t>(instances.front().id)] += diff;
      }
    } else if (diff < -1e-9 && current_total > 0) {
      double keep = target_total / current_total;
      for (const InstanceRef& ref : instances) {
        users_[static_cast<size_t>(ref.id)] *= keep;
      }
    }
  }
}

void DemandEngine::ApplyFluctuation(const LandscapeIndex& index,
                                    double dt_minutes) {
  if (distribution_ != UserDistribution::kStickySessions) return;
  if (fluctuation_per_minute_ <= 0) return;
  double fraction = std::min(1.0, fluctuation_per_minute_ * dt_minutes);
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    const ServiceDemandSpec& spec = specs_[slot];
    if (spec.base_users <= 0) continue;
    infra::DenseId sid = spec_service_id_[slot];
    if (sid < 0) continue;
    std::span<const InstanceRef> instances = index.InstancesOfService(sid);
    if (instances.size() < 2) continue;
    InstanceId refuge = LeastLoadedInstance(index, instances);
    if (refuge == 0) continue;
    double moved = 0.0;
    for (const InstanceRef& ref : instances) {
      if (ref.id == refuge) continue;
      size_t id = static_cast<size_t>(ref.id);
      double leave = users_[id] * fraction;
      users_[id] -= leave;
      moved += leave;
    }
    users_[static_cast<size_t>(refuge)] += moved;
  }
}

void DemandEngine::Tick(SimTime now, Duration dt) {
  double dt_minutes = std::max(1e-9, dt.seconds() / 60.0);
  const LandscapeIndex& index = EnsureDataPlane();
  SyncUsers(index);
  ApplyFluctuation(index, dt_minutes);

  // --- Fresh demand per instance (wu per minute) -----------------------
  std::fill(scratch_.app_work.begin(), scratch_.app_work.end(), 0.0);
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    const ServiceDemandSpec& spec = specs_[slot];
    infra::DenseId sid = spec_service_id_[slot];
    if (sid < 0) continue;
    std::span<const InstanceRef> instances = index.InstancesOfService(sid);
    if (instances.empty()) continue;
    double activity = spec.pattern.Activity(now);
    double usable_capacity = 0.0;
    for (const InstanceRef& ref : instances) {
      if (ref.instance->state != infra::InstanceState::kFailed) {
        usable_capacity += index.ServerPerformance(ref.server);
      }
    }
    double queue = queue_wu_[slot];
    double service_work = 0.0;
    for (const InstanceRef& ref : instances) {
      size_t id = static_cast<size_t>(ref.id);
      double fresh = 0.0;
      if (spec.batch) {
        // Batch jobs are pulled from a shared queue, so instances on
        // faster hosts process proportionally more of them.
        if (usable_capacity > 0 &&
            ref.instance->state != infra::InstanceState::kFailed) {
          fresh = spec.batch_load_wu * activity * user_scale_ *
                  index.ServerPerformance(ref.server) / usable_capacity;
        }
      } else if (spec.base_users > 0) {
        fresh = users_[id] * activity * spec.request_cost /
                kUsersPerPerformanceUnit;
      }
      if (fresh > 0 && spec.noise_stddev > 0) {
        if (rng_kind_ == RngKind::kPhilox) {
          // Same expression as the batched philox_noise_row kernel —
          // scalar and batched philox runs are bit-identical.
          fresh *= std::max(
              0.0, 1.0 + spec.noise_stddev * philox_.NormalUnit());
        } else {
          fresh *= std::max(0.0, rng_.Normal(1.0, spec.noise_stddev));
        }
      }
      double queued = backlog_wu_[id];
      if (spec.shared_queue && usable_capacity > 0 &&
          ref.instance->state != infra::InstanceState::kFailed &&
          queue > 0) {
        queued = queue * index.ServerPerformance(ref.server) /
                 usable_capacity;
      }
      demand_wu_[id] = spec.base_load_wu + fresh + queued;
      service_work += fresh;
    }
    scratch_.app_work[slot] = service_work;
  }

  // --- Propagate through central instances and databases ----------------
  for (const SubsystemEdges& edge : edges_) {
    double app_work = 0.0;
    for (int32_t app_slot : edge.app_specs) {
      if (app_slot >= 0) app_work += scratch_.app_work[app_slot];
    }
    auto distribute = [&](int32_t spec_slot, double work) {
      if (spec_slot < 0 || work <= 0) return;
      infra::DenseId sid = spec_service_id_[static_cast<size_t>(spec_slot)];
      if (sid < 0) {
        lost_work_wu_ += work * dt_minutes;
        return;
      }
      std::span<const InstanceRef> instances =
          index.InstancesOfService(sid);
      double usable_capacity = 0.0;
      for (const InstanceRef& ref : instances) {
        if (ref.instance->state != infra::InstanceState::kFailed) {
          usable_capacity += index.ServerPerformance(ref.server);
        }
      }
      if (usable_capacity <= 0) {
        lost_work_wu_ += work * dt_minutes;  // nobody to serve the tier
        return;
      }
      for (const InstanceRef& ref : instances) {
        if (ref.instance->state == infra::InstanceState::kFailed) continue;
        demand_wu_[static_cast<size_t>(ref.id)] +=
            work * index.ServerPerformance(ref.server) / usable_capacity;
      }
    };
    distribute(edge.ci_spec, edge.ci_factor * app_work);
    distribute(edge.db_spec, edge.db_factor * app_work);
  }

  // --- Proportional-share CPU model per server --------------------------
  std::fill(scratch_.shared_unserved.begin(),
            scratch_.shared_unserved.end(), 0.0);
  for (size_t s = 0; s < index.num_servers(); ++s) {
    infra::DenseId server_id = static_cast<infra::DenseId>(s);
    std::span<const InstanceRef> instances =
        index.InstancesOnServer(server_id);
    double capacity = index.ServerPerformance(server_id);
    double total_demand = 0.0;
    for (const InstanceRef& ref : instances) {
      scratch_.serve[static_cast<size_t>(ref.id)] = 0.0;
      // Starting instances consume their base load only; their fresh
      // work waits (and is re-queued as backlog below).
      if (ref.instance->state == infra::InstanceState::kRunning) {
        total_demand += demand_wu_[static_cast<size_t>(ref.id)];
      }
    }

    double cpu = capacity > 0 ? total_demand / capacity : 1.0;
    double cpu_load = std::min(1.0, cpu);
    server_cpu_[s] = cpu_load;
    server_mem_[s] =
        std::min(1.0, index.ServerUsedMemoryGb(server_id) /
                          index.ServerMemoryGb(server_id));

    // Serve demand: everything if it fits, otherwise a priority-
    // weighted proportional share (water-filling, 3 rounds).
    if (total_demand <= capacity) {
      for (const InstanceRef& ref : instances) {
        if (ref.instance->state == infra::InstanceState::kRunning) {
          scratch_.serve[static_cast<size_t>(ref.id)] =
              demand_wu_[static_cast<size_t>(ref.id)];
        }
      }
    } else {
      double remaining = capacity;
      scratch_.unsatisfied.clear();
      for (size_t pos = 0; pos < instances.size(); ++pos) {
        if (instances[pos].instance->state ==
            infra::InstanceState::kRunning) {
          scratch_.unsatisfied.push_back(static_cast<uint32_t>(pos));
        }
      }
      for (int round = 0; round < 3 && remaining > 1e-12 &&
                          !scratch_.unsatisfied.empty();
           ++round) {
        double total_weight = 0.0;
        for (uint32_t pos : scratch_.unsatisfied) {
          const InstanceRef& ref = instances[pos];
          total_weight +=
              index.ServicePriority(ref.service) *
              std::max(1e-9, demand_wu_[static_cast<size_t>(ref.id)]);
        }
        if (total_weight <= 0) break;
        scratch_.still_unsatisfied.clear();
        double granted_total = 0.0;
        for (uint32_t pos : scratch_.unsatisfied) {
          const InstanceRef& ref = instances[pos];
          size_t id = static_cast<size_t>(ref.id);
          double weight = index.ServicePriority(ref.service) *
                          std::max(1e-9, demand_wu_[id]);
          double grant = remaining * weight / total_weight;
          double need = demand_wu_[id] - scratch_.serve[id];
          double take = std::min(grant, need);
          scratch_.serve[id] += take;
          granted_total += take;
          if (scratch_.serve[id] + 1e-12 < demand_wu_[id]) {
            scratch_.still_unsatisfied.push_back(pos);
          }
        }
        remaining -= granted_total;
        scratch_.unsatisfied.swap(scratch_.still_unsatisfied);
      }
    }

    // Update per-instance load and backlog.
    for (const InstanceRef& ref : instances) {
      size_t id = static_cast<size_t>(ref.id);
      inst_load_[id] =
          capacity > 0 ? std::min(1.0, demand_wu_[id] / capacity) : 1.0;
      double got = scratch_.serve[id];
      served_wu_[id] = got;
      double unserved = std::max(0.0, demand_wu_[id] - got);
      // Base (idle) load does not queue; only request work does.
      int32_t slot =
          ref.service >= 0
              ? spec_of_service_[static_cast<size_t>(ref.service)]
              : -1;
      if (slot >= 0) {
        unserved = std::max(0.0, unserved - specs_[slot].base_load_wu);
      }
      // demand_wu already included the queued work, so the unserved
      // remainder *is* the new queue content (converted rate -> work).
      double new_backlog = unserved * dt_minutes;
      backlog_wu_[id] = 0.0;
      if (slot >= 0 && specs_[slot].shared_queue) {
        // Collected into the shared service queue below.
        scratch_.shared_unserved[static_cast<size_t>(slot)] += new_backlog;
        continue;
      }
      double cap = slot >= 0 ? specs_[slot].backlog_cap_wu : 2.0;
      if (new_backlog > cap) {
        lost_work_wu_ += new_backlog - cap;
        new_backlog = cap;
      }
      backlog_wu_[id] = new_backlog;
    }

    if (cpu_load > overload_threshold_) overload_minutes_ += dt_minutes;
  }

  // Commit shared queues (cap per service; overflow is lost work).
  for (size_t slot = 0; slot < specs_.size(); ++slot) {
    double queued = scratch_.shared_unserved[slot];
    double cap = specs_[slot].backlog_cap_wu;
    if (queued > cap) {
      lost_work_wu_ += queued - cap;
      queued = cap;
    }
    queue_wu_[slot] = queued > 0 ? queued : 0.0;
  }
}

double DemandEngine::ServerCpuLoad(std::string_view server) const {
  int32_t slot = ServerSlotOf(server);
  return slot < 0 ? 0.0 : server_cpu_[static_cast<size_t>(slot)];
}

double DemandEngine::ServerMemLoad(std::string_view server) const {
  int32_t slot = ServerSlotOf(server);
  return slot < 0 ? 0.0 : server_mem_[static_cast<size_t>(slot)];
}

double DemandEngine::InstanceLoad(infra::InstanceId id) const {
  size_t i = static_cast<size_t>(id);
  return i < tracked_.size() && tracked_[i] ? inst_load_[i] : 0.0;
}

double DemandEngine::ServiceSatisfactionById(infra::DenseId service) const {
  const LandscapeIndex& index = cluster_->Index();
  if (service < 0 || static_cast<size_t>(service) >= index.num_services()) {
    return 1.0;  // nothing requested
  }
  double requested = 0.0;
  double served = 0.0;
  for (const InstanceRef& ref : index.InstancesOfService(service)) {
    size_t id = static_cast<size_t>(ref.id);
    if (id >= tracked_.size() || !tracked_[id]) continue;
    requested += demand_wu_[id];
    served += std::min(served_wu_[id], demand_wu_[id]);
  }
  if (requested <= 1e-12) return 1.0;
  return std::clamp(served / requested, 0.0, 1.0);
}

double DemandEngine::ServiceSatisfaction(std::string_view service) const {
  return ServiceSatisfactionById(cluster_->Index().ServiceIdOf(service));
}

double DemandEngine::ServiceLoadById(infra::DenseId service) const {
  const LandscapeIndex& index = cluster_->Index();
  if (service < 0 || static_cast<size_t>(service) >= index.num_services()) {
    return 0.0;
  }
  std::span<const InstanceRef> instances =
      index.InstancesOfService(service);
  if (instances.empty()) return 0.0;
  double total = 0.0;
  int count = 0;
  for (const InstanceRef& ref : instances) {
    size_t id = static_cast<size_t>(ref.id);
    if (id >= tracked_.size() || !tracked_[id]) continue;
    total += inst_load_[id];
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

double DemandEngine::ServiceLoad(std::string_view service) const {
  return ServiceLoadById(cluster_->Index().ServiceIdOf(service));
}

double DemandEngine::InstanceUsers(infra::InstanceId id) const {
  size_t i = static_cast<size_t>(id);
  return i < tracked_.size() && tracked_[i] ? users_[i] : 0.0;
}

double DemandEngine::ServiceUsers(std::string_view service) const {
  const LandscapeIndex& index = cluster_->Index();
  infra::DenseId sid = index.ServiceIdOf(service);
  if (sid < 0) return 0.0;
  double total = 0.0;
  for (const InstanceRef& ref : index.InstancesOfService(sid)) {
    total += InstanceUsers(ref.id);
  }
  return total;
}

double DemandEngine::TotalBacklog() const {
  double total = 0.0;
  for (size_t id = 0; id < tracked_.size(); ++id) {
    if (tracked_[id]) total += backlog_wu_[id];
  }
  for (double queued : queue_wu_) total += queued;
  return total;
}

namespace {

void WriteDoubles(ByteWriter* w, const std::vector<double>& values) {
  w->U64(values.size());
  for (double v : values) w->F64(v);
}

Status ReadDoubles(ByteReader* r, std::vector<double>* values) {
  uint64_t count;
  AG_ASSIGN_OR_RETURN(count, r->U64());
  values->assign(count, 0.0);
  for (uint64_t i = 0; i < count; ++i) {
    AG_ASSIGN_OR_RETURN((*values)[i], r->F64());
  }
  return Status::OK();
}

}  // namespace

void DemandEngine::SaveState(ByteWriter* w) const {
  Rng::State rng = rng_.SaveState();
  for (uint64_t word : rng.words) w->U64(word);
  w->U8(rng.have_cached_normal ? 1 : 0);
  w->F64(rng.cached_normal);
  PhiloxRng::State philox = philox_.SaveState();
  w->U32(philox.key0);
  w->U32(philox.key1);
  w->U64(philox.counter);
  w->U64(philox.cache_block);
  w->F64(philox.cache);
  w->U8(philox.cache_valid ? 1 : 0);
  w->U8(static_cast<uint8_t>(rng_kind_));

  WriteDoubles(w, users_);
  WriteDoubles(w, backlog_wu_);
  WriteDoubles(w, demand_wu_);
  WriteDoubles(w, served_wu_);
  WriteDoubles(w, inst_load_);
  w->U64(tracked_.size());
  w->Raw(tracked_.data(), tracked_.size());

  w->U64(server_names_.size());
  for (const std::string& name : server_names_) w->Str(name);
  WriteDoubles(w, server_cpu_);
  WriteDoubles(w, server_mem_);
  WriteDoubles(w, queue_wu_);
  w->F64(lost_work_wu_);
  w->F64(overload_minutes_);
}

Status DemandEngine::RestoreState(ByteReader* r) {
  Rng::State rng;
  for (uint64_t& word : rng.words) {
    AG_ASSIGN_OR_RETURN(word, r->U64());
  }
  AG_ASSIGN_OR_RETURN(uint8_t have_normal, r->U8());
  rng.have_cached_normal = have_normal != 0;
  AG_ASSIGN_OR_RETURN(rng.cached_normal, r->F64());
  rng_.RestoreState(rng);
  PhiloxRng::State philox;
  AG_ASSIGN_OR_RETURN(philox.key0, r->U32());
  AG_ASSIGN_OR_RETURN(philox.key1, r->U32());
  AG_ASSIGN_OR_RETURN(philox.counter, r->U64());
  AG_ASSIGN_OR_RETURN(philox.cache_block, r->U64());
  AG_ASSIGN_OR_RETURN(philox.cache, r->F64());
  AG_ASSIGN_OR_RETURN(uint8_t cache_valid, r->U8());
  philox.cache_valid = cache_valid != 0;
  philox_.RestoreState(philox);
  AG_ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  rng_kind_ = static_cast<RngKind>(kind);

  AG_RETURN_IF_ERROR(ReadDoubles(r, &users_));
  AG_RETURN_IF_ERROR(ReadDoubles(r, &backlog_wu_));
  AG_RETURN_IF_ERROR(ReadDoubles(r, &demand_wu_));
  AG_RETURN_IF_ERROR(ReadDoubles(r, &served_wu_));
  AG_RETURN_IF_ERROR(ReadDoubles(r, &inst_load_));
  AG_ASSIGN_OR_RETURN(uint64_t tracked_count, r->U64());
  tracked_.assign(tracked_count, 0);
  AG_RETURN_IF_ERROR(r->Raw(tracked_.data(), tracked_count));

  AG_ASSIGN_OR_RETURN(uint64_t name_count, r->U64());
  server_names_.clear();
  server_names_.reserve(name_count);
  for (uint64_t i = 0; i < name_count; ++i) {
    AG_ASSIGN_OR_RETURN(std::string name, r->Str());
    server_names_.push_back(std::move(name));
  }
  AG_RETURN_IF_ERROR(ReadDoubles(r, &server_cpu_));
  AG_RETURN_IF_ERROR(ReadDoubles(r, &server_mem_));
  AG_RETURN_IF_ERROR(ReadDoubles(r, &queue_wu_));
  AG_ASSIGN_OR_RETURN(lost_work_wu_, r->F64());
  AG_ASSIGN_OR_RETURN(overload_minutes_, r->F64());

  // The dense plane re-syncs against the restored cluster on the next
  // Tick; the sync carries per-instance state by id and per-server
  // state by name, so forcing it is value-preserving.
  plane_dirty_ = true;
  return Status::OK();
}

}  // namespace autoglobe::workload
