#include "autoglobe/batch_runner.h"

#include <gtest/gtest.h>

#include <vector>

#include "autoglobe/capacity.h"
#include "autoglobe/runner.h"

namespace autoglobe {
namespace {

/// The whole point of the batch path is that it is NOT an
/// approximation: every comparison in this file is exact (EXPECT_EQ on
/// doubles), against a real SimulationRunner ticking the full stack.
void ExpectSameMetrics(const RunMetrics& batch, const RunMetrics& scalar,
                       const char* what) {
  EXPECT_EQ(batch.overload_server_minutes, scalar.overload_server_minutes)
      << what;
  EXPECT_EQ(batch.max_overload_streak_minutes,
            scalar.max_overload_streak_minutes)
      << what;
  EXPECT_EQ(batch.overload_fraction, scalar.overload_fraction) << what;
  EXPECT_EQ(batch.lost_work_wu, scalar.lost_work_wu) << what;
  EXPECT_EQ(batch.average_cpu_load, scalar.average_cpu_load) << what;
  EXPECT_EQ(batch.triggers, scalar.triggers) << what;
  EXPECT_EQ(batch.actions_executed, scalar.actions_executed) << what;
  EXPECT_EQ(batch.actions_failed, scalar.actions_failed) << what;
  EXPECT_EQ(batch.alerts, scalar.alerts) << what;
  EXPECT_EQ(batch.failures_injected, scalar.failures_injected) << what;
  EXPECT_EQ(batch.sla_violation_minutes, scalar.sla_violation_minutes)
      << what;
}

RunMetrics ScalarRun(const RunnerConfig& base, uint64_t seed,
                     double user_scale) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  RunnerConfig config = base;
  config.seed = seed;
  config.user_scale = user_scale;
  auto runner = SimulationRunner::Create(landscape, config);
  EXPECT_TRUE(runner.ok()) << runner.status();
  EXPECT_TRUE((*runner)->Run().ok());
  return (*runner)->metrics();
}

RunnerConfig BaseConfig(Duration duration, Duration warmup,
                        workload::UserDistribution distribution) {
  RunnerConfig config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.duration = duration;
  config.metrics_warmup = warmup;
  config.distribution = distribution;
  return config;
}

struct ParityCase {
  workload::UserDistribution distribution;
  Duration warmup;
  const char* name;
};

class BatchRunnerParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(BatchRunnerParityTest, LanesMatchScalarRunsBitForBit) {
  const ParityCase& c = GetParam();
  // 20h crosses the morning ramp and the batch-window peak; the 1.15
  // and 1.40 scales push lanes over the overload threshold so trigger
  // and streak replication is actually exercised.
  RunnerConfig config =
      BaseConfig(Duration::Hours(20), c.warmup, c.distribution);
  std::vector<BatchLane> lanes = {
      {42, 1.0}, {7, 1.15}, {2026, 1.40}, {42, 1.40}};
  auto batch = BatchRunner::Create(MakePaperLandscape(Scenario::kStatic),
                                   config, lanes);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_TRUE((*batch)->Run().ok());
  for (size_t lane = 0; lane < lanes.size(); ++lane) {
    RunMetrics scalar =
        ScalarRun(config, lanes[lane].seed, lanes[lane].user_scale);
    SCOPED_TRACE(::testing::Message() << c.name << " lane " << lane);
    ExpectSameMetrics((*batch)->metrics(lane), scalar, c.name);
    // Sanity that the comparison is not vacuous: the hot lanes must
    // have produced real signal.
    if (lanes[lane].user_scale >= 1.40) {
      EXPECT_GT(scalar.overload_server_minutes, 0.0);
      EXPECT_GT(scalar.triggers, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, BatchRunnerParityTest,
    ::testing::Values(
        ParityCase{workload::UserDistribution::kStickySessions,
                   Duration::Zero(), "sticky"},
        ParityCase{workload::UserDistribution::kDynamicRedistribution,
                   Duration::Zero(), "dynamic"},
        // Warmup on the tick grid (k >= 2: reset fires before that
        // tick) and off the grid both have to match the kernel's event
        // order.
        ParityCase{workload::UserDistribution::kStickySessions,
                   Duration::Hours(6), "sticky-warmup"},
        ParityCase{workload::UserDistribution::kDynamicRedistribution,
                   Duration::Hours(6) + Duration::Seconds(30),
                   "dynamic-warmup-offgrid"}));

TEST(BatchRunnerTest, WarmupOnFirstTickMatchesEventOrder) {
  // warmup == tick is the one spot where the kernel runs the tick
  // BEFORE the reset (the periodic event holds the lower sequence
  // number); a replica that always resets first diverges here.
  RunnerConfig config =
      BaseConfig(Duration::Hours(8), Duration::Minutes(1),
                 workload::UserDistribution::kStickySessions);
  auto batch = BatchRunner::Create(MakePaperLandscape(Scenario::kStatic),
                                   config, {{42, 1.35}});
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_TRUE((*batch)->Run().ok());
  ExpectSameMetrics((*batch)->metrics(0), ScalarRun(config, 42, 1.35),
                    "warmup==tick");
}

TEST(BatchRunnerTest, RerunMatchesFreshBatch) {
  RunnerConfig config =
      BaseConfig(Duration::Hours(12), Duration::Hours(2),
                 workload::UserDistribution::kStickySessions);
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  auto batch = BatchRunner::Create(landscape, config, {{1, 1.0}, {2, 1.2}});
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_TRUE((*batch)->Run().ok());
  // Second batch with different lanes, then back to the first: the
  // rerun must be indistinguishable from a fresh engine.
  ASSERT_TRUE((*batch)->Rerun({{3, 1.3}, {4, 1.1}}).ok());
  ASSERT_TRUE((*batch)->Run().ok());
  ExpectSameMetrics((*batch)->metrics(0), ScalarRun(config, 3, 1.3),
                    "rerun lane 0");
  ExpectSameMetrics((*batch)->metrics(1), ScalarRun(config, 4, 1.1),
                    "rerun lane 1");
  EXPECT_FALSE((*batch)->Rerun({{5, 1.0}}).ok()) << "width must be fixed";
}

TEST(BatchRunnerTest, IneligibleConfigsAreRejected) {
  RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
  EXPECT_FALSE(BatchRunner::CheckEligibility(config).ok())
      << "controller runs must use SimulationRunner";
  config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.instance_failures_per_hour = 0.5;
  EXPECT_FALSE(BatchRunner::CheckEligibility(config).ok());
  config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.use_forecast = true;
  EXPECT_FALSE(BatchRunner::CheckEligibility(config).ok());
  config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.slas.push_back(SlaSpec{});
  EXPECT_FALSE(BatchRunner::CheckEligibility(config).ok());
  EXPECT_TRUE(
      BatchRunner::CheckEligibility(MakeScenarioConfig(Scenario::kStatic, 1.0))
          .ok());
}

TEST(RunnerRerunTest, ResetForRerunMatchesFreshRunner) {
  // Satellite: a reused SimulationRunner (no event-heap / archive /
  // monitor reconstruction) must be bit-identical to a fresh one.
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  RunnerConfig config = MakeScenarioConfig(Scenario::kStatic, 1.1);
  config.duration = Duration::Hours(10);
  config.metrics_warmup = Duration::Hours(1);
  auto reused = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(reused.ok()) << reused.status();
  ASSERT_TRUE((*reused)->Run().ok());
  ASSERT_TRUE((*reused)->ResetForRerun(/*seed=*/99, /*user_scale=*/1.3).ok());
  ASSERT_TRUE((*reused)->Run().ok());

  RunnerConfig fresh_config = config;
  fresh_config.seed = 99;
  fresh_config.user_scale = 1.3;
  auto fresh = SimulationRunner::Create(landscape, fresh_config);
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  ASSERT_TRUE((*fresh)->Run().ok());
  ExpectSameMetrics((*reused)->metrics(), (*fresh)->metrics(), "rerun");
  EXPECT_EQ((*reused)->messages(), (*fresh)->messages());
}

TEST(RunnerRerunTest, FaultPlanRunnersRefuseRerun) {
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  RunnerConfig config = MakeScenarioConfig(Scenario::kStatic, 1.0);
  config.duration = Duration::Hours(2);
  faults::FaultPlan plan;
  config.fault_plan = plan;
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());
  EXPECT_FALSE((*runner)->ResetForRerun(1, 1.0).ok());
}

}  // namespace
}  // namespace autoglobe
