file(REMOVE_RECURSE
  "CMakeFiles/fig05_inference.dir/fig05_inference.cpp.o"
  "CMakeFiles/fig05_inference.dir/fig05_inference.cpp.o.d"
  "fig05_inference"
  "fig05_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
