// Reproduces Figure 15: the FI application servers' load curves in
// the static scenario. "As services are static, the controller cannot
// remedy the overload situations. Thus, the service instances running
// on the less powerful blades become overloaded periodically."

#include "scenario_figures.h"

int main() {
  return autoglobe::bench::RunFiFigure("Figure 15",
                                       autoglobe::Scenario::kStatic);
}
