// Reproduces Figure 17: FI load curves plus controller actions in the
// full mobility scenario. "Again, the controller adds and stops
// instances as required. Additionally, service instances are moved
// from heavy loaded servers to other servers. ... users are
// dynamically redistributed, thus the effects of controller actions
// are observable instantly and overload situation can be averted
// completely."

#include "scenario_figures.h"

int main() {
  return autoglobe::bench::RunFiFigure(
      "Figure 17", autoglobe::Scenario::kFullMobility);
}
