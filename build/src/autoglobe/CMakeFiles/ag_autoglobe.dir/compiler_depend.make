# Empty compiler generated dependencies file for ag_autoglobe.
# This may be replaced when dependencies are built.
