file(REMOVE_RECURSE
  "libag_xml.a"
)
