#ifndef AUTOGLOBE_FUZZY_LINGUISTIC_H_
#define AUTOGLOBE_FUZZY_LINGUISTIC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzy/membership.h"

namespace autoglobe::fuzzy {

/// A linguistic term: a named fuzzy set, e.g. "low" over cpuLoad.
struct LinguisticTerm {
  std::string name;
  MembershipFunction membership;
};

/// One grade produced by fuzzification.
struct TermGrade {
  std::string term;
  double grade = 0.0;
};

/// A linguistic variable (paper §3, Figure 3): a name, a crisp value
/// range, and a set of linguistic terms with membership functions.
class LinguisticVariable {
 public:
  LinguisticVariable() = default;
  LinguisticVariable(std::string name, double min_value, double max_value)
      : name_(std::move(name)), min_(min_value), max_(max_value) {}

  const std::string& name() const { return name_; }
  double min_value() const { return min_; }
  double max_value() const { return max_; }
  const std::vector<LinguisticTerm>& terms() const { return terms_; }

  /// Adds a term; rejects duplicates.
  Status AddTerm(std::string term, MembershipFunction membership);

  bool HasTerm(std::string_view term) const;
  /// Membership function of a term; NotFound if absent.
  Result<const MembershipFunction*> FindTerm(std::string_view term) const;

  /// Clamps a crisp value into the variable's range.
  double Clamp(double crisp) const;

  /// Membership grade of `crisp` (clamped to the range) in `term`.
  Result<double> Grade(std::string_view term, double crisp) const;

  /// Grades of the (clamped) crisp value in all terms — the
  /// fuzzification step of Figure 4.
  std::vector<TermGrade> Fuzzify(double crisp) const;

  /// Builds the standard three-term load variable of Figure 3:
  /// low / medium / high trapezoids over [0, 1].
  static LinguisticVariable StandardLoad(std::string name);

  /// Builds a variable with a single term covering the whole range
  /// with an identity ramp — the shape used for output variables such
  /// as scaleUp IS applicable, whose leftmost-max defuzzification
  /// equals the rule truth value (paper's Figure 5 example).
  static LinguisticVariable RampOutput(std::string name,
                                       std::string term = "applicable");

 private:
  std::string name_;
  double min_ = 0.0;
  double max_ = 1.0;
  std::vector<LinguisticTerm> terms_;
};

}  // namespace autoglobe::fuzzy

#endif  // AUTOGLOBE_FUZZY_LINGUISTIC_H_
