// Runner-level degraded mode: a monitor-dropout storm flips the
// control loop to the urgent-only posture, speculative rebalancing is
// suppressed (and audited), recovery/SLA paths stay live, and the
// posture exits after the hysteresis window of healthy ticks.

#include <gtest/gtest.h>

#include "autoglobe/capacity.h"
#include "autoglobe/landscape.h"
#include "persist/runner_checkpoint.h"

namespace autoglobe {
namespace {

uint64_t CounterValue(const obs::MetricsSnapshot& snapshot,
                      std::string_view name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  ADD_FAILURE() << "counter " << name << " not registered";
  return 0;
}

bool AnyMessageContains(const SimulationRunner& runner,
                        std::string_view needle) {
  for (const std::string& message : runner.messages()) {
    if (message.find(needle) != std::string::npos) return true;
  }
  return false;
}

RunnerConfig StormConfig(uint64_t seed) {
  // Overloaded full-mobility run so load triggers keep firing, plus a
  // simultaneous monitor dropout on three servers at hour 2 — the
  // storm the watchdog is built to notice.
  RunnerConfig config =
      MakeScenarioConfig(Scenario::kFullMobility, 1.3, seed);
  config.duration = Duration::Hours(6);
  config.degraded.enabled = true;
  config.degraded.dropout_storm_threshold = 3;
  config.degraded.exit_healthy_ticks = 5;
  faults::FaultPlan plan;
  for (const char* server : {"Blade1", "Blade2", "Blade3"}) {
    plan.events.push_back({SimTime::Start() + Duration::Hours(2),
                           faults::FaultKind::kMonitorDropout, server,
                           Duration::Minutes(45)});
  }
  config.fault_plan = plan;
  return config;
}

TEST(DegradedModeRunnerTest, DropoutStormFlipsPostureAndRecovers) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  auto runner = SimulationRunner::Create(landscape, StormConfig(42));
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());

  const auto& watchdog = (*runner)->degraded_mode();
  EXPECT_GE(watchdog.entries(), 1);
  EXPECT_GT(watchdog.degraded_ticks(), 0);
  EXPECT_FALSE(watchdog.degraded()) << "storm ended hours before the end";

  obs::MetricsSnapshot snapshot = (*runner)->metrics_registry().Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "degraded_mode_entries"),
            static_cast<uint64_t>(watchdog.entries()));
  EXPECT_EQ(CounterValue(snapshot, "degraded_mode_ticks"),
            static_cast<uint64_t>(watchdog.degraded_ticks()));
  EXPECT_EQ(CounterValue(snapshot, "degraded_mode_suppressed_triggers"),
            static_cast<uint64_t>(watchdog.suppressed_triggers()));

  EXPECT_TRUE(AnyMessageContains(**runner, "ENTER degraded mode"));
  EXPECT_TRUE(AnyMessageContains(**runner, "EXIT degraded mode"));
}

TEST(DegradedModeRunnerTest, SuppressesOnlyNonUrgentTriggers) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = StormConfig(42);
  // Make the posture sticky for the whole dropout window so at least
  // one load trigger lands inside it.
  config.degraded.exit_healthy_ticks = 10;
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());
  const auto& watchdog = (*runner)->degraded_mode();
  EXPECT_GT(watchdog.suppressed_triggers(), 0);
  EXPECT_TRUE(AnyMessageContains(**runner, "SUPPRESS"));
  // Failure detection and recovery ran through the storm: the dropout
  // fires heartbeat-based detections, and those are never suppressed.
  EXPECT_GT((*runner)->metrics().triggers, 0);
}

TEST(DegradedModeRunnerTest, AuditRecordsPostureChanges) {
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = StormConfig(42);
  config.observability.enable_audit = true;
  auto runner = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(runner.ok()) << runner.status();
  ASSERT_TRUE((*runner)->Run().ok());
  ASSERT_NE((*runner)->audit_log(), nullptr);
  int posture_changes = 0;
  for (const obs::DecisionAudit& record :
       (*runner)->audit_log()->records()) {
    if (record.trigger_kind != "degraded-mode") continue;
    ++posture_changes;
    EXPECT_EQ(record.subject, "control-plane");
    EXPECT_NE(record.verdict.find("degraded mode"), std::string::npos);
  }
  EXPECT_GE(posture_changes, 2) << "expected an enter and an exit record";
}

TEST(DegradedModeRunnerTest, PostureSurvivesCheckpointRestore) {
  // Kill the process in the middle of the storm: the restored run must
  // carry the degraded posture, its healthy-streak hysteresis, and the
  // counters — final state byte-identical to the uninterrupted run.
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config = StormConfig(42);
  auto uninterrupted = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();
  ASSERT_TRUE((*uninterrupted)->Run().ok());

  persist::CrashPlan plan;
  plan.crash_at = {SimTime::Start() + Duration::Hours(2) +
                   Duration::Minutes(10)};
  auto survived = persist::RunWithCrashes(landscape, config, plan);
  ASSERT_TRUE(survived.ok()) << survived.status();

  std::vector<std::pair<std::string, std::string>> a, b;
  ASSERT_TRUE((*uninterrupted)->SaveStateSections(&a).ok());
  ASSERT_TRUE((*survived)->SaveStateSections(&b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ((*uninterrupted)->degraded_mode().entries(),
            (*survived)->degraded_mode().entries());
  EXPECT_EQ((*uninterrupted)->degraded_mode().suppressed_triggers(),
            (*survived)->degraded_mode().suppressed_triggers());
}

}  // namespace
}  // namespace autoglobe
