#include "infra/cluster.h"

#include <algorithm>

#include "common/strings.h"

namespace autoglobe::infra {

std::string_view InstanceStateName(InstanceState state) {
  switch (state) {
    case InstanceState::kStarting:
      return "starting";
    case InstanceState::kRunning:
      return "running";
    case InstanceState::kFailed:
      return "failed";
  }
  return "?";
}

Status Cluster::AddServer(ServerSpec spec) {
  AG_RETURN_IF_ERROR(spec.Validate());
  if (servers_.count(spec.name) > 0) {
    return Status::AlreadyExists(
        StrFormat("server \"%s\" already exists", spec.name.c_str()));
  }
  std::string key = spec.name;
  server_instances_.emplace(key, std::vector<InstanceId>{});
  servers_.emplace(std::move(key), std::move(spec));
  BumpTopology();
  return Status::OK();
}

Status Cluster::AddService(ServiceSpec spec) {
  AG_RETURN_IF_ERROR(spec.Validate());
  if (services_.count(spec.name) > 0) {
    return Status::AlreadyExists(
        StrFormat("service \"%s\" already exists", spec.name.c_str()));
  }
  std::string key = spec.name;
  service_instances_.emplace(key, std::vector<InstanceId>{});
  services_.emplace(std::move(key), std::move(spec));
  BumpTopology();
  return Status::OK();
}

const std::vector<InstanceId>* Cluster::IdsOn(
    std::string_view server) const {
  auto it = server_instances_.find(server);
  return it == server_instances_.end() ? nullptr : &it->second;
}

const std::vector<InstanceId>* Cluster::IdsOf(
    std::string_view service) const {
  auto it = service_instances_.find(service);
  return it == service_instances_.end() ? nullptr : &it->second;
}

void Cluster::BookInstance(const ServiceInstance& instance) {
  auto insert_sorted = [](std::vector<InstanceId>* ids, InstanceId id) {
    // Ids are allocated monotonically, so this is a push_back except
    // after moves, which re-book an old id.
    ids->insert(std::lower_bound(ids->begin(), ids->end(), id), id);
  };
  insert_sorted(&server_instances_[instance.server], instance.id);
  insert_sorted(&service_instances_[instance.service], instance.id);
}

void Cluster::UnbookInstance(const ServiceInstance& instance) {
  auto erase_sorted = [](std::vector<InstanceId>* ids, InstanceId id) {
    auto it = std::lower_bound(ids->begin(), ids->end(), id);
    if (it != ids->end() && *it == id) ids->erase(it);
  };
  auto server_it = server_instances_.find(instance.server);
  if (server_it != server_instances_.end()) {
    erase_sorted(&server_it->second, instance.id);
  }
  auto service_it = service_instances_.find(instance.service);
  if (service_it != service_instances_.end()) {
    erase_sorted(&service_it->second, instance.id);
  }
}

Result<const ServerSpec*> Cluster::FindServer(std::string_view name) const {
  auto it = servers_.find(name);
  if (it == servers_.end()) {
    return Status::NotFound(StrFormat("unknown server \"%.*s\"",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return &it->second;
}

Result<const ServiceSpec*> Cluster::FindService(std::string_view name) const {
  auto it = services_.find(name);
  if (it == services_.end()) {
    return Status::NotFound(StrFormat("unknown service \"%.*s\"",
                                      static_cast<int>(name.size()),
                                      name.data()));
  }
  return &it->second;
}

std::vector<const ServerSpec*> Cluster::Servers() const {
  std::vector<const ServerSpec*> out;
  out.reserve(servers_.size());
  for (const auto& [name, spec] : servers_) out.push_back(&spec);
  return out;
}

std::vector<const ServiceSpec*> Cluster::Services() const {
  std::vector<const ServiceSpec*> out;
  out.reserve(services_.size());
  for (const auto& [name, spec] : services_) out.push_back(&spec);
  return out;
}

Status Cluster::SetServerUp(std::string_view server, bool up) {
  AG_RETURN_IF_ERROR(FindServer(server).status());
  if (up) {
    auto it = server_down_.find(server);
    if (it != server_down_.end()) server_down_.erase(it);
  } else {
    server_down_[std::string(server)] = true;
  }
  return Status::OK();
}

bool Cluster::IsServerUp(std::string_view server) const {
  return server_down_.find(server) == server_down_.end();
}

std::vector<std::string> Cluster::DownServers() const {
  std::vector<std::string> out;
  out.reserve(server_down_.size());
  for (const auto& [name, down] : server_down_) out.push_back(name);
  return out;
}

Status Cluster::CanPlace(std::string_view service, std::string_view server,
                         InstanceId exclude_instance) const {
  AG_ASSIGN_OR_RETURN(const ServiceSpec* service_spec, FindService(service));
  AG_ASSIGN_OR_RETURN(const ServerSpec* server_spec, FindServer(server));

  if (!IsServerUp(server)) {
    return Status::Unavailable(StrFormat(
        "server \"%s\" is down", server_spec->name.c_str()));
  }
  if (server_spec->performance_index <
      service_spec->min_performance_index) {
    return Status::FailedPrecondition(StrFormat(
        "server \"%s\" (PI %g) below minimum performance index %g of "
        "service \"%s\"",
        server_spec->name.c_str(), server_spec->performance_index,
        service_spec->min_performance_index, service_spec->name.c_str()));
  }
  if (ActiveInstanceCount(service, exclude_instance) >=
      service_spec->max_instances) {
    return Status::FailedPrecondition(StrFormat(
        "service \"%s\" already runs its maximum of %d instances",
        service_spec->name.c_str(), service_spec->max_instances));
  }

  // Walk only this server's booked instances, in id order — the same
  // visit order (and therefore the same first-failure precedence and
  // floating-point memory sum) as the historical full-map scan
  // restricted to this server.
  static const std::vector<InstanceId> kNoIds;
  const std::vector<InstanceId>* hosted = IdsOn(server);
  if (hosted == nullptr) hosted = &kNoIds;
  double used_memory = 0.0;
  for (InstanceId id : *hosted) {
    if (id == exclude_instance) continue;
    const ServiceInstance& instance = instances_.find(id)->second;
    if (instance.service == service) {
      return Status::FailedPrecondition(StrFormat(
          "service \"%s\" already has an instance on server \"%s\"",
          service_spec->name.c_str(), server_spec->name.c_str()));
    }
    // Exclusiveness cuts both ways: an exclusive service tolerates no
    // co-tenants, and no instance may join a host running one.
    auto other = services_.find(instance.service);
    if (other != services_.end() && other->second.exclusive) {
      return Status::FailedPrecondition(StrFormat(
          "server \"%s\" is exclusively reserved for service \"%s\"",
          server_spec->name.c_str(), instance.service.c_str()));
    }
    if (service_spec->exclusive) {
      return Status::FailedPrecondition(StrFormat(
          "exclusive service \"%s\" cannot share server \"%s\" with "
          "\"%s\"",
          service_spec->name.c_str(), server_spec->name.c_str(),
          instance.service.c_str()));
    }
    if (other != services_.end()) {
      used_memory += other->second.memory_footprint_gb;
    }
  }
  if (used_memory + service_spec->memory_footprint_gb >
      server_spec->memory_gb + 1e-9) {
    return Status::ResourceExhausted(StrFormat(
        "server \"%s\": %.1f GB used + %.1f GB footprint exceeds %.1f GB",
        server_spec->name.c_str(), used_memory,
        service_spec->memory_footprint_gb, server_spec->memory_gb));
  }
  return Status::OK();
}

Result<InstanceId> Cluster::PlaceInstance(std::string_view service,
                                          std::string_view server,
                                          SimTime now,
                                          InstanceState initial) {
  AG_RETURN_IF_ERROR(CanPlace(service, server));
  ServiceInstance instance;
  instance.id = next_instance_id_++;
  instance.service = std::string(service);
  instance.server = std::string(server);
  instance.state = initial;
  instance.placed_at = now;
  instance.virtual_ip = NextVirtualIp(service);
  InstanceId id = instance.id;
  auto emplaced = instances_.emplace(id, std::move(instance));
  BookInstance(emplaced.first->second);
  BumpTopology();
  return id;
}

Status Cluster::RemoveInstance(InstanceId id, bool enforce_min) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return Status::NotFound(StrFormat("no instance %llu",
                                      static_cast<unsigned long long>(id)));
  }
  if (enforce_min) {
    AG_ASSIGN_OR_RETURN(const ServiceSpec* spec,
                        FindService(it->second.service));
    if (ActiveInstanceCount(it->second.service) <= spec->min_instances) {
      return Status::FailedPrecondition(StrFormat(
          "service \"%s\" must keep at least %d instance(s)",
          spec->name.c_str(), spec->min_instances));
    }
  }
  UnbookInstance(it->second);
  instances_.erase(it);
  BumpTopology();
  return Status::OK();
}

Status Cluster::MoveInstance(InstanceId id, std::string_view target_server,
                             SimTime now) {
  AG_ASSIGN_OR_RETURN(ServiceInstance* instance, FindMutableInstance(id));
  if (instance->server == target_server) {
    return Status::InvalidArgument(StrFormat(
        "instance %s already runs on \"%.*s\"", instance->Name().c_str(),
        static_cast<int>(target_server.size()), target_server.data()));
  }
  AG_RETURN_IF_ERROR(
      CanPlace(instance->service, target_server, instance->id));
  // Unbind the service IP from the old host's NIC, rebind on the new
  // one (paper §2's service virtualization).
  UnbookInstance(*instance);
  instance->server = std::string(target_server);
  instance->placed_at = now;
  BookInstance(*instance);
  BumpTopology();
  return Status::OK();
}

Status Cluster::SetInstanceState(InstanceId id, InstanceState state) {
  AG_ASSIGN_OR_RETURN(ServiceInstance* instance, FindMutableInstance(id));
  instance->state = state;
  return Status::OK();
}

Result<const ServiceInstance*> Cluster::FindInstance(InstanceId id) const {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return Status::NotFound(StrFormat("no instance %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return &it->second;
}

Result<ServiceInstance*> Cluster::FindMutableInstance(InstanceId id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return Status::NotFound(StrFormat("no instance %llu",
                                      static_cast<unsigned long long>(id)));
  }
  return &it->second;
}

std::vector<const ServiceInstance*> Cluster::InstancesOn(
    std::string_view server) const {
  std::vector<const ServiceInstance*> out;
  const std::vector<InstanceId>* ids = IdsOn(server);
  if (ids == nullptr) return out;
  out.reserve(ids->size());
  for (InstanceId id : *ids) {
    out.push_back(&instances_.find(id)->second);
  }
  return out;
}

std::vector<const ServiceInstance*> Cluster::InstancesOf(
    std::string_view service) const {
  std::vector<const ServiceInstance*> out;
  const std::vector<InstanceId>* ids = IdsOf(service);
  if (ids == nullptr) return out;
  out.reserve(ids->size());
  for (InstanceId id : *ids) {
    out.push_back(&instances_.find(id)->second);
  }
  return out;
}

int Cluster::ActiveInstanceCount(std::string_view service,
                                 InstanceId exclude_instance) const {
  const std::vector<InstanceId>* ids = IdsOf(service);
  if (ids == nullptr) return 0;
  int count = 0;
  for (InstanceId id : *ids) {
    if (id == exclude_instance) continue;
    if (instances_.find(id)->second.state != InstanceState::kFailed) {
      ++count;
    }
  }
  return count;
}

int Cluster::RunningInstanceCount(std::string_view service) const {
  const std::vector<InstanceId>* ids = IdsOf(service);
  if (ids == nullptr) return 0;
  int count = 0;
  for (InstanceId id : *ids) {
    if (instances_.find(id)->second.state == InstanceState::kRunning) {
      ++count;
    }
  }
  return count;
}

double Cluster::UsedMemoryGb(std::string_view server) const {
  const std::vector<InstanceId>* ids = IdsOn(server);
  if (ids == nullptr) return 0.0;
  double used = 0.0;
  for (InstanceId id : *ids) {
    const ServiceInstance& instance = instances_.find(id)->second;
    auto spec = services_.find(instance.service);
    if (spec != services_.end()) used += spec->second.memory_footprint_gb;
  }
  return used;
}

double Cluster::ServicePriority(std::string_view service) const {
  auto it = priorities_.find(service);
  return it == priorities_.end() ? 1.0 : it->second;
}

Status Cluster::AdjustServicePriority(std::string_view service,
                                      double factor) {
  AG_RETURN_IF_ERROR(FindService(service).status());
  if (factor <= 0) {
    return Status::InvalidArgument("priority factor must be positive");
  }
  double next = std::clamp(ServicePriority(service) * factor, 0.25, 4.0);
  priorities_[std::string(service)] = next;
  // Keep the dense view live without forcing a rebuild: priorities
  // change during runs (the adjustPriority action), topology does not.
  if (index_epoch_ == topology_epoch_) {
    DenseId id = index_.ServiceIdOf(service);
    if (id != kNoDenseId) index_.SetPriority(id, next);
  }
  return Status::OK();
}

void Cluster::ProtectServer(std::string_view server, SimTime until) {
  auto it = server_protection_.find(server);
  if (it == server_protection_.end()) {
    server_protection_.emplace(std::string(server), until);
  } else {
    it->second = std::max(it->second, until);
  }
}

void Cluster::ProtectService(std::string_view service, SimTime until) {
  auto it = service_protection_.find(service);
  if (it == service_protection_.end()) {
    service_protection_.emplace(std::string(service), until);
  } else {
    it->second = std::max(it->second, until);
  }
}

bool Cluster::IsServerProtected(std::string_view server, SimTime now) const {
  auto it = server_protection_.find(server);
  return it != server_protection_.end() && now < it->second;
}

bool Cluster::IsServiceProtected(std::string_view service,
                                 SimTime now) const {
  auto it = service_protection_.find(service);
  return it != service_protection_.end() && now < it->second;
}

const LandscapeIndex& Cluster::Index() const {
  if (index_epoch_ != topology_epoch_) {
    index_.Rebuild(*this);
    index_epoch_ = topology_epoch_;
  }
  return index_;
}

std::string Cluster::NextVirtualIp(std::string_view service) {
  (void)service;
  int suffix = next_ip_suffix_++;
  return StrFormat("10.42.%d.%d", suffix / 250, suffix % 250 + 1);
}

void Cluster::SaveState(ByteWriter* w) const {
  w->U64(server_down_.size());
  for (const auto& [name, down] : server_down_) {
    w->Str(name);
    w->U8(down ? 1 : 0);
  }
  w->U64(instances_.size());
  for (const auto& [id, instance] : instances_) {
    w->U64(id);
    w->Str(instance.service);
    w->Str(instance.server);
    w->U8(static_cast<uint8_t>(instance.state));
    w->I64(instance.placed_at.seconds());
    w->Str(instance.virtual_ip);
  }
  w->U64(priorities_.size());
  for (const auto& [name, priority] : priorities_) {
    w->Str(name);
    w->F64(priority);
  }
  w->U64(server_protection_.size());
  for (const auto& [name, until] : server_protection_) {
    w->Str(name);
    w->I64(until.seconds());
  }
  w->U64(service_protection_.size());
  for (const auto& [name, until] : service_protection_) {
    w->Str(name);
    w->I64(until.seconds());
  }
  w->U64(next_instance_id_);
  w->I64(next_ip_suffix_);
  w->U64(topology_epoch_);
}

Status Cluster::RestoreState(ByteReader* r) {
  server_down_.clear();
  AG_ASSIGN_OR_RETURN(uint64_t down_count, r->U64());
  for (uint64_t i = 0; i < down_count; ++i) {
    AG_ASSIGN_OR_RETURN(std::string name, r->Str());
    AG_ASSIGN_OR_RETURN(uint8_t down, r->U8());
    AG_RETURN_IF_ERROR(FindServer(name).status());
    server_down_[std::move(name)] = down != 0;
  }
  instances_.clear();
  for (auto& [name, ids] : server_instances_) ids.clear();
  for (auto& [name, ids] : service_instances_) ids.clear();
  AG_ASSIGN_OR_RETURN(uint64_t instance_count, r->U64());
  for (uint64_t i = 0; i < instance_count; ++i) {
    ServiceInstance instance;
    AG_ASSIGN_OR_RETURN(instance.id, r->U64());
    AG_ASSIGN_OR_RETURN(instance.service, r->Str());
    AG_ASSIGN_OR_RETURN(instance.server, r->Str());
    AG_ASSIGN_OR_RETURN(uint8_t state, r->U8());
    AG_ASSIGN_OR_RETURN(int64_t placed_s, r->I64());
    AG_ASSIGN_OR_RETURN(instance.virtual_ip, r->Str());
    if (state > static_cast<uint8_t>(InstanceState::kFailed)) {
      return Status::ParseError(
          StrFormat("invalid instance state %d", state));
    }
    instance.state = static_cast<InstanceState>(state);
    instance.placed_at = SimTime::FromSeconds(placed_s);
    AG_RETURN_IF_ERROR(FindService(instance.service).status());
    AG_RETURN_IF_ERROR(FindServer(instance.server).status());
    InstanceId id = instance.id;
    auto emplaced = instances_.emplace(id, std::move(instance));
    if (!emplaced.second) {
      return Status::ParseError(StrFormat(
          "duplicate instance id %llu in snapshot",
          static_cast<unsigned long long>(id)));
    }
    BookInstance(emplaced.first->second);
  }
  priorities_.clear();
  AG_ASSIGN_OR_RETURN(uint64_t priority_count, r->U64());
  for (uint64_t i = 0; i < priority_count; ++i) {
    AG_ASSIGN_OR_RETURN(std::string name, r->Str());
    AG_ASSIGN_OR_RETURN(double priority, r->F64());
    priorities_[std::move(name)] = priority;
  }
  server_protection_.clear();
  AG_ASSIGN_OR_RETURN(uint64_t sp_count, r->U64());
  for (uint64_t i = 0; i < sp_count; ++i) {
    AG_ASSIGN_OR_RETURN(std::string name, r->Str());
    AG_ASSIGN_OR_RETURN(int64_t until_s, r->I64());
    server_protection_.emplace(std::move(name),
                               SimTime::FromSeconds(until_s));
  }
  service_protection_.clear();
  AG_ASSIGN_OR_RETURN(uint64_t svc_count, r->U64());
  for (uint64_t i = 0; i < svc_count; ++i) {
    AG_ASSIGN_OR_RETURN(std::string name, r->Str());
    AG_ASSIGN_OR_RETURN(int64_t until_s, r->I64());
    service_protection_.emplace(std::move(name),
                                SimTime::FromSeconds(until_s));
  }
  AG_ASSIGN_OR_RETURN(next_instance_id_, r->U64());
  AG_ASSIGN_OR_RETURN(int64_t ip_suffix, r->I64());
  next_ip_suffix_ = static_cast<int>(ip_suffix);
  AG_ASSIGN_OR_RETURN(topology_epoch_, r->U64());
  // Epochs start at 1, so 0 can never match: the dense index rebuilds
  // on the next access.
  index_epoch_ = 0;
  return Status::OK();
}

Status VerifyClusterInvariants(const Cluster& cluster, bool enforce_min) {
  for (const ServerSpec* server : cluster.Servers()) {
    double used = 0.0;
    std::vector<std::string_view> hosted;
    bool has_exclusive = false;
    std::string exclusive_service;
    std::vector<const ServiceInstance*> instances =
        cluster.InstancesOn(server->name);
    for (const ServiceInstance* instance : instances) {
      AG_ASSIGN_OR_RETURN(const ServiceSpec* spec,
                          cluster.FindService(instance->service));
      used += spec->memory_footprint_gb;
      for (std::string_view other : hosted) {
        if (other == instance->service) {
          return Status::Internal(StrFormat(
              "server \"%s\" hosts two instances of service \"%s\"",
              server->name.c_str(), instance->service.c_str()));
        }
      }
      hosted.push_back(instance->service);
      if (spec->exclusive) {
        has_exclusive = true;
        exclusive_service = spec->name;
      }
      if (server->performance_index < spec->min_performance_index) {
        return Status::Internal(StrFormat(
            "instance %s on server with PI %g below service minimum %g",
            instance->Name().c_str(), server->performance_index,
            spec->min_performance_index));
      }
      if (!cluster.IsServerUp(server->name) &&
          instance->state != InstanceState::kFailed) {
        return Status::Internal(StrFormat(
            "%s instance %s still placed on down server \"%s\"",
            std::string(InstanceStateName(instance->state)).c_str(),
            instance->Name().c_str(), server->name.c_str()));
      }
    }
    if (has_exclusive && instances.size() > 1) {
      return Status::Internal(StrFormat(
          "exclusive service \"%s\" shares server \"%s\" with %zu "
          "co-tenant(s)",
          exclusive_service.c_str(), server->name.c_str(),
          instances.size() - 1));
    }
    if (used > server->memory_gb + 1e-9) {
      return Status::Internal(StrFormat(
          "server \"%s\": %.1f GB of instances exceeds %.1f GB capacity",
          server->name.c_str(), used, server->memory_gb));
    }
  }
  for (const ServiceSpec* service : cluster.Services()) {
    int active = cluster.ActiveInstanceCount(service->name);
    if (active > service->max_instances) {
      return Status::Internal(StrFormat(
          "service \"%s\": %d active instances exceed maxInstances %d",
          service->name.c_str(), active, service->max_instances));
    }
    if (enforce_min && active < service->min_instances) {
      return Status::Internal(StrFormat(
          "service \"%s\": %d active instances below minInstances %d",
          service->name.c_str(), active, service->min_instances));
    }
  }
  return Status::OK();
}

}  // namespace autoglobe::infra
