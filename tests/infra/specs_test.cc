#include "infra/specs.h"

#include <gtest/gtest.h>

#include "xmlcfg/xml.h"

namespace autoglobe::infra {
namespace {

TEST(ServerSpecTest, FromXmlReadsAllAttributes) {
  auto doc = xml::Document::Parse(R"(
    <server name="DBServer1" category="HP-ProliantBL40p"
            performanceIndex="9" cpus="4" clockGhz="2.8" cacheMb="2"
            memoryGb="12" swapGb="24" tempGb="40"/>)");
  ASSERT_TRUE(doc.ok());
  auto spec = ServerSpec::FromXml(*doc->root());
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "DBServer1");
  EXPECT_EQ(spec->category, "HP-ProliantBL40p");
  EXPECT_DOUBLE_EQ(spec->performance_index, 9);
  EXPECT_EQ(spec->num_cpus, 4);
  EXPECT_DOUBLE_EQ(spec->cpu_clock_ghz, 2.8);
  EXPECT_DOUBLE_EQ(spec->memory_gb, 12);
}

TEST(ServerSpecTest, DefaultsApplied) {
  auto doc = xml::Document::Parse("<server name=\"Blade1\"/>");
  ASSERT_TRUE(doc.ok());
  auto spec = ServerSpec::FromXml(*doc->root());
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->performance_index, 1.0);
  EXPECT_EQ(spec->num_cpus, 1);
}

TEST(ServerSpecTest, ValidationRejectsBadValues) {
  ServerSpec spec;
  spec.name = "";
  EXPECT_FALSE(spec.Validate().ok());
  spec.name = "x";
  spec.performance_index = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.performance_index = 1;
  spec.memory_gb = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec.memory_gb = 2;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ServerSpecTest, XmlRoundTrip) {
  ServerSpec spec;
  spec.name = "Blade9";
  spec.category = "FSC-BX600";
  spec.performance_index = 2;
  spec.num_cpus = 2;
  spec.memory_gb = 4;
  xml::Document doc;
  spec.ToXml(doc.SetRoot("server"));
  auto reparsed = ServerSpec::FromXml(*doc.root());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->name, spec.name);
  EXPECT_EQ(reparsed->category, spec.category);
  EXPECT_DOUBLE_EQ(reparsed->performance_index, 2);
  EXPECT_EQ(reparsed->num_cpus, 2);
}

TEST(ServiceRoleTest, ParseAndName) {
  EXPECT_EQ(*ParseServiceRole("applicationServer"),
            ServiceRole::kApplicationServer);
  EXPECT_EQ(*ParseServiceRole("ci"), ServiceRole::kCentralInstance);
  EXPECT_EQ(*ParseServiceRole("DATABASE"), ServiceRole::kDatabase);
  EXPECT_FALSE(ParseServiceRole("toaster").ok());
  EXPECT_EQ(ServiceRoleName(ServiceRole::kDatabase), "database");
}

TEST(ServiceSpecTest, FromXmlWithConstraintsAndActions) {
  // The FM application-server row of Table 6.
  auto doc = xml::Document::Parse(R"(
    <service name="FI" role="applicationServer" subsystem="ERP"
             exclusive="false" minPerformanceIndex="0"
             minInstances="2" maxInstances="8" memoryFootprintGb="1.4"
             actions="scaleUp, scaleDown, scaleIn, scaleOut, move"/>)");
  ASSERT_TRUE(doc.ok());
  auto spec = ServiceSpec::FromXml(*doc->root());
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "FI");
  EXPECT_EQ(spec->role, ServiceRole::kApplicationServer);
  EXPECT_EQ(spec->subsystem, "ERP");
  EXPECT_EQ(spec->min_instances, 2);
  EXPECT_EQ(spec->max_instances, 8);
  EXPECT_EQ(spec->allowed_actions.size(), 5u);
  EXPECT_TRUE(spec->Allows(ActionType::kScaleOut));
  EXPECT_TRUE(spec->Allows(ActionType::kMove));
  EXPECT_FALSE(spec->Allows(ActionType::kStop));
}

TEST(ServiceSpecTest, ExclusiveDatabaseRow) {
  // The DB-ERP row of Tables 5/6: exclusive, min. perf. index 5,
  // no actions.
  auto doc = xml::Document::Parse(R"(
    <service name="DB-ERP" role="database" subsystem="ERP"
             exclusive="true" minPerformanceIndex="5"/>)");
  ASSERT_TRUE(doc.ok());
  auto spec = ServiceSpec::FromXml(*doc->root());
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(spec->exclusive);
  EXPECT_DOUBLE_EQ(spec->min_performance_index, 5);
  EXPECT_TRUE(spec->allowed_actions.empty());
}

TEST(ServiceSpecTest, ValidationRejectsBadBounds) {
  ServiceSpec spec;
  spec.name = "x";
  spec.min_instances = 3;
  spec.max_instances = 2;
  EXPECT_FALSE(spec.Validate().ok());
  spec.min_instances = 1;
  spec.max_instances = 2;
  spec.memory_footprint_gb = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec.memory_footprint_gb = 1;
  spec.min_performance_index = -1;
  EXPECT_FALSE(spec.Validate().ok());
  spec.min_performance_index = 0;
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(ServiceSpecTest, BadActionListRejected) {
  auto doc = xml::Document::Parse(
      "<service name=\"FI\" actions=\"scaleOut,fly\"/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ServiceSpec::FromXml(*doc->root()).ok());
}

TEST(ServiceSpecTest, XmlRoundTripKeepsActions) {
  ServiceSpec spec;
  spec.name = "LES";
  spec.role = ServiceRole::kApplicationServer;
  spec.subsystem = "ERP";
  spec.min_instances = 2;
  spec.max_instances = 8;
  spec.memory_footprint_gb = 1.25;
  spec.allowed_actions = {ActionType::kScaleIn, ActionType::kScaleOut};
  xml::Document doc;
  spec.ToXml(doc.SetRoot("service"));
  auto reparsed = ServiceSpec::FromXml(*doc.root());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->allowed_actions, spec.allowed_actions);
  EXPECT_EQ(reparsed->min_instances, 2);
}

}  // namespace
}  // namespace autoglobe::infra
