#ifndef AUTOGLOBE_COMMON_FASTMATH_H_
#define AUTOGLOBE_COMMON_FASTMATH_H_

#include <cstdint>
#include <cstring>

namespace autoglobe {

/// Deterministic portable elementary functions for the philox draw
/// discipline.
///
/// glibc's log/sin/cos change their last-ulp behaviour between
/// versions (and differ from other libcs entirely), which would make
/// golden traces of philox-mode normals libc-dependent. These kernels
/// are fixed double-precision polynomial evaluations (the classic
/// fdlibm reductions) with a pinned operation order, so the same bits
/// come out on every platform — and the identical sequence of adds and
/// multiplies can be evaluated 4-wide by the AVX2 lane kernels
/// (`lane_kernels_avx2.cc` mirrors every step with packed-double
/// intrinsics; no FMA, no reassociation, see DESIGN.md §16).
///
/// Domain contract: these are draw kernels, not a libm replacement.
/// FastLog expects a finite x in (0, 1] (Box–Muller feeds it uniforms
/// bounded away from zero); FastSinCos expects theta in [0, 2*pi).
/// Accuracy within those domains is <= 2 ulp against a long-double
/// reference (tests/common/fastmath_test.cc).

namespace fastmath_detail {

inline uint64_t BitsOf(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

inline double DoubleOf(uint64_t u) {
  double x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

}  // namespace fastmath_detail

/// Natural log of x for finite x in (0, 1] — fdlibm's e_log reduction:
/// x = 2^k * (1+f) with f in [sqrt(2)/2 - 1, sqrt(2) - 1), then a
/// polynomial in s = f/(2+f).
inline double FastLog(double x) {
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kLg1 = 6.666666666666735130e-01;
  constexpr double kLg2 = 3.999999999940941908e-01;
  constexpr double kLg3 = 2.857142874366239149e-01;
  constexpr double kLg4 = 2.222219843214978396e-01;
  constexpr double kLg5 = 1.818357216161805012e-01;
  constexpr double kLg6 = 1.531383769920937332e-01;
  constexpr double kLg7 = 1.479819860511658591e-01;

  uint64_t bits = fastmath_detail::BitsOf(x);
  int32_t hx = static_cast<int32_t>(bits >> 32);
  int32_t k = (hx >> 20) - 1023;
  hx &= 0x000fffff;
  int32_t i = (hx + 0x95f64) & 0x100000;
  // Normalized x in [sqrt(2)/2, sqrt(2)).
  uint64_t norm = (static_cast<uint64_t>(hx | (i ^ 0x3ff00000)) << 32) |
                  (bits & 0xffffffffull);
  x = fastmath_detail::DoubleOf(norm);
  k += (i >> 20);
  double dk = static_cast<double>(k);

  double f = x - 1.0;
  double s = f / (2.0 + f);
  double z = s * s;
  double w = z * z;
  double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
  double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
  double r = t2 + t1;
  double hfsq = 0.5 * f * f;
  return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

/// sin and cos of theta for theta in [0, 2*pi) — a floor-based
/// Cody–Waite reduction to [-pi/4, pi/4] plus fdlibm's k_sin/k_cos
/// kernels. Both quadrant kernels are always computed and the result
/// selected, so a 4-wide blend in the AVX2 mirror is bit-equal to the
/// scalar switch.
inline void FastSinCos(double theta, double* sin_out, double* cos_out) {
  constexpr double kInvPio2 = 6.36619772367581382433e-01;
  constexpr double kPio2_1 = 1.57079632673412561417e+00;
  constexpr double kPio2_2 = 6.07710050630396597660e-11;
  constexpr double kPio2_2t = 2.02226624879595063154e-21;
  constexpr double kS1 = -1.66666666666666324348e-01;
  constexpr double kS2 = 8.33333333332248946124e-03;
  constexpr double kS3 = -1.98412698298579493134e-04;
  constexpr double kS4 = 2.75573137070700676789e-06;
  constexpr double kS5 = -2.50507602534068634195e-08;
  constexpr double kS6 = 1.58969099521155010221e-10;
  constexpr double kC1 = 4.16666666666666019037e-02;
  constexpr double kC2 = -1.38888888888741095749e-03;
  constexpr double kC3 = 2.48015872894767294178e-05;
  constexpr double kC4 = -2.75573143513906633035e-07;
  constexpr double kC5 = 2.08757232129817482790e-09;
  constexpr double kC6 = -1.13596475577881948265e-11;

  // floor(x + 0.5), not nearbyint: floor has one IEEE-pinned result
  // regardless of the rounding mode, and _mm256_floor_pd matches it.
  double fn = theta * kInvPio2 + 0.5;
  fn = __builtin_floor(fn);
  int n = static_cast<int>(fn);
  // Three-constant Cody–Waite reduction, applied unconditionally
  // (fdlibm only falls back to it on cancellation, but a data-driven
  // branch would break the scalar/SIMD lockstep): ~116 bits of pi/2
  // keep even the near-zero cosine at pi/2 inside the 2-ulp bound.
  double t1 = theta - fn * kPio2_1;
  double w = fn * kPio2_2;
  double r = t1 - w;
  w = fn * kPio2_2t - ((t1 - r) - w);
  double x = r - w;
  double y = (r - x) - w;

  // k_sin(x, y): sin over the reduced argument with correction term.
  double z = x * x;
  double zz = z * z;
  double rs = kS2 + z * (kS3 + z * kS4) + z * zz * (kS5 + z * kS6);
  double v = z * x;
  double ks = x - ((z * (0.5 * y - v * rs) - y) - v * kS1);

  // k_cos(x, y).
  double rc = z * (kC1 + z * (kC2 + z * kC3)) + zz * zz * (kC4 + z * (kC5 + z * kC6));
  double hz = 0.5 * z;
  double ww = 1.0 - hz;
  double kc = ww + (((1.0 - ww) - hz) + (z * rc - x * y));

  switch (n & 3) {
    case 0:
      *sin_out = ks;
      *cos_out = kc;
      break;
    case 1:
      *sin_out = kc;
      *cos_out = -ks;
      break;
    case 2:
      *sin_out = -ks;
      *cos_out = -kc;
      break;
    default:
      *sin_out = -kc;
      *cos_out = ks;
      break;
  }
}

}  // namespace autoglobe

#endif  // AUTOGLOBE_COMMON_FASTMATH_H_
