#include "workload/demand.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe::workload {

using infra::InstanceId;
using infra::ServiceInstance;

DemandEngine::DemandEngine(infra::Cluster* cluster, Rng rng)
    : cluster_(cluster), rng_(rng) {
  AG_CHECK(cluster_ != nullptr);
}

Status DemandEngine::AddService(ServiceDemandSpec spec) {
  AG_RETURN_IF_ERROR(cluster_->FindService(spec.service).status());
  if (services_.count(spec.service) > 0) {
    return Status::AlreadyExists(StrFormat(
        "demand spec for \"%s\" already registered", spec.service.c_str()));
  }
  if (spec.base_users < 0 || spec.request_cost < 0 ||
      spec.base_load_wu < 0 || spec.batch_load_wu < 0 ||
      spec.noise_stddev < 0) {
    return Status::InvalidArgument(StrFormat(
        "demand spec for \"%s\" has negative parameters",
        spec.service.c_str()));
  }
  std::string key = spec.service;
  services_.emplace(std::move(key), std::move(spec));
  return Status::OK();
}

Status DemandEngine::AddSubsystem(SubsystemSpec spec) {
  for (const std::string& app : spec.app_services) {
    if (services_.count(app) == 0) {
      return Status::NotFound(StrFormat(
          "subsystem \"%s\": unknown app service \"%s\"",
          spec.name.c_str(), app.c_str()));
    }
  }
  if (!spec.central_instance.empty() &&
      services_.count(spec.central_instance) == 0) {
    return Status::NotFound(StrFormat(
        "subsystem \"%s\": unknown central instance \"%s\"",
        spec.name.c_str(), spec.central_instance.c_str()));
  }
  if (!spec.database.empty() && services_.count(spec.database) == 0) {
    return Status::NotFound(StrFormat(
        "subsystem \"%s\": unknown database \"%s\"", spec.name.c_str(),
        spec.database.c_str()));
  }
  subsystems_.push_back(std::move(spec));
  return Status::OK();
}

double DemandEngine::HostCapacity(std::string_view server) const {
  auto found = cluster_->FindServer(server);
  return found.ok() ? (*found)->performance_index : 1.0;
}

infra::InstanceId DemandEngine::LeastLoadedInstance(
    const std::vector<const ServiceInstance*>& instances) const {
  InstanceId best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const ServiceInstance* instance : instances) {
    if (instance->state != infra::InstanceState::kRunning) continue;
    // Score by the host's CPU load from the previous tick; break ties
    // toward emptier instances relative to host capacity.
    double host_load = ServerCpuLoad(instance->server);
    auto state = instance_state_.find(instance->id);
    double users = state == instance_state_.end() ? 0.0 : state->second.users;
    auto server = cluster_->FindServer(instance->server);
    double capacity =
        server.ok() ? (*server)->performance_index : 1.0;
    double score = host_load + 0.001 * users / (capacity *
                                                kUsersPerPerformanceUnit);
    if (score < best_score) {
      best_score = score;
      best = instance->id;
    }
  }
  return best;
}

void DemandEngine::SyncUsers() {
  // Drop state of instances that no longer exist; pool their users.
  std::map<std::string, double, std::less<>> orphaned_users;
  for (auto it = instance_state_.begin(); it != instance_state_.end();) {
    auto found = cluster_->FindInstance(it->first);
    if (!found.ok()) {
      // The instance is gone; its users must re-login elsewhere.
      // (We cannot know the service from the id alone anymore, so the
      // per-service target reconciliation below re-adds them.)
      it = instance_state_.erase(it);
    } else {
      ++it;
    }
  }

  for (const auto& [name, spec] : services_) {
    std::vector<const ServiceInstance*> instances =
        cluster_->InstancesOf(name);
    if (instances.empty()) continue;

    // Ensure a state entry per live instance.
    for (const ServiceInstance* instance : instances) {
      instance_state_.try_emplace(instance->id);
    }
    if (spec.base_users <= 0) continue;  // batch / derived services

    double target_total = spec.base_users * user_scale_;

    if (distribution_ == UserDistribution::kDynamicRedistribution) {
      // FM: users are redistributed across all serving instances
      // whenever anything changes. The paper says "equally"; we weigh
      // the shares by host capacity so that equal *load* results on
      // the heterogeneous blades (an equal head-count split would
      // systematically overload the PI-1 hosts).
      std::vector<const ServiceInstance*> usable;
      double weight_total = 0.0;
      for (const ServiceInstance* instance : instances) {
        if (instance->state != infra::InstanceState::kFailed) {
          usable.push_back(instance);
          weight_total += HostCapacity(instance->server);
        }
      }
      if (usable.empty() || weight_total <= 0) continue;
      for (const ServiceInstance* instance : instances) {
        instance_state_[instance->id].users = 0.0;
      }
      for (const ServiceInstance* instance : usable) {
        instance_state_[instance->id].users =
            target_total * HostCapacity(instance->server) / weight_total;
      }
      continue;
    }

    // Sticky sessions: users stay where they are. Users of failed
    // instances re-login at the least-loaded instance. Scale changes
    // and users lost with removed instances reconcile against the
    // target total: shortfalls log in at the least-loaded instance,
    // excess logs off proportionally.
    double current_total = 0.0;
    for (const ServiceInstance* instance : instances) {
      InstanceState& state = instance_state_[instance->id];
      if (instance->state == infra::InstanceState::kFailed &&
          state.users > 0) {
        InstanceId refuge = LeastLoadedInstance(instances);
        if (refuge != 0 && refuge != instance->id) {
          instance_state_[refuge].users += state.users;
          state.users = 0.0;
        }
      }
      current_total += instance_state_[instance->id].users;
    }
    double diff = target_total - current_total;
    if (diff > 1e-9) {
      // Fresh logins spread across the least-loaded instances; in the
      // aggregate that matches a capacity-proportional arrival split.
      double weight_total = 0.0;
      for (const ServiceInstance* instance : instances) {
        if (instance->state == infra::InstanceState::kFailed) continue;
        weight_total += HostCapacity(instance->server);
      }
      if (weight_total > 0) {
        for (const ServiceInstance* instance : instances) {
          if (instance->state == infra::InstanceState::kFailed) continue;
          instance_state_[instance->id].users +=
              diff * HostCapacity(instance->server) / weight_total;
        }
      } else {
        instance_state_[instances.front()->id].users += diff;
      }
    } else if (diff < -1e-9 && current_total > 0) {
      double keep = target_total / current_total;
      for (const ServiceInstance* instance : instances) {
        instance_state_[instance->id].users *= keep;
      }
    }
  }
}

void DemandEngine::ApplyFluctuation(double dt_minutes) {
  if (distribution_ != UserDistribution::kStickySessions) return;
  if (fluctuation_per_minute_ <= 0) return;
  double fraction = std::min(1.0, fluctuation_per_minute_ * dt_minutes);
  for (const auto& [name, spec] : services_) {
    if (spec.base_users <= 0) continue;
    std::vector<const ServiceInstance*> instances =
        cluster_->InstancesOf(name);
    if (instances.size() < 2) continue;
    InstanceId refuge = LeastLoadedInstance(instances);
    if (refuge == 0) continue;
    double moved = 0.0;
    for (const ServiceInstance* instance : instances) {
      if (instance->id == refuge) continue;
      InstanceState& state = instance_state_[instance->id];
      double leave = state.users * fraction;
      state.users -= leave;
      moved += leave;
    }
    instance_state_[refuge].users += moved;
  }
}

void DemandEngine::Tick(SimTime now, Duration dt) {
  double dt_minutes = std::max(1e-9, dt.seconds() / 60.0);
  SyncUsers();
  ApplyFluctuation(dt_minutes);

  // --- Fresh demand per instance (wu per minute) -----------------------
  std::map<std::string, double, std::less<>> app_work_by_service;
  for (const auto& [name, spec] : services_) {
    std::vector<const ServiceInstance*> instances =
        cluster_->InstancesOf(name);
    if (instances.empty()) continue;
    double activity = spec.pattern.Activity(now);
    double usable_capacity = 0.0;
    for (const ServiceInstance* instance : instances) {
      if (instance->state != infra::InstanceState::kFailed) {
        usable_capacity += HostCapacity(instance->server);
      }
    }
    double service_work = 0.0;
    for (const ServiceInstance* instance : instances) {
      InstanceState& state = instance_state_[instance->id];
      double fresh = 0.0;
      if (spec.batch) {
        // Batch jobs are pulled from a shared queue, so instances on
        // faster hosts process proportionally more of them.
        if (usable_capacity > 0 &&
            instance->state != infra::InstanceState::kFailed) {
          fresh = spec.batch_load_wu * activity * user_scale_ *
                  HostCapacity(instance->server) / usable_capacity;
        }
      } else if (spec.base_users > 0) {
        fresh = state.users * activity * spec.request_cost /
                kUsersPerPerformanceUnit;
      }
      if (fresh > 0 && spec.noise_stddev > 0) {
        fresh *= std::max(0.0, rng_.Normal(1.0, spec.noise_stddev));
      }
      double queued = state.backlog_wu;
      if (spec.shared_queue && usable_capacity > 0 &&
          instance->state != infra::InstanceState::kFailed) {
        auto queue_it = service_queue_wu_.find(name);
        if (queue_it != service_queue_wu_.end()) {
          queued = queue_it->second * HostCapacity(instance->server) /
                   usable_capacity;
        }
      }
      state.demand_wu = spec.base_load_wu + fresh + queued;
      service_work += fresh;
    }
    app_work_by_service[name] = service_work;
  }

  // --- Propagate through central instances and databases ----------------
  for (const SubsystemSpec& subsystem : subsystems_) {
    double app_work = 0.0;
    for (const std::string& app : subsystem.app_services) {
      auto it = app_work_by_service.find(app);
      if (it != app_work_by_service.end()) app_work += it->second;
    }
    auto distribute = [&](const std::string& service, double work) {
      if (service.empty() || work <= 0) return;
      std::vector<const ServiceInstance*> instances =
          cluster_->InstancesOf(service);
      double usable_capacity = 0.0;
      for (const ServiceInstance* instance : instances) {
        if (instance->state != infra::InstanceState::kFailed) {
          usable_capacity += HostCapacity(instance->server);
        }
      }
      if (usable_capacity <= 0) {
        lost_work_wu_ += work * dt_minutes;  // nobody to serve the tier
        return;
      }
      for (const ServiceInstance* instance : instances) {
        if (instance->state == infra::InstanceState::kFailed) continue;
        instance_state_[instance->id].demand_wu +=
            work * HostCapacity(instance->server) / usable_capacity;
      }
    };
    distribute(subsystem.central_instance, subsystem.ci_factor * app_work);
    distribute(subsystem.database, subsystem.db_factor * app_work);
  }

  // --- Proportional-share CPU model per server --------------------------
  server_loads_.clear();
  std::map<std::string, double, std::less<>> shared_unserved;
  for (const infra::ServerSpec* server : cluster_->Servers()) {
    std::vector<const ServiceInstance*> instances =
        cluster_->InstancesOn(server->name);
    double capacity = server->performance_index;
    double total_demand = 0.0;
    for (const ServiceInstance* instance : instances) {
      InstanceState& state = instance_state_[instance->id];
      // Starting instances consume their base load only; their fresh
      // work waits (and is re-queued as backlog below).
      if (instance->state == infra::InstanceState::kRunning) {
        total_demand += state.demand_wu;
      }
    }

    double cpu = capacity > 0 ? total_demand / capacity : 1.0;
    ServerLoad load;
    load.cpu = std::min(1.0, cpu);
    load.mem = std::min(
        1.0, cluster_->UsedMemoryGb(server->name) / server->memory_gb);
    server_loads_[server->name] = load;

    // Serve demand: everything if it fits, otherwise a priority-
    // weighted proportional share (water-filling, 3 rounds).
    std::map<InstanceId, double> served;
    if (total_demand <= capacity) {
      for (const ServiceInstance* instance : instances) {
        if (instance->state == infra::InstanceState::kRunning) {
          served[instance->id] = instance_state_[instance->id].demand_wu;
        }
      }
    } else {
      double remaining = capacity;
      std::vector<const ServiceInstance*> unsatisfied;
      std::map<InstanceId, double> wanted;
      for (const ServiceInstance* instance : instances) {
        if (instance->state != infra::InstanceState::kRunning) continue;
        unsatisfied.push_back(instance);
        wanted[instance->id] = instance_state_[instance->id].demand_wu;
        served[instance->id] = 0.0;
      }
      for (int round = 0; round < 3 && remaining > 1e-12 &&
                          !unsatisfied.empty();
           ++round) {
        double total_weight = 0.0;
        for (const ServiceInstance* instance : unsatisfied) {
          total_weight += cluster_->ServicePriority(instance->service) *
                          std::max(1e-9, wanted[instance->id]);
        }
        if (total_weight <= 0) break;
        std::vector<const ServiceInstance*> still_unsatisfied;
        double granted_total = 0.0;
        for (const ServiceInstance* instance : unsatisfied) {
          double weight = cluster_->ServicePriority(instance->service) *
                          std::max(1e-9, wanted[instance->id]);
          double grant = remaining * weight / total_weight;
          double need = wanted[instance->id] - served[instance->id];
          double take = std::min(grant, need);
          served[instance->id] += take;
          granted_total += take;
          if (served[instance->id] + 1e-12 < wanted[instance->id]) {
            still_unsatisfied.push_back(instance);
          }
        }
        remaining -= granted_total;
        unsatisfied.swap(still_unsatisfied);
      }
    }

    // Update per-instance load and backlog.
    for (const ServiceInstance* instance : instances) {
      InstanceState& state = instance_state_[instance->id];
      state.load = capacity > 0
                       ? std::min(1.0, state.demand_wu / capacity)
                       : 1.0;
      double got = 0.0;
      auto it = served.find(instance->id);
      if (it != served.end()) got = it->second;
      state.served_wu = got;
      double unserved = std::max(0.0, state.demand_wu - got);
      // Base (idle) load does not queue; only request work does.
      auto spec_it = services_.find(instance->service);
      if (spec_it != services_.end()) {
        unserved = std::max(0.0, unserved - spec_it->second.base_load_wu);
      }
      // demand_wu already included the queued work, so the unserved
      // remainder *is* the new queue content (converted rate -> work).
      double new_backlog = unserved * dt_minutes;
      state.backlog_wu = 0.0;
      if (spec_it != services_.end() && spec_it->second.shared_queue) {
        // Collected into the shared service queue below.
        shared_unserved[instance->service] += new_backlog;
        continue;
      }
      double cap = spec_it != services_.end()
                       ? spec_it->second.backlog_cap_wu
                       : 2.0;
      if (new_backlog > cap) {
        lost_work_wu_ += new_backlog - cap;
        new_backlog = cap;
      }
      state.backlog_wu = new_backlog;
    }

    if (load.cpu > overload_threshold_) overload_minutes_ += dt_minutes;
  }

  // Commit shared queues (cap per service; overflow is lost work).
  service_queue_wu_.clear();
  for (auto& [service, queued] : shared_unserved) {
    auto spec_it = services_.find(service);
    double cap =
        spec_it != services_.end() ? spec_it->second.backlog_cap_wu : 2.0;
    if (queued > cap) {
      lost_work_wu_ += queued - cap;
      queued = cap;
    }
    if (queued > 0) service_queue_wu_[service] = queued;
  }
}

double DemandEngine::ServerCpuLoad(std::string_view server) const {
  auto it = server_loads_.find(server);
  return it == server_loads_.end() ? 0.0 : it->second.cpu;
}

double DemandEngine::ServerMemLoad(std::string_view server) const {
  auto it = server_loads_.find(server);
  return it == server_loads_.end() ? 0.0 : it->second.mem;
}

double DemandEngine::InstanceLoad(infra::InstanceId id) const {
  auto it = instance_state_.find(id);
  return it == instance_state_.end() ? 0.0 : it->second.load;
}

double DemandEngine::ServiceSatisfaction(std::string_view service) const {
  double requested = 0.0;
  double served = 0.0;
  for (const ServiceInstance* instance : cluster_->InstancesOf(service)) {
    auto it = instance_state_.find(instance->id);
    if (it == instance_state_.end()) continue;
    requested += it->second.demand_wu;
    served += std::min(it->second.served_wu, it->second.demand_wu);
  }
  if (requested <= 1e-12) return 1.0;
  return std::clamp(served / requested, 0.0, 1.0);
}

double DemandEngine::ServiceLoad(std::string_view service) const {
  std::vector<const ServiceInstance*> instances =
      cluster_->InstancesOf(service);
  if (instances.empty()) return 0.0;
  double total = 0.0;
  int count = 0;
  for (const ServiceInstance* instance : instances) {
    auto it = instance_state_.find(instance->id);
    if (it == instance_state_.end()) continue;
    total += it->second.load;
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

double DemandEngine::InstanceUsers(infra::InstanceId id) const {
  auto it = instance_state_.find(id);
  return it == instance_state_.end() ? 0.0 : it->second.users;
}

double DemandEngine::ServiceUsers(std::string_view service) const {
  double total = 0.0;
  for (const ServiceInstance* instance : cluster_->InstancesOf(service)) {
    total += InstanceUsers(instance->id);
  }
  return total;
}

double DemandEngine::TotalBacklog() const {
  double total = 0.0;
  for (const auto& [id, state] : instance_state_) {
    total += state.backlog_wu;
  }
  for (const auto& [service, queued] : service_queue_wu_) total += queued;
  return total;
}

}  // namespace autoglobe::workload
