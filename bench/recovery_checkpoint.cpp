// Checkpoint/restore cost trajectory (BENCH_recovery.json): for the
// paper landscape and a generated 1k-server fleet, measures how long
// one full checkpoint takes (serialize + container encode + durable
// write), how big the snapshot is on disk, and how long a cold
// restore takes (read + decode + rebuild a runner and overwrite its
// state). Before reporting any number, the harness proves the restore
// is *correct*: the restored runner's re-serialized sections must be
// byte-identical to the source runner's, and a restored run continued
// to the end must match the uninterrupted run bit for bit. CI gates
// the size and latency columns (see ci.yml, crash-recovery job).
//
//   ./recovery_checkpoint

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "autoglobe/capacity.h"
#include "autoglobe/landscape.h"
#include "autoglobe/landscape_gen.h"
#include "bench_report.h"
#include "common/fileio.h"
#include "common/logging.h"
#include "persist/runner_checkpoint.h"
#include "persist/snapshot.h"

namespace {

using namespace autoglobe;

using Sections = std::vector<std::pair<std::string, std::string>>;

// One measured row: run `landscape` to its midpoint, checkpoint it
// `reps` times (timing serialize+encode+write), then restore `reps`
// times (timing read+decode+rebuild), verifying byte parity each way.
bench::BenchRecord MeasureOne(const std::string& name,
                              const Landscape& landscape,
                              const RunnerConfig& config) {
  auto runner = SimulationRunner::Create(landscape, config);
  AG_CHECK_OK(runner.status());
  const SimTime midpoint = SimTime::Start() + config.duration / 2;
  AG_CHECK_OK((*runner)->RunUntil(midpoint));

  const std::string path = "/tmp/recovery_bench_" + name + ".agsnap";
  const int reps = 20;

  // Checkpoint: sections -> container -> durable file.
  bench::WallTimer checkpoint_timer;
  for (int i = 0; i < reps; ++i) {
    AG_CHECK_OK(persist::SaveRunnerSnapshot(**runner, path));
  }
  double checkpoint_ms = checkpoint_timer.Seconds() * 1000.0 / reps;

  auto bytes = ReadFileToString(path);
  AG_CHECK_OK(bytes.status());

  // Restore: file -> decode -> fresh runner with overwritten state.
  std::unique_ptr<SimulationRunner> restored;
  bench::WallTimer restore_timer;
  for (int i = 0; i < reps; ++i) {
    auto snapshot =
        persist::ReadSnapshotFile(path, (*runner)->StateFingerprint());
    AG_CHECK_OK(snapshot.status());
    auto revived = persist::RestoreRunner(landscape, config, *snapshot);
    AG_CHECK_OK(revived.status());
    restored = std::move(*revived);
  }
  double restore_ms = restore_timer.Seconds() * 1000.0 / reps;

  // Correctness gate 1: the restored runner re-serializes to the very
  // bytes the source produced.
  Sections original, revived_sections;
  AG_CHECK_OK((*runner)->SaveStateSections(&original));
  AG_CHECK_OK(restored->SaveStateSections(&revived_sections));
  AG_CHECK(original == revived_sections);

  // Correctness gate 2: continuing both to the end stays bit-identical.
  const SimTime end = SimTime::Start() + config.duration;
  AG_CHECK_OK((*runner)->RunUntil(end));
  AG_CHECK_OK(restored->RunUntil(end));
  Sections final_a, final_b;
  AG_CHECK_OK((*runner)->SaveStateSections(&final_a));
  AG_CHECK_OK(restored->SaveStateSections(&final_b));
  AG_CHECK(final_a == final_b);

  AG_CHECK_OK(RemoveFileIfExists(path));

  bench::BenchRecord record;
  record.name = "recovery/" + name;
  record.wall_seconds = checkpoint_ms / 1000.0;
  record.items_per_second =
      static_cast<double>(bytes->size()) / (checkpoint_ms / 1000.0);
  record.extra["checkpoint_write_ms"] = checkpoint_ms;
  record.extra["restore_ms"] = restore_ms;
  record.extra["snapshot_bytes"] = static_cast<double>(bytes->size());
  record.extra["servers"] = static_cast<double>(landscape.servers.size());
  record.extra["parity_verified"] = 1.0;
  std::printf(
      "%-18s %7.2f ms checkpoint, %7.2f ms restore, %9zu bytes "
      "(%zu servers)\n",
      name.c_str(), checkpoint_ms, restore_ms, bytes->size(),
      landscape.servers.size());
  return record;
}

LandscapeGenSpec FleetSpec() {
  LandscapeGenSpec spec;
  spec.seed = 7;
  spec.pools.push_back({"Pool", 1000, 1.0, 4, 2.0, 1.0, 16.0});
  spec.num_services = 500;
  spec.active_services = 32;
  spec.instances_per_service = 2;
  return spec;
}

}  // namespace

int main() {
  std::vector<bench::BenchRecord> records;

  {
    Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
    RunnerConfig config =
        MakeScenarioConfig(Scenario::kFullMobility, 1.15, 42);
    config.duration = Duration::Hours(8);
    records.push_back(MeasureOne("paper_fm", landscape, config));
  }

  {
    auto landscape = GenerateLandscape(FleetSpec());
    AG_CHECK_OK(landscape.status());
    RunnerConfig config;
    config.tick = Duration::Minutes(1);
    config.duration = Duration::Hours(4);
    config.seed = 42;
    config.fluctuation_per_minute = 0.0;
    // Bounded archive keeps the 1k-server snapshot a measurement of
    // the codec, not of an unbounded history ring.
    config.archive_retention = Duration::Hours(1);
    config.archive_bucket = Duration::Minutes(15);
    config.controller.pool_prescreen = true;
    records.push_back(MeasureOne("fleet_1k", *landscape, config));
  }

  bench::WriteBenchJson("BENCH_recovery.json", records);
  return 0;
}
