# Empty dependencies file for ag_common.
# This may be replaced when dependencies are built.
