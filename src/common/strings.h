#ifndef AUTOGLOBE_COMMON_STRINGS_H_
#define AUTOGLOBE_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace autoglobe {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` at every occurrence of `sep`; empty pieces are kept.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty pieces are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// ASCII case conversions.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict numeric parsing of the complete (whitespace-stripped) input.
Result<double> ParseDouble(std::string_view s);
Result<long long> ParseInt(std::string_view s);
Result<bool> ParseBool(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace autoglobe

#endif  // AUTOGLOBE_COMMON_STRINGS_H_
