#ifndef AUTOGLOBE_SIM_SIMULATOR_H_
#define AUTOGLOBE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace autoglobe::sim {

/// Identifier of a scheduled event; usable for cancellation.
using EventId = uint64_t;

/// Single-threaded discrete-event simulation kernel. Events fire in
/// timestamp order; events with equal timestamps fire in scheduling
/// (FIFO) order, which makes runs fully deterministic.
///
/// The paper's simulation environment runs "in 40-fold acceleration";
/// a discrete-event kernel is the limit case of that idea — simulated
/// time advances only when something happens.
class Simulator {
 public:
  using Callback = std::function<void()>;
  /// Trace hook invoked for every dispatched event.
  using TraceHook = std::function<void(SimTime, const std::string& label)>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `callback` at absolute time `at` (>= now). Events in
  /// the past are rejected.
  Result<EventId> ScheduleAt(SimTime at, std::string label,
                             Callback callback);
  /// Schedules `callback` after `delay` (>= 0).
  Result<EventId> ScheduleAfter(Duration delay, std::string label,
                                Callback callback);

  /// Schedules `callback` every `period`, first firing at
  /// `now + period` (or `first` if given). Returns a handle that
  /// cancels the whole series.
  Result<EventId> SchedulePeriodic(Duration period, std::string label,
                                   Callback callback);

  /// Cancels a pending event (or periodic series). NotFound when the
  /// event already fired or never existed.
  Status Cancel(EventId id);

  /// Number of events still pending.
  size_t pending_events() const;

  /// Dispatches a single event; returns false when the queue is empty.
  bool Step();

  /// Runs until the queue drains or `end` is reached; the clock is
  /// left at min(end, last event time). Events at exactly `end` fire.
  void RunUntil(SimTime end);

  /// Runs until the queue drains completely.
  void RunAll();

  /// Installs a trace hook (nullptr clears).
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  /// Total number of events dispatched so far.
  uint64_t dispatched_events() const { return dispatched_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // tie-breaker for determinism
    EventId id;
    std::string label;
    Callback callback;
    // Period of a periodic series; zero for one-shot events.
    Duration period = Duration::Zero();
  };

  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;  // min-heap
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> live_;       // pending (not yet fired/cancelled)
  std::unordered_set<EventId> cancelled_;  // cancelled but still queued
  SimTime now_ = SimTime::Start();
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t dispatched_ = 0;
  TraceHook trace_hook_;
};

}  // namespace autoglobe::sim

#endif  // AUTOGLOBE_SIM_SIMULATOR_H_
