#include "controller/reservations.h"

#include <gtest/gtest.h>

#include "controller/controller.h"
#include "sim/simulator.h"

namespace autoglobe::controller {
namespace {

SimTime Min(int m) { return SimTime::Start() + Duration::Minutes(m); }

Reservation MakeReservation(const std::string& server, double cpu,
                            double memory, int from_min, int until_min) {
  Reservation r;
  r.task = "month-end-close";
  r.server = server;
  r.cpu_wu = cpu;
  r.memory_gb = memory;
  r.from = Min(from_min);
  r.until = Min(until_min);
  return r;
}

TEST(ReservationTest, Validation) {
  EXPECT_TRUE(MakeReservation("big", 2, 4, 0, 60).Validate().ok());
  Reservation unnamed = MakeReservation("big", 2, 4, 0, 60);
  unnamed.task = "";
  EXPECT_FALSE(unnamed.Validate().ok());
  Reservation nowhere = MakeReservation("", 2, 4, 0, 60);
  EXPECT_FALSE(nowhere.Validate().ok());
  Reservation empty_window = MakeReservation("big", 2, 4, 60, 60);
  EXPECT_FALSE(empty_window.Validate().ok());
  Reservation nothing = MakeReservation("big", 0, 0, 0, 60);
  EXPECT_FALSE(nothing.Validate().ok());
  Reservation negative = MakeReservation("big", -1, 4, 0, 60);
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(ReservationTest, CoversOrImminent) {
  Reservation r = MakeReservation("big", 2, 4, 60, 120);
  Duration lookahead = Duration::Minutes(30);
  EXPECT_FALSE(r.CoversOrImminent(Min(0), lookahead));    // far future
  EXPECT_TRUE(r.CoversOrImminent(Min(30), lookahead));    // imminent
  EXPECT_TRUE(r.CoversOrImminent(Min(90), lookahead));    // active
  EXPECT_FALSE(r.CoversOrImminent(Min(120), lookahead));  // over
}

TEST(ReservationTest, DailyWindowRecursAndWraps) {
  Reservation nightly = MakeReservation("db", 4, 2, 22 * 60, 6 * 60);
  nightly.daily = true;
  ASSERT_TRUE(nightly.Validate().ok());
  Duration la = Duration::Minutes(30);
  // Day 0, 23:00 — inside.
  EXPECT_TRUE(nightly.CoversOrImminent(Min(23 * 60), la));
  // Day 3, 02:00 — inside (recurs and wraps midnight).
  EXPECT_TRUE(nightly.CoversOrImminent(
      SimTime::Start() + Duration::Days(3) + Duration::Hours(2), la));
  // Midday — outside even with lookahead.
  EXPECT_FALSE(nightly.CoversOrImminent(Min(12 * 60), la));
  // 21:45 — the window starts within the 30-min lookahead.
  EXPECT_TRUE(nightly.CoversOrImminent(Min(21 * 60 + 45), la));
  // Daily reservations never expire.
  ReservationBook book;
  ASSERT_TRUE(book.Add(nightly).ok());
  book.ExpireBefore(SimTime::Start() + Duration::Days(30));
  EXPECT_EQ(book.size(), 1u);
  // Degenerate daily window rejected.
  Reservation empty = MakeReservation("db", 4, 2, 300, 300);
  empty.daily = true;
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(ReservationBookTest, DailyXmlRoundTrip) {
  ReservationBook book;
  Reservation nightly = MakeReservation("DBServer2", 6, 4, 22 * 60, 6 * 60);
  nightly.daily = true;
  ASSERT_TRUE(book.Add(nightly).ok());
  xml::Document doc;
  book.SaveXml(doc.SetRoot("reservations"));
  ReservationBook reloaded;
  ASSERT_TRUE(reloaded.LoadXml(*doc.root()).ok());
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.All()[0]->daily);
  EXPECT_DOUBLE_EQ(reloaded.ReservedCpu(
                       "DBServer2",
                       SimTime::Start() + Duration::Days(5) +
                           Duration::Hours(1),
                       Duration::Zero()),
                   6.0);
}

TEST(ReservationBookTest, AddRemoveAggregate) {
  ReservationBook book;
  auto a = book.Add(MakeReservation("big", 2, 4, 0, 120));
  auto b = book.Add(MakeReservation("big", 1, 2, 0, 120));
  auto c = book.Add(MakeReservation("small", 0.5, 1, 0, 120));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(book.size(), 3u);
  Duration la = Duration::Minutes(30);
  EXPECT_DOUBLE_EQ(book.ReservedCpu("big", Min(10), la), 3.0);
  EXPECT_DOUBLE_EQ(book.ReservedMemory("big", Min(10), la), 6.0);
  EXPECT_DOUBLE_EQ(book.ReservedCpu("small", Min(10), la), 0.5);
  EXPECT_DOUBLE_EQ(book.ReservedCpu("other", Min(10), la), 0.0);
  ASSERT_TRUE(book.Remove(*b).ok());
  EXPECT_DOUBLE_EQ(book.ReservedCpu("big", Min(10), la), 2.0);
  EXPECT_FALSE(book.Remove(*b).ok());
  EXPECT_FALSE(book.Add(MakeReservation("", 1, 1, 0, 10)).ok());
}

TEST(ReservationBookTest, ExpireBefore) {
  ReservationBook book;
  ASSERT_TRUE(book.Add(MakeReservation("big", 1, 1, 0, 60)).ok());
  ASSERT_TRUE(book.Add(MakeReservation("big", 1, 1, 0, 240)).ok());
  book.ExpireBefore(Min(120));
  EXPECT_EQ(book.size(), 1u);
  EXPECT_EQ(book.All()[0]->until, Min(240));
}

TEST(ReservationBookTest, XmlRoundTrip) {
  ReservationBook book;
  ASSERT_TRUE(book.Add(MakeReservation("DBServer2", 4, 6, 600, 900)).ok());
  ASSERT_TRUE(book.Add(MakeReservation("Blade9", 1, 1.5, 0, 120)).ok());
  xml::Document doc;
  book.SaveXml(doc.SetRoot("reservations"));
  ReservationBook reloaded;
  ASSERT_TRUE(reloaded.LoadXml(*doc.root()).ok());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_DOUBLE_EQ(
      reloaded.ReservedCpu("DBServer2", Min(700), Duration::Zero()), 4.0);
  EXPECT_DOUBLE_EQ(
      reloaded.ReservedMemory("Blade9", Min(60), Duration::Zero()), 1.5);
}

TEST(ReservationBookTest, LoadXmlRejectsBadEntries) {
  auto doc = xml::Document::Parse(
      "<reservations><reservation task=\"x\" server=\"s\" cpuWu=\"1\" "
      "fromMinutes=\"10\" untilMinutes=\"5\"/></reservations>");
  ASSERT_TRUE(doc.ok());
  ReservationBook book;
  EXPECT_FALSE(book.LoadXml(*doc->root()).ok());
}

// --- Controller integration ----------------------------------------------

class ReservedControllerTest : public ::testing::Test {
 protected:
  class FlatView : public LoadView {
   public:
    double ServerCpuLoad(std::string_view) const override { return 0.1; }
    double ServerMemLoad(std::string_view) const override { return 0.1; }
    double InstanceLoad(infra::InstanceId) const override { return 0.9; }
    double ServiceLoad(std::string_view) const override { return 0.9; }
  };

  void SetUp() override {
    infra::ServerSpec small;
    small.name = "small";
    small.performance_index = 2;
    small.memory_gb = 4;
    infra::ServerSpec big = small;
    big.name = "big";
    big.performance_index = 9;
    big.memory_gb = 12;
    ASSERT_TRUE(cluster_.AddServer(small).ok());
    ASSERT_TRUE(cluster_.AddServer(big).ok());
    infra::ServiceSpec app;
    app.name = "app";
    app.memory_footprint_gb = 1.0;
    app.min_instances = 1;
    app.max_instances = 4;
    app.allowed_actions = {infra::ActionType::kScaleOut};
    ASSERT_TRUE(cluster_.AddService(app).ok());
    ASSERT_TRUE(cluster_.PlaceInstance("app", "small", SimTime::Start())
                    .ok());
    executor_ = std::make_unique<infra::ActionExecutor>(&cluster_,
                                                        &simulator_);
    auto controller = Controller::Create(&cluster_, executor_.get(),
                                         &view_);
    ASSERT_TRUE(controller.ok());
    controller_ = std::make_unique<Controller>(std::move(*controller));
    controller_->set_reservations(&book_, Duration::Hours(1));
  }

  infra::Cluster cluster_;
  sim::Simulator simulator_;
  FlatView view_;
  ReservationBook book_;
  std::unique_ptr<infra::ActionExecutor> executor_;
  std::unique_ptr<Controller> controller_;
};

TEST_F(ReservedControllerTest, ReservedCpuDemotesTheHost) {
  infra::Action probe{infra::ActionType::kScaleOut, "app", 0, "small", ""};
  auto before = controller_->RankServers(probe, Min(0));
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->empty());
  EXPECT_EQ(before->front().server, "big");
  double unreserved_score = before->front().score;

  // Reserve most of "big"'s CPU for an imminent batch task.
  ASSERT_TRUE(book_.Add(MakeReservation("big", 8.0, 0.0, 30, 240)).ok());
  // (memory 0 would fail validation; reserve a token amount)
  book_ = ReservationBook();
  ASSERT_TRUE(book_.Add(MakeReservation("big", 8.0, 0.5, 30, 240)).ok());
  auto after = controller_->RankServers(probe, Min(0));
  ASSERT_TRUE(after.ok());
  for (const ScoredServer& host : *after) {
    if (host.server == "big") {
      EXPECT_LT(host.score, unreserved_score);
    }
  }
}

TEST_F(ReservedControllerTest, ReservedMemoryBlocksPlacement) {
  // Reserve all but 0.5 GB of "big": the 1-GB app no longer fits.
  ASSERT_TRUE(
      book_.Add(MakeReservation("big", 0.0, 11.5, 0, 600)).ok());
  infra::Action probe{infra::ActionType::kScaleOut, "app", 0, "small", ""};
  auto hosts = controller_->RankServers(probe, Min(0));
  ASSERT_TRUE(hosts.ok());
  for (const ScoredServer& host : *hosts) {
    EXPECT_NE(host.server, "big");
  }
}

TEST_F(ReservedControllerTest, ExpiredReservationFreesTheHost) {
  ASSERT_TRUE(book_.Add(MakeReservation("big", 0.0, 11.5, 0, 60)).ok());
  infra::Action probe{infra::ActionType::kScaleOut, "app", 0, "small", ""};
  auto during = controller_->RankServers(probe, Min(0));
  ASSERT_TRUE(during.ok());
  for (const ScoredServer& host : *during) EXPECT_NE(host.server, "big");
  // Two hours later (beyond window + lookahead) "big" is usable again.
  auto after = controller_->RankServers(probe, Min(180));
  ASSERT_TRUE(after.ok());
  bool found_big = false;
  for (const ScoredServer& host : *after) {
    if (host.server == "big") found_big = true;
  }
  EXPECT_TRUE(found_big);
}

}  // namespace
}  // namespace autoglobe::controller
