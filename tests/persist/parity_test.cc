// The tentpole property of the checkpoint subsystem: checkpoint at
// tick T, kill the process, restore, run to the end — and the final
// state is *bit-identical* to an uninterrupted run. Verified here by
// serializing the final state of both runs and comparing every
// section byte for byte, across the three paper scenarios, both rng
// planes, with and without a fault plan.

#include <gtest/gtest.h>

#include <algorithm>

#include "autoglobe/capacity.h"
#include "autoglobe/landscape.h"
#include "common/thread_pool.h"
#include "faults/plan.h"
#include "persist/runner_checkpoint.h"

namespace autoglobe {
namespace {

using Sections = std::vector<std::pair<std::string, std::string>>;

Sections SectionsOf(const SimulationRunner& runner) {
  Sections sections;
  Status status = runner.SaveStateSections(&sections);
  EXPECT_TRUE(status.ok()) << status;
  return sections;
}

void ExpectSectionsEqual(const Sections& uninterrupted,
                         const Sections& restored) {
  // Guard against a vacuous pass: a failed SaveStateSections yields an
  // empty list, and empty == empty proves nothing.
  ASSERT_GE(uninterrupted.size(), 11u);
  ASSERT_EQ(uninterrupted.size(), restored.size());
  for (size_t i = 0; i < uninterrupted.size(); ++i) {
    EXPECT_EQ(uninterrupted[i].first, restored[i].first) << "section " << i;
    if (uninterrupted[i].second == restored[i].second) continue;
    const std::string& a = uninterrupted[i].second;
    const std::string& b = restored[i].second;
    size_t first_diff = 0;
    while (first_diff < std::min(a.size(), b.size()) &&
           a[first_diff] == b[first_diff]) {
      ++first_diff;
    }
    ADD_FAILURE() << "section \"" << uninterrupted[i].first
                  << "\" differs: sizes " << a.size() << " vs " << b.size()
                  << ", first differing byte at offset " << first_diff;
  }
}

RunnerConfig ParityConfig(Scenario scenario, RngKind rng, bool faults,
                          uint64_t seed) {
  RunnerConfig config = MakeScenarioConfig(scenario, 1.15, seed);
  config.duration = Duration::Hours(4);
  config.rng_kind = rng;
  if (faults) {
    Landscape landscape = MakePaperLandscape(scenario);
    std::vector<std::string> servers;
    std::vector<std::string> services;
    for (const infra::ServerSpec& server : landscape.servers) {
      servers.push_back(server.name);
    }
    for (const infra::ServiceSpec& service : landscape.services) {
      services.push_back(service.name);
    }
    std::sort(servers.begin(), servers.end());
    std::sort(services.begin(), services.end());
    faults::RandomFaultSpec spec;
    spec.instance_crashes_per_hour = 1.0;
    spec.server_failures_per_day = 6.0;
    spec.server_recovery = Duration::Hours(1);
    spec.action_failure_windows_per_day = 6.0;
    spec.action_failure_duration = Duration::Minutes(5);
    spec.monitor_dropouts_per_day = 6.0;
    spec.monitor_dropout_duration = Duration::Minutes(5);
    config.fault_plan = faults::FaultPlan::Generate(
        spec, config.duration, seed, servers, services);
  }
  return config;
}

/// Runs the scenario twice — once uninterrupted, once killed and
/// restored at every crash point — and requires byte-identical final
/// state.
void CheckParity(Scenario scenario, RngKind rng, bool faults,
                 uint64_t seed) {
  SCOPED_TRACE(std::string(ScenarioName(scenario)) + "/" +
               std::string(RngKindName(rng)) +
               (faults ? "/faults" : "/clean") + "/seed " +
               std::to_string(seed));
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = ParityConfig(scenario, rng, faults, seed);

  auto uninterrupted = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();
  ASSERT_TRUE((*uninterrupted)->Run().ok());

  persist::CrashPlan plan;
  plan.crash_at = {SimTime::Start() + Duration::Minutes(90),
                   SimTime::Start() + Duration::Minutes(165)};
  auto survived = persist::RunWithCrashes(landscape, config, plan);
  ASSERT_TRUE(survived.ok()) << survived.status();

  ExpectSectionsEqual(SectionsOf(**uninterrupted), SectionsOf(**survived));
  EXPECT_EQ((*uninterrupted)->metrics().triggers,
            (*survived)->metrics().triggers);
  EXPECT_EQ((*uninterrupted)->metrics().actions_executed,
            (*survived)->metrics().actions_executed);
  EXPECT_EQ((*uninterrupted)->messages(), (*survived)->messages());
}

TEST(CheckpointParityTest, StaticScenario) {
  CheckParity(Scenario::kStatic, RngKind::kXoshiro, false, 42);
  CheckParity(Scenario::kStatic, RngKind::kPhilox, false, 42);
  CheckParity(Scenario::kStatic, RngKind::kXoshiro, true, 42);
  CheckParity(Scenario::kStatic, RngKind::kPhilox, true, 42);
}

TEST(CheckpointParityTest, ConstrainedMobilityScenario) {
  CheckParity(Scenario::kConstrainedMobility, RngKind::kXoshiro, false, 7);
  CheckParity(Scenario::kConstrainedMobility, RngKind::kPhilox, false, 7);
  CheckParity(Scenario::kConstrainedMobility, RngKind::kXoshiro, true, 7);
  CheckParity(Scenario::kConstrainedMobility, RngKind::kPhilox, true, 7);
}

TEST(CheckpointParityTest, FullMobilityScenario) {
  CheckParity(Scenario::kFullMobility, RngKind::kXoshiro, false, 21);
  CheckParity(Scenario::kFullMobility, RngKind::kPhilox, false, 21);
  CheckParity(Scenario::kFullMobility, RngKind::kXoshiro, true, 21);
  CheckParity(Scenario::kFullMobility, RngKind::kPhilox, true, 21);
}

TEST(CheckpointParityTest, ParityHoldsUnderParallelExecution) {
  // Four parity checks at once: checkpointing owns no global state, so
  // runs in a worker pool behave exactly like sequential ones.
  ThreadPool pool(4);
  const uint64_t seeds[] = {101, 102, 103, 104};
  pool.ParallelFor(4, [&seeds](size_t i) {
    CheckParity(Scenario::kFullMobility, RngKind::kPhilox, true, seeds[i]);
  });
}

TEST(CheckpointParityTest, LearnerStateSurvivesRestore) {
  // The fuzzy Q-learner carries RNG, pending decisions, eligibility
  // traces, and baselines — all mid-run state SaveWeights does not
  // cover. Parity across a crash proves the full picture round-trips.
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config =
      ParityConfig(Scenario::kFullMobility, RngKind::kXoshiro, false, 11);
  config.strategy.kind = strategy::StrategyKind::kFuzzyQLearning;

  auto uninterrupted = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();
  ASSERT_TRUE((*uninterrupted)->Run().ok());

  persist::CrashPlan plan;
  plan.crash_at = {SimTime::Start() + Duration::Minutes(100)};
  auto survived = persist::RunWithCrashes(landscape, config, plan);
  ASSERT_TRUE(survived.ok()) << survived.status();
  ExpectSectionsEqual(SectionsOf(**uninterrupted), SectionsOf(**survived));
  EXPECT_EQ((*uninterrupted)->metrics().strategy_weight_updates,
            (*survived)->metrics().strategy_weight_updates);
}

TEST(CheckpointParityTest, CrashDuringInFlightRecoveryEscalation) {
  // Chaos extension: a server fails at 2 h; recovery runs its backoff
  // timers and boot watchdogs right after. Killing the process in the
  // middle of that escalation must neither lose nor double-count the
  // episode — the restored run finishes with balanced accounting and
  // the exact state of an uninterrupted one.
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  RunnerConfig config =
      ParityConfig(Scenario::kFullMobility, RngKind::kXoshiro, false, 33);
  faults::FaultPlan fault_plan;
  fault_plan.events.push_back({SimTime::Start() + Duration::Hours(2),
                               faults::FaultKind::kServerFailure, "Blade3",
                               Duration::Hours(1)});
  config.fault_plan = fault_plan;

  auto uninterrupted = SimulationRunner::Create(landscape, config);
  ASSERT_TRUE(uninterrupted.ok()) << uninterrupted.status();
  ASSERT_TRUE((*uninterrupted)->Run().ok());

  persist::CrashPlan plan;
  plan.crash_at = {SimTime::Start() + Duration::Hours(2) +
                   Duration::Minutes(2)};
  auto survived = persist::RunWithCrashes(landscape, config, plan);
  ASSERT_TRUE(survived.ok()) << survived.status();

  ExpectSectionsEqual(SectionsOf(**uninterrupted), SectionsOf(**survived));
  faults::AvailabilityReport report = (*survived)->availability_report();
  EXPECT_EQ(report.episodes,
            report.recovered + report.abandoned + report.open);
  EXPECT_GT(report.episodes, 0);
  EXPECT_EQ(report.episodes, (*uninterrupted)->availability_report().episodes);
}

}  // namespace
}  // namespace autoglobe
