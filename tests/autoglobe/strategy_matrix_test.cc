#include "autoglobe/strategy_matrix.h"

#include <gtest/gtest.h>

#include "autoglobe/batch_runner.h"

namespace autoglobe {
namespace {

StrategyMatrixOptions SmallMatrix() {
  StrategyMatrixOptions options;
  options.user_scale = 1.2;
  options.run_duration = Duration::Hours(6);
  options.warmup = Duration::Hours(1);
  options.seeds = {42, 43};
  options.strategies = {strategy::StrategyKind::kStaticFuzzy,
                        strategy::StrategyKind::kFuzzyQLearning};
  options.scenarios = {Scenario::kStatic,
                       Scenario::kConstrainedMobility};
  return options;
}

bool CellsIdentical(const StrategyMatrixCell& a,
                    const StrategyMatrixCell& b) {
  return a.strategy == b.strategy && a.scenario == b.scenario &&
         a.faulted == b.faulted && a.seed == b.seed &&
         a.metrics.triggers == b.metrics.triggers &&
         a.metrics.actions_executed == b.metrics.actions_executed &&
         a.metrics.overload_server_minutes ==
             b.metrics.overload_server_minutes &&
         a.metrics.sla_violation_minutes ==
             b.metrics.sla_violation_minutes &&
         a.metrics.average_cpu_load == b.metrics.average_cpu_load &&
         a.metrics.oscillations == b.metrics.oscillations &&
         a.sla_violation_episodes == b.sla_violation_episodes;
}

TEST(StrategyMatrixTest, ResultIsBitIdenticalAtAnyParallelism) {
  StrategyMatrixOptions sequential = SmallMatrix();
  sequential.parallelism = 1;
  StrategyMatrixOptions parallel = SmallMatrix();
  parallel.parallelism = 4;

  auto a = RunStrategyMatrix(sequential);
  auto b = RunStrategyMatrix(parallel);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->cells.size(), b->cells.size());
  for (size_t i = 0; i < a->cells.size(); ++i) {
    EXPECT_TRUE(CellsIdentical(a->cells[i], b->cells[i])) << "cell " << i;
  }
  EXPECT_EQ(RenderStrategyMatrix(*a), RenderStrategyMatrix(*b));
}

TEST(StrategyMatrixTest, BatchLanesMatchScalarCells) {
  StrategyMatrixOptions batched = SmallMatrix();
  batched.batch_lanes = 2;
  StrategyMatrixOptions scalar = SmallMatrix();
  scalar.batch_lanes = 0;

  auto a = RunStrategyMatrix(batched);
  auto b = RunStrategyMatrix(scalar);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ASSERT_EQ(a->cells.size(), b->cells.size());
  bool any_batched = false;
  for (size_t i = 0; i < a->cells.size(); ++i) {
    any_batched = any_batched || a->cells[i].batched;
    EXPECT_FALSE(b->cells[i].batched);
    EXPECT_TRUE(CellsIdentical(a->cells[i], b->cells[i])) << "cell " << i;
  }
  // The static-scenario static-strategy column is the eligible one.
  EXPECT_TRUE(any_batched);
}

TEST(StrategyMatrixTest, OnlyStaticUnfaultedStaticScenarioIsBatchEligible) {
  StrategyMatrixOptions options = SmallMatrix();
  EXPECT_TRUE(BatchRunner::CheckEligibility(
                  MakeStrategyCellConfig(options,
                                         strategy::StrategyKind::kStaticFuzzy,
                                         Scenario::kStatic, false, 42))
                  .ok());
  EXPECT_FALSE(
      BatchRunner::CheckEligibility(
          MakeStrategyCellConfig(options,
                                 strategy::StrategyKind::kFuzzyQLearning,
                                 Scenario::kStatic, false, 42))
          .ok());
  EXPECT_FALSE(BatchRunner::CheckEligibility(
                   MakeStrategyCellConfig(
                       options, strategy::StrategyKind::kStaticFuzzy,
                       Scenario::kConstrainedMobility, false, 42))
                   .ok());
}

TEST(StrategyMatrixTest, FaultCellsCarryAvailabilityNumbers) {
  StrategyMatrixOptions options = SmallMatrix();
  options.strategies = {strategy::StrategyKind::kStaticFuzzy};
  options.scenarios = {Scenario::kConstrainedMobility};
  options.seeds = {42};
  options.run_duration = Duration::Hours(4);
  faults::FaultPlan plan;
  plan.events.push_back(faults::FaultEvent{
      SimTime::Start() + Duration::Hours(2), faults::FaultKind::kInstanceCrash,
      "FI", Duration::Zero()});
  options.fault_plan = plan;

  auto result = RunStrategyMatrix(options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->cells.size(), 2u);  // unfaulted + faulted
  EXPECT_FALSE(result->cells[0].faulted);
  EXPECT_EQ(result->cells[0].mttr_minutes_mean, 0.0);
  EXPECT_TRUE(result->cells[1].faulted);
  EXPECT_GT(result->cells[1].availability, 0.0);
  EXPECT_LE(result->cells[1].availability, 1.0);
  EXPECT_GT(result->cells[1].mttr_minutes_mean, 0.0);
}

TEST(StrategyMatrixTest, RowsAggregateSeedMeans) {
  StrategyMatrixOptions options = SmallMatrix();
  auto result = RunStrategyMatrix(options);
  ASSERT_TRUE(result.ok()) << result.status();
  // 2 strategies x 2 scenarios, no faults = 4 rows of 2 seeds.
  ASSERT_EQ(result->rows.size(), 4u);
  for (const StrategyMatrixRow& row : result->rows) {
    EXPECT_EQ(row.seeds, 2);
  }
  std::string rendered = RenderStrategyMatrix(*result);
  EXPECT_NE(rendered.find("static-fuzzy"), std::string::npos);
  EXPECT_NE(rendered.find("fuzzy-qlearning"), std::string::npos);
}

TEST(StrategyMatrixTest, RejectsEmptyAxes) {
  StrategyMatrixOptions options = SmallMatrix();
  options.seeds.clear();
  EXPECT_FALSE(RunStrategyMatrix(options).ok());
}

}  // namespace
}  // namespace autoglobe
