#include "obs/trace.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace autoglobe::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TraceEventKindTest, NamesAndCategories) {
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kEventDispatch),
            "event_dispatch");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kTriggerConfirmed),
            "trigger_confirmed");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kDecision), "decision");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kMarker), "marker");

  EXPECT_EQ(TraceEventCategory(TraceEventKind::kEventDispatch), "sim");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kTriggerConfirmed),
            "monitor");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kActionExecuted),
            "executor");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kActionFailed), "executor");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kInstanceLifecycle),
            "executor");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kDecision), "controller");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kAlert), "controller");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kSlaViolation), "sla");
  EXPECT_EQ(TraceEventCategory(TraceEventKind::kMarker), "app");
}

TEST(TraceBufferTest, RecordsChronologicallyBelowCapacity) {
  TraceBuffer buffer(8);
  buffer.Record(SimTime::FromSeconds(10), TraceEventKind::kMarker, "a");
  buffer.Record(SimTime::FromSeconds(20), TraceEventKind::kMarker, "b",
                "detail-b", 42);
  buffer.Record(SimTime::FromSeconds(30), TraceEventKind::kDecision, "c");

  EXPECT_EQ(buffer.capacity(), 8u);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.total_recorded(), 3u);
  EXPECT_EQ(buffer.dropped(), 0u);

  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[1].detail, "detail-b");
  EXPECT_EQ(events[1].value, 42);
  EXPECT_EQ(events[2].at.seconds(), 30);
  EXPECT_EQ(events[2].kind, TraceEventKind::kDecision);
}

TEST(TraceBufferTest, OverwritesOldestWhenFull) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    buffer.Record(SimTime::FromSeconds(i), TraceEventKind::kMarker, "e",
                  std::to_string(i), i);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_recorded(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);

  // The four most recent survive, oldest first.
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].value, 6 + i);
    EXPECT_EQ(events[i].detail, std::to_string(6 + i));
  }
}

TEST(TraceBufferTest, WraparoundAtExactCapacityMultiple) {
  TraceBuffer buffer(3);
  for (int i = 0; i < 6; ++i) {
    buffer.Record(SimTime::FromSeconds(i), TraceEventKind::kMarker, "e",
                  {}, i);
  }
  // next_ is back at slot 0: the retained window is values 3..5.
  std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].value, 3);
  EXPECT_EQ(events[2].value, 5);
  EXPECT_EQ(buffer.dropped(), 3u);
}

TEST(TraceBufferTest, CapacityClampsToAtLeastOne) {
  TraceBuffer buffer(0);
  EXPECT_EQ(buffer.capacity(), 1u);
  buffer.Record(SimTime::Start(), TraceEventKind::kMarker, "only");
  buffer.Record(SimTime::Start(), TraceEventKind::kMarker, "kept");
  ASSERT_EQ(buffer.Events().size(), 1u);
  EXPECT_EQ(buffer.Events()[0].name, "kept");
}

TEST(TraceBufferTest, ClearResetsState) {
  TraceBuffer buffer(2);
  buffer.Record(SimTime::Start(), TraceEventKind::kMarker, "x");
  buffer.Record(SimTime::Start(), TraceEventKind::kMarker, "y");
  buffer.Record(SimTime::Start(), TraceEventKind::kMarker, "z");
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.total_recorded(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_TRUE(buffer.Events().empty());
}

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("cr\rhere"), "cr\\rhere");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(TraceExportTest, JsonlGolden) {
  TraceBuffer buffer(4);
  buffer.Record(SimTime::FromSeconds(60), TraceEventKind::kMarker, "boot",
                "a\"b", 7);
  buffer.Record(SimTime::FromSeconds(120),
                TraceEventKind::kTriggerConfirmed, "serviceOverloaded",
                "OS", -1);

  std::string path = ::testing::TempDir() + "obs_trace_test.jsonl";
  ASSERT_TRUE(ExportJsonl(buffer, path).ok());
  EXPECT_EQ(ReadFile(path),
            "{\"t\": 60, \"kind\": \"marker\", \"name\": \"boot\", "
            "\"detail\": \"a\\\"b\", \"value\": 7}\n"
            "{\"t\": 120, \"kind\": \"trigger_confirmed\", "
            "\"name\": \"serviceOverloaded\", \"detail\": \"OS\", "
            "\"value\": -1}\n");
}

TEST(TraceExportTest, ChromeTraceGolden) {
  TraceBuffer buffer(4);
  buffer.Record(SimTime::FromSeconds(60), TraceEventKind::kDecision,
                "decide", "d", 2);

  std::string path = ::testing::TempDir() + "obs_trace_test_chrome.json";
  ASSERT_TRUE(ExportChromeTrace(buffer, path).ok());
  EXPECT_EQ(
      ReadFile(path),
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"autoglobe simulation\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 1, \"args\": {\"name\": \"sim\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 2, \"args\": {\"name\": \"monitor\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 3, \"args\": {\"name\": \"executor\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 4, \"args\": {\"name\": \"controller\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 5, \"args\": {\"name\": \"sla\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 6, \"args\": {\"name\": \"app\"}},\n"
      "{\"name\": \"decide\", \"cat\": \"controller\", \"ph\": \"i\", "
      "\"s\": \"t\", \"ts\": 60000, \"pid\": 1, \"tid\": 4, "
      "\"args\": {\"detail\": \"d\", \"value\": 2, \"sim_time\": "
      "\"d0 00:01\"}}\n"
      "]}\n");
}

TEST(TraceExportTest, UnwritablePathReturnsError) {
  TraceBuffer buffer(2);
  EXPECT_FALSE(ExportJsonl(buffer, "/nonexistent-dir/x.jsonl").ok());
  EXPECT_FALSE(
      ExportChromeTrace(buffer, "/nonexistent-dir/x.json").ok());
}

}  // namespace
}  // namespace autoglobe::obs
