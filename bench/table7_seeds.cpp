// Seed-robustness companion to table7_capacity: the Table 7 sweep
// repeated under different random seeds (demand noise and failure
// streams). The paper's qualitative claim — static < CM < FM with
// roughly +15 % / +35 % — must not hinge on one lucky noise
// trajectory; measured capacities may wobble by one 5 % sweep step.

#include <cstdio>

#include "autoglobe/capacity.h"
#include "common/logging.h"

using namespace autoglobe;

int main() {
  std::printf("# Table 7 across random seeds (paper: 100 / 115 / 135)\n\n");
  std::printf("%-8s %8s %6s %6s   ordering\n", "seed", "static", "CM",
              "FM");
  bool all_ordered = true;
  for (uint64_t seed : {42ULL, 7ULL, 2026ULL}) {
    double capacity[3] = {0, 0, 0};
    int i = 0;
    for (Scenario scenario :
         {Scenario::kStatic, Scenario::kConstrainedMobility,
          Scenario::kFullMobility}) {
      CapacityOptions options;
      options.seed = seed;
      auto result = FindCapacity(scenario, options);
      AG_CHECK_OK(result.status());
      capacity[i++] = result->max_scale;
    }
    bool ordered = capacity[0] < capacity[1] && capacity[1] < capacity[2];
    all_ordered = all_ordered && ordered;
    std::printf("%-8llu %7.0f%% %5.0f%% %5.0f%%   %s\n",
                static_cast<unsigned long long>(seed),
                capacity[0] * 100, capacity[1] * 100, capacity[2] * 100,
                ordered ? "holds" : "VIOLATED");
  }
  std::printf("\n# static < CM < FM across all seeds: %s\n",
              all_ordered ? "HOLDS" : "VIOLATED");
  return all_ordered ? 0 : 1;
}
