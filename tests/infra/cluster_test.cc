#include "infra/cluster.h"

#include <gtest/gtest.h>

namespace autoglobe::infra {
namespace {

ServerSpec MakeServer(const std::string& name, double pi,
                      double memory_gb) {
  ServerSpec spec;
  spec.name = name;
  spec.performance_index = pi;
  spec.num_cpus = 1;
  spec.memory_gb = memory_gb;
  return spec;
}

ServiceSpec MakeService(const std::string& name, double footprint = 1.0,
                        int min_instances = 0, int max_instances = 8) {
  ServiceSpec spec;
  spec.name = name;
  spec.memory_footprint_gb = footprint;
  spec.min_instances = min_instances;
  spec.max_instances = max_instances;
  return spec;
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.AddServer(MakeServer("small", 1, 2)).ok());
    ASSERT_TRUE(cluster_.AddServer(MakeServer("big", 9, 12)).ok());
    ASSERT_TRUE(cluster_.AddService(MakeService("app", 1.0, 0, 8)).ok());
  }
  Cluster cluster_;
  SimTime t0_ = SimTime::Start();
};

TEST_F(ClusterTest, AddDuplicatesRejected) {
  EXPECT_FALSE(cluster_.AddServer(MakeServer("small", 1, 2)).ok());
  EXPECT_FALSE(cluster_.AddService(MakeService("app")).ok());
}

TEST_F(ClusterTest, FindSucceedsAndFails) {
  EXPECT_TRUE(cluster_.FindServer("big").ok());
  EXPECT_FALSE(cluster_.FindServer("huge").ok());
  EXPECT_TRUE(cluster_.FindService("app").ok());
  EXPECT_FALSE(cluster_.FindService("gone").ok());
  EXPECT_EQ(cluster_.Servers().size(), 2u);
  EXPECT_EQ(cluster_.Services().size(), 1u);
}

TEST_F(ClusterTest, PlaceAndQueryInstance) {
  auto id = cluster_.PlaceInstance("app", "small", t0_);
  ASSERT_TRUE(id.ok()) << id.status();
  auto instance = cluster_.FindInstance(*id);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ((*instance)->service, "app");
  EXPECT_EQ((*instance)->server, "small");
  EXPECT_EQ((*instance)->state, InstanceState::kRunning);
  EXPECT_FALSE((*instance)->virtual_ip.empty());
  EXPECT_EQ(cluster_.InstancesOn("small").size(), 1u);
  EXPECT_EQ(cluster_.InstancesOf("app").size(), 1u);
  EXPECT_EQ(cluster_.ActiveInstanceCount("app"), 1);
  EXPECT_DOUBLE_EQ(cluster_.UsedMemoryGb("small"), 1.0);
}

TEST_F(ClusterTest, VirtualIpsAreUniquePerInstance) {
  auto a = cluster_.PlaceInstance("app", "small", t0_);
  auto b = cluster_.PlaceInstance("app", "big", t0_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE((*cluster_.FindInstance(*a))->virtual_ip,
            (*cluster_.FindInstance(*b))->virtual_ip);
}

TEST_F(ClusterTest, OneInstancePerServerPerService) {
  ASSERT_TRUE(cluster_.PlaceInstance("app", "small", t0_).ok());
  auto second = cluster_.PlaceInstance("app", "small", t0_);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClusterTest, MemoryCapacityEnforced) {
  ASSERT_TRUE(cluster_.AddService(MakeService("fat", 1.5)).ok());
  ASSERT_TRUE(cluster_.PlaceInstance("app", "small", t0_).ok());  // 1.0 GB
  // 1.0 + 1.5 > 2 GB.
  auto placed = cluster_.PlaceInstance("fat", "small", t0_);
  EXPECT_FALSE(placed.ok());
  EXPECT_EQ(placed.status().code(), StatusCode::kResourceExhausted);
  // Fits on the big host.
  EXPECT_TRUE(cluster_.PlaceInstance("fat", "big", t0_).ok());
}

TEST_F(ClusterTest, MinPerformanceIndexEnforced) {
  ServiceSpec db = MakeService("db", 4.0);
  db.min_performance_index = 5;
  ASSERT_TRUE(cluster_.AddService(db).ok());
  EXPECT_FALSE(cluster_.PlaceInstance("db", "small", t0_).ok());
  EXPECT_TRUE(cluster_.PlaceInstance("db", "big", t0_).ok());
}

TEST_F(ClusterTest, ExclusivenessCutsBothWays) {
  ServiceSpec db = MakeService("db", 4.0);
  db.exclusive = true;
  ASSERT_TRUE(cluster_.AddService(db).ok());
  // app occupies "small": exclusive db cannot join.
  ASSERT_TRUE(cluster_.PlaceInstance("app", "small", t0_).ok());
  EXPECT_FALSE(cluster_.PlaceInstance("db", "small", t0_).ok());
  // db occupies "big": nothing else may join.
  ASSERT_TRUE(cluster_.PlaceInstance("db", "big", t0_).ok());
  EXPECT_FALSE(cluster_.PlaceInstance("app", "big", t0_).ok());
}

TEST_F(ClusterTest, MaxInstancesEnforced) {
  ASSERT_TRUE(cluster_.AddService(MakeService("dual", 0.5, 0, 1)).ok());
  ASSERT_TRUE(cluster_.PlaceInstance("dual", "small", t0_).ok());
  auto second = cluster_.PlaceInstance("dual", "big", t0_);
  EXPECT_FALSE(second.ok());
}

TEST_F(ClusterTest, MinInstancesProtectsRemoval) {
  ASSERT_TRUE(cluster_.AddService(MakeService("core", 0.5, 1, 4)).ok());
  auto id = cluster_.PlaceInstance("core", "small", t0_);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(cluster_.RemoveInstance(*id).ok());
  // Without enforcement it is allowed (used by the stop action).
  EXPECT_TRUE(cluster_.RemoveInstance(*id, /*enforce_min=*/false).ok());
  EXPECT_EQ(cluster_.ActiveInstanceCount("core"), 0);
}

TEST_F(ClusterTest, MoveValidatesAndRelocates) {
  auto id = cluster_.PlaceInstance("app", "small", t0_);
  ASSERT_TRUE(id.ok());
  std::string old_ip = (*cluster_.FindInstance(*id))->virtual_ip;
  ASSERT_TRUE(cluster_.MoveInstance(*id, "big", t0_).ok());
  auto instance = cluster_.FindInstance(*id);
  EXPECT_EQ((*instance)->server, "big");
  // The instance keeps its service IP (it is re-bound, not re-issued).
  EXPECT_EQ((*instance)->virtual_ip, old_ip);
  EXPECT_TRUE(cluster_.InstancesOn("small").empty());
  // Moving to the same host is an error.
  EXPECT_FALSE(cluster_.MoveInstance(*id, "big", t0_).ok());
  EXPECT_FALSE(cluster_.MoveInstance(*id, "nonexistent", t0_).ok());
}

TEST_F(ClusterTest, MoveOfSingletonAtMaxInstancesIsAllowed) {
  // A move must not count the moving instance against maxInstances
  // (regression test: CI services have maxInstances = 1 and must
  // still be movable).
  ASSERT_TRUE(cluster_.AddService(MakeService("ci", 0.5, 1, 1)).ok());
  auto id = cluster_.PlaceInstance("ci", "small", t0_);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(cluster_.CanPlace("ci", "big", *id).ok());
  EXPECT_TRUE(cluster_.MoveInstance(*id, "big", t0_).ok());
}

TEST_F(ClusterTest, InstanceStateTransitions) {
  auto id = cluster_.PlaceInstance("app", "small", t0_,
                                   InstanceState::kStarting);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cluster_.RunningInstanceCount("app"), 0);
  EXPECT_EQ(cluster_.ActiveInstanceCount("app"), 1);
  ASSERT_TRUE(cluster_.SetInstanceState(*id, InstanceState::kRunning).ok());
  EXPECT_EQ(cluster_.RunningInstanceCount("app"), 1);
  ASSERT_TRUE(cluster_.SetInstanceState(*id, InstanceState::kFailed).ok());
  EXPECT_EQ(cluster_.ActiveInstanceCount("app"), 0);  // failed not active
  EXPECT_FALSE(cluster_.SetInstanceState(999, InstanceState::kRunning).ok());
}

TEST_F(ClusterTest, PrioritiesClampAndDefault) {
  EXPECT_DOUBLE_EQ(cluster_.ServicePriority("app"), 1.0);
  ASSERT_TRUE(cluster_.AdjustServicePriority("app", 2.0).ok());
  EXPECT_DOUBLE_EQ(cluster_.ServicePriority("app"), 2.0);
  ASSERT_TRUE(cluster_.AdjustServicePriority("app", 100.0).ok());
  EXPECT_DOUBLE_EQ(cluster_.ServicePriority("app"), 4.0);  // clamped
  ASSERT_TRUE(cluster_.AdjustServicePriority("app", 0.001).ok());
  EXPECT_DOUBLE_EQ(cluster_.ServicePriority("app"), 0.25);  // clamped
  EXPECT_FALSE(cluster_.AdjustServicePriority("app", -1.0).ok());
  EXPECT_FALSE(cluster_.AdjustServicePriority("ghost", 2.0).ok());
}

TEST_F(ClusterTest, ProtectionModeExpires) {
  SimTime now = SimTime::Start() + Duration::Hours(1);
  SimTime until = now + Duration::Minutes(30);
  cluster_.ProtectServer("small", until);
  cluster_.ProtectService("app", until);
  EXPECT_TRUE(cluster_.IsServerProtected("small", now));
  EXPECT_TRUE(cluster_.IsServiceProtected("app", now));
  EXPECT_TRUE(
      cluster_.IsServerProtected("small", until - Duration::Seconds(1)));
  EXPECT_FALSE(cluster_.IsServerProtected("small", until));
  EXPECT_FALSE(cluster_.IsServiceProtected("app", until));
  EXPECT_FALSE(cluster_.IsServerProtected("big", now));
}

TEST_F(ClusterTest, ProtectionExtendsButNeverShrinks) {
  SimTime now = SimTime::Start();
  cluster_.ProtectServer("small", now + Duration::Minutes(30));
  cluster_.ProtectServer("small", now + Duration::Minutes(10));  // shorter
  EXPECT_TRUE(
      cluster_.IsServerProtected("small", now + Duration::Minutes(20)));
}

// Property: the allocator never violates memory capacity whatever the
// placement order.
class ClusterMemoryProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterMemoryProperty, MemoryNeverOversubscribed) {
  Cluster cluster;
  ASSERT_TRUE(cluster.AddServer(MakeServer("s1", 1, 3.0)).ok());
  ASSERT_TRUE(cluster.AddServer(MakeServer("s2", 2, 5.0)).ok());
  uint64_t state = static_cast<uint64_t>(GetParam()) * 0x9e3779b9u + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster
                    .AddService(MakeService("svc" + std::to_string(i),
                                            0.5 + (next() % 20) / 10.0))
                    .ok());
  }
  for (int i = 0; i < 40; ++i) {
    std::string service = "svc" + std::to_string(next() % 6);
    std::string server = (next() % 2 == 0) ? "s1" : "s2";
    // Outcome does not matter; the invariant must hold regardless.
    (void)cluster.PlaceInstance(service, server, SimTime::Start());
  }
  EXPECT_LE(cluster.UsedMemoryGb("s1"), 3.0 + 1e-9);
  EXPECT_LE(cluster.UsedMemoryGb("s2"), 5.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterMemoryProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace autoglobe::infra
