// Head-to-head controller harness: fans the full
// (strategy x scenario x fault-plan x seed) matrix over a worker pool
// and writes BENCH_controllers.json — one record per cell plus the
// seed-mean rows — so "does the fuzzy Q-learner beat the paper's
// static rule base" is a diffable table across PRs.
//
// Usage: controller_matrix [parallelism] [seeds] [hours] [fault_plan.xml]
//                          [strategies] [scenarios]
//   parallelism  worker threads, 0 = hardware threads (default 0)
//   seeds        replication seeds per cell, >= 1 (default 3)
//   hours        simulated hours per cell (default 24)
//   fault_plan   fault battery for the faulted half of the matrix
//                (default data/fault_plan_flash.xml next to the repo
//                root; pass "" to skip fault cells)
//   strategies   comma-separated subset, e.g. "static,qlearn"
//                (default all three)
//   scenarios    comma-separated subset of static,cm,fm
//                (default all three)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "autoglobe/strategy_matrix.h"
#include "bench_report.h"
#include "common/logging.h"
#include "common/strings.h"

using namespace autoglobe;

namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) parts.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  StrategyMatrixOptions options;
  options.parallelism = argc > 1 ? std::atoi(argv[1]) : 0;
  int seeds = argc > 2 ? std::atoi(argv[2]) : 3;
  options.seeds.clear();
  for (int i = 0; i < std::max(1, seeds); ++i) {
    options.seeds.push_back(42 + static_cast<uint64_t>(i));
  }
  int hours = argc > 3 ? std::atoi(argv[3]) : 24;
  options.run_duration = Duration::Hours(std::max(1, hours));
  options.warmup = Duration::Hours(std::min(4, std::max(1, hours) / 2));

  std::string plan_path =
      argc > 4 ? argv[4] : std::string("data/fault_plan_flash.xml");
  if (!plan_path.empty()) {
    auto plan = faults::FaultPlan::LoadFile(plan_path);
    if (!plan.ok()) {
      // Benches run from the build tree too; try the repo-root layout.
      plan = faults::FaultPlan::LoadFile("../" + plan_path);
    }
    if (plan.ok()) {
      options.fault_plan = *std::move(plan);
    } else {
      std::fprintf(stderr,
                   "WARNING: no fault plan at %s (%s); matrix runs "
                   "without fault cells\n",
                   plan_path.c_str(),
                   std::string(plan.status().message()).c_str());
    }
  }

  if (argc > 5 && argv[5][0] != '\0') {
    options.strategies.clear();
    for (const std::string& name : SplitCsv(argv[5])) {
      auto kind = strategy::ParseStrategyKind(name);
      AG_CHECK_OK(kind.status());
      options.strategies.push_back(*kind);
    }
  }
  if (argc > 6 && argv[6][0] != '\0') {
    options.scenarios.clear();
    for (const std::string& name : SplitCsv(argv[6])) {
      auto scenario = ParseScenario(name);
      AG_CHECK_OK(scenario.status());
      options.scenarios.push_back(*scenario);
    }
  }

  std::printf("# Controller head-to-head: %zu strategies x %zu scenarios x "
              "%s x %zu seeds, %d h per cell\n\n",
              options.strategies.size(), options.scenarios.size(),
              options.fault_plan.has_value() ? "{none, flash-faults}"
                                             : "{none}",
              options.seeds.size(), std::max(1, hours));

  bench::WallTimer timer;
  auto result = RunStrategyMatrix(options);
  AG_CHECK_OK(result.status());
  double wall_seconds = timer.Seconds();

  std::printf("%s\n", RenderStrategyMatrix(*result).c_str());
  std::printf("# %zu cells in %.1f s wall\n", result->cells.size(),
              wall_seconds);

  std::vector<bench::BenchRecord> records;
  for (const StrategyMatrixCell& cell : result->cells) {
    bench::BenchRecord record;
    record.name = StrFormat(
        "cell/%s/%s/%s/seed%llu",
        std::string(strategy::StrategyKindName(cell.strategy)).c_str(),
        std::string(ScenarioName(cell.scenario)).c_str(),
        cell.faulted ? "faults" : "none",
        static_cast<unsigned long long>(cell.seed));
    record.wall_seconds = wall_seconds;
    record.extra["sla_violation_minutes"] = cell.metrics.sla_violation_minutes;
    record.extra["sla_violation_episodes"] =
        static_cast<double>(cell.sla_violation_episodes);
    record.extra["overload_server_minutes"] =
        cell.metrics.overload_server_minutes;
    record.extra["max_overload_streak_minutes"] =
        cell.metrics.max_overload_streak_minutes;
    record.extra["oscillations"] =
        static_cast<double>(cell.metrics.oscillations);
    record.extra["actions_executed"] =
        static_cast<double>(cell.metrics.actions_executed);
    record.extra["average_cpu_load"] = cell.metrics.average_cpu_load;
    record.extra["lost_work_wu"] = cell.metrics.lost_work_wu;
    record.extra["mttr_minutes_mean"] = cell.mttr_minutes_mean;
    record.extra["availability"] = cell.availability;
    record.extra["batched"] = cell.batched ? 1.0 : 0.0;
    record.extra["reward_updates"] =
        static_cast<double>(cell.metrics.strategy_reward_updates);
    record.extra["weight_updates"] =
        static_cast<double>(cell.metrics.strategy_weight_updates);
    records.push_back(std::move(record));
  }
  for (const StrategyMatrixRow& row : result->rows) {
    bench::BenchRecord record;
    record.name = StrFormat(
        "row/%s/%s/%s",
        std::string(strategy::StrategyKindName(row.strategy)).c_str(),
        std::string(ScenarioName(row.scenario)).c_str(),
        row.faulted ? "faults" : "none");
    record.wall_seconds = wall_seconds;
    record.extra["seeds"] = static_cast<double>(row.seeds);
    record.extra["sla_violation_minutes"] = row.sla_violation_minutes;
    record.extra["sla_violation_episodes"] = row.sla_violation_episodes;
    record.extra["overload_server_minutes"] = row.overload_server_minutes;
    record.extra["max_overload_streak_minutes"] =
        row.max_overload_streak_minutes;
    record.extra["oscillations"] = row.oscillations;
    record.extra["actions_executed"] = row.actions_executed;
    record.extra["average_cpu_load"] = row.average_cpu_load;
    record.extra["lost_work_wu"] = row.lost_work_wu;
    record.extra["mttr_minutes_mean"] = row.mttr_minutes_mean;
    record.extra["availability"] = row.availability;
    records.push_back(std::move(record));
  }
  bench::WriteBenchJson("BENCH_controllers.json", records);
  return 0;
}
