#ifndef AUTOGLOBE_FUZZY_MEMBERSHIP_H_
#define AUTOGLOBE_FUZZY_MEMBERSHIP_H_

#include <array>
#include <string>
#include <vector>

#include "common/result.h"

namespace autoglobe::fuzzy {

/// A piecewise-linear membership function mu: R -> [0, 1], the
/// building block of fuzzy sets (Zadeh). The paper uses trapezoid
/// memberships (Figure 3); triangles and ramps are degenerate
/// trapezoids and singletons are provided for crisp terms.
///
/// All factory functions validate their breakpoints and return a
/// ParseError on violation (the XML loader funnels user input here).
class MembershipFunction {
 public:
  enum class Shape {
    kTrapezoid,  // 0 below a, rises a..b, 1 in b..c, falls c..d, 0 above
    kTriangle,   // trapezoid with b == c
    kRampUp,     // 0 below a, rises a..b, 1 above b
    kRampDown,   // 1 below a, falls a..b, 0 above b
    kConstant,   // constant value params[0] everywhere
    kSingleton,  // 1 exactly at a, else 0
  };

  /// Default: constant 0 (empty fuzzy set).
  MembershipFunction() : shape_(Shape::kConstant), params_{0, 0, 0, 0} {}

  static Result<MembershipFunction> Trapezoid(double a, double b, double c,
                                              double d);
  static Result<MembershipFunction> Triangle(double a, double b, double c);
  static Result<MembershipFunction> RampUp(double a, double b);
  static Result<MembershipFunction> RampDown(double a, double b);
  static MembershipFunction Constant(double value);
  static MembershipFunction Singleton(double a);

  Shape shape() const { return shape_; }
  const std::array<double, 4>& params() const { return params_; }

  /// Membership grade of x; always in [0, 1].
  double Eval(double x) const;
  double operator()(double x) const { return Eval(x); }

  /// The supremum of the function (1 for all shapes except kConstant).
  double MaxValue() const;

  /// Smallest x with Eval(x) >= level, looking only at the rising
  /// part / plateau (piecewise-linear analytic solution). Used by the
  /// leftmost-maximum defuzzifier. `lo` bounds the search domain for
  /// shapes that reach `level` at -infinity (e.g. kRampDown at its
  /// full height). Requires 0 < level <= MaxValue().
  double LeftmostAtLevel(double level, double lo) const;

  /// Appends every x in [lo, hi] where min(Eval(x), clip) changes
  /// slope: the shape's own breakpoints plus the points where its
  /// rising/falling edges cross the clip level. Between consecutive
  /// appended points (and the domain bounds) the clipped function is
  /// linear — the support of the exact segment-wise defuzzifiers.
  void AppendLevelBreakpoints(double clip, double lo, double hi,
                              std::vector<double>* out) const;

  /// Human-readable description, e.g. "trapezoid(0,0,0.3,0.5)".
  std::string ToString() const;

  bool operator==(const MembershipFunction&) const = default;

 private:
  MembershipFunction(Shape shape, std::array<double, 4> params)
      : shape_(shape), params_(params) {}

  Shape shape_;
  std::array<double, 4> params_;
};

}  // namespace autoglobe::fuzzy

#endif  // AUTOGLOBE_FUZZY_MEMBERSHIP_H_
