#include "workload/demand.h"

#include <gtest/gtest.h>

namespace autoglobe::workload {
namespace {

using infra::Cluster;
using infra::InstanceId;
using infra::InstanceState;
using infra::ServerSpec;
using infra::ServiceSpec;

ServerSpec MakeServer(const std::string& name, double pi) {
  ServerSpec spec;
  spec.name = name;
  spec.performance_index = pi;
  spec.memory_gb = 32;  // memory is not under test here
  return spec;
}

ServiceSpec MakeService(const std::string& name) {
  ServiceSpec spec;
  spec.name = name;
  spec.memory_footprint_gb = 1;
  spec.min_instances = 0;
  spec.max_instances = 16;
  return spec;
}

ServiceDemandSpec InteractiveSpec(const std::string& name, double users,
                                  double activity) {
  ServiceDemandSpec spec;
  spec.service = name;
  spec.pattern = LoadPattern::Flat(activity);
  spec.base_users = users;
  spec.base_load_wu = 0.0;
  spec.noise_stddev = 0.0;  // deterministic for unit tests
  return spec;
}

class DemandTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(cluster_.AddServer(MakeServer("s1", 1)).ok());
    ASSERT_TRUE(cluster_.AddServer(MakeServer("s2", 2)).ok());
    ASSERT_TRUE(cluster_.AddService(MakeService("app")).ok());
    engine_ = std::make_unique<DemandEngine>(&cluster_, Rng(7));
  }

  InstanceId Place(const std::string& service, const std::string& server) {
    auto id = cluster_.PlaceInstance(service, server, SimTime::Start());
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or(0);
  }

  void TickMinutes(int n, SimTime from = SimTime::Start()) {
    for (int i = 1; i <= n; ++i) {
      engine_->Tick(from + Duration::Minutes(i));
    }
  }

  Cluster cluster_;
  std::unique_ptr<DemandEngine> engine_;
};

TEST_F(DemandTest, AddServiceValidates) {
  EXPECT_FALSE(engine_->AddService(InteractiveSpec("ghost", 100, 0.5)).ok());
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 100, 0.5)).ok());
  EXPECT_FALSE(engine_->AddService(InteractiveSpec("app", 100, 0.5)).ok());
  ServiceDemandSpec bad = InteractiveSpec("app", -5, 0.5);
  bad.service = "app";
  EXPECT_FALSE(engine_->AddService(bad).ok());
}

TEST_F(DemandTest, SingleInstanceLoadMatchesTheCalibration) {
  // 150 fully active users on a PI-1 server = 100 % CPU (§5.1's
  // dimensioning rule), so 75 active users = 50 %.
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.5)).ok());
  Place("app", "s1");
  TickMinutes(1);
  EXPECT_NEAR(engine_->ServerCpuLoad("s1"), 0.5, 1e-9);
  EXPECT_NEAR(engine_->ServiceLoad("app"), 0.5, 1e-9);
  EXPECT_NEAR(engine_->ServiceUsers("app"), 150, 1e-9);
}

TEST_F(DemandTest, UsersSpreadCapacityProportionally) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 300, 0.5)).ok());
  engine_->set_fluctuation_per_minute(0.0);
  InstanceId a = Place("app", "s1");
  InstanceId b = Place("app", "s2");
  TickMinutes(1);
  // s2 has twice the capacity -> twice the users -> equal load.
  EXPECT_NEAR(engine_->InstanceUsers(a), 100, 1e-6);
  EXPECT_NEAR(engine_->InstanceUsers(b), 200, 1e-6);
  EXPECT_NEAR(engine_->ServerCpuLoad("s1"),
              engine_->ServerCpuLoad("s2"), 1e-9);
}

TEST_F(DemandTest, UserScaleMultipliesDemand) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.5)).ok());
  Place("app", "s1");
  engine_->set_user_scale(1.2);
  TickMinutes(1);
  EXPECT_NEAR(engine_->ServerCpuLoad("s1"), 0.6, 1e-9);
  EXPECT_NEAR(engine_->ServiceUsers("app"), 180, 1e-6);
}

TEST_F(DemandTest, SaturationCapsLoadAndQueuesBacklog) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 450, 1.0)).ok());
  Place("app", "s1");  // demand 3 wu on capacity 1
  TickMinutes(1);
  EXPECT_DOUBLE_EQ(engine_->ServerCpuLoad("s1"), 1.0);
  EXPECT_GT(engine_->TotalBacklog(), 0.0);
  TickMinutes(30, SimTime::Start() + Duration::Minutes(1));
  // The small interactive queue overflows into lost work.
  EXPECT_GT(engine_->TotalLostWork(), 0.0);
  EXPECT_GT(engine_->OverloadMinutes(), 25.0);
}

TEST_F(DemandTest, BacklogDrainsAfterThePeak) {
  ServiceDemandSpec spec = InteractiveSpec("app", 180, 1.0);
  ASSERT_TRUE(engine_->AddService(spec).ok());
  Place("app", "s1");  // demand 1.2 -> builds backlog
  TickMinutes(10);
  EXPECT_GT(engine_->TotalBacklog(), 0.0);
  engine_->set_user_scale(0.1);  // peak over
  TickMinutes(10, SimTime::Start() + Duration::Minutes(10));
  EXPECT_NEAR(engine_->TotalBacklog(), 0.0, 1e-9);
  EXPECT_LT(engine_->ServerCpuLoad("s1"), 0.2);
}

TEST_F(DemandTest, StickyUsersStayAfterScaleOut) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.6)).ok());
  engine_->set_distribution(UserDistribution::kStickySessions);
  engine_->set_fluctuation_per_minute(0.0);
  InstanceId a = Place("app", "s1");
  TickMinutes(1);
  ASSERT_NEAR(engine_->InstanceUsers(a), 150, 1e-6);
  InstanceId b = Place("app", "s2");
  TickMinutes(1, SimTime::Start() + Duration::Minutes(1));
  // Without fluctuation nobody moves (§5.1 CM: "the original servers
  // remain quite loaded").
  EXPECT_NEAR(engine_->InstanceUsers(a), 150, 1e-6);
  EXPECT_NEAR(engine_->InstanceUsers(b), 0, 1e-6);
}

TEST_F(DemandTest, FluctuationDrainsLoadedInstanceSlowly) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.6)).ok());
  engine_->set_distribution(UserDistribution::kStickySessions);
  engine_->set_fluctuation_per_minute(0.01);
  InstanceId a = Place("app", "s1");
  TickMinutes(1);
  InstanceId b = Place("app", "s2");
  TickMinutes(60, SimTime::Start() + Duration::Minutes(1));
  double moved = engine_->InstanceUsers(b);
  // Roughly 1 % per minute leaves a: after ~60 min almost half moved.
  EXPECT_GT(moved, 40);
  EXPECT_LT(moved, 90);
  EXPECT_NEAR(engine_->InstanceUsers(a) + moved, 150, 1e-6);
}

TEST_F(DemandTest, DynamicRedistributionIsImmediate) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 300, 0.6)).ok());
  engine_->set_distribution(UserDistribution::kDynamicRedistribution);
  InstanceId a = Place("app", "s1");
  TickMinutes(1);
  EXPECT_NEAR(engine_->InstanceUsers(a), 300, 1e-6);
  InstanceId b = Place("app", "s2");
  TickMinutes(1, SimTime::Start() + Duration::Minutes(1));
  // FM: the effect of a scale-out is "observable almost instantly".
  EXPECT_NEAR(engine_->InstanceUsers(a), 100, 1e-6);
  EXPECT_NEAR(engine_->InstanceUsers(b), 200, 1e-6);
}

TEST_F(DemandTest, FailedInstanceShedsUsers) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 300, 0.5)).ok());
  InstanceId a = Place("app", "s1");
  InstanceId b = Place("app", "s2");
  TickMinutes(1);
  ASSERT_TRUE(cluster_.SetInstanceState(a, InstanceState::kFailed).ok());
  TickMinutes(1, SimTime::Start() + Duration::Minutes(1));
  EXPECT_NEAR(engine_->InstanceUsers(a), 0, 1e-6);
  EXPECT_NEAR(engine_->InstanceUsers(b), 300, 1e-6);
}

TEST_F(DemandTest, StartingInstanceServesNothing) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.6)).ok());
  auto id = cluster_.PlaceInstance("app", "s1", SimTime::Start(),
                                   InstanceState::kStarting);
  ASSERT_TRUE(id.ok());
  TickMinutes(1);
  // Demand exists but is not served by a starting instance.
  EXPECT_DOUBLE_EQ(engine_->ServerCpuLoad("s1"), 0.0);
}

TEST_F(DemandTest, BatchWorkSplitsByCapacityAndScalesWithJobs) {
  ServiceDemandSpec bw;
  bw.service = "app";
  bw.pattern = LoadPattern::Flat(1.0);
  bw.batch = true;
  bw.batch_load_wu = 1.5;
  bw.base_load_wu = 0.0;
  bw.noise_stddev = 0.0;
  ASSERT_TRUE(engine_->AddService(bw).ok());
  Place("app", "s1");
  Place("app", "s2");
  TickMinutes(1);
  // 1.5 wu split 1:2 -> 0.5 on s1 (load 0.5), 1.0 on s2 (load 0.5).
  EXPECT_NEAR(engine_->ServerCpuLoad("s1"), 0.5, 1e-9);
  EXPECT_NEAR(engine_->ServerCpuLoad("s2"), 0.5, 1e-9);
  // "we increase the load per batch job by 5 %": scale acts on work.
  engine_->set_user_scale(1.05);
  TickMinutes(1, SimTime::Start() + Duration::Minutes(1));
  EXPECT_NEAR(engine_->ServerCpuLoad("s1"), 0.525, 1e-9);
}

TEST_F(DemandTest, SubsystemPropagationReachesCiAndDb) {
  ASSERT_TRUE(cluster_.AddService(MakeService("ci")).ok());
  ASSERT_TRUE(cluster_.AddService(MakeService("db")).ok());
  ASSERT_TRUE(cluster_.AddServer(MakeServer("s3", 1)).ok());
  ASSERT_TRUE(cluster_.AddServer(MakeServer("s4", 9)).ok());
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.5)).ok());
  ServiceDemandSpec derived;
  derived.service = "ci";
  derived.pattern = LoadPattern::Flat(0);
  derived.base_load_wu = 0;
  derived.noise_stddev = 0;
  ASSERT_TRUE(engine_->AddService(derived).ok());
  derived.service = "db";
  ASSERT_TRUE(engine_->AddService(derived).ok());
  SubsystemSpec subsystem{"ERP", {"app"}, "ci", "db", 0.1, 0.5};
  ASSERT_TRUE(engine_->AddSubsystem(subsystem).ok());
  Place("app", "s1");
  Place("ci", "s3");
  Place("db", "s4");
  TickMinutes(1);
  // App work = 0.5 wu; CI gets 10 %, DB 50 % of it.
  EXPECT_NEAR(engine_->ServerCpuLoad("s1"), 0.5, 1e-9);
  EXPECT_NEAR(engine_->ServerCpuLoad("s3"), 0.05, 1e-9);
  EXPECT_NEAR(engine_->ServerCpuLoad("s4"), 0.25 / 9, 1e-9);
}

TEST_F(DemandTest, SubsystemValidation) {
  EXPECT_FALSE(
      engine_->AddSubsystem(SubsystemSpec{"X", {"ghost"}, "", "", 0, 0})
          .ok());
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 10, 0.5)).ok());
  EXPECT_FALSE(
      engine_->AddSubsystem(SubsystemSpec{"X", {"app"}, "ghost", "", 0, 0})
          .ok());
  EXPECT_FALSE(
      engine_->AddSubsystem(SubsystemSpec{"X", {"app"}, "", "ghost", 0, 0})
          .ok());
  EXPECT_TRUE(
      engine_->AddSubsystem(SubsystemSpec{"X", {"app"}, "", "", 0, 0}).ok());
}

TEST_F(DemandTest, LostTierWorkWhenNoDatabaseRuns) {
  ASSERT_TRUE(cluster_.AddService(MakeService("db")).ok());
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 0.5)).ok());
  ServiceDemandSpec derived;
  derived.service = "db";
  derived.pattern = LoadPattern::Flat(0);
  derived.base_load_wu = 0;
  ASSERT_TRUE(engine_->AddService(derived).ok());
  ASSERT_TRUE(
      engine_->AddSubsystem(SubsystemSpec{"X", {"app"}, "", "db", 0, 0.5})
          .ok());
  Place("app", "s1");
  // No db instance exists: its tier work is lost, and that is visible.
  TickMinutes(3);
  EXPECT_GT(engine_->TotalLostWork(), 0.0);
}

TEST_F(DemandTest, PriorityShiftsShareUnderContention) {
  ASSERT_TRUE(cluster_.AddService(MakeService("noisy")).ok());
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 150, 1.0)).ok());
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("noisy", 150, 1.0)).ok());
  InstanceId a = Place("app", "s1");
  InstanceId b = Place("noisy", "s1");
  (void)a;
  (void)b;
  // Demand 2 wu on capacity 1: equal priorities -> equal split ->
  // equal backlog. Boost app: its backlog shrinks relative to noisy.
  ASSERT_TRUE(cluster_.AdjustServicePriority("app", 4.0).ok());
  TickMinutes(5);
  EXPECT_DOUBLE_EQ(engine_->ServerCpuLoad("s1"), 1.0);
  // app gets ~4x the share; noisy piles up more backlog and loses
  // more work. Compare per-instance loads as a proxy.
  EXPECT_GT(engine_->InstanceLoad(b), 0.9);  // pinned at queue cap
}

TEST_F(DemandTest, MemLoadTracksAllocation) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 10, 0.1)).ok());
  Place("app", "s1");
  TickMinutes(1);
  EXPECT_NEAR(engine_->ServerMemLoad("s1"), 1.0 / 32.0, 1e-9);
  EXPECT_DOUBLE_EQ(engine_->ServerMemLoad("s2"), 0.0);
}

TEST_F(DemandTest, ResetQualityMetricsClearsCounters) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 450, 1.0)).ok());
  Place("app", "s1");
  TickMinutes(30);
  ASSERT_GT(engine_->OverloadMinutes(), 0.0);
  engine_->ResetQualityMetrics();
  EXPECT_DOUBLE_EQ(engine_->OverloadMinutes(), 0.0);
  EXPECT_DOUBLE_EQ(engine_->TotalLostWork(), 0.0);
}

TEST_F(DemandTest, DeterministicGivenSeed) {
  ASSERT_TRUE(engine_->AddService(InteractiveSpec("app", 100, 0.5)).ok());
  Place("app", "s1");

  Cluster cluster2;
  ASSERT_TRUE(cluster2.AddServer(MakeServer("s1", 1)).ok());
  ASSERT_TRUE(cluster2.AddServer(MakeServer("s2", 2)).ok());
  ASSERT_TRUE(cluster2.AddService(MakeService("app")).ok());
  DemandEngine engine2(&cluster2, Rng(7));
  ServiceDemandSpec noisy = InteractiveSpec("app", 100, 0.5);
  noisy.noise_stddev = 0.05;
  ASSERT_TRUE(engine2.AddService(noisy).ok());
  ASSERT_TRUE(cluster2.PlaceInstance("app", "s1", SimTime::Start()).ok());

  // Same seed, same landscape => identical trajectories.
  Cluster cluster3;
  ASSERT_TRUE(cluster3.AddServer(MakeServer("s1", 1)).ok());
  ASSERT_TRUE(cluster3.AddServer(MakeServer("s2", 2)).ok());
  ASSERT_TRUE(cluster3.AddService(MakeService("app")).ok());
  DemandEngine engine3(&cluster3, Rng(7));
  ASSERT_TRUE(engine3.AddService(noisy).ok());
  ASSERT_TRUE(cluster3.PlaceInstance("app", "s1", SimTime::Start()).ok());

  for (int i = 1; i <= 50; ++i) {
    SimTime t = SimTime::Start() + Duration::Minutes(i);
    engine2.Tick(t);
    engine3.Tick(t);
    ASSERT_DOUBLE_EQ(engine2.ServerCpuLoad("s1"),
                     engine3.ServerCpuLoad("s1"))
        << "diverged at minute " << i;
  }
}

}  // namespace
}  // namespace autoglobe::workload
