file(REMOVE_RECURSE
  "CMakeFiles/table7_seeds.dir/table7_seeds.cpp.o"
  "CMakeFiles/table7_seeds.dir/table7_seeds.cpp.o.d"
  "table7_seeds"
  "table7_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
