#include "common/sim_time.h"

#include "common/strings.h"

namespace autoglobe {

std::string Duration::ToString() const {
  int64_t s = seconds_;
  bool negative = s < 0;
  if (negative) s = -s;
  std::string out = negative ? "-" : "";
  int64_t hours = s / 3600;
  int64_t minutes = (s % 3600) / 60;
  int64_t secs = s % 60;
  if (hours > 0) out += StrFormat("%lldh ", static_cast<long long>(hours));
  if (minutes > 0 || hours > 0) {
    out += StrFormat("%lldm", static_cast<long long>(minutes));
  }
  if (hours == 0 && (secs > 0 || (minutes == 0))) {
    if (minutes > 0) out += " ";
    out += StrFormat("%llds", static_cast<long long>(secs));
  }
  return out;
}

std::string SimTime::ToString() const {
  return StrFormat("d%lld %02d:%02d", static_cast<long long>(Day()),
                   HourOfDay(), MinuteOfHour());
}

std::string SimTime::ClockString() const {
  return StrFormat("%02d:%02d", HourOfDay(), MinuteOfHour());
}

}  // namespace autoglobe
