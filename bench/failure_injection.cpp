// Self-healing experiment (paper §2: "Failure situations like a
// program crash are remedied for example with a restart"): inject
// instance crashes at increasing rates into the FM scenario and
// measure how completely the controller's remediation path (restart,
// else replacement on another host) absorbs them.

#include <cstdio>

#include "ablation_util.h"
#include "common/strings.h"

using namespace autoglobe;
using namespace autoglobe::bench;

int main() {
  std::printf("# Failure injection: random instance crashes, FM "
              "scenario at 100%% users (80 h)\n");
  std::printf("%-18s %9s %9s %10s %9s %8s\n", "crash rate",
              "injected", "remedied", "ovl-min", "lost-wu", "actions");
  for (double per_hour : {0.0, 0.005, 0.02, 0.05, 0.2}) {
    Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
    RunnerConfig config = MakeScenarioConfig(Scenario::kFullMobility, 1.0);
    config.instance_failures_per_hour = per_hour;
    config.metrics_warmup = Duration::Zero();  // count everything
    auto runner = SimulationRunner::Create(landscape, config);
    AG_CHECK_OK(runner.status());
    AG_CHECK_OK((*runner)->Run());
    const RunMetrics& m = (*runner)->metrics();
    std::printf("%9.3f /inst-h %9lld %9lld %10.0f %9.1f %8lld\n",
                per_hour, static_cast<long long>(m.failures_injected),
                static_cast<long long>(m.failures_remedied),
                m.overload_server_minutes, m.lost_work_wu,
                static_cast<long long>(m.actions_executed));
    // Sanity: no service may be extinct at the end.
    for (const auto* service : (*runner)->cluster().Services()) {
      AG_CHECK((*runner)->cluster().ActiveInstanceCount(service->name) >=
               1);
    }
  }
  std::printf("\n# (shape: essentially every crash is remedied; load "
              "impact stays bounded because a\n#  restarted instance is "
              "back after the 2-min boot delay and users re-balance)\n");
  return 0;
}
