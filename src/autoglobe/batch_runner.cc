#include "autoglobe/batch_runner.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace autoglobe {

BatchRunner::BatchRunner(RunnerConfig config, std::vector<BatchLane> lanes)
    : config_(std::move(config)),
      lanes_(std::move(lanes)),
      kernels_(&GetLaneKernels()) {}

Status BatchRunner::CheckEligibility(const RunnerConfig& config) {
  if (config.tick <= Duration::Zero()) {
    return Status::InvalidArgument("tick must be positive");
  }
  if (config.controller_enabled) {
    return Status::InvalidArgument(
        "batched runs require controller_enabled=false: controller "
        "actions mutate the shared topology per lane");
  }
  if (config.strategy.kind != strategy::StrategyKind::kStaticFuzzy) {
    return Status::InvalidArgument(
        "batched runs only support the static strategy; adaptive "
        "strategies keep per-run learned state");
  }
  if (config.fault_plan.has_value()) {
    return Status::InvalidArgument(
        "batched runs cannot take a fault plan; batch availability "
        "scenarios at the rep level instead");
  }
  if (config.instance_failures_per_hour > 0) {
    return Status::InvalidArgument(
        "batched runs cannot inject legacy instance failures");
  }
  if (!config.slas.empty()) {
    return Status::InvalidArgument("batched runs do not track SLAs");
  }
  if (config.use_forecast) {
    return Status::InvalidArgument(
        "batched runs do not replicate the forecast detection signal");
  }
  if (!config.reservations.empty()) {
    return Status::InvalidArgument(
        "reservations only matter to the controller; drop them for "
        "batched runs");
  }
  if (config.observability.enable_tracing ||
      config.observability.enable_audit) {
    return Status::InvalidArgument(
        "batched runs have no trace/audit pipeline");
  }
  if (config.monitor.load_epsilon != 0.0) {
    return Status::InvalidArgument(
        "batched runs replicate the archive only at load_epsilon 0");
  }
  if (config.archive_retention < config.monitor.overload_watch_time ||
      config.archive_retention < config.monitor.idle_watch_time) {
    return Status::InvalidArgument(
        "archive retention shorter than a watch window would clip the "
        "watch-time mean; the batch replica assumes full windows");
  }
  return Status::OK();
}

Result<std::unique_ptr<BatchRunner>> BatchRunner::Create(
    const Landscape& landscape, RunnerConfig config,
    std::vector<BatchLane> lanes) {
  AG_RETURN_IF_ERROR(CheckEligibility(config));
  if (lanes.empty()) {
    return Status::InvalidArgument("a batch needs at least one lane");
  }
  std::unique_ptr<BatchRunner> runner(
      new BatchRunner(std::move(config), std::move(lanes)));
  AG_RETURN_IF_ERROR(runner->Init(landscape));
  return runner;
}

Status BatchRunner::Init(const Landscape& landscape) {
  const size_t L = lanes_.size();
  engine_ = std::make_unique<workload::BatchDemandEngine>(&cluster_, L);
  AG_RETURN_IF_ERROR(landscape.Build(&cluster_, engine_.get()));
  engine_->set_rng_kind(config_.rng_kind);
  engine_->set_distribution(config_.distribution);
  engine_->set_fluctuation_per_minute(config_.fluctuation_per_minute);
  engine_->set_overload_threshold(config_.overload_threshold);

  tick_sec_ = config_.tick.seconds();
  idle_watch_sec_ = config_.monitor.idle_watch_time.seconds();

  // Subjects in dense-id layout: sorted server names first, then
  // sorted service names — the same ranks SimulationRunner's per-tick
  // loops use, so ObserveReplica reads the engine views by position.
  struct Registration {
    std::string name;
    double idle_divisor = 1.0;
    Duration overload_watch = Duration::Zero();
  };
  std::vector<Registration> servers;
  for (const infra::ServerSpec* server : cluster_.Servers()) {
    servers.push_back({server->name, server->performance_index,
                       config_.monitor.overload_watch_time});
  }
  std::sort(servers.begin(), servers.end(),
            [](const Registration& a, const Registration& b) {
              return a.name < b.name;
            });
  std::vector<Registration> services;
  for (const infra::ServiceSpec* service : cluster_.Services()) {
    Duration watch = config_.monitor.overload_watch_time;
    if (service->watch_time_minutes > 0) {
      watch = Duration::Minutes(service->watch_time_minutes);
    }
    services.push_back({service->name, 1.0, watch});
  }
  std::sort(services.begin(), services.end(),
            [](const Registration& a, const Registration& b) {
              return a.name < b.name;
            });

  num_servers_ = servers.size();
  window_ticks_ = static_cast<size_t>(
      std::max<int64_t>(1, config_.overload_smoothing.seconds() / tick_sec_));
  window_.assign(num_servers_ * window_ticks_ * L, 0.0);
  window_sum_.assign(num_servers_ * L, 0.0);
  window_head_.assign(num_servers_, 0);
  window_count_.assign(num_servers_, 0);
  streak_minutes_.assign(num_servers_ * L, 0.0);

  subjects_.clear();
  subjects_.reserve(servers.size() + services.size());
  auto add_subject = [&](const Registration& reg, bool is_server,
                         infra::DenseId dense_id) -> Status {
    if (config_.archive_retention < reg.overload_watch) {
      return Status::InvalidArgument(StrFormat(
          "archive retention shorter than the watchTime of \"%s\"",
          reg.name.c_str()));
    }
    Subject subject;
    subject.is_server = is_server;
    subject.dense_id = dense_id;
    subject.idle_threshold =
        config_.monitor.idle_threshold_base / reg.idle_divisor;
    subject.overload_watch_sec = reg.overload_watch.seconds();
    subject.cap = static_cast<size_t>(
                      std::max(subject.overload_watch_sec, idle_watch_sec_) /
                      tick_sec_) +
                  2;
    subject.hist.assign(subject.cap * L, 0.0);
    subject.phase.assign(L, 0);
    subject.watch_started.assign(L, 0);
    subject.normal_mask.assign((L + 63) / 64, ~uint64_t{0});
    subjects_.push_back(std::move(subject));
    return Status::OK();
  };
  for (size_t p = 0; p < servers.size(); ++p) {
    AG_RETURN_IF_ERROR(add_subject(servers[p], /*is_server=*/true,
                                   static_cast<infra::DenseId>(p)));
  }
  for (size_t q = 0; q < services.size(); ++q) {
    AG_RETURN_IF_ERROR(add_subject(services[q], /*is_server=*/false,
                                   static_cast<infra::DenseId>(q)));
  }

  load_sum_.assign(L, 0.0);
  load_samples_ = 0;
  overload_minutes_.assign(L, 0.0);
  max_streak_.assign(L, 0.0);
  triggers_.assign(L, 0);
  metrics_.assign(L, RunMetrics{});
  service_loads_.assign(L, 0.0);
  watch_sum_.assign(L, 0.0);
  expiring_.assign(L, 0);
  ResetRunState();
  return Status::OK();
}

void BatchRunner::ResetRunState() {
  const size_t L = lanes_.size();
  for (size_t lane = 0; lane < L; ++lane) {
    engine_->SetLaneSeed(lane, lanes_[lane].seed);
    engine_->SetLaneUserScale(lane, lanes_[lane].user_scale);
  }
  std::fill(window_.begin(), window_.end(), 0.0);
  std::fill(window_sum_.begin(), window_sum_.end(), 0.0);
  std::fill(window_head_.begin(), window_head_.end(), 0);
  std::fill(window_count_.begin(), window_count_.end(), 0);
  std::fill(streak_minutes_.begin(), streak_minutes_.end(), 0.0);
  for (Subject& subject : subjects_) {
    std::fill(subject.hist.begin(), subject.hist.end(), 0.0);
    std::fill(subject.phase.begin(), subject.phase.end(), 0);
    std::fill(subject.watch_started.begin(), subject.watch_started.end(),
              int64_t{0});
    subject.watching = 0;
    subject.homogeneous = true;
    subject.next_expiry = Subject::kNoExpiry;
    subject.hist_slot = 0;
    std::fill(subject.normal_mask.begin(), subject.normal_mask.end(),
              ~uint64_t{0});
  }
  std::fill(load_sum_.begin(), load_sum_.end(), 0.0);
  load_samples_ = 0;
  std::fill(overload_minutes_.begin(), overload_minutes_.end(), 0.0);
  std::fill(max_streak_.begin(), max_streak_.end(), 0.0);
  std::fill(triggers_.begin(), triggers_.end(), int64_t{0});
  std::fill(metrics_.begin(), metrics_.end(), RunMetrics{});
}

Status BatchRunner::Rerun(std::vector<BatchLane> lanes) {
  if (lanes.size() != lanes_.size()) {
    return Status::InvalidArgument(
        "a rerun must keep the batch width (the engine's lane count is "
        "fixed)");
  }
  lanes_ = std::move(lanes);
  engine_->ResetLanes();
  ResetRunState();
  return Status::OK();
}

Status BatchRunner::Run() {
  const int64_t end_sec = config_.duration.seconds();
  const int64_t warmup_sec = config_.metrics_warmup.seconds();
  // The kernel orders same-time events by schedule sequence: the
  // periodic tick holds seq 0 for its first fire and fresh (≥ 2) seqs
  // for re-arms, the warmup reset holds seq 1. So a warmup landing on
  // the first tick runs after it; landing on any later tick, before it.
  bool warmup_pending = warmup_sec > 0 && warmup_sec <= end_sec;
  const int64_t k_max = end_sec / tick_sec_;
  for (int64_t k = 1; k <= k_max; ++k) {
    const int64_t t_sec = k * tick_sec_;
    if (warmup_pending &&
        (warmup_sec < t_sec || (warmup_sec == t_sec && k >= 2))) {
      ApplyWarmupReset();
      warmup_pending = false;
    }
    TickOnce(k);
    if (warmup_pending && warmup_sec == t_sec) {
      ApplyWarmupReset();
      warmup_pending = false;
    }
  }
  // A warmup between the last tick and the end of the run still fires.
  if (warmup_pending) ApplyWarmupReset();
  Fold();
  return Status::OK();
}

void BatchRunner::TickOnce(int64_t k) {
  const size_t L = lanes_.size();
  const SimTime now = SimTime::FromSeconds(k * tick_sec_);
  engine_->Tick(now, config_.tick);

  const double tick_minutes = config_.tick.seconds() / 60.0;
  const double overload_threshold = config_.overload_threshold;
  for (size_t p = 0; p < num_servers_; ++p) {
    const size_t head = window_head_[p];
    const size_t count = window_count_[p];
    const bool full = count == window_ticks_;
    const size_t write_slot = full ? head : (head + count) % window_ticks_;
    const double inv_count = static_cast<double>(full ? count : count + 1);
    double* sums = &window_sum_[p * L];
    double* ring = &window_[p * (window_ticks_ * L) + write_slot * L];
    double* streaks = &streak_minutes_[p * L];
    Subject& subject = subjects_[p];
    const double* cpu_row =
        engine_->ServerCpuRow(static_cast<infra::DenseId>(p));
    // The per-tick archive sample is the whole lane row at once.
    std::copy_n(cpu_row, L, subject.hist.data() + subject.hist_slot * L);
    // Straight-line math first (the smoothing-ring and streak row
    // kernels, AVX2 where available), the branchy watch state machine
    // in its own pass. Add-then-evict, exactly like
    // SimulationRunner's ring.
    if (full) {
      kernels_->smooth_full_row(load_sum_.data(), sums, ring, cpu_row, L);
    } else {
      kernels_->smooth_fill_row(load_sum_.data(), sums, ring, cpu_row, L);
    }
    kernels_->streak_row(overload_minutes_.data(), streaks,
                         max_streak_.data(), sums, inv_count,
                         overload_threshold, tick_minutes, L);
    ObserveRowReplica(subject, cpu_row, k);
    subject.hist_slot =
        subject.hist_slot + 1 == subject.cap ? 0 : subject.hist_slot + 1;
    if (full) {
      window_head_[p] = (head + 1) % window_ticks_;
    } else {
      window_count_[p] = count + 1;
    }
  }
  load_samples_ += static_cast<int64_t>(num_servers_);
  const size_t num_services = subjects_.size() - num_servers_;
  for (size_t q = 0; q < num_services; ++q) {
    Subject& subject = subjects_[num_servers_ + q];
    // The service row is computed straight into its archive slot and
    // observed from there — no bounce through a scratch row.
    double* hist_row = subject.hist.data() + subject.hist_slot * L;
    engine_->ServiceLoadAll(static_cast<infra::DenseId>(q), hist_row);
    ObserveRowReplica(subject, hist_row, k);
    subject.hist_slot =
        subject.hist_slot + 1 == subject.cap ? 0 : subject.hist_slot + 1;
  }
}

void BatchRunner::ObserveRowReplica(Subject& subject, const double* loads,
                                    int64_t k) {
  enum : uint8_t { kNormal = 0, kWatchingOverload = 1, kWatchingIdle = 2 };
  const size_t L = lanes_.size();
  const double overload = config_.monitor.overload_threshold;
  const double idle = subject.idle_threshold;
  const int64_t now_sec = k * tick_sec_;
  if (subject.homogeneous && subject.watching == 0) {
    // Every lane is in the Normal phase, where the only possible
    // action is arming a watch on an out-of-band load — one branchless
    // scan usually proves the whole row is a no-op.
    size_t over = 0;
    size_t under = 0;
    for (size_t base = 0; base < L; base += 64) {
      uint64_t over_mask = 0;
      uint64_t under_mask = 0;
      kernels_->band_mask_row(&over_mask, &under_mask, loads + base,
                              overload, idle, std::min<size_t>(64, L - base));
      over += static_cast<size_t>(__builtin_popcountll(over_mask));
      under += static_cast<size_t>(__builtin_popcountll(under_mask));
    }
    if (over == 0 && under == 0) return;
    // Lanes usually cross a threshold together (e.g. the whole batch
    // going idle overnight): arm the full row at once and stay
    // homogeneous, so the watch countdown costs one check per tick.
    if (over == L || (over == 0 && under == L)) {
      std::fill(subject.phase.begin(), subject.phase.end(),
                over == L ? kWatchingOverload : kWatchingIdle);
      std::fill(subject.watch_started.begin(),
                subject.watch_started.end(), now_sec);
      std::fill(subject.normal_mask.begin(), subject.normal_mask.end(),
                uint64_t{0});
      if ((L & 63) != 0) {
        subject.normal_mask.back() = ~uint64_t{0} << (L & 63);
      }
      subject.watching = L;
      subject.next_expiry =
          now_sec +
          (over == L ? subject.overload_watch_sec : idle_watch_sec_);
      return;
    }
    subject.homogeneous = false;
  } else if (subject.homogeneous) {
    // Whole row is in the same watch with the same start.
    const bool watching_overload = subject.phase[0] == kWatchingOverload;
    const int64_t watch_sec =
        watching_overload ? subject.overload_watch_sec : idle_watch_sec_;
    if (now_sec - subject.watch_started[0] < watch_sec) return;
    std::fill(subject.phase.begin(), subject.phase.end(), kNormal);
    std::fill(subject.normal_mask.begin(), subject.normal_mask.end(),
              ~uint64_t{0});
    subject.watching = 0;
    subject.next_expiry = Subject::kNoExpiry;
    // Watch-time mean, all lanes at once: the newest-first tick walk
    // is the outer loop, so each lane still sums the exact scalar
    // sequence while the adds vectorize across the row.
    int64_t j_min = (now_sec - watch_sec) / tick_sec_ + 1;
    if (j_min < 1) j_min = 1;
    // service_loads_ doubles as scratch here; `loads` may alias it but
    // is not read on the expiry path (the verdict uses hist only).
    double* sum = service_loads_.data();
    kernels_->window_sum_rows(sum, subject.hist.data(), subject.cap,
                              static_cast<size_t>(k - j_min + 1),
                              subject.hist_slot, L);
    const double count = static_cast<double>(k - j_min + 1);
    for (size_t lane = 0; lane < L; ++lane) {
      const double average = sum[lane] / count;
      const bool fired = watching_overload ? average > overload
                                           : average < idle;
      if (fired) ++triggers_[lane];
    }
    return;
  }
  // Divergent row, columnar: the lanes are independent, so the scalar
  // monitor's per-lane state machine (monitoring.cc) splits into an
  // arm pass and an expiry pass. Arming first is safe — a lane armed
  // this tick cannot also expire this tick (watch times are
  // positive), and an expiring lane returns to Normal without
  // re-arming until the next tick, exactly like the scalar monitor.
  uint8_t* phase = subject.phase.data();
  int64_t* started = subject.watch_started.data();
  // A threshold crossing only *arms* the watch; the trigger decision
  // waits for the watch-time mean (monitoring.cc, Phase::kNormal).
  // Only a lane that is both out of band AND still Normal can arm —
  // masking with normal_mask skips the (typically many) lanes whose
  // loads are out of band because they are already mid-watch.
  uint64_t* normal = subject.normal_mask.data();
  for (size_t base = 0, w = 0; base < L; base += 64, ++w) {
    uint64_t over_mask = 0;
    uint64_t under_mask = 0;
    kernels_->band_mask_row(&over_mask, &under_mask, loads + base,
                            overload, idle, std::min<size_t>(64, L - base));
    uint64_t out = (over_mask | under_mask) & normal[w];
    while (out != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(out));
      out &= out - 1;
      normal[w] &= ~(uint64_t{1} << bit);
      const size_t lane = base + bit;
      if ((over_mask >> bit) & 1) {
        phase[lane] = kWatchingOverload;
        started[lane] = now_sec;
        ++subject.watching;
        subject.next_expiry = std::min(
            subject.next_expiry, now_sec + subject.overload_watch_sec);
      } else {
        phase[lane] = kWatchingIdle;
        started[lane] = now_sec;
        ++subject.watching;
        subject.next_expiry =
            std::min(subject.next_expiry, now_sec + idle_watch_sec_);
      }
    }
  }
  if (now_sec >= subject.next_expiry) {
    for (int pass = 0; pass < 2; ++pass) {
      const bool watching_overload = pass == 0;
      const uint8_t kind =
          watching_overload ? kWatchingOverload : kWatchingIdle;
      const int64_t watch_sec =
          watching_overload ? subject.overload_watch_sec : idle_watch_sec_;
      uint32_t* expiring = expiring_.data();
      size_t n_exp = 0;
      for (size_t base = 0, w = 0; base < L; base += 64, ++w) {
        uint64_t watch = ~normal[w];
        while (watch != 0) {
          const unsigned bit = static_cast<unsigned>(__builtin_ctzll(watch));
          watch &= watch - 1;
          const size_t lane = base + bit;
          if (phase[lane] == kind && now_sec - started[lane] >= watch_sec) {
            expiring[n_exp++] = static_cast<uint32_t>(lane);
          }
        }
      }
      if (n_exp == 0) continue;
      // LoadArchive::Average over (now - watch, now]: the samples sit
      // on the uniform tick grid j * tick, j = 1..k, summed
      // newest-first. Every lane of this kind expiring now shares the
      // same window — j_min depends on the watch length, not the arm
      // time — so when several expire together one row-major walk
      // sums them all at once: each lane still adds its exact scalar
      // sequence while the adds vectorize across the row. For a few
      // stragglers the lane-strided walk is cheaper.
      int64_t j_min = (now_sec - watch_sec) / tick_sec_ + 1;
      if (j_min < 1) j_min = 1;
      const size_t rows = static_cast<size_t>(k - j_min + 1);
      const size_t newest_slot = subject.hist_slot;
      double* sum = watch_sum_.data();
      if (n_exp >= 2) {
        kernels_->window_sum_rows(sum, subject.hist.data(), subject.cap,
                                  rows, newest_slot, L);
      } else {
        const size_t lane = expiring[0];
        double s = 0.0;
        size_t slot = newest_slot;
        for (size_t r = 0; r < rows; ++r) {
          s += subject.hist[slot * L + lane];
          slot = slot == 0 ? subject.cap - 1 : slot - 1;
        }
        sum[lane] = s;
      }
      const double count = static_cast<double>(k - j_min + 1);
      const double threshold = watching_overload ? overload : idle;
      for (size_t e = 0; e < n_exp; ++e) {
        const size_t lane = expiring[e];
        phase[lane] = kNormal;
        normal[lane >> 6] |= uint64_t{1} << (lane & 63);
        --subject.watching;
        const double average = sum[lane] / count;
        const bool fired = watching_overload ? average > threshold
                                             : average < threshold;
        if (fired) ++triggers_[lane];
      }
    }
    // Re-derive the earliest remaining deadline from the survivors.
    int64_t next = Subject::kNoExpiry;
    for (size_t base = 0, w = 0; base < L; base += 64, ++w) {
      uint64_t watch = ~normal[w];
      while (watch != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(watch));
        watch &= watch - 1;
        const size_t lane = base + bit;
        const int64_t watch_sec = phase[lane] == kWatchingOverload
                                      ? subject.overload_watch_sec
                                      : idle_watch_sec_;
        next = std::min(next, started[lane] + watch_sec);
      }
    }
    subject.next_expiry = next;
  }
  // Divergent rows re-converge once every lane is back in Normal.
  if (subject.watching == 0) subject.homogeneous = true;
}

void BatchRunner::ApplyWarmupReset() {
  // Body of the "metrics-warmup-end" event (runner.cc ArmSchedule):
  // quality counters restart, trigger counts do not.
  const size_t L = lanes_.size();
  for (size_t lane = 0; lane < L; ++lane) {
    engine_->ResetQualityMetrics(lane);
  }
  std::fill(overload_minutes_.begin(), overload_minutes_.end(), 0.0);
  std::fill(max_streak_.begin(), max_streak_.end(), 0.0);
  std::fill(streak_minutes_.begin(), streak_minutes_.end(), 0.0);
  std::fill(load_sum_.begin(), load_sum_.end(), 0.0);
  load_samples_ = 0;
}

void BatchRunner::Fold() {
  // Mirror of SimulationRunner::RunUntil's metric fold, with
  // simulator_.now() == Start + duration.
  const double total_minutes =
      static_cast<double>(config_.duration.seconds() -
                          config_.metrics_warmup.seconds()) /
      60.0;
  const double denom = static_cast<double>(num_servers_) * total_minutes;
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    RunMetrics& m = metrics_[lane];
    m.overload_server_minutes = overload_minutes_[lane];
    m.max_overload_streak_minutes = max_streak_[lane];
    m.triggers = triggers_[lane];
    m.lost_work_wu = engine_->TotalLostWork(lane);
    m.sla_violation_minutes = 0.0;
    m.average_cpu_load =
        load_samples_ > 0
            ? load_sum_[lane] / static_cast<double>(load_samples_)
            : 0.0;
    m.overload_fraction =
        denom > 0 ? m.overload_server_minutes / denom : 0.0;
  }
}

}  // namespace autoglobe
