#ifndef AUTOGLOBE_FORECAST_FORECASTER_H_
#define AUTOGLOBE_FORECAST_FORECASTER_H_

#include <string>

#include "common/result.h"
#include "common/sim_time.h"
#include "monitor/load_archive.h"

namespace autoglobe::forecast {

/// Tunables of the pattern-based forecaster.
struct ForecastConfig {
  /// How far ahead the controller wants to look.
  Duration horizon = Duration::Minutes(15);
  /// How many previous days contribute to the daily pattern.
  int history_days = 7;
  /// Per-day decay of older days' weight (most recent day weighs 1).
  double day_decay = 0.7;
  /// Blend between the daily pattern (1.0) and the latest measurement
  /// (0.0). The pattern dominates for services with periodic behavior.
  double pattern_weight = 0.6;
};

/// Short-term load forecasting from the load archive (the paper's
/// future-work item, §7: "predicting the future load of services
/// based on historic data stored in the load archive using pattern
/// matching"; elaborated in the authors' companion paper [8]).
///
/// The predictor exploits the strong daily periodicity of enterprise
/// workloads: the forecast for time t+h is a recency-weighted mean of
/// the archived loads at the same time of day on previous days,
/// blended with the current measurement.
class LoadForecaster {
 public:
  LoadForecaster(const monitor::LoadArchive* archive,
                 ForecastConfig config = {});

  /// Forecasts the subject's load at now + horizon. Falls back to the
  /// latest raw measurement when no daily history exists yet.
  /// NotFound when the subject has no samples at all.
  Result<double> Forecast(const std::string& key, SimTime now) const;

  /// Forecast with an explicit horizon (overrides the config).
  Result<double> ForecastAt(const std::string& key, SimTime now,
                            Duration horizon) const;

  const ForecastConfig& config() const { return config_; }

 private:
  /// Archived aggregate value at `at` (nearest bucket), if any.
  Result<double> HistoricValue(const std::string& key, SimTime at) const;

  const monitor::LoadArchive* archive_;
  ForecastConfig config_;
};

}  // namespace autoglobe::forecast

#endif  // AUTOGLOBE_FORECAST_FORECASTER_H_
