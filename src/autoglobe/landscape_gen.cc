#include "autoglobe/landscape_gen.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "workload/demand.h"
#include "workload/load_pattern.h"

namespace autoglobe {

namespace {

using infra::ServerSpec;
using infra::ServiceSpec;
using workload::LoadPattern;
using workload::ServiceDemandSpec;

/// Activity levels of the oscillating day profile. Both sit inside
/// the default monitor band (idle 0.125/PI .. overload 0.70) after
/// the target-load back-computation, so active services dirty their
/// loads every tick without ever arming a watch.
constexpr double kActiveLow = 0.5;
constexpr double kActiveHigh = 0.7;

Status ValidateSpec(const LandscapeGenSpec& spec) {
  if (spec.pools.empty()) {
    return Status::InvalidArgument("generator needs at least one pool");
  }
  for (const PoolGenSpec& pool : spec.pools) {
    if (pool.count <= 0) {
      return Status::InvalidArgument(StrFormat(
          "pool \"%s\" has no servers", pool.category.c_str()));
    }
    if (pool.category.empty()) {
      return Status::InvalidArgument("pool category must be non-empty");
    }
    if (pool.performance_index <= 0 || pool.memory_gb <= 0) {
      return Status::InvalidArgument(StrFormat(
          "pool \"%s\" needs positive performance index and memory",
          pool.category.c_str()));
    }
    if (spec.instances_per_service > pool.count) {
      return Status::InvalidArgument(StrFormat(
          "pool \"%s\" (%d servers) cannot host %d distinct instances "
          "of one service",
          pool.category.c_str(), pool.count, spec.instances_per_service));
    }
  }
  if (spec.num_services <= 0 || spec.instances_per_service <= 0) {
    return Status::InvalidArgument(
        "generator needs services and a positive instance multiplicity");
  }
  if (spec.active_services < 0 ||
      spec.active_services > spec.num_services) {
    return Status::InvalidArgument("active_services out of range");
  }
  if (spec.target_load <= 0 || spec.target_load >= 0.70) {
    return Status::InvalidArgument(
        "target_load must sit below the overload threshold");
  }
  if (spec.target_jitter < 0 || spec.target_jitter >= 1.0) {
    return Status::InvalidArgument("target_jitter must be in [0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<Landscape> GenerateLandscape(const LandscapeGenSpec& spec) {
  AG_RETURN_IF_ERROR(ValidateSpec(spec));
  Landscape landscape;

  // --- Servers, pool by pool, zero-padded sortable names ---------------
  struct PoolLayout {
    const PoolGenSpec* spec;
    size_t first_server;  // index into landscape.servers
  };
  std::vector<PoolLayout> pools;
  pools.reserve(spec.pools.size());
  size_t total_servers = 0;
  for (const PoolGenSpec& pool : spec.pools) {
    total_servers += static_cast<size_t>(pool.count);
  }
  landscape.servers.reserve(total_servers);
  for (const PoolGenSpec& pool : spec.pools) {
    pools.push_back(PoolLayout{&pool, landscape.servers.size()});
    for (int i = 0; i < pool.count; ++i) {
      ServerSpec server;
      server.name = StrFormat("%s-%05d", pool.category.c_str(), i + 1);
      server.category = pool.category;
      server.performance_index = pool.performance_index;
      server.num_cpus = pool.num_cpus;
      server.cpu_clock_ghz = pool.cpu_clock_ghz;
      server.cpu_cache_mb = pool.cpu_cache_mb;
      server.memory_gb = pool.memory_gb;
      landscape.servers.push_back(std::move(server));
    }
  }

  // --- Service -> pool assignment, stacking estimate -------------------
  // Services go to the pool with the largest remaining instance
  // deficit (servers minus instances assigned so far), so instance
  // counts track pool sizes and — whenever the spec provisions at
  // least one instance per server — no server is left empty to sit
  // below the idle threshold and spam serverIdle triggers. The
  // expected instances-per-server of each pool then divides the
  // per-server load target, so a server hosting e stacked instances
  // still peaks near target_load.
  int k = spec.instances_per_service;
  std::vector<int> pool_of_service(
      static_cast<size_t>(spec.num_services), 0);
  std::vector<int> pool_services(pools.size(), 0);
  {
    std::vector<int> deficit(pools.size());
    for (size_t p = 0; p < pools.size(); ++p) {
      deficit[p] = pools[p].spec->count;
    }
    for (int s = 0; s < spec.num_services; ++s) {
      size_t best = 0;
      for (size_t p = 1; p < pools.size(); ++p) {
        if (deficit[p] > deficit[best]) best = p;
      }
      pool_of_service[static_cast<size_t>(s)] = static_cast<int>(best);
      ++pool_services[best];
      deficit[best] -= k;
    }
  }
  std::vector<int> pool_stacking(pools.size(), 1);
  for (size_t p = 0; p < pools.size(); ++p) {
    int instances = pool_services[p] * k;
    pool_stacking[p] = std::max(
        1, (instances + pools[p].spec->count - 1) / pools[p].spec->count);
  }

  // The oscillating profile of the active services: alternating
  // hourly control points, linearly interpolated — the load moves
  // every minute, peaking at kActiveHigh.
  AG_ASSIGN_OR_RETURN(LoadPattern active_pattern,
                      LoadPattern::FromHourlyPoints([] {
                        std::vector<double> points(24);
                        for (size_t h = 0; h < points.size(); ++h) {
                          points[h] = (h % 2 == 0) ? kActiveLow
                                                   : kActiveHigh;
                        }
                        return points;
                      }()));

  // --- Services, demand, placement -------------------------------------
  Rng rng(spec.seed);
  landscape.services.reserve(static_cast<size_t>(spec.num_services));
  landscape.demand.reserve(static_cast<size_t>(spec.num_services));
  landscape.initial_allocation.reserve(
      static_cast<size_t>(spec.num_services) * static_cast<size_t>(k));
  std::vector<double> used_memory(landscape.servers.size(), 0.0);
  // Per-pool rotating placement cursor spreads instances evenly.
  std::vector<int> cursor(pools.size(), 0);

  for (int s = 0; s < spec.num_services; ++s) {
    size_t p = static_cast<size_t>(pool_of_service[static_cast<size_t>(s)]);
    const PoolGenSpec& pool = *pools[p].spec;

    ServiceSpec service;
    service.name = StrFormat("Svc-%05d", s + 1);
    service.role = infra::ServiceRole::kApplicationServer;
    service.min_instances = 1;
    service.max_instances = std::max(2 * k, k + 1);
    service.memory_footprint_gb = spec.memory_footprint_gb;
    service.allowed_actions = {infra::ActionType::kScaleOut,
                               infra::ActionType::kScaleIn,
                               infra::ActionType::kMove};
    landscape.services.push_back(std::move(service));

    // Back-compute the user count so that one instance contributes
    // target / stacking to its server's CPU at the profile's peak:
    //   load = (base_load_wu + users_per_instance * a * cost / U) / PI
    // with U = kUsersPerPerformanceUnit, solved at a = kActiveHigh.
    bool active = s < spec.active_services;
    double jitter =
        1.0 - spec.target_jitter * rng.NextDouble();  // (1-j, 1]
    double per_instance_target =
        spec.target_load * jitter /
        static_cast<double>(pool_stacking[p]);
    double peak_activity = active ? kActiveHigh : kActiveLow;
    double work_at_peak =
        per_instance_target * pool.performance_index - spec.base_load_wu;
    if (work_at_peak <= 0) {
      return Status::InvalidArgument(StrFormat(
          "target load %.3f too small for base load %.3f on pool \"%s\"",
          spec.target_load, spec.base_load_wu, pool.category.c_str()));
    }
    ServiceDemandSpec demand;
    demand.service = landscape.services.back().name;
    demand.pattern =
        active ? active_pattern : LoadPattern::Flat(kActiveLow);
    demand.base_users = static_cast<double>(k) * work_at_peak *
                        workload::kUsersPerPerformanceUnit /
                        (spec.request_cost * peak_activity);
    demand.request_cost = spec.request_cost;
    demand.base_load_wu = spec.base_load_wu;
    demand.noise_stddev = spec.noise_stddev;
    landscape.demand.push_back(std::move(demand));

    // Place k instances on distinct servers of the pool, skipping
    // servers whose memory is exhausted.
    for (int j = 0; j < k; ++j) {
      int tried = 0;
      bool placed = false;
      while (tried < pool.count) {
        int slot = cursor[p];
        cursor[p] = (cursor[p] + 1) % pool.count;
        ++tried;
        size_t server_index =
            pools[p].first_server + static_cast<size_t>(slot);
        if (used_memory[server_index] + spec.memory_footprint_gb >
            pool.memory_gb + 1e-9) {
          continue;
        }
        used_memory[server_index] += spec.memory_footprint_gb;
        landscape.initial_allocation.emplace_back(
            landscape.services.back().name,
            landscape.servers[server_index].name);
        placed = true;
        break;
      }
      if (!placed) {
        return Status::ResourceExhausted(StrFormat(
            "pool \"%s\" out of memory placing %s",
            pool.category.c_str(),
            landscape.services.back().name.c_str()));
      }
    }
  }
  return landscape;
}

LandscapeGenSpec MakeScaleSpec(int num_servers, uint64_t seed) {
  LandscapeGenSpec spec;
  spec.seed = seed;
  // Three pools: half small blades, 40 % mid blades, the rest large
  // hosts (remainders land in the first pool). Every pool keeps at
  // least two servers so the two-instance services always fit.
  int mid = std::max(2, num_servers * 4 / 10);
  int large = std::max(2, num_servers / 10);
  int small = std::max(2, num_servers - mid - large);
  spec.pools.push_back(
      PoolGenSpec{"pool-bx300", small, 1.0, 1, 0.933, 0.25, 4.0});
  spec.pools.push_back(
      PoolGenSpec{"pool-bx600", mid, 2.0, 2, 0.933, 0.25, 8.0});
  spec.pools.push_back(
      PoolGenSpec{"pool-bl40p", large, 4.0, 4, 2.8, 2.0, 16.0});
  spec.instances_per_service = 2;
  // Enough services that the max-deficit assignment covers every
  // server with at least one instance (no idle-trigger noise), plus a
  // small surplus absorbing per-pool rounding.
  spec.num_services =
      std::max(3, (num_servers + 1) / 2 + static_cast<int>(spec.pools.size()));
  // Fixed activity regardless of fleet size: per-tick evaluation work
  // should track these 16 services, not the server count.
  spec.active_services = std::min(16, spec.num_services);
  return spec;
}

}  // namespace autoglobe
