#include "controller/rule_bases.h"

#include <gtest/gtest.h>

#include "fuzzy/compiled.h"

namespace autoglobe::controller {
namespace {

using fuzzy::InferenceEngine;
using fuzzy::Inputs;
using infra::ActionType;
using monitor::TriggerKind;

constexpr TriggerKind kAllTriggers[] = {
    TriggerKind::kServiceOverloaded, TriggerKind::kServiceIdle,
    TriggerKind::kServerOverloaded, TriggerKind::kServerIdle};

Inputs BaseInputs() {
  return Inputs{{"cpuLoad", 0.5},          {"memLoad", 0.3},
                {"performanceIndex", 2.0}, {"instanceLoad", 0.5},
                {"serviceLoad", 0.5},      {"instancesOnServer", 1.0},
                {"instancesOfService", 3.0}};
}

TEST(RuleBasesTest, ActionVariablesCoverTables1And2) {
  fuzzy::RuleBase rb = MakeActionSelectionVariables("probe");
  // Table 1 inputs.
  for (const char* name :
       {"cpuLoad", "memLoad", "performanceIndex", "instanceLoad",
        "serviceLoad", "instancesOnServer", "instancesOfService"}) {
    EXPECT_TRUE(rb.HasVariable(name)) << name;
  }
  // Table 2 outputs.
  for (ActionType action : infra::kAllActionTypes) {
    EXPECT_TRUE(rb.HasVariable(infra::ActionTypeName(action)))
        << infra::ActionTypeName(action);
  }
}

TEST(RuleBasesTest, ServerVariablesCoverTable3) {
  fuzzy::RuleBase rb = MakeServerSelectionVariables("probe");
  for (const char* name :
       {"cpuLoad", "memLoad", "instancesOnServer", "performanceIndex",
        "numberOfCpus", "cpuClock", "cpuCache", "memory", "swapSpace",
        "tempSpace"}) {
    EXPECT_TRUE(rb.HasVariable(name)) << name;
  }
  EXPECT_TRUE(rb.HasVariable("suitability"));
}

TEST(RuleBasesTest, AllFourTriggerBasesBuildAndValidate) {
  size_t total_rules = 0;
  for (TriggerKind kind : kAllTriggers) {
    auto rb = MakeDefaultActionRuleBase(kind);
    ASSERT_TRUE(rb.ok()) << monitor::TriggerKindName(kind) << ": "
                         << rb.status();
    EXPECT_GE(rb->size(), 3u);
    total_rules += rb->size();
  }
  // Together with the server-selection bases the controller ships
  // "about 40 rules" (paper §3/§7).
  for (ActionType action : infra::kAllActionTypes) {
    if (!infra::ActionNeedsTargetServer(action)) continue;
    auto rb = MakeDefaultServerRuleBase(action);
    ASSERT_TRUE(rb.ok()) << rb.status();
    total_rules += rb->size();
  }
  EXPECT_GE(total_rules, 40u);
}

TEST(RuleBasesTest, PaperFlagshipRulesBehave) {
  // "it is reasonable to move a service to a more powerful host
  //  (scale-up) if the host running the service has a high load and a
  //  low or medium performance index. [scale-out] if the host running
  //  the service is highly loaded despite it being very powerful."
  auto rb = MakeDefaultActionRuleBase(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(rb.ok());
  InferenceEngine engine;

  Inputs weak_host = BaseInputs();
  weak_host["cpuLoad"] = 0.95;
  weak_host["instanceLoad"] = 0.95;
  weak_host["serviceLoad"] = 0.6;  // not the whole service
  weak_host["performanceIndex"] = 1.0;
  auto scale_up = engine.InferValue(*rb, weak_host, "scaleUp");
  ASSERT_TRUE(scale_up.ok());
  EXPECT_GT(*scale_up, 0.5);

  Inputs strong_host = weak_host;
  strong_host["performanceIndex"] = 9.0;
  auto up_on_strong = engine.InferValue(*rb, strong_host, "scaleUp");
  auto out_on_strong = engine.InferValue(*rb, strong_host, "scaleOut");
  ASSERT_TRUE(up_on_strong.ok());
  ASSERT_TRUE(out_on_strong.ok());
  EXPECT_LT(*up_on_strong, 0.1);
  EXPECT_GT(*out_on_strong, *up_on_strong);
}

TEST(RuleBasesTest, ServiceWideSaturationPrefersScaleOut) {
  auto rb = MakeDefaultActionRuleBase(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(rb.ok());
  InferenceEngine engine;
  Inputs hot = BaseInputs();
  hot["serviceLoad"] = 0.95;
  hot["instanceLoad"] = 0.95;
  hot["cpuLoad"] = 0.95;
  hot["instancesOfService"] = 2.0;
  auto outputs = engine.Infer(*rb, hot);
  ASSERT_TRUE(outputs.ok());
  double scale_out = outputs->at("scaleOut").crisp;
  for (const auto& [variable, output] : *outputs) {
    if (variable == "scaleOut") continue;
    EXPECT_GE(scale_out, output.crisp) << variable;
  }
}

TEST(RuleBasesTest, IdleBaseProposesScaleInOnlyWithInstancesToSpare) {
  auto rb = MakeDefaultActionRuleBase(TriggerKind::kServiceIdle);
  ASSERT_TRUE(rb.ok());
  InferenceEngine engine;
  Inputs idle = BaseInputs();
  idle["serviceLoad"] = 0.02;
  idle["instanceLoad"] = 0.02;
  idle["cpuLoad"] = 0.05;

  idle["instancesOfService"] = 8.0;  // many
  auto with_many = engine.InferValue(*rb, idle, "scaleIn");
  ASSERT_TRUE(with_many.ok());
  EXPECT_GT(*with_many, 0.6);

  idle["instancesOfService"] = 2.0;  // few/some boundary
  auto with_few = engine.InferValue(*rb, idle, "scaleIn");
  ASSERT_TRUE(with_few.ok());
  EXPECT_LT(*with_few, 0.3);  // below the controller threshold
}

TEST(RuleBasesTest, IdleOnBigIronSuggestsScaleDown) {
  auto rb = MakeDefaultActionRuleBase(TriggerKind::kServiceIdle);
  ASSERT_TRUE(rb.ok());
  InferenceEngine engine;
  Inputs idle = BaseInputs();
  idle["serviceLoad"] = 0.02;
  idle["instanceLoad"] = 0.02;
  idle["cpuLoad"] = 0.05;
  idle["instancesOfService"] = 1.0;
  idle["performanceIndex"] = 9.0;
  auto scale_down = engine.InferValue(*rb, idle, "scaleDown");
  ASSERT_TRUE(scale_down.ok());
  EXPECT_GT(*scale_down, 0.5);
  idle["performanceIndex"] = 1.0;
  EXPECT_LT(*engine.InferValue(*rb, idle, "scaleDown"), 0.1);
}

TEST(RuleBasesTest, ScaleUpServerBasePrefersBigIron) {
  auto rb = MakeDefaultServerRuleBase(ActionType::kScaleUp);
  ASSERT_TRUE(rb.ok());
  InferenceEngine engine;
  Inputs idle_small{{"cpuLoad", 0.05},    {"memLoad", 0.3},
                    {"instancesOnServer", 1.0},
                    {"performanceIndex", 1.0},
                    {"numberOfCpus", 1.0}, {"cpuClock", 0.9},
                    {"cpuCache", 0.25},    {"memory", 2.0},
                    {"swapSpace", 4.0},    {"tempSpace", 40.0}};
  Inputs idle_big = idle_small;
  idle_big["performanceIndex"] = 9.0;
  idle_big["numberOfCpus"] = 4.0;
  idle_big["cpuClock"] = 2.8;
  idle_big["cpuCache"] = 2.0;
  idle_big["memory"] = 12.0;
  auto small = engine.InferValue(*rb, idle_small, "suitability");
  auto big = engine.InferValue(*rb, idle_big, "suitability");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(*big, *small);
  EXPECT_GT(*big, 0.8);
}

TEST(RuleBasesTest, ScaleDownServerBasePrefersSmallHosts) {
  auto rb = MakeDefaultServerRuleBase(ActionType::kScaleDown);
  ASSERT_TRUE(rb.ok());
  InferenceEngine engine;
  Inputs host{{"cpuLoad", 0.05},    {"memLoad", 0.3},
              {"instancesOnServer", 1.0},
              {"performanceIndex", 1.0},
              {"numberOfCpus", 1.0}, {"cpuClock", 0.9},
              {"cpuCache", 0.25},    {"memory", 2.0},
              {"swapSpace", 4.0},    {"tempSpace", 40.0}};
  auto small = engine.InferValue(*rb, host, "suitability");
  host["performanceIndex"] = 9.0;
  auto big = engine.InferValue(*rb, host, "suitability");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(*small, *big);
}

TEST(RuleBasesTest, LoadedHostsScorePoorlyForEveryAction) {
  for (ActionType action : infra::kAllActionTypes) {
    if (!infra::ActionNeedsTargetServer(action)) continue;
    auto rb = MakeDefaultServerRuleBase(action);
    ASSERT_TRUE(rb.ok());
    InferenceEngine engine;
    Inputs slammed{{"cpuLoad", 0.97},    {"memLoad", 0.95},
                   {"instancesOnServer", 6.0},
                   {"performanceIndex", 2.0},
                   {"numberOfCpus", 2.0}, {"cpuClock", 0.9},
                   {"cpuCache", 0.25},    {"memory", 4.0},
                   {"swapSpace", 8.0},    {"tempSpace", 40.0}};
    auto score = engine.InferValue(*rb, slammed, "suitability");
    ASSERT_TRUE(score.ok());
    EXPECT_LT(*score, 0.15) << infra::ActionTypeName(action);
  }
}

// The controller runs every default base through the compiled kernel;
// pin the compiled results to the interpreted reference across a grid
// of load situations and all three defuzzifiers.
TEST(RuleBasesTest, CompiledMatchesInterpretedOnDefaultActionBases) {
  for (TriggerKind kind : kAllTriggers) {
    auto rb = MakeDefaultActionRuleBase(kind);
    ASSERT_TRUE(rb.ok());
    auto compiled = fuzzy::CompiledRuleBase::Compile(*rb);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    for (double cpu : {0.05, 0.5, 0.95}) {
      for (double instances : {1.0, 3.0}) {
        Inputs inputs = BaseInputs();
        inputs["cpuLoad"] = cpu;
        inputs["serviceLoad"] = cpu;
        inputs["instancesOfService"] = instances;
        for (fuzzy::Defuzzifier method :
             {fuzzy::Defuzzifier::kLeftmostMax,
              fuzzy::Defuzzifier::kMeanOfMax,
              fuzzy::Defuzzifier::kCentroid}) {
          InferenceEngine engine(method);
          for (const std::string& output : rb->OutputVariables()) {
            auto want = engine.InferValue(*rb, inputs, output);
            ASSERT_TRUE(want.ok()) << want.status();
            auto got = compiled->EvaluateValue(inputs, method, output);
            ASSERT_TRUE(got.ok()) << got.status();
            EXPECT_NEAR(*got, *want, 1e-12)
                << monitor::TriggerKindName(kind) << " " << output;
          }
        }
      }
    }
  }
}

TEST(RuleBasesTest, CompiledMatchesInterpretedOnDefaultServerBases) {
  for (ActionType action : infra::kAllActionTypes) {
    if (!infra::ActionNeedsTargetServer(action)) continue;
    auto rb = MakeDefaultServerRuleBase(action);
    ASSERT_TRUE(rb.ok());
    auto compiled = fuzzy::CompiledRuleBase::Compile(*rb);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    for (double cpu : {0.05, 0.4, 0.97}) {
      for (double pi : {1.0, 4.0}) {
        Inputs inputs{{"cpuLoad", cpu},      {"memLoad", cpu},
                      {"instancesOnServer", 2.0},
                      {"performanceIndex", pi},
                      {"numberOfCpus", 4.0}, {"cpuClock", 2.0},
                      {"cpuCache", 1.0},     {"memory", 16.0},
                      {"swapSpace", 16.0},   {"tempSpace", 100.0}};
        for (fuzzy::Defuzzifier method :
             {fuzzy::Defuzzifier::kLeftmostMax,
              fuzzy::Defuzzifier::kMeanOfMax,
              fuzzy::Defuzzifier::kCentroid}) {
          InferenceEngine engine(method);
          auto want = engine.InferValue(*rb, inputs, "suitability");
          ASSERT_TRUE(want.ok()) << want.status();
          auto got = compiled->EvaluateValue(inputs, method, "suitability");
          ASSERT_TRUE(got.ok()) << got.status();
          EXPECT_NEAR(*got, *want, 1e-12) << infra::ActionTypeName(action);
        }
      }
    }
  }
}

}  // namespace
}  // namespace autoglobe::controller
