#ifndef AUTOGLOBE_BENCH_ABLATION_UTIL_H_
#define AUTOGLOBE_BENCH_ABLATION_UTIL_H_

// Shared driver for the ablation benches (DESIGN.md A1-A5): run the
// paper landscape with one knob changed and report the quality
// metrics that expose the trade-off.

#include <cstdio>
#include <functional>

#include "autoglobe/capacity.h"
#include "common/logging.h"

namespace autoglobe::bench {

inline RunMetrics RunWithConfig(
    Scenario scenario, double user_scale,
    const std::function<void(RunnerConfig*)>& tweak,
    Duration duration = Duration::Hours(80),
    Duration warmup = Duration::Hours(24)) {
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = MakeScenarioConfig(scenario, user_scale);
  config.duration = duration;
  config.metrics_warmup = warmup;
  if (tweak) tweak(&config);
  auto runner = SimulationRunner::Create(landscape, config);
  AG_CHECK_OK(runner.status());
  AG_CHECK_OK((*runner)->Run());
  return (*runner)->metrics();
}

inline void PrintMetricsRow(const char* label, const RunMetrics& m) {
  std::printf("%-14s %9.0f %9.2f%% %8.0f %9.1f %8lld %8lld %7lld\n",
              label, m.overload_server_minutes,
              m.overload_fraction * 100.0, m.max_overload_streak_minutes,
              m.lost_work_wu, static_cast<long long>(m.actions_executed),
              static_cast<long long>(m.triggers),
              static_cast<long long>(m.alerts));
}

inline void PrintMetricsHeader(const char* knob) {
  std::printf("%-14s %9s %10s %8s %9s %8s %8s %7s\n", knob, "ovl-min",
              "ovl-frac", "streak", "lost-wu", "actions", "triggers",
              "alerts");
}

}  // namespace autoglobe::bench

#endif  // AUTOGLOBE_BENCH_ABLATION_UTIL_H_
