#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/fileio.h"
#include "common/strings.h"

namespace autoglobe::obs {

void Histogram::Observe(double value) {
  if (slot_ == nullptr) return;
  auto it = std::lower_bound(slot_->bounds.begin(), slot_->bounds.end(),
                             value);
  size_t bucket = static_cast<size_t>(it - slot_->bounds.begin());
  slot_->buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot_->count.fetch_add(1, std::memory_order_relaxed);
  slot_->sum.fetch_add(value, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based, ceil), then walk the
  // cumulative distribution to the containing bucket.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    uint64_t in_bucket = counts[i];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) return bounds.back();  // overflow bucket
    double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    double hi = bounds[i];
    double within = in_bucket == 0
                        ? 1.0
                        : static_cast<double>(rank - cumulative) /
                              static_cast<double>(in_bucket);
    return lo + (hi - lo) * within;
  }
  return bounds.back();
}

MetricsSnapshot MetricsSnapshot::Merge(
    const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;
  std::map<std::string, size_t> counter_index;
  std::map<std::string, size_t> gauge_index;
  std::map<std::string, size_t> histogram_index;
  for (const MetricsSnapshot& part : parts) {
    for (const auto& [name, value] : part.counters) {
      auto [it, inserted] =
          counter_index.emplace(name, merged.counters.size());
      if (inserted) {
        merged.counters.emplace_back(name, value);
      } else {
        merged.counters[it->second].second += value;
      }
    }
    for (const auto& [name, value] : part.gauges) {
      auto [it, inserted] = gauge_index.emplace(name, merged.gauges.size());
      if (inserted) {
        merged.gauges.emplace_back(name, value);
      } else {
        merged.gauges[it->second].second = value;
      }
    }
    for (const HistogramSnapshot& histogram : part.histograms) {
      auto [it, inserted] =
          histogram_index.emplace(histogram.name, merged.histograms.size());
      if (inserted) {
        merged.histograms.push_back(histogram);
        continue;
      }
      HistogramSnapshot& into = merged.histograms[it->second];
      into.count += histogram.count;
      into.sum += histogram.sum;
      if (into.bounds == histogram.bounds) {
        for (size_t i = 0; i < into.counts.size(); ++i) {
          into.counts[i] += histogram.counts[i];
        }
      }
    }
  }
  return merged;
}

std::string MetricsSnapshot::ToJson() const {
  std::string json = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    json += StrFormat("%s\n    \"%s\": %llu", i > 0 ? "," : "",
                      counters[i].first.c_str(),
                      static_cast<unsigned long long>(counters[i].second));
  }
  json += counters.empty() ? "},\n" : "\n  },\n";
  json += "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    json += StrFormat("%s\n    \"%s\": %.9g", i > 0 ? "," : "",
                      gauges[i].first.c_str(), gauges[i].second);
  }
  json += gauges.empty() ? "},\n" : "\n  },\n";
  json += "  \"histograms\": [";
  for (size_t h = 0; h < histograms.size(); ++h) {
    const HistogramSnapshot& histogram = histograms[h];
    json += StrFormat(
        "%s\n    {\"name\": \"%s\", \"count\": %llu, \"sum\": %.9g, "
        "\"mean\": %.9g, \"p50\": %.9g, \"p90\": %.9g, \"p99\": %.9g,\n"
        "     \"bounds\": [",
        h > 0 ? "," : "", histogram.name.c_str(),
        static_cast<unsigned long long>(histogram.count), histogram.sum,
        histogram.Mean(), histogram.Quantile(0.5), histogram.Quantile(0.9),
        histogram.Quantile(0.99));
    for (size_t i = 0; i < histogram.bounds.size(); ++i) {
      json += StrFormat("%s%.9g", i > 0 ? ", " : "", histogram.bounds[i]);
    }
    json += "], \"buckets\": [";
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      json += StrFormat("%s%llu", i > 0 ? ", " : "",
                        static_cast<unsigned long long>(histogram.counts[i]));
    }
    json += "]}";
  }
  json += histograms.empty() ? "]\n" : "\n  ]\n";
  json += "}\n";
  return json;
}

Status MetricsSnapshot::WriteJson(const std::string& path) const {
  // Durable write: dashboards polling the file never see a torn JSON
  // document, even if the exporter dies mid-write.
  return AtomicWriteFile(path, ToJson());
}

Counter MetricsRegistry::AddCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (CounterSlot& slot : counters_) {
    if (slot.name == name) return Counter(&slot.value);
  }
  counters_.emplace_back();
  counters_.back().name = name;
  return Counter(&counters_.back().value);
}

Gauge MetricsRegistry::AddGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (GaugeSlot& slot : gauges_) {
    if (slot.name == name) return Gauge(&slot.value);
  }
  gauges_.emplace_back();
  gauges_.back().name = name;
  return Gauge(&gauges_.back().value);
}

Histogram MetricsRegistry::AddHistogram(const std::string& name,
                                        std::vector<double> bucket_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Histogram::Slot& slot : histograms_) {
    if (slot.name == name) return Histogram(&slot);
  }
  std::sort(bucket_bounds.begin(), bucket_bounds.end());
  bucket_bounds.erase(
      std::unique(bucket_bounds.begin(), bucket_bounds.end()),
      bucket_bounds.end());
  if (bucket_bounds.empty()) bucket_bounds.push_back(1.0);
  histograms_.emplace_back();
  Histogram::Slot& slot = histograms_.back();
  slot.name = name;
  slot.bounds = std::move(bucket_bounds);
  slot.buckets =
      std::make_unique<std::atomic<uint64_t>[]>(slot.bounds.size() + 1);
  for (size_t i = 0; i <= slot.bounds.size(); ++i) {
    slot.buckets[i].store(0, std::memory_order_relaxed);
  }
  return Histogram(&slot);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const CounterSlot& slot : counters_) {
    snapshot.counters.emplace_back(
        slot.name, slot.value.load(std::memory_order_relaxed));
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const GaugeSlot& slot : gauges_) {
    snapshot.gauges.emplace_back(slot.name,
                                 slot.value.load(std::memory_order_relaxed));
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const Histogram::Slot& slot : histograms_) {
    HistogramSnapshot histogram;
    histogram.name = slot.name;
    histogram.bounds = slot.bounds;
    histogram.counts.resize(slot.bounds.size() + 1);
    for (size_t i = 0; i <= slot.bounds.size(); ++i) {
      histogram.counts[i] = slot.buckets[i].load(std::memory_order_relaxed);
    }
    histogram.count = slot.count.load(std::memory_order_relaxed);
    histogram.sum = slot.sum.load(std::memory_order_relaxed);
    snapshot.histograms.push_back(std::move(histogram));
  }
  return snapshot;
}

Status MetricsRegistry::Restore(const MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    AddCounter(name);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    AddGauge(name);
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    AddHistogram(histogram.name, histogram.bounds);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : snapshot.counters) {
    for (CounterSlot& slot : counters_) {
      if (slot.name == name) {
        slot.value.store(value, std::memory_order_relaxed);
        break;
      }
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    for (GaugeSlot& slot : gauges_) {
      if (slot.name == name) {
        slot.value.store(value, std::memory_order_relaxed);
        break;
      }
    }
  }
  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    for (Histogram::Slot& slot : histograms_) {
      if (slot.name != histogram.name) continue;
      if (slot.bounds != histogram.bounds ||
          histogram.counts.size() != slot.bounds.size() + 1) {
        return Status::ParseError(StrFormat(
            "histogram \"%s\": snapshot buckets do not match the "
            "registered bounds",
            histogram.name.c_str()));
      }
      for (size_t i = 0; i < histogram.counts.size(); ++i) {
        slot.buckets[i].store(histogram.counts[i],
                              std::memory_order_relaxed);
      }
      slot.count.store(histogram.count, std::memory_order_relaxed);
      slot.sum.store(histogram.sum, std::memory_order_relaxed);
      break;
    }
  }
  return Status::OK();
}

}  // namespace autoglobe::obs
