#include "sim/simulator.h"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "common/result.h"
#include "common/strings.h"

namespace autoglobe::sim {

namespace {

struct LabelHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct LabelEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

/// Process-wide label intern table. Elements of an unordered_set are
/// node-stable, so views into them stay valid forever; the table is
/// leaked deliberately (labels may be traced during static teardown).
std::string_view InternLabel(std::string_view label) {
  static std::mutex mutex;
  static auto* table = new std::unordered_set<std::string, LabelHash, LabelEq>();
  std::lock_guard<std::mutex> lock(mutex);
  auto it = table->find(label);
  if (it == table->end()) it = table->emplace(label).first;
  return *it;
}

}  // namespace

EventLabel::EventLabel(const std::string& dynamic)
    : label_(InternLabel(dynamic)) {}
EventLabel::EventLabel(std::string_view dynamic)
    : label_(InternLabel(dynamic)) {}

void Simulator::ReserveEvents(size_t expected_events) {
  state_.reserve(state_.size() + expected_events + 1);
  // The heap holds only *pending* events, far fewer than the ids ever
  // allocated; a modest slice of the hint removes early regrowth.
  heap_.reserve(std::max<size_t>(heap_.capacity(), 64));
}

EventId Simulator::AllocateId() {
  EventId id = next_id_++;
  if (state_.size() <= id) state_.resize(id + 1, EventState::kDone);
  return id;
}

void Simulator::Push(Event event) {
  heap_.push_back(std::move(event));
  std::push_heap(heap_.begin(), heap_.end(), EventOrder{});
}

Simulator::Event Simulator::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), EventOrder{});
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

Result<EventId> Simulator::ScheduleAt(SimTime at, EventLabel label,
                                      Callback callback) {
  if (at < now_) {
    return Status::InvalidArgument(
        StrFormat("cannot schedule event \"%.*s\" in the past (%s < %s)",
                  static_cast<int>(label.view().size()), label.view().data(),
                  at.ToString().c_str(), now_.ToString().c_str()));
  }
  if (!callback) {
    return Status::InvalidArgument("event callback must not be empty");
  }
  EventId id = AllocateId();
  StateOf(id) = EventState::kLive;
  ++live_count_;
  Push(Event{at, next_seq_++, id, label, std::move(callback), nullptr,
             Duration::Zero()});
  return id;
}

Result<EventId> Simulator::ScheduleAfter(Duration delay, EventLabel label,
                                         Callback callback) {
  if (delay < Duration::Zero()) {
    return Status::InvalidArgument("delay must be non-negative");
  }
  return ScheduleAt(now_ + delay, label, std::move(callback));
}

Result<EventId> Simulator::SchedulePeriodic(Duration period,
                                            EventLabel label,
                                            Callback callback) {
  if (period <= Duration::Zero()) {
    return Status::InvalidArgument("period must be positive");
  }
  if (!callback) {
    return Status::InvalidArgument("event callback must not be empty");
  }
  EventId id = AllocateId();
  StateOf(id) = EventState::kLive;
  ++live_count_;
  Push(Event{now_ + period, next_seq_++, id, label, nullptr,
             std::make_shared<Callback>(std::move(callback)), period});
  return id;
}

Status Simulator::Cancel(EventId id) {
  if (id >= state_.size() || StateOf(id) != EventState::kLive) {
    return Status::NotFound(StrFormat("no pending event %llu",
                                      static_cast<unsigned long long>(id)));
  }
  // Lazy cancellation: the queue entry is skipped (and never
  // re-armed, for periodic series) when popped.
  StateOf(id) = EventState::kCancelled;
  --live_count_;
  return Status::OK();
}

void Simulator::Reset() {
  heap_.clear();
  std::fill(state_.begin(), state_.end(), EventState::kDone);
  live_count_ = 0;
  now_ = SimTime::Start();
  next_seq_ = 0;
  next_id_ = 1;
  dispatched_ = 0;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event event = PopTop();
    if (StateOf(event.id) == EventState::kCancelled) {
      StateOf(event.id) = EventState::kDone;
      continue;
    }
    now_ = event.at;
    ++dispatched_;
    if (event.period <= Duration::Zero()) {
      StateOf(event.id) = EventState::kDone;
      --live_count_;
      if (trace_ != nullptr) {
        trace_->Record(now_, obs::TraceEventKind::kEventDispatch,
                       event.label.view(), {},
                       static_cast<int64_t>(event.id));
      }
      event.once();
    } else {
      if (trace_ != nullptr) {
        trace_->Record(now_, obs::TraceEventKind::kEventDispatch,
                       event.label.view(), {},
                       static_cast<int64_t>(event.id));
      }
      // Re-arm the series before invoking, so the callback may cancel
      // its own series by id. The callback is shared, not copied.
      Push(Event{event.at + event.period, next_seq_++, event.id,
                 event.label, nullptr, event.series, event.period});
      (*event.series)();
    }
    return true;
  }
  return false;
}

void Simulator::RunUntil(SimTime end) {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (StateOf(top.id) == EventState::kCancelled) {
      StateOf(top.id) = EventState::kDone;
      PopTop();
      continue;
    }
    if (top.at > end) break;
    Step();
  }
  if (now_ < end) now_ = end;
}

void Simulator::RunAll() {
  while (Step()) {
  }
}

}  // namespace autoglobe::sim
