#ifndef AUTOGLOBE_WORKLOAD_BATCH_DEMAND_H_
#define AUTOGLOBE_WORKLOAD_BATCH_DEMAND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/lane_kernels.h"
#include "common/philox.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/rng_kind.h"
#include "common/sim_time.h"
#include "infra/cluster.h"
#include "infra/ids.h"
#include "workload/demand.h"

namespace autoglobe::workload {

/// Batched multi-run demand engine: steps B independent simulation
/// runs ("lanes") in lockstep on one thread. All lanes share one
/// topology (the cluster and its LandscapeIndex) and the registered
/// demand specs; each lane owns its dynamic state — users, backlogs,
/// queues, loads, quality metrics, and an RNG stream — laid out
/// SoA-across-runs as `[entity * lanes + lane]` contiguous arrays so
/// the per-tick inner loops iterate lane-innermost (branch-light,
/// auto-vectorizable, zero steady-state allocation).
///
/// Bit-identity contract: lane `k` of a batched Tick sequence is
/// bit-identical to a scalar DemandEngine constructed with
/// `Rng(seed_k)` and the same registrations, scale, and distribution,
/// ticked at the same times. Every per-lane loop preserves the scalar
/// engine's iteration order (specs in name order, instances in
/// InstanceId span order, servers in dense-id order), every per-lane
/// floating-point accumulator sees the same operation sequence, and
/// RNG draws stay strictly conditional (a lane draws noise exactly
/// when the scalar path would), so stream positions never shift.
///
/// Divergent per-lane control flow — fault masks flipping an
/// instance's state in one lane only — executes masked: lanes gather
/// their effective instance states per tick (shared topology, per-
/// lane state bytes), and the branchy paths (sticky-session
/// reconciliation, the water-filling CPU model) run per lane over the
/// strided arrays. Structural topology changes apply to the shared
/// cluster and therefore to every lane at once; per-lane *topology*
/// divergence is out of scope here (the batch driver detaches such a
/// lane to a scalar engine instead, see autoglobe/batch_runner.h).
class BatchDemandEngine : public DemandModelSink {
 public:
  /// `lanes` is fixed for the engine's lifetime (1..1024).
  BatchDemandEngine(infra::Cluster* cluster, size_t lanes);

  BatchDemandEngine(const BatchDemandEngine&) = delete;
  BatchDemandEngine& operator=(const BatchDemandEngine&) = delete;

  // --- DemandModelSink (shared across lanes) ---------------------------
  Status AddService(ServiceDemandSpec spec) override;
  Status AddSubsystem(SubsystemSpec spec) override;

  size_t lanes() const { return lanes_; }

  /// Re-seeds a lane's RNG stream (matches a scalar engine built with
  /// `Rng(seed)` — or, in philox mode, `PhiloxRng(seed)`). Both
  /// disciplines are re-seeded so set_rng_kind can be called in
  /// either order.
  void SetLaneSeed(size_t lane, uint64_t seed);
  /// Selects the draw discipline for every lane (default kXoshiro,
  /// the legacy sequential streams). In kPhilox mode noise draws run
  /// through the lane-strided counter-based streams — evaluated 4
  /// lanes at a time by the AVX2 row kernels where available, and
  /// bit-identical to a scalar DemandEngine in philox mode lane by
  /// lane (DESIGN.md §16).
  void set_rng_kind(RngKind kind) { rng_kind_ = kind; }
  RngKind rng_kind() const { return rng_kind_; }
  /// Per-lane user multiplier (the capacity sweep's +5 % knob — lanes
  /// of one batch typically differ only in scale or seed).
  void SetLaneUserScale(size_t lane, double scale);
  double LaneUserScale(size_t lane) const { return user_scale_[lane]; }

  void set_distribution(UserDistribution distribution) {
    distribution_ = distribution;
  }
  UserDistribution distribution() const { return distribution_; }
  void set_fluctuation_per_minute(double fraction) {
    fluctuation_per_minute_ = fraction;
  }
  void set_overload_threshold(double threshold) {
    overload_threshold_ = threshold;
  }

  // --- Per-lane fault masking ------------------------------------------
  /// Overrides the state of `id` in `lane` only; other lanes keep
  /// reading the shared cluster state. This is the masked execution
  /// path for per-lane fault schedules (a crash in lane 3 must not
  /// perturb lane 5). The override persists until cleared.
  Status SetLaneInstanceState(size_t lane, infra::InstanceId id,
                              infra::InstanceState state);
  /// Removes a lane's override; the lane reads the cluster state again.
  Status ClearLaneInstanceState(size_t lane, infra::InstanceId id);

  /// Advances every lane by `dt` ending at `now`. Allocation-free
  /// unless the topology changed since the previous tick.
  void Tick(SimTime now, Duration dt = Duration::Minutes(1));

  /// Rewinds every lane to its just-built state (zero users /
  /// backlogs / queues / loads / metrics, overrides cleared) so the
  /// engine can be re-armed for another batch without rebuilding the
  /// data plane. Re-seed each lane afterwards.
  void ResetLanes();

  // --- Per-lane load views (mirror the scalar engine's views) ----------
  double ServerCpuLoad(size_t lane, infra::DenseId server) const {
    size_t s = static_cast<size_t>(server);
    return s < num_servers_ ? server_cpu_[s * lanes_ + lane] : 0.0;
  }
  double ServerMemLoad(size_t lane, infra::DenseId server) const {
    size_t s = static_cast<size_t>(server);
    return s < num_servers_ ? server_mem_[s * lanes_ + lane] : 0.0;
  }
  double InstanceLoad(size_t lane, infra::InstanceId id) const {
    size_t i = static_cast<size_t>(id);
    return i < tracked_.size() && tracked_[i]
               ? inst_load_[i * lanes_ + lane]
               : 0.0;
  }
  double InstanceUsers(size_t lane, infra::InstanceId id) const {
    size_t i = static_cast<size_t>(id);
    return i < tracked_.size() && tracked_[i] ? users_[i * lanes_ + lane]
                                              : 0.0;
  }
  double ServiceLoad(size_t lane, infra::DenseId service) const;
  /// All lanes of ServiceLoad in one instance pass: `out[lane]` gets
  /// exactly ServiceLoad(lane, service) (same accumulation order), but
  /// the instance span and tracked checks are walked once instead of
  /// once per lane. `out` must hold lanes() doubles.
  void ServiceLoadAll(infra::DenseId service, double* out) const;
  /// Contiguous per-lane CPU loads of one server (lanes() doubles);
  /// `server` must be a valid dense id.
  const double* ServerCpuRow(infra::DenseId server) const {
    return server_cpu_.data() + static_cast<size_t>(server) * lanes_;
  }
  double ServiceSatisfaction(size_t lane, infra::DenseId service) const;
  double TotalBacklog(size_t lane) const;
  double TotalLostWork(size_t lane) const { return lost_work_wu_[lane]; }
  double OverloadMinutes(size_t lane) const {
    return overload_minutes_[lane];
  }
  /// Clears one lane's cumulative quality counters (warmup end).
  void ResetQualityMetrics(size_t lane) {
    lost_work_wu_[lane] = 0.0;
    overload_minutes_[lane] = 0.0;
  }

  size_t num_servers() const { return num_servers_; }

 private:
  /// Mirrors DemandEngine::SubsystemEdges: propagation lowered to
  /// registered-spec slots.
  struct SubsystemEdges {
    std::vector<int32_t> app_specs;
    int32_t ci_spec = -1;
    int32_t db_spec = -1;
    double ci_factor = 0.0;
    double db_factor = 0.0;
  };

  int32_t SpecSlotOf(std::string_view service) const;

  const infra::LandscapeIndex& EnsureDataPlane();
  /// Gathers each lane's effective instance states (cluster state
  /// masked by per-lane overrides) into state_ for this tick.
  void GatherStates(const infra::LandscapeIndex& index);
  /// Lane-inner user attachment for every lane at once. Falls back to
  /// SyncUsersSpecLane for (spec, lane) pairs on the order-sensitive
  /// failed-with-users path.
  void SyncUsersAll(const infra::LandscapeIndex& index);
  /// Scalar-order sticky reconciliation of one spec in one lane (the
  /// rare path: a failed instance still holds users).
  void SyncUsersSpecLane(const infra::LandscapeIndex& index, size_t slot,
                         size_t lane);
  /// Lane-inner session fluctuation for every lane at once.
  void ApplyFluctuationAll(const infra::LandscapeIndex& index,
                           double dt_minutes);
  infra::InstanceId LeastLoadedInstance(
      const infra::LandscapeIndex& index,
      std::span<const infra::InstanceRef> instances, size_t lane) const;

  infra::Cluster* cluster_;
  const size_t lanes_;
  std::vector<Rng> rng_;  // one legacy stream per lane
  PhiloxLanes philox_;    // lane-strided counter-based streams
  RngKind rng_kind_ = RngKind::kXoshiro;
  /// Active row-kernel tier (scalar or AVX2), resolved once at
  /// construction; all uniform-row hot loops dispatch through it.
  const LaneKernels* kernels_;

  // Registered demand specs, sorted by service name (shared).
  std::vector<ServiceDemandSpec> specs_;
  std::vector<infra::DenseId> spec_service_id_;
  std::vector<int32_t> spec_of_service_;
  std::vector<SubsystemSpec> subsystems_;
  std::vector<SubsystemEdges> edges_;

  std::vector<double> user_scale_;  // per lane
  UserDistribution distribution_ = UserDistribution::kStickySessions;
  double fluctuation_per_minute_ = 0.01;
  double overload_threshold_ = 0.8;

  // Lane-strided per-instance state: x_[id * lanes_ + lane].
  std::vector<double> users_;
  std::vector<double> backlog_wu_;
  std::vector<double> demand_wu_;
  std::vector<double> served_wu_;
  std::vector<double> inst_load_;
  std::vector<uint8_t> tracked_;  // shared: topology-derived
  /// Effective instance state per lane this tick (InstanceState byte).
  std::vector<uint8_t> state_;
  /// Per-lane state override; kNoOverride = read the cluster.
  std::vector<uint8_t> override_;
  /// Live override count; 0 lets GatherStates broadcast the shared
  /// cluster state per instance instead of checking every lane.
  size_t override_count_ = 0;
  static constexpr uint8_t kNoOverride = 0xff;

  // Lane-strided per-server loads (layout = dense server ids).
  size_t num_servers_ = 0;
  std::vector<std::string> server_names_;
  std::vector<double> server_cpu_;
  std::vector<double> server_mem_;

  // Lane-strided shared service queues: queue_wu_[slot * lanes_ + lane].
  std::vector<double> queue_wu_;

  /// Pre-sized per-tick temporaries (all lane-strided or per-lane).
  struct Scratch {
    std::vector<double> app_work;         // [slot][lane]
    std::vector<double> shared_unserved;  // [slot][lane]
    std::vector<double> serve;            // [id][lane]
    std::vector<double> usable_cap;       // [lane]
    std::vector<double> weight_total;     // [lane]
    std::vector<double> current_total;    // [lane]
    std::vector<double> total_demand;     // [lane]
    std::vector<uint8_t> any_usable;      // [lane]
    std::vector<double> best_score;       // [lane] refuge search
    std::vector<uint64_t> best_id;        // [lane] refuge search
    std::vector<double> moved;            // [lane] fluctuation sums
    std::vector<double> amount;           // [lane] sync diff / keep
    std::vector<uint8_t> mode;            // [lane] sync dispatch
    std::vector<uint32_t> unsatisfied;        // per-lane, sequential use
    std::vector<uint32_t> still_unsatisfied;  // (capacity pre-reserved)
  };
  Scratch scratch_;

  uint64_t plane_epoch_ = 0;
  bool plane_dirty_ = true;

  std::vector<double> lost_work_wu_;      // per lane
  std::vector<double> overload_minutes_;  // per lane
};

}  // namespace autoglobe::workload

#endif  // AUTOGLOBE_WORKLOAD_BATCH_DEMAND_H_
