#ifndef AUTOGLOBE_CONTROLLER_RULE_BASES_H_
#define AUTOGLOBE_CONTROLLER_RULE_BASES_H_

#include "common/result.h"
#include "fuzzy/inference.h"
#include "infra/action.h"
#include "monitor/monitoring.h"

namespace autoglobe::controller {

/// Builds the linguistic variables shared by all action-selection
/// rule bases — exactly the inputs of Table 1 (cpuLoad, memLoad,
/// performanceIndex, instanceLoad, serviceLoad, instancesOnServer,
/// instancesOfService) plus one ramp output per action of Table 2.
fuzzy::RuleBase MakeActionSelectionVariables(std::string name);

/// Builds the linguistic variables of the server-selection controller
/// — the inputs of Table 3 (cpuLoad, memLoad, instancesOnServer,
/// performanceIndex, numberOfCpus, cpuClock, cpuCache, memory,
/// swapSpace, tempSpace) and the "suitability" ramp output.
fuzzy::RuleBase MakeServerSelectionVariables(std::string name);

/// The default action-selection rule base for one trigger kind —
/// the controller ships "dedicated rule bases for different
/// exceptional situations" (§4.1). Together the four bases comprise
/// about 40 rules, matching the deployed prototype (§7).
Result<fuzzy::RuleBase> MakeDefaultActionRuleBase(
    monitor::TriggerKind kind);

/// The default server-selection rule base for one action type
/// ("our controller is able to handle different rule bases for
/// different actions", §4.2).
Result<fuzzy::RuleBase> MakeDefaultServerRuleBase(infra::ActionType action);

}  // namespace autoglobe::controller

#endif  // AUTOGLOBE_CONTROLLER_RULE_BASES_H_
