#include <gtest/gtest.h>

#include <vector>

#include "fuzzy/compiled.h"
#include "fuzzy/inference.h"

namespace autoglobe::fuzzy {
namespace {

RuleBase WeightedBase() {
  RuleBase rb("weighted");
  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::StandardLoad("cpuLoad")).ok());
  EXPECT_TRUE(rb.AddVariable(LinguisticVariable::RampOutput("scaleOut")).ok());
  EXPECT_TRUE(rb.AddRulesFromText(
                    "IF cpuLoad IS high THEN scaleOut IS applicable "
                    "WITH 0.8\n"
                    "IF cpuLoad IS low THEN scaleOut IS applicable "
                    "WITH 0.3")
                  .ok());
  return rb;
}

TEST(WeightOverrideTest, NullOverrideIsBitIdenticalToAuthoredWeights) {
  RuleBase rb = WeightedBase();
  auto compiled = CompiledRuleBase::Compile(rb);
  ASSERT_TRUE(compiled.ok());
  CompiledRuleBase::Scratch a = compiled->MakeScratch();
  CompiledRuleBase::Scratch b = compiled->MakeScratch();
  std::vector<double> authored = {compiled->rule_weight(0),
                                  compiled->rule_weight(1)};
  for (double load : {0.05, 0.35, 0.62, 0.88, 0.99}) {
    compiled->Evaluate(&load, Defuzzifier::kCentroid, &a);
    compiled->Evaluate(&load, Defuzzifier::kCentroid, &b, authored.data());
    ASSERT_EQ(a.crisp.size(), b.crisp.size());
    for (size_t i = 0; i < a.crisp.size(); ++i) {
      EXPECT_EQ(a.crisp[i], b.crisp[i]) << "load " << load;
    }
    for (size_t r = 0; r < a.truth.size(); ++r) {
      EXPECT_EQ(a.truth[r], b.truth[r]) << "load " << load;
    }
  }
}

TEST(WeightOverrideTest, OverrideScalesRuleTruthWithoutRecompiling) {
  RuleBase rb = WeightedBase();
  auto compiled = CompiledRuleBase::Compile(rb);
  ASSERT_TRUE(compiled.ok());
  CompiledRuleBase::Scratch scratch = compiled->MakeScratch();
  double load = 0.9;  // "high" fires strongly, "low" not at all

  compiled->Evaluate(&load, Defuzzifier::kCentroid, &scratch);
  double baseline_truth = scratch.truth[0];
  ASSERT_GT(baseline_truth, 0.0);

  // Doubling rule 0's weight doubles its activation-weighted truth.
  std::vector<double> doubled = {1.6, 0.3};
  compiled->Evaluate(&load, Defuzzifier::kCentroid, &scratch,
                     doubled.data());
  EXPECT_DOUBLE_EQ(scratch.truth[0], baseline_truth * 2.0);

  // Zeroing it silences the rule entirely.
  std::vector<double> silenced = {0.0, 0.3};
  compiled->Evaluate(&load, Defuzzifier::kCentroid, &scratch,
                     silenced.data());
  EXPECT_EQ(scratch.truth[0], 0.0);
}

TEST(WeightOverrideTest, RuleWeightAccessorExposesAuthoredWeights) {
  RuleBase rb = WeightedBase();
  auto compiled = CompiledRuleBase::Compile(rb);
  ASSERT_TRUE(compiled.ok());
  EXPECT_DOUBLE_EQ(compiled->rule_weight(0), 0.8);
  EXPECT_DOUBLE_EQ(compiled->rule_weight(1), 0.3);
}

}  // namespace
}  // namespace autoglobe::fuzzy
