#ifndef AUTOGLOBE_AUTOGLOBE_LANDSCAPE_GEN_H_
#define AUTOGLOBE_AUTOGLOBE_LANDSCAPE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "autoglobe/landscape.h"
#include "common/result.h"

namespace autoglobe {

/// One homogeneous server pool of a generated landscape. The pool
/// name doubles as the ServerSpec category, so the landscape index
/// groups the pool's servers for hierarchical aggregation.
struct PoolGenSpec {
  std::string category;
  int count = 0;
  double performance_index = 1.0;
  int num_cpus = 1;
  double cpu_clock_ghz = 1.0;
  double cpu_cache_mb = 0.5;
  double memory_gb = 4.0;
};

/// Parameters of a generated landscape. Generation is a pure function
/// of this spec — the same spec (seed included) produces byte-
/// identical XML — and scales from a handful of servers to tens of
/// thousands.
///
/// The demand model is built for hyperscale benchmarking: the first
/// `active_services` get a piecewise-linear day profile oscillating
/// between two in-band activity levels, so their loads change every
/// tick without ever crossing a trigger threshold; the rest run a
/// flat profile with zero noise, so their loads are bitwise-constant
/// and the monitor's dirty tracking can compress them away. Per-
/// service user counts are back-computed so each *server* peaks near
/// `target_load` regardless of pool performance index or stacking.
struct LandscapeGenSpec {
  uint64_t seed = 1;
  std::vector<PoolGenSpec> pools;
  /// Interactive app services, named Svc-00001 ... (zero-padded).
  int num_services = 0;
  /// Leading services given the oscillating (always-dirty) profile.
  int active_services = 0;
  /// Instances per service (placed on distinct servers of one pool).
  int instances_per_service = 1;
  /// Peak server CPU load the demand model aims at. Must sit inside
  /// the monitor's (idle, overload) band.
  double target_load = 0.55;
  /// Per-service peak jitter: each service's target is scaled by a
  /// seeded uniform draw from [1 - target_jitter, 1].
  double target_jitter = 0.1;
  double request_cost = 1.0;
  double base_load_wu = 0.01;
  double memory_footprint_gb = 0.5;
  /// Relative demand noise (0 keeps inactive loads bitwise-constant).
  double noise_stddev = 0.0;
};

/// Generates a landscape from the spec: servers per pool, services
/// assigned to pools round-robin, instances placed on distinct
/// servers inside the service's pool (memory- and exclusivity-clean,
/// so the result passes VerifyClusterInvariants), and demand specs
/// back-computed from the pool's performance index and the expected
/// instance stacking.
Result<Landscape> GenerateLandscape(const LandscapeGenSpec& spec);

/// Canonical spec of the scale sweep: `num_servers` across three
/// pools (small/mid/large blades), two instances per service, one
/// service per two servers, and a *fixed* number of always-active
/// services — so activity stays constant while the fleet grows, which
/// is exactly the regime where O(active) ticks beat O(fleet).
LandscapeGenSpec MakeScaleSpec(int num_servers, uint64_t seed = 1);

}  // namespace autoglobe

#endif  // AUTOGLOBE_AUTOGLOBE_LANDSCAPE_GEN_H_
