#ifndef AUTOGLOBE_XMLCFG_XML_H_
#define AUTOGLOBE_XMLCFG_XML_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace autoglobe::xml {

/// A single attribute on an element. Order of attributes is preserved.
struct Attribute {
  std::string name;
  std::string value;
};

/// Element of the AutoGlobe declarative description language — a
/// deliberately small XML subset (elements, attributes, character
/// data, comments, CDATA, the five predefined entities and numeric
/// character references). Namespaces, DTDs, and processing
/// instructions other than the XML declaration are out of scope.
///
/// Character data of an element is the concatenation of its direct
/// text nodes (mixed content is flattened; config files never rely on
/// text/element interleaving order).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }

  // --- Attributes ----------------------------------------------------
  const std::vector<Attribute>& attributes() const { return attributes_; }
  void SetAttribute(std::string_view name, std::string value);
  /// Returns the attribute value or nullopt.
  std::optional<std::string_view> FindAttribute(std::string_view name) const;
  /// Returns the attribute value or `fallback`.
  std::string_view AttributeOr(std::string_view name,
                               std::string_view fallback) const;
  /// Typed attribute accessors; error if missing or malformed.
  Result<std::string> StringAttribute(std::string_view name) const;
  Result<double> DoubleAttribute(std::string_view name) const;
  Result<long long> IntAttribute(std::string_view name) const;
  Result<bool> BoolAttribute(std::string_view name) const;
  /// Typed accessors with defaults; error only when malformed.
  Result<double> DoubleAttributeOr(std::string_view name,
                                   double fallback) const;
  Result<long long> IntAttributeOr(std::string_view name,
                                   long long fallback) const;
  Result<bool> BoolAttributeOr(std::string_view name, bool fallback) const;

  // --- Text ----------------------------------------------------------
  const std::string& text() const { return text_; }
  void AppendText(std::string_view text) { text_.append(text); }
  void SetText(std::string text) { text_ = std::move(text); }

  // --- Children ------------------------------------------------------
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// Appends a new child element and returns it (owned by this).
  Element* AddChild(std::string name);
  /// Appends an already-built child element.
  void AdoptChild(std::unique_ptr<Element> child);
  /// First child with the given name, or nullptr.
  const Element* FindChild(std::string_view name) const;
  /// All children with the given name.
  std::vector<const Element*> FindChildren(std::string_view name) const;
  /// First child with the given name; NotFound error if absent.
  Result<const Element*> RequireChild(std::string_view name) const;

  /// Serializes this element (and subtree), indented by `indent`
  /// levels of two spaces.
  std::string ToString(int indent = 0) const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// An XML document: optional declaration plus one root element.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Parses a complete document from text.
  static Result<Document> Parse(std::string_view input);
  /// Reads and parses a file.
  static Result<Document> LoadFile(const std::string& path);

  const Element* root() const { return root_.get(); }
  Element* mutable_root() { return root_.get(); }
  /// Replaces the root element.
  Element* SetRoot(std::string name);

  /// Serializes with declaration and trailing newline.
  std::string ToString() const;
  Status SaveFile(const std::string& path) const;

 private:
  std::unique_ptr<Element> root_;
};

/// Escapes &, <, >, ", ' for use in attribute values / text.
std::string Escape(std::string_view raw);

}  // namespace autoglobe::xml

#endif  // AUTOGLOBE_XMLCFG_XML_H_
