#include "infra/specs.h"

#include "common/strings.h"

namespace autoglobe::infra {

Result<ServerSpec> ServerSpec::FromXml(const xml::Element& element) {
  ServerSpec spec;
  AG_ASSIGN_OR_RETURN(spec.name, element.StringAttribute("name"));
  spec.category = std::string(element.AttributeOr("category", ""));
  AG_ASSIGN_OR_RETURN(spec.performance_index,
                      element.DoubleAttributeOr("performanceIndex", 1.0));
  AG_ASSIGN_OR_RETURN(long long cpus, element.IntAttributeOr("cpus", 1));
  spec.num_cpus = static_cast<int>(cpus);
  AG_ASSIGN_OR_RETURN(spec.cpu_clock_ghz,
                      element.DoubleAttributeOr("clockGhz", 1.0));
  AG_ASSIGN_OR_RETURN(spec.cpu_cache_mb,
                      element.DoubleAttributeOr("cacheMb", 0.5));
  AG_ASSIGN_OR_RETURN(spec.memory_gb,
                      element.DoubleAttributeOr("memoryGb", 2.0));
  AG_ASSIGN_OR_RETURN(spec.swap_gb, element.DoubleAttributeOr("swapGb", 4.0));
  AG_ASSIGN_OR_RETURN(spec.temp_gb,
                      element.DoubleAttributeOr("tempGb", 20.0));
  AG_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

void ServerSpec::ToXml(xml::Element* out) const {
  out->SetAttribute("name", name);
  if (!category.empty()) out->SetAttribute("category", category);
  out->SetAttribute("performanceIndex", StrFormat("%g", performance_index));
  out->SetAttribute("cpus", StrFormat("%d", num_cpus));
  out->SetAttribute("clockGhz", StrFormat("%g", cpu_clock_ghz));
  out->SetAttribute("cacheMb", StrFormat("%g", cpu_cache_mb));
  out->SetAttribute("memoryGb", StrFormat("%g", memory_gb));
  out->SetAttribute("swapGb", StrFormat("%g", swap_gb));
  out->SetAttribute("tempGb", StrFormat("%g", temp_gb));
}

Status ServerSpec::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("server name must not be empty");
  }
  if (performance_index <= 0) {
    return Status::InvalidArgument(StrFormat(
        "server \"%s\": performanceIndex must be positive", name.c_str()));
  }
  if (num_cpus <= 0 || cpu_clock_ghz <= 0 || memory_gb <= 0) {
    return Status::InvalidArgument(StrFormat(
        "server \"%s\": cpus, clock and memory must be positive",
        name.c_str()));
  }
  if (swap_gb < 0 || temp_gb < 0 || cpu_cache_mb < 0) {
    return Status::InvalidArgument(StrFormat(
        "server \"%s\": capacities must be non-negative", name.c_str()));
  }
  return Status::OK();
}

std::string_view ServiceRoleName(ServiceRole role) {
  switch (role) {
    case ServiceRole::kApplicationServer:
      return "applicationServer";
    case ServiceRole::kCentralInstance:
      return "centralInstance";
    case ServiceRole::kDatabase:
      return "database";
  }
  return "?";
}

Result<ServiceRole> ParseServiceRole(std::string_view name) {
  if (EqualsIgnoreCase(name, "applicationServer") ||
      EqualsIgnoreCase(name, "application-server") ||
      EqualsIgnoreCase(name, "appserver")) {
    return ServiceRole::kApplicationServer;
  }
  if (EqualsIgnoreCase(name, "centralInstance") ||
      EqualsIgnoreCase(name, "central-instance") ||
      EqualsIgnoreCase(name, "ci")) {
    return ServiceRole::kCentralInstance;
  }
  if (EqualsIgnoreCase(name, "database") || EqualsIgnoreCase(name, "db")) {
    return ServiceRole::kDatabase;
  }
  return Status::ParseError(StrFormat("unknown service role \"%.*s\"",
                                      static_cast<int>(name.size()),
                                      name.data()));
}

Result<ServiceSpec> ServiceSpec::FromXml(const xml::Element& element) {
  ServiceSpec spec;
  AG_ASSIGN_OR_RETURN(spec.name, element.StringAttribute("name"));
  std::string_view role = element.AttributeOr("role", "applicationServer");
  AG_ASSIGN_OR_RETURN(spec.role, ParseServiceRole(role));
  spec.subsystem = std::string(element.AttributeOr("subsystem", ""));
  AG_ASSIGN_OR_RETURN(spec.exclusive,
                      element.BoolAttributeOr("exclusive", false));
  AG_ASSIGN_OR_RETURN(
      spec.min_performance_index,
      element.DoubleAttributeOr("minPerformanceIndex", 0.0));
  AG_ASSIGN_OR_RETURN(long long min_inst,
                      element.IntAttributeOr("minInstances", 1));
  spec.min_instances = static_cast<int>(min_inst);
  AG_ASSIGN_OR_RETURN(long long max_inst,
                      element.IntAttributeOr("maxInstances", 16));
  spec.max_instances = static_cast<int>(max_inst);
  AG_ASSIGN_OR_RETURN(
      spec.memory_footprint_gb,
      element.DoubleAttributeOr("memoryFootprintGb", 1.0));
  AG_ASSIGN_OR_RETURN(long long watch_minutes,
                      element.IntAttributeOr("watchTimeMinutes", 0));
  spec.watch_time_minutes = static_cast<int>(watch_minutes);
  spec.allowed_actions.clear();
  std::string_view actions = element.AttributeOr("actions", "");
  if (!actions.empty()) {
    for (std::string_view piece : Split(actions, ',')) {
      piece = StripWhitespace(piece);
      if (piece.empty()) continue;
      AG_ASSIGN_OR_RETURN(ActionType type, ParseActionType(piece));
      spec.allowed_actions.insert(type);
    }
  }
  AG_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

void ServiceSpec::ToXml(xml::Element* out) const {
  out->SetAttribute("name", name);
  out->SetAttribute("role", std::string(ServiceRoleName(role)));
  if (!subsystem.empty()) out->SetAttribute("subsystem", subsystem);
  out->SetAttribute("exclusive", exclusive ? "true" : "false");
  out->SetAttribute("minPerformanceIndex",
                    StrFormat("%g", min_performance_index));
  out->SetAttribute("minInstances", StrFormat("%d", min_instances));
  out->SetAttribute("maxInstances", StrFormat("%d", max_instances));
  out->SetAttribute("memoryFootprintGb",
                    StrFormat("%g", memory_footprint_gb));
  if (watch_time_minutes > 0) {
    out->SetAttribute("watchTimeMinutes",
                      StrFormat("%d", watch_time_minutes));
  }
  std::vector<std::string> names;
  for (ActionType type : allowed_actions) {
    names.emplace_back(ActionTypeName(type));
  }
  out->SetAttribute("actions", Join(names, ","));
}

Status ServiceSpec::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("service name must not be empty");
  }
  if (min_instances < 0 || max_instances < 1 ||
      min_instances > max_instances) {
    return Status::InvalidArgument(StrFormat(
        "service \"%s\": need 0 <= minInstances <= maxInstances and "
        "maxInstances >= 1",
        name.c_str()));
  }
  if (memory_footprint_gb <= 0) {
    return Status::InvalidArgument(StrFormat(
        "service \"%s\": memoryFootprintGb must be positive", name.c_str()));
  }
  if (watch_time_minutes < 0) {
    return Status::InvalidArgument(StrFormat(
        "service \"%s\": watchTimeMinutes must be non-negative",
        name.c_str()));
  }
  if (min_performance_index < 0) {
    return Status::InvalidArgument(StrFormat(
        "service \"%s\": minPerformanceIndex must be non-negative",
        name.c_str()));
  }
  return Status::OK();
}

}  // namespace autoglobe::infra
