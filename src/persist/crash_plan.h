#ifndef AUTOGLOBE_PERSIST_CRASH_PLAN_H_
#define AUTOGLOBE_PERSIST_CRASH_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "xmlcfg/xml.h"

namespace autoglobe::persist {

/// A deterministic, serializable schedule of process kills for the
/// crash-injection harness: at each listed simulated time the run is
/// checkpointed, torn down, and restored from the checkpoint before
/// continuing — the moral equivalent of SIGKILL at that tick. The
/// plan is data only (mirroring faults::FaultPlan), so a chaos run
/// with a given plan and seed is exactly reproducible.
struct CrashPlan {
  std::vector<SimTime> crash_at;  // ascending

  /// Ascending, non-negative times.
  Status Validate() const;
  void SortByTime();

  /// XML round-trip:
  ///   <crashPlan>
  ///     <crash atSeconds="7200"/>
  ///   </crashPlan>
  static Result<CrashPlan> FromXml(const xml::Element& root);
  static Result<CrashPlan> Parse(std::string_view text);
  static Result<CrashPlan> LoadFile(const std::string& path);
  std::string ToXml() const;

  /// Draws `count` kill points uniformly over (0, horizon), sorted.
  /// Same count + horizon + seed => same plan, always.
  static CrashPlan Generate(int count, Duration horizon, uint64_t seed);
};

}  // namespace autoglobe::persist

#endif  // AUTOGLOBE_PERSIST_CRASH_PLAN_H_
