// Pinned traces of the philox draw discipline: replays the same
// short paper-landscape run as demand_golden_test.cc (both
// user-distribution modes, with a CRM instance started, promoted,
// and removed mid-run) under RngKind::kPhilox and checks every
// per-tick ServerCpuLoad / ServiceLoad / ServiceSatisfaction value
// bit for bit. Philox draws are pure functions of (seed, draw index)
// evaluated through the pinned fastmath kernels, so these bits are
// platform-invariant — a mismatch means the draw-event indexing, the
// fastmath polynomials, or a SIMD kernel drifted from the contract
// (DESIGN.md §16), not that libm changed underneath us.
//
// Regenerate (only after an *intentional* discipline change) by
// running workload_test with AUTOGLOBE_REGEN_GOLDEN=1 and
// --gtest_filter='DemandPhiloxGoldenTest.*', and pasting the printed
// arrays into demand_philox_golden_data.inc.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autoglobe/landscape.h"
#include "common/rng_kind.h"
#include "infra/cluster.h"
#include "workload/demand.h"

namespace autoglobe {
namespace {

#include "demand_philox_golden_data.inc"

constexpr int kTicks = 48;
constexpr size_t kServers = 19;
constexpr size_t kServices = 12;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

void RunAgainstGolden(workload::UserDistribution mode,
                      const uint64_t (&golden)[kTicks][43],
                      const char* regen_name) {
  const bool regen = std::getenv("AUTOGLOBE_REGEN_GOLDEN") != nullptr;
  infra::Cluster cluster;
  workload::DemandEngine engine(&cluster, Rng(1234));
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  ASSERT_TRUE(landscape.Build(&cluster, &engine).ok());
  engine.SeedRng(1234, RngKind::kPhilox);
  engine.set_user_scale(1.1);
  engine.set_distribution(mode);

  std::vector<std::string> servers;
  for (const infra::ServerSpec* s : cluster.Servers())
    servers.push_back(s->name);
  std::vector<std::string> services;
  for (const infra::ServiceSpec* s : cluster.Services())
    services.push_back(s->name);
  ASSERT_EQ(servers.size(), kServers);
  ASSERT_EQ(services.size(), kServices);

  if (regen) std::printf("inline constexpr uint64_t %s[48][43] = {\n", regen_name);
  infra::InstanceId extra = 0;
  for (int minute = 1; minute <= kTicks; ++minute) {
    // The same mid-run topology changes as the legacy golden test: a
    // CRM instance starts (kStarting) at minute 12, is promoted to
    // kRunning at minute 20, and removed at minute 36 — so the trace
    // also pins how philox draw indices stay aligned across data-plane
    // resyncs.
    if (minute == 12) {
      auto id = cluster.PlaceInstance(
          "CRM", "Blade9", SimTime::Start() + Duration::Minutes(12),
          infra::InstanceState::kStarting);
      ASSERT_TRUE(id.ok());
      extra = *id;
    } else if (minute == 20) {
      ASSERT_TRUE(
          cluster.SetInstanceState(extra, infra::InstanceState::kRunning)
              .ok());
    } else if (minute == 36) {
      ASSERT_TRUE(
          cluster.RemoveInstance(extra, /*enforce_min=*/false).ok());
    }
    engine.Tick(SimTime::Start() + Duration::Minutes(minute));

    uint64_t row[43];
    for (size_t s = 0; s < servers.size(); ++s) {
      row[s] = Bits(engine.ServerCpuLoad(servers[s]));
    }
    for (size_t s = 0; s < services.size(); ++s) {
      row[kServers + 2 * s] = Bits(engine.ServiceLoad(services[s]));
      row[kServers + 2 * s + 1] =
          Bits(engine.ServiceSatisfaction(services[s]));
    }
    if (regen) {
      std::printf("    {");
      for (size_t i = 0; i < 43; ++i) {
        std::printf("0x%016llxull,", static_cast<unsigned long long>(row[i]));
        if (i % 4 == 3 && i + 1 < 43) std::printf("\n     ");
      }
      std::printf("},\n");
      continue;
    }
    for (size_t i = 0; i < 43; ++i) {
      EXPECT_EQ(row[i], golden[minute - 1][i])
          << "minute " << minute << " column " << i;
    }
  }
  if (regen) std::printf("};\n");
}

TEST(DemandPhiloxGoldenTest, StickySessionsTraceIsBitIdentical) {
  RunAgainstGolden(workload::UserDistribution::kStickySessions,
                   kPhiloxGoldenSticky, "kPhiloxGoldenSticky");
}

TEST(DemandPhiloxGoldenTest, DynamicRedistributionTraceIsBitIdentical) {
  RunAgainstGolden(workload::UserDistribution::kDynamicRedistribution,
                   kPhiloxGoldenDynamic, "kPhiloxGoldenDynamic");
}

}  // namespace
}  // namespace autoglobe
