# Empty dependencies file for fig13_constrained.
# This may be replaced when dependencies are built.
