
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/infra/action.cc" "src/infra/CMakeFiles/ag_infra.dir/action.cc.o" "gcc" "src/infra/CMakeFiles/ag_infra.dir/action.cc.o.d"
  "/root/repo/src/infra/cluster.cc" "src/infra/CMakeFiles/ag_infra.dir/cluster.cc.o" "gcc" "src/infra/CMakeFiles/ag_infra.dir/cluster.cc.o.d"
  "/root/repo/src/infra/executor.cc" "src/infra/CMakeFiles/ag_infra.dir/executor.cc.o" "gcc" "src/infra/CMakeFiles/ag_infra.dir/executor.cc.o.d"
  "/root/repo/src/infra/specs.cc" "src/infra/CMakeFiles/ag_infra.dir/specs.cc.o" "gcc" "src/infra/CMakeFiles/ag_infra.dir/specs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ag_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlcfg/CMakeFiles/ag_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ag_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
