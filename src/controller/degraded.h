#ifndef AUTOGLOBE_CONTROLLER_DEGRADED_H_
#define AUTOGLOBE_CONTROLLER_DEGRADED_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/result.h"
#include "common/sim_time.h"

namespace autoglobe::controller {

/// Knobs of the degraded-mode watchdog. Disabled by default — a run
/// without it is byte-identical to a build without this file.
struct DegradedModeConfig {
  bool enabled = false;
  /// Monitor-dropout storm: at least this many servers that are up
  /// but silent in one tick flips the controller to the urgent-only
  /// posture. 0 disables the storm signal.
  int dropout_storm_threshold = 3;
  /// Consecutive healthy ticks required before leaving degraded mode
  /// (hysteresis — a single clean tick inside a flapping storm must
  /// not resume speculative rebalancing).
  int exit_healthy_ticks = 5;
  /// Wall-clock budget per control tick in milliseconds; an overrun
  /// counts as an unhealthy tick. 0 (default) disables the deadline —
  /// it reads the host's real clock, so runs with it enabled are NOT
  /// deterministic and it must stay off for golden scenarios.
  double tick_deadline_ms = 0.0;
};

/// The degraded-mode watchdog: when the control plane itself is in
/// trouble (a monitor-dropout storm blinds detection, or ticks blow
/// their wall-clock deadline), the controller drops to an urgent-only
/// posture — SLA escalations and failure recovery still run, but
/// speculative rebalancing (overload/idle triggers) is frozen until
/// the landscape has been healthy for a hysteresis window. The idea
/// mirrors the paper's own escalation ladder (Figure 6): when the
/// autonomic loop cannot trust its inputs, it narrows its mandate
/// instead of acting on garbage.
class DegradedModeController {
 public:
  explicit DegradedModeController(DegradedModeConfig config = {});

  /// Feeds one tick's health signals: servers that are up but silent
  /// this tick, and the wall-clock milliseconds the previous tick
  /// took (pass 0 when the deadline is disabled). Returns +1 when
  /// this tick *entered* degraded mode, -1 when it left, 0 otherwise.
  int ObserveTick(int silent_servers, double tick_wall_ms);

  /// True while the controller is in the urgent-only posture.
  bool degraded() const { return degraded_; }
  /// True when a trigger with the given urgency should be suppressed
  /// (degraded and not urgent). Callers count the suppression via
  /// NoteSuppressed so the audit trail and metrics line up.
  bool ShouldSuppress(bool urgent) const { return degraded_ && !urgent; }
  void NoteSuppressed() { ++suppressed_triggers_; }

  int64_t entries() const { return entries_; }
  int64_t degraded_ticks() const { return degraded_ticks_; }
  int64_t suppressed_triggers() const { return suppressed_triggers_; }

  const DegradedModeConfig& config() const { return config_; }

  // --- Checkpoint/restore ----------------------------------------------
  void SaveState(ByteWriter* w) const;
  Status RestoreState(ByteReader* r);

 private:
  DegradedModeConfig config_;
  bool degraded_ = false;
  int healthy_streak_ = 0;
  int64_t entries_ = 0;
  int64_t degraded_ticks_ = 0;
  int64_t suppressed_triggers_ = 0;
};

}  // namespace autoglobe::controller

#endif  // AUTOGLOBE_CONTROLLER_DEGRADED_H_
