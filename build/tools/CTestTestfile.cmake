# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(autoglobectl_validate_fm "/root/repo/build/tools/autoglobectl" "validate" "/root/repo/data/paper_landscape_fm.xml")
set_tests_properties(autoglobectl_validate_fm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autoglobectl_validate_cm "/root/repo/build/tools/autoglobectl" "validate" "/root/repo/data/paper_landscape_cm.xml")
set_tests_properties(autoglobectl_validate_cm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autoglobectl_validate_static "/root/repo/build/tools/autoglobectl" "validate" "/root/repo/data/paper_landscape_static.xml")
set_tests_properties(autoglobectl_validate_static PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autoglobectl_run_smoke "/root/repo/build/tools/autoglobectl" "run" "paper" "--scale" "1.1" "--hours" "6")
set_tests_properties(autoglobectl_run_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autoglobectl_design_smoke "/root/repo/build/tools/autoglobectl" "design" "paper" "--scenario" "static")
set_tests_properties(autoglobectl_design_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autoglobectl_export_roundtrip "/root/repo/build/tools/autoglobectl" "export" "/root/repo/build/tools/exported.xml")
set_tests_properties(autoglobectl_export_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(autoglobectl_rejects_unknown "/root/repo/build/tools/autoglobectl" "frobnicate")
set_tests_properties(autoglobectl_rejects_unknown PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
