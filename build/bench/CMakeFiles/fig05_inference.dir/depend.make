# Empty dependencies file for fig05_inference.
# This may be replaced when dependencies are built.
