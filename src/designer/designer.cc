#include "designer/designer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "infra/cluster.h"
#include "workload/demand.h"

namespace autoglobe::designer {

namespace {

using infra::Cluster;
using infra::ServerSpec;
using infra::ServiceSpec;

// Half-hour sampling resolution: fine enough to see the stacked
// Gaussian peaks of the interactive patterns.
constexpr int kHours = 48;

/// Working state of one candidate allocation: service -> host names.
struct Assignment {
  std::map<std::string, std::vector<std::string>> hosts_of;
};

/// Sum of performance indices of a service's hosts.
double TotalPi(const Landscape& landscape, const Assignment& assignment,
               const std::string& service) {
  auto it = assignment.hosts_of.find(service);
  if (it == assignment.hosts_of.end()) return 0.0;
  double total = 0.0;
  for (const std::string& host : it->second) {
    for (const ServerSpec& server : landscape.servers) {
      if (server.name == host) total += server.performance_index;
    }
  }
  return total;
}

/// Distributes `demand` (wu) across hosts with capacities `capacity`
/// and pre-existing fractional loads `other`, equalizing the total
/// fractional load where possible (water-filling). This models the
/// equilibrium of the slow user fluctuation: users re-login to the
/// least-loaded instance until loads level out. Returns the
/// fractional load each host ends up carrying for this service.
std::vector<double> WaterFill(const std::vector<double>& capacity,
                              const std::vector<double>& other,
                              double demand) {
  size_t n = capacity.size();
  std::vector<double> share(n, 0.0);
  if (n == 0 || demand <= 0) return share;
  // Find the level L with sum_i c_i * max(0, L - o_i) = demand.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return other[a] < other[b]; });
  double filled_capacity = 0.0;
  double water = demand;
  double level = other[order[0]];
  for (size_t k = 0; k < n; ++k) {
    size_t i = order[k];
    double step = other[i] - level;
    if (step > 0) {
      double absorbed = filled_capacity * step;
      if (absorbed >= water) {
        level += water / filled_capacity;
        water = 0;
        break;
      }
      water -= absorbed;
      level = other[i];
    }
    filled_capacity += capacity[i];
  }
  if (water > 0 && filled_capacity > 0) level += water / filled_capacity;
  for (size_t i = 0; i < n; ++i) {
    share[i] = std::max(0.0, level - other[i]);
  }
  return share;
}

/// Predicted per-server loads per half-hour slot.
///
/// Interactive users are *sticky*: they drift toward the least-loaded
/// instance only slowly (~1 %/min), so the split a service shows at
/// the 8:00 ramp is essentially its overnight equilibrium, not the
/// split that would be optimal at 8:00. The predictor therefore
/// simulates the day: per slot it computes each sticky service's
/// fluctuation equilibrium (water-filling against the co-tenant load)
/// and relaxes the user split toward it at the drift rate; batch and
/// shared-queue tiers re-balance instantly. Two day cycles make the
/// trajectory periodic; the second cycle is reported.
std::vector<std::map<std::string, double>> PredictLoads(
    const Landscape& landscape, const Assignment& assignment,
    const std::map<std::string, std::vector<double>>& demand) {
  std::map<std::string, double> pi_of;
  for (const ServerSpec& server : landscape.servers) {
    pi_of[server.name] = server.performance_index;
  }
  // Sticky services are those with interactive users.
  std::map<std::string, bool> sticky;
  for (const auto& spec : landscape.demand) {
    sticky[spec.service] = spec.base_users > 0;
  }
  // Per-minute drift 1 % -> per-slot (30 min) relaxation factor.
  const double alpha = 1.0 - std::pow(0.99, 30.0);

  // State: per-service fraction of users per host (starts
  // capacity-proportional).
  std::map<std::string, std::vector<double>> user_fraction;
  std::map<std::string, double> service_pi;
  for (const auto& [service, hosts] : assignment.hosts_of) {
    double total_pi = 0.0;
    for (const std::string& host : hosts) total_pi += pi_of[host];
    service_pi[service] = total_pi;
    auto& fractions = user_fraction[service];
    fractions.resize(hosts.size());
    for (size_t i = 0; i < hosts.size(); ++i) {
      fractions[i] = total_pi > 0 ? pi_of[hosts[i]] / total_pi : 0.0;
    }
  }

  std::vector<std::map<std::string, double>> loads(kHours);
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (int h = 0; h < kHours; ++h) {
      // Current totals from the current user split.
      std::map<std::string, double> total;
      for (const ServerSpec& server : landscape.servers) {
        total[server.name] = 0.0;
      }
      for (const auto& [service, hosts] : assignment.hosts_of) {
        auto demand_it = demand.find(service);
        if (demand_it == demand.end() || hosts.empty()) continue;
        const auto& fractions = user_fraction[service];
        for (size_t i = 0; i < hosts.size(); ++i) {
          double pi = pi_of[hosts[i]];
          if (pi <= 0) continue;
          total[hosts[i]] += demand_it->second[static_cast<size_t>(h)] *
                             fractions[i] / pi;
        }
      }
      if (cycle == 1) loads[static_cast<size_t>(h)] = total;

      // Relax every sticky service toward its fluctuation
      // equilibrium. Batch and derived tiers split strictly
      // capacity-proportionally — exactly what the demand engine does
      // (jobs are pulled by capacity, not by co-tenant load).
      for (const auto& [service, hosts] : assignment.hosts_of) {
        auto demand_it = demand.find(service);
        if (demand_it == demand.end() || hosts.empty()) continue;
        auto& fractions = user_fraction[service];
        if (!sticky[service]) {
          double total_pi = service_pi[service];
          if (total_pi <= 0) continue;
          for (size_t i = 0; i < hosts.size(); ++i) {
            fractions[i] = pi_of[hosts[i]] / total_pi;
          }
          continue;
        }
        double d = demand_it->second[static_cast<size_t>(h)];
        std::vector<double> capacity(hosts.size());
        std::vector<double> other(hosts.size());
        for (size_t i = 0; i < hosts.size(); ++i) {
          capacity[i] = pi_of[hosts[i]];
          double own = d * fractions[i] /
                       (capacity[i] > 0 ? capacity[i] : 1.0);
          other[i] = total[hosts[i]] - own;
        }
        std::vector<double> settled =
            WaterFill(capacity, other, std::max(d, 1e-6));
        double settled_total = 0.0;
        std::vector<double> target(hosts.size());
        for (size_t i = 0; i < hosts.size(); ++i) {
          target[i] = settled[i] * capacity[i];
          settled_total += target[i];
        }
        if (settled_total <= 0) continue;
        for (size_t i = 0; i < hosts.size(); ++i) {
          fractions[i] += alpha * (target[i] / settled_total - fractions[i]);
        }
      }
    }
  }
  return loads;
}

struct Objective {
  double peak = 0.0;    // worst per-server hourly load
  double sum_sq = 0.0;  // tie-breaker: spread
  bool operator<(const Objective& other) const {
    if (peak != other.peak) return peak < other.peak;
    return sum_sq < other.sum_sq;
  }
};

Objective Evaluate(const Landscape& landscape, const Assignment& assignment,
                   const std::map<std::string, std::vector<double>>& demand) {
  Objective objective;
  auto loads = PredictLoads(landscape, assignment, demand);
  for (const auto& hour : loads) {
    for (const auto& [server, load] : hour) {
      objective.peak = std::max(objective.peak, load);
      objective.sum_sq += load * load;
    }
  }
  return objective;
}

/// Rebuilds a scratch cluster reflecting `assignment` (for constraint
/// checks through the real allocator).
Status Materialize(const Landscape& landscape,
                   const Assignment& assignment, Cluster* cluster) {
  for (const ServerSpec& server : landscape.servers) {
    AG_RETURN_IF_ERROR(cluster->AddServer(server));
  }
  for (const ServiceSpec& service : landscape.services) {
    AG_RETURN_IF_ERROR(cluster->AddService(service));
  }
  for (const auto& [service, hosts] : assignment.hosts_of) {
    for (const std::string& host : hosts) {
      AG_RETURN_IF_ERROR(
          cluster->PlaceInstance(service, host, SimTime::Start()).status());
    }
  }
  return Status::OK();
}

}  // namespace

std::map<std::string, std::vector<double>> PredictHourlyDemand(
    const Landscape& landscape) {
  std::map<std::string, std::vector<double>> demand;
  // Application work from the declared patterns.
  for (const auto& spec : landscape.demand) {
    std::vector<double> hourly(kHours, 0.0);
    for (int h = 0; h < kHours; ++h) {
      // Half-hour slots, sampled at the slot midpoint.
      SimTime at = SimTime::Start() + Duration::Minutes(30 * h + 15);
      double activity = spec.pattern.Activity(at);
      double work = spec.base_load_wu;
      if (spec.batch) {
        work += spec.batch_load_wu * activity;
      } else if (spec.base_users > 0) {
        work += spec.base_users * activity * spec.request_cost /
                workload::kUsersPerPerformanceUnit;
      }
      hourly[static_cast<size_t>(h)] = work;
    }
    demand[spec.service] = std::move(hourly);
  }
  // Three-tier propagation onto central instances and databases.
  for (const auto& subsystem : landscape.subsystems) {
    std::vector<double> app_work(kHours, 0.0);
    for (const std::string& app : subsystem.app_services) {
      auto it = demand.find(app);
      if (it == demand.end()) continue;
      for (int h = 0; h < kHours; ++h) {
        app_work[static_cast<size_t>(h)] +=
            it->second[static_cast<size_t>(h)];
      }
    }
    auto add_tier = [&](const std::string& service, double factor) {
      if (service.empty() || factor <= 0) return;
      auto it = demand.find(service);
      if (it == demand.end()) return;
      for (int h = 0; h < kHours; ++h) {
        it->second[static_cast<size_t>(h)] +=
            factor * app_work[static_cast<size_t>(h)];
      }
    };
    add_tier(subsystem.central_instance, subsystem.ci_factor);
    add_tier(subsystem.database, subsystem.db_factor);
  }
  return demand;
}

Result<DesignReport> DesignAllocation(const Landscape& input,
                                      const DesignOptions& options) {
  if (options.target_peak_load <= 0 || options.target_peak_load > 1) {
    return Status::InvalidArgument("target_peak_load must be in (0, 1]");
  }
  DesignReport report;
  report.landscape = input;
  auto demand = PredictHourlyDemand(input);

  auto peak_of = [&demand](const std::string& service) {
    auto it = demand.find(service);
    if (it == demand.end()) return 0.0;
    return *std::max_element(it->second.begin(), it->second.end());
  };

  // Baseline: the input's own allocation (if any).
  if (!input.initial_allocation.empty()) {
    Assignment given;
    for (const auto& [service, server] : input.initial_allocation) {
      given.hosts_of[service].push_back(server);
    }
    report.input_peak_load = Evaluate(input, given, demand).peak;
  }

  // --- Greedy construction -------------------------------------------
  // Exclusive and high-requirement services first (they have the
  // fewest feasible hosts), then by peak demand.
  std::vector<const ServiceSpec*> order;
  for (const ServiceSpec& service : input.services) {
    order.push_back(&service);
  }
  std::sort(order.begin(), order.end(),
            [&](const ServiceSpec* a, const ServiceSpec* b) {
              if (a->exclusive != b->exclusive) return a->exclusive;
              if (a->min_performance_index != b->min_performance_index) {
                return a->min_performance_index >
                       b->min_performance_index;
              }
              return peak_of(a->name) > peak_of(b->name);
            });

  Cluster scratch;
  for (const ServerSpec& server : input.servers) {
    AG_RETURN_IF_ERROR(scratch.AddServer(server));
  }
  for (const ServiceSpec& service : input.services) {
    AG_RETURN_IF_ERROR(scratch.AddService(service));
  }

  Assignment assignment;
  auto place_best = [&](const ServiceSpec& service) -> bool {
    // Choose the feasible host minimizing the resulting objective.
    const ServerSpec* best = nullptr;
    Objective best_objective;
    for (const ServerSpec& server : input.servers) {
      if (!scratch.CanPlace(service.name, server.name).ok()) continue;
      assignment.hosts_of[service.name].push_back(server.name);
      Objective objective = Evaluate(input, assignment, demand);
      assignment.hosts_of[service.name].pop_back();
      if (best == nullptr || objective < best_objective) {
        best = &server;
        best_objective = objective;
      }
    }
    if (best == nullptr) return false;
    assignment.hosts_of[service.name].push_back(best->name);
    AG_CHECK_OK(scratch.PlaceInstance(service.name, best->name,
                                      SimTime::Start())
                    .status());
    return true;
  };

  // Phase 1: satisfy minimum instance counts (at least one each).
  for (const ServiceSpec* service : order) {
    int want = std::max(1, service->min_instances);
    for (int i = 0; i < want; ++i) {
      if (!place_best(*service)) {
        return Status::ResourceExhausted(StrFormat(
            "designer: no feasible host for required instance %d of "
            "\"%s\"",
            i + 1, service->name.c_str()));
      }
    }
  }
  // Phase 2: grow the most under-provisioned service until every
  // service has enough aggregate capacity at its predicted peak.
  for (;;) {
    const ServiceSpec* worst = nullptr;
    double worst_ratio = options.target_peak_load;
    for (const ServiceSpec& service : input.services) {
      double total_pi = TotalPi(input, assignment, service.name);
      if (total_pi <= 0) continue;
      if (static_cast<int>(assignment.hosts_of[service.name].size()) >=
          service.max_instances) {
        continue;
      }
      double ratio = peak_of(service.name) / total_pi;
      if (ratio > worst_ratio) {
        worst_ratio = ratio;
        worst = &service;
      }
    }
    if (worst == nullptr) break;
    if (!place_best(*worst)) break;  // out of room; best effort
  }
  // Phase 3: objective-driven growth — an extra instance can relieve
  // a bad co-location (e.g. splitting batch work away from a host a
  // database needs at night) even when the service's own aggregate
  // capacity already looked sufficient.
  for (;;) {
    Objective current_objective = Evaluate(input, assignment, demand);
    if (current_objective.peak <= options.target_peak_load) break;
    const ServiceSpec* best_service = nullptr;
    Objective best_objective = current_objective;
    for (const ServiceSpec& service : input.services) {
      if (static_cast<int>(assignment.hosts_of[service.name].size()) >=
          service.max_instances) {
        continue;
      }
      // Probe: the best host for one more instance of this service.
      for (const ServerSpec& server : input.servers) {
        if (!scratch.CanPlace(service.name, server.name).ok()) continue;
        assignment.hosts_of[service.name].push_back(server.name);
        Objective objective = Evaluate(input, assignment, demand);
        assignment.hosts_of[service.name].pop_back();
        if (objective < best_objective) {
          best_objective = objective;
          best_service = &service;
        }
      }
    }
    if (best_service == nullptr) break;  // no addition helps
    if (!place_best(*best_service)) break;
  }

  // --- Local search ----------------------------------------------------
  Rng rng(options.seed);
  Objective current = Evaluate(input, assignment, demand);
  std::vector<std::string> service_names;
  for (const auto& [service, hosts] : assignment.hosts_of) {
    service_names.push_back(service);
  }
  for (int iteration = 0; iteration < options.local_search_iterations;
       ++iteration) {
    const std::string& service = service_names[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(service_names.size()) - 1))];
    std::vector<std::string>& hosts = assignment.hosts_of[service];
    if (hosts.empty()) continue;
    size_t slot = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(hosts.size()) - 1));
    const ServerSpec& candidate = input.servers[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(input.servers.size()) - 1))];
    if (candidate.name == hosts[slot]) continue;
    // Feasibility: rebuild is expensive; emulate by removing the
    // instance from the scratch cluster and trying the new spot.
    infra::InstanceId moving = 0;
    for (const infra::ServiceInstance* instance :
         scratch.InstancesOf(service)) {
      if (instance->server == hosts[slot]) moving = instance->id;
    }
    if (moving == 0) continue;
    if (!scratch.CanPlace(service, candidate.name, moving).ok()) continue;
    std::string old_host = hosts[slot];
    hosts[slot] = candidate.name;
    Objective attempt = Evaluate(input, assignment, demand);
    if (attempt < current) {
      current = attempt;
      AG_CHECK_OK(
          scratch.MoveInstance(moving, candidate.name, SimTime::Start()));
    } else {
      hosts[slot] = old_host;
    }
  }

  // --- Report -----------------------------------------------------------
  report.designed_peak_load = current.peak;
  report.hourly_loads = PredictLoads(input, assignment, demand);
  double worst_stddev = 0.0;
  for (const auto& hour : report.hourly_loads) {
    double mean = 0.0;
    for (const auto& [server, load] : hour) mean += load;
    mean /= static_cast<double>(hour.size());
    double var = 0.0;
    for (const auto& [server, load] : hour) {
      var += (load - mean) * (load - mean);
    }
    worst_stddev = std::max(
        worst_stddev, std::sqrt(var / static_cast<double>(hour.size())));
  }
  report.designed_imbalance = worst_stddev;

  report.landscape.initial_allocation.clear();
  for (const auto& [service, hosts] : assignment.hosts_of) {
    for (const std::string& host : hosts) {
      report.landscape.initial_allocation.emplace_back(service, host);
    }
  }
  // Deterministic order: by server, then service (stable across runs).
  std::sort(report.landscape.initial_allocation.begin(),
            report.landscape.initial_allocation.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });

  // Final sanity: the allocation must materialize under the real
  // constraint checks.
  Cluster verify;
  Assignment final_assignment;
  for (const auto& [service, host] :
       report.landscape.initial_allocation) {
    final_assignment.hosts_of[service].push_back(host);
  }
  AG_RETURN_IF_ERROR(
      Materialize(report.landscape, final_assignment, &verify));
  return report;
}

}  // namespace autoglobe::designer
