#ifndef AUTOGLOBE_FUZZY_XML_LOADER_H_
#define AUTOGLOBE_FUZZY_XML_LOADER_H_

#include "common/result.h"
#include "fuzzy/inference.h"
#include "xmlcfg/xml.h"

namespace autoglobe::fuzzy {

/// Loads a rule base from the declarative XML description language
/// (paper §1/§4: "the rules for the fuzzy controller can be
/// specified" declaratively). Expected shape:
///
///   <ruleBase name="serviceOverloaded">
///     <variable name="cpuLoad" min="0" max="1">
///       <term name="low"    shape="trapezoid" points="0,0,0.2,0.4"/>
///       <term name="medium" shape="trapezoid" points="0.2,0.4,0.5,0.7"/>
///       <term name="high"   shape="trapezoid" points="0.5,1,1,1"/>
///     </variable>
///     <output name="scaleUp"/>            <!-- ramp "applicable" -->
///     <rules>
///       IF cpuLoad IS high THEN scaleUp IS applicable
///     </rules>
///   </ruleBase>
///
/// `shape` is one of trapezoid (4 points), triangle (3), ramp-up (2),
/// ramp-down (2), singleton (1), constant (1).
Result<RuleBase> LoadRuleBase(const xml::Element& element);

/// Parses a single <variable> element.
Result<LinguisticVariable> LoadVariable(const xml::Element& element);

/// Serializes a rule base back into the XML description language.
void SaveRuleBase(const RuleBase& rule_base, xml::Element* out);

}  // namespace autoglobe::fuzzy

#endif  // AUTOGLOBE_FUZZY_XML_LOADER_H_
