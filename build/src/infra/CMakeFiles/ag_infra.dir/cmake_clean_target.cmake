file(REMOVE_RECURSE
  "libag_infra.a"
)
