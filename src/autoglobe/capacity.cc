#include "autoglobe/capacity.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <optional>

#include "autoglobe/batch_runner.h"
#include "common/thread_pool.h"

namespace autoglobe {

RunnerConfig MakeScenarioConfig(Scenario scenario, double user_scale,
                                uint64_t seed) {
  RunnerConfig config;
  config.user_scale = user_scale;
  config.seed = seed;
  switch (scenario) {
    case Scenario::kStatic:
      config.controller_enabled = false;
      config.distribution = workload::UserDistribution::kStickySessions;
      break;
    case Scenario::kConstrainedMobility:
      config.controller_enabled = true;
      // "After a scale-out, the system does not dynamically
      // redistribute the users" (§5.1) — only fluctuation rebalances.
      config.distribution = workload::UserDistribution::kStickySessions;
      break;
    case Scenario::kFullMobility:
      config.controller_enabled = true;
      // "if a new instance of a service is started, the users are
      // equally redistributed across all instances" (§5.1).
      config.distribution =
          workload::UserDistribution::kDynamicRedistribution;
      break;
  }
  return config;
}

bool Passes(const RunMetrics& metrics, const AcceptanceCriteria& criteria) {
  return metrics.max_overload_streak_minutes <=
             criteria.max_overload_streak_minutes &&
         metrics.overload_fraction <= criteria.max_overload_fraction;
}

std::vector<double> SweepScales(const CapacityOptions& options) {
  std::vector<double> scales;
  if (options.step <= 0) {
    // A non-positive step would never pass max_scale; degrade to the
    // single start step instead of looping forever.
    scales.push_back(options.start_scale);
    return scales;
  }
  // Each scale is derived from the step index, not accumulated: a
  // running `scale += step` drifts by one ulp every few steps, and a
  // long sweep can accumulate enough error to emit a step beyond
  // max_scale (or skip the final one).
  for (size_t i = 0;; ++i) {
    double scale = options.start_scale + static_cast<double>(i) * options.step;
    if (scale > options.max_scale + 1e-9) break;
    scales.push_back(scale);
  }
  return scales;
}

uint64_t StepSeed(const CapacityOptions& options, size_t index) {
  return options.seed + options.seed_stride * static_cast<uint64_t>(index);
}

namespace {

/// One fully independent sweep step: fresh landscape, fresh runner,
/// seed a pure function of the step index — execution order can never
/// leak into the result.
Result<CapacityStep> RunStep(Scenario scenario, double scale,
                             const CapacityOptions& options,
                             uint64_t seed) {
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = MakeScenarioConfig(scenario, scale, seed);
  config.duration = options.run_duration;
  config.metrics_warmup = options.warmup;
  config.rng_kind = options.rng_kind;
  AG_ASSIGN_OR_RETURN(std::unique_ptr<SimulationRunner> runner,
                      SimulationRunner::Create(landscape, config));
  AG_RETURN_IF_ERROR(runner->Run());
  CapacityStep step;
  step.scale = scale;
  step.metrics = runner->metrics();
  step.observed = runner->metrics_registry().Snapshot();
  step.passed = Passes(step.metrics, options.criteria);
  return step;
}

size_t ResolveWorkers(const CapacityOptions& options) {
  if (options.parallelism == 0) return ThreadPool::DefaultThreadCount();
  return static_cast<size_t>(std::max(1, options.parallelism));
}

/// Shared early-stop bound for one scenario's speculative sweep: the
/// lowest step index known to have failed. Steps beyond the bound are
/// skipped — they can never appear in the truncated result — so the
/// speculative waste is limited to the handful of steps already in
/// flight when the failure surfaces, instead of the whole scale range.
class FailureBound {
 public:
  bool Beyond(size_t index) const {
    return index > bound_.load(std::memory_order_acquire);
  }
  void RecordFailure(size_t index) {
    size_t current = bound_.load(std::memory_order_acquire);
    while (index < current &&
           !bound_.compare_exchange_weak(current, index,
                                         std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<size_t> bound_{std::numeric_limits<size_t>::max()};
};

/// Runs step `index` unless the bound says it cannot matter; records
/// failures (and errors, which also end a sequential sweep) in the
/// bound so later steps stop being computed.
std::optional<Result<CapacityStep>> RunStepSpeculative(
    Scenario scenario, const std::vector<double>& scales, size_t index,
    const CapacityOptions& options, FailureBound* bound) {
  if (bound->Beyond(index)) return std::nullopt;  // skipped
  Result<CapacityStep> outcome =
      RunStep(scenario, scales[index], options, StepSeed(options, index));
  if (!outcome.ok() || !outcome->passed) bound->RecordFailure(index);
  return outcome;
}

/// Applies the sequential sweep semantics — "until the system becomes
/// overloaded" — to speculatively computed steps: keep steps up to
/// and including the first failure, drop the rest.
Result<CapacityResult> Assemble(
    Scenario scenario,
    std::vector<std::optional<Result<CapacityStep>>> outcomes) {
  CapacityResult result;
  result.scenario = scenario;
  for (std::optional<Result<CapacityStep>>& outcome : outcomes) {
    if (!outcome.has_value()) {
      return Status::Internal("sweep step was not computed");
    }
    AG_RETURN_IF_ERROR(outcome->status());
    result.steps.push_back(**outcome);
    if (!(*outcome)->passed) break;
    result.max_scale = (*outcome)->scale;
  }
  return result;
}

/// The sweep config of one scenario at the options' duration/warmup
/// (the per-step knobs — scale and seed — are the batch lanes).
RunnerConfig SweepConfig(Scenario scenario, const CapacityOptions& options) {
  RunnerConfig config = MakeScenarioConfig(scenario, options.start_scale,
                                           options.seed);
  config.duration = options.run_duration;
  config.metrics_warmup = options.warmup;
  config.rng_kind = options.rng_kind;
  return config;
}

bool UseBatchedSweep(Scenario scenario, const CapacityOptions& options) {
  return options.batch_lanes > 1 &&
         BatchRunner::CheckEligibility(SweepConfig(scenario, options)).ok();
}

/// The batched sweep: chunks of up to batch_lanes steps run in
/// lockstep in one reused BatchRunner. Sequential semantics are kept —
/// steps after the first failure are dropped, and chunks past it are
/// never run (the batch is the speculation granule).
Result<CapacityResult> FindCapacityBatched(
    Scenario scenario, const CapacityOptions& options,
    const std::vector<double>& scales) {
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = SweepConfig(scenario, options);
  CapacityResult result;
  result.scenario = scenario;
  const size_t width = std::min(options.batch_lanes, scales.size());
  std::unique_ptr<BatchRunner> batch;
  for (size_t base = 0; base < scales.size(); base += width) {
    std::vector<BatchLane> lanes(width);
    for (size_t lane = 0; lane < width; ++lane) {
      // The tail chunk pads with repeats of the last step (the lane
      // count is fixed for the runner's lifetime); padded lanes are
      // simply not read out.
      size_t index = std::min(base + lane, scales.size() - 1);
      lanes[lane] = BatchLane{StepSeed(options, index), scales[index]};
    }
    if (batch == nullptr) {
      AG_ASSIGN_OR_RETURN(
          batch, BatchRunner::Create(landscape, config, std::move(lanes)));
    } else {
      AG_RETURN_IF_ERROR(batch->Rerun(std::move(lanes)));
    }
    AG_RETURN_IF_ERROR(batch->Run());
    for (size_t lane = 0; lane < width && base + lane < scales.size();
         ++lane) {
      CapacityStep step;
      step.scale = scales[base + lane];
      step.metrics = batch->metrics(lane);
      step.passed = Passes(step.metrics, options.criteria);
      bool passed = step.passed;
      result.steps.push_back(std::move(step));
      if (!passed) return result;  // "until the system becomes overloaded"
      result.max_scale = scales[base + lane];
    }
  }
  return result;
}

Result<CapacityResult> FindCapacitySequential(
    Scenario scenario, const CapacityOptions& options,
    const std::vector<double>& scales) {
  CapacityResult result;
  result.scenario = scenario;
  for (size_t i = 0; i < scales.size(); ++i) {
    AG_ASSIGN_OR_RETURN(
        CapacityStep step,
        RunStep(scenario, scales[i], options, StepSeed(options, i)));
    result.steps.push_back(step);
    if (!step.passed) break;  // "until the system becomes overloaded"
    result.max_scale = step.scale;
  }
  return result;
}

}  // namespace

Result<CapacityResult> FindCapacity(Scenario scenario,
                                    const CapacityOptions& options) {
  std::vector<double> scales = SweepScales(options);
  if (UseBatchedSweep(scenario, options)) {
    return FindCapacityBatched(scenario, options, scales);
  }
  size_t workers = ResolveWorkers(options);
  if (workers <= 1 || scales.size() <= 1) {
    // Sequential keeps the early exit: steps past the first failure
    // are never run at all.
    return FindCapacitySequential(scenario, options, scales);
  }
  ThreadPool pool(std::min(workers, scales.size()));
  FailureBound bound;
  auto outcomes = pool.ParallelMap(
      scales.size(),
      [&](size_t i) -> std::optional<Result<CapacityStep>> {
        return RunStepSpeculative(scenario, scales, i, options, &bound);
      });
  return Assemble(scenario, std::move(outcomes));
}

Result<std::vector<CapacityResult>> FindCapacityAll(
    const CapacityOptions& options) {
  const Scenario scenarios[] = {Scenario::kStatic,
                                Scenario::kConstrainedMobility,
                                Scenario::kFullMobility};
  std::vector<double> scales = SweepScales(options);
  size_t workers = ResolveWorkers(options);
  std::vector<CapacityResult> results;

  if (workers <= 1) {
    for (Scenario scenario : scenarios) {
      AG_ASSIGN_OR_RETURN(CapacityResult result,
                          UseBatchedSweep(scenario, options)
                              ? FindCapacityBatched(scenario, options, scales)
                              : FindCapacitySequential(scenario, options,
                                                       scales));
      results.push_back(std::move(result));
    }
    return results;
  }

  // Batch-eligible scenarios (static) run batched on the calling
  // thread first — one BatchRunner sweeps all their steps faster than
  // the speculative fan-out would, and leaving them out of the task
  // list keeps the pool for the controller-enabled scenarios.
  std::vector<std::optional<CapacityResult>> batched(std::size(scenarios));
  for (size_t s = 0; s < std::size(scenarios); ++s) {
    if (!UseBatchedSweep(scenarios[s], options)) continue;
    AG_ASSIGN_OR_RETURN(batched[s],
                        FindCapacityBatched(scenarios[s], options, scales));
  }

  // Flatten every (scenario, step) pair into one task list so the
  // pool stays busy across scenario boundaries. Step-major order
  // (all scenarios' step i before any step i+1) surfaces each
  // scenario's first failure as early as possible, which keeps the
  // speculative waste per scenario down to roughly the worker count.
  struct Task {
    size_t scenario;
    size_t step;
  };
  std::vector<Task> tasks;
  tasks.reserve(std::size(scenarios) * scales.size());
  for (size_t i = 0; i < scales.size(); ++i) {
    for (size_t s = 0; s < std::size(scenarios); ++s) {
      if (!batched[s].has_value()) tasks.push_back({s, i});
    }
  }
  std::vector<std::vector<std::optional<Result<CapacityStep>>>> outcomes(
      std::size(scenarios));
  for (auto& per_scenario : outcomes) per_scenario.resize(scales.size());
  std::vector<FailureBound> bounds(std::size(scenarios));

  if (!tasks.empty()) {
    ThreadPool pool(std::min(workers, tasks.size()));
    pool.ParallelFor(tasks.size(), [&](size_t t) {
      const Task& task = tasks[t];
      outcomes[task.scenario][task.step] =
          RunStepSpeculative(scenarios[task.scenario], scales, task.step,
                             options, &bounds[task.scenario]);
    });
  }

  for (size_t s = 0; s < std::size(scenarios); ++s) {
    if (batched[s].has_value()) {
      results.push_back(std::move(*batched[s]));
      continue;
    }
    AG_ASSIGN_OR_RETURN(CapacityResult result,
                        Assemble(scenarios[s], std::move(outcomes[s])));
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace autoglobe
