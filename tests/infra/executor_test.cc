#include "infra/executor.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace autoglobe::infra {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerSpec small;
    small.name = "small";
    small.performance_index = 1;
    small.memory_gb = 4;
    ServerSpec mid = small;
    mid.name = "mid";
    mid.performance_index = 2;
    ServerSpec big = small;
    big.name = "big";
    big.performance_index = 9;
    big.memory_gb = 12;
    ASSERT_TRUE(cluster_.AddServer(small).ok());
    ASSERT_TRUE(cluster_.AddServer(mid).ok());
    ASSERT_TRUE(cluster_.AddServer(big).ok());

    ServiceSpec app;
    app.name = "app";
    app.memory_footprint_gb = 1.0;
    app.min_instances = 1;
    app.max_instances = 3;
    app.allowed_actions = {ActionType::kStart,    ActionType::kStop,
                           ActionType::kScaleIn,  ActionType::kScaleOut,
                           ActionType::kScaleUp,  ActionType::kScaleDown,
                           ActionType::kMove,     ActionType::kIncreasePriority,
                           ActionType::kReducePriority};
    ASSERT_TRUE(cluster_.AddService(app).ok());

    ServiceSpec frozen;
    frozen.name = "frozen";  // supports nothing (a CM database)
    frozen.memory_footprint_gb = 1.0;
    ASSERT_TRUE(cluster_.AddService(frozen).ok());

    executor_ = std::make_unique<ActionExecutor>(&cluster_, &simulator_);
  }

  InstanceId Place(const std::string& service, const std::string& server) {
    auto id = cluster_.PlaceInstance(service, server, simulator_.now());
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or(0);
  }

  Cluster cluster_;
  sim::Simulator simulator_;
  std::unique_ptr<ActionExecutor> executor_;
};

TEST_F(ExecutorTest, ScaleOutStartsWithBootDelay) {
  Place("app", "small");
  Action action{ActionType::kScaleOut, "app", 0, "", "mid"};
  ASSERT_TRUE(executor_->Execute(action).ok());
  // Immediately: instance exists but is starting.
  ASSERT_EQ(cluster_.InstancesOn("mid").size(), 1u);
  EXPECT_EQ(cluster_.InstancesOn("mid")[0]->state, InstanceState::kStarting);
  EXPECT_EQ(cluster_.RunningInstanceCount("app"), 1);
  // After the start delay it runs.
  simulator_.RunUntil(simulator_.now() + executor_->config().start_delay);
  EXPECT_EQ(cluster_.RunningInstanceCount("app"), 2);
}

TEST_F(ExecutorTest, SuccessfulActionProtectsInvolvedEntities) {
  Place("app", "small");
  Action action{ActionType::kScaleOut, "app", 0, "", "mid"};
  ASSERT_TRUE(executor_->Execute(action).ok());
  SimTime now = simulator_.now();
  EXPECT_TRUE(cluster_.IsServiceProtected("app", now));
  EXPECT_TRUE(cluster_.IsServerProtected("mid", now));
  EXPECT_FALSE(cluster_.IsServerProtected("big", now));
  EXPECT_FALSE(cluster_.IsServiceProtected(
      "app", now + executor_->config().protection_time));
}

TEST_F(ExecutorTest, DisallowedActionRejected) {
  Place("frozen", "small");
  Action action{ActionType::kScaleOut, "frozen", 0, "", "mid"};
  Status status = executor_->Execute(action);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // A failed action protects nothing.
  EXPECT_FALSE(cluster_.IsServiceProtected("frozen", simulator_.now()));
}

TEST_F(ExecutorTest, MissingTargetServerRejected) {
  Place("app", "small");
  Action action{ActionType::kScaleOut, "app", 0, "", ""};
  EXPECT_FALSE(executor_->Execute(action).ok());
}

TEST_F(ExecutorTest, ScaleInRemovesInstance) {
  Place("app", "small");
  InstanceId second = Place("app", "mid");
  Action action{ActionType::kScaleIn, "app", second, "mid", ""};
  ASSERT_TRUE(executor_->Execute(action).ok());
  EXPECT_EQ(cluster_.ActiveInstanceCount("app"), 1);
  EXPECT_TRUE(cluster_.IsServerProtected("mid", simulator_.now()));
}

TEST_F(ExecutorTest, ScaleInRespectsMinimum) {
  InstanceId only = Place("app", "small");
  Action action{ActionType::kScaleIn, "app", only, "small", ""};
  EXPECT_FALSE(executor_->Execute(action).ok());
  EXPECT_EQ(cluster_.ActiveInstanceCount("app"), 1);
}

TEST_F(ExecutorTest, StopRemovesAllInstances) {
  Place("app", "small");
  Place("app", "mid");
  Action action{ActionType::kStop, "app", 0, "", ""};
  ASSERT_TRUE(executor_->Execute(action).ok());
  EXPECT_EQ(cluster_.InstancesOf("app").size(), 0u);
  // Stopping again fails: nothing to stop.
  EXPECT_FALSE(executor_->Execute(action).ok());
}

TEST_F(ExecutorTest, MoveHasBriefDowntime) {
  InstanceId id = Place("app", "small");
  Action action{ActionType::kMove, "app", id, "small", "mid"};
  ASSERT_TRUE(executor_->Execute(action).ok());
  auto instance = cluster_.FindInstance(id);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ((*instance)->server, "mid");
  EXPECT_EQ((*instance)->state, InstanceState::kStarting);
  simulator_.RunUntil(simulator_.now() + executor_->config().move_downtime);
  EXPECT_EQ((*cluster_.FindInstance(id))->state, InstanceState::kRunning);
}

TEST_F(ExecutorTest, ScaleUpRequiresMorePowerfulHost) {
  InstanceId id = Place("app", "mid");
  Action down_as_up{ActionType::kScaleUp, "app", id, "mid", "small"};
  EXPECT_FALSE(executor_->Execute(down_as_up).ok());
  Action up{ActionType::kScaleUp, "app", id, "mid", "big"};
  EXPECT_TRUE(executor_->Execute(up).ok());
  EXPECT_EQ((*cluster_.FindInstance(id))->server, "big");
}

TEST_F(ExecutorTest, ScaleDownRequiresLessPowerfulHost) {
  InstanceId id = Place("app", "mid");
  Action up_as_down{ActionType::kScaleDown, "app", id, "mid", "big"};
  EXPECT_FALSE(executor_->Execute(up_as_down).ok());
  Action down{ActionType::kScaleDown, "app", id, "mid", "small"};
  EXPECT_TRUE(executor_->Execute(down).ok());
}

TEST_F(ExecutorTest, InstanceServiceMismatchRejected) {
  Place("app", "small");
  InstanceId frozen_id = Place("frozen", "mid");
  Action action{ActionType::kScaleIn, "app", frozen_id, "mid", ""};
  EXPECT_FALSE(executor_->Execute(action).ok());
}

TEST_F(ExecutorTest, PriorityActionsAdjustWeight) {
  Place("app", "small");
  Action up{ActionType::kIncreasePriority, "app", 0, "", ""};
  ASSERT_TRUE(executor_->Execute(up).ok());
  EXPECT_GT(cluster_.ServicePriority("app"), 1.0);
  Action down{ActionType::kReducePriority, "app", 0, "", ""};
  ASSERT_TRUE(executor_->Execute(down).ok());
  EXPECT_NEAR(cluster_.ServicePriority("app"), 1.0, 1e-12);
}

TEST_F(ExecutorTest, FailureInjectorSimulatesBrokenActions) {
  Place("app", "small");
  executor_->set_failure_injector([](const Action& action) {
    if (action.target_server == "mid") {
      return Status::Internal("mid is on fire");
    }
    return Status::OK();
  });
  Action to_mid{ActionType::kScaleOut, "app", 0, "", "mid"};
  EXPECT_FALSE(executor_->Execute(to_mid).ok());
  EXPECT_TRUE(cluster_.InstancesOn("mid").empty());
  Action to_big{ActionType::kScaleOut, "app", 0, "", "big"};
  EXPECT_TRUE(executor_->Execute(to_big).ok());
}

TEST_F(ExecutorTest, LogRecordsSuccessAndFailure) {
  Place("app", "small");
  int listener_calls = 0;
  executor_->AddListener(
      [&listener_calls](const ActionRecord&) { ++listener_calls; });
  Action good{ActionType::kScaleOut, "app", 0, "", "mid"};
  Action bad{ActionType::kScaleOut, "frozen", 0, "", "big"};
  ASSERT_TRUE(executor_->Execute(good).ok());
  ASSERT_FALSE(executor_->Execute(bad).ok());
  ASSERT_EQ(executor_->log().size(), 2u);
  EXPECT_TRUE(executor_->log()[0].status.ok());
  EXPECT_FALSE(executor_->log()[1].status.ok());
  EXPECT_EQ(listener_calls, 2);
}

TEST_F(ExecutorTest, RestartRecoversFailedInstance) {
  InstanceId id = Place("app", "small");
  // Restart of a healthy instance is refused.
  EXPECT_FALSE(executor_->RestartInstance(id).ok());
  ASSERT_TRUE(cluster_.SetInstanceState(id, InstanceState::kFailed).ok());
  ASSERT_TRUE(executor_->RestartInstance(id).ok());
  EXPECT_EQ((*cluster_.FindInstance(id))->state, InstanceState::kStarting);
  simulator_.RunUntil(simulator_.now() + executor_->config().start_delay);
  EXPECT_EQ((*cluster_.FindInstance(id))->state, InstanceState::kRunning);
}

TEST_F(ExecutorTest, LaunchInstanceBypassesActionCapabilities) {
  // "frozen" supports no actions, but failure remediation may still
  // place a replacement instance.
  ASSERT_TRUE(executor_->LaunchInstance("frozen", "big").ok());
  EXPECT_EQ(cluster_.InstancesOn("big").size(), 1u);
}

TEST_F(ExecutorTest, StoppedStartingInstanceDoesNotResurrect) {
  Place("app", "small");
  Action scale_out{ActionType::kScaleOut, "app", 0, "", "mid"};
  ASSERT_TRUE(executor_->Execute(scale_out).ok());
  InstanceId starting = cluster_.InstancesOn("mid")[0]->id;
  ASSERT_TRUE(cluster_.RemoveInstance(starting, false).ok());
  // The pending "instance running" event must not blow up.
  simulator_.RunAll();
  EXPECT_TRUE(cluster_.InstancesOn("mid").empty());
}

// --- Failure injection: retries, metrics, audit -----------------------

TEST_F(ExecutorTest, TransientInjectedFailuresAreRetriedAndRecorded) {
  Place("app", "small");
  ExecutorConfig config;
  config.max_retries = 2;
  executor_ = std::make_unique<ActionExecutor>(&cluster_, &simulator_,
                                               config);
  obs::MetricsRegistry registry;
  executor_->set_metrics(registry.AddCounter("failed"),
                         registry.AddCounter("retries"));
  obs::AuditLog audit;
  executor_->set_audit_log(&audit);

  int calls = 0;
  executor_->set_failure_injector([&calls](const Action&) {
    return ++calls <= 2 ? Status::Unavailable("blip") : Status::OK();
  });

  Action action{ActionType::kScaleOut, "app", 0, "", "mid"};
  EXPECT_TRUE(executor_->Execute(action).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(registry.AddCounter("retries").value(), 2u);
  EXPECT_EQ(registry.AddCounter("failed").value(), 0u);
  // Audit trail: each rejection plus each retry announcement.
  ASSERT_EQ(audit.executor_events().size(), 4u);
  EXPECT_NE(audit.executor_events()[0].detail.find("injected failure"),
            std::string::npos);
  EXPECT_NE(audit.executor_events()[1].detail.find("retry 1/2"),
            std::string::npos);
  EXPECT_EQ(audit.executor_events()[3].attempt, 2);
}

TEST_F(ExecutorTest, DeterministicInjectedFailureIsNotRetried) {
  Place("app", "small");
  ExecutorConfig config;
  config.max_retries = 5;
  executor_ = std::make_unique<ActionExecutor>(&cluster_, &simulator_,
                                               config);
  obs::MetricsRegistry registry;
  executor_->set_metrics(registry.AddCounter("failed"),
                         registry.AddCounter("retries"));
  obs::AuditLog audit;
  executor_->set_audit_log(&audit);
  int calls = 0;
  executor_->set_failure_injector([&calls](const Action&) {
    ++calls;
    return Status::FailedPrecondition("would fail again");
  });

  Action action{ActionType::kScaleOut, "app", 0, "", "mid"};
  EXPECT_FALSE(executor_->Execute(action).ok());
  EXPECT_EQ(calls, 1);  // retrying a deterministic failure is pointless
  EXPECT_EQ(registry.AddCounter("retries").value(), 0u);
  EXPECT_EQ(registry.AddCounter("failed").value(), 1u);
  ASSERT_EQ(audit.executor_events().size(), 1u);
  EXPECT_EQ(audit.executor_events()[0].attempt, 0);
}

TEST_F(ExecutorTest, ExhaustedRetryBudgetCountsAsFailure) {
  Place("app", "small");
  ExecutorConfig config;
  config.max_retries = 1;
  executor_ = std::make_unique<ActionExecutor>(&cluster_, &simulator_,
                                               config);
  obs::MetricsRegistry registry;
  executor_->set_metrics(registry.AddCounter("failed"),
                         registry.AddCounter("retries"));
  executor_->set_failure_injector(
      [](const Action&) { return Status::Unavailable("still down"); });

  Action action{ActionType::kScaleOut, "app", 0, "", "mid"};
  Status status = executor_->Execute(action);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(registry.AddCounter("retries").value(), 1u);
  EXPECT_EQ(registry.AddCounter("failed").value(), 1u);
  // The action log keeps the final verdict too.
  ASSERT_FALSE(executor_->log().empty());
  EXPECT_FALSE(executor_->log().back().status.ok());
  // Nothing was placed.
  EXPECT_TRUE(cluster_.InstancesOn("mid").empty());
}

TEST_F(ExecutorTest, LaunchAndRestartConsultTheInjector) {
  InstanceId id = Place("app", "small");
  executor_->set_failure_injector(
      [](const Action&) { return Status::Unavailable("no management"); });
  EXPECT_FALSE(executor_->LaunchInstance("app", "mid").ok());
  EXPECT_TRUE(cluster_.InstancesOn("mid").empty());
  ASSERT_TRUE(cluster_.SetInstanceState(id, InstanceState::kFailed).ok());
  EXPECT_FALSE(executor_->RestartInstance(id).ok());
  EXPECT_EQ(cluster_.FindInstance(id).value()->state,
            InstanceState::kFailed);

  // With the blip gone both paths work again.
  executor_->set_failure_injector(nullptr);
  EXPECT_TRUE(executor_->RestartInstance(id).ok());
  auto launched = executor_->LaunchInstance("app", "mid");
  ASSERT_TRUE(launched.ok()) << launched.status();
  simulator_.RunAll();
  EXPECT_EQ(cluster_.FindInstance(id).value()->state,
            InstanceState::kRunning);
  EXPECT_EQ(cluster_.FindInstance(*launched).value()->state,
            InstanceState::kRunning);
}

}  // namespace
}  // namespace autoglobe::infra
