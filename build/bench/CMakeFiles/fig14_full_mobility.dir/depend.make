# Empty dependencies file for fig14_full_mobility.
# This may be replaced when dependencies are built.
