#ifndef AUTOGLOBE_INFRA_SPECS_H_
#define AUTOGLOBE_INFRA_SPECS_H_

#include <set>
#include <string>

#include "common/result.h"
#include "infra/action.h"
#include "xmlcfg/xml.h"

namespace autoglobe::infra {

/// Static description of a server, carrying the meta data the
/// server-selection fuzzy controller consumes (Table 3) plus the
/// capacity facts the allocator enforces. Loaded from the declarative
/// XML description language.
struct ServerSpec {
  std::string name;
  std::string category;          // e.g. "FSC-BX300", for console grouping
  double performance_index = 1;  // relative horsepower (paper §5.1)
  int num_cpus = 1;
  double cpu_clock_ghz = 1.0;
  double cpu_cache_mb = 0.5;
  double memory_gb = 2.0;
  double swap_gb = 4.0;
  double temp_gb = 20.0;

  /// Parses a <server .../> element.
  static Result<ServerSpec> FromXml(const xml::Element& element);
  /// Serializes into `out` (attributes of a <server/> element).
  void ToXml(xml::Element* out) const;
  /// Validates invariants (positive capacities etc.).
  Status Validate() const;
};

/// Coarse role of a service in the three-tier landscape (paper §5.1).
/// The workload engine uses the role to propagate request load from
/// application servers through central instances to databases.
enum class ServiceRole {
  kApplicationServer,
  kCentralInstance,
  kDatabase,
};

std::string_view ServiceRoleName(ServiceRole role);
Result<ServiceRole> ParseServiceRole(std::string_view name);

/// Static description of a service with the capability constraints of
/// Tables 5 and 6: which actions the controller may apply, exclusive
/// placement, minimum host performance, and instance-count bounds.
struct ServiceSpec {
  std::string name;              // e.g. "FI"
  ServiceRole role = ServiceRole::kApplicationServer;
  std::string subsystem;         // e.g. "ERP", "CRM", "BW"
  bool exclusive = false;        // no co-located services allowed
  double min_performance_index = 0.0;
  int min_instances = 1;
  int max_instances = 16;
  double memory_footprint_gb = 1.0;  // per instance
  /// Service-specific overload watchTime in minutes (0 = use the
  /// landscape default). Paper §4.1: load variables are averaged over
  /// "the service specific watchTime".
  int watch_time_minutes = 0;
  std::set<ActionType> allowed_actions;

  bool Allows(ActionType action) const {
    return allowed_actions.count(action) > 0;
  }

  /// Parses a <service .../> element with an `actions` attribute
  /// holding a comma-separated action list.
  static Result<ServiceSpec> FromXml(const xml::Element& element);
  void ToXml(xml::Element* out) const;
  Status Validate() const;
};

}  // namespace autoglobe::infra

#endif  // AUTOGLOBE_INFRA_SPECS_H_
