#include "controller/controller.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "controller/rule_bases.h"
#include "obs/audit.h"
#include "sim/simulator.h"

namespace autoglobe::controller {
namespace {

using infra::ActionType;
using infra::Cluster;
using infra::InstanceId;
using infra::ServerSpec;
using infra::ServiceSpec;
using monitor::Trigger;
using monitor::TriggerKind;

class OverrideView : public LoadView {
 public:
  double ServerCpuLoad(std::string_view) const override { return load_; }
  double ServerMemLoad(std::string_view) const override { return load_; }
  double InstanceLoad(InstanceId) const override { return load_; }
  double ServiceLoad(std::string_view) const override { return load_; }
  double load_ = 0.9;
};

class WeightOverrideTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 1; i <= 3; ++i) {
      ServerSpec spec;
      spec.name = "srv" + std::to_string(i);
      spec.performance_index = 2;
      spec.num_cpus = 2;
      spec.memory_gb = 8;
      ASSERT_TRUE(cluster_.AddServer(spec).ok());
    }
    ServiceSpec app;
    app.name = "app";
    app.memory_footprint_gb = 1.0;
    app.min_instances = 1;
    app.max_instances = 4;
    app.allowed_actions = {ActionType::kScaleIn, ActionType::kScaleOut,
                           ActionType::kMove};
    ASSERT_TRUE(cluster_.AddService(app).ok());
    ASSERT_TRUE(cluster_.PlaceInstance("app", "srv1",
                                       simulator_.now()).ok());

    executor_ = std::make_unique<infra::ActionExecutor>(&cluster_,
                                                        &simulator_);
    auto controller =
        Controller::Create(&cluster_, executor_.get(), &view_);
    ASSERT_TRUE(controller.ok()) << controller.status();
    controller_ = std::make_unique<Controller>(std::move(*controller));
  }

  Trigger Overload() {
    return Trigger{TriggerKind::kServiceOverloaded, "app",
                   simulator_.now(), 0.9};
  }

  Cluster cluster_;
  sim::Simulator simulator_;
  OverrideView view_;
  std::unique_ptr<infra::ActionExecutor> executor_;
  std::unique_ptr<Controller> controller_;
};

TEST_F(WeightOverrideTest, OverrideMustMatchRuleCount) {
  auto count = controller_->ActionRuleCount(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(count.ok());
  ASSERT_GT(*count, 0u);
  EXPECT_FALSE(controller_
                   ->SetActionWeightOverride(TriggerKind::kServiceOverloaded,
                                             std::vector<double>(*count + 1,
                                                                 1.0))
                   .ok());
  EXPECT_TRUE(controller_
                  ->SetActionWeightOverride(TriggerKind::kServiceOverloaded,
                                            std::vector<double>(*count, 1.0))
                  .ok());
  EXPECT_NE(controller_->ActionWeightOverride(
                TriggerKind::kServiceOverloaded),
            nullptr);
}

TEST_F(WeightOverrideTest, UnitOverrideKeepsDecisionsIdentical) {
  auto baseline = controller_->RankActions(Overload());
  ASSERT_TRUE(baseline.ok());

  auto weights =
      controller_->ActionRuleWeights(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(weights.ok());
  ASSERT_TRUE(controller_
                  ->SetActionWeightOverride(TriggerKind::kServiceOverloaded,
                                            *weights)
                  .ok());
  auto overridden = controller_->RankActions(Overload());
  ASSERT_TRUE(overridden.ok());
  ASSERT_EQ(baseline->size(), overridden->size());
  for (size_t i = 0; i < baseline->size(); ++i) {
    EXPECT_EQ((*baseline)[i].action.type, (*overridden)[i].action.type);
    EXPECT_EQ((*baseline)[i].applicability, (*overridden)[i].applicability);
  }
}

// Satellite regression: swapping a rule base mid-run recompiles the
// base, which must rebuild the cached slot/scratch sizing in the one
// shared place AND drop any weight override sized for the old rule
// count — a stale override (or stale scratch) would index out of
// bounds on the next evaluation.
TEST_F(WeightOverrideTest, RuleBaseSwapInvalidatesOverrideAndScratch) {
  auto count = controller_->ActionRuleCount(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(controller_
                  ->SetActionWeightOverride(TriggerKind::kServiceOverloaded,
                                            std::vector<double>(*count, 1.5))
                  .ok());

  // Swap in a base with a different rule count (one rule).
  fuzzy::RuleBase replacement = MakeActionSelectionVariables("swap");
  ASSERT_TRUE(replacement
                  .AddRulesFromText(
                      "IF serviceLoad IS high THEN scaleOut IS applicable")
                  .ok());
  ASSERT_TRUE(controller_
                  ->SetActionRuleBase(TriggerKind::kServiceOverloaded,
                                      std::move(replacement))
                  .ok());

  // The override sized for the old base is gone, not applied askew.
  EXPECT_EQ(controller_->ActionWeightOverride(
                TriggerKind::kServiceOverloaded),
            nullptr);
  auto new_count =
      controller_->ActionRuleCount(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(new_count.ok());
  EXPECT_EQ(*new_count, 1u);

  // Decisions still work against the recompiled base (fresh slots and
  // scratch), repeatedly and after another swap back and forth.
  for (int i = 0; i < 3; ++i) {
    auto outcome = controller_->HandleTrigger(Overload());
    ASSERT_TRUE(outcome.ok()) << outcome.status();
  }
  fuzzy::RuleBase richer = MakeActionSelectionVariables("swap2");
  ASSERT_TRUE(richer
                  .AddRulesFromText(
                      "IF serviceLoad IS high THEN scaleOut IS applicable\n"
                      "IF serviceLoad IS low THEN scaleIn IS applicable\n"
                      "IF cpuLoad IS high THEN move IS applicable")
                  .ok());
  ASSERT_TRUE(controller_
                  ->SetActionRuleBase(TriggerKind::kServiceOverloaded,
                                      std::move(richer))
                  .ok());
  auto richer_count =
      controller_->ActionRuleCount(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(richer_count.ok());
  EXPECT_EQ(*richer_count, 3u);
  auto outcome = controller_->HandleTrigger(Overload());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
}

TEST_F(WeightOverrideTest, AuditRecordsStrategyLabelAndWeights) {
  obs::AuditLog log(8);
  controller_->set_audit_log(&log);
  controller_->set_strategy_label("fuzzy-qlearning");
  auto count = controller_->ActionRuleCount(TriggerKind::kServiceOverloaded);
  ASSERT_TRUE(count.ok());
  std::vector<double> weights(*count, 0.5);
  ASSERT_TRUE(controller_
                  ->SetActionWeightOverride(TriggerKind::kServiceOverloaded,
                                            weights)
                  .ok());
  auto outcome = controller_->HandleTrigger(Overload());
  ASSERT_TRUE(outcome.ok());
  ASSERT_FALSE(log.records().empty());
  const obs::DecisionAudit& record = log.records().back();
  EXPECT_EQ(record.strategy, "fuzzy-qlearning");
  std::string rendered = obs::RenderExplain(record);
  EXPECT_NE(rendered.find("strategy: fuzzy-qlearning"), std::string::npos);
  bool saw_weight = false;
  for (const obs::InferenceRecord& inference : record.action_inference) {
    for (const obs::RuleActivation& rule : inference.rules) {
      if (rule.weight == 0.5) saw_weight = true;
    }
  }
  EXPECT_TRUE(saw_weight);
}

}  // namespace
}  // namespace autoglobe::controller
