#ifndef AUTOGLOBE_WORKLOAD_DEMAND_H_
#define AUTOGLOBE_WORKLOAD_DEMAND_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/philox.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/rng_kind.h"
#include "common/sim_time.h"
#include "infra/cluster.h"
#include "infra/ids.h"
#include "workload/load_pattern.h"

namespace autoglobe::workload {

/// Work is measured in *work units* (wu): 1 wu is the work a
/// performance-index-1 server completes per minute at 100 % CPU. The
/// paper dimensions a standard blade to "handle at most 150 users of
/// one service" (§5.1), so a fully active user of request cost 1.0
/// consumes 1/150 wu per minute, and a server of performance index p
/// delivers p wu per minute.
inline constexpr double kUsersPerPerformanceUnit = 150.0;

/// Demand model of one service (the paper's service-specific
/// simulation parameters, §5.1: "the load caused by a single request
/// depends on the specific service").
struct ServiceDemandSpec {
  std::string service;
  LoadPattern pattern;
  /// Connected users at 100 % scale (Table 4). Zero for batch and
  /// derived (CI/DB) services.
  double base_users = 0.0;
  /// Relative app-server work per active user ("an FI request
  /// produces lower load than a BW request").
  double request_cost = 1.0;
  /// Idle work per running instance ("every application server itself
  /// induces a basic load").
  double base_load_wu = 0.02;
  /// Batch-style service (BW): demand scales with job size, not with
  /// a user count.
  bool batch = false;
  /// Total batch work across all instances at activity 1.0, scale 1.0.
  double batch_load_wu = 0.0;
  /// Relative per-tick demand noise (creates the "short load peaks"
  /// the watchTime mechanism must ride out).
  double noise_stddev = 0.02;
  /// Queue bound (wu). Interactive services keep this small — users
  /// give up / postpone rather than queue indefinitely ("requests
  /// will be delayed till next day"); batch and database tiers queue
  /// generously. Overflow counts as lost work.
  double backlog_cap_wu = 2.0;
  /// Batch and derived tiers pull from one shared queue, so unserved
  /// work migrates to whichever instance has spare capacity;
  /// interactive sessions queue at their own instance.
  bool shared_queue = false;
};

/// Three-tier request propagation (paper §5.1): before an application
/// request reaches the database, the central instance's lock
/// management is consulted — so CI and DB demand derive from the
/// subsystem's application work.
struct SubsystemSpec {
  std::string name;              // e.g. "ERP"
  std::vector<std::string> app_services;
  std::string central_instance;  // service name, may be empty
  std::string database;          // service name, may be empty
  double ci_factor = 0.05;       // CI wu per app wu
  double db_factor = 0.25;       // DB wu per app wu
};

/// Registration surface of a demand model. Landscape::Build feeds
/// service demand specs and subsystem wiring through this interface,
/// so the scalar DemandEngine and the batched multi-run engine
/// (workload/batch_demand.h) are interchangeable at setup time.
class DemandModelSink {
 public:
  virtual ~DemandModelSink() = default;
  /// Registers the demand model of a service (which must exist in the
  /// cluster).
  virtual Status AddService(ServiceDemandSpec spec) = 0;
  /// Registers a subsystem; all referenced services must be known.
  virtual Status AddSubsystem(SubsystemSpec spec) = 0;
};

/// How users attach to service instances (the key difference between
/// the CM and FM scenarios, §5.1).
enum class UserDistribution {
  /// Users stay logged in to one instance for their whole session;
  /// only the slow fluctuation re-balances (static / CM scenarios).
  kStickySessions,
  /// Users are equally redistributed across all instances whenever
  /// the instance set changes (FM scenario).
  kDynamicRedistribution,
};

/// Per-server load sample of one tick.
struct ServerLoad {
  double cpu = 0.0;  // [0, 1]; 1.0 means saturated
  double mem = 0.0;  // [0, 1]
};

/// The flow-level workload engine: each tick it distributes users,
/// derives per-instance work, propagates it through the three tiers,
/// applies the proportional-share CPU model with service priorities,
/// and records per-server and per-instance loads plus backlog.
///
/// The engine runs on the cluster's dense-id data plane: every
/// server, service, and instance resolves to an integer id at setup
/// time (infra::LandscapeIndex), all per-entity state lives in flat
/// SoA arrays, subsystem propagation is compiled into a flat edge
/// list, and the per-tick temporaries come from a pre-sized scratch —
/// the steady-state Tick performs zero heap allocations. Topology
/// changes (instance start/stop/move) re-sync the data plane on the
/// next Tick; results are bit-identical to the string-keyed engine
/// because every loop preserves its iteration order (services in
/// name order, instances in InstanceId order, servers in name order).
class DemandEngine : public DemandModelSink {
 public:
  DemandEngine(infra::Cluster* cluster, Rng rng);

  DemandEngine(const DemandEngine&) = delete;
  DemandEngine& operator=(const DemandEngine&) = delete;

  /// Registers the demand model of a service (which must exist in the
  /// cluster).
  Status AddService(ServiceDemandSpec spec) override;
  /// Registers a subsystem; all referenced services must be known.
  Status AddSubsystem(SubsystemSpec spec) override;

  /// Rewinds the engine to its just-built state — zero users,
  /// backlogs, queues, loads, and quality metrics, with a fresh RNG —
  /// while keeping the registered specs and the synced data plane.
  /// After a reset on an unchanged topology, a run is bit-identical
  /// to one on a newly constructed engine (see
  /// SimulationRunner::ResetForRerun).
  void ResetRunState(Rng rng);

  /// ResetRunState variant that also selects the draw discipline:
  /// both generators are re-seeded from `seed` and subsequent noise
  /// draws flow through `kind` (see RunnerConfig::rng_kind).
  void ResetRunState(uint64_t seed, RngKind kind);

  /// Selects the draw discipline and re-seeds both generators without
  /// touching run state (call before the first Tick).
  void SeedRng(uint64_t seed, RngKind kind);
  RngKind rng_kind() const { return rng_kind_; }

  /// Global user multiplier (the evaluation's +5 % sweep knob).
  void set_user_scale(double scale) { user_scale_ = scale; }
  double user_scale() const { return user_scale_; }

  void set_distribution(UserDistribution distribution) {
    distribution_ = distribution;
  }
  UserDistribution distribution() const { return distribution_; }

  /// Fraction of each instance's users that log off and reconnect to
  /// the least-loaded instance per minute (paper §5.1: "users
  /// infrequently log themselves off ... and reconnect to the
  /// currently least-loaded server").
  void set_fluctuation_per_minute(double fraction) {
    fluctuation_per_minute_ = fraction;
  }

  /// Advances the model by `dt` ending at time `now`, recomputing all
  /// loads. Allocation-free unless the topology changed since the
  /// previous tick.
  void Tick(SimTime now, Duration dt = Duration::Minutes(1));

  // --- Load views of the last tick -------------------------------------
  double ServerCpuLoad(std::string_view server) const;
  double ServerMemLoad(std::string_view server) const;
  /// Fraction of the host's capacity the instance demands, in [0, 1].
  double InstanceLoad(infra::InstanceId id) const;
  /// Average load of all instances of a service (Table 1's
  /// serviceLoad input).
  double ServiceLoad(std::string_view service) const;
  /// Fraction of the service's requested work that was actually served
  /// in the last tick, in [0, 1] (1.0 when nothing was requested).
  /// This is the response-quality proxy the QoS/SLA extension
  /// monitors: it drops below 1 exactly when requests queue or drop.
  double ServiceSatisfaction(std::string_view service) const;

  // --- Dense-id load views ----------------------------------------------
  // Hot-path twins of the name-based views, keyed by the cluster
  // index's dense ids; no hashing, no string compares. Server ids
  // refer to the engine's last-tick layout (the server set is fixed
  // after setup); service ids are the cluster index's current ids.
  double ServerCpuLoadById(infra::DenseId server) const {
    size_t i = static_cast<size_t>(server);
    return i < server_cpu_.size() ? server_cpu_[i] : 0.0;
  }
  double ServerMemLoadById(infra::DenseId server) const {
    size_t i = static_cast<size_t>(server);
    return i < server_mem_.size() ? server_mem_[i] : 0.0;
  }
  double ServiceLoadById(infra::DenseId service) const;
  double ServiceSatisfactionById(infra::DenseId service) const;
  /// Number of servers in the last-tick load arrays.
  size_t num_server_loads() const { return server_cpu_.size(); }

  // --- User bookkeeping -------------------------------------------------
  double InstanceUsers(infra::InstanceId id) const;
  double ServiceUsers(std::string_view service) const;

  // --- Quality metrics ----------------------------------------------------
  /// Work that missed its tick and waits in instance backlogs (wu).
  double TotalBacklog() const;
  /// Work dropped because backlogs overflowed — the paper's "requests
  /// will be delayed till next day" (wu, cumulative).
  double TotalLostWork() const { return lost_work_wu_; }
  /// Cumulative server-minutes with CPU load above the overload
  /// threshold (default 0.8 — the paper's "CPU load of more than 80%
  /// for a long time" criterion).
  double OverloadMinutes() const { return overload_minutes_; }
  /// Clears the cumulative quality counters (overload minutes, lost
  /// work). Used to exclude a warm-up period from run verdicts.
  void ResetQualityMetrics() {
    overload_minutes_ = 0.0;
    lost_work_wu_ = 0.0;
  }
  void set_overload_threshold(double threshold) {
    overload_threshold_ = threshold;
  }

  // --- Checkpoint/restore ----------------------------------------------
  /// Serializes the run state: both RNG streams, the per-instance SoA
  /// arrays, last-tick server loads, shared queues and the quality
  /// counters. Registered specs and config knobs are not included —
  /// they are rebuilt from the same landscape configuration.
  void SaveState(ByteWriter* w) const;
  /// Restores a SaveState image; the dense data plane re-syncs on the
  /// next Tick (value-carrying, so the continuation is bit-identical).
  Status RestoreState(ByteReader* r);

 private:
  /// Subsystem propagation lowered to registered-spec slots: summing
  /// the app tier and fanning work out to the CI / DB tiers touches
  /// no names at tick time.
  struct SubsystemEdges {
    std::vector<int32_t> app_specs;  // spec slots, declared order
    int32_t ci_spec = -1;
    int32_t db_spec = -1;
    double ci_factor = 0.0;
    double db_factor = 0.0;
  };

  /// Pre-sized per-tick temporaries; reused across ticks so the
  /// steady-state Tick never touches the heap.
  struct Scratch {
    std::vector<double> app_work;         // per spec slot
    std::vector<double> shared_unserved;  // per spec slot
    std::vector<double> serve;            // per InstanceId
    std::vector<uint32_t> unsatisfied;        // positions in a server span
    std::vector<uint32_t> still_unsatisfied;  // (capacity pre-reserved)
  };

  /// Registered spec slot for a service name, or -1. Slots enumerate
  /// specs in sorted-name order.
  int32_t SpecSlotOf(std::string_view service) const;
  /// Engine-side dense server slot for a name (last-built layout).
  int32_t ServerSlotOf(std::string_view server) const;

  /// Re-syncs the engine's dense arrays with the cluster topology;
  /// no-op (two integer compares) when nothing changed.
  const infra::LandscapeIndex& EnsureDataPlane();

  void SyncUsers(const infra::LandscapeIndex& index);
  void ApplyFluctuation(const infra::LandscapeIndex& index,
                        double dt_minutes);
  infra::InstanceId LeastLoadedInstance(
      const infra::LandscapeIndex& index,
      std::span<const infra::InstanceRef> instances) const;

  infra::Cluster* cluster_;
  Rng rng_;
  PhiloxRng philox_;
  RngKind rng_kind_ = RngKind::kXoshiro;

  // Registered demand specs, sorted by service name (slot == rank).
  std::vector<ServiceDemandSpec> specs_;
  std::vector<infra::DenseId> spec_service_id_;  // slot -> cluster id
  std::vector<int32_t> spec_of_service_;         // cluster id -> slot | -1
  std::vector<SubsystemSpec> subsystems_;
  std::vector<SubsystemEdges> edges_;

  double user_scale_ = 1.0;
  UserDistribution distribution_ = UserDistribution::kStickySessions;
  double fluctuation_per_minute_ = 0.01;

  // SoA per-instance state, indexed by raw InstanceId. `tracked_`
  // mirrors the old map's "has a state entry": a removed instance
  // keeps its values until the next data-plane sync, exactly like the
  // map entry used to linger until the next Tick erased it.
  std::vector<double> users_;
  std::vector<double> backlog_wu_;
  std::vector<double> demand_wu_;  // last tick, per minute
  std::vector<double> served_wu_;  // last tick, per minute
  std::vector<double> inst_load_;  // demand / host capacity, clamped
  std::vector<uint8_t> tracked_;

  // Last-tick per-server loads; layout = sorted server names.
  std::vector<std::string> server_names_;
  std::vector<double> server_cpu_;
  std::vector<double> server_mem_;

  // Shared service queues (wu), per spec slot; persists across ticks.
  std::vector<double> queue_wu_;

  Scratch scratch_;
  uint64_t plane_epoch_ = 0;  // cluster epoch the arrays match
  bool plane_dirty_ = true;   // engine-side registrations changed

  double overload_threshold_ = 0.8;
  double lost_work_wu_ = 0.0;
  double overload_minutes_ = 0.0;
};

}  // namespace autoglobe::workload

#endif  // AUTOGLOBE_WORKLOAD_DEMAND_H_
