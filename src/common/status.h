#ifndef AUTOGLOBE_COMMON_STATUS_H_
#define AUTOGLOBE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace autoglobe {

/// Error categories used across the library. Modeled after the
/// Status idiom common in database engines (the project builds with
/// exceptions conceptually disabled; every fallible API returns a
/// Status or a Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kParseError,
  kInternal,
  kIoError,
  /// A transient failure: the operation may succeed if retried (used
  /// by the fault-injection subsystem for injected action failures
  /// and unreachable hosts).
  kUnavailable,
};

/// Returns a stable human-readable name for a status code
/// (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying either success (`kOk`) or an error code
/// plus message. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace autoglobe

/// Propagates a non-OK Status from the current function.
#define AG_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::autoglobe::Status ag_status__ = (expr);         \
    if (!ag_status__.ok()) return ag_status__;        \
  } while (false)

#endif  // AUTOGLOBE_COMMON_STATUS_H_
