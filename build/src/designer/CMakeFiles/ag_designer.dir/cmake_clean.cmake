file(REMOVE_RECURSE
  "CMakeFiles/ag_designer.dir/designer.cc.o"
  "CMakeFiles/ag_designer.dir/designer.cc.o.d"
  "libag_designer.a"
  "libag_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ag_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
