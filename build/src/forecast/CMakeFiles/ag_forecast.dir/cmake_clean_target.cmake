file(REMOVE_RECURSE
  "libag_forecast.a"
)
