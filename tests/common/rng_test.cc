#include "common/rng.h"

#include <cmath>

#include <gtest/gtest.h>

namespace autoglobe {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
    int64_t n = rng.UniformInt(3, 8);
    EXPECT_GE(n, 3);
    EXPECT_LE(n, 8);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateCloseToP) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  for (double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    constexpr int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i) sum += static_cast<double>(rng.Poisson(mean));
    EXPECT_NEAR(sum / kTrials, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / kTrials, 4.0, 0.15);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / kTrials;
  double var = sum_sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

// The legacy UniformInt uses modulo reduction, which is biased by
// ~range/2^64 per bucket. For the simulator's ranges (tens to
// thousands) that bias is below 2^-50 — far under what any test could
// detect — and changing the reduction would change how many Next()
// calls some draws consume, perturbing every pinned golden trace. So
// the modulo path stays, and this chi-square test is the regression
// guard that its distribution is (and remains) uniform at simulator
// scale. The unbiased Lemire reduction lives in PhiloxRng::UniformInt
// for the philox draw discipline (see philox_test.cc).
TEST(RngTest, UniformIntChiSquareIsUniform) {
  constexpr int kBuckets = 19;
  constexpr int kDraws = 190000;
  constexpr double kExpected = static_cast<double>(kDraws) / kBuckets;
  Rng rng(7127);
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) {
    int64_t v = rng.UniformInt(0, kBuckets - 1);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kBuckets);
    ++counts[v];
  }
  double chi2 = 0.0;
  for (int count : counts) {
    double d = count - kExpected;
    chi2 += d * d / kExpected;
  }
  // 99.9th percentile of chi-square with 18 degrees of freedom.
  EXPECT_LT(chi2, 42.31);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continuation.
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.Next() != child.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

}  // namespace
}  // namespace autoglobe
