#include "strategy/proportional.h"

#include <algorithm>
#include <cmath>

namespace autoglobe::strategy {

using controller::ControllerOutcome;
using controller::ScoredAction;
using infra::Action;
using infra::ActionType;
using infra::ServiceInstance;
using monitor::Trigger;
using monitor::TriggerKind;

std::string ProportionalThresholdStrategy::PickHost(
    const std::string& service, SimTime now,
    std::string_view exclude) const {
  std::string best;
  double best_load = 0.0;
  for (const infra::ServerSpec* server : env_.cluster->Servers()) {
    if (server->name == exclude) continue;
    if (env_.cluster->IsServerProtected(server->name, now)) continue;
    if (!env_.cluster->CanPlace(service, server->name, 0).ok()) continue;
    double load = env_.view->ServerCpuLoad(server->name);
    // Servers() enumerates sorted names, so "first strictly lighter
    // wins" is the lexicographic tie-break.
    if (best.empty() || load < best_load) {
      best = server->name;
      best_load = load;
    }
  }
  return best;
}

Result<ControllerOutcome> ProportionalThresholdStrategy::HandleService(
    const Trigger& trigger) {
  ControllerOutcome outcome;
  const std::string& service = trigger.subject;
  AG_ASSIGN_OR_RETURN(const infra::ServiceSpec* spec,
                      env_.cluster->FindService(service));
  int n = env_.cluster->ActiveInstanceCount(service);
  if (n <= 0) return outcome;
  double load = trigger.average_load;

  if (load >= config_.high_water) {
    // Proportional scale-out: grow towards ceil(n * L / target).
    int desired = static_cast<int>(
        std::ceil(static_cast<double>(n) * load /
                  std::max(config_.target_load, 1e-9)));
    int add = std::min({desired - n, config_.max_step,
                        spec->max_instances - n});
    if (add <= 0 || !spec->Allows(ActionType::kScaleOut)) return outcome;
    std::vector<const ServiceInstance*> instances =
        env_.cluster->InstancesOf(service);
    std::string source =
        instances.empty() ? std::string() : instances.front()->server;
    for (int i = 0; i < add; ++i) {
      std::string host = PickHost(service, trigger.at, /*exclude=*/"");
      if (host.empty()) break;
      Action action;
      action.type = ActionType::kScaleOut;
      action.service = service;
      action.source_server = source;
      action.target_server = host;
      outcome.considered.push_back(ScoredAction{action, load});
      if (env_.executor->Execute(action).ok() &&
          !outcome.executed.has_value()) {
        outcome.executed = action;
      }
    }
    return outcome;
  }

  if (load <= config_.low_water && spec->Allows(ActionType::kScaleIn)) {
    int desired = std::max(
        static_cast<int>(
            std::ceil(static_cast<double>(n) * load /
                      std::max(config_.target_load, 1e-9))),
        spec->min_instances);
    int remove = std::min(n - desired, config_.max_step);
    for (int i = 0; i < remove; ++i) {
      // Retire the least-loaded instance (sorted enumeration; first
      // strictly lighter wins on ties).
      const ServiceInstance* victim = nullptr;
      double victim_load = 0.0;
      for (const ServiceInstance* instance :
           env_.cluster->InstancesOf(service)) {
        if (instance->state == infra::InstanceState::kFailed) continue;
        double il = env_.view->InstanceLoad(instance->id);
        if (victim == nullptr || il < victim_load) {
          victim = instance;
          victim_load = il;
        }
      }
      if (victim == nullptr) break;
      Action action;
      action.type = ActionType::kScaleIn;
      action.service = service;
      action.instance = victim->id;
      action.source_server = victim->server;
      outcome.considered.push_back(ScoredAction{action, 1.0 - load});
      if (env_.executor->Execute(action).ok() &&
          !outcome.executed.has_value()) {
        outcome.executed = action;
      }
    }
    return outcome;
  }

  return outcome;  // inside the hysteresis band: hold
}

Result<ControllerOutcome> ProportionalThresholdStrategy::HandleServer(
    const Trigger& trigger) {
  ControllerOutcome outcome;
  if (trigger.kind != TriggerKind::kServerOverloaded) {
    return outcome;  // idle servers: no consolidation in this baseline
  }
  // Move the hottest unprotected instance off the overloaded host.
  const ServiceInstance* hottest = nullptr;
  double hottest_load = 0.0;
  for (const ServiceInstance* instance :
       env_.cluster->InstancesOn(trigger.subject)) {
    if (instance->state == infra::InstanceState::kFailed) continue;
    if (env_.cluster->IsServiceProtected(instance->service, trigger.at)) {
      continue;
    }
    const infra::ServiceSpec* spec =
        env_.cluster->FindService(instance->service).value_or(nullptr);
    if (spec == nullptr || !spec->Allows(ActionType::kMove)) continue;
    double il = env_.view->InstanceLoad(instance->id);
    if (hottest == nullptr || il > hottest_load) {
      hottest = instance;
      hottest_load = il;
    }
  }
  if (hottest == nullptr) return outcome;
  std::string host =
      PickHost(hottest->service, trigger.at, trigger.subject);
  if (host.empty()) return outcome;
  Action action;
  action.type = ActionType::kMove;
  action.service = hottest->service;
  action.instance = hottest->id;
  action.source_server = hottest->server;
  action.target_server = host;
  outcome.considered.push_back(
      ScoredAction{action, trigger.average_load});
  if (env_.executor->Execute(action).ok()) outcome.executed = action;
  return outcome;
}

Result<ControllerOutcome> ProportionalThresholdStrategy::HandleTrigger(
    const Trigger& trigger, bool urgent) {
  ControllerOutcome outcome;
  bool server_trigger = trigger.kind == TriggerKind::kServerOverloaded ||
                        trigger.kind == TriggerKind::kServerIdle;
  // Protection semantics mirror the fuzzy controller: the subject's
  // own window holds unless the escalation is urgent.
  if (!urgent &&
      (server_trigger
           ? env_.cluster->IsServerProtected(trigger.subject, trigger.at)
           : env_.cluster->IsServiceProtected(trigger.subject,
                                              trigger.at))) {
    outcome.skipped_protected = true;
    return outcome;
  }
  switch (trigger.kind) {
    case TriggerKind::kServiceOverloaded:
    case TriggerKind::kServiceIdle:
      return HandleService(trigger);
    case TriggerKind::kServerOverloaded:
    case TriggerKind::kServerIdle:
      return HandleServer(trigger);
    default:
      return outcome;  // failure triggers never reach a strategy
  }
}

}  // namespace autoglobe::strategy
