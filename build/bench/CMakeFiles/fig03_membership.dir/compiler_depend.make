# Empty compiler generated dependencies file for fig03_membership.
# This may be replaced when dependencies are built.
