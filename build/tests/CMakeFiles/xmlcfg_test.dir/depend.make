# Empty dependencies file for xmlcfg_test.
# This may be replaced when dependencies are built.
