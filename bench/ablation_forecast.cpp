// Ablation A5 — reactive vs proactive control (paper §7 future work /
// companion paper [8]): feeding the controller short-term forecasts
// from the load archive instead of trailing watch-time means lets it
// "react proactively on imminent overload situations". With strongly
// periodic enterprise load, the forecaster sees the daily ramps
// coming.

#include "ablation_util.h"
#include "common/strings.h"

using namespace autoglobe;
using namespace autoglobe::bench;

int main() {
  std::printf("# Ablation A5: reactive vs forecast-driven proactive "
              "control (FM scenario)\n");
  PrintMetricsHeader("controller");
  for (double scale : {1.35, 1.40}) {
    RunMetrics reactive = RunWithConfig(Scenario::kFullMobility, scale,
                                        nullptr);
    PrintMetricsRow(
        StrFormat("reactive %3.0f%%", scale * 100).c_str(), reactive);
    RunMetrics proactive = RunWithConfig(
        Scenario::kFullMobility, scale, [](RunnerConfig* config) {
          config->use_forecast = true;
          config->forecast.horizon = Duration::Minutes(20);
        });
    PrintMetricsRow(
        StrFormat("forecast %3.0f%%", scale * 100).c_str(), proactive);
  }
  std::printf("# (shape: at loads beyond the reactive capacity limit "
              "(~135%%), arming the watch\n#  from predicted loads cuts "
              "the overload time substantially; below the limit the\n"
              "#  reactive controller is already sufficient and "
              "proactivity only adds eagerness)\n");
  return 0;
}
