// Microbenchmarks (google-benchmark) of the simulation substrate:
// event-queue throughput, demand-engine ticks over the full paper
// landscape, whole simulated hours of each scenario, and the
// thread-pool run engine — the numbers that justify running 80-hour
// capacity sweeps in seconds. Results are also written to
// BENCH_micro.json so future PRs have a perf trajectory to compare
// against.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "autoglobe/capacity.h"
#include "benchmark_json.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "sim/simulator.h"
#include "workload/demand.h"

// Counts every global allocation in this binary so BM_DemandTick can
// assert "zero heap allocations per steady-state Tick" as a measured
// counter instead of a claim (same pattern as micro_fuzzy).
static std::atomic<uint64_t> g_heap_allocs{0};

// The replaced operator new allocates with malloc, so releasing with
// free is the matched pair here; GCC cannot see that and warns.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace autoglobe;

// The hot path of the kernel: schedule + dispatch with a static
// label. After the EventLabel/flat-liveness overhaul this path does
// no per-event label allocation and no hash-set probes.
void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    sim::Simulator simulator;
    uint64_t sink = 0;
    for (int64_t i = 0; i < batch; ++i) {
      AG_CHECK_OK(simulator
                      .ScheduleAt(SimTime::FromSeconds((i * 7919) % 100000),
                                  "e", [&sink] { ++sink; })
                      .status());
    }
    simulator.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleDispatch)->Arg(1000)->Arg(10000);

// Periodic series re-arm: one tick event driven for `batch` periods.
// Re-arming copies a shared_ptr refcount, not the std::function.
void BM_EventQueuePeriodicRearm(benchmark::State& state) {
  const int64_t batch = state.range(0);
  for (auto _ : state) {
    sim::Simulator simulator;
    uint64_t sink = 0;
    AG_CHECK_OK(simulator
                    .SchedulePeriodic(Duration::Minutes(1), "tick",
                                      [&sink] { ++sink; })
                    .status());
    simulator.RunUntil(SimTime::Start() + Duration::Minutes(batch));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePeriodicRearm)->Arg(10000);

void BM_DemandEngineTick(benchmark::State& state) {
  infra::Cluster cluster;
  workload::DemandEngine engine(&cluster, Rng(1));
  Landscape landscape = MakePaperLandscape(Scenario::kStatic);
  AG_CHECK_OK(landscape.Build(&cluster, &engine));
  int64_t minute = 0;
  for (auto _ : state) {
    engine.Tick(SimTime::Start() + Duration::Minutes(++minute));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandEngineTick);

// The dense-id data-plane contract: after one warm-up tick compiles
// the plane (spec/edge tables, SoA arrays, pre-sized scratch), every
// steady-state Tick over the full paper landscape — fresh demand,
// subsystem propagation, per-server water-filling, satisfaction
// bookkeeping — runs without touching the heap. allocs_per_tick must
// report 0 in both user-distribution modes.
void BM_DemandTick(benchmark::State& state) {
  workload::UserDistribution mode =
      static_cast<workload::UserDistribution>(state.range(0));
  infra::Cluster cluster;
  workload::DemandEngine engine(&cluster, Rng(1));
  Landscape landscape = MakePaperLandscape(Scenario::kFullMobility);
  AG_CHECK_OK(landscape.Build(&cluster, &engine));
  engine.set_distribution(mode);
  int64_t minute = 0;
  engine.Tick(SimTime::Start() + Duration::Minutes(++minute));  // warm up
  uint64_t allocs_before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    engine.Tick(SimTime::Start() + Duration::Minutes(++minute));
  }
  uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_tick"] = state.iterations() > 0
      ? static_cast<double>(allocs) / static_cast<double>(state.iterations())
      : 0.0;
  state.SetLabel(mode == workload::UserDistribution::kStickySessions
                     ? "sticky"
                     : "dynamic");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandTick)->DenseRange(0, 1);

void BM_SimulatedHour(benchmark::State& state) {
  Scenario scenario = static_cast<Scenario>(state.range(0));
  Landscape landscape = MakePaperLandscape(scenario);
  RunnerConfig config = MakeScenarioConfig(scenario, 1.15);
  config.duration = Duration::Hours(100000);  // run manually below
  auto runner = SimulationRunner::Create(landscape, config);
  AG_CHECK_OK(runner.status());
  int64_t hour = 0;
  for (auto _ : state) {
    ++hour;
    AG_CHECK_OK(
        (*runner)->RunUntil(SimTime::Start() + Duration::Hours(hour)));
  }
  state.SetLabel(std::string(ScenarioName(scenario)));
  state.SetItemsProcessed(state.iterations() * 60);  // ticks
}
BENCHMARK(BM_SimulatedHour)->DenseRange(0, 2);

// Pure pool dispatch overhead: trivial tasks, so the time is the
// submit/latch machinery itself.
void BM_ThreadPoolParallelFor(benchmark::State& state) {
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  std::vector<uint64_t> sinks(1024, 0);
  for (auto _ : state) {
    pool.ParallelFor(sinks.size(), [&sinks](size_t i) { ++sinks[i]; });
  }
  benchmark::DoNotOptimize(sinks.data());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sinks.size()));
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(4);

// The speedup the run engine exists for, measured on the real product
// path: a short capacity sweep, sequential (parallelism 1) versus one
// worker per hardware thread (parallelism 0). Items are sweep steps.
void BM_CapacitySweepShort(benchmark::State& state) {
  CapacityOptions options;
  options.start_scale = 1.0;
  options.step = 0.25;
  options.max_scale = 1.5;
  options.run_duration = Duration::Hours(2);
  options.warmup = Duration::Zero();
  options.parallelism = static_cast<int>(state.range(0));
  size_t steps = 0;
  for (auto _ : state) {
    auto result = FindCapacity(Scenario::kConstrainedMobility, options);
    AG_CHECK_OK(result.status());
    steps += result->steps.size();
    benchmark::DoNotOptimize(result->max_scale);
  }
  state.SetLabel(options.parallelism == 1 ? "sequential"
                                          : "hardware-parallel");
  state.SetItemsProcessed(static_cast<int64_t>(steps));
}
BENCHMARK(BM_CapacitySweepShort)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  return autoglobe::bench::RunBenchmarksAndWriteJson(argc, argv,
                                                     "BENCH_micro.json");
}
