#ifndef AUTOGLOBE_COMMON_RNG_H_
#define AUTOGLOBE_COMMON_RNG_H_

#include <cstdint>

namespace autoglobe {

/// Deterministic pseudo-random number generator (xoshiro256**,
/// seeded via SplitMix64). Simulations must be reproducible given a
/// seed, so all randomness in the library flows through this type —
/// never through std::random_device or unseeded std engines.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value. Inline: the batched engine draws millions
  /// of variates per run, so the generator core must not cost a call.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (>= 0). Uses
  /// Knuth's method for small means and a normal approximation above
  /// mean 64 (adequate for workload noise).
  int64_t Poisson(double mean);

  /// Standard exponential scaled by `mean`.
  double Exponential(double mean);

  /// Normal variate via Box–Muller.
  double Normal(double mean, double stddev) {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return mean + stddev * cached_normal_;
    }
    return NormalSlow(mean, stddev);
  }

  /// Derives an independent child generator (for per-entity streams).
  Rng Fork();

  /// Full generator state for checkpoint/restore: the xoshiro words
  /// plus the Box–Muller cache (a restored stream must resume mid-pair
  /// bit-identically).
  struct State {
    uint64_t words[4];
    bool have_cached_normal;
    double cached_normal;
  };
  State SaveState() const {
    return State{{state_[0], state_[1], state_[2], state_[3]},
                 have_cached_normal_, cached_normal_};
  }
  void RestoreState(const State& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    have_cached_normal_ = s.have_cached_normal;
    cached_normal_ = s.cached_normal;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Box–Muller pair generation (the no-cached-value half of Normal).
  double NormalSlow(double mean, double stddev);

  uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace autoglobe

#endif  // AUTOGLOBE_COMMON_RNG_H_
