# Empty dependencies file for ag_sim.
# This may be replaced when dependencies are built.
