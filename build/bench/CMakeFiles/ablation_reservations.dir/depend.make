# Empty dependencies file for ablation_reservations.
# This may be replaced when dependencies are built.
