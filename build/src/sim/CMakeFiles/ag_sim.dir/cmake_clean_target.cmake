file(REMOVE_RECURSE
  "libag_sim.a"
)
